(* adaptive — a command-line front end for the ADAPTIVE reproduction.

   Subcommands:
     apps                      list the Table 1 applications
     networks                  list the network profiles
     classify  -a APP -n NET   run MANTTS stages I+II and print the result
     run       -a APP -n NET   simulate the application over the network
                               and print the UNITES report
     chaos                     randomized fault-injection soaks
     fleet                     seeds x environments campaign across domains
     swarm                     many-session churn with admission control
     megaswarm                 partitioned churn sharded across domains
     wire                      wire-true vs value-mode digest parity

   Example:
     adaptive_cli run -a voice -n satellite -d 10 *)

open Adaptive_sim
open Adaptive_net
open Adaptive_core
open Adaptive_workloads

(* ----------------------------------------------------------- catalogs *)

let apps =
  [
    ("voice", Workloads.Voice_conversation);
    ("teleconference", Workloads.Teleconferencing);
    ("video", Workloads.Video_compressed);
    ("video-raw", Workloads.Video_raw);
    ("control", Workloads.Manufacturing_control);
    ("ftp", Workloads.File_transfer);
    ("telnet", Workloads.Telnet);
    ("oltp", Workloads.Oltp);
    ("rfs", Workloads.Remote_file_service);
  ]

let networks =
  [
    ("lan", Profiles.lan_path);
    ("campus", Profiles.campus_path);
    ("internet", Profiles.internet_path);
    ("bisdn", Profiles.bisdn_path);
    ("atm-lfn", Profiles.atm_lfn_path);
    ("satellite", Profiles.satellite_path);
  ]

let list_apps () =
  List.iter
    (fun (key, app) ->
      let q = Workloads.qos app in
      Format.printf "%-14s %-30s %-30s avg %.0f kb/s@." key (Workloads.name app)
        (Tsc.name (Workloads.expected_tsc app))
        (q.Qos.avg_bps /. 1e3))
    apps

let list_networks () =
  List.iter
    (fun (key, path) ->
      let hops = path () in
      let prop =
        List.fold_left (fun acc l -> Time.add acc (Link.propagation l)) Time.zero hops
      in
      let bottleneck =
        List.fold_left (fun acc l -> Float.min acc (Link.bandwidth_bps l)) infinity hops
      in
      Format.printf "%-10s %d hop(s), bottleneck %.0f Mb/s, one-way propagation %s@."
        key (List.length hops) (bottleneck /. 1e6) (Time.to_string prop))
    networks

(* ------------------------------------------------------------ scenarios *)

let build app path_fn =
  let stack = Adaptive.create_stack ~seed:97 () in
  let src = Adaptive.add_host stack "local" in
  let receivers = Workloads.multicast_receivers app in
  let dsts =
    List.init receivers (fun i ->
        let r = Adaptive.add_host stack (Printf.sprintf "remote%d" i) in
        Adaptive.connect_hosts stack src r (path_fn ());
        r)
  in
  List.iter
    (fun r -> Workloads.install_server app (Mantts.entity stack.Adaptive.mantts r))
    dsts;
  (stack, src, dsts)

let classify app path_fn =
  let stack, src, dsts = build app path_fn in
  let acd = Acd.make ~participants:dsts ~qos:(Workloads.qos app) () in
  let tsc = Mantts.classify acd in
  let scs = Mantts.derive_scs stack.Adaptive.mantts ~src acd tsc in
  let path = Mantts.sample_paths stack.Adaptive.mantts ~src acd in
  Format.printf "application    : %s@." (Workloads.name app);
  Format.printf "stage I  (TSC) : %s@." (Tsc.name tsc);
  Format.printf
    "network state  : mtu %d B, bottleneck %.1f Mb/s, rtt %s, worst BER %.0e@."
    path.Mantts.mtu
    (path.Mantts.bottleneck_bps /. 1e6)
    (Time.to_string path.Mantts.rtt)
    path.Mantts.worst_ber;
  Format.printf "stage II (SCS) : %a@." Scs.pp scs;
  `Ok ()

let run_scenario app path_fn duration =
  let stack, src, dsts = build app path_fn in
  let acd = Acd.make ~participants:dsts ~qos:(Workloads.qos app) () in
  let session = Mantts.open_session stack.Adaptive.mantts ~src ~acd ~name:"cli" () in
  Format.printf "configuration: %a@." Scs.pp (Session.scs session);
  let driver =
    Workloads.drive stack.Adaptive.engine stack.Adaptive.rng ~session app
      ~stop_at:(Time.sec duration)
  in
  Adaptive.run stack ~until:(Time.sec (duration +. 5.0));
  Mantts.close_session stack.Adaptive.mantts session;
  Adaptive.run stack ~until:(Time.sec (duration +. 30.0));
  Format.printf "@.application sent %d message(s), %d byte(s)@."
    (Workloads.messages_sent driver) (Workloads.bytes_sent driver);
  (match Mantts.adaptations stack.Adaptive.mantts with
  | [] -> ()
  | log ->
    Format.printf "@.adaptations:@.";
    List.iter (fun (at, _, what) -> Format.printf "  [%s] %s@." (Time.to_string at) what) log);
  Format.printf "@.%a@." Unites.report stack.Adaptive.unites;
  `Ok ()

(* --------------------------------------------------------------- chaos *)

let run_chaos schedules seed seeds env sabotage jobs =
  let module Soak = Adaptive_chaos.Soak in
  let module Invariant = Adaptive_chaos.Invariant in
  let module Fault = Adaptive_chaos.Fault in
  let environments =
    match env with None -> Soak.all_environments | Some e -> [ e ]
  in
  let schedules =
    match seeds with Some l -> List.length l | None -> schedules
  in
  Format.printf
    "chaos soak: %d schedule(s), base seed %d, environments %s, %d job(s)%s@."
    schedules seed
    (String.concat "," (List.map Soak.environment_name environments))
    jobs
    (if sabotage then ", sabotage enabled" else "");
  let progress i (o : Soak.outcome) =
    Format.printf
      "  run %3d  seed=%-6d env=%-9s faults=%2d recovered=%2d failovers=%2d \
       switches=%2d delivered=%5d  %s@."
      i o.Soak.o_seed
      (Soak.environment_name o.Soak.o_env)
      o.Soak.o_injected
      (List.length o.Soak.o_recoveries)
      o.Soak.o_failovers o.Soak.o_switches o.Soak.o_delivered
      (if Soak.ok o then "ok" else "VIOLATION")
  in
  let report =
    Soak.soak_par ~sabotage ~environments ?seeds ~progress ~jobs ~seed
      ~schedules ()
  in
  let injected =
    List.fold_left (fun acc o -> acc + o.Soak.o_injected) 0 report.Soak.r_outcomes
  in
  Format.printf "@.%d run(s), %d fault(s) injected, %d failure(s)@."
    report.Soak.r_runs injected
    (List.length report.Soak.r_failures);
  List.iter
    (fun cls ->
      let ttrs =
        List.concat_map
          (fun o ->
            List.filter_map
              (fun (c, ttr) -> if c = cls then Some ttr else None)
              o.Soak.o_recoveries)
          report.Soak.r_outcomes
      in
      if ttrs <> [] then
        let n = List.length ttrs in
        let mean = List.fold_left ( +. ) 0.0 ttrs /. float_of_int n in
        let worst = List.fold_left Float.max 0.0 ttrs in
        Format.printf "  %-16s %3d recovered, time-to-recover mean %.3fs worst %.3fs@."
          (Fault.class_name cls) n mean worst)
    Fault.all_classes;
  List.iter
    (fun ((o : Soak.outcome), (s : Soak.shrink_result)) ->
      Format.printf "@.FAILURE:@.%a@." Soak.pp_repro o;
      List.iter
        (fun v -> Format.printf "  %a@." Invariant.pp_violation v)
        o.Soak.o_violations;
      Format.printf "shrunk %d -> %d fault(s) in %d re-run(s); minimal repro:@.%a@."
        s.Soak.s_original
        (List.length s.Soak.s_minimal)
        s.Soak.s_runs Soak.pp_repro s.Soak.s_outcome)
    report.Soak.r_failures;
  if report.Soak.r_failures = [] then `Ok () else `Error (false, "invariant violations found")

(* --------------------------------------------------------------- fleet *)

(* A campaign spec: the chaos scenario replicated over a seed list and
   an environment grid, sharded across domains by FLEET, reduced in
   canonical (seed, env) order.  Unless --no-baseline is given, the same
   grid also runs sequentially and the parallel output is checked
   byte-for-byte against it — campaign digest and every rendered UNITES
   report — before the speedup is printed. *)
let run_fleet replicas seed seeds env jobs no_baseline =
  let module Soak = Adaptive_chaos.Soak in
  let module Fleet = Adaptive_fleet.Fleet in
  let envs = match env with None -> Soak.all_environments | Some e -> [ e ] in
  let seeds =
    match seeds with
    | Some l -> l
    | None -> Fleet.seeds_of ~master:seed ~n:replicas
  in
  let campaign =
    {
      Fleet.name = "chaos";
      seeds;
      envs;
      run = (fun ~seed ~env ~index:_ -> Soak.run_one ~env ~seed ());
    }
  in
  Format.printf "fleet campaign %S: %d seed(s) x %d environment(s) = %d task(s), %d job(s)@."
    campaign.Fleet.name (List.length seeds) (List.length envs)
    (Fleet.task_count campaign) jobs;
  let execute ~jobs ~progress =
    let t0 = Unix.gettimeofday () in
    let results = Fleet.run_campaign ?progress ~jobs campaign in
    (Unix.gettimeofday () -. t0, results)
  in
  let progress (r : (Soak.environment, Soak.outcome) Fleet.task_result) =
    let o = r.Fleet.t_result in
    Format.printf "  task %3d  seed=%-18d env=%-9s faults=%2d delivered=%5d  %s@."
      r.Fleet.t_index r.Fleet.t_seed
      (Soak.environment_name r.Fleet.t_env)
      o.Soak.o_injected o.Soak.o_delivered
      (if Soak.ok o then "ok" else "VIOLATION")
  in
  let wall, results = execute ~jobs ~progress:(Some progress) in
  let outcomes = List.map (fun r -> r.Fleet.t_result) results in
  let digest = Fleet.combine_hashes (List.map (fun o -> o.Soak.o_hash) outcomes) in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let events = sum (fun o -> o.Soak.o_events) in
  let violations = List.filter (fun o -> not (Soak.ok o)) outcomes in
  Format.printf
    "@.%d task(s) in %.3f s wall (%.0f events/s): %d fault(s), %d delivery(ies), \
     %d failover(s), %d switch(es), %d violation(s)@.campaign digest 0x%016Lx@."
    (List.length results) wall
    (if wall > 0.0 then float_of_int events /. wall else 0.0)
    (sum (fun o -> o.Soak.o_injected))
    (sum (fun o -> o.Soak.o_delivered))
    (sum (fun o -> o.Soak.o_failovers))
    (sum (fun o -> o.Soak.o_switches))
    (List.length violations) digest;
  List.iter
    (fun o -> Format.printf "@.VIOLATION:@.%a@." Soak.pp_repro o)
    violations;
  let deterministic =
    if no_baseline || jobs <= 1 then true
    else begin
      Format.printf "@.baseline: re-running sequentially for the determinism check...@.";
      let wall1, results1 = execute ~jobs:1 ~progress:None in
      let outcomes1 = List.map (fun r -> r.Fleet.t_result) results1 in
      let digest1 =
        Fleet.combine_hashes (List.map (fun o -> o.Soak.o_hash) outcomes1)
      in
      let mismatches =
        Fleet.check_identical
          (List.mapi (fun i o -> (i, o.Soak.o_unites)) outcomes1)
          (List.mapi (fun i o -> (i, o.Soak.o_unites)) outcomes)
      in
      let identical = Int64.equal digest digest1 && mismatches = [] in
      Format.printf
        "baseline %.3f s wall; speedup %.2fx; digests %s; UNITES reports %s@."
        wall1
        (if wall > 0.0 then wall1 /. wall else 0.0)
        (if Int64.equal digest digest1 then "match" else "DIFFER")
        (if mismatches = [] then "byte-identical"
         else Printf.sprintf "DIFFER at %d task(s)" (List.length mismatches));
      identical
    end
  in
  if violations <> [] then `Error (false, "invariant violations found")
  else if not deterministic then
    `Error (false, "parallel run diverged from sequential baseline")
  else `Ok ()

(* --------------------------------------------------------------- swarm *)

(* Many-session churn on one host pair (the e11 workload), with optional
   MANTTS admission thresholds to demonstrate graceful degradation. *)
let run_swarm sessions churn seed soft hard wire steer chaos_seed =
  let admission =
    match (soft, hard) with
    | None, None -> None
    | _ ->
      let hard = match hard with Some h -> h | None -> sessions in
      let soft = match soft with Some s -> s | None -> hard in
      Some
        {
          Mantts.soft_sessions = soft;
          hard_sessions = hard;
          max_cpu_backlog = Time.ms 50;
        }
  in
  Format.printf "swarm: %d session slot(s), %d churn round(s), seed %d%s%s%s%s@."
    sessions churn seed
    (match admission with
    | None -> ""
    | Some p ->
      Printf.sprintf ", admission soft=%d hard=%d" p.Mantts.soft_sessions
        p.Mantts.hard_sessions)
    (if wire then ", wire-true mode" else "")
    (if steer then ", steered" else "")
    (match chaos_seed with
    | None -> ""
    | Some s -> Printf.sprintf ", chaos seed %d" s);
  let chaos =
    Option.map
      (fun s ->
        Adaptive_chaos.Fault.random_schedule ~rng:(Rng.create s)
          ~classes:
            [
              Adaptive_chaos.Fault.Ber_burst;
              Adaptive_chaos.Fault.Congestion_storm;
              Adaptive_chaos.Fault.Route_flap;
            ]
          ())
      chaos_seed
  in
  let cfg =
    { (Swarm.default_config ~sessions ~seed) with
      Swarm.churn_rounds = churn;
      admission;
      wire;
      steer = (if steer then Some Steer.default_policy else None);
      chaos;
      check_invariants = steer || chaos <> None }
  in
  let t0 = Unix.gettimeofday () in
  let o = Swarm.run cfg in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Swarm.pp_outcome o;
  Format.printf "UNITES swarm session:@.";
  List.iter
    (fun m ->
      match Unites.stats o.Swarm.unites ~session:Unites.swarm_session m with
      | None -> ()
      | Some s ->
        Format.printf
          "  %-16s n=%-6d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f@."
          (Unites.metric_name m) s.Stats.n s.Stats.mean s.Stats.p50 s.Stats.p95
          s.Stats.p99 s.Stats.max)
    [
      Unites.Sessions_open;
      Unites.Sessions_refused;
      Unites.Sessions_degraded;
      Unites.Demux_probes;
      Unites.Table_occupancy;
      Unites.Timewait_drops;
    ];
  if wire then begin
    Format.printf "UNITES wire session:@.";
    List.iter
      (fun m ->
        match Unites.stats o.Swarm.unites ~session:Unites.wire_session m with
        | None -> ()
        | Some s ->
          Format.printf "  %-16s %.3f@." (Unites.metric_name m) s.Stats.mean)
      [
        Unites.Wire_encodes;
        Unites.Wire_decodes;
        Unites.Wire_rejects;
        Unites.Wire_fused_sums;
        Unites.Wire_pool_reuse;
      ]
  end;
  (match o.Swarm.steer_stats with
  | None -> ()
  | Some _ ->
    Format.printf "UNITES steer session:@.";
    List.iter
      (fun m ->
        match Unites.stats o.Swarm.unites ~session:Unites.steer_session m with
        | None -> ()
        | Some s ->
          Format.printf "  %-22s n=%-6d mean=%.3f max=%.3f@."
            (Unites.metric_name m) s.Stats.n s.Stats.mean s.Stats.max)
      [ Unites.Steer_swaps; Unites.Steer_blocked; Unites.Steer_time_in_config ];
    List.iter
      (fun v ->
        Format.printf "  violation: %a@." Adaptive_chaos.Invariant.pp_violation v)
      o.Swarm.violations);
  Format.printf "wall %.3f s (%.0f admitted sessions/s, %.0f events/s)@." wall
    (if wall > 0.0 then float_of_int o.Swarm.admitted /. wall else 0.0)
    (if wall > 0.0 then float_of_int o.Swarm.events_fired /. wall else 0.0);
  if o.Swarm.violations <> [] then `Error (false, "invariant violations found")
  else `Ok ()

(* ----------------------------------------------------------- megaswarm *)

(* Partitioned churn across domains (the e13 workload).  --parity re-runs
   the identical configuration single-sharded and checks the combined
   digest and every rendered UNITES report byte-for-byte — shard count is
   an execution choice, never a result. *)
let run_megaswarm sessions partitions shards churn seed parity steer spread_ms
    cap =
  let cfg =
    { (Megaswarm.default_config ~sessions ~seed) with
      Megaswarm.partitions;
      shards;
      churn_rounds = churn;
      wan_spread = Time.ms spread_ms;
      session_cap = (if cap > 0 then Some cap else None);
      steer = (if steer then Some Steer.default_policy else None) }
  in
  Format.printf
    "megaswarm: %d session slot(s), %d partition(s), %d shard(s), %d churn \
     round(s), seed %d@."
    sessions partitions shards churn seed;
  let t0 = Unix.gettimeofday () in
  let o = Megaswarm.run cfg in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Megaswarm.pp_outcome o;
  Format.printf "wall %.3f s (%.0f events/s)@." wall
    (if wall > 0.0 then float_of_int o.Megaswarm.events_fired /. wall else 0.0);
  if (not parity) || shards = 1 then `Ok ()
  else begin
    Format.printf "@.parity: re-running with --shards 1...@.";
    let o1 = Megaswarm.run { cfg with Megaswarm.shards = 1 } in
    let digests = Int64.equal o.Megaswarm.digest o1.Megaswarm.digest in
    let unites = o.Megaswarm.unites_reports = o1.Megaswarm.unites_reports in
    Format.printf "digests %s; UNITES reports %s@."
      (if digests then "match" else "DIFFER")
      (if unites then "byte-identical" else "DIFFER");
    if digests && unites then `Ok ()
    else `Error (false, "sharded run diverged from the single-shard baseline")
  end

(* ---------------------------------------------------------------- wire *)

(* Run the same seeded swarm twice — value mode, then wire-true — and
   check the digests: on the lossless swarm LAN the wire hooks must add
   zero simulated time and no random draws, so the FNV-1a trace digests
   must be identical. *)
let run_wire sessions churn seed =
  Format.printf
    "wire parity: %d session slot(s), %d churn round(s), seed %d@." sessions
    churn seed;
  let base =
    { (Swarm.default_config ~sessions ~seed) with Swarm.churn_rounds = churn }
  in
  let value_o = Swarm.run base in
  let wire_o = Swarm.run { base with Swarm.wire = true } in
  Format.printf "value mode: digest 0x%016Lx@." value_o.Swarm.digest;
  Format.printf "wire  mode: digest 0x%016Lx@." wire_o.Swarm.digest;
  (match wire_o.Swarm.wire_report with
  | None -> ()
  | Some w ->
    Format.printf
      "wire path: %d encode(s), %d decode(s), %d reject(s), %d fused        checksum(s), pool reuse %.3f@."
      w.Session.Wire.encodes w.Session.Wire.decodes w.Session.Wire.rejects
      w.Session.Wire.fused_sums w.Session.Wire.pool_reuse_rate);
  if Int64.equal value_o.Swarm.digest wire_o.Swarm.digest then begin
    Format.printf
      "digest parity: wire-true bytes replay the value-mode run exactly@.";
    `Ok ()
  end
  else `Error (false, "wire-true digest diverged from value mode")

(* ------------------------------------------------------------- cmdliner *)

open Cmdliner

let app_conv =
  let parse s =
    match List.assoc_opt s apps with
    | Some app -> Ok app
    | None -> Error (`Msg (Printf.sprintf "unknown application %S (try 'apps')" s))
  in
  let print fmt app =
    let key, _ = List.find (fun (_, a) -> a = app) apps in
    Format.pp_print_string fmt key
  in
  Arg.conv (parse, print)

let network_conv =
  let parse s =
    match List.assoc_opt s networks with
    | Some path -> Ok path
    | None -> Error (`Msg (Printf.sprintf "unknown network %S (try 'networks')" s))
  in
  let print fmt path =
    match List.find_opt (fun (_, p) -> p == path) networks with
    | Some (key, _) -> Format.pp_print_string fmt key
    | None -> Format.pp_print_string fmt "<custom>"
  in
  Arg.conv (parse, print)

let app_arg =
  Arg.(
    required
    & opt (some app_conv) None
    & info [ "a"; "app" ] ~docv:"APP" ~doc:"Application workload (see 'apps').")

let network_arg =
  Arg.(
    value
    & opt network_conv Profiles.lan_path
    & info [ "n"; "network" ] ~docv:"NET" ~doc:"Network profile (see 'networks').")

let duration_arg =
  Arg.(
    value
    & opt float 5.0
    & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Simulated traffic duration.")

let env_conv =
  let parse s =
    match Adaptive_chaos.Soak.environment_of_name s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown environment %S (campus, internet, satellite)" s))
  in
  let print fmt e =
    Format.pp_print_string fmt (Adaptive_chaos.Soak.environment_name e)
  in
  Arg.conv (parse, print)

let schedules_arg =
  Arg.(
    value
    & opt int 25
    & info [ "schedules" ] ~docv:"N" ~doc:"Randomized fault schedules to run.")

let seed_arg =
  Arg.(
    value
    & opt int 4242
    & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed; run $(i,i) uses SEED+$(i,i).")

let env_arg =
  Arg.(
    value
    & opt (some env_conv) None
    & info [ "e"; "env" ] ~docv:"ENV"
        ~doc:"Restrict to one environment (default: cycle through all three).")

let sabotage_arg =
  Arg.(
    value
    & flag
    & info [ "sabotage" ]
        ~doc:
          "Plant a violation on every ber_burst application — self-test of \
           detection and shrinking.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Shard runs across $(docv) domains via FLEET; output is \
           byte-identical to --jobs 1.")

let seeds_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "seeds" ] ~docv:"S1,S2,..."
        ~doc:
          "Explicit comma-separated seed list, overriding the derived \
           seeds (and the run count).")

let replicas_arg =
  Arg.(
    value
    & opt int 12
    & info [ "replicas" ] ~docv:"N"
        ~doc:"Seeds on the campaign's replication axis (unless --seeds).")

let no_baseline_arg =
  Arg.(
    value
    & flag
    & info [ "no-baseline" ]
        ~doc:
          "Skip the sequential re-run that proves the parallel output \
           byte-identical and measures speedup.")

let apps_cmd =
  Cmd.v (Cmd.info "apps" ~doc:"List the Table 1 application workloads")
    Term.(const list_apps $ const ())

let networks_cmd =
  Cmd.v (Cmd.info "networks" ~doc:"List the network profiles")
    Term.(const list_networks $ const ())

let classify_cmd =
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Run MANTTS stages I and II for an application over a network")
    Term.(ret (const classify $ app_arg $ network_arg))

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate the application over the network and report")
    Term.(ret (const run_scenario $ app_arg $ network_arg $ duration_arg))

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run randomized fault-injection soaks with invariant checking; shrink \
          and print a minimal repro for any violation")
    Term.(
      ret
        (const run_chaos $ schedules_arg $ seed_arg $ seeds_arg $ env_arg
       $ sabotage_arg $ jobs_arg))

let sessions_arg =
  Arg.(
    value
    & opt int 1000
    & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent session slots to churn.")

let churn_arg =
  Arg.(
    value
    & opt int 2
    & info [ "churn" ] ~docv:"N"
        ~doc:"Close/reopen cycles per slot after the first open.")

let soft_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "soft" ] ~docv:"N"
        ~doc:
          "Admission soft threshold: past $(docv) live sessions new opens \
           are negotiated down to a lighter configuration.")

let hard_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hard" ] ~docv:"N"
        ~doc:"Admission hard threshold: past $(docv) live sessions new \
              opens are refused.")

let wire_flag =
  Arg.(
    value
    & flag
    & info [ "wire" ]
        ~doc:
          "Run in wire-true mode: every PDU crosses the network as real            bytes through the fused zero-copy codec path.")

let steer_flag =
  Arg.(
    value
    & flag
    & info [ "steer" ]
        ~doc:
          "Put every admitted session under the STEER closed-loop policy \
           engine: loss-driven ARQ swaps, burst-loss FEC, congestion rate \
           backoff and idle shedding, each gated by hysteresis and the \
           500 ms reconfigure cooldown.")

let chaos_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "Install a seeded random ber-burst / congestion-storm / \
           route-flap schedule against the swarm link — the backdrop the \
           steered population adapts to.")

let fleet_cmd =
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a seeds-x-environments campaign sharded across domains by \
          FLEET; print the aggregated report, prove the parallel output \
          byte-identical to a sequential run, and report the speedup")
    Term.(
      ret
        (const run_fleet $ replicas_arg $ seed_arg $ seeds_arg $ env_arg
       $ jobs_arg $ no_baseline_arg))

let swarm_cmd =
  Cmd.v
    (Cmd.info "swarm"
       ~doc:
         "Churn many concurrent sessions through one host pair (open → \
          transfer → close across the Table 1 mix) and print the swarm \
          whitebox report; --soft/--hard install MANTTS admission control")
    Term.(
      ret
        (const run_swarm $ sessions_arg $ churn_arg $ seed_arg $ soft_arg
       $ hard_arg $ wire_flag $ steer_flag $ chaos_seed_arg))

let partitions_arg =
  Arg.(
    value
    & opt int 4
    & info [ "partitions" ] ~docv:"P"
        ~doc:
          "Logical partitions (part of the workload, independent of the \
           shard count).")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Execution domains; any value produces the same digest and \
           UNITES output.")

let parity_arg =
  Arg.(
    value
    & flag
    & info [ "parity" ]
        ~doc:
          "Re-run the same configuration with --shards 1 and check the \
           digest and UNITES reports byte-for-byte.")

let spread_arg =
  Arg.(
    value
    & opt int 0
    & info [ "spread" ] ~docv:"MS"
        ~doc:
          "Maximum extra per-pair WAN latency in milliseconds: each ordered \
           partition pair gets a deterministic latency in [base, base + \
           spread], and SHARD synchronizes on the matching per-pair \
           lookahead matrix.  0 keeps the uniform WAN.")

let cap_arg =
  Arg.(
    value
    & opt int 0
    & info [ "cap" ] ~docv:"N"
        ~doc:
          "Track at most N distinct sessions per partition in UNITES; the \
           rest fold into one overflow bucket (totals preserved, digest \
           unchanged).  0 disables the cap.")

let megaswarm_cmd =
  Cmd.v
    (Cmd.info "megaswarm"
       ~doc:
         "Churn sessions across several logical partitions joined by a \
          constant-latency WAN, executed over OCaml domains with \
          conservative barrier-window synchronization; the result is \
          independent of --shards")
    Term.(
      ret
        (const run_megaswarm $ sessions_arg $ partitions_arg $ shards_arg
       $ churn_arg $ seed_arg $ parity_arg $ steer_flag $ spread_arg $ cap_arg))

let wire_cmd =
  Cmd.v
    (Cmd.info "wire"
       ~doc:
         "Run the same seeded swarm in value mode and wire-true mode and           check that the trace digests match — the zero-copy wire path           must replay the simulation byte-for-byte")
    Term.(ret (const run_wire $ sessions_arg $ churn_arg $ seed_arg))

let main =
  Cmd.group
    (Cmd.info "adaptive_cli" ~version:"1.0"
       ~doc:"The ADAPTIVE transport system reproduction")
    [
      apps_cmd; networks_cmd; classify_cmd; run_cmd; chaos_cmd; fleet_cmd;
      swarm_cmd; megaswarm_cmd; wire_cmd;
    ]

let () = exit (Cmd.eval main)
