type t = {
  size : int;
  mutable cap : int;
  mutable free_list : Bytes.t list;
  mutable used : int;
  mutable miss_count : int;
  mutable alloc_count : int;
}

let create ~buffers ~size =
  if buffers < 0 || size <= 0 then invalid_arg "Pool.create";
  {
    size;
    cap = buffers;
    free_list = List.init buffers (fun _ -> Bytes.create size);
    used = 0;
    miss_count = 0;
    alloc_count = 0;
  }

let buffer_size t = t.size
let capacity t = t.cap
let available t = List.length t.free_list
let in_use t = t.used

let alloc t =
  match t.free_list with
  | [] ->
    t.miss_count <- t.miss_count + 1;
    None
  | b :: rest ->
    t.free_list <- rest;
    t.used <- t.used + 1;
    t.alloc_count <- t.alloc_count + 1;
    Some b

let free t b =
  if Bytes.length b <> t.size then invalid_arg "Pool.free: wrong buffer size";
  if t.used = 0 then invalid_arg "Pool.free: pool already full";
  t.used <- t.used - 1;
  if List.length t.free_list + t.used < t.cap then t.free_list <- b :: t.free_list

let resize t ~buffers =
  if buffers < 0 then invalid_arg "Pool.resize";
  let old_free = List.length t.free_list in
  let target_free = max 0 (buffers - t.used) in
  if target_free > old_free then
    t.free_list <-
      List.init (target_free - old_free) (fun _ -> Bytes.create t.size) @ t.free_list
  else if target_free < old_free then begin
    let rec take n = function
      | [] -> []
      | _ :: rest when n > 0 -> take (n - 1) rest
      | l -> l
    in
    t.free_list <- take (old_free - target_free) t.free_list
  end;
  t.cap <- buffers

let misses t = t.miss_count
let allocations t = t.alloc_count
