type segment = { base : Bytes.t; off : int; len : int }
type t = { mutable headers : string list; mutable data : segment list }

let copies_counter = ref 0
let bytes_counter = ref 0

let charge_copy n =
  incr copies_counter;
  bytes_counter := !bytes_counter + n

let physical_copies () = !copies_counter
let copied_bytes () = !bytes_counter

let reset_copy_counters () =
  copies_counter := 0;
  bytes_counter := 0

let of_bytes b = { headers = []; data = [ { base = b; off = 0; len = Bytes.length b } ] }
let create n = of_bytes (Bytes.make n '\000')
let of_string s = of_bytes (Bytes.of_string s)

let data_length m = List.fold_left (fun acc s -> acc + s.len) 0 m.data
let header_length m = List.fold_left (fun acc h -> acc + String.length h) 0 m.headers
let total_length m = header_length m + data_length m

let push m h = m.headers <- h :: m.headers

let pop m =
  match m.headers with
  | [] -> None
  | h :: rest ->
    m.headers <- rest;
    Some h

let peek_header m = match m.headers with [] -> None | h :: _ -> Some h
let copy m = { headers = m.headers; data = m.data }

let split m n =
  if n < 0 || n > data_length m then invalid_arg "Msg.split: index out of range";
  let rec take acc remaining segs =
    if remaining = 0 then (List.rev acc, segs)
    else
      match segs with
      | [] -> (List.rev acc, [])
      | s :: rest ->
        if s.len <= remaining then take (s :: acc) (remaining - s.len) rest
        else
          let first = { s with len = remaining } in
          let second = { s with off = s.off + remaining; len = s.len - remaining } in
          (List.rev (first :: acc), second :: rest)
  in
  let front, back = take [] n m.data in
  ({ headers = m.headers; data = front }, { headers = []; data = back })

let fragment m ~mtu =
  if mtu <= 0 then invalid_arg "Msg.fragment: non-positive MTU";
  let rec cut acc rest =
    let len = data_length rest in
    if len = 0 then List.rev acc
    else if len <= mtu then List.rev ({ headers = []; data = rest.data } :: acc)
    else
      let piece, remainder = split { headers = []; data = rest.data } mtu in
      cut (piece :: acc) remainder
  in
  cut [] { headers = []; data = m.data }

let concat ms = { headers = []; data = List.concat_map (fun m -> m.data) ms }

let blit_segments segs dst off =
  let pos = ref off in
  List.iter
    (fun s ->
      Bytes.blit s.base s.off dst !pos s.len;
      pos := !pos + s.len)
    segs

let data_to_string m =
  let n = data_length m in
  let b = Bytes.create n in
  blit_segments m.data b 0;
  charge_copy n;
  Bytes.unsafe_to_string b

let to_string m =
  let hl = header_length m and dl = data_length m in
  let b = Bytes.create (hl + dl) in
  let pos = ref 0 in
  List.iter
    (fun h ->
      Bytes.blit_string h 0 b !pos (String.length h);
      pos := !pos + String.length h)
    m.headers;
  blit_segments m.data b !pos;
  charge_copy (hl + dl);
  Bytes.unsafe_to_string b

let blit_data m dst off =
  blit_segments m.data dst off;
  charge_copy (data_length m)

let iter_data m f = List.iter (fun s -> f s.base s.off s.len) m.data
