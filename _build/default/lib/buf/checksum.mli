(** Error-detection codes used by the reliability-management mechanisms.

    The paper's error-detection component chooses among "none", the
    Internet 16-bit ones'-complement checksum (cheap, weak) and CRC-32
    (costlier, strong).  All functions operate on strings; messages are
    checksummed via {!Msg.iter_data} without materializing them. *)

val internet : string -> int
(** 16-bit ones'-complement Internet checksum (RFC 1071). *)

val internet_msg : Msg.t -> int
(** Internet checksum over a message's data region, zero-copy. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial, reflected). *)

val crc32_msg : Msg.t -> int32
(** CRC-32 over a message's data region, zero-copy. *)

val adler32 : string -> int32
(** Adler-32 rolling checksum. *)
