let internet_fold acc b off len =
  (* Ones'-complement sum of 16-bit big-endian words. *)
  let sum = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  !sum

let internet_finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let internet s =
  let b = Bytes.unsafe_of_string s in
  internet_finish (internet_fold 0 b 0 (Bytes.length b))

let internet_msg m =
  (* Pair bytes into 16-bit words across segment boundaries by carrying the
     leftover high byte from one segment into the next. *)
  let sum = ref 0 in
  let pending = ref (-1) in
  Msg.iter_data m (fun b off len ->
      for i = off to off + len - 1 do
        let byte = Char.code (Bytes.get b i) in
        if !pending < 0 then pending := byte
        else begin
          sum := !sum + ((!pending lsl 8) lor byte);
          pending := -1
        end
      done);
  if !pending >= 0 then sum := !sum + (!pending lsl 8);
  internet_finish !sum

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_fold acc b off len =
  let table = Lazy.force crc_table in
  let c = ref acc in
  for i = off to off + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  !c

let crc32 s =
  let b = Bytes.unsafe_of_string s in
  Int32.logxor (crc32_fold 0xFFFFFFFFl b 0 (Bytes.length b)) 0xFFFFFFFFl

let crc32_msg m =
  let acc = ref 0xFFFFFFFFl in
  Msg.iter_data m (fun b off len -> acc := crc32_fold !acc b off len);
  Int32.logxor !acc 0xFFFFFFFFl

let adler32 s =
  let modulus = 65521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod modulus;
      b := (!b + !a) mod modulus)
    s;
  Int32.logor (Int32.shift_left (Int32.of_int !b) 16) (Int32.of_int !a)
