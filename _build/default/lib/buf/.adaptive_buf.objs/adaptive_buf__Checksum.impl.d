lib/buf/checksum.ml: Array Bytes Char Int32 Lazy Msg String
