lib/buf/pool.ml: Bytes List
