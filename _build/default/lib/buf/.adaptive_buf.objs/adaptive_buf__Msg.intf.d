lib/buf/msg.mli: Bytes
