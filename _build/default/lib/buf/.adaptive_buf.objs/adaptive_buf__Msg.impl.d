lib/buf/msg.ml: Bytes List String
