lib/buf/checksum.mli: Msg
