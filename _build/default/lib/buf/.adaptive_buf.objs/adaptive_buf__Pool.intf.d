lib/buf/pool.mli: Bytes
