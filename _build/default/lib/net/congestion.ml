open Adaptive_sim

let constant link u = Link.set_background_utilization link u

let phases engine link steps =
  List.iter
    (fun (at, u) ->
      ignore
        (Engine.schedule engine ~at (fun () -> Link.set_background_utilization link u)))
    steps

let random_walk engine rng link ~every ~step ~floor ~ceiling =
  Engine.Timer.periodic engine ~interval:every (fun () ->
      let delta = Rng.uniform rng (-.step) step in
      let u = Link.background_utilization link +. delta in
      Link.set_background_utilization link (Float.max floor (Float.min ceiling u)))

let on_off engine rng link ~busy ~idle ~mean_busy ~mean_idle =
  let rec go_busy () =
    Link.set_background_utilization link busy;
    let dwell = Time.sec (Rng.exponential rng ~mean:(Time.to_sec mean_busy)) in
    ignore (Engine.schedule_after engine ~delay:(max 1 dwell) go_idle)
  and go_idle () =
    Link.set_background_utilization link idle;
    let dwell = Time.sec (Rng.exponential rng ~mean:(Time.to_sec mean_idle)) in
    ignore (Engine.schedule_after engine ~delay:(max 1 dwell) go_busy)
  in
  go_idle ()
