(** Hosts and routes.

    A topology names the end systems and records, for each ordered host
    pair, the current route: the list of {!Link.t} hops a packet crosses.
    Routes are mutable so that experiments can model routing changes
    (e.g. §4.1.2's terrestrial-to-satellite failover) with
    {!set_route}. *)

open Adaptive_sim

type addr = int
(** A host address. *)

type t
(** A topology instance. *)

val create : unit -> t
(** An empty topology. *)

val add_host : t -> string -> addr
(** Register a host and return its address. *)

val host_name : t -> addr -> string
(** Name of a registered host.  Raises [Not_found] on unknown address. *)

val hosts : t -> (addr * string) list
(** All hosts in registration order. *)

val set_route : t -> src:addr -> dst:addr -> Link.t list -> unit
(** Install (or replace) the route from [src] to [dst].  The empty list is
    rejected. *)

val set_symmetric_route : t -> a:addr -> b:addr -> Link.t list -> unit
(** Install the hop list from [a] to [b], and a reverse route from [b] to
    [a] built from fresh {e mirror} links with identical parameters (links
    are full-duplex: each direction has its own queue and transmitter).
    Callers keep handles only to the forward links — congestion or
    failure injected there affects the [a]→[b] direction, which is what
    experiments drive. *)

val route : t -> src:addr -> dst:addr -> Link.t list option
(** Current route, if one is installed. *)

val path_mtu : t -> src:addr -> dst:addr -> int option
(** Smallest hop MTU along the current route. *)

val path_propagation : t -> src:addr -> dst:addr -> Time.t option
(** Sum of hop propagation delays along the current route. *)

val bottleneck_bps : t -> src:addr -> dst:addr -> float option
(** Smallest hop bandwidth along the current route. *)

val links : t -> Link.t list
(** Every distinct link referenced by some route. *)

val mirror_link : Link.t -> Link.t
(** A fresh link with the same parameters (the reverse half of a
    full-duplex hop). *)
