open Adaptive_sim

let copper_ber = 1e-8
let wan_copper_ber = 1e-7
let fiber_ber = 1e-9

let ethernet () =
  Link.create ~name:"ethernet" ~bandwidth_bps:10e6 ~propagation:(Time.us 5)
    ~queue_pkts:50 ~ber:copper_ber ~mtu:1500 ()

let token_ring_4 () =
  Link.create ~name:"token-ring-4" ~bandwidth_bps:4e6 ~propagation:(Time.us 5)
    ~queue_pkts:50 ~ber:copper_ber ~mtu:4472 ()

let token_ring_16 () =
  Link.create ~name:"token-ring-16" ~bandwidth_bps:16e6 ~propagation:(Time.us 5)
    ~queue_pkts:50 ~ber:copper_ber ~mtu:4472 ()

let fddi () =
  Link.create ~name:"fddi" ~bandwidth_bps:100e6 ~propagation:(Time.us 50)
    ~queue_pkts:80 ~ber:fiber_ber ~mtu:4500 ()

let atm_155 () =
  Link.create ~name:"atm-155" ~bandwidth_bps:155e6 ~propagation:(Time.us 10)
    ~queue_pkts:128 ~ber:fiber_ber ~mtu:9180 ()

let atm_622 () =
  Link.create ~name:"atm-622" ~bandwidth_bps:622e6 ~propagation:(Time.us 10)
    ~queue_pkts:256 ~ber:fiber_ber ~mtu:9180 ()

let smds () =
  Link.create ~name:"smds" ~bandwidth_bps:45e6 ~propagation:(Time.ms 2)
    ~queue_pkts:100 ~ber:fiber_ber ~mtu:9188 ()

let t1_internet () =
  Link.create ~name:"t1-internet" ~bandwidth_bps:1.5e6 ~propagation:(Time.ms 25)
    ~queue_pkts:30 ~ber:wan_copper_ber ~mtu:576 ()

let t3_wan () =
  Link.create ~name:"t3-wan" ~bandwidth_bps:45e6 ~propagation:(Time.ms 15)
    ~queue_pkts:100 ~ber:wan_copper_ber ~mtu:4470 ()

let satellite () =
  Link.create ~name:"satellite" ~bandwidth_bps:10e6 ~propagation:(Time.ms 280)
    ~queue_pkts:100 ~ber:wan_copper_ber ~mtu:1500 ()

let custom = Link.create

let lan_path () = [ ethernet () ]
let campus_path () = [ ethernet (); fddi (); ethernet () ]

let internet_path () =
  [ ethernet (); t1_internet (); t3_wan (); t1_internet (); ethernet () ]

let wan_atm_hop () =
  Link.create ~name:"atm-155-span" ~bandwidth_bps:155e6 ~propagation:(Time.ms 10)
    ~queue_pkts:128 ~ber:fiber_ber ~mtu:9180 ()

let bisdn_path () =
  [ ethernet (); wan_atm_hop (); wan_atm_hop (); wan_atm_hop (); ethernet () ]

let atm_lfn_path () = [ wan_atm_hop (); wan_atm_hop (); wan_atm_hop () ]

let satellite_path () = [ ethernet (); satellite (); ethernet () ]
