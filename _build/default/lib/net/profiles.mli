(** Standard link and path profiles.

    §2.1(B) enumerates the network diversity ADAPTIVE must span: 4/16 Mb/s
    Token Ring, 10 Mb/s Ethernet, 100 Mb/s FDDI, 155/622 Mb/s ATM; copper
    vs fiber bit-error rates (~1e-7 vs ~1e-9 here, per bit); MTUs from ATM
    cells to FDDI frames; LAN/WAN diameters; and three interoperation
    environments — low-latency LANs, the congestion-prone Internet, and
    high-bandwidth high-latency B-ISDN WANs.  Each function returns a
    {e fresh} link so concurrent scenarios never share queue state
    accidentally. *)

open Adaptive_sim

val ethernet : unit -> Link.t
(** 10 Mb/s, 1500-byte MTU, 5 us propagation, copper BER. *)

val token_ring_4 : unit -> Link.t
(** 4 Mb/s token ring, 4472-byte MTU. *)

val token_ring_16 : unit -> Link.t
(** 16 Mb/s token ring, 4472-byte MTU. *)

val fddi : unit -> Link.t
(** 100 Mb/s fiber ring, 4500-byte MTU. *)

val atm_155 : unit -> Link.t
(** 155 Mb/s ATM (AAL5), 9180-byte MTU, fiber BER. *)

val atm_622 : unit -> Link.t
(** 622 Mb/s ATM, 9180-byte MTU, fiber BER. *)

val smds : unit -> Link.t
(** 45 Mb/s SMDS service, 9188-byte MTU. *)

val t1_internet : unit -> Link.t
(** 1.5 Mb/s congestion-prone Internet hop: 25 ms propagation, small MTU,
    shallow queue. *)

val t3_wan : unit -> Link.t
(** 45 Mb/s terrestrial WAN hop, 15 ms propagation. *)

val satellite : unit -> Link.t
(** 10 Mb/s geostationary hop: 280 ms one-way propagation. *)

val custom :
  ?name:string ->
  bandwidth_bps:float ->
  propagation:Time.t ->
  ?queue_pkts:int ->
  ?ber:float ->
  ?mtu:int ->
  unit ->
  Link.t
(** Escape hatch; same contract as {!Link.create}. *)

(** Ready-made end-to-end paths (hop lists), one per interoperation
    environment from §2.1(B). *)

val lan_path : unit -> Link.t list
(** Single Ethernet hop — low-utilization, low-latency LAN. *)

val campus_path : unit -> Link.t list
(** Ethernet → FDDI backbone → Ethernet. *)

val internet_path : unit -> Link.t list
(** Ethernet → T1 → T3 → T1 → Ethernet — congestion-prone, high-latency
    WAN. *)

val bisdn_path : unit -> Link.t list
(** Ethernet → three ATM-155 hops with 10 ms spans → Ethernet —
    high-bandwidth, high-latency public WAN. *)

val atm_lfn_path : unit -> Link.t list
(** Three ATM-155 spans with 10 ms propagation each and ATM access — a
    long fat network end to end (no slow access links). *)

val satellite_path : unit -> Link.t list
(** Ethernet → satellite hop → Ethernet. *)
