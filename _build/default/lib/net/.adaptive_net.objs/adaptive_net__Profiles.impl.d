lib/net/profiles.ml: Adaptive_sim Link Time
