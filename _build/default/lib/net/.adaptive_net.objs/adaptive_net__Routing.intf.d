lib/net/routing.mli: Adaptive_sim Engine Link Time Topology
