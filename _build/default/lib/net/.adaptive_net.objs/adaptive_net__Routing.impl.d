lib/net/routing.ml: Adaptive_sim Engine Hashtbl Link List Option Time Topology
