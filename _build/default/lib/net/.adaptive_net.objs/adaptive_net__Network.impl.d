lib/net/network.ml: Adaptive_sim Engine Hashtbl Link List Rng Time Topology
