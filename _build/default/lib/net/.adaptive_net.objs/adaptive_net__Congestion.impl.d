lib/net/congestion.ml: Adaptive_sim Engine Float Link List Rng Time
