lib/net/link.ml: Adaptive_sim Float Printf Rng Stdlib Time
