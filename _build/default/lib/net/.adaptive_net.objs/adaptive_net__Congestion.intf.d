lib/net/congestion.mli: Adaptive_sim Engine Link Rng Time
