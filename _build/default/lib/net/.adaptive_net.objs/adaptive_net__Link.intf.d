lib/net/link.mli: Adaptive_sim Rng Time
