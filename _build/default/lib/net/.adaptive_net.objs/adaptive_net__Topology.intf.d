lib/net/topology.mli: Adaptive_sim Link Time
