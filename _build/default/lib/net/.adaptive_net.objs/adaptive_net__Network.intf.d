lib/net/network.mli: Adaptive_sim Engine Rng Time Topology
