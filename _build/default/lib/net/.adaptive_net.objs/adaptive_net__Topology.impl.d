lib/net/topology.ml: Adaptive_sim Float Hashtbl Link List Time
