lib/net/profiles.mli: Adaptive_sim Link Time
