(** Cross-traffic (congestion) processes.

    §2.1(B) requires adapting to "dynamically changing network conditions
    such as congestion".  These processes drive a link's background
    utilization over simulated time so transport configurations can be
    exercised under static load, scheduled phase changes, random walks and
    bursty on/off cross traffic. *)

open Adaptive_sim

val constant : Link.t -> float -> unit
(** Fix the background utilization immediately. *)

val phases : Engine.t -> Link.t -> (Time.t * float) list -> unit
(** [phases e link steps] sets the utilization to each value at its
    absolute time.  Times must be in the engine's future. *)

val random_walk :
  Engine.t ->
  Rng.t ->
  Link.t ->
  every:Time.t ->
  step:float ->
  floor:float ->
  ceiling:float ->
  Engine.Timer.timer
(** Every [every], move utilization by a uniform step in
    [\[-step, +step\]], clamped to [\[floor, ceiling\]].  Returns the
    driving timer so callers can cancel the process. *)

val on_off :
  Engine.t ->
  Rng.t ->
  Link.t ->
  busy:float ->
  idle:float ->
  mean_busy:Time.t ->
  mean_idle:Time.t ->
  unit
(** Alternate between utilization [busy] and [idle] with exponentially
    distributed dwell times — bursty cross traffic. *)
