open Adaptive_sim

type connection = Implicit | Two_way | Three_way

type transmission =
  | Stop_and_wait
  | Sliding_window of { window : int }
  | Rate_based of { rate_bps : float; burst : int }

type congestion_window =
  | No_congestion_control
  | Slow_start of { initial : int; threshold : int }

type detection = No_detection | Internet_checksum | Crc32

type reporting =
  | No_report
  | Cumulative_ack of { delay : Time.t }
  | Selective_ack of { delay : Time.t }
  | Nack_on_gap

type recovery =
  | No_recovery
  | Go_back_n
  | Selective_repeat
  | Forward_error_correction of { group : int }

type ordering = Unordered | Ordered
type duplicates = Accept_duplicates | Drop_duplicates
type delivery = As_available | Playout of { target : Time.t }

let connection_to_string = function
  | Implicit -> "implicit"
  | Two_way -> "2way"
  | Three_way -> "3way"

let connection_of_string = function
  | "implicit" -> Some Implicit
  | "2way" -> Some Two_way
  | "3way" -> Some Three_way
  | _ -> None

let transmission_to_string = function
  | Stop_and_wait -> "stopwait"
  | Sliding_window { window } -> Printf.sprintf "window:%d" window
  | Rate_based { rate_bps; burst } -> Printf.sprintf "rate:%.0f:%d" rate_bps burst

let transmission_of_string s =
  match String.split_on_char ':' s with
  | [ "stopwait" ] -> Some Stop_and_wait
  | [ "window"; w ] -> Option.map (fun window -> Sliding_window { window }) (int_of_string_opt w)
  | [ "rate"; r; b ] -> (
    match (float_of_string_opt r, int_of_string_opt b) with
    | Some rate_bps, Some burst -> Some (Rate_based { rate_bps; burst })
    | _ -> None)
  | _ -> None

let congestion_window_to_string = function
  | No_congestion_control -> "nocc"
  | Slow_start { initial; threshold } -> Printf.sprintf "slowstart:%d:%d" initial threshold

let congestion_window_of_string s =
  match String.split_on_char ':' s with
  | [ "nocc" ] -> Some No_congestion_control
  | [ "slowstart"; i; t ] -> (
    match (int_of_string_opt i, int_of_string_opt t) with
    | Some initial, Some threshold -> Some (Slow_start { initial; threshold })
    | _ -> None)
  | _ -> None

let detection_to_string = function
  | No_detection -> "nodetect"
  | Internet_checksum -> "cksum"
  | Crc32 -> "crc32"

let detection_of_string = function
  | "nodetect" -> Some No_detection
  | "cksum" -> Some Internet_checksum
  | "crc32" -> Some Crc32
  | _ -> None

let reporting_to_string = function
  | No_report -> "noreport"
  | Cumulative_ack { delay } -> Printf.sprintf "cumack:%d" delay
  | Selective_ack { delay } -> Printf.sprintf "sack:%d" delay
  | Nack_on_gap -> "nack"

let reporting_of_string s =
  match String.split_on_char ':' s with
  | [ "noreport" ] -> Some No_report
  | [ "cumack"; d ] -> Option.map (fun delay -> Cumulative_ack { delay }) (int_of_string_opt d)
  | [ "sack"; d ] -> Option.map (fun delay -> Selective_ack { delay }) (int_of_string_opt d)
  | [ "nack" ] -> Some Nack_on_gap
  | _ -> None

let recovery_to_string = function
  | No_recovery -> "norecover"
  | Go_back_n -> "gbn"
  | Selective_repeat -> "srepeat"
  | Forward_error_correction { group } -> Printf.sprintf "fec:%d" group

let recovery_of_string s =
  match String.split_on_char ':' s with
  | [ "norecover" ] -> Some No_recovery
  | [ "gbn" ] -> Some Go_back_n
  | [ "srepeat" ] -> Some Selective_repeat
  | [ "fec"; g ] -> Option.map (fun group -> Forward_error_correction { group }) (int_of_string_opt g)
  | _ -> None

let ordering_to_string = function Unordered -> "unordered" | Ordered -> "ordered"

let ordering_of_string = function
  | "unordered" -> Some Unordered
  | "ordered" -> Some Ordered
  | _ -> None

let duplicates_to_string = function
  | Accept_duplicates -> "dups-ok"
  | Drop_duplicates -> "dups-drop"

let duplicates_of_string = function
  | "dups-ok" -> Some Accept_duplicates
  | "dups-drop" -> Some Drop_duplicates
  | _ -> None

let delivery_to_string = function
  | As_available -> "asap"
  | Playout { target } -> Printf.sprintf "playout:%d" target

let delivery_of_string s =
  match String.split_on_char ':' s with
  | [ "asap" ] -> Some As_available
  | [ "playout"; t ] -> Option.map (fun target -> Playout { target }) (int_of_string_opt t)
  | _ -> None

let pp_of to_string fmt v = Format.pp_print_string fmt (to_string v)
let pp_connection fmt v = pp_of connection_to_string fmt v
let pp_transmission fmt v = pp_of transmission_to_string fmt v
let pp_congestion_window fmt v = pp_of congestion_window_to_string fmt v
let pp_detection fmt v = pp_of detection_to_string fmt v
let pp_reporting fmt v = pp_of reporting_to_string fmt v
let pp_recovery fmt v = pp_of recovery_to_string fmt v
let pp_ordering fmt v = pp_of ordering_to_string fmt v
let pp_duplicates fmt v = pp_of duplicates_to_string fmt v
let pp_delivery fmt v = pp_of delivery_to_string fmt v
