(** Concrete wire format for transport PDUs.

    §2.2(C) criticizes the classic suites' control formats: TCP and TP4
    keep the checksum in the header (precluding simultaneous transmission
    and checksum computation) and use unaligned, variable-format fields.
    This codec is the "efficient control format" the paper calls for:

    - every header field is 32-bit aligned and fixed-size;
    - payload-bearing PDUs (data, parity) carry their 16-bit Internet
      checksum in the {e trailer}, so a sender can compute it while the
      packet streams out and a receiver can verify while it streams in;
    - control PDUs carry the checksum at a fixed header offset.

    [encode] always produces exactly {!Pdu.wire_bytes} bytes — a property
    the test suite enforces — so the simulator's size accounting and the
    byte-level format cannot drift apart.  Segments without payload are
    encoded with zero filler of the declared length. *)

type error =
  | Truncated  (** Fewer bytes than the header or declared lengths need. *)
  | Bad_type of int  (** Unknown PDU type tag. *)
  | Bad_checksum  (** Verification failed: the PDU was damaged. *)

val error_to_string : error -> string
(** Human-readable rendering. *)

val encode : Pdu.t -> string
(** Serialize a PDU; [String.length (encode p) = Pdu.wire_bytes p]. *)

val decode : string -> (Pdu.t, error) result
(** Parse and verify a PDU.  Decoded data/parity segments always carry a
    payload (the bytes on the wire). *)

val decode_unchecked : string -> (Pdu.t, error) result
(** Parse without checksum verification — what a no-detection
    configuration does. *)
