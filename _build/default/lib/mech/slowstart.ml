type t = {
  initial : int;
  mutable cwnd : float;
  mutable ssthresh : int;
  mutable loss_events : int;
}

let create ~initial ~threshold =
  if initial < 1 || threshold < 1 then invalid_arg "Slowstart.create";
  { initial; cwnd = float_of_int initial; ssthresh = threshold; loss_events = 0 }

let window t = max 1 (int_of_float t.cwnd)
let threshold t = t.ssthresh

let on_ack t =
  if window t < t.ssthresh then t.cwnd <- t.cwnd +. 1.0
  else t.cwnd <- t.cwnd +. (1.0 /. Float.max 1.0 t.cwnd)

let on_loss t =
  t.ssthresh <- max 2 (window t / 2);
  t.cwnd <- float_of_int t.initial;
  t.loss_events <- t.loss_events + 1

let losses t = t.loss_events
