open Adaptive_buf

type error = Truncated | Bad_type of int | Bad_checksum

let error_to_string = function
  | Truncated -> "truncated packet"
  | Bad_type t -> Printf.sprintf "unknown PDU type %d" t
  | Bad_checksum -> "checksum verification failed"

(* Type tags. *)
let t_data = 1
let t_parity = 2
let t_ack = 3
let t_nack = 4
let t_syn = 5
let t_syn_ack = 6
let t_ack_of_syn = 7
let t_fin = 8
let t_fin_ack = 9
let t_signal = 10
let t_signal_ack = 11

let set_u8 b off v = Bytes.set_uint8 b off (v land 0xff)
let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xffff)
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let set_u64 b off v = Bytes.set_int64_be b off (Int64.of_int v)
let get_u8 = Bytes.get_uint8
let get_u16 = Bytes.get_uint16_be
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff
let get_u64 b off = Int64.to_int (Bytes.get_int64_be b off)

let payload_string (seg : Pdu.seg) =
  match seg.Pdu.payload with
  | Some m -> Msg.data_to_string m
  | None -> String.make seg.Pdu.seg_bytes '\000'

(* Checksum over the whole packet with the checksum field zeroed.  For
   payload-bearing PDUs the field is the 2-byte trailer; control PDUs keep
   it at offset 2. *)
let checksum_offset b =
  match get_u8 b 0 with
  | t when t = t_data || t = t_parity -> Bytes.length b - 2
  | _ -> 2

let seal b =
  let off = checksum_offset b in
  set_u16 b off 0;
  set_u16 b off (Checksum.internet (Bytes.unsafe_to_string b))

let verify b =
  let off = checksum_offset b in
  let found = get_u16 b off in
  set_u16 b off 0;
  let expect = Checksum.internet (Bytes.unsafe_to_string b) in
  set_u16 b off found;
  found = expect

(* ------------------------------------------------------------- encode *)

let rec encode_bytes (pdu : Pdu.t) =
  let b = Bytes.make (Pdu.wire_bytes pdu) '\000' in
  (match pdu with
  | Pdu.Data { conn; seg; retransmit; tx_stamp } ->
    set_u8 b 0 t_data;
    set_u8 b 1
      ((if seg.Pdu.app_last then 1 else 0) lor if retransmit then 2 else 0);
    set_u16 b 2 seg.Pdu.seg_bytes;
    set_u32 b 4 conn;
    set_u32 b 8 seg.Pdu.seq;
    set_u64 b 12 seg.Pdu.app_stamp;
    set_u64 b 20 tx_stamp;
    Bytes.blit_string (payload_string seg) 0 b 30 seg.Pdu.seg_bytes
  | Pdu.Parity { conn; group_start; group_len; covered; parity } ->
    let block =
      match parity with
      | Some m -> Msg.data_to_string m
      | None ->
        String.make (List.fold_left (fun acc s -> max acc s.Pdu.seg_bytes) 0 covered) '\000'
    in
    set_u8 b 0 t_parity;
    set_u8 b 1 (List.length covered);
    set_u16 b 2 (String.length block);
    set_u32 b 4 conn;
    set_u32 b 8 group_start;
    set_u16 b 12 group_len;
    List.iteri
      (fun i (s : Pdu.seg) ->
        let off = 14 + (16 * i) in
        set_u32 b off s.Pdu.seq;
        set_u16 b (off + 4) s.Pdu.seg_bytes;
        set_u8 b (off + 6) (if s.Pdu.app_last then 1 else 0);
        set_u64 b (off + 8) s.Pdu.app_stamp)
      covered;
    Bytes.blit_string block 0 b (14 + (16 * List.length covered)) (String.length block)
  | Pdu.Ack { conn; cum; window; sack; echo } ->
    set_u8 b 0 t_ack;
    set_u8 b 1 (List.length sack);
    set_u32 b 4 conn;
    set_u32 b 8 cum;
    set_u32 b 12 window;
    set_u64 b 16 echo;
    List.iteri (fun i s -> set_u32 b (24 + (4 * i)) s) sack
  | Pdu.Nack { conn; missing } ->
    set_u8 b 0 t_nack;
    set_u8 b 1 (List.length missing);
    set_u32 b 4 conn;
    List.iteri (fun i s -> set_u32 b (12 + (4 * i)) s) missing
  | Pdu.Syn { conn; blob; first } ->
    let inner = match first with Some p -> encode_bytes p | None -> Bytes.empty in
    set_u8 b 0 t_syn;
    set_u8 b 1 (if first = None then 0 else 1);
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    set_u32 b 12 (Bytes.length inner);
    Bytes.blit_string blob 0 b 24 (String.length blob);
    Bytes.blit inner 0 b (24 + String.length blob) (Bytes.length inner)
  | Pdu.Syn_ack { conn; accepted; blob } ->
    set_u8 b 0 t_syn_ack;
    set_u8 b 1 (if accepted then 1 else 0);
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    Bytes.blit_string blob 0 b 24 (String.length blob)
  | Pdu.Ack_of_syn { conn } ->
    set_u8 b 0 t_ack_of_syn;
    set_u32 b 4 conn
  | Pdu.Fin { conn; graceful } ->
    set_u8 b 0 t_fin;
    set_u8 b 1 (if graceful then 1 else 0);
    set_u32 b 4 conn
  | Pdu.Fin_ack { conn } ->
    set_u8 b 0 t_fin_ack;
    set_u32 b 4 conn
  | Pdu.Signal { conn; blob } ->
    set_u8 b 0 t_signal;
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    Bytes.blit_string blob 0 b 16 (String.length blob)
  | Pdu.Signal_ack { conn; blob } ->
    set_u8 b 0 t_signal_ack;
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    Bytes.blit_string blob 0 b 16 (String.length blob));
  seal b;
  b

let encode pdu = Bytes.unsafe_to_string (encode_bytes pdu)

(* ------------------------------------------------------------- decode *)

let sub_string b off len = Bytes.sub_string b off len

let rec decode_body b =
  let len = Bytes.length b in
  if len < 8 then Error Truncated
  else
    let tag = get_u8 b 0 in
    let conn = get_u32 b 4 in
    let need n = if len < n then Error Truncated else Ok () in
    let ( let* ) = Result.bind in
    if tag = t_data then
      let* () = need 32 in
      let plen = get_u16 b 2 in
      let* () = need (32 + plen) in
      let flags = get_u8 b 1 in
      Ok
        (Pdu.Data
           {
             conn;
             seg =
               Pdu.seg ~seq:(get_u32 b 8) ~bytes:plen
                 ~stamp:(get_u64 b 12)
                 ~last:(flags land 1 = 1)
                 ~payload:(Msg.of_string (sub_string b 30 plen))
                 ();
             retransmit = flags land 2 = 2;
             tx_stamp = get_u64 b 20;
           })
    else if tag = t_parity then
      let count = get_u8 b 1 in
      let plen = get_u16 b 2 in
      let* () = need (16 + (16 * count) + plen) in
      let covered =
        List.init count (fun i ->
            let off = 14 + (16 * i) in
            Pdu.seg ~seq:(get_u32 b off)
              ~bytes:(get_u16 b (off + 4))
              ~last:(get_u8 b (off + 6) = 1)
              ~stamp:(get_u64 b (off + 8))
              ())
      in
      Ok
        (Pdu.Parity
           {
             conn;
             group_start = get_u32 b 8;
             group_len = get_u16 b 12;
             covered;
             parity = Some (Msg.of_string (sub_string b (14 + (16 * count)) plen));
           })
    else if tag = t_ack then
      let count = get_u8 b 1 in
      let* () = need (24 + (4 * count)) in
      Ok
        (Pdu.Ack
           {
             conn;
             cum = get_u32 b 8;
             window = get_u32 b 12;
             echo = get_u64 b 16;
             sack = List.init count (fun i -> get_u32 b (24 + (4 * i)));
           })
    else if tag = t_nack then
      let count = get_u8 b 1 in
      let* () = need (12 + (4 * count)) in
      Ok (Pdu.Nack { conn; missing = List.init count (fun i -> get_u32 b (12 + (4 * i))) })
    else if tag = t_syn then
      let* () = need 24 in
      let blob_len = get_u32 b 8 in
      let inner_len = get_u32 b 12 in
      let* () = need (24 + blob_len + inner_len) in
      let* first =
        if get_u8 b 1 = 0 then Ok None
        else
          let* inner = decode_body (Bytes.sub b (24 + blob_len) inner_len) in
          Ok (Some inner)
      in
      Ok (Pdu.Syn { conn; blob = sub_string b 24 blob_len; first })
    else if tag = t_syn_ack then
      let* () = need 24 in
      let blob_len = get_u32 b 8 in
      let* () = need (24 + blob_len) in
      Ok (Pdu.Syn_ack { conn; accepted = get_u8 b 1 = 1; blob = sub_string b 24 blob_len })
    else if tag = t_ack_of_syn then Ok (Pdu.Ack_of_syn { conn })
    else if tag = t_fin then Ok (Pdu.Fin { conn; graceful = get_u8 b 1 = 1 })
    else if tag = t_fin_ack then Ok (Pdu.Fin_ack { conn })
    else if tag = t_signal || tag = t_signal_ack then begin
      let* () = need 16 in
      let blob_len = get_u32 b 8 in
      let* () = need (16 + blob_len) in
      let blob = sub_string b 16 blob_len in
      if tag = t_signal then Ok (Pdu.Signal { conn; blob })
      else Ok (Pdu.Signal_ack { conn; blob })
    end
    else Error (Bad_type tag)

let decode_unchecked s = decode_body (Bytes.of_string s)

let decode s =
  let b = Bytes.of_string s in
  if Bytes.length b < 8 then Error Truncated
  else if not (verify b) then Error Bad_checksum
  else decode_body b
