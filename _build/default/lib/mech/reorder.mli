(** Receiver-side sequencing, gap tracking and duplicate handling.

    One structure serves every receiver configuration: with [Ordered]
    delivery it buffers out-of-order segments and releases in-sequence
    runs; with [Unordered] it releases immediately while still tracking
    the cumulative-ack point, gaps (for NACK/SACK generation) and
    duplicates.  Sequence numbers are never reused within a session
    (§2.2(C)'s non-wrapping sequence numbers). *)

type verdict =
  | Deliver of Pdu.seg list  (** Release these segments to the
                                 application now, in order. *)
  | Buffered  (** Held for reordering. *)
  | Duplicate  (** Already seen (and duplicates are dropped). *)

type t
(** Receiver state. *)

val create :
  ?start:int -> ordering:Params.ordering -> duplicates:Params.duplicates -> unit -> t
(** Fresh receiver expecting sequence number [start] (default 0) — late
    joiners of a multicast session start at the stream's current
    position. *)

val expected : t -> int
(** Cumulative point: every [seq < expected t] has been received. *)

val offer : t -> Pdu.seg -> verdict
(** Present an arriving (or FEC-recovered) segment. *)

val missing : t -> int list
(** Gaps: sequence numbers in [\[expected, highest_seen\]] not yet
    received, ascending. *)

val highest_seen : t -> int
(** Largest sequence number received, [-1] initially. *)

val sack_list : t -> int list
(** Received sequence numbers above the cumulative point, ascending —
    the SACK blocks advertised by selective acknowledgment. *)

val buffered_count : t -> int
(** Segments held awaiting missing predecessors. *)

val seen : t -> int -> bool
(** Whether the sequence number has been received. *)

val advance_past_gap : t -> int * Pdu.seg list
(** Give up on the leading gap (configurations without retransmission):
    move the cumulative point to the first received sequence number above
    it and release the contiguous run found there.  Returns the number of
    sequence numbers skipped and the released run; [(0, [])] when there is
    no gap to skip. *)
