(** Forward error correction (XOR parity groups).

    The recovery alternative the paper's policies switch to "when the
    round-trip delay time increases beyond some threshold (e.g., when a
    route switches from a terrestrial link to a satellite link)" (§3(C)).
    The sender emits one parity PDU per [group] data segments; the
    receiver reconstructs any single missing segment of a group locally,
    trading ~1/group bandwidth overhead for recovery without a
    retransmission round trip.

    When segments carry real payloads ({!Pdu.seg}'s [payload]), the parity
    block is the byte-wise XOR of the group's payloads (padded to the
    longest) and reconstruction recovers the {e actual bytes} of the
    missing segment; otherwise recovery operates on metadata alone. *)

open Adaptive_buf

val parity_of : Pdu.seg list -> Msg.t option
(** Byte-wise XOR of the covered segments' payloads, padded to the
    longest.  [None] when any covered segment carries no payload. *)

module Sender : sig
  type t
  (** Sender-side group accumulator. *)

  val create : group:int -> t
  (** [create ~group] emits parity every [group] segments; [group >= 2]. *)

  val group : t -> int
  (** Configured group size. *)

  val push : t -> Pdu.seg -> Pdu.seg list option
  (** Add an outgoing segment.  Returns [Some covered] when the group
      completes: the caller must emit a parity PDU covering those
      segments. *)

  val flush : t -> Pdu.seg list option
  (** Close a partial group (end of stream); [Some covered] if any
      segments were pending. *)

  val pending : t -> int
  (** Segments accumulated toward the current group. *)
end

module Receiver : sig
  type t
  (** Receiver-side reconstruction state. *)

  val create : ?payload_cache:int -> unit -> t
  (** Fresh state.  [payload_cache] (default 256) bounds how many recent
      segment payloads are retained for byte-level reconstruction; groups
      whose members have been evicted still reconstruct metadata. *)

  val on_data : t -> Pdu.seg -> Pdu.seg list
  (** Note a received data segment.  May complete a previously received
      parity group; returns any segments thereby reconstructed. *)

  val on_parity :
    t -> covered:Pdu.seg list -> parity:Msg.t option -> Pdu.seg list
  (** Process a parity PDU.  Returns reconstructed segments (at most one
      per group), carrying recovered bytes when the parity block and every
      other member's payload are available.  Groups with more than one
      loss stay pending until enough members arrive. *)

  val recovered : t -> int
  (** Total segments reconstructed so far. *)

  val pending_groups : t -> int
  (** Parity groups still waiting for members. *)
end
