(** TCP-style congestion window (slow start / congestion avoidance /
    multiplicative decrease).

    §2.2(C) notes TCP "simulates access control" with slow start and
    multiplicative decrease; the TCP-like baseline and any ADAPTIVE
    configuration that selects [Slow_start] congestion control layer this
    window under the advertised flow-control window: the effective send
    window is the minimum of the two. *)

type t
(** Congestion-window state (in segments). *)

val create : initial:int -> threshold:int -> t
(** [initial] is the window after a loss and at start; [threshold] the
    slow-start/congestion-avoidance boundary. *)

val window : t -> int
(** Current congestion window, segments ([>= 1]). *)

val threshold : t -> int
(** Current slow-start threshold. *)

val on_ack : t -> unit
(** Acknowledgment of new data: exponential growth below threshold,
    additive (1 segment per window) above it. *)

val on_loss : t -> unit
(** Loss signal: threshold becomes half the window, window collapses to
    the initial value (multiplicative decrease). *)

val losses : t -> int
(** Number of loss events reacted to. *)
