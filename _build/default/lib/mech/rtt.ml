open Adaptive_sim

type t = {
  mutable srtt : float; (* seconds *)
  mutable rttvar : float;
  mutable nsamples : int;
  mutable backoff : int;
  initial_rto : Time.t;
}

let create ?(initial_rto = Time.sec 1.0) () =
  { srtt = 0.0; rttvar = 0.0; nsamples = 0; backoff = 0; initial_rto }

let observe t sample =
  let r = Time.to_sec sample in
  if t.nsamples = 0 then begin
    t.srtt <- r;
    t.rttvar <- r /. 2.0
  end
  else begin
    let delta = Float.abs (t.srtt -. r) in
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. delta);
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. r)
  end;
  t.nsamples <- t.nsamples + 1;
  t.backoff <- 0

let srtt t = if t.nsamples = 0 then None else Some (Time.sec t.srtt)
let rttvar t = if t.nsamples = 0 then None else Some (Time.sec t.rttvar)

let clamp_rto v = Time.max (Time.ms 10) (Time.min (Time.sec 60.0) v)

let rto t =
  (* Variance term floored at a 10 ms granularity (RFC 6298's G) so a
     converged estimator still rides out ack-clock jitter. *)
  let base =
    if t.nsamples = 0 then t.initial_rto
    else Time.sec (t.srtt +. Float.max (4.0 *. t.rttvar) 0.010)
  in
  let shift = min t.backoff 16 in
  clamp_rto (base * (1 lsl shift))

let on_timeout t = t.backoff <- t.backoff + 1
let reset_backoff t = t.backoff <- 0
let samples t = t.nsamples
