open Adaptive_sim

type seg = {
  seq : int;
  seg_bytes : int;
  app_stamp : Time.t;
  app_last : bool;
  payload : Adaptive_buf.Msg.t option;
}

let seg ?payload ?(last = false) ?(stamp = Time.zero) ~seq ~bytes () =
  (match payload with
  | Some m when Adaptive_buf.Msg.data_length m <> bytes ->
    invalid_arg "Pdu.seg: payload length disagrees with bytes"
  | Some _ | None -> ());
  { seq; seg_bytes = bytes; app_stamp = stamp; app_last = last; payload }

let strip_payload s = { s with payload = None }

type t =
  | Data of { conn : int; seg : seg; retransmit : bool; tx_stamp : Time.t }
  | Parity of {
      conn : int;
      group_start : int;
      group_len : int;
      covered : seg list;
      parity : Adaptive_buf.Msg.t option;
    }
  | Ack of { conn : int; cum : int; window : int; sack : int list; echo : Time.t }
  | Nack of { conn : int; missing : int list }
  | Syn of { conn : int; blob : string; first : t option }
  | Syn_ack of { conn : int; accepted : bool; blob : string }
  | Ack_of_syn of { conn : int }
  | Fin of { conn : int; graceful : bool }
  | Fin_ack of { conn : int }
  | Signal of { conn : int; blob : string }
  | Signal_ack of { conn : int; blob : string }

let conn_id = function
  | Data { conn; _ }
  | Parity { conn; _ }
  | Ack { conn; _ }
  | Nack { conn; _ }
  | Syn { conn; _ }
  | Syn_ack { conn; _ }
  | Ack_of_syn { conn }
  | Fin { conn; _ }
  | Fin_ack { conn }
  | Signal { conn; _ }
  | Signal_ack { conn; _ } -> conn

(* Sizes follow the concrete wire layout in {!Codec}: word-aligned
   headers, 2-byte checksum (in the trailer for payload-bearing PDUs), a
   full 8-byte timestamp on data. *)
let rec header_bytes = function
  | Data _ -> 32
  | Parity { covered; _ } -> 16 + (16 * List.length covered)
  | Ack { sack; _ } -> 24 + (4 * List.length sack)
  | Nack { missing; _ } -> 12 + (4 * List.length missing)
  | Syn { blob; first; _ } ->
    24 + String.length blob
    + (match first with Some p -> header_bytes p + payload_bytes p | None -> 0)
  | Syn_ack { blob; _ } -> 24 + String.length blob
  | Ack_of_syn _ -> 12
  | Fin _ -> 12
  | Fin_ack _ -> 12
  | Signal { blob; _ } -> 16 + String.length blob
  | Signal_ack { blob; _ } -> 16 + String.length blob

and payload_bytes = function
  | Data { seg; _ } -> seg.seg_bytes
  | Parity { covered; _ } ->
    List.fold_left (fun acc s -> max acc s.seg_bytes) 0 covered
  | Syn _ | Ack _ | Nack _ | Syn_ack _ | Ack_of_syn _ | Fin _ | Fin_ack _
  | Signal _ | Signal_ack _ -> 0

let wire_bytes p = header_bytes p + payload_bytes p

let describe = function
  | Data { seg; retransmit; _ } ->
    Printf.sprintf "data#%d%s" seg.seq (if retransmit then "(rtx)" else "")
  | Parity { group_start; group_len; _ } ->
    Printf.sprintf "parity[%d..%d]" group_start (group_start + group_len - 1)
  | Ack { cum; sack = []; _ } -> Printf.sprintf "ack<%d" cum
  | Ack { cum; sack; _ } -> Printf.sprintf "ack<%d+%d" cum (List.length sack)
  | Nack { missing; _ } -> Printf.sprintf "nack(%d)" (List.length missing)
  | Syn { first = None; _ } -> "syn"
  | Syn { first = Some _; _ } -> "syn+data"
  | Syn_ack { accepted; _ } -> if accepted then "syn-ack" else "syn-rej"
  | Ack_of_syn _ -> "ack-of-syn"
  | Fin { graceful; _ } -> if graceful then "fin" else "abort"
  | Fin_ack _ -> "fin-ack"
  | Signal _ -> "signal"
  | Signal_ack _ -> "signal-ack"
