open Adaptive_sim

type t = { mutable target : Time.t; mutable released : int; mutable discarded : int }
type verdict = Release_at of Time.t | Late of Time.t

let create ~target = { target; released = 0; discarded = 0 }
let target t = t.target
let set_target t v = t.target <- v

let offer t ~app_stamp ~arrival =
  let point = Time.add app_stamp t.target in
  if arrival <= point then begin
    t.released <- t.released + 1;
    Release_at point
  end
  else begin
    t.discarded <- t.discarded + 1;
    Late (Time.diff arrival point)
  end

let released t = t.released
let discarded t = t.discarded
