open Adaptive_buf

(* Byte-wise XOR of payloads, padded with zeros to the longest. *)
let xor_strings parts =
  let width = List.fold_left (fun acc s -> max acc (String.length s)) 0 parts in
  let acc = Bytes.make width '\000' in
  List.iter
    (fun s ->
      String.iteri
        (fun i c -> Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code c)))
        s)
    parts;
  Bytes.unsafe_to_string acc

let parity_of covered =
  let payloads =
    List.map (fun (s : Pdu.seg) -> Option.map Msg.data_to_string s.Pdu.payload) covered
  in
  if List.exists Option.is_none payloads || payloads = [] then None
  else Some (Msg.of_string (xor_strings (List.filter_map Fun.id payloads)))

module Sender = struct
  type t = { group : int; mutable acc : Pdu.seg list (* newest first *) }

  let create ~group =
    if group < 2 then invalid_arg "Fec.Sender.create: group must be >= 2";
    { group; acc = [] }

  let group t = t.group

  let push t seg =
    t.acc <- seg :: t.acc;
    if List.length t.acc >= t.group then begin
      let covered = List.rev t.acc in
      t.acc <- [];
      Some covered
    end
    else None

  let flush t =
    if t.acc = [] then None
    else begin
      let covered = List.rev t.acc in
      t.acc <- [];
      Some covered
    end

  let pending t = List.length t.acc
end

module Receiver = struct
  type pending = { covered : Pdu.seg list; parity : Msg.t option }

  type t = {
    seen : (int, unit) Hashtbl.t;
    groups : (int, pending) Hashtbl.t; (* pending parity, keyed by start *)
    payloads : (int, string) Hashtbl.t; (* recent payload bytes by seq *)
    order : int Queue.t; (* eviction order for [payloads] *)
    cache_cap : int;
    mutable recovered_count : int;
  }

  let create ?(payload_cache = 256) () =
    {
      seen = Hashtbl.create 64;
      groups = Hashtbl.create 8;
      payloads = Hashtbl.create 64;
      order = Queue.create ();
      cache_cap = payload_cache;
      recovered_count = 0;
    }

  let note_seen t (seg : Pdu.seg) =
    if not (Hashtbl.mem t.seen seg.Pdu.seq) then Hashtbl.add t.seen seg.Pdu.seq ();
    match seg.Pdu.payload with
    | None -> ()
    | Some m ->
      if t.cache_cap > 0 && not (Hashtbl.mem t.payloads seg.Pdu.seq) then begin
        if Queue.length t.order >= t.cache_cap then begin
          let old = Queue.pop t.order in
          Hashtbl.remove t.payloads old
        end;
        Hashtbl.add t.payloads seg.Pdu.seq (Msg.data_to_string m);
        Queue.push seg.Pdu.seq t.order
      end

  let missing_of t covered =
    List.filter (fun (s : Pdu.seg) -> not (Hashtbl.mem t.seen s.Pdu.seq)) covered

  (* Reconstruct the missing segment's bytes from the parity block and the
     cached payloads of every other group member, when all are present. *)
  let rebuild_payload t g (missing : Pdu.seg) =
    match g.parity with
    | None -> None
    | Some parity ->
      let others =
        List.filter (fun (s : Pdu.seg) -> s.Pdu.seq <> missing.Pdu.seq) g.covered
      in
      let cached =
        List.map (fun (s : Pdu.seg) -> Hashtbl.find_opt t.payloads s.Pdu.seq) others
      in
      if List.exists Option.is_none cached then None
      else
        let block =
          xor_strings (Msg.data_to_string parity :: List.filter_map Fun.id cached)
        in
        Some (Msg.of_string (String.sub block 0 missing.Pdu.seg_bytes))

  (* With parity in hand, a group reconstructs once exactly one covered
     segment is missing.  Returns the reconstruction, if any. *)
  let resolve t g =
    match missing_of t g.covered with
    | [] -> `Complete
    | [ seg ] ->
      let rebuilt = { seg with Pdu.payload = rebuild_payload t g seg } in
      note_seen t rebuilt;
      t.recovered_count <- t.recovered_count + 1;
      `Recovered rebuilt
    | _ :: _ :: _ -> `Still_short

  let on_data t seg =
    note_seen t seg;
    let resolved = ref [] in
    let finished = ref [] in
    Hashtbl.iter
      (fun start g ->
        if List.exists (fun (s : Pdu.seg) -> s.Pdu.seq = seg.Pdu.seq) g.covered then
          match resolve t g with
          | `Complete -> finished := start :: !finished
          | `Recovered rebuilt ->
            finished := start :: !finished;
            resolved := rebuilt :: !resolved
          | `Still_short -> ())
      t.groups;
    List.iter (Hashtbl.remove t.groups) !finished;
    !resolved

  let on_parity t ~covered ~parity =
    match covered with
    | [] -> []
    | first :: _ -> (
      let g = { covered; parity } in
      match resolve t g with
      | `Complete -> []
      | `Recovered seg -> [ seg ]
      | `Still_short ->
        Hashtbl.replace t.groups first.Pdu.seq g;
        [])

  let recovered t = t.recovered_count
  let pending_groups t = Hashtbl.length t.groups
end
