(** Rate-based transmission control (token bucket).

    The paper calls for "rate control ... to handle congestion" (§2.2(C))
    and names "increase the inter-PDU gap used by the rate control
    mechanism" as an SCS-level reconfiguration (§4.1.2).  The pacer is a
    token bucket: tokens accrue at the configured rate up to a burst
    bound; a segment may depart once enough tokens have accrued.
    {!set_rate} adjusts the inter-PDU gap live. *)

open Adaptive_sim

type t
(** A pacer. *)

val create : rate_bps:float -> burst_bytes:int -> t
(** [create ~rate_bps ~burst_bytes] allows [burst_bytes] back-to-back and
    [rate_bps] sustained. *)

val rate_bps : t -> float
(** Current sustained rate. *)

val set_rate : t -> rate_bps:float -> unit
(** Change the sustained rate (live reconfiguration). *)

val earliest_send : t -> now:Time.t -> bytes:int -> Time.t
(** Earliest instant at which a [bytes]-byte segment may depart,
    [>= now]. *)

val commit : t -> at:Time.t -> bytes:int -> unit
(** Consume tokens for a segment actually sent at [at]. *)
