(** Sender-side in-flight segment bookkeeping.

    Shared by every ARQ transmission-control/recovery combination: tracks
    which segments are outstanding, when each was (last) sent, how many
    times it was retried, and which have been selectively acknowledged.
    The recovery mechanisms (go-back-n, selective repeat) are expressed as
    queries over this structure, so swapping recovery schemes mid-session
    (segue) needs no state conversion — exactly the property §2.3 credits
    to MSP's on-the-fly changes. *)

open Adaptive_sim

type entry = {
  seg : Pdu.seg;  (** The tracked segment. *)
  mutable sent_at : Time.t;  (** Time of the most recent (re)send. *)
  mutable retries : int;  (** Retransmissions so far. *)
  mutable sacked : bool;  (** Selectively acknowledged. *)
}

type t
(** The in-flight set. *)

val create : unit -> t
(** Empty set. *)

val in_flight : t -> int
(** Number of unacknowledged segments (sacked segments still count until
    cumulatively acknowledged). *)

val bytes_in_flight : t -> int
(** Payload bytes outstanding. *)

val is_empty : t -> bool
(** No segments outstanding. *)

val track : t -> Pdu.seg -> at:Time.t -> unit
(** Record a first transmission. *)

val touch : t -> int -> at:Time.t -> unit
(** Record a retransmission of [seq]: updates [sent_at], bumps
    [retries]. *)

val find : t -> int -> entry option
(** Look up an outstanding segment. *)

val lowest_outstanding : t -> int option
(** Smallest outstanding sequence number. *)

val on_cumulative_ack : t -> cum:int -> entry list
(** Drop every entry with [seq < cum]; returns them (oldest first) so the
    caller can sample RTTs and count deliveries. *)

val mark_sacked : t -> int list -> unit
(** Flag the listed sequence numbers as selectively acknowledged. *)

val unsacked_from : t -> int -> Pdu.seg list
(** Outstanding, un-sacked segments with [seq >= from], in order — the
    go-back-n retransmission set. *)

val unsacked_missing : t -> int list -> Pdu.seg list
(** Outstanding, un-sacked segments among the given sequence numbers — the
    selective-repeat retransmission set. *)

val oldest_unsacked : t -> entry option
(** Outstanding, un-sacked entry with the smallest sequence number. *)

val iter : t -> (entry -> unit) -> unit
(** Iterate over outstanding entries in sequence order. *)
