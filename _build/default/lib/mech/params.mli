(** The mechanism repository's configuration space.

    Each type below enumerates the "plug-compatible" alternatives for one
    session activity (§4.2.2): connection management, transmission
    control, the three reliability-management subcomponents (error
    detection, error reporting, error recovery), sequenced delivery,
    duplicate handling, and delivery timing.  A full
    {!Adaptive_core.Scs.t} names one alternative per activity; the TKO
    synthesizer instantiates the matching implementations, and segue
    swaps between alternatives of the same activity at run time.

    Serialization to/from compact strings supports the negotiation blobs
    exchanged in [Syn]/[Syn_ack]/[Signal] PDUs. *)

open Adaptive_sim

type connection =
  | Implicit  (** Configuration piggybacked on the first data PDU. *)
  | Two_way  (** SYN / SYN-ACK. *)
  | Three_way  (** SYN / SYN-ACK / ACK (TCP-style). *)

type transmission =
  | Stop_and_wait  (** One outstanding segment. *)
  | Sliding_window of { window : int }
      (** Up to [window] outstanding segments; honors the peer's
          advertisement. *)
  | Rate_based of { rate_bps : float; burst : int }
      (** Leaky-bucket pacing with no window (suits isochronous media and
          long-delay paths). *)

type congestion_window =
  | No_congestion_control
  | Slow_start of { initial : int; threshold : int }
      (** TCP-style slow start + multiplicative decrease, layered under
          the transmission window. *)

type detection =
  | No_detection  (** Corruption goes unnoticed. *)
  | Internet_checksum  (** Cheap, 16-bit. *)
  | Crc32  (** Stronger, costlier per byte. *)

type reporting =
  | No_report  (** Receiver never talks back. *)
  | Cumulative_ack of { delay : Time.t }
      (** Delayed cumulative acknowledgments. *)
  | Selective_ack of { delay : Time.t }
      (** Cumulative plus SACK blocks. *)
  | Nack_on_gap  (** Negative acks when a gap is detected; no acks. *)

type recovery =
  | No_recovery  (** Losses are final (loss-tolerant media). *)
  | Go_back_n  (** Retransmit everything from the first gap. *)
  | Selective_repeat  (** Retransmit exactly the missing segments. *)
  | Forward_error_correction of { group : int }
      (** One XOR parity PDU per [group] data segments; recovers any
          single loss per group with no retransmission round trip. *)

type ordering =
  | Unordered  (** Deliver segments as they arrive. *)
  | Ordered  (** Buffer and deliver in sequence. *)

type duplicates = Accept_duplicates | Drop_duplicates

type delivery =
  | As_available  (** Hand data up immediately. *)
  | Playout of { target : Time.t }
      (** Isochronous playout point [target] after the application
          stamp; early data waits, late data is discarded. *)

val pp_connection : Format.formatter -> connection -> unit
val pp_transmission : Format.formatter -> transmission -> unit
val pp_congestion_window : Format.formatter -> congestion_window -> unit
val pp_detection : Format.formatter -> detection -> unit
val pp_reporting : Format.formatter -> reporting -> unit
val pp_recovery : Format.formatter -> recovery -> unit
val pp_ordering : Format.formatter -> ordering -> unit
val pp_duplicates : Format.formatter -> duplicates -> unit
val pp_delivery : Format.formatter -> delivery -> unit

val connection_to_string : connection -> string
val connection_of_string : string -> connection option
val transmission_to_string : transmission -> string
val transmission_of_string : string -> transmission option
val congestion_window_to_string : congestion_window -> string
val congestion_window_of_string : string -> congestion_window option
val detection_to_string : detection -> string
val detection_of_string : string -> detection option
val reporting_to_string : reporting -> string
val reporting_of_string : string -> reporting option
val recovery_to_string : recovery -> string
val recovery_of_string : string -> recovery option
val ordering_to_string : ordering -> string
val ordering_of_string : string -> ordering option
val duplicates_to_string : duplicates -> string
val duplicates_of_string : string -> duplicates option
val delivery_to_string : delivery -> string
val delivery_of_string : string -> delivery option
