lib/mech/fec.mli: Adaptive_buf Msg Pdu
