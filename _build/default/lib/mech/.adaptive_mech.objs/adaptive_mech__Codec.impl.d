lib/mech/codec.ml: Adaptive_buf Bytes Checksum Int32 Int64 List Msg Pdu Printf Result String
