lib/mech/codec.mli: Pdu
