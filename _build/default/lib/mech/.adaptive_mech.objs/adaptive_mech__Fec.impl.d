lib/mech/fec.ml: Adaptive_buf Bytes Char Fun Hashtbl List Msg Option Pdu Queue String
