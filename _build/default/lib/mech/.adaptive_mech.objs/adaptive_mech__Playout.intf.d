lib/mech/playout.mli: Adaptive_sim Time
