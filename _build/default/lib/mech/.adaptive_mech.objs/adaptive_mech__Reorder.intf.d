lib/mech/reorder.mli: Params Pdu
