lib/mech/rtt.mli: Adaptive_sim Time
