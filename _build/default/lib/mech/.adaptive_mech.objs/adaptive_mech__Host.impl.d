lib/mech/host.ml: Adaptive_sim Engine Time
