lib/mech/pdu.ml: Adaptive_buf Adaptive_sim List Printf String Time
