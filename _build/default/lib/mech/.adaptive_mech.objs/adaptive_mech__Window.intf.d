lib/mech/window.mli: Adaptive_sim Pdu Time
