lib/mech/rate.mli: Adaptive_sim Time
