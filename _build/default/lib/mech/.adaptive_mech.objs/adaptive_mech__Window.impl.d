lib/mech/window.ml: Adaptive_sim Int List Map Option Pdu Time
