lib/mech/slowstart.mli:
