lib/mech/rate.ml: Adaptive_sim Float Time
