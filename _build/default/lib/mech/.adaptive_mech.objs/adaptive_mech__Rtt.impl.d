lib/mech/rtt.ml: Adaptive_sim Float Time
