lib/mech/pdu.mli: Adaptive_buf Adaptive_sim Time
