lib/mech/params.mli: Adaptive_sim Format Time
