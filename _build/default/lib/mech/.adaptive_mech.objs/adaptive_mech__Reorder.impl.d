lib/mech/reorder.ml: Int List Map Params Pdu
