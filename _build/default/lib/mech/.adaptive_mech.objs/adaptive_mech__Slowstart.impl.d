lib/mech/slowstart.ml: Float
