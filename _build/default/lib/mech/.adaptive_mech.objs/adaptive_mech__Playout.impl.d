lib/mech/playout.ml: Adaptive_sim Time
