lib/mech/params.ml: Adaptive_sim Format Option Printf String Time
