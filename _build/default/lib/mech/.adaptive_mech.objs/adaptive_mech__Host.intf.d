lib/mech/host.mli: Adaptive_sim Engine Time
