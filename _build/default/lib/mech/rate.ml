open Adaptive_sim

type t = {
  mutable rate : float; (* bytes per second *)
  burst : float; (* bytes *)
  mutable tokens : float; (* bytes *)
  mutable last : Time.t;
}

let create ~rate_bps ~burst_bytes =
  if rate_bps <= 0.0 then invalid_arg "Rate.create: non-positive rate";
  if burst_bytes <= 0 then invalid_arg "Rate.create: non-positive burst";
  {
    rate = rate_bps /. 8.0;
    burst = float_of_int burst_bytes;
    tokens = float_of_int burst_bytes;
    last = Time.zero;
  }

let rate_bps t = t.rate *. 8.0

let refill t now =
  if now > t.last then begin
    let dt = Time.to_sec (Time.diff now t.last) in
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate));
    t.last <- now
  end

let set_rate t ~rate_bps =
  if rate_bps <= 0.0 then invalid_arg "Rate.set_rate: non-positive rate";
  refill t t.last;
  t.rate <- rate_bps /. 8.0

let earliest_send t ~now ~bytes =
  refill t now;
  let need = float_of_int bytes -. t.tokens in
  if need <= 0.0 then now
  else Time.add now (Time.sec (need /. t.rate))

let commit t ~at ~bytes =
  refill t at;
  t.tokens <- t.tokens -. float_of_int bytes
