(** Round-trip-time estimation and retransmission timeout computation.

    Jacobson/Karels smoothed RTT plus mean deviation, with exponential
    backoff on timeout — the "precise round-trip timer calculations" the
    paper lists among long-delay-link requirements (§2.2(C)).  Karn's rule
    is the caller's job: do not feed samples from retransmitted
    segments. *)

open Adaptive_sim

type t
(** Estimator state. *)

val create : ?initial_rto:Time.t -> unit -> t
(** Fresh estimator; [initial_rto] (default 1 s) is used until the first
    sample arrives. *)

val observe : t -> Time.t -> unit
(** Feed one RTT sample; resets any timeout backoff. *)

val srtt : t -> Time.t option
(** Smoothed RTT, once at least one sample exists. *)

val rttvar : t -> Time.t option
(** Smoothed mean deviation. *)

val rto : t -> Time.t
(** Current retransmission timeout: [srtt + 4*rttvar], backed off by the
    number of consecutive timeouts, clamped to [\[10 ms, 60 s\]]. *)

val on_timeout : t -> unit
(** Double the effective RTO (exponential backoff). *)

val reset_backoff : t -> unit
(** Clear the timeout backoff without a new sample — called when the
    acknowledgment stream shows forward progress. *)

val samples : t -> int
(** Number of samples observed. *)
