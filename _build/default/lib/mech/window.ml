open Adaptive_sim
module Imap = Map.Make (Int)

type entry = {
  seg : Pdu.seg;
  mutable sent_at : Time.t;
  mutable retries : int;
  mutable sacked : bool;
}

type t = { mutable entries : entry Imap.t }

let create () = { entries = Imap.empty }
let in_flight t = Imap.cardinal t.entries

let bytes_in_flight t =
  Imap.fold (fun _ e acc -> acc + e.seg.Pdu.seg_bytes) t.entries 0

let is_empty t = Imap.is_empty t.entries

let track t seg ~at =
  t.entries <-
    Imap.add seg.Pdu.seq { seg; sent_at = at; retries = 0; sacked = false } t.entries

let touch t seq ~at =
  match Imap.find_opt seq t.entries with
  | None -> ()
  | Some e ->
    e.sent_at <- at;
    e.retries <- e.retries + 1

let find t seq = Imap.find_opt seq t.entries
let lowest_outstanding t = Option.map fst (Imap.min_binding_opt t.entries)

let on_cumulative_ack t ~cum =
  let acked, kept = Imap.partition (fun seq _ -> seq < cum) t.entries in
  t.entries <- kept;
  List.map snd (Imap.bindings acked)

let mark_sacked t seqs =
  List.iter
    (fun seq ->
      match Imap.find_opt seq t.entries with
      | Some e -> e.sacked <- true
      | None -> ())
    seqs

let unsacked_from t from =
  Imap.fold
    (fun seq e acc -> if seq >= from && not e.sacked then e.seg :: acc else acc)
    t.entries []
  |> List.rev

let unsacked_missing t seqs =
  List.filter_map
    (fun seq ->
      match Imap.find_opt seq t.entries with
      | Some e when not e.sacked -> Some e.seg
      | Some _ | None -> None)
    (List.sort_uniq compare seqs)

let oldest_unsacked t =
  Imap.fold
    (fun _ e acc -> match acc with Some _ -> acc | None -> if e.sacked then None else Some e)
    t.entries None

let iter t f = Imap.iter (fun _ e -> f e) t.entries
