module Imap = Map.Make (Int)

type verdict = Deliver of Pdu.seg list | Buffered | Duplicate

type t = {
  ordering : Params.ordering;
  duplicates : Params.duplicates;
  mutable expected : int;
  mutable above : Pdu.seg Imap.t; (* received with seq >= expected *)
  mutable highest : int;
}

let create ?(start = 0) ~ordering ~duplicates () =
  { ordering; duplicates; expected = start; above = Imap.empty; highest = start - 1 }

let expected t = t.expected
let highest_seen t = t.highest

let seen t seq = seq < t.expected || Imap.mem seq t.above

(* Advance the cumulative point over any contiguous run now present,
   removing the run from the buffer and returning it in order. *)
let drain_run t =
  let rec take acc =
    match Imap.find_opt t.expected t.above with
    | None -> List.rev acc
    | Some seg ->
      t.above <- Imap.remove t.expected t.above;
      t.expected <- t.expected + 1;
      take (seg :: acc)
  in
  take []

let offer t (seg : Pdu.seg) =
  let dup = seen t seg.Pdu.seq in
  if dup && t.duplicates = Params.Drop_duplicates then Duplicate
  else if dup then Deliver [ seg ]
  else begin
    if seg.Pdu.seq > t.highest then t.highest <- seg.Pdu.seq;
    t.above <- Imap.add seg.Pdu.seq seg t.above;
    match t.ordering with
    | Params.Unordered ->
      (* Release immediately, but keep cumulative bookkeeping for acks. *)
      let _ = drain_run t in
      Deliver [ seg ]
    | Params.Ordered ->
      let run = drain_run t in
      if run = [] then Buffered else Deliver run
  end

let missing t =
  let rec gaps seq acc =
    if seq > t.highest then List.rev acc
    else if Imap.mem seq t.above then gaps (seq + 1) acc
    else gaps (seq + 1) (seq :: acc)
  in
  gaps t.expected []

let sack_list t = List.map fst (Imap.bindings t.above)

let advance_past_gap t =
  match Imap.min_binding_opt t.above with
  | None -> (0, [])
  | Some (seq, _) when seq <= t.expected -> (0, [])
  | Some (seq, _) ->
    let skipped = seq - t.expected in
    t.expected <- seq;
    (skipped, drain_run t)

let buffered_count t =
  match t.ordering with Params.Unordered -> 0 | Params.Ordered -> Imap.cardinal t.above
