(** Application workload generators — the nine rows of Table 1.

    Each application carries (a) the quantitative/qualitative QoS profile
    that Table 1 grades, (b) the service class the paper assigns it (used
    to validate the Stage I classifier), and (c) a traffic generator that
    drives a session with the corresponding arrival process: talkspurt
    voice, constant/variable bit-rate video frames, periodic control
    commands, bulk transfer, keystrokes, and closed-loop
    request/response. *)

open Adaptive_sim
open Adaptive_core

type app =
  | Voice_conversation
  | Teleconferencing
  | Video_compressed  (** Full-motion video, compressed (VBR). *)
  | Video_raw  (** Full-motion video, uncompressed (CBR). *)
  | Manufacturing_control
  | File_transfer
  | Telnet
  | Oltp  (** On-line transaction processing. *)
  | Remote_file_service

val all : app list
(** The nine applications in Table 1 row order. *)

val name : app -> string
(** Display name as printed in Table 1. *)

val qos : app -> Qos.t
(** The application's QoS requirements. *)

val expected_tsc : app -> Tsc.t
(** The service class Table 1 assigns — the classifier must agree. *)

val multicast_receivers : app -> int
(** How many receivers the app's canonical scenario uses (1 for
    unicast). *)

type driver
(** A running traffic generator bound to a session. *)

val drive :
  Engine.t -> Rng.t -> session:Session.t -> app -> stop_at:Time.t -> driver
(** Start generating the application's sending pattern on [session] until
    [stop_at].  Closed-loop applications (Telnet, OLTP, RFS) need
    {!install_server} on the responding host to produce replies. *)

val messages_sent : driver -> int
(** Application messages submitted so far. *)

val bytes_sent : driver -> int
(** Application bytes submitted so far. *)

val install_server : app -> Mantts.entity -> unit
(** Install the server-side behaviour for closed-loop applications on the
    accepting host's MANTTS entity: Telnet echoes, OLTP and RFS answer
    requests with their response sizes.  For one-way applications this
    installs a sink. *)
