open Adaptive_sim
open Adaptive_core

type app =
  | Voice_conversation
  | Teleconferencing
  | Video_compressed
  | Video_raw
  | Manufacturing_control
  | File_transfer
  | Telnet
  | Oltp
  | Remote_file_service

let all =
  [
    Voice_conversation;
    Teleconferencing;
    Video_compressed;
    Video_raw;
    Manufacturing_control;
    File_transfer;
    Telnet;
    Oltp;
    Remote_file_service;
  ]

let name = function
  | Voice_conversation -> "Voice Conversation"
  | Teleconferencing -> "Tele-Conferencing"
  | Video_compressed -> "Full-Motion Video (comp)"
  | Video_raw -> "Full-Motion Video (raw)"
  | Manufacturing_control -> "Manufacturing Control"
  | File_transfer -> "File Transfer"
  | Telnet -> "TELNET"
  | Oltp -> "On-Line Transaction Processing"
  | Remote_file_service -> "Remote File Service"

let qos = function
  | Voice_conversation ->
    {
      Qos.default with
      Qos.avg_bps = 64e3;
      peak_bps = 64e3;
      max_latency = Some (Time.ms 200);
      max_jitter = Some (Time.ms 15);
      loss_tolerance = 0.05;
      ordered = false;
      duplicate_sensitive = false;
      isochronous = true;
      interactive = true;
      realtime = true;
      duration = Some (Time.minutes 3);
    }
  | Teleconferencing ->
    {
      Qos.avg_bps = 512e3;
      peak_bps = 1.5e6;
      max_latency = Some (Time.ms 250);
      max_jitter = Some (Time.ms 20);
      loss_tolerance = 0.02;
      ordered = false;
      duplicate_sensitive = false;
      isochronous = true;
      interactive = true;
      realtime = true;
      multicast = true;
      priority = true;
      duration = Some (Time.minutes 30);
    }
  | Video_compressed ->
    {
      Qos.avg_bps = 6e6;
      peak_bps = 24e6;
      max_latency = Some (Time.ms 300);
      max_jitter = Some (Time.ms 40);
      loss_tolerance = 0.02;
      ordered = false;
      duplicate_sensitive = false;
      isochronous = true;
      interactive = false;
      realtime = true;
      multicast = true;
      priority = true;
      duration = Some (Time.minutes 60);
    }
  | Video_raw ->
    {
      Qos.avg_bps = 120e6;
      peak_bps = 140e6;
      max_latency = Some (Time.ms 300);
      max_jitter = Some (Time.ms 10);
      loss_tolerance = 0.02;
      ordered = false;
      duplicate_sensitive = false;
      isochronous = true;
      interactive = false;
      realtime = true;
      multicast = true;
      priority = true;
      duration = Some (Time.minutes 60);
    }
  | Manufacturing_control ->
    {
      Qos.avg_bps = 400e3;
      peak_bps = 1e6;
      max_latency = Some (Time.ms 50);
      max_jitter = None;
      loss_tolerance = 0.001;
      ordered = true;
      duplicate_sensitive = true;
      realtime = true;
      isochronous = false;
      interactive = false;
      multicast = true;
      priority = true;
      duration = Some (Time.minutes 480);
    }
  | File_transfer ->
    {
      Qos.default with
      Qos.avg_bps = 2e6;
      peak_bps = 2.4e6;
      max_latency = None;
      max_jitter = None;
      loss_tolerance = 0.0;
      ordered = true;
      duplicate_sensitive = true;
      duration = Some (Time.minutes 2);
    }
  | Telnet ->
    {
      Qos.default with
      Qos.avg_bps = 200.0;
      peak_bps = 2e3;
      max_latency = Some (Time.ms 250);
      max_jitter = Some (Time.ms 400);
      loss_tolerance = 0.0;
      ordered = true;
      duplicate_sensitive = true;
      interactive = true;
      priority = true;
      duration = Some (Time.minutes 60);
    }
  | Oltp ->
    {
      Qos.default with
      Qos.avg_bps = 20e3;
      peak_bps = 200e3;
      max_latency = Some (Time.ms 300);
      max_jitter = Some (Time.ms 500);
      loss_tolerance = 0.0;
      ordered = true;
      duplicate_sensitive = true;
      interactive = true;
      duration = Some (Time.minutes 120);
    }
  | Remote_file_service ->
    {
      Qos.default with
      Qos.avg_bps = 80e3;
      peak_bps = 1e6;
      max_latency = Some (Time.ms 350);
      max_jitter = Some (Time.ms 500);
      loss_tolerance = 0.0;
      ordered = true;
      duplicate_sensitive = true;
      interactive = true;
      multicast = true;
      duration = Some (Time.minutes 120);
    }

let expected_tsc = function
  | Voice_conversation | Teleconferencing -> Tsc.Interactive_isochronous
  | Video_compressed | Video_raw -> Tsc.Distributional_isochronous
  | Manufacturing_control -> Tsc.Realtime_non_isochronous
  | File_transfer | Telnet | Oltp | Remote_file_service ->
    Tsc.Non_realtime_non_isochronous

let multicast_receivers = function
  | Teleconferencing -> 4
  | Video_compressed | Video_raw -> 3
  | Manufacturing_control -> 2
  | Remote_file_service -> 2
  | Voice_conversation | File_transfer | Telnet | Oltp -> 1

type driver = {
  engine : Engine.t;
  rng : Rng.t;
  session : Session.t;
  stop_at : Time.t;
  mutable messages : int;
  mutable bytes : int;
}

let messages_sent d = d.messages
let bytes_sent d = d.bytes

let submit d bytes =
  if
    Engine.now d.engine <= d.stop_at
    && Session.state d.session <> Session.Closed
    && Session.state d.session <> Session.Closing
  then begin
    d.messages <- d.messages + 1;
    d.bytes <- d.bytes + bytes;
    Session.send d.session ~bytes ()
  end

let rec every d ~interval ~bytes () =
  if Engine.now d.engine < d.stop_at then begin
    submit d (bytes ());
    ignore (Engine.schedule_after d.engine ~delay:interval (every d ~interval ~bytes))
  end

(* Talkspurt on/off source: exponential spurts and gaps, periodic frames
   while talking. *)
let talkspurt d ~frame_bytes ~frame_every ~mean_on ~mean_off =
  let rec spurt () =
    if Engine.now d.engine < d.stop_at then begin
      let dur = Time.sec (Rng.exponential d.rng ~mean:(Time.to_sec mean_on)) in
      let until = Time.add (Engine.now d.engine) dur in
      let rec frame () =
        if Engine.now d.engine < Time.min until d.stop_at then begin
          submit d frame_bytes;
          ignore (Engine.schedule_after d.engine ~delay:frame_every frame)
        end
        else begin
          let gap = Time.sec (Rng.exponential d.rng ~mean:(Time.to_sec mean_off)) in
          ignore (Engine.schedule_after d.engine ~delay:(max 1 gap) spurt)
        end
      in
      frame ()
    end
  in
  spurt ()

(* Closed-loop request/response: the next request leaves a think time
   after the *complete* response to the previous one arrives. *)
let request_response d ~request_bytes ~response_bytes ~think ~jitter =
  let send_request () =
    if Engine.now d.engine < d.stop_at then submit d request_bytes
  in
  let delay () =
    let base = Time.to_sec think in
    max 1 (Time.sec (Rng.uniform d.rng (0.5 *. base) ((1.0 +. jitter) *. base)))
  in
  ignore
    (Engine.schedule_after d.engine ~delay:(Time.ms 1) (fun () -> send_request ()));
  let prev = ref 0 in
  let rec poll () =
    if Engine.now d.engine < d.stop_at then begin
      let responses = Session.bytes_delivered d.session / response_bytes in
      if responses > !prev then begin
        prev := responses;
        ignore (Engine.schedule_after d.engine ~delay:(delay ()) send_request)
      end;
      ignore (Engine.schedule_after d.engine ~delay:(Time.ms 5) poll)
    end
  in
  poll ()

let drive engine rng ~session app ~stop_at =
  let d = { engine; rng; session; stop_at; messages = 0; bytes = 0 } in
  (match app with
  | Voice_conversation ->
    talkspurt d ~frame_bytes:160 ~frame_every:(Time.ms 20) ~mean_on:(Time.sec 1.0)
      ~mean_off:(Time.sec 1.35)
  | Teleconferencing ->
    talkspurt d ~frame_bytes:1280 ~frame_every:(Time.ms 20) ~mean_on:(Time.sec 2.0)
      ~mean_off:(Time.sec 1.0)
  | Video_compressed ->
    let bytes () =
      let mean = 6e6 /. 8.0 /. 30.0 in
      let v = Rng.pareto rng ~shape:2.5 ~scale:(mean *. 0.6) in
      max 256 (min 100_000 (int_of_float v))
    in
    every d ~interval:(Time.ms 33) ~bytes ()
  | Video_raw ->
    every d ~interval:(Time.ms 33) ~bytes:(fun () -> 500_000) ()
  | Manufacturing_control ->
    every d ~interval:(Time.ms 10) ~bytes:(fun () -> 256) ()
  | File_transfer ->
    (* One bulk message; the session segments and paces it. *)
    submit d 10_000_000
  | Telnet ->
    let rec keystroke () =
      if Engine.now engine < stop_at then begin
        submit d (Rng.int_in rng 1 4);
        let gap = Time.sec (Rng.exponential rng ~mean:0.5) in
        ignore (Engine.schedule_after engine ~delay:(max 1 gap) keystroke)
      end
    in
    keystroke ()
  | Oltp ->
    request_response d ~request_bytes:256 ~response_bytes:2048 ~think:(Time.ms 100)
      ~jitter:1.0
  | Remote_file_service ->
    request_response d ~request_bytes:128 ~response_bytes:8192 ~think:(Time.ms 200)
      ~jitter:1.0);
  d

let install_server app entity =
  match app with
  | Telnet ->
    Mantts.set_app_handler entity (fun session d ->
        if Session.state session = Session.Established then
          Session.send session ~bytes:(max 1 d.Session.bytes) ())
  | Oltp ->
    Mantts.set_app_handler entity (fun session _ ->
        if Session.state session = Session.Established then
          Session.send session ~bytes:2048 ())
  | Remote_file_service ->
    Mantts.set_app_handler entity (fun session _ ->
        if Session.state session = Session.Established then
          Session.send session ~bytes:8192 ())
  | Voice_conversation | Teleconferencing | Video_compressed | Video_raw
  | Manufacturing_control | File_transfer ->
    Mantts.set_app_handler entity (fun _ _ -> ())
