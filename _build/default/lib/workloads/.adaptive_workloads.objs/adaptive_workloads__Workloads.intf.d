lib/workloads/workloads.mli: Adaptive_core Adaptive_sim Engine Mantts Qos Rng Session Time Tsc
