type entry = { at : Time.t; category : string; detail : string }

type t = {
  counters : (string, int ref) Hashtbl.t;
  log : entry Queue.t;
  capacity : int;
}

let create ?(log_capacity = 4096) () =
  { counters = Hashtbl.create 32; log = Queue.create (); capacity = log_capacity }

let count_by t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let count t name = count_by t name 1

let event t ~at ~category ~detail =
  count t category;
  if t.capacity > 0 then begin
    if Queue.length t.log >= t.capacity then ignore (Queue.pop t.log);
    Queue.push { at; category; detail } t.log
  end

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entries t = List.of_seq (Queue.to_seq t.log)

let clear t =
  Hashtbl.reset t.counters;
  Queue.clear t.log
