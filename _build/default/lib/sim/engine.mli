(** Discrete-event simulation engine.

    The engine owns the simulated clock and an event queue.  Everything in
    the reproduction — packet arrivals, retransmission timers, congestion
    phase changes, application traffic — runs as events scheduled here.
    Events at the same instant fire in scheduling order, so runs are fully
    deterministic.

    The {!Timer} submodule is the analog of the paper's [TKO_Event] class:
    one-shot or periodic timers that can be scheduled, cancelled, and
    rescheduled ([TKO_Event::schedule] / [expire] / [cancel]). *)

type t
(** A simulation engine instance. *)

type handle
(** A cancellable reference to a scheduled event. *)

val create : unit -> t
(** Fresh engine with the clock at {!Time.zero} and no pending events. *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] arranges for [f ()] to run at simulated time [at].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f]. *)

val cancel : handle -> unit
(** Prevent the event from firing.  Cancelling a fired or already-cancelled
    event is a no-op. *)

val is_pending : handle -> bool
(** [true] until the event fires or is cancelled. *)

val step : t -> bool
(** Run the earliest pending event, advancing the clock to it.  Returns
    [false] when no event is pending. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run events in time order until the queue is empty, the clock would
    pass [until], or [max_events] have fired. *)

val pending_events : t -> int
(** Number of scheduled (uncancelled) events. *)

val events_fired : t -> int
(** Total events executed since creation. *)

(** One-shot and periodic timers — the [TKO_Event] analog. *)
module Timer : sig
  type timer
  (** A timer bound to an engine. *)

  val one_shot : t -> delay:Time.t -> (unit -> unit) -> timer
  (** Fire once after [delay]. *)

  val periodic : t -> interval:Time.t -> (unit -> unit) -> timer
  (** Fire every [interval] until cancelled.  [interval] must be
      positive. *)

  val cancel : timer -> unit
  (** Stop the timer; idempotent. *)

  val reschedule : timer -> delay:Time.t -> unit
  (** Cancel any pending expiry and arm the timer to fire once after
      [delay] (for periodic timers the period resumes afterwards). *)

  val is_active : timer -> bool
  (** [true] while the timer still has a pending expiry. *)

  val expirations : timer -> int
  (** Number of times the timer has fired. *)
end
