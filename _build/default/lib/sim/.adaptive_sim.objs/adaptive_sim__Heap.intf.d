lib/sim/heap.mli:
