lib/sim/rng.mli:
