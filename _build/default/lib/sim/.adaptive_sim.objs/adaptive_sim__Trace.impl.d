lib/sim/trace.ml: Hashtbl List Queue String Time
