lib/sim/stats.ml: Array Float Format Rng
