type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }

let is_empty h = h.size = 0
let length h = h.size

(* [less a b] orders by key, then insertion sequence for FIFO tie-break. *)
let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h e =
  let cap = Array.length h.arr in
  if h.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let na = Array.make ncap e in
    Array.blit h.arr 0 na 0 h.size;
    h.arr <- na
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.size && less h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h e;
  h.arr.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.arr.(0) in
    Some (e.key, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end

let clear h =
  h.size <- 0;
  h.arr <- [||]

let rec drain h ~f =
  match pop h with
  | None -> ()
  | Some (k, v) ->
    f k v;
    drain h ~f
