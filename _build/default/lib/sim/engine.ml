type event = { mutable live : bool; action : unit -> unit }

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable live_count : int;
  mutable fired : int;
}

type handle = t * event

let create () = { clock = Time.zero; queue = Heap.create (); live_count = 0; fired = 0 }
let now t = t.clock

let schedule t ~at f =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  let e = { live = true; action = f } in
  Heap.push t.queue ~key:at e;
  t.live_count <- t.live_count + 1;
  (t, e)

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f

let cancel (t, e) =
  if e.live then begin
    e.live <- false;
    t.live_count <- t.live_count - 1
  end

let is_pending (_, e) = e.live

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, e) ->
    if e.live then begin
      e.live <- false;
      t.live_count <- t.live_count - 1;
      t.clock <- at;
      t.fired <- t.fired + 1;
      e.action ();
      true
    end
    else step t

(* Discard cancelled entries so the head of the queue is always the next
   event that will actually fire — otherwise a cancelled entry's timestamp
   could let [run ~until] step into an event beyond the limit. *)
let rec next_live_at t =
  match Heap.peek t.queue with
  | None -> None
  | Some (at, e) -> if e.live then Some at else (ignore (Heap.pop t.queue); next_live_at t)

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    !budget > 0
    &&
    match next_live_at t with
    | None -> false
    | Some at -> (
      match until with None -> true | Some limit -> at <= limit)
  in
  while continue () do
    if step t then decr budget
  done;
  match until with
  | Some limit when t.clock < limit && !budget > 0 -> t.clock <- limit
  | Some _ | None -> ()

let pending_events t = t.live_count
let events_fired t = t.fired

let cancel_handle = cancel

module Timer = struct
  type timer = {
    engine : t;
    mutable handle : handle option;
    mutable period : Time.t option;
    mutable count : int;
    callback : unit -> unit;
  }

  let rec arm timer delay =
    let h =
      schedule_after timer.engine ~delay (fun () ->
          timer.handle <- None;
          timer.count <- timer.count + 1;
          (match timer.period with
          | Some interval -> arm timer interval
          | None -> ());
          timer.callback ())
    in
    timer.handle <- Some h

  let one_shot engine ~delay f =
    let timer = { engine; handle = None; period = None; count = 0; callback = f } in
    arm timer delay;
    timer

  let periodic engine ~interval f =
    if interval <= 0 then invalid_arg "Timer.periodic: non-positive interval";
    let timer =
      { engine; handle = None; period = Some interval; count = 0; callback = f }
    in
    arm timer interval;
    timer

  let cancel timer =
    (match timer.handle with Some h -> cancel_handle h | None -> ());
    timer.handle <- None;
    timer.period <- None

  let reschedule timer ~delay =
    (match timer.handle with Some h -> cancel_handle h | None -> ());
    arm timer delay

  let is_active timer =
    match timer.handle with Some h -> is_pending h | None -> false

  let expirations timer = timer.count
end
