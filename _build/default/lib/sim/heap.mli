(** Imperative binary min-heap keyed by integer priorities.

    Used as the event queue of the discrete-event {!Engine}.  Ties are
    broken by insertion order so that events scheduled for the same instant
    fire first-in first-out, which keeps simulations deterministic. *)

type 'a t
(** A heap holding values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [true] iff [h] holds no element. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val push : 'a t -> key:int -> 'a -> unit
(** [push h ~key v] inserts [v] with priority [key]. *)

val peek : 'a t -> (int * 'a) option
(** [peek h] is the minimum-key binding, without removing it. *)

val pop : 'a t -> (int * 'a) option
(** [pop h] removes and returns the minimum-key binding.  Among equal keys,
    the earliest-pushed binding is returned first. *)

val clear : 'a t -> unit
(** Remove every element. *)

val drain : 'a t -> f:(int -> 'a -> unit) -> unit
(** [drain h ~f] pops every element in priority order, applying [f]. *)
