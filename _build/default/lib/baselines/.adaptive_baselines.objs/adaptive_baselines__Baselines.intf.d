lib/baselines/baselines.mli: Adaptive_core Adaptive_net Network Scs Session
