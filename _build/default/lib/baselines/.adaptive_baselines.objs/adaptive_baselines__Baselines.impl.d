lib/baselines/baselines.ml: Adaptive_core Adaptive_mech Adaptive_net Adaptive_sim List Network Params Scs Session Time Tko Topology
