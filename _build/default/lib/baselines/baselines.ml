open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

type kind = Tcp_like | Tp4_like | Udp_like

let name = function Tcp_like -> "tcp" | Tp4_like -> "tp4" | Udp_like -> "udp"

let tcp_scs =
  match Tko.Templates.find Tko.Templates.tcp_compatible with
  | Some (_, scs) -> scs
  | None -> Scs.default

let tp4_scs =
  {
    Scs.default with
    Scs.connection = Params.Three_way;
    transmission = Params.Sliding_window { window = 16 };
    congestion = Params.No_congestion_control;
    detection = Params.Crc32;
    reporting = Params.Cumulative_ack { delay = Time.ms 5 };
    recovery = Params.Go_back_n;
    ordering = Params.Ordered;
    duplicates = Params.Drop_duplicates;
    delivery = Params.As_available;
    recv_buffer_segments = 16;
  }

let udp_scs =
  match Tko.Templates.find Tko.Templates.udp_compatible with
  | Some (_, scs) -> scs
  | None -> Scs.default

let scs = function Tcp_like -> tcp_scs | Tp4_like -> tp4_scs | Udp_like -> udp_scs

let binding = function
  | Tcp_like -> Tko.Static_template Tko.Templates.tcp_compatible
  | Tp4_like -> Tko.Static_template "tp4-monolithic"
  | Udp_like -> Tko.Static_template Tko.Templates.udp_compatible

let connect ?name:label ?on_deliver disp ~peers kind =
  let label = match label with Some n -> Some n | None -> Some (name kind) in
  (* Classic MSS negotiation: each endpoint advertises a segment size from
     its interface MTU, so even the static stacks do not blackhole on
     small-MTU paths.  Everything else stays fixed at "link time". *)
  let base = scs kind in
  let topo = Network.topology (Session.Dispatcher.network disp) in
  let src = Session.Dispatcher.addr disp in
  let path_mtu =
    List.fold_left
      (fun acc dst ->
        match Topology.path_mtu topo ~src ~dst with
        | Some mtu -> min acc mtu
        | None -> acc)
      65535 peers
  in
  let segment = min base.Scs.segment_bytes (max 64 (path_mtu - 64)) in
  (* The 64 KiB window limit is a byte count; re-express it in segments. *)
  let rescale w =
    max 1 (min (w * base.Scs.segment_bytes / segment) (65535 / segment))
  in
  let fixed =
    match base.Scs.transmission with
    | Params.Sliding_window { window } ->
      {
        base with
        Scs.segment_bytes = segment;
        transmission = Params.Sliding_window { window = rescale window };
        recv_buffer_segments = rescale base.Scs.recv_buffer_segments;
      }
    | Params.Rate_based _ | Params.Stop_and_wait ->
      { base with Scs.segment_bytes = segment }
  in
  Session.connect ?name:label ~binding:(binding kind) ?on_deliver disp ~peers
    ~scs:fixed ()
