(** Monolithic baseline protocols.

    The statically configured comparators of §2.2(B): protocol stacks
    whose mechanisms are fixed at "link time" regardless of the
    application's requirements or the network's characteristics.  They
    are built from the same mechanism repository as ADAPTIVE-synthesized
    sessions — only the {e configuration} differs — so experiments
    measure configuration policy, not implementation quality.

    [Tcp_like] is the general-purpose reliable byte stream (three-way
    handshake, 64 KiB-equivalent fixed window, slow start, go-back-n,
    cumulative acks).  [Tp4_like] is the ISO class-4 style full-reliability
    stack — the canonical {e overweight} choice for loss-tolerant media.
    [Udp_like] is the bare datagram service — the canonical
    {e underweight} choice for anything needing reliability, ordering or
    multicast coordination. *)

open Adaptive_net
open Adaptive_core

type kind = Tcp_like | Tp4_like | Udp_like

val scs : kind -> Scs.t
(** The fixed configuration of each baseline. *)

val name : kind -> string
(** "tcp", "tp4" or "udp". *)

val connect :
  ?name:string ->
  ?on_deliver:(Session.t -> Session.delivery -> unit) ->
  Session.Dispatcher.dispatcher ->
  peers:Network.addr list ->
  kind ->
  Session.t
(** Open a baseline session: no Stage I/II transformation, no monitor, a
    statically bound context that refuses segue.  Multicast peers are
    accepted but each baseline treats them as it historically would —
    TCP/TP4 have no multicast support, so callers model group delivery as
    N separate unicast connections. *)
