open Adaptive_sim
open Adaptive_net
open Adaptive_mech

type condition =
  | Loss_rate_above of float
  | Rtt_above of Time.t
  | Rtt_below of Time.t
  | Congestion_above of float
  | Congestion_below of float
  | Receivers_above of int
  | Receivers_below of int
  | Route_changed
  | All_of of condition list
  | Any_of of condition list

type action =
  | Switch_recovery of Params.recovery
  | Switch_reporting of Params.reporting
  | Switch_transmission of Params.transmission
  | Scale_rate of float
  | Adjust_playout of Time.t
  | Notify_application of string

type tsa_rule = { condition : condition; action : action; once : bool }
type tmc = { collect : Unites.metric list; sample_every : Time.t }

type t = {
  participants : Network.addr list;
  qos : Qos.t;
  explicit_tsc : Tsc.t option;
  tsa : tsa_rule list;
  tmc : tmc;
}

let default_tmc = { collect = []; sample_every = Time.sec 1.0 }

let make ?explicit_tsc ?(tsa = []) ?(tmc = default_tmc) ~participants ~qos () =
  if participants = [] then invalid_arg "Acd.make: no participants";
  { participants; qos; explicit_tsc; tsa; tmc }

let rec condition_to_string = function
  | Loss_rate_above p -> Printf.sprintf "loss-rate > %.3f" p
  | Rtt_above d -> Printf.sprintf "rtt > %s" (Time.to_string d)
  | Rtt_below d -> Printf.sprintf "rtt < %s" (Time.to_string d)
  | Congestion_above u -> Printf.sprintf "congestion > %.2f" u
  | Congestion_below u -> Printf.sprintf "congestion < %.2f" u
  | Receivers_above n -> Printf.sprintf "receivers > %d" n
  | Receivers_below n -> Printf.sprintf "receivers < %d" n
  | Route_changed -> "route changed"
  | All_of cs -> "(" ^ String.concat " and " (List.map condition_to_string cs) ^ ")"
  | Any_of cs -> "(" ^ String.concat " or " (List.map condition_to_string cs) ^ ")"

let action_to_string = function
  | Switch_recovery r -> "switch recovery to " ^ Params.recovery_to_string r
  | Switch_reporting r -> "switch reporting to " ^ Params.reporting_to_string r
  | Switch_transmission x -> "switch transmission to " ^ Params.transmission_to_string x
  | Scale_rate f -> Printf.sprintf "scale rate by %.2f" f
  | Adjust_playout d -> "set playout target to " ^ Time.to_string d
  | Notify_application s -> "notify application: " ^ s

let table2 =
  [
    ( "Remote Session Participant Address(es)",
      "Specifies >= 1 addresses of remote end-systems that comprise the \
       communication association.",
      "unicast: [b]; multicast: [b; c; d]" );
    ( "Quantitative QoS Parameters",
      "Specifies the performance criteria requested by the application.",
      "peak and average throughput, minimum and maximum latency and jitter, \
       error-rate probabilities, duration" );
    ( "Qualitative QoS Parameters",
      "Specifies the functionality or behavior requested by the application.",
      "sequenced/non-sequenced delivery, duplicate sensitivity, \
       explicit/implicit connection management, priority delivery" );
    ( "Transport Service Adjustment (TSA)",
      "Actions to perform when changes occur in local or remote hosts or the \
       network.",
      "<congestion > 0.60, switch recovery to srepeat>; <rtt > 150ms, switch \
       recovery to fec:8>" );
    ( "Transport Measurement Component (TMC)",
      "Specifies performance metrics to collect for this particular \
       communication session.",
      "throughput_bps, delivery_latency_s, retransmissions; sampling rate 1s" );
  ]
