lib/core/adaptive.mli: Adaptive_mech Adaptive_net Adaptive_sim Engine Host Link Mantts Network Pdu Rng Time Topology Unites
