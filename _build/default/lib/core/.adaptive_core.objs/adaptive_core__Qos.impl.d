lib/core/qos.ml: Adaptive_sim Format Time
