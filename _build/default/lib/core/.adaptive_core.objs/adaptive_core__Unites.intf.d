lib/core/unites.mli: Adaptive_sim Engine Format Stats Time
