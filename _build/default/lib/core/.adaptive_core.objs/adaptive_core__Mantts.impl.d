lib/core/mantts.ml: Acd Adaptive_buf Adaptive_mech Adaptive_net Adaptive_sim Engine Float Hashtbl Host List Network Params Pdu Pool Printf Qos Rng Scs Session String Time Tko Tsc Unites
