lib/core/scs.mli: Adaptive_mech Adaptive_sim Format Params Time
