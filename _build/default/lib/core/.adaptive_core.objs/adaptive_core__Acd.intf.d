lib/core/acd.mli: Adaptive_mech Adaptive_net Adaptive_sim Network Params Qos Time Tsc Unites
