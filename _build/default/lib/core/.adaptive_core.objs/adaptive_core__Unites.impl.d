lib/core/unites.ml: Adaptive_sim Engine Format Hashtbl List Option Stats Time
