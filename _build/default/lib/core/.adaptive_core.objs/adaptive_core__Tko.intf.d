lib/core/tko.mli: Adaptive_mech Fec Playout Rate Reorder Rtt Scs Slowstart Window
