lib/core/adaptive.ml: Adaptive_mech Adaptive_net Adaptive_sim Engine Mantts Network Pdu Rng Topology Unites
