lib/core/tsc.ml: Format Qos
