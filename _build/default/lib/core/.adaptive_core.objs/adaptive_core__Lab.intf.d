lib/core/lab.mli: Format
