lib/core/lab.ml: Adaptive_sim Float Format List Stats
