lib/core/tsc.mli: Format Qos
