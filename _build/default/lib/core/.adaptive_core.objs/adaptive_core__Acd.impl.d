lib/core/acd.ml: Adaptive_mech Adaptive_net Adaptive_sim List Network Params Printf Qos String Time Tsc Unites
