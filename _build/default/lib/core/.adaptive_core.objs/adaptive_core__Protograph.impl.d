lib/core/protograph.ml: Adaptive_mech Adaptive_sim Host List Printf Time
