lib/core/qos.mli: Adaptive_sim Format Time
