lib/core/mantts.mli: Acd Adaptive_buf Adaptive_mech Adaptive_net Adaptive_sim Engine Host Network Pdu Pool Rng Scs Session Time Tsc Unites
