lib/core/session.mli: Adaptive_buf Adaptive_mech Adaptive_net Adaptive_sim Engine Host Msg Network Pdu Scs Time Tko Unites
