lib/core/scs.ml: Adaptive_mech Adaptive_sim Format List Option Params String Time
