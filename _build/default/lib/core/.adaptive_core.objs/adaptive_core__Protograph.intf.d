lib/core/protograph.mli: Adaptive_mech Adaptive_sim Engine Host Time
