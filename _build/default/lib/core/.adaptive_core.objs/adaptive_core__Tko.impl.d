lib/core/tko.ml: Adaptive_mech Adaptive_sim Fec List Params Pdu Playout Printf Rate Reorder Rtt Scs Slowstart Time Window
