(** Session Configuration Specification — MANTTS Stage II output.

    The SCS is the "blueprint" (§4.1.1): one selected alternative for each
    session activity in the mechanism repository, plus the negotiated
    parameters (segment size, receive-buffer advertisement, priority,
    initial timer setting).  Serialization to a compact blob is what the
    [Syn]/[Syn_ack]/[Signal] PDUs carry during explicit negotiation and
    renegotiation. *)

open Adaptive_sim
open Adaptive_mech

type t = {
  connection : Params.connection;
  transmission : Params.transmission;
  congestion : Params.congestion_window;
  detection : Params.detection;
  reporting : Params.reporting;
  recovery : Params.recovery;
  ordering : Params.ordering;
  duplicates : Params.duplicates;
  delivery : Params.delivery;
  segment_bytes : int;  (** Negotiated segment payload size. *)
  recv_buffer_segments : int;  (** Receive window advertisement. *)
  priority : int;  (** Scheduling priority, 0 = highest. *)
  initial_rto : Time.t;  (** Retransmission timer before samples exist. *)
}

val default : t
(** A safe reliable configuration (three-way handshake, 8-segment window,
    checksum, cumulative acks, go-back-n, ordered, no pacing). *)

val to_blob : t -> string
(** Compact serialization for negotiation PDUs. *)

val of_blob : string -> t option
(** Parse a blob; [None] on malformed input. *)

val equal : t -> t -> bool
(** Structural equality. *)

val component_names : t -> t -> string list
(** Names of the session activities on which two specifications differ —
    the components segue must swap. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering of every component choice. *)

val reliable : t -> bool
(** The configuration retransmits (go-back-n or selective repeat). *)

val tracks_peer_feedback : t -> bool
(** The sender keeps in-flight state (any reporting other than
    [No_report]). *)

val ack_based : t -> bool
(** The reporting scheme returns cumulative acknowledgments, so the
    sender's in-flight set drains and bounds transmission.  NACK-based and
    silent configurations keep the set only as a bounded repair history:
    it neither gates the window nor drives retransmission timers. *)
