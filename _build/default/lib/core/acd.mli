(** The ADAPTIVE Communication Descriptor (Table 2).

    The descriptor an application passes through the MANTTS-API when
    initiating a connection: remote participant address(es), quantitative
    and qualitative QoS parameters ({!Qos.t}), the Transport Service
    Adjustment (TSA) — ⟨condition, action⟩ pairs evaluated against
    run-time feedback — and the Transport Measurement Component (TMC)
    naming the metrics UNITES should collect for this session. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech

(** Run-time conditions a TSA rule can test (the "when" of §3(C)). *)
type condition =
  | Loss_rate_above of float  (** Observed loss fraction exceeds bound. *)
  | Rtt_above of Time.t  (** Smoothed RTT exceeds bound. *)
  | Rtt_below of Time.t  (** Smoothed RTT back under bound. *)
  | Congestion_above of float  (** Worst-hop utilization exceeds bound. *)
  | Congestion_below of float  (** Worst-hop utilization under bound. *)
  | Receivers_above of int  (** Multicast membership grew past bound. *)
  | Receivers_below of int  (** Membership shrank below bound. *)
  | Route_changed  (** The path's hop list changed since setup. *)
  | All_of of condition list  (** Every sub-condition holds. *)
  | Any_of of condition list  (** At least one sub-condition holds. *)

(** Reconfigurations a TSA rule can request (the "what"). *)
type action =
  | Switch_recovery of Params.recovery
  | Switch_reporting of Params.reporting
  | Switch_transmission of Params.transmission
  | Scale_rate of float  (** Multiply the pacer rate (inter-PDU gap
                             adjustment, §4.1.2). *)
  | Adjust_playout of Time.t  (** New playout target. *)
  | Notify_application of string  (** Fire the application callback. *)

type tsa_rule = { condition : condition; action : action; once : bool }
(** One adjustment pair; [once] rules disarm after firing (hysteresis
    pairs are written as two one-shot rules re-arming each other is not
    modeled — use [once = false] with opposing conditions instead). *)

type tmc = {
  collect : Unites.metric list;  (** Metrics to record for this session. *)
  sample_every : Time.t;  (** Sampling period for rate-like metrics. *)
}
(** Transport Measurement Component. *)

type t = {
  participants : Network.addr list;  (** Remote end system(s); several
                                         addresses request multicast. *)
  qos : Qos.t;  (** Quantitative + qualitative parameters. *)
  explicit_tsc : Tsc.t option;  (** Application-selected service class
                                    (skips Stage I). *)
  tsa : tsa_rule list;  (** Transport Service Adjustment. *)
  tmc : tmc;  (** Measurement requests. *)
}

val make :
  ?explicit_tsc:Tsc.t ->
  ?tsa:tsa_rule list ->
  ?tmc:tmc ->
  participants:Network.addr list ->
  qos:Qos.t ->
  unit ->
  t
(** Build a descriptor; the default TMC collects nothing beyond the
    always-on blackbox metrics, sampled once per second. *)

val default_tmc : tmc
(** Empty collection list, 1 s sampling. *)

val condition_to_string : condition -> string
(** Rendering used in reports and the Table 2 regeneration. *)

val action_to_string : action -> string
(** Rendering used in reports and the Table 2 regeneration. *)

val table2 : (string * string * string) list
(** The rows of Table 2: parameter name, description, example specifiers —
    generated from this module so documentation and implementation cannot
    drift apart. *)
