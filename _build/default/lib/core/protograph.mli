(** Protocol graphs — the TKO protocol architecture level (§4.2.1).

    The [TKO_Protocol] class provides "management operations for
    manipulating protocol graphs (which express the relationships between
    various protocol objects)".  A {!t} is that graph: layers as nodes,
    uses-the-service-of edges pointing downward.  Graphs are edited at
    run time (insert, remove, re-route) and validated for acyclicity.

    Each layer declares the per-traversal costs the session architecture
    must pay when a PDU crosses it: header and trailer bytes, buffer
    copies, and fixed processing time.  {!stack_overhead} folds a
    resolved path into the numbers the rest of the system consumes — the
    header allowance MANTTS subtracts from the MTU and the host cost
    model behind the §2.2(A) throughput-preservation experiments.  The
    contrast between a conventional copy-per-layer stack and ADAPTIVE's
    flat, zero-copy session composition is the "is layering harmful"
    argument the paper cites. *)

open Adaptive_sim
open Adaptive_mech

type layer = {
  name : string;  (** Unique within a graph. *)
  header_bytes : int;  (** Prepended per PDU. *)
  trailer_bytes : int;  (** Appended per PDU. *)
  copies : int;  (** Memory-to-memory copies per traversal. *)
  per_packet : Time.t;  (** Fixed processing per PDU. *)
}

val layer :
  ?header:int -> ?trailer:int -> ?copies:int -> ?per_packet:Time.t -> string -> layer
(** Convenience constructor; everything defaults to zero. *)

type t
(** A mutable protocol graph. *)

val create : unit -> t
(** Empty graph. *)

val add_layer : t -> layer -> (unit, string) result
(** Insert a node; fails on duplicate names. *)

val remove_layer : t -> string -> (unit, string) result
(** Remove a node and every edge touching it; fails if absent. *)

val connect : t -> upper:string -> lower:string -> (unit, string) result
(** Add a uses-service-of edge; fails on unknown layers, self-edges, or
    edges that would create a cycle. *)

val disconnect : t -> upper:string -> lower:string -> unit
(** Remove an edge; absent edges are ignored. *)

val insert_between :
  t -> layer -> upper:string -> lower:string -> (unit, string) result
(** The classic graph edit: splice a new layer into an existing edge
    (e.g. adding an encryption or compression filter). *)

val layers : t -> layer list
(** All nodes, in insertion order. *)

val find : t -> string -> layer option
(** Look a layer up by name. *)

val lowers : t -> string -> string list
(** Services a layer uses, in edge-insertion order. *)

val uppers : t -> string -> string list
(** Layers using this one's service. *)

val path : t -> from_:string -> to_:string -> layer list option
(** A downward path (first found, depth-first in edge order), inclusive
    of both endpoints. *)

type overhead = {
  header_total : int;  (** Sum of headers along the path. *)
  trailer_total : int;  (** Sum of trailers. *)
  copy_total : int;  (** Copies a PDU suffers end to end. *)
  processing : Time.t;  (** Fixed per-PDU processing. *)
}

val stack_overhead : layer list -> overhead
(** Fold a resolved path into its per-PDU costs. *)

val host_model : ?per_byte_copy:Time.t -> Engine.t -> layer list -> Host.t
(** Host CPU cost model implied by a stack: per-packet time is the sum of
    layer processing, and every copy charges [per_byte_copy] (default
    25 ns) per byte. *)

val conventional_stack : unit -> t
(** The §2.2 strawman: application / transport / network / driver, one
    buffer copy and classic header at every boundary. *)

val adaptive_stack : unit -> t
(** The flat composition this system argues for: application /
    adaptive-session / driver, with shared (zero-copy) buffers between
    them. *)
