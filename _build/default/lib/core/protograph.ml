open Adaptive_sim
open Adaptive_mech

type layer = {
  name : string;
  header_bytes : int;
  trailer_bytes : int;
  copies : int;
  per_packet : Time.t;
}

let layer ?(header = 0) ?(trailer = 0) ?(copies = 0) ?(per_packet = Time.zero) name =
  { name; header_bytes = header; trailer_bytes = trailer; copies; per_packet }

type t = {
  mutable nodes : layer list; (* insertion order *)
  mutable edges : (string * string) list; (* (upper, lower), insertion order *)
}

let create () = { nodes = []; edges = [] }
let layers t = List.rev t.nodes
let find t name = List.find_opt (fun l -> l.name = name) t.nodes

let add_layer t l =
  if find t l.name <> None then Error (Printf.sprintf "layer %S already present" l.name)
  else begin
    t.nodes <- l :: t.nodes;
    Ok ()
  end

let lowers t name =
  List.filter_map (fun (u, l) -> if u = name then Some l else None) (List.rev t.edges)

let uppers t name =
  List.filter_map (fun (u, l) -> if l = name then Some u else None) (List.rev t.edges)

(* Is [target] reachable downward from [start]? *)
let reaches t start target =
  let rec go visited = function
    | [] -> false
    | n :: rest ->
      if n = target then true
      else if List.mem n visited then go visited rest
      else go (n :: visited) (lowers t n @ rest)
  in
  go [] [ start ]

let connect t ~upper ~lower =
  if find t upper = None then Error (Printf.sprintf "unknown layer %S" upper)
  else if find t lower = None then Error (Printf.sprintf "unknown layer %S" lower)
  else if upper = lower then Error "a layer cannot use its own service"
  else if reaches t lower upper then
    Error (Printf.sprintf "edge %s->%s would create a cycle" upper lower)
  else begin
    if not (List.mem (upper, lower) t.edges) then t.edges <- (upper, lower) :: t.edges;
    Ok ()
  end

let disconnect t ~upper ~lower =
  t.edges <- List.filter (fun e -> e <> (upper, lower)) t.edges

let remove_layer t name =
  if find t name = None then Error (Printf.sprintf "unknown layer %S" name)
  else begin
    t.nodes <- List.filter (fun l -> l.name <> name) t.nodes;
    t.edges <- List.filter (fun (u, l) -> u <> name && l <> name) t.edges;
    Ok ()
  end

let insert_between t l ~upper ~lower =
  if not (List.mem (upper, lower) t.edges) then
    Error (Printf.sprintf "no edge %s->%s to splice into" upper lower)
  else
    match add_layer t l with
    | Error _ as e -> e
    | Ok () ->
      disconnect t ~upper ~lower;
      (match connect t ~upper ~lower:l.name with
      | Ok () -> connect t ~upper:l.name ~lower
      | Error _ as e -> e)

let path t ~from_ ~to_ =
  let rec go visited name =
    if List.mem name visited then None
    else
      match find t name with
      | None -> None
      | Some l ->
        if name = to_ then Some [ l ]
        else
          let rec try_children = function
            | [] -> None
            | child :: rest -> (
              match go (name :: visited) child with
              | Some tail -> Some (l :: tail)
              | None -> try_children rest)
          in
          try_children (lowers t name)
  in
  go [] from_

type overhead = {
  header_total : int;
  trailer_total : int;
  copy_total : int;
  processing : Time.t;
}

let stack_overhead stack =
  List.fold_left
    (fun acc l ->
      {
        header_total = acc.header_total + l.header_bytes;
        trailer_total = acc.trailer_total + l.trailer_bytes;
        copy_total = acc.copy_total + l.copies;
        processing = Time.add acc.processing l.per_packet;
      })
    { header_total = 0; trailer_total = 0; copy_total = 0; processing = Time.zero }
    stack

let host_model ?(per_byte_copy = Time.ns 25) engine stack =
  let o = stack_overhead stack in
  Host.create ~per_packet:o.processing ~per_byte_copy ~copies:o.copy_total engine

let build spec_layers spec_edges =
  let t = create () in
  List.iter (fun l -> ignore (add_layer t l)) spec_layers;
  List.iter (fun (upper, lower) -> ignore (connect t ~upper ~lower)) spec_edges;
  t

let conventional_stack () =
  build
    [
      layer ~copies:1 ~per_packet:(Time.us 20) "application";
      layer ~header:20 ~copies:1 ~per_packet:(Time.us 60) "transport";
      layer ~header:20 ~copies:1 ~per_packet:(Time.us 30) "network";
      layer ~header:14 ~trailer:4 ~copies:1 ~per_packet:(Time.us 40) "driver";
    ]
    [ ("application", "transport"); ("transport", "network"); ("network", "driver") ]

let adaptive_stack () =
  build
    [
      layer ~per_packet:(Time.us 20) "application";
      (* One flat session layer with shared buffers: headers are the
         codec's, no intermediate copies. *)
      layer ~header:24 ~copies:1 ~per_packet:(Time.us 50) "adaptive-session";
      layer ~header:14 ~trailer:4 ~per_packet:(Time.us 30) "driver";
    ]
    [ ("application", "adaptive-session"); ("adaptive-session", "driver") ]
