open Adaptive_sim

type t = {
  avg_bps : float;
  peak_bps : float;
  max_latency : Time.t option;
  max_jitter : Time.t option;
  loss_tolerance : float;
  ordered : bool;
  duplicate_sensitive : bool;
  realtime : bool;
  isochronous : bool;
  interactive : bool;
  multicast : bool;
  priority : bool;
  duration : Time.t option;
}

let default =
  {
    avg_bps = 1e6;
    peak_bps = 1e6;
    max_latency = None;
    max_jitter = None;
    loss_tolerance = 0.0;
    ordered = true;
    duplicate_sensitive = true;
    realtime = false;
    isochronous = false;
    interactive = false;
    multicast = false;
    priority = false;
    duration = None;
  }

type level = Very_low | Low | Moderate | High | Very_high | Not_defined

let level_to_string = function
  | Very_low -> "very-low"
  | Low -> "low"
  | Moderate -> "mod"
  | High -> "high"
  | Very_high -> "very-high"
  | Not_defined -> "N/D"

type levels = {
  throughput : level;
  burst_factor : level;
  delay_sensitivity : level;
  jitter_sensitivity : level;
  order_sensitivity : level;
  loss_tolerance_level : level;
}

let burst_ratio t = if t.avg_bps <= 0.0 then 1.0 else t.peak_bps /. t.avg_bps

let throughput_level bps =
  if bps < 20e3 then Very_low
  else if bps < 300e3 then Low
  else if bps < 5e6 then Moderate
  else if bps < 50e6 then High
  else Very_high

let burst_level ratio =
  if ratio < 1.5 then Low else if ratio < 4.0 then Moderate else High

let delay_level = function
  | None -> Low
  | Some bound ->
    if bound > Time.sec 1.0 then Low
    else if bound > Time.ms 400 then Moderate
    else High

let jitter_level = function
  | None -> Not_defined
  | Some bound ->
    if bound <= Time.ms 20 then High
    else if bound <= Time.ms 100 then Moderate
    else Low

let loss_level tolerance =
  if tolerance <= 0.0 then Not_defined (* printed as "none" *)
  else if tolerance < 0.005 then Low
  else if tolerance < 0.03 then Moderate
  else High

let levels t =
  {
    throughput = throughput_level t.avg_bps;
    burst_factor = burst_level (burst_ratio t);
    delay_sensitivity = delay_level t.max_latency;
    jitter_sensitivity = jitter_level t.max_jitter;
    order_sensitivity = (if t.ordered then High else Low);
    loss_tolerance_level = loss_level t.loss_tolerance;
  }

let pp fmt t =
  let pp_opt_time fmt = function
    | None -> Format.pp_print_string fmt "unbounded"
    | Some v -> Time.pp fmt v
  in
  Format.fprintf fmt
    "@[<v>avg %.0f bps, peak %.0f bps@,\
     latency %a, jitter %a@,\
     loss tolerance %.3f@,\
     ordered=%b dup-sensitive=%b realtime=%b isochronous=%b@,\
     interactive=%b multicast=%b priority=%b duration %a@]"
    t.avg_bps t.peak_bps pp_opt_time t.max_latency pp_opt_time t.max_jitter
    t.loss_tolerance t.ordered t.duplicate_sensitive t.realtime t.isochronous
    t.interactive t.multicast t.priority pp_opt_time t.duration
