type t =
  | Interactive_isochronous
  | Distributional_isochronous
  | Realtime_non_isochronous
  | Non_realtime_non_isochronous

let classify (q : Qos.t) =
  if q.Qos.isochronous then
    if q.Qos.interactive then Interactive_isochronous else Distributional_isochronous
  else if q.Qos.realtime then Realtime_non_isochronous
  else Non_realtime_non_isochronous

let name = function
  | Interactive_isochronous -> "Interactive Isochronous"
  | Distributional_isochronous -> "Distributional Isochronous"
  | Realtime_non_isochronous -> "Real-Time Non-Isochronous"
  | Non_realtime_non_isochronous -> "Non-Real-Time Non-Isochronous"

let all =
  [
    Interactive_isochronous;
    Distributional_isochronous;
    Realtime_non_isochronous;
    Non_realtime_non_isochronous;
  ]

type policies = {
  full_reliability : bool;
  bounded_latency : bool;
  playout_smoothing : bool;
  rate_paced : bool;
  fast_setup : bool;
  multicast_capable : bool;
  congestion_responsive : bool;
  priority_scheduling : bool;
}

let policies t (q : Qos.t) =
  match t with
  | Interactive_isochronous ->
    {
      full_reliability = q.Qos.loss_tolerance <= 0.0;
      bounded_latency = true;
      playout_smoothing = true;
      rate_paced = true;
      fast_setup = true;
      multicast_capable = q.Qos.multicast;
      congestion_responsive = false;
      priority_scheduling = q.Qos.priority;
    }
  | Distributional_isochronous ->
    {
      full_reliability = q.Qos.loss_tolerance <= 0.0;
      bounded_latency = true;
      playout_smoothing = true;
      rate_paced = true;
      fast_setup = false;
      multicast_capable = q.Qos.multicast;
      congestion_responsive = false;
      priority_scheduling = q.Qos.priority;
    }
  | Realtime_non_isochronous ->
    {
      full_reliability = q.Qos.loss_tolerance <= 0.0;
      bounded_latency = true;
      playout_smoothing = false;
      rate_paced = false;
      fast_setup = true;
      multicast_capable = q.Qos.multicast;
      congestion_responsive = false;
      priority_scheduling = true;
    }
  | Non_realtime_non_isochronous ->
    {
      full_reliability = true;
      bounded_latency = (match q.Qos.max_latency with Some _ -> true | None -> false);
      playout_smoothing = false;
      rate_paced = false;
      fast_setup = q.Qos.interactive;
      multicast_capable = q.Qos.multicast;
      congestion_responsive = true;
      priority_scheduling = q.Qos.priority;
    }

let pp fmt t = Format.pp_print_string fmt (name t)
