open Adaptive_sim

type replication = { n : int; mean : float; stddev : float; half_width : float }

let replicate ~seeds f =
  if seeds = [] then invalid_arg "Lab.replicate: no seeds";
  let stats = Stats.create () in
  List.iter (fun seed -> Stats.add stats (f ~seed)) seeds;
  let n = Stats.count stats in
  let stddev = if n < 2 then 0.0 else Stats.stddev stats in
  {
    n;
    mean = Stats.mean stats;
    stddev;
    half_width = (if n < 2 then 0.0 else 2.0 *. stddev /. sqrt (float_of_int n));
  }

let default_seeds = [ 11; 211; 3011; 40111; 500111 ]

let distinguishable a b =
  Float.abs (a.mean -. b.mean) > a.half_width +. b.half_width

let pp fmt r = Format.fprintf fmt "%.3g ± %.2g (n=%d)" r.mean r.half_width r.n

let compare_table ~label_a ~label_b ~rows fmt () =
  Format.fprintf fmt "%-14s %22s %22s %16s@." "" label_a label_b "verdict";
  List.iter
    (fun (name, a, b) ->
      Format.fprintf fmt "%-14s %22s %22s %16s@." name
        (Format.asprintf "%a" pp a)
        (Format.asprintf "%a" pp b)
        (if distinguishable a b then
           if a.mean > b.mean then label_a ^ " higher" else label_b ^ " higher"
         else "indistinct"))
    rows
