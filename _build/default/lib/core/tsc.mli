(** Transport Service Classes — MANTTS Stage I.

    A TSC "embodies a set of related policy decisions that satisfy the
    application's QoS requests" (§4.1.1).  The four classes are the ones
    the paper's Table 1 and Stage I description use: interactive
    isochronous (voice conversation, tele-conferencing), distributional
    isochronous (full-motion video), real-time non-isochronous
    (manufacturing control), and non-real-time non-isochronous (file
    transfer, TELNET, transaction processing).  {!classify} is the
    Stage I transformation; {!policies} is the policy bundle Stage II
    turns into mechanisms. *)


type t =
  | Interactive_isochronous
  | Distributional_isochronous
  | Realtime_non_isochronous
  | Non_realtime_non_isochronous

val classify : Qos.t -> t
(** Map QoS requirements to a service class.  Total: every requirement
    lands in exactly one class. *)

val name : t -> string
(** Display name as used in Table 1's first column. *)

val all : t list
(** The four classes, in Table 1 order. *)

type policies = {
  full_reliability : bool;
      (** Every byte must arrive: ARQ recovery, strong detection. *)
  bounded_latency : bool;
      (** Retransmission strategies must respect a delay budget. *)
  playout_smoothing : bool;
      (** Deliver at an isochronous playout point. *)
  rate_paced : bool;  (** Transmit on a rate schedule, not a window. *)
  fast_setup : bool;
      (** Avoid handshake round trips (implicit negotiation). *)
  multicast_capable : bool;  (** Configuration must support fan-out. *)
  congestion_responsive : bool;
      (** Back off under congestion (elastic traffic). *)
  priority_scheduling : bool;  (** Prioritized delivery. *)
}
(** The policy bundle a class implies; Stage II reconciles these with
    network characteristics to choose mechanisms. *)

val policies : t -> Qos.t -> policies
(** Policy decisions for a requirement within its class. *)

val pp : Format.formatter -> t -> unit
(** Prints {!name}. *)
