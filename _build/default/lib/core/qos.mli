(** Application quality-of-service requirements.

    The quantitative and qualitative QoS parameters of the ADAPTIVE
    Communication Descriptor (Table 2).  Quantitative values are concrete
    numbers (throughput, latency, jitter and loss bounds, duration);
    qualitative values request functional behaviour (ordering, duplicate
    sensitivity, multicast, priority).  {!levels} abstracts a requirement
    into the qualitative grades Table 1 is written in, which is how the
    Stage I classifier and the Table 1 regeneration both work from the
    same data. *)

open Adaptive_sim

type t = {
  avg_bps : float;  (** Sustained application throughput needed. *)
  peak_bps : float;  (** Peak throughput ([>= avg_bps]). *)
  max_latency : Time.t option;  (** End-to-end delay bound, if any. *)
  max_jitter : Time.t option;  (** Delay-variation bound, if any. *)
  loss_tolerance : float;  (** Largest acceptable loss fraction
                               (0 = loss-intolerant). *)
  ordered : bool;  (** In-sequence delivery required. *)
  duplicate_sensitive : bool;  (** Duplicates must be suppressed. *)
  realtime : bool;  (** Deadlines are hard. *)
  isochronous : bool;  (** Continuous media: paced generation and
                           playout-point delivery. *)
  interactive : bool;  (** Two-way human-in-the-loop exchange. *)
  multicast : bool;  (** More than one receiver. *)
  priority : bool;  (** Prioritized delivery/scheduling requested. *)
  duration : Time.t option;  (** Expected session duration (reconfiguring
                                 very short sessions is not useful,
                                 §4.1.1). *)
}

val default : t
(** A neutral, elastic, reliable profile (file-transfer-like): everything
    bounded only by the network, ordered, duplicate-sensitive, zero loss
    tolerance. *)

type level = Very_low | Low | Moderate | High | Very_high | Not_defined
(** Qualitative grade used by Table 1. *)

val level_to_string : level -> string
(** Lower-case label as printed in Table 1. *)

type levels = {
  throughput : level;
  burst_factor : level;
  delay_sensitivity : level;
  jitter_sensitivity : level;
  order_sensitivity : level;
  loss_tolerance_level : level;  (** [Not_defined] prints as "none". *)
}
(** The six graded columns of Table 1 (priority and multicast are the two
    boolean columns). *)

val levels : t -> levels
(** Grade a quantitative requirement into Table 1 vocabulary. *)

val burst_ratio : t -> float
(** [peak_bps /. avg_bps] (1.0 when [avg_bps] is 0). *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump of every field. *)
