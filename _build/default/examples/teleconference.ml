(* A multicast tele-conference with dynamic membership.  One speaker
   multicasts audio to a group that grows and shrinks during the session;
   NACK-based selective repeat repairs per-receiver loss, and the shared
   first hop carries each frame once no matter how many listeners join —
   compare the bytes the access link carries against the N-unicast cost a
   TCP-like stack would pay.

   Run with: dune exec examples/teleconference.exe *)

open Adaptive_sim
open Adaptive_net
open Adaptive_core
open Adaptive_workloads

let () =
  let stack = Adaptive.create_stack ~seed:9 () in
  let speaker = Adaptive.add_host stack "speaker" in
  let access =
    Link.create ~name:"access" ~bandwidth_bps:10e6 ~propagation:(Time.us 5)
      ~queue_pkts:128 ~mtu:1500 ()
  in
  let mk_listener name =
    let h = Adaptive.add_host stack name in
    let tail =
      Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:128
        ~mtu:1500 ()
    in
    Topology.set_route stack.Adaptive.topology ~src:speaker ~dst:h [ access; tail ];
    Topology.set_route stack.Adaptive.topology ~src:h ~dst:speaker
      [
        Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:128
          ~mtu:1500 ();
      ];
    h
  in
  let alice = mk_listener "alice" in
  let bob = mk_listener "bob" in
  let carol = mk_listener "carol" in

  let qos = Workloads.qos Workloads.Teleconferencing in
  let acd = Acd.make ~participants:[ alice; bob ] ~qos () in
  let session =
    Mantts.open_session stack.Adaptive.mantts ~src:speaker ~acd ~name:"conference" ()
  in
  Format.printf "configuration: %a@." Scs.pp (Session.scs session);

  ignore
    (Workloads.drive stack.Adaptive.engine stack.Adaptive.rng ~session
       Workloads.Teleconferencing ~stop_at:(Time.sec 10.0));

  (* Carol joins two seconds in; Bob leaves at six. *)
  ignore
    (Engine.schedule stack.Adaptive.engine ~at:(Time.sec 2.0) (fun () ->
         Format.printf "[%a] carol joins@." Time.pp (Adaptive.now stack);
         Session.add_peer session carol));
  ignore
    (Engine.schedule stack.Adaptive.engine ~at:(Time.sec 6.0) (fun () ->
         Format.printf "[%a] bob leaves@." Time.pp (Adaptive.now stack);
         Session.remove_peer session bob));

  Adaptive.run stack ~until:(Time.sec 11.0);

  let u = stack.Adaptive.unites in
  let id = Session.id session in
  let frames = Unites.total u ~session:id Unites.Segments_sent in
  let delivered = Unites.total u ~session:id Unites.Segments_delivered in
  let nacks = Unites.total u ~session:id Unites.Nacks_sent in
  let carried = (Link.stats access).Link.bytes_carried in
  Format.printf "@.audio frames multicast : %.0f@." frames;
  Format.printf "deliveries (all members): %.0f@." delivered;
  Format.printf "nack repairs requested  : %.0f@." nacks;
  Format.printf "access link carried     : %d bytes (one copy per frame)@." carried;
  Format.printf "n-unicast would carry   : ~%.0f bytes for 3 members@."
    (3.0 *. float_of_int carried);
  Mantts.close_session stack.Adaptive.mantts session;
  Adaptive.run stack ~until:(Time.sec 15.0)
