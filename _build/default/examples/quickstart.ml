(* Quickstart: open an ADAPTIVE session between two LAN hosts, transfer a
   file, and print what MANTTS configured and what UNITES measured.

   Run with: dune exec examples/quickstart.exe *)

open Adaptive_sim
open Adaptive_net
open Adaptive_core

let () =
  (* 1. Stand up a system: engine + network + UNITES + MANTTS. *)
  let stack = Adaptive.create_stack ~seed:42 () in
  let client = Adaptive.add_host stack "client" in
  let server = Adaptive.add_host stack "server" in
  Adaptive.connect_hosts stack client server (Profiles.lan_path ());

  (* 2. Describe the application: a 2 MB reliable file transfer. *)
  let acd = Acd.make ~participants:[ server ] ~qos:(Qos.default) () in

  (* 3. MANTTS classifies, derives a configuration, and TKO synthesizes it. *)
  let tsc = Mantts.classify acd in
  let scs = Mantts.derive_scs stack.Adaptive.mantts ~src:client acd tsc in
  Format.printf "service class : %a@." Tsc.pp tsc;
  Format.printf "configuration : %a@." Scs.pp scs;

  let session =
    Mantts.open_session stack.Adaptive.mantts ~src:client ~acd ~name:"quickstart" ()
  in

  (* 4. Send 2 MB and run the simulation to completion. *)
  Session.send session ~bytes:2_000_000 ();
  Adaptive.run stack ~until:(Time.sec 30.0);
  Mantts.close_session stack.Adaptive.mantts session;
  Adaptive.run stack ~until:(Time.sec 31.0);

  (* 5. Report. *)
  let unites = stack.Adaptive.unites in
  let delivered = Unites.aggregate_total unites Unites.Bytes_delivered in
  (* The whole message is stamped near t=0, so the largest delivery
     latency is the transfer completion time. *)
  let completion =
    match Unites.aggregate unites Unites.Delivery_latency with
    | Some s -> s.Stats.max
    | None -> nan
  in
  Format.printf "state         : %s@."
    (match Session.state session with
    | Session.Closed -> "closed"
    | Session.Established -> "established"
    | Session.Opening -> "opening"
    | Session.Closing -> "closing");
  Format.printf "delivered     : %.0f bytes in %.3f s (%.2f Mb/s goodput)@."
    delivered completion
    (delivered *. 8.0 /. 1e6 /. Float.max 1e-9 completion);
  Format.printf "retransmits   : %.0f@."
    (Unites.aggregate_total unites Unites.Retransmissions);
  Format.printf "%a@." Unites.report unites
