examples/transaction.mli:
