examples/teleconference.ml: Acd Adaptive Adaptive_core Adaptive_net Adaptive_sim Adaptive_workloads Engine Format Link Mantts Scs Session Time Topology Unites Workloads
