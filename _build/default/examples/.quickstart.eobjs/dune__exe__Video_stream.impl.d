examples/video_stream.ml: Acd Adaptive Adaptive_core Adaptive_net Adaptive_sim Adaptive_workloads Engine Format List Mantts Profiles Scs Session Stats Time Topology Unites Workloads
