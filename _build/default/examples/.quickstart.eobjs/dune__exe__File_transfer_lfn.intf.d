examples/file_transfer_lfn.mli:
