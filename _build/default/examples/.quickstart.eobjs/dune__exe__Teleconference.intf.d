examples/teleconference.mli:
