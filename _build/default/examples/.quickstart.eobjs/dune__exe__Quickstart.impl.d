examples/quickstart.ml: Acd Adaptive Adaptive_core Adaptive_net Adaptive_sim Float Format Mantts Profiles Qos Scs Session Stats Time Tsc Unites
