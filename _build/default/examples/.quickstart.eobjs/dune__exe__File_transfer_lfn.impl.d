examples/file_transfer_lfn.ml: Acd Adaptive Adaptive_baselines Adaptive_core Adaptive_mech Adaptive_net Adaptive_sim Baselines Format Mantts Params Profiles Qos Scs Session Stats Time Unites
