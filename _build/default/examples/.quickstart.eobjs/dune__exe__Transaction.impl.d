examples/transaction.ml: Acd Adaptive Adaptive_baselines Adaptive_core Adaptive_net Adaptive_sim Adaptive_workloads Baselines Engine Format Mantts Profiles Session Time Workloads
