examples/manufacturing.mli:
