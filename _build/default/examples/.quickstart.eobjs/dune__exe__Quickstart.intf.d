examples/quickstart.mli:
