examples/manufacturing.ml: Acd Adaptive Adaptive_core Adaptive_mech Adaptive_net Adaptive_sim Adaptive_workloads Engine Format Host Link List Mantts Qos Routing Scs Session Time Unites Workloads
