(* Real-time manufacturing control (the paper's Real-Time Non-Isochronous
   class): a cell controller sends a command to its robot every 10 ms with
   a hard 50 ms deadline, while a bulk diagnostic upload shares the same
   host CPU.  Two things keep the control loop alive:

   - priority scheduling: the control session's PDUs jump the bulk
     transfer's host backlog (Table 2's "priorities for message delivery
     and scheduling");
   - routing failover: when the factory backbone fails mid-run, the
     Routing monitor installs the backup path and the session rides
     through.

   Run with: dune exec examples/manufacturing.exe *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_workloads

let () =
  let stack = Adaptive.create_stack ~seed:33 () in
  let slow e = Host.create ~per_packet:(Time.us 250) ~per_byte_copy:(Time.ns 25) e in
  let controller = Adaptive.add_host ~host_cpu:(slow stack.Adaptive.engine) stack "controller" in
  let robot = Adaptive.add_host ~host_cpu:(slow stack.Adaptive.engine) stack "robot" in
  let archive = Adaptive.add_host stack "archive" in

  (* Primary backbone and a slower backup path; the Routing monitor keeps
     the best live one installed. *)
  let mk bw prop = Link.create ~bandwidth_bps:bw ~propagation:prop ~queue_pkts:128 ~mtu:1500 () in
  let primary = [ mk 100e6 (Time.us 50) ] in
  let backup = [ mk 10e6 (Time.ms 2) ] in
  let routing = Routing.create stack.Adaptive.engine stack.Adaptive.topology in
  Routing.set_symmetric_candidates routing ~a:controller ~b:robot [ primary; backup ];
  ignore (Routing.monitor ~every:(Time.ms 100) routing);
  Adaptive.connect_hosts stack controller archive
    [ mk 100e6 (Time.us 50) ];

  (* The control session: MANTTS classifies it Real-Time Non-Isochronous
     and gives it expedited priority. *)
  let qos = Workloads.qos Workloads.Manufacturing_control in
  let qos = { qos with Qos.multicast = false } in
  let deadline = Time.ms 50 in
  let latencies = ref [] in
  Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts robot) (fun _ d ->
      latencies := Time.diff d.Session.delivered_at d.Session.app_stamp :: !latencies);
  let acd = Acd.make ~participants:[ robot ] ~qos () in
  let control = Mantts.open_session stack.Adaptive.mantts ~src:controller ~acd ~name:"control" () in
  Format.printf "control configuration: %a@." Scs.pp (Session.scs control);

  (* The competing bulk diagnostic upload from the same host. *)
  let bulk_acd = Acd.make ~participants:[ archive ] ~qos:Qos.default () in
  let bulk = Mantts.open_session stack.Adaptive.mantts ~src:controller ~acd:bulk_acd ~name:"upload" () in
  Session.send bulk ~bytes:30_000_000 ();

  (* 10 ms command loop for 8 simulated seconds. *)
  let rec command i =
    if i < 800 then
      ignore
        (Engine.schedule stack.Adaptive.engine
           ~at:(Time.add (Time.ms 20) (i * Time.ms 10))
           (fun () ->
             if Session.state control = Session.Established then
               Session.send control ~bytes:256 ();
             command (i + 1)))
  in
  command 0;

  (* The backbone fails at 3 s and is repaired at 6 s. *)
  ignore
    (Engine.schedule stack.Adaptive.engine ~at:(Time.sec 3.0) (fun () ->
         Format.printf "[%a] backbone fails@." Time.pp (Adaptive.now stack);
         Link.fail (List.hd primary)));
  ignore
    (Engine.schedule stack.Adaptive.engine ~at:(Time.sec 6.0) (fun () ->
         Format.printf "[%a] backbone repaired@." Time.pp (Adaptive.now stack);
         Link.repair (List.hd primary)));

  Adaptive.run stack ~until:(Time.sec 9.0);

  List.iter
    (fun (at, src, dst, ix) ->
      Format.printf "[%a] route %d->%d switched to candidate %d@." Time.pp at src dst ix)
    (Routing.log routing);

  let n = List.length !latencies in
  let sorted = List.sort compare !latencies in
  let pct q = if n = 0 then Time.zero else List.nth sorted (min (n - 1) (n * q / 100)) in
  let misses = List.length (List.filter (fun l -> l > deadline) !latencies) in
  Format.printf "@.commands delivered : %d / 800@." n;
  Format.printf "latency            : p50 %a, p99 %a@." Time.pp (pct 50) Time.pp (pct 99);
  Format.printf "deadline misses    : %d (%.2f%%) against %a@." misses
    (100.0 *. float_of_int misses /. float_of_int (max 1 n))
    Time.pp deadline;
  Format.printf "bulk upload moved  : %.1f MB alongside@."
    (Unites.total stack.Adaptive.unites ~session:(Session.id bulk) Unites.Bytes_delivered
    /. 1e6);
  Mantts.close_session stack.Adaptive.mantts control;
  Mantts.close_session stack.Adaptive.mantts bulk;
  Adaptive.run stack ~until:(Time.sec 20.0)
