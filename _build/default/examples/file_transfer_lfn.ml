(* Bulk transfer over a long-fat network (155 Mb/s B-ISDN WAN, ~60 ms
   round trip).  The TCP-like baseline is stuck with its 64 KiB-equivalent
   window — the §2.2(C) long-delay limitation — while MANTTS negotiates a
   window scaled to the bandwidth-delay product.

   Run with: dune exec examples/file_transfer_lfn.exe *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_baselines

let transfer_bytes = 40_000_000

let run_one label connect =
  let stack = Adaptive.create_stack ~seed:13 () in
  let a = Adaptive.add_host stack "sender" in
  let b = Adaptive.add_host stack "receiver" in
  Adaptive.connect_hosts stack a b (Profiles.atm_lfn_path ());
  let session = connect stack a b in
  Session.send session ~bytes:transfer_bytes ();
  Adaptive.run stack ~until:(Time.sec 120.0);
  let u = stack.Adaptive.unites in
  let delivered = Unites.aggregate_total u Unites.Bytes_delivered in
  let finish =
    match Unites.aggregate u Unites.Delivery_latency with
    | Some s -> s.Stats.max
    | None -> nan
  in
  let window =
    match (Session.scs session).Scs.transmission with
    | Params.Sliding_window { window } -> window
    | Params.Rate_based _ | Params.Stop_and_wait -> 0
  in
  Format.printf "%-18s window %4d segs  %.1f MB in %6.2f s  -> %7.2f Mb/s@." label
    window (delivered /. 1e6) finish
    (delivered *. 8.0 /. 1e6 /. finish);
  Session.close ~graceful:false session

let () =
  Format.printf "40 MB over 155 Mb/s x ~60 ms RTT LFN (bandwidth-delay product ~1.2 MB)@.@.";
  run_one "tcp-like (static)" (fun stack a b ->
      Baselines.connect
        (Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a))
        ~peers:[ b ] Baselines.Tcp_like);
  run_one "adaptive (scaled)" (fun stack a b ->
      let acd = Acd.make ~participants:[ b ] ~qos:Qos.default () in
      Mantts.open_session stack.Adaptive.mantts ~src:a ~acd ())
