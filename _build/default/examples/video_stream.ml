(* Compressed full-motion video distributed over a B-ISDN WAN whose route
   fails over to a satellite mid-session (the §4.1.2 example).  MANTTS
   first synthesizes a rate-paced, playout-buffered configuration with no
   recovery; when the route change pushes the delay past the FEC threshold
   the policy monitor segues recovery to forward error correction — watch
   the adaptation log.

   Run with: dune exec examples/video_stream.exe *)

open Adaptive_sim
open Adaptive_net
open Adaptive_core
open Adaptive_workloads

let () =
  let stack = Adaptive.create_stack ~seed:7 () in
  let studio = Adaptive.add_host stack "studio" in
  let viewer = Adaptive.add_host stack "viewer" in
  Adaptive.connect_hosts stack studio viewer (Profiles.bisdn_path ());

  let qos = Workloads.qos Workloads.Video_compressed in
  let acd = Acd.make ~participants:[ viewer ] ~qos () in
  let session =
    Mantts.open_session stack.Adaptive.mantts ~src:studio ~acd ~name:"video" ()
  in
  Format.printf "initial configuration: %a@." Scs.pp (Session.scs session);

  (* Stream 30 frames/s for 12 simulated seconds. *)
  ignore
    (Workloads.drive stack.Adaptive.engine stack.Adaptive.rng ~session
       Workloads.Video_compressed ~stop_at:(Time.sec 12.0));

  (* At t = 4 s an intermediate node fails and the route moves to a
     satellite hop. *)
  ignore
    (Engine.schedule stack.Adaptive.engine ~at:(Time.sec 4.0) (fun () ->
         Format.printf "[%a] route fails over to satellite@." Time.pp
           (Adaptive.now stack);
         Topology.set_symmetric_route stack.Adaptive.topology ~a:studio ~b:viewer
           (Profiles.satellite_path ())));

  Adaptive.run stack ~until:(Time.sec 14.0);
  Format.printf "final configuration  : %a@." Scs.pp (Session.scs session);

  Format.printf "@.adaptations applied by MANTTS policies:@.";
  List.iter
    (fun (at, _, what) -> Format.printf "  [%a] %s@." Time.pp at what)
    (Mantts.adaptations stack.Adaptive.mantts);

  let u = stack.Adaptive.unites in
  let id = Session.id session in
  let total m = Unites.total u ~session:id m in
  Format.printf "@.frames sent      : %.0f (+%.0f parity)@."
    (total Unites.Segments_sent) (total Unites.Fec_parity_sent);
  Format.printf
    "frames delivered : %.0f (%.0f recovered by FEC, %.0f lost late/for good)@."
    (total Unites.Segments_delivered)
    (total Unites.Fec_recovered)
    (total Unites.Late_discards +. total Unites.Losses_unrecovered);
  (match Unites.stats u ~session:id Unites.Delivery_latency with
  | Some s ->
    Format.printf
      "delivery latency : mean %.1f ms, p99 %.1f ms (constant = jitter absorbed)@."
      (s.Stats.mean *. 1e3) (s.Stats.p99 *. 1e3)
  | None -> ());
  Mantts.close_session stack.Adaptive.mantts session;
  Adaptive.run stack ~until:(Time.sec 20.0)
