(* On-line transaction processing: short request/response exchanges where
   connection set-up latency dominates.  MANTTS selects implicit
   connection management (configuration piggybacked ahead of the first
   PDU, §4.1.1), so the first transaction completes a full round trip
   earlier than over the TCP-like three-way handshake.

   Run with: dune exec examples/transaction.exe *)

open Adaptive_sim
open Adaptive_net
open Adaptive_core
open Adaptive_baselines
open Adaptive_workloads

let run_one label connect =
  let stack = Adaptive.create_stack ~seed:29 () in
  let client = Adaptive.add_host stack "client" in
  let server = Adaptive.add_host stack "server" in
  Adaptive.connect_hosts stack client server (Profiles.internet_path ());
  Workloads.install_server Workloads.Oltp (Mantts.entity stack.Adaptive.mantts server);
  let completions = ref [] in
  let session = connect stack client server in
  (* Issue one transaction: a 256-byte request; the server answers 2 kB. *)
  let issued_at = Adaptive.now stack in
  Session.send session ~bytes:256 ();
  (* Watch for the response on the client side. *)
  let rec poll () =
    if Session.segments_delivered session > 0 && !completions = [] then
      completions := Time.diff (Adaptive.now stack) issued_at :: !completions
    else if Adaptive.now stack < Time.sec 5.0 then
      ignore (Engine.schedule_after stack.Adaptive.engine ~delay:(Time.ms 1) poll)
  in
  poll ();
  Adaptive.run stack ~until:(Time.sec 5.0);
  (match !completions with
  | first :: _ ->
    Format.printf "%-22s first transaction completed in %a@." label Time.pp first
  | [] -> Format.printf "%-22s no response within 5 s@." label);
  Session.close ~graceful:false session

let () =
  Format.printf
    "one OLTP transaction over the congestion-prone internet path (~65 ms one way)@.@.";
  run_one "tcp-like (3-way)" (fun stack client server ->
      Baselines.connect
        (Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts client))
        ~peers:[ server ] Baselines.Tcp_like);
  run_one "adaptive (implicit)" (fun stack client server ->
      let acd =
        Acd.make ~participants:[ server ] ~qos:(Workloads.qos Workloads.Oltp) ()
      in
      Mantts.open_session stack.Adaptive.mantts ~src:client ~acd ())
