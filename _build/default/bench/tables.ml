(* Regeneration of the paper's two tables from the implementation. *)

open Adaptive_core
open Adaptive_workloads

(* The rows of Table 1 exactly as printed in the paper, for comparison
   with what the classifier and grader produce. *)
let paper_rows =
  [
    (Workloads.Voice_conversation, ("low", "low", "high", "high", "low", "high", "no", "no"));
    (Workloads.Teleconferencing, ("mod", "mod", "high", "high", "low", "mod", "yes", "yes"));
    (Workloads.Video_compressed, ("high", "high", "high", "mod", "low", "mod", "yes", "yes"));
    (Workloads.Video_raw, ("very-high", "low", "high", "high", "low", "mod", "yes", "yes"));
    (Workloads.Manufacturing_control, ("mod", "mod", "high", "var", "high", "low", "yes", "yes"));
    (Workloads.File_transfer, ("mod", "low", "low", "N/D", "high", "none", "no", "no"));
    (Workloads.Telnet, ("very-low", "high", "high", "low", "high", "none", "yes", "no"));
    (Workloads.Oltp, ("low", "high", "high", "low", "var", "none", "no", "no"));
    (Workloads.Remote_file_service, ("low", "high", "high", "low", "var", "none", "no", "yes"));
  ]

let generated_row app =
  let q = Workloads.qos app in
  let l = Qos.levels q in
  let s = Qos.level_to_string in
  let loss =
    match l.Qos.loss_tolerance_level with
    | Qos.Not_defined -> "none"
    | lv -> s lv
  in
  ( s l.Qos.throughput,
    s l.Qos.burst_factor,
    s l.Qos.delay_sensitivity,
    s l.Qos.jitter_sensitivity,
    s l.Qos.order_sensitivity,
    loss,
    (if q.Qos.priority then "yes" else "no"),
    if q.Qos.multicast then "yes" else "no" )

let cell_matches ~paper ~ours =
  (* "var" and "N/D" in the paper are accepted against any grade; exact
     labels must match exactly. *)
  paper = ours || paper = "var" || paper = "N/D"

let table1 () =
  Util.heading "Table 1 — Application Transport Service Classes (regenerated)";
  Util.row "%-30s %-28s %-9s %-5s %-5s %-6s %-5s %-5s %-4s %-5s@." "Service Class"
    "Application" "Thruput" "Burst" "Delay" "Jitter" "Order" "Loss" "Pri" "Mcast";
  Util.rule 110;
  let agree = ref 0 and cells = ref 0 in
  List.iter
    (fun (app, (p1, p2, p3, p4, p5, p6, p7, p8)) ->
      let tsc = Tsc.classify (Workloads.qos app) in
      let g1, g2, g3, g4, g5, g6, g7, g8 = generated_row app in
      Util.row "%-30s %-28s %-9s %-5s %-5s %-6s %-5s %-5s %-4s %-5s@." (Tsc.name tsc)
        (Workloads.name app) g1 g2 g3 g4 g5 g6 g7 g8;
      List.iter
        (fun (paper, ours) ->
          incr cells;
          if cell_matches ~paper ~ours then incr agree)
        [ (p1, g1); (p2, g2); (p3, g3); (p4, g4); (p5, g5); (p6, g6); (p7, g7); (p8, g8) ])
    paper_rows;
  Util.rule 110;
  Util.row "cells agreeing with the paper's grades: %d / %d@." !agree !cells;
  let classes_ok =
    List.for_all
      (fun (app, _) -> Tsc.classify (Workloads.qos app) = Workloads.expected_tsc app)
      paper_rows
  in
  Util.shape_check "all nine applications land in the paper's service class" classes_ok;
  Util.shape_check "at least 80% of qualitative grades match the paper"
    (float_of_int !agree /. float_of_int !cells >= 0.8)

let table2 () =
  Util.heading "Table 2 — The ADAPTIVE Communication Descriptor (regenerated)";
  List.iter
    (fun (name, description, example) ->
      Util.row "%-42s@." name;
      Util.row "    %s@." description;
      Util.row "    e.g. %s@." example)
    Acd.table2;
  Util.shape_check "five descriptor components as in the paper"
    (List.length Acd.table2 = 5)
