(* Bechamel micro-benchmarks.

   Figures 4–5: the TKO session architecture's binding styles trade
   dispatch cost for flexibility (§4.2.2's "customization"): a static
   template is fully customized (direct call), a reconfigurable template
   pays one indirection (mutable binding), and a dynamically synthesized
   configuration pays a table lookup plus indirection.  The segue and
   synthesis paths themselves are also measured, plus the hot mechanism
   primitives (checksums, buffer push/pop, event queue, RNG). *)

open Adaptive_sim
open Adaptive_buf
open Adaptive_core
open Bechamel
open Toolkit

(* ------------------------------------------------- dispatch styles *)

(* The measured operation: the per-PDU send-window admission check. *)
let admission window peer inflight = inflight < min window peer

(* Static template: the mechanism is bound at build time — a direct,
   inlinable call. *)
let static_dispatch () =
  let acc = ref 0 in
  for i = 0 to 63 do
    if admission 32 44 (i land 63) then incr acc
  done;
  ignore !acc

(* Reconfigurable template: the mechanism hides behind one mutable
   binding (the segue-able pointer of Figure 5). *)
type binding_cell = { mutable check : int -> bool }

let cell = { check = (fun inflight -> admission 32 44 inflight) }

let reconfigurable_dispatch () =
  let acc = ref 0 in
  for i = 0 to 63 do
    if cell.check (i land 63) then incr acc
  done;
  ignore !acc

(* Dynamically synthesized: mechanisms are found through the context
   table (string-keyed, as the synthesizer built it). *)
let table : (string, int -> bool) Hashtbl.t = Hashtbl.create 8

let () =
  Hashtbl.replace table "transmission" (fun inflight -> admission 32 44 inflight);
  Hashtbl.replace table "recovery" (fun _ -> true);
  Hashtbl.replace table "reporting" (fun _ -> true)

let synthesized_dispatch () =
  let check = Hashtbl.find table "transmission" in
  let acc = ref 0 in
  for i = 0 to 63 do
    if check (i land 63) then incr acc
  done;
  ignore !acc

(* ---------------------------------------------------- tko operations *)

let media_scs =
  match Tko.Templates.find Tko.Templates.media_stream with
  | Some (_, scs) -> scs
  | None -> Scs.default

let bench_synthesize () = ignore (Tko.synthesize Scs.default)

let bench_template_lookup () = ignore (Tko.Templates.lookup_scs media_scs)

let segue_ctx = Tko.synthesize Scs.default

let segue_alt =
  { Scs.default with Scs.recovery = Adaptive_mech.Params.Selective_repeat }

let flip = ref false

let bench_segue () =
  flip := not !flip;
  ignore (Tko.segue segue_ctx (if !flip then segue_alt else Scs.default))

(* ------------------------------------------------------- primitives *)

let payload_1k = String.init 1024 (fun i -> Char.chr (i land 0xff))

let bench_cksum () = ignore (Checksum.internet payload_1k)
let bench_crc () = ignore (Checksum.crc32 payload_1k)

let bench_msg_push_pop () =
  let m = Msg.of_string payload_1k in
  Msg.push m "hdr1";
  Msg.push m "hdr2";
  ignore (Msg.pop m);
  ignore (Msg.pop m)

let bench_msg_fragment () =
  let m = Msg.of_string payload_1k in
  ignore (Msg.fragment m ~mtu:256)

let bench_heap () =
  let h = Heap.create () in
  for i = 0 to 255 do
    Heap.push h ~key:((i * 7919) land 1023) i
  done;
  while not (Heap.is_empty h) do
    ignore (Heap.pop h)
  done

let rng = Rng.create 99

let bench_rng () = ignore (Rng.bits64 rng)

(* --------------------------------------------------------- harness *)

let tests =
  [
    ("dispatch/static-template", static_dispatch);
    ("dispatch/reconfigurable", reconfigurable_dispatch);
    ("dispatch/synthesized", synthesized_dispatch);
    ("tko/synthesize", bench_synthesize);
    ("tko/template-cache-hit", bench_template_lookup);
    ("tko/segue-swap", bench_segue);
    ("prim/internet-cksum-1KiB", bench_cksum);
    ("prim/crc32-1KiB", bench_crc);
    ("prim/msg-push-pop", bench_msg_push_pop);
    ("prim/msg-fragment-1KiB", bench_msg_fragment);
    ("prim/heap-256", bench_heap);
    ("prim/rng-draw", bench_rng);
  ]

let run_benchmarks () =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.map
    (fun (name, f) ->
      let test = Test.make ~name (Staged.stage f) in
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      let ns =
        Hashtbl.fold
          (fun _ v acc ->
            match Analyze.OLS.estimates v with Some (x :: _) -> x | _ -> acc)
          analyzed nan
      in
      (name, ns))
    tests

let fig45_and_micro () =
  Util.heading "Figures 4-5 + micro — TKO binding styles and mechanism costs";
  let results = run_benchmarks () in
  Util.row "%-32s %14s@." "operation" "ns/op";
  Util.rule 48;
  List.iter (fun (name, ns) -> Util.row "%-32s %14.1f@." name ns) results;
  Util.rule 48;
  let find n = try List.assoc n results with Not_found -> nan in
  let st = find "dispatch/static-template" in
  let re = find "dispatch/reconfigurable" in
  let dy = find "dispatch/synthesized" in
  (* Static and one-indirection dispatch are within noise of each other on
     a modern OCaml compiler; the robust ordering claim is that the fully
     dynamic (table-lookup) binding costs the most. *)
  Util.shape_check "synthesized dispatch costs the most"
    (dy >= st *. 0.95 && dy >= re *. 0.95);
  Util.shape_check "segue is cheap relative to full synthesis"
    (find "tko/segue-swap" < 20.0 *. find "tko/synthesize" +. 1e6)
