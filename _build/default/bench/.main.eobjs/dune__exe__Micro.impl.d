bench/micro.ml: Adaptive_buf Adaptive_core Adaptive_mech Adaptive_sim Analyze Bechamel Benchmark Char Checksum Hashtbl Heap Instance List Measure Msg Rng Scs Staged String Test Time Tko Toolkit Util
