bench/util.ml: Adaptive Adaptive_core Adaptive_net Adaptive_sim Format Link List Network Printf Stats String Time Topology Unites
