bench/main.mli:
