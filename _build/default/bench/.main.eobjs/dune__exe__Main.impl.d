bench/main.ml: Ablations Array Experiments Figures Format List Micro Printf Sys Tables
