bench/ablations.ml: Acd Adaptive Adaptive_core Adaptive_mech Adaptive_net Adaptive_sim Engine Float Host Link List Mantts Option Params Profiles Protograph Qos Scs Session Time Unites Util
