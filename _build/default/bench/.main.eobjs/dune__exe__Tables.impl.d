bench/tables.ml: Acd Adaptive_core Adaptive_workloads List Qos Tsc Util Workloads
