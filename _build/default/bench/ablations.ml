(* Ablations over individual mechanism choices — the controlled
   "replace one mechanism, measure the consequence" experiments §2.2(D)
   says most transport systems cannot run.  Each sweep holds everything
   fixed except one repository alternative. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

(* ------------------------------------------------------- a1: detection *)

(* Error-detection strength: none lets damaged bytes through, the Internet
   checksum converts corruption to recoverable loss cheaply, CRC-32 does
   the same at a higher per-byte CPU price. *)
let a1_detection () =
  Util.heading "A1 — error-detection ablation (none / checksum / CRC-32)";
  let run detection =
    let hops =
      [
        Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64
          ~ber:4e-6 ~mtu:1500 ();
      ]
    in
    let p =
      Util.make_pair
        ~host_cpu:(fun e ->
          Host.create ~per_packet:(Time.us 50) ~per_byte_copy:(Time.ns 25) e)
        hops
    in
    let scs =
      {
        Scs.default with
        Scs.transmission = Params.Sliding_window { window = 16 };
        detection;
        recovery = Params.Selective_repeat;
        reporting = Params.Selective_ack { delay = Time.ms 1 };
        segment_bytes = 1400;
        recv_buffer_segments = 32;
        initial_rto = Time.ms 50;
      }
    in
    let disp = Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src) in
    let s = Session.connect disp ~peers:[ p.Util.dst ] ~scs () in
    Session.send s ~bytes:2_000_000 ();
    Adaptive.run p.Util.stack ~until:(Time.sec 60.0);
    Session.close ~graceful:false s;
    ( Util.mbps (Util.goodput_bps p.Util.stack),
      Util.total p.Util.stack Unites.Corrupt_delivered,
      Util.total p.Util.stack Unites.Corrupt_detected,
      Util.total p.Util.stack Unites.Host_cpu )
  in
  Util.row "%-10s %12s %16s %16s %12s@." "detection" "Mb/s" "damage delivered"
    "corrupt caught" "cpu (s)";
  Util.rule 72;
  let g_none, dmg_none, _, cpu_none = run Params.No_detection in
  Util.row "%-10s %12.2f %16.0f %16s %12.3f@." "none" g_none dmg_none "-" cpu_none;
  let g_ck, dmg_ck, caught_ck, cpu_ck = run Params.Internet_checksum in
  Util.row "%-10s %12.2f %16.0f %16.0f %12.3f@." "cksum" g_ck dmg_ck caught_ck cpu_ck;
  let g_crc, dmg_crc, caught_crc, cpu_crc = run Params.Crc32 in
  Util.row "%-10s %12.2f %16.0f %16.0f %12.3f@." "crc32" g_crc dmg_crc caught_crc cpu_crc;
  Util.rule 72;
  Util.shape_check "without detection, damage reaches the application" (dmg_none > 0.0);
  Util.shape_check "any checksum keeps the application data clean"
    (dmg_ck = 0.0 && dmg_crc = 0.0);
  Util.shape_check "CRC costs more CPU than the Internet checksum" (cpu_crc > cpu_ck);
  Util.shape_check "detection costs little goodput here" (g_ck > 0.85 *. g_none)

(* ------------------------------------------------------ a2: FEC group *)

(* Parity group size: small groups spend more bandwidth on parity but
   survive higher loss; large groups are cheap but fragile. *)
let a2_fec_group () =
  Util.heading "A2 — FEC group-size ablation at 2% segment loss";
  let run group =
    let hops =
      [
        Link.create ~bandwidth_bps:10e6 ~propagation:(Time.ms 120) ~queue_pkts:128
          ~ber:2.5e-6 ~mtu:1500 ();
      ]
    in
    let p = Util.make_pair hops in
    let scs =
      {
        Scs.default with
        Scs.connection = Params.Two_way;
        transmission = Params.Rate_based { rate_bps = 4e6; burst = 8 };
        reporting = Params.No_report;
        recovery = Params.Forward_error_correction { group };
        ordering = Params.Unordered;
        segment_bytes = 1000;
      }
    in
    let disp = Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src) in
    let s = Session.connect disp ~peers:[ p.Util.dst ] ~scs () in
    let engine = p.Util.stack.Adaptive.engine in
    for i = 0 to 1999 do
      ignore
        (Engine.schedule engine
           ~at:(Time.add (Time.ms 20) (i * Time.ms 2))
           (fun () ->
             if Session.state s = Session.Established then Session.send s ~bytes:1000 ()))
    done;
    Adaptive.run p.Util.stack ~until:(Time.sec 30.0);
    Session.close ~graceful:false s;
    let sent = Util.total p.Util.stack Unites.Segments_sent in
    let parity = Util.total p.Util.stack Unites.Fec_parity_sent in
    let delivered = Util.total p.Util.stack Unites.Segments_delivered in
    let recovered = Util.total p.Util.stack Unites.Fec_recovered in
    (100.0 *. delivered /. sent, recovered, 100.0 *. parity /. sent)
  in
  Util.row "%-8s %12s %12s %14s@." "group" "delivered%%" "recovered" "overhead%%";
  Util.rule 52;
  let results =
    List.map
      (fun group ->
        let d, r, o = run group in
        Util.row "%-8d %11.2f%% %12.0f %13.1f%%@." group d r o;
        (group, d, o))
      [ 2; 4; 8; 16; 32 ]
  in
  Util.rule 52;
  let _, d2, o2 = List.hd results in
  let _, d32, o32 = List.nth results 4 in
  Util.shape_check "small groups recover more of the stream" (d2 > d32);
  Util.shape_check "small groups pay proportionally more parity overhead" (o2 > 3.0 *. o32)

(* ----------------------------------------------------- a3: ack delay *)

(* Delayed acknowledgments trade ack-processing load for sender stalls on
   small windows. *)
let a3_ack_delay () =
  Util.heading "A3 — delayed-acknowledgment ablation (go-back-n, window 8)";
  let run delay =
    let p = Util.make_pair (Profiles.lan_path ()) in
    let scs =
      {
        Scs.default with
        Scs.transmission = Params.Sliding_window { window = 8 };
        reporting = Params.Cumulative_ack { delay };
        recovery = Params.Go_back_n;
        segment_bytes = 1400;
        recv_buffer_segments = 16;
      }
    in
    let disp = Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src) in
    let s = Session.connect disp ~peers:[ p.Util.dst ] ~scs () in
    Session.send s ~bytes:2_000_000 ();
    Adaptive.run p.Util.stack ~until:(Time.sec 60.0);
    Session.close ~graceful:false s;
    (Util.mbps (Util.goodput_bps p.Util.stack), Util.total p.Util.stack Unites.Acks_sent)
  in
  Util.row "%-12s %12s %12s@." "ack delay" "Mb/s" "acks sent";
  Util.rule 40;
  let results =
    List.map
      (fun ms ->
        let g, acks = run (Time.ms ms) in
        Util.row "%-12s %12.2f %12.0f@." (Time.to_string (Time.ms ms)) g acks;
        (ms, g, acks))
      [ 0; 2; 10; 50 ]
  in
  Util.rule 40;
  let _, g0, acks0 = List.hd results in
  let _, g50, acks50 = List.nth results 3 in
  Util.shape_check "long delays starve the small window" (g50 < 0.7 *. g0);
  Util.shape_check "delaying acks sends fewer of them" (acks50 < acks0)

(* ------------------------------------------------------ a4: layering *)

(* §2.1(A) blames part of the throughput-preservation problem on "poorly
   layered architectures" (citing "Is Layering Harmful?").  Derive two
   host cost models from protocol graphs — the conventional copy-per-layer
   stack and ADAPTIVE's flat zero-copy session composition — and measure
   what each delivers from the same channels. *)
let a4_layering () =
  Util.heading "A4 — layering ablation (conventional 4-layer vs flat session)";
  let stack_of graph_fn =
    Option.get (Protograph.path (graph_fn ()) ~from_:"application" ~to_:"driver")
  in
  let conventional = stack_of Protograph.conventional_stack in
  let flat = stack_of Protograph.adaptive_stack in
  let describe name stack =
    let o = Protograph.stack_overhead stack in
    Util.row "%-14s %d layers, %d copies/PDU, %s processing, %d header bytes@." name
      (List.length stack) o.Protograph.copy_total
      (Time.to_string o.Protograph.processing)
      (o.Protograph.header_total + o.Protograph.trailer_total)
  in
  describe "conventional" conventional;
  describe "flat session" flat;
  let run stack bw =
    let p =
      Util.make_pair
        ~host_cpu:(fun e -> Protograph.host_model e stack)
        [ Link.create ~bandwidth_bps:bw ~propagation:(Time.us 50) ~queue_pkts:512 ~mtu:9180 () ]
    in
    let acd = Acd.make ~participants:[ p.Util.dst ] ~qos:Qos.default () in
    let s = Mantts.open_session p.Util.stack.Adaptive.mantts ~src:p.Util.src ~acd () in
    Session.send s ~bytes:4_000_000 ();
    Adaptive.run p.Util.stack ~until:(Time.sec 60.0);
    Mantts.close_session p.Util.stack.Adaptive.mantts s;
    Util.mbps (Util.goodput_bps p.Util.stack)
  in
  Util.row "@.%-12s %16s %16s %8s@." "channel" "conventional" "flat session" "gain";
  Util.rule 58;
  let gains =
    List.map
      (fun bw ->
        let g_conv = run conventional bw in
        let g_flat = run flat bw in
        Util.row "%8.0f Mb/s %13.1f %16.1f %7.2fx@." (Util.mbps bw) g_conv g_flat
          (g_flat /. Float.max 0.01 g_conv);
        (bw, g_conv, g_flat))
      [ 10e6; 100e6; 622e6 ]
  in
  Util.rule 58;
  let _, g_conv_fast, g_flat_fast = List.nth gains 2 in
  let _, g_conv_slow, g_flat_slow = List.hd gains in
  Util.shape_check "equivalent on the slow channel"
    (Float.abs (g_conv_slow -. g_flat_slow) < 0.2 *. g_flat_slow);
  Util.shape_check "flat composition wins clearly on the fast channel"
    (g_flat_fast > 1.5 *. g_conv_fast)
