(* Shared helpers for the experiment harness: scenario builders, traffic
   drivers and table formatting. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_core

let fprintf = Format.printf

(* ------------------------------------------------------------ tables *)

let rule width = fprintf "%s@." (String.make width '-')

let heading title =
  fprintf "@.=== %s@." title;
  rule 72

let row fmt = Format.printf fmt

let shape_check label ok =
  fprintf "shape: %-58s %s@." label (if ok then "OK" else "MISMATCH")

(* ------------------------------------------------------- scenarios *)

type pair = {
  stack : Adaptive.stack;
  src : Network.addr;
  dst : Network.addr;
  hops : Link.t list;
}

let make_pair ?(seed = 4242) ?host_cpu hops =
  let stack = Adaptive.create_stack ~seed () in
  let mk () =
    match host_cpu with
    | Some f -> Some (f stack.Adaptive.engine)
    | None -> None
  in
  let src = Adaptive.add_host ?host_cpu:(mk ()) stack "src" in
  let dst = Adaptive.add_host ?host_cpu:(mk ()) stack "dst" in
  Adaptive.connect_hosts stack src dst hops;
  { stack; src; dst; hops }

(* A star topology: one sender, [n] receivers behind a shared access
   link. *)
let make_star ?(seed = 4242) ~receivers () =
  let stack = Adaptive.create_stack ~seed () in
  let src = Adaptive.add_host stack "src" in
  let access =
    Link.create ~name:"access" ~bandwidth_bps:10e6 ~propagation:(Time.us 5)
      ~queue_pkts:256 ~mtu:1500 ()
  in
  let dsts =
    List.init receivers (fun i ->
        let r = Adaptive.add_host stack (Printf.sprintf "r%d" i) in
        let tail =
          Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:256
            ~mtu:1500 ()
        in
        Topology.set_route stack.Adaptive.topology ~src ~dst:r [ access; tail ];
        Topology.set_route stack.Adaptive.topology ~src:r ~dst:src
          [
            Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:256
              ~mtu:1500 ();
          ];
        r)
  in
  (stack, src, dsts, access)

(* --------------------------------------------------------- metrics *)

let goodput_bps stack =
  let u = stack.Adaptive.unites in
  let delivered = Unites.aggregate_total u Unites.Bytes_delivered in
  match Unites.aggregate u Unites.Delivery_latency with
  | Some s when s.Stats.max > 0.0 -> delivered *. 8.0 /. s.Stats.max
  | Some _ | None -> 0.0

let delivered_bytes stack =
  Unites.aggregate_total stack.Adaptive.unites Unites.Bytes_delivered

let total stack m = Unites.aggregate_total stack.Adaptive.unites m

let latency_summary stack =
  Unites.aggregate stack.Adaptive.unites Unites.Delivery_latency

let mbps v = v /. 1e6
