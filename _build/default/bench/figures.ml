(* Reproductions of the behaviours behind the paper's figures: the
   architecture pipeline (Fig 1), the MANTTS transformation model (Fig 2),
   connection configuration alternatives (Fig 3), and the UNITES
   measurement subsystem (Fig 6).  The TKO binding/dispatch trade-offs of
   Figs 4–5 are measured by the Bechamel micro-benchmarks in Micro. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_workloads

(* --------------------------------------------------------------- fig 1 *)

let fig1 () =
  Util.heading "Figure 1 — one session through MANTTS -> TKO -> UNITES";
  let p = Util.make_pair (Profiles.campus_path ()) in
  let acd =
    Acd.make ~participants:[ p.Util.dst ] ~qos:(Workloads.qos Workloads.File_transfer) ()
  in
  (* MANTTS: three-stage transformation. *)
  let tsc = Mantts.classify acd in
  Util.row "MANTTS stage I   : QoS -> %s@." (Tsc.name tsc);
  let scs = Mantts.derive_scs p.Util.stack.Adaptive.mantts ~src:p.Util.src acd tsc in
  Util.row "MANTTS stage II  : TSC + network state -> %a@." Scs.pp scs;
  let hits0 = Tko.Templates.cache_hits () and misses0 = Tko.Templates.cache_misses () in
  let session =
    Mantts.open_session p.Util.stack.Adaptive.mantts ~src:p.Util.src ~acd ~name:"fig1" ()
  in
  Util.row "MANTTS stage III : TKO synthesis (template cache: +%d hit, +%d miss)@."
    (Tko.Templates.cache_hits () - hits0)
    (Tko.Templates.cache_misses () - misses0);
  Session.send session ~bytes:2_000_000 ();
  Adaptive.run p.Util.stack ~until:(Time.sec 20.0);
  Mantts.close_session p.Util.stack.Adaptive.mantts session;
  Adaptive.run p.Util.stack ~until:(Time.sec 30.0);
  let u = p.Util.stack.Adaptive.unites in
  let id = Session.id session in
  Util.row "TKO              : %d segue(s); %d peer(s); state machine closed cleanly: %b@."
    (Session.context session).Tko.segue_count
    (List.length (Session.peers session))
    (Session.state session = Session.Closed);
  Util.row "UNITES           : %d whitebox samples over %d metrics@."
    (Unites.whitebox_samples u)
    (List.length
       (List.filter (fun m -> Unites.stats u ~session:id m <> None) Unites.all_metrics));
  Util.shape_check "data flowed through all three subsystems"
    (Util.delivered_bytes p.Util.stack = 2_000_000.0
    && Unites.whitebox_samples u > 0)

(* --------------------------------------------------------------- fig 2 *)

let fig2 () =
  Util.heading "Figure 2 — transformation matrix: (service class x network) -> SCS";
  let networks =
    [
      ("lan", Profiles.lan_path);
      ("internet", Profiles.internet_path);
      ("b-isdn", Profiles.bisdn_path);
      ("satellite", Profiles.satellite_path);
    ]
  in
  let representatives =
    [
      Workloads.Voice_conversation;
      Workloads.Video_compressed;
      Workloads.Manufacturing_control;
      Workloads.File_transfer;
    ]
  in
  Util.row "%-26s %-10s %-9s %-12s %-10s %-9s %-12s@." "class (representative)" "network"
    "conn" "transmission" "recovery" "reporting" "delivery";
  Util.rule 100;
  let fec_on_satellite = ref false and window_on_lfn = ref false in
  List.iter
    (fun app ->
      List.iter
        (fun (net_name, path) ->
          let p = Util.make_pair (path ()) in
          let acd = Acd.make ~participants:[ p.Util.dst ] ~qos:(Workloads.qos app) () in
          let tsc = Mantts.classify acd in
          let scs = Mantts.derive_scs p.Util.stack.Adaptive.mantts ~src:p.Util.src acd tsc in
          (match (app, net_name, scs.Scs.recovery) with
          | Workloads.Video_compressed, "satellite", Params.Forward_error_correction _ ->
            fec_on_satellite := true
          | Workloads.File_transfer, "b-isdn", _ -> (
            match scs.Scs.transmission with
            | Params.Sliding_window { window } when window > 64 -> window_on_lfn := true
            | _ -> ())
          | _ -> ());
          Util.row "%-26s %-10s %-9s %-12s %-9s %-10s %-12s@."
            (Workloads.name app) net_name
            (Params.connection_to_string scs.Scs.connection)
            (match scs.Scs.transmission with
            | Params.Sliding_window { window } -> Printf.sprintf "win:%d" window
            | Params.Rate_based { rate_bps; _ } ->
              Printf.sprintf "rate:%.1fM" (rate_bps /. 1e6)
            | Params.Stop_and_wait -> "stopwait")
            (Params.recovery_to_string scs.Scs.recovery)
            (Params.reporting_to_string scs.Scs.reporting
            |> fun s -> if String.length s > 10 then String.sub s 0 10 else s)
            (match scs.Scs.delivery with
            | Params.Playout { target } -> Printf.sprintf "play:%s" (Time.to_string target)
            | Params.As_available -> "asap"))
        networks)
    representatives;
  Util.rule 100;
  Util.shape_check "media over satellite selects forward error correction" !fec_on_satellite;
  Util.shape_check "bulk over the LFN selects a scaled window" !window_on_lfn

(* --------------------------------------------------------------- fig 3 *)

let fig3 () =
  Util.heading
    "Figure 3 — connection configuration: implicit vs explicit negotiation";
  let networks =
    [
      ("lan", Profiles.lan_path);
      ("internet", Profiles.internet_path);
      ("satellite", Profiles.satellite_path);
    ]
  in
  let time_to_first conn path =
    let p = Util.make_pair (path ()) in
    let scs =
      { Scs.default with Scs.connection = conn; segment_bytes = 500; initial_rto = Time.ms 900 }
    in
    let first = ref None in
    let disp =
      Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src)
    in
    Mantts.set_app_handler
      (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.dst)
      (fun _ d -> if !first = None then first := Some d.Session.delivered_at);
    let s = Session.connect disp ~peers:[ p.Util.dst ] ~scs () in
    Session.send s ~bytes:400 ();
    Adaptive.run p.Util.stack ~until:(Time.sec 5.0);
    Session.close ~graceful:false s;
    match !first with Some t -> t | None -> Time.sec 99.0
  in
  Util.row "%-10s %14s %14s %14s %20s@." "network" "implicit" "2-way" "3-way"
    "explicit penalty";
  Util.rule 80;
  let saves = ref true in
  List.iter
    (fun (name, path) ->
      let t_imp = time_to_first Params.Implicit path in
      let t_2w = time_to_first Params.Two_way path in
      let t_3w = time_to_first Params.Three_way path in
      if t_2w <= t_imp then saves := false;
      Util.row "%-10s %14s %14s %14s %17s@." name (Time.to_string t_imp)
        (Time.to_string t_2w) (Time.to_string t_3w)
        (Time.to_string (Time.diff t_2w t_imp)))
    networks;
  Util.rule 80;
  Util.shape_check "implicit setup saves about one round trip everywhere" !saves

(* --------------------------------------------------------------- fig 6 *)

let fig6 () =
  Util.heading "Figure 6 — UNITES: blackbox vs whitebox metric collection";
  let run whitebox =
    let stack = Adaptive.create_stack ~seed:4242 ~whitebox () in
    let a = Adaptive.add_host stack "a" in
    let b = Adaptive.add_host stack "b" in
    (* A fast LAN so the 1992-class host CPU is the bottleneck and the
       per-probe instrumentation cost is visible in the transfer time. *)
    Adaptive.connect_hosts stack a b [ Profiles.fddi () ];
    (* Completion measured at the application, independently of whitebox
       collection. *)
    let finished = ref Time.zero in
    Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts b) (fun _ d ->
        finished := Time.max !finished d.Session.delivered_at);
    let acd = Acd.make ~participants:[ b ] ~qos:Qos.default () in
    let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd ~name:"fig6" () in
    Session.send s ~bytes:1_000_000 ();
    let wall0 = Sys.time () in
    Adaptive.run stack ~until:(Time.sec 20.0);
    let wall = Sys.time () -. wall0 in
    Mantts.close_session stack.Adaptive.mantts s;
    Adaptive.run stack ~until:(Time.sec 30.0);
    (stack, Session.id s, wall, Time.to_sec !finished)
  in
  let on, id, wall_on, finish_on = run true in
  let off, _, wall_off, finish_off = run false in
  Util.row "whitebox on : %5d samples recorded, transfer %.4f s, %.3f s wall clock@."
    (Unites.whitebox_samples on.Adaptive.unites) finish_on wall_on;
  Util.row "whitebox off: %5d samples recorded, transfer %.4f s, %.3f s wall clock@."
    (Unites.whitebox_samples off.Adaptive.unites) finish_off wall_off;
  Util.row "instrumentation cost: +%.2f%% transfer time@."
    (100.0 *. (finish_on -. finish_off) /. finish_off);
  (match Unites.stats on.Adaptive.unites ~session:id Unites.Jitter with
  | Some s ->
    Util.row "whitebox jitter metric: mean %.3f ms (degree of jitter, §4.3)@."
      (s.Stats.mean *. 1e3)
  | None -> ());
  Util.row "@.per-session report (instrumented run):@.";
  Format.printf "%a@." Unites.report on.Adaptive.unites;
  let bb_survives = Unites.aggregate off.Adaptive.unites Unites.Rtt <> None in
  Util.shape_check "blackbox metrics survive with instrumentation off" bb_survives;
  Util.shape_check "whitebox collection fully disabled when off"
    (Unites.whitebox_samples off.Adaptive.unites = 0);
  Util.shape_check "instrumentation overhead is real but small"
    (finish_on > finish_off && finish_on < 1.2 *. finish_off)
