(* Cross-subsystem integration tests: the full MANTTS -> TKO -> UNITES
   pipeline over realistic topologies, and the paper's headline behaviours
   exercised end to end. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_baselines
open Adaptive_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every Table 1 application, driven through the whole stack on a LAN:
   the configuration MANTTS picks must actually carry the traffic. *)
let test_every_app_runs_on_lan () =
  List.iter
    (fun app ->
      let stack = Adaptive.create_stack ~seed:23 () in
      let a = Adaptive.add_host stack "src" in
      let receivers =
        List.init (Workloads.multicast_receivers app) (fun i ->
            let r = Adaptive.add_host stack (Printf.sprintf "recv%d" i) in
            Adaptive.connect_hosts stack a r (Profiles.lan_path ());
            r)
      in
      List.iter
        (fun r -> Workloads.install_server app (Mantts.entity stack.Adaptive.mantts r))
        receivers;
      let acd = Acd.make ~participants:receivers ~qos:(Workloads.qos app) () in
      let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
      let driver =
        Workloads.drive stack.Adaptive.engine stack.Adaptive.rng ~session:s app
          ~stop_at:(Time.sec 3.0)
      in
      (* File Transfer submits 10 MB up front: leave time to drain it. *)
      Adaptive.run stack ~until:(Time.sec 15.0);
      let delivered = Unites.aggregate_total stack.Adaptive.unites Unites.Bytes_delivered in
      check_bool (Workloads.name app ^ " generated") true (Workloads.bytes_sent driver > 0);
      check_bool
        (Workloads.name app ^ " delivered data")
        true (delivered > 0.0);
      (* Loss-intolerant classes must lose nothing on a clean LAN. *)
      if (Workloads.qos app).Qos.loss_tolerance <= 0.0 then
        check_bool
          (Workloads.name app ^ " delivered everything")
          true
          (delivered
           >= float_of_int
                (Workloads.bytes_sent driver * Workloads.multicast_receivers app));
      Mantts.close_session stack.Adaptive.mantts s;
      Adaptive.run stack ~until:(Time.sec 30.0))
    Workloads.all

(* §2.2(B): the overweight configuration.  TP4-style full reliability for
   loss-tolerant voice adds retransmission-induced latency a lightweight
   ADAPTIVE configuration avoids. *)
let test_overweight_voice_latency () =
  let run_voice use_tp4 =
    let stack = Adaptive.create_stack ~seed:41 () in
    let a = Adaptive.add_host stack "caller" in
    let b = Adaptive.add_host stack "callee" in
    let hops = Profiles.internet_path () in
    Adaptive.connect_hosts stack a b hops;
    (* Heavy cross traffic: ~13% congestive loss on the first WAN hop, so
       retransmission-based reliability pays real head-of-line latency. *)
    Congestion.constant (List.nth hops 1) 0.90;
    let qos = Workloads.qos Workloads.Voice_conversation in
    let latencies = ref [] in
    let record _ (d : Session.delivery) =
      latencies := Time.diff d.Session.delivered_at d.Session.app_stamp :: !latencies
    in
    let s =
      if use_tp4 then begin
        Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts b) record;
        Baselines.connect
          (Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a))
          ~peers:[ b ] Baselines.Tp4_like
      end
      else begin
        Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts b) record;
        let acd = Acd.make ~participants:[ b ] ~qos () in
        Mantts.open_session stack.Adaptive.mantts ~src:a ~acd ()
      end
    in
    ignore
      (Workloads.drive stack.Adaptive.engine stack.Adaptive.rng ~session:s
         Workloads.Voice_conversation ~stop_at:(Time.sec 5.0));
    Adaptive.run stack ~until:(Time.sec 8.0);
    let n = List.length !latencies in
    let sorted = List.sort compare !latencies in
    let p95 = if n = 0 then Time.zero else List.nth sorted (min (n - 1) (n * 95 / 100)) in
    (n, p95)
  in
  let n_tp4, p95_tp4 = run_voice true in
  let n_adaptive, p95_adaptive = run_voice false in
  check_bool "both delivered frames" true (n_tp4 > 50 && n_adaptive > 50);
  check_bool "lightweight config has lower tail latency" true (p95_adaptive < p95_tp4)

(* §2.2(A): the throughput preservation problem.  Host overhead, not the
   network, caps delivered throughput once channels get fast. *)
let test_throughput_preservation_shape () =
  let goodput ~bw ~host =
    let stack = Adaptive.create_stack ~seed:51 () in
    let a = Adaptive.add_host ~host_cpu:(host stack.Adaptive.engine) stack "a" in
    let b = Adaptive.add_host ~host_cpu:(host stack.Adaptive.engine) stack "b" in
    Adaptive.connect_hosts stack a b
      [ Link.create ~bandwidth_bps:bw ~propagation:(Time.us 50) ~queue_pkts:512 ~mtu:9180 () ];
    let acd = Acd.make ~participants:[ b ] ~qos:Qos.default () in
    let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
    Session.send s ~bytes:5_000_000 ();
    Adaptive.run stack ~until:(Time.sec 30.0);
    let delivered = Unites.aggregate_total stack.Adaptive.unites Unites.Bytes_delivered in
    let finish =
      match Unites.aggregate stack.Adaptive.unites Unites.Delivery_latency with
      | Some s -> s.Stats.max
      | None -> nan
    in
    delivered *. 8.0 /. finish
  in
  let fast_host e = Host.zero_cost e in
  let slow_host e = Host.create ~per_packet:(Time.us 150) ~per_byte_copy:(Time.ns 50) e in
  let g_ideal_fast = goodput ~bw:622e6 ~host:fast_host in
  let g_ideal_slow = goodput ~bw:10e6 ~host:fast_host in
  let g_host_fast = goodput ~bw:622e6 ~host:slow_host in
  let g_host_slow = goodput ~bw:10e6 ~host:slow_host in
  (* Free hosts: delivered throughput scales with the channel. *)
  check_bool "ideal hosts scale with bandwidth" true (g_ideal_fast > 10.0 *. g_ideal_slow);
  (* 1992 hosts: the 10 Mb/s channel is still well used... *)
  check_bool "slow channel well used" true (g_host_slow > 0.5 *. 10e6);
  (* ...but the 622 Mb/s channel delivers a small fraction of its capacity
     — the §2.2(A) one-to-two-orders-of-magnitude gap. *)
  check_bool "fast channel mostly wasted by host overhead" true
    (g_host_fast < 0.25 *. 622e6);
  check_bool "host cap binds both directions of the sweep" true
    (g_host_fast < g_ideal_fast)

(* Reliable multicast vs N-unicast: the shared-hop saving. *)
let test_multicast_vs_n_unicast_cost () =
  let build () =
    let stack = Adaptive.create_stack ~seed:61 () in
    let a = Adaptive.add_host stack "src" in
    let shared =
      Link.create ~name:"shared" ~bandwidth_bps:10e6 ~propagation:(Time.us 5)
        ~queue_pkts:128 ~mtu:1500 ()
    in
    let receivers =
      List.init 4 (fun i ->
          let r = Adaptive.add_host stack (Printf.sprintf "r%d" i) in
          let tail =
            Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:128
              ~mtu:1500 ()
          in
          Topology.set_route stack.Adaptive.topology ~src:a ~dst:r [ shared; tail ];
          Topology.set_route stack.Adaptive.topology ~src:r ~dst:a
            [ Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:128 ~mtu:1500 () ];
          r)
    in
    (stack, a, receivers, shared)
  in
  (* ADAPTIVE multicast session. *)
  let stack, a, receivers, shared = build () in
  let acd =
    Acd.make ~participants:receivers ~qos:(Workloads.qos Workloads.Teleconferencing) ()
  in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  Adaptive.run stack ~until:(Time.ms 200);
  Session.send s ~bytes:100_000 ();
  Adaptive.run stack ~until:(Time.sec 10.0);
  let mcast_shared_bytes = (Link.stats shared).Link.bytes_carried in
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 20.0);
  (* TCP-like: four separate unicast connections. *)
  let stack2, a2, receivers2, shared2 = build () in
  let sessions =
    List.map
      (fun r ->
        Baselines.connect
          (Mantts.dispatcher (Mantts.entity stack2.Adaptive.mantts a2))
          ~peers:[ r ] Baselines.Tcp_like)
      receivers2
  in
  Adaptive.run stack2 ~until:(Time.ms 200);
  List.iter (fun s -> Session.send s ~bytes:100_000 ()) sessions;
  Adaptive.run stack2 ~until:(Time.sec 10.0);
  let unicast_shared_bytes = (Link.stats shared2).Link.bytes_carried in
  check_bool "both carried data" true
    (mcast_shared_bytes > 0 && unicast_shared_bytes > 0);
  check_bool "multicast pays the shared hop ~once vs ~4x" true
    (unicast_shared_bytes > 3 * mcast_shared_bytes)

(* Whitebox instrumentation can be turned off; blackbox metrics survive. *)
let test_whitebox_toggle_end_to_end () =
  let run whitebox =
    let stack = Adaptive.create_stack ~seed:71 ~whitebox () in
    let a = Adaptive.add_host stack "a" in
    let b = Adaptive.add_host stack "b" in
    Adaptive.connect_hosts stack a b (Profiles.lan_path ());
    let acd = Acd.make ~participants:[ b ] ~qos:Qos.default () in
    let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
    Session.send s ~bytes:50_000 ();
    Adaptive.run stack ~until:(Time.sec 10.0);
    Mantts.close_session stack.Adaptive.mantts s;
    Adaptive.run stack ~until:(Time.sec 20.0);
    stack
  in
  let on = run true in
  let off = run false in
  check_bool "whitebox recorded when on" true (Unites.whitebox_samples on.Adaptive.unites > 0);
  check_int "nothing recorded when off" 0 (Unites.whitebox_samples off.Adaptive.unites);
  check_bool "blackbox rtt still measured when off" true
    (Unites.aggregate off.Adaptive.unites Unites.Rtt <> None)

(* Template cache: a TCP-compatible request takes the static template. *)
let test_template_cache_integration () =
  let hits0 = Tko.Templates.cache_hits () in
  match Tko.Templates.find Tko.Templates.transaction with
  | None -> Alcotest.fail "template missing"
  | Some (_, scs) ->
    let stack = Adaptive.create_stack ~seed:81 () in
    let a = Adaptive.add_host stack "a" in
    let b = Adaptive.add_host stack "b" in
    Adaptive.connect_hosts stack a b (Profiles.lan_path ());
    let disp = Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a) in
    (match Tko.Templates.lookup_scs scs with
    | Some (binding, _) ->
      let s = Session.connect ~binding disp ~peers:[ b ] ~scs () in
      Session.send s ~bytes:1000 ();
      Adaptive.run stack ~until:(Time.sec 1.0);
      check_bool "cache hit counted" true (Tko.Templates.cache_hits () > hits0);
      Session.close ~graceful:false s
    | None -> Alcotest.fail "expected template hit")

(* Priority scheduling: an expedited control session sharing a CPU-bound
   host with a bulk transfer keeps its latency; without priority it queues
   behind the bulk backlog. *)
let test_priority_scheduling () =
  let run control_priority =
    let stack = Adaptive.create_stack ~seed:91 () in
    let slow e = Host.create ~per_packet:(Time.us 300) ~per_byte_copy:(Time.ns 25) e in
    let a = Adaptive.add_host ~host_cpu:(slow stack.Adaptive.engine) stack "a" in
    let b = Adaptive.add_host ~host_cpu:(slow stack.Adaptive.engine) stack "b" in
    Adaptive.connect_hosts stack a b (Profiles.lan_path () |> fun _ ->
      [ Link.create ~bandwidth_bps:100e6 ~propagation:(Time.us 50) ~queue_pkts:256 ~mtu:1500 () ]);
    let disp = Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a) in
    (* Bulk session saturating the CPU. *)
    let bulk_scs =
      {
        Scs.default with
        Scs.transmission = Params.Sliding_window { window = 64 };
        recv_buffer_segments = 128;
        segment_bytes = 1400;
        priority = 4;
      }
    in
    let bulk = Session.connect disp ~peers:[ b ] ~scs:bulk_scs () in
    Session.send bulk ~bytes:20_000_000 ();
    (* Small control messages every 5 ms. *)
    let control_scs =
      {
        Scs.default with
        Scs.transmission = Params.Sliding_window { window = 8 };
        segment_bytes = 1400;
        priority = control_priority;
      }
    in
    let latencies = ref [] in
    let control =
      Session.connect disp ~peers:[ b ]
        ~on_deliver:(fun _ _ -> ())
        ~scs:control_scs ()
    in
    (* Watch control deliveries via UNITES per-session latency. *)
    let rec tick i =
      if i < 400 then
        ignore
          (Engine.schedule stack.Adaptive.engine
             ~at:(Time.add (Time.ms 100) (i * Time.ms 5))
             (fun () ->
               if Session.state control = Session.Established then
                 Session.send control ~bytes:200 ();
               tick (i + 1)))
    in
    tick 0;
    Adaptive.run stack ~until:(Time.sec 4.0);
    (match Unites.stats stack.Adaptive.unites ~session:(Session.id control)
             Unites.Delivery_latency with
    | Some s -> latencies := [ s.Stats.p95 ]
    | None -> ());
    Session.close ~graceful:false bulk;
    Session.close ~graceful:false control;
    match !latencies with [ p95 ] -> p95 | _ -> nan
  in
  let expedited = run 1 in
  let besteffort = run 4 in
  check_bool "both measured" true
    ((not (Float.is_nan expedited)) && not (Float.is_nan besteffort));
  check_bool "expedited control rides past the bulk backlog" true
    (expedited < 0.6 *. besteffort)

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "every Table 1 app end to end" `Slow test_every_app_runs_on_lan;
        Alcotest.test_case "overweight voice (TP4) vs ADAPTIVE" `Slow
          test_overweight_voice_latency;
        Alcotest.test_case "throughput preservation shape" `Slow
          test_throughput_preservation_shape;
        Alcotest.test_case "multicast vs n-unicast shared-hop cost" `Quick
          test_multicast_vs_n_unicast_cost;
        Alcotest.test_case "whitebox toggle" `Quick test_whitebox_toggle_end_to_end;
        Alcotest.test_case "template cache" `Quick test_template_cache_integration;
        Alcotest.test_case "priority scheduling" `Quick test_priority_scheduling;
      ] );
  ]
