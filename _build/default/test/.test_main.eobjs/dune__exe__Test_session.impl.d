test/test_session.ml: Adaptive_core Adaptive_mech Adaptive_net Adaptive_sim Alcotest Engine Fun Hashtbl Host Link List Network Option Params Pdu Printf Rng Scs Session Stats Time Tko Topology Unites
