test/test_net.ml: Adaptive_net Adaptive_sim Alcotest Congestion Engine Link List Network Option Profiles Rng Routing Time Topology
