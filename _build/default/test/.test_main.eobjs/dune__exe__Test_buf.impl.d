test/test_buf.ml: Adaptive_buf Alcotest Buffer Bytes Char Checksum List Msg Option Pool QCheck2 QCheck_alcotest String
