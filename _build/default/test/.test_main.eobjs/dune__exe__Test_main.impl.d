test/test_main.ml: Alcotest Test_buf Test_core Test_integration Test_mantts Test_mech Test_net Test_payload Test_random Test_session Test_sim Test_workloads
