test/test_random.ml: Adaptive_core Adaptive_mech Adaptive_net Adaptive_sim Engine Fun Host Link List Network Option Params Printf QCheck2 QCheck_alcotest Rng Scs Session Time Topology Unites
