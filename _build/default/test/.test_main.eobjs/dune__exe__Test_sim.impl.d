test/test_sim.ml: Adaptive_sim Alcotest Array Engine Float Heap List Option QCheck2 QCheck_alcotest Rng Stats Time Trace
