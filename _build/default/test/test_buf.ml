(* Tests for the buffer-management substrate: Msg (TKO_Message), Checksum,
   Pool. *)

open Adaptive_buf

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ Msg *)

let test_msg_create () =
  let m = Msg.create 100 in
  check_int "data" 100 (Msg.data_length m);
  check_int "headers" 0 (Msg.header_length m);
  check_int "total" 100 (Msg.total_length m);
  let m2 = Msg.of_string "hello" in
  check_int "of_string" 5 (Msg.data_length m2);
  check_str "content" "hello" (Msg.data_to_string m2)

let test_msg_push_pop () =
  let m = Msg.of_string "payload" in
  Msg.push m "tcp|";
  Msg.push m "ip|";
  Msg.push m "eth|";
  check_int "header bytes" 11 (Msg.header_length m);
  check_str "outermost first" "eth|ip|tcp|payload" (Msg.to_string m);
  Alcotest.(check (option string)) "peek" (Some "eth|") (Msg.peek_header m);
  Alcotest.(check (option string)) "pop eth" (Some "eth|") (Msg.pop m);
  Alcotest.(check (option string)) "pop ip" (Some "ip|") (Msg.pop m);
  Alcotest.(check (option string)) "pop tcp" (Some "tcp|") (Msg.pop m);
  Alcotest.(check (option string)) "pop empty" None (Msg.pop m);
  check_int "data untouched" 7 (Msg.data_length m)

let test_msg_split () =
  let m = Msg.of_string "abcdefghij" in
  Msg.push m "H";
  let front, back = Msg.split m 4 in
  check_str "front data" "abcd" (Msg.data_to_string front);
  check_str "back data" "efghij" (Msg.data_to_string back);
  check_int "headers stay with front" 1 (Msg.header_length front);
  check_int "back headerless" 0 (Msg.header_length back);
  Alcotest.check_raises "negative" (Invalid_argument "Msg.split: index out of range")
    (fun () -> ignore (Msg.split m (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Msg.split: index out of range")
    (fun () -> ignore (Msg.split m 11))

let test_msg_split_edges () =
  let m = Msg.of_string "xyz" in
  let a, b = Msg.split m 0 in
  check_int "empty front" 0 (Msg.data_length a);
  check_str "full back" "xyz" (Msg.data_to_string b);
  let c, d = Msg.split m 3 in
  check_str "full front" "xyz" (Msg.data_to_string c);
  check_int "empty back" 0 (Msg.data_length d)

let test_msg_fragment_concat () =
  let m = Msg.of_string "0123456789abcdef" in
  let frags = Msg.fragment m ~mtu:5 in
  check_int "fragment count" 4 (List.length frags);
  Alcotest.(check (list int)) "fragment sizes" [ 5; 5; 5; 1 ]
    (List.map Msg.data_length frags);
  let whole = Msg.concat frags in
  check_str "reassembled" "0123456789abcdef" (Msg.data_to_string whole);
  Alcotest.check_raises "bad mtu" (Invalid_argument "Msg.fragment: non-positive MTU")
    (fun () -> ignore (Msg.fragment m ~mtu:0))

let test_msg_copy_sharing () =
  let base = Bytes.of_string "shared" in
  let m = Msg.of_bytes base in
  let c = Msg.copy m in
  Msg.push c "X";
  check_int "copy header independent" 0 (Msg.header_length m);
  check_int "copy has header" 1 (Msg.header_length c);
  (* Data bytes are shared: mutating the base is visible through both. *)
  Bytes.set base 0 'S';
  check_str "original sees change" "Shared" (Msg.data_to_string m);
  check_str "copy sees change" "Shared" (Msg.data_to_string c)

let test_msg_copy_counters () =
  Msg.reset_copy_counters ();
  let m = Msg.of_string "0123456789" in
  let _frags = Msg.fragment m ~mtu:3 in
  let _c = Msg.copy m in
  let _halves = Msg.split m 5 in
  check_int "logical ops copy nothing" 0 (Msg.physical_copies ());
  ignore (Msg.data_to_string m);
  check_int "materialize counts" 1 (Msg.physical_copies ());
  check_int "bytes counted" 10 (Msg.copied_bytes ());
  let dst = Bytes.create 10 in
  Msg.blit_data m dst 0;
  check_int "blit counts" 2 (Msg.physical_copies ());
  Msg.reset_copy_counters ();
  check_int "reset" 0 (Msg.physical_copies ())

let test_msg_iter_data () =
  let m = Msg.of_string "abcdef" in
  let _, back = Msg.split m 2 in
  let collected = Buffer.create 8 in
  Msg.iter_data back (fun b off len -> Buffer.add_subbytes collected b off len);
  check_str "iter over segments" "cdef" (Buffer.contents collected)

let prop_fragment_roundtrip =
  QCheck2.Test.make ~name:"fragment/concat is the identity" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 200)) (int_range 1 32))
    (fun (s, mtu) ->
      let m = Msg.of_string s in
      Msg.data_to_string (Msg.concat (Msg.fragment m ~mtu)) = s)

let prop_split_partition =
  QCheck2.Test.make ~name:"split partitions the data region" ~count:300
    QCheck2.Gen.(string_size (int_range 0 100))
    (fun s ->
      let n = String.length s / 2 in
      let m = Msg.of_string s in
      let a, b = Msg.split m n in
      Msg.data_to_string a ^ Msg.data_to_string b = s)

let prop_push_pop_roundtrip =
  QCheck2.Test.make ~name:"push then pop returns headers LIFO" ~count:200
    QCheck2.Gen.(list_size (int_range 0 10) (string_size (int_range 1 8)))
    (fun headers ->
      let m = Msg.of_string "data" in
      List.iter (Msg.push m) headers;
      let popped = List.filter_map (fun _ -> Msg.pop m) headers in
      popped = List.rev headers)

(* ------------------------------------------------------------- Checksum *)

let test_internet_known_vector () =
  (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, cksum ~220d *)
  let data = String.init 8 (fun i -> Char.chr (List.nth [ 0x00; 0x01; 0xf2; 0x03; 0xf4; 0xf5; 0xf6; 0xf7 ] i)) in
  check_int "rfc1071" 0x220D (Checksum.internet data)

let test_internet_odd_length () =
  let even = Checksum.internet "ab" in
  let odd = Checksum.internet "ab\000" in
  check_int "trailing zero pad equivalent" even odd

let test_crc32_known_vector () =
  Alcotest.(check int32) "check value" 0xCBF43926l (Checksum.crc32 "123456789")

let test_adler32_known_vector () =
  Alcotest.(check int32) "wikipedia" 0x11E60398l (Checksum.adler32 "Wikipedia")

let test_checksum_detects_flip () =
  let s = "The quick brown fox jumps over the lazy dog" in
  let flipped = Bytes.of_string s in
  Bytes.set flipped 7 (Char.chr (Char.code (Bytes.get flipped 7) lxor 0x40));
  check_bool "internet detects" true
    (Checksum.internet s <> Checksum.internet (Bytes.to_string flipped));
  check_bool "crc detects" true
    (Checksum.crc32 s <> Checksum.crc32 (Bytes.to_string flipped))

let prop_internet_msg_fragmentation_invariant =
  QCheck2.Test.make ~name:"internet_msg is invariant under fragmentation" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 128)) (int_range 1 16))
    (fun (s, mtu) ->
      let whole = Checksum.internet s in
      let m = Msg.concat (Msg.fragment (Msg.of_string s) ~mtu) in
      Checksum.internet_msg m = whole)

let prop_crc32_msg_fragmentation_invariant =
  QCheck2.Test.make ~name:"crc32_msg is invariant under fragmentation" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 128)) (int_range 1 16))
    (fun (s, mtu) ->
      let whole = Checksum.crc32 s in
      let m = Msg.concat (Msg.fragment (Msg.of_string s) ~mtu) in
      Checksum.crc32_msg m = whole)

let prop_crc_bit_flip =
  QCheck2.Test.make ~name:"crc32 detects any single bit flip" ~count:300
    QCheck2.Gen.(string_size (int_range 1 64))
    (fun s ->
      let b = Bytes.of_string s in
      let i = (String.length s * 7) mod String.length s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Checksum.crc32 s <> Checksum.crc32 (Bytes.to_string b))

(* ------------------------------------------------------------------ Pool *)

let test_pool_alloc_free () =
  let p = Pool.create ~buffers:2 ~size:64 in
  check_int "capacity" 2 (Pool.capacity p);
  check_int "available" 2 (Pool.available p);
  let a = Option.get (Pool.alloc p) in
  let _b = Option.get (Pool.alloc p) in
  check_int "in use" 2 (Pool.in_use p);
  check_bool "exhausted" true (Pool.alloc p = None);
  check_int "miss recorded" 1 (Pool.misses p);
  check_int "allocs recorded" 2 (Pool.allocations p);
  Pool.free p a;
  check_int "available again" 1 (Pool.available p);
  check_bool "realloc works" true (Pool.alloc p <> None)

let test_pool_free_errors () =
  let p = Pool.create ~buffers:1 ~size:32 in
  Alcotest.check_raises "wrong size" (Invalid_argument "Pool.free: wrong buffer size")
    (fun () -> Pool.free p (Bytes.create 16));
  Alcotest.check_raises "already full" (Invalid_argument "Pool.free: pool already full")
    (fun () -> Pool.free p (Bytes.create 32))

let test_pool_resize () =
  let p = Pool.create ~buffers:2 ~size:16 in
  let a = Option.get (Pool.alloc p) in
  Pool.resize p ~buffers:5;
  check_int "grown capacity" 5 (Pool.capacity p);
  check_int "grown available" 4 (Pool.available p);
  Pool.resize p ~buffers:1;
  check_int "shrunk capacity" 1 (Pool.capacity p);
  check_int "shrunk available" 0 (Pool.available p);
  check_int "allocated buffer survives" 1 (Pool.in_use p);
  Pool.free p a;
  check_int "freed beyond capacity dropped" 1 (Pool.available p)

let test_pool_buffer_size () =
  let p = Pool.create ~buffers:1 ~size:128 in
  check_int "size" 128 (Pool.buffer_size p);
  check_int "buffer length" 128 (Bytes.length (Option.get (Pool.alloc p)))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "buf.msg",
      [
        Alcotest.test_case "create and lengths" `Quick test_msg_create;
        Alcotest.test_case "header push/pop" `Quick test_msg_push_pop;
        Alcotest.test_case "split" `Quick test_msg_split;
        Alcotest.test_case "split edges" `Quick test_msg_split_edges;
        Alcotest.test_case "fragment and concat" `Quick test_msg_fragment_concat;
        Alcotest.test_case "lazy copy shares payload" `Quick test_msg_copy_sharing;
        Alcotest.test_case "copy counters" `Quick test_msg_copy_counters;
        Alcotest.test_case "iter_data" `Quick test_msg_iter_data;
      ]
      @ qsuite [ prop_fragment_roundtrip; prop_split_partition; prop_push_pop_roundtrip ]
    );
    ( "buf.checksum",
      [
        Alcotest.test_case "internet RFC vector" `Quick test_internet_known_vector;
        Alcotest.test_case "internet odd length" `Quick test_internet_odd_length;
        Alcotest.test_case "crc32 check value" `Quick test_crc32_known_vector;
        Alcotest.test_case "adler32 vector" `Quick test_adler32_known_vector;
        Alcotest.test_case "detects bit flips" `Quick test_checksum_detects_flip;
      ]
      @ qsuite
          [
            prop_internet_msg_fragmentation_invariant;
            prop_crc32_msg_fragmentation_invariant;
            prop_crc_bit_flip;
          ] );
    ( "buf.pool",
      [
        Alcotest.test_case "alloc and free" `Quick test_pool_alloc_free;
        Alcotest.test_case "free errors" `Quick test_pool_free_errors;
        Alcotest.test_case "resize" `Quick test_pool_resize;
        Alcotest.test_case "buffer size" `Quick test_pool_buffer_size;
      ] );
  ]
