(* Tests for the baseline protocols and the Table 1 workload generators. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_baselines
open Adaptive_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------ baselines *)

let lan_pair () =
  let stack = Adaptive.create_stack ~seed:17 () in
  let a = Adaptive.add_host stack "a" in
  let b = Adaptive.add_host stack "b" in
  Adaptive.connect_hosts stack a b (Profiles.lan_path ());
  (stack, a, b)

let test_baseline_scs_shapes () =
  let tcp = Baselines.scs Baselines.Tcp_like in
  check_bool "tcp 3-way" true (tcp.Scs.connection = Params.Three_way);
  check_bool "tcp gbn" true (tcp.Scs.recovery = Params.Go_back_n);
  check_bool "tcp slow start" true
    (match tcp.Scs.congestion with Params.Slow_start _ -> true | _ -> false);
  (match tcp.Scs.transmission with
  | Params.Sliding_window { window } ->
    check_bool "tcp 64KiB-equivalent fixed window" true (window <= 45)
  | _ -> Alcotest.fail "tcp uses a window");
  let tp4 = Baselines.scs Baselines.Tp4_like in
  check_bool "tp4 crc" true (tp4.Scs.detection = Params.Crc32);
  check_bool "tp4 reliable" true (Scs.reliable tp4);
  let udp = Baselines.scs Baselines.Udp_like in
  check_bool "udp unreliable" false (Scs.reliable udp);
  check_bool "udp silent" true (udp.Scs.reporting = Params.No_report);
  check_bool "udp implicit" true (udp.Scs.connection = Params.Implicit);
  Alcotest.(check string) "names" "tcp,tp4,udp"
    (String.concat ","
       (List.map Baselines.name [ Baselines.Tcp_like; Baselines.Tp4_like; Baselines.Udp_like ]))

let test_baseline_tcp_transfer () =
  let stack, a, b = lan_pair () in
  let got = ref 0 in
  Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts b) (fun _ d ->
      got := !got + d.Session.bytes);
  let disp = Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a) in
  let s = Baselines.connect disp ~peers:[ b ] Baselines.Tcp_like in
  Session.send s ~bytes:200_000 ();
  Adaptive.run stack ~until:(Time.sec 30.0);
  Session.close s;
  Adaptive.run stack ~until:(Time.sec 60.0);
  check_int "reliable delivery" 200_000 !got

let test_baseline_udp_fire_and_forget () =
  let stack, a, b = lan_pair () in
  let got = ref 0 in
  Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts b) (fun _ d ->
      got := !got + d.Session.bytes);
  let disp = Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a) in
  let s = Baselines.connect disp ~peers:[ b ] Baselines.Udp_like in
  Session.send s ~bytes:50_000 ();
  Adaptive.run stack ~until:(Time.sec 5.0);
  (* The Ethernet profile has a real copper bit-error rate, so the odd
     datagram is checksum-discarded and never repaired — that is UDP. *)
  check_bool "datagrams delivered on clean lan" true
    (!got > 48_000 && !got <= 50_000);
  Alcotest.(check (float 0.0)) "no acks at all" 0.0
    (Unites.aggregate_total stack.Adaptive.unites Unites.Acks_sent);
  Session.close ~graceful:false s

let test_baseline_static_binding () =
  let stack, a, b = lan_pair () in
  let disp = Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a) in
  let s = Baselines.connect disp ~peers:[ b ] Baselines.Tp4_like in
  (match Session.reconfigure s { (Baselines.scs Baselines.Tp4_like) with Scs.recovery = Params.Selective_repeat } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "baselines must be statically bound");
  Session.close ~graceful:false s

(* ------------------------------------------------------------ workloads *)

let test_workload_catalog () =
  check_int "nine applications" 9 (List.length Workloads.all);
  let names = List.map Workloads.name Workloads.all in
  check_int "unique names" 9 (List.length (List.sort_uniq compare names));
  List.iter
    (fun app ->
      let q = Workloads.qos app in
      check_bool (Workloads.name app ^ " qos sane") true
        (q.Qos.avg_bps > 0.0 && q.Qos.peak_bps >= q.Qos.avg_bps))
    Workloads.all

let test_workload_multicast_flags_consistent () =
  List.iter
    (fun app ->
      let q = Workloads.qos app in
      let receivers = Workloads.multicast_receivers app in
      check_bool (Workloads.name app ^ " receivers consistent") true
        (if q.Qos.multicast then receivers > 1 else receivers = 1))
    Workloads.all

let drive_app ?(stop = 5.0) app =
  let stack, a, b = lan_pair () in
  Workloads.install_server app (Mantts.entity stack.Adaptive.mantts b);
  let acd = Acd.make ~participants:[ b ] ~qos:(Workloads.qos app) () in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  let driver =
    Workloads.drive stack.Adaptive.engine stack.Adaptive.rng ~session:s app
      ~stop_at:(Time.sec stop)
  in
  Adaptive.run stack ~until:(Time.sec (stop +. 5.0));
  (stack, s, driver)

let test_voice_driver_rate () =
  let _, _, driver = drive_app Workloads.Voice_conversation in
  (* 64 kb/s during talkspurts, ~40% duty cycle over 5 s: between 40 and
     260 frames of 160 bytes. *)
  let msgs = Workloads.messages_sent driver in
  check_bool "plausible frame count" true (msgs > 30 && msgs < 270);
  check_int "frame size" (160 * msgs) (Workloads.bytes_sent driver)

let test_video_cbr_driver () =
  let _, _, driver = drive_app ~stop:1.0 Workloads.Video_raw in
  (* 30 frames/s for 1 s. *)
  let msgs = Workloads.messages_sent driver in
  check_bool "about 30 frames" true (msgs >= 28 && msgs <= 32);
  check_int "constant size" (500_000 * msgs) (Workloads.bytes_sent driver)

let test_video_vbr_driver_bursty () =
  let _, _, driver = drive_app ~stop:2.0 Workloads.Video_compressed in
  let msgs = Workloads.messages_sent driver in
  check_bool "frames flowed" true (msgs > 30);
  let mean = float_of_int (Workloads.bytes_sent driver) /. float_of_int msgs in
  check_bool "mean frame plausible" true (mean > 5_000.0 && mean < 80_000.0)

let test_file_transfer_driver () =
  let stack, _, driver = drive_app ~stop:30.0 Workloads.File_transfer in
  check_int "one message" 1 (Workloads.messages_sent driver);
  check_int "ten megabytes" 10_000_000 (Workloads.bytes_sent driver);
  check_bool "fully delivered" true
    (Unites.aggregate_total stack.Adaptive.unites Unites.Bytes_delivered
     >= 10_000_000.0)

let test_oltp_closed_loop () =
  let stack, _, driver = drive_app Workloads.Oltp in
  let requests = Workloads.messages_sent driver in
  check_bool "multiple transactions" true (requests > 5);
  (* Each request elicits a 2 kB response; delivered bytes include both
     directions. *)
  check_bool "responses flowed" true
    (Unites.aggregate_total stack.Adaptive.unites Unites.Bytes_delivered
     > float_of_int (requests * 256))

let test_telnet_echo () =
  let stack, _, driver = drive_app Workloads.Telnet in
  let keys = Workloads.messages_sent driver in
  check_bool "keystrokes flowed" true (keys > 2);
  check_bool "echo came back" true
    (Unites.aggregate_total stack.Adaptive.unites Unites.Segments_delivered
     > float_of_int keys)

let suite =
  [
    ( "baselines",
      [
        Alcotest.test_case "configuration shapes" `Quick test_baseline_scs_shapes;
        Alcotest.test_case "tcp-like reliable transfer" `Quick test_baseline_tcp_transfer;
        Alcotest.test_case "udp-like fire and forget" `Quick
          test_baseline_udp_fire_and_forget;
        Alcotest.test_case "statically bound" `Quick test_baseline_static_binding;
      ] );
    ( "workloads",
      [
        Alcotest.test_case "catalog" `Quick test_workload_catalog;
        Alcotest.test_case "multicast flags consistent" `Quick
          test_workload_multicast_flags_consistent;
        Alcotest.test_case "voice talkspurts" `Quick test_voice_driver_rate;
        Alcotest.test_case "raw video CBR" `Quick test_video_cbr_driver;
        Alcotest.test_case "compressed video VBR" `Quick test_video_vbr_driver_bursty;
        Alcotest.test_case "file transfer bulk" `Quick test_file_transfer_driver;
        Alcotest.test_case "OLTP closed loop" `Quick test_oltp_closed_loop;
        Alcotest.test_case "telnet echo" `Quick test_telnet_echo;
      ] );
  ]
