(* Randomized end-to-end properties: whatever the loss regime, recovery
   scheme, connection style and reconfiguration point, reliable sessions
   deliver their stream exactly once and in order. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

type outcome = {
  delivered_bytes : int;
  seqs : int list; (* in delivery order *)
  closed : bool;
}

(* One self-contained transfer under the given conditions. *)
let run_transfer ~seed ~ber ~queue ~recovery ~reporting ~connection ~window
    ~transfer ~segue_at_ms ~segue_to () =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  Topology.set_symmetric_route topo ~a ~b
    [
      Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 50) ~queue_pkts:queue
        ~ber ~mtu:1500 ();
    ];
  let net = Network.create engine ~rng:(Rng.create seed) topo in
  let unites = Unites.create engine in
  let seqs = ref [] and bytes = ref 0 in
  let mk addr =
    let d = Session.Dispatcher.create net ~addr ~host:(Host.zero_cost engine) ~unites in
    Session.Dispatcher.set_acceptor d (fun ~src:_ ~conn ~proposal ->
        Session.Dispatcher.Accept
          {
            scs = Option.value ~default:Scs.default proposal;
            name = Printf.sprintf "r-%d" conn;
            on_deliver =
              Some
                (fun _ del ->
                  seqs := del.Session.seq :: !seqs;
                  bytes := !bytes + del.Session.bytes);
            on_signal = None;
          });
    d
  in
  let da = mk a in
  ignore (mk b);
  let scs =
    {
      Scs.default with
      Scs.connection;
      transmission = Params.Sliding_window { window };
      recovery;
      reporting;
      recv_buffer_segments = 2 * window;
      segment_bytes = 1000;
      initial_rto = Time.ms 40;
    }
  in
  let s = Session.connect da ~peers:[ b ] ~scs () in
  Session.send s ~bytes:transfer ();
  (match segue_to with
  | Some (rec2, rep2) ->
    ignore
      (Engine.schedule engine ~at:(Time.ms segue_at_ms) (fun () ->
           if Session.state s = Session.Established then
             ignore
               (Session.reconfigure s { scs with Scs.recovery = rec2; reporting = rep2 })))
  | None -> ());
  Engine.run engine ~until:(Time.sec 120.0);
  Session.close s;
  Engine.run engine ~until:(Time.sec 240.0);
  {
    delivered_bytes = !bytes;
    seqs = List.rev !seqs;
    closed = Session.state s = Session.Closed;
  }

let arq_schemes =
  [
    (Params.Go_back_n, Params.Cumulative_ack { delay = Time.ms 1 });
    (Params.Go_back_n, Params.Cumulative_ack { delay = Time.zero });
    (Params.Selective_repeat, Params.Selective_ack { delay = Time.ms 1 });
    (Params.Selective_repeat, Params.Selective_ack { delay = Time.zero });
  ]

let gen_conditions =
  QCheck2.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* scheme_ix = int_range 0 3 in
    let* ber_ix = int_range 0 2 in
    let* queue = int_range 3 64 in
    let* window = int_range 2 48 in
    let* conn_ix = int_range 0 2 in
    let* transfer_kb = int_range 10 120 in
    return (seed, scheme_ix, ber_ix, queue, window, conn_ix, transfer_kb))

let decode (seed, scheme_ix, ber_ix, queue, window, conn_ix, transfer_kb) =
  let recovery, reporting = List.nth arq_schemes scheme_ix in
  let ber = List.nth [ 0.0; 1e-6; 5e-6 ] ber_ix in
  let connection = List.nth [ Params.Implicit; Params.Two_way; Params.Three_way ] conn_ix in
  (seed, recovery, reporting, ber, queue, window, connection, transfer_kb * 1000)

let exactly_once_in_order outcome transfer =
  outcome.delivered_bytes = transfer
  && outcome.seqs = List.init (List.length outcome.seqs) Fun.id

let prop_reliable_exactly_once =
  QCheck2.Test.make
    ~name:"reliable transfer delivers exactly once, in order, then closes"
    ~count:30 gen_conditions
    (fun conditions ->
      let seed, recovery, reporting, ber, queue, window, connection, transfer =
        decode conditions
      in
      let o =
        run_transfer ~seed ~ber ~queue ~recovery ~reporting ~connection ~window
          ~transfer ~segue_at_ms:0 ~segue_to:None ()
      in
      exactly_once_in_order o transfer && o.closed)

let prop_segue_preserves_stream =
  QCheck2.Test.make
    ~name:"recovery segue at any time preserves exactly-once in-order delivery"
    ~count:30
    QCheck2.Gen.(pair gen_conditions (int_range 1 400))
    (fun (conditions, segue_at_ms) ->
      let seed, recovery, reporting, ber, queue, window, connection, transfer =
        decode conditions
      in
      (* Switch to the other ARQ scheme mid-flight. *)
      let segue_to =
        match recovery with
        | Params.Go_back_n ->
          Some (Params.Selective_repeat, Params.Selective_ack { delay = Time.ms 1 })
        | _ -> Some (Params.Go_back_n, Params.Cumulative_ack { delay = Time.ms 1 })
      in
      let o =
        run_transfer ~seed ~ber ~queue ~recovery ~reporting ~connection ~window
          ~transfer ~segue_at_ms ~segue_to ()
      in
      exactly_once_in_order o transfer && o.closed)

let suite =
  [
    ( "random.session",
      List.map QCheck_alcotest.to_alcotest
        [ prop_reliable_exactly_once; prop_segue_preserves_stream ] );
  ]
