(* Tests for the real-bytes data path: payload-bearing segments, XOR
   parity reconstruction, and end-to-end integrity. *)

open Adaptive_sim
open Adaptive_buf
open Adaptive_net
open Adaptive_mech
open Adaptive_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let payload_seg ?last seq s =
  Pdu.seg ?last ~seq ~bytes:(String.length s) ~payload:(Msg.of_string s) ()

(* -------------------------------------------------------------- Fec XOR *)

let test_parity_of_xor () =
  let group = [ payload_seg 0 "abcd"; payload_seg 1 "xy"; payload_seg 2 "1234" ] in
  match Fec.parity_of group with
  | None -> Alcotest.fail "expected parity"
  | Some parity ->
    let p = Msg.data_to_string parity in
    check_int "padded to longest" 4 (String.length p);
    (* Byte 0: 'a' ^ 'x' ^ '1'. *)
    check_int "xor byte"
      (Char.code 'a' lxor Char.code 'x' lxor Char.code '1')
      (Char.code p.[0]);
    (* Byte 2: 'c' ^ 0 ^ '3'. *)
    check_int "padding is zero" (Char.code 'c' lxor Char.code '3') (Char.code p.[2])

let test_parity_of_requires_all_payloads () =
  let group = [ payload_seg 0 "abcd"; Pdu.seg ~seq:1 ~bytes:4 () ] in
  check_bool "metadata-only group has no parity" true (Fec.parity_of group = None)

let test_fec_rebuilds_actual_bytes () =
  let members = [ payload_seg 0 "hello"; payload_seg 1 "world!!"; payload_seg 2 "123" ] in
  let parity = Fec.parity_of members in
  let r = Fec.Receiver.create () in
  (* Seq 1 is lost; the others arrive. *)
  ignore (Fec.Receiver.on_data r (List.nth members 0));
  ignore (Fec.Receiver.on_data r (List.nth members 2));
  let covered = List.map Pdu.strip_payload members in
  match Fec.Receiver.on_parity r ~covered ~parity with
  | [ rebuilt ] ->
    check_int "right seq" 1 rebuilt.Pdu.seq;
    (match rebuilt.Pdu.payload with
    | Some m -> check_str "actual bytes recovered" "world!!" (Msg.data_to_string m)
    | None -> Alcotest.fail "expected reconstructed payload")
  | _ -> Alcotest.fail "expected one reconstruction"

let test_fec_metadata_only_without_parity_block () =
  let members = [ payload_seg 0 "aa"; payload_seg 1 "bb" ] in
  let r = Fec.Receiver.create () in
  ignore (Fec.Receiver.on_data r (List.nth members 0));
  match Fec.Receiver.on_parity r ~covered:(List.map Pdu.strip_payload members) ~parity:None with
  | [ rebuilt ] -> check_bool "no bytes without parity block" true (rebuilt.Pdu.payload = None)
  | _ -> Alcotest.fail "expected one reconstruction"

let prop_fec_xor_roundtrip =
  QCheck2.Test.make ~name:"XOR parity reconstructs any single missing payload"
    ~count:200
    QCheck2.Gen.(
      pair (int_range 2 6)
        (list_size (int_range 2 6) (string_size ~gen:printable (int_range 1 32))))
    (fun (lost_ix, payloads) ->
      let payloads = if payloads = [] then [ "x" ] else payloads in
      let lost_ix = lost_ix mod List.length payloads in
      let members = List.mapi payload_seg payloads in
      let parity = Fec.parity_of members in
      let r = Fec.Receiver.create () in
      List.iteri (fun i s -> if i <> lost_ix then ignore (Fec.Receiver.on_data r s)) members;
      match Fec.Receiver.on_parity r ~covered:(List.map Pdu.strip_payload members) ~parity with
      | [ rebuilt ] -> (
        match rebuilt.Pdu.payload with
        | Some m -> Msg.data_to_string m = List.nth payloads lost_ix
        | None -> false)
      | _ -> List.length payloads < 2)

(* -------------------------------------------------------- end to end *)

let lan ?(ber = 0.0) ?(queue = 64) () =
  [ Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:queue ~ber ~mtu:1500 () ]

type rig = {
  engine : Engine.t;
  received : (int * string) list ref; (* seq, bytes *)
  disp_a : Session.Dispatcher.dispatcher;
  b : Network.addr;
}

let make_rig ?(seed = 77) path =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  Topology.set_symmetric_route topo ~a ~b path;
  let net = Network.create engine ~rng:(Rng.create seed) topo in
  let unites = Unites.create engine in
  let received = ref [] in
  let mk addr =
    let d = Session.Dispatcher.create net ~addr ~host:(Host.zero_cost engine) ~unites in
    Session.Dispatcher.set_acceptor d (fun ~src:_ ~conn ~proposal ->
        Session.Dispatcher.Accept
          {
            scs = Option.value ~default:Scs.default proposal;
            name = Printf.sprintf "p-%d" conn;
            on_deliver =
              Some
                (fun _ del ->
                  let bytes =
                    match del.Session.payload with
                    | Some m -> Msg.data_to_string m
                    | None -> ""
                  in
                  received := (del.Session.seq, bytes) :: !received);
            on_signal = None;
          });
    d
  in
  let disp_a = mk a in
  ignore (mk b);
  { engine; received; disp_a; b }

let reassemble rig =
  List.sort compare !(rig.received) |> List.map snd |> String.concat ""

let lorem n =
  String.init n (fun i -> Char.chr (32 + ((i * 131 + (i / 95)) mod 95)))

let test_payload_end_to_end_clean () =
  let rig = make_rig (lan ()) in
  let text = lorem 10_000 in
  let scs = { Scs.default with Scs.segment_bytes = 1000 } in
  let s = Session.connect rig.disp_a ~peers:[ rig.b ] ~scs () in
  Session.send s ~bytes:(String.length text) ~payload:(Msg.of_string text) ();
  Engine.run rig.engine ~until:(Time.sec 10.0);
  Session.close s;
  Engine.run rig.engine ~until:(Time.sec 20.0);
  check_str "bytes identical end to end" text (reassemble rig)

let test_payload_survives_loss_and_retransmission () =
  let rig = make_rig (lan ~queue:3 ()) in
  let text = lorem 50_000 in
  let scs =
    {
      Scs.default with
      Scs.transmission = Params.Sliding_window { window = 16 };
      recovery = Params.Selective_repeat;
      reporting = Params.Selective_ack { delay = Time.ms 1 };
      segment_bytes = 1000;
      recv_buffer_segments = 32;
      initial_rto = Time.ms 50;
    }
  in
  let s = Session.connect rig.disp_a ~peers:[ rig.b ] ~scs () in
  Session.send s ~bytes:(String.length text) ~payload:(Msg.of_string text) ();
  Engine.run rig.engine ~until:(Time.sec 60.0);
  Session.close s;
  Engine.run rig.engine ~until:(Time.sec 120.0);
  check_str "bytes identical despite drops and retransmission" text (reassemble rig)

let test_payload_fec_recovers_bytes () =
  let rig = make_rig (lan ~ber:3e-6 ()) in
  let text = lorem 60_000 in
  let scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Rate_based { rate_bps = 4e6; burst = 8 };
      reporting = Params.No_report;
      recovery = Params.Forward_error_correction { group = 4 };
      ordering = Params.Ordered;
      segment_bytes = 1000;
    }
  in
  let s = Session.connect rig.disp_a ~peers:[ rig.b ] ~scs () in
  Engine.run rig.engine ~until:(Time.ms 50);
  Session.send s ~bytes:(String.length text) ~payload:(Msg.of_string text) ();
  Engine.run rig.engine ~until:(Time.sec 20.0);
  (* Some segments were corrupted and recovered from parity: every byte
     string we did receive must match the original at its position. *)
  let ok =
    List.for_all
      (fun (seq, bytes) ->
        let off = seq * 1000 in
        off + String.length bytes <= String.length text
        && String.sub text off (String.length bytes) = bytes)
      !(rig.received)
  in
  check_bool "all delivered bytes match their position" true ok;
  check_bool "most of the stream arrived" true
    (List.length !(rig.received) > 55);
  Session.close ~graceful:false s

let test_payload_damage_reaches_app_without_detection () =
  let rig = make_rig ~seed:5 (lan ~ber:8e-6 ()) in
  let text = lorem 60_000 in
  let scs =
    {
      Scs.default with
      Scs.detection = Params.No_detection;
      segment_bytes = 1000;
      recv_buffer_segments = 64;
    }
  in
  let s = Session.connect rig.disp_a ~peers:[ rig.b ] ~scs () in
  Session.send s ~bytes:(String.length text) ~payload:(Msg.of_string text) ();
  Engine.run rig.engine ~until:(Time.sec 30.0);
  Session.close ~graceful:false s;
  Engine.run rig.engine ~until:(Time.sec 40.0);
  (* Everything arrives (reliable), but at least one segment's bytes must
     differ from what was sent — silently. *)
  let mismatches =
    List.filter
      (fun (seq, bytes) ->
        let off = seq * 1000 in
        off + String.length bytes > String.length text
        || String.sub text off (String.length bytes) <> bytes)
      !(rig.received)
  in
  check_bool "undetected corruption damaged the data" true (mismatches <> []);
  check_str "but lengths line up"
    (String.concat "" (List.map (fun _ -> "") mismatches))
    "";
  check_int "stream length preserved" (String.length text)
    (String.length (reassemble rig))

let test_send_payload_length_mismatch () =
  let rig = make_rig (lan ()) in
  let s = Session.connect rig.disp_a ~peers:[ rig.b ] ~scs:Scs.default () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Session.send: payload length disagrees with bytes") (fun () ->
      Session.send s ~bytes:10 ~payload:(Msg.of_string "abc") ())

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "payload.fec",
      [
        Alcotest.test_case "parity is padded XOR" `Quick test_parity_of_xor;
        Alcotest.test_case "parity needs every payload" `Quick
          test_parity_of_requires_all_payloads;
        Alcotest.test_case "rebuilds actual bytes" `Quick test_fec_rebuilds_actual_bytes;
        Alcotest.test_case "metadata-only without block" `Quick
          test_fec_metadata_only_without_parity_block;
      ]
      @ qsuite [ prop_fec_xor_roundtrip ] );
    ( "payload.session",
      [
        Alcotest.test_case "clean end to end" `Quick test_payload_end_to_end_clean;
        Alcotest.test_case "survives loss + retransmission" `Quick
          test_payload_survives_loss_and_retransmission;
        Alcotest.test_case "FEC recovers real bytes" `Quick test_payload_fec_recovers_bytes;
        Alcotest.test_case "undetected damage reaches the app" `Quick
          test_payload_damage_reaches_app_without_detection;
        Alcotest.test_case "length mismatch rejected" `Quick
          test_send_payload_length_mismatch;
      ] );
  ]
