(* End-to-end tests of the Session protocol interpreter: reliability,
   transmission control, connection management, reconfiguration (segue
   under live traffic), multicast, FEC, and playout. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- fixture *)

type fixture = {
  engine : Engine.t;
  topo : Topology.t;
  net : Pdu.t Network.t;
  unites : Unites.t;
  a : Network.addr;
  b : Network.addr;
  c : Network.addr;
  disp_a : Session.Dispatcher.dispatcher;
  disp_b : Session.Dispatcher.dispatcher;
  disp_c : Session.Dispatcher.dispatcher;
  deliveries : (Network.addr, Session.delivery list ref) Hashtbl.t;
}

(* Accept any proposal unchanged and log deliveries per receiving host. *)
let make_fixture ?(seed = 7) ?(zero_cost = true) ~path_ab ?path_ac () =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" in
  let b = Topology.add_host topo "b" in
  let c = Topology.add_host topo "c" in
  Topology.set_symmetric_route topo ~a ~b path_ab;
  (match path_ac with
  | Some hops -> Topology.set_symmetric_route topo ~a ~b:c hops
  | None -> ());
  let net = Network.create engine ~rng:(Rng.create seed) topo in
  let unites = Unites.create engine in
  let deliveries = Hashtbl.create 4 in
  List.iter (fun h -> Hashtbl.replace deliveries h (ref [])) [ a; b; c ];
  let mk_host () =
    if zero_cost then Host.zero_cost engine
    else Host.create ~per_packet:(Time.us 20) engine
  in
  let mk_disp addr =
    let disp = Session.Dispatcher.create net ~addr ~host:(mk_host ()) ~unites in
    Session.Dispatcher.set_acceptor disp (fun ~src:_ ~conn ~proposal ->
        let scs =
          match proposal with
          | Some scs -> scs
          | None -> { Scs.default with Scs.connection = Params.Implicit }
        in
        Session.Dispatcher.Accept
          {
            scs;
            name = Printf.sprintf "acc-%d" conn;
            on_deliver =
              Some
                (fun _ d ->
                  let log = Hashtbl.find deliveries addr in
                  log := d :: !log);
            on_signal = None;
          });
    disp
  in
  let disp_a = mk_disp a and disp_b = mk_disp b and disp_c = mk_disp c in
  { engine; topo; net; unites; a; b; c; disp_a; disp_b; disp_c; deliveries }

let received f addr = List.rev !(Hashtbl.find f.deliveries addr)
let received_seqs f addr = List.map (fun d -> d.Session.seq) (received f addr)
let received_bytes f addr =
  List.fold_left (fun acc d -> acc + d.Session.bytes) 0 (received f addr)

let lan () = [ Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~mtu:1500 () ]

let lossy_lan ~queue () =
  [ Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:queue ~mtu:1500 () ]

let noisy_lan ~ber () =
  [ Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~ber ~mtu:1500 () ]

let seq_range n = List.init n Fun.id

(* --------------------------------------------------------- reliability *)

let transfer_scs recovery reporting =
  {
    Scs.default with
    Scs.connection = Params.Two_way;
    transmission = Params.Sliding_window { window = 16 };
    recovery;
    reporting;
    recv_buffer_segments = 32;
    segment_bytes = 1000;
    initial_rto = Time.ms 50;
  }

let run_transfer ?(bytes = 100_000) f scs =
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes ();
  Engine.run f.engine ~until:(Time.sec 60.0);
  Session.close s;
  Engine.run f.engine ~until:(Time.sec 120.0);
  s

let test_gbn_clean_transfer () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let s =
    run_transfer f (transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 }))
  in
  check_int "all bytes" 100_000 (received_bytes f f.b);
  Alcotest.(check (list int)) "in order, exactly once" (seq_range 100)
    (received_seqs f f.b);
  check_bool "closed" true (Session.state s = Session.Closed)

let test_gbn_recovers_from_queue_loss () =
  (* A 3-packet queue forces congestive drops under a 16-segment window. *)
  let f = make_fixture ~path_ab:(lossy_lan ~queue:3 ()) () in
  ignore
    (run_transfer f
       (transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 })));
  check_int "all bytes despite drops" 100_000 (received_bytes f f.b);
  Alcotest.(check (list int)) "ordered exactly once" (seq_range 100) (received_seqs f f.b);
  check_bool "losses actually happened" true
    (Unites.aggregate_total f.unites Unites.Retransmissions > 0.0)

let test_selective_repeat_recovers () =
  let f = make_fixture ~path_ab:(lossy_lan ~queue:3 ()) () in
  ignore
    (run_transfer f
       (transfer_scs Params.Selective_repeat (Params.Selective_ack { delay = Time.ms 1 })));
  check_int "all bytes" 100_000 (received_bytes f f.b);
  Alcotest.(check (list int)) "ordered exactly once" (seq_range 100) (received_seqs f f.b)

let test_selective_repeat_wastes_less () =
  (* Go-back-n's defining cost: it resends segments the receiver already
     holds, which arrive as duplicates.  Selective repeat resends only the
     holes. *)
  let run recovery reporting =
    (* Independent random loss (bit errors), deep queues: GBN's redundant
       copies actually arrive, showing as duplicates. *)
    let f = make_fixture ~path_ab:(noisy_lan ~ber:2e-6 ()) () in
    ignore (run_transfer ~bytes:200_000 f (transfer_scs recovery reporting));
    Unites.aggregate_total f.unites Unites.Dup_segments
  in
  let gbn = run Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 }) in
  let sr = run Params.Selective_repeat (Params.Selective_ack { delay = Time.ms 1 }) in
  check_bool "SR delivers fewer duplicates than GBN under loss" true (sr < gbn)

let test_stop_and_wait () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs =
    { (transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.zero })) with
      Scs.transmission = Params.Stop_and_wait }
  in
  ignore (run_transfer ~bytes:10_000 f scs);
  check_int "delivered" 10_000 (received_bytes f f.b);
  Alcotest.(check (list int)) "ordered" (seq_range 10) (received_seqs f f.b)

let test_corruption_detected_and_recovered () =
  (* A noisy link corrupts packets; checksum turns corruption into loss and
     ARQ repairs it. *)
  let f = make_fixture ~path_ab:(noisy_lan ~ber:5e-6 ()) () in
  ignore
    (run_transfer f
       (transfer_scs Params.Selective_repeat (Params.Selective_ack { delay = Time.ms 1 })));
  check_int "all bytes despite corruption" 100_000 (received_bytes f f.b);
  check_bool "corruption detected" true
    (Unites.aggregate_total f.unites Unites.Corrupt_detected > 0.0);
  check_bool "nothing damaged reached the app" true
    (List.for_all (fun d -> not d.Session.damaged) (received f f.b))

let test_no_detection_delivers_damage () =
  let f = make_fixture ~path_ab:(noisy_lan ~ber:5e-6 ()) () in
  let scs =
    {
      (transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 })) with
      Scs.detection = Params.No_detection;
    }
  in
  ignore (run_transfer f scs);
  check_bool "damaged data reached the app" true
    (List.exists (fun d -> d.Session.damaged) (received f f.b));
  check_bool "counted" true
    (Unites.aggregate_total f.unites Unites.Corrupt_delivered > 0.0)

let test_mechanism_compatibility_matrix () =
  (* Every coherent (transmission x recovery x reporting x ordering)
     combination must carry traffic over a mildly lossy link without
     wedging; ARQ combinations must deliver everything exactly once. *)
  let combos =
    [
      (* transmission, recovery, reporting, ordering, fully reliable *)
      ("sw/gbn/cum/ord", Params.Sliding_window { window = 12 }, Params.Go_back_n,
       Params.Cumulative_ack { delay = Time.ms 1 }, Params.Ordered, true);
      ("sw/gbn/cum/unord", Params.Sliding_window { window = 12 }, Params.Go_back_n,
       Params.Cumulative_ack { delay = Time.zero }, Params.Unordered, true);
      ("sw/sr/sack/ord", Params.Sliding_window { window = 12 }, Params.Selective_repeat,
       Params.Selective_ack { delay = Time.ms 1 }, Params.Ordered, true);
      ("sw/sr/sack/unord", Params.Sliding_window { window = 12 }, Params.Selective_repeat,
       Params.Selective_ack { delay = Time.zero }, Params.Unordered, true);
      ("saw/gbn/cum/ord", Params.Stop_and_wait, Params.Go_back_n,
       Params.Cumulative_ack { delay = Time.zero }, Params.Ordered, true);
      ("saw/sr/sack/ord", Params.Stop_and_wait, Params.Selective_repeat,
       Params.Selective_ack { delay = Time.zero }, Params.Ordered, true);
      ("rate/sr/nack/ord", Params.Rate_based { rate_bps = 4e6; burst = 8 },
       Params.Selective_repeat, Params.Nack_on_gap, Params.Ordered, false);
      ("rate/none/none/unord", Params.Rate_based { rate_bps = 4e6; burst = 8 },
       Params.No_recovery, Params.No_report, Params.Unordered, false);
      ("rate/fec/none/ord", Params.Rate_based { rate_bps = 4e6; burst = 8 },
       Params.Forward_error_correction { group = 4 }, Params.No_report, Params.Ordered,
       false);
      ("rate/fec/nack/ord", Params.Rate_based { rate_bps = 4e6; burst = 8 },
       Params.Forward_error_correction { group = 4 }, Params.Nack_on_gap, Params.Ordered,
       false);
      ("sw/none/cum/ord", Params.Sliding_window { window = 12 }, Params.No_recovery,
       Params.Cumulative_ack { delay = Time.ms 1 }, Params.Ordered, false);
      ("rate/gbn/cum/ord", Params.Rate_based { rate_bps = 4e6; burst = 8 },
       Params.Go_back_n, Params.Cumulative_ack { delay = Time.ms 1 }, Params.Ordered,
       true);
    ]
  in
  List.iter
    (fun (label, transmission, recovery, reporting, ordering, fully_reliable) ->
      let f = make_fixture ~path_ab:(noisy_lan ~ber:1.5e-6 ()) () in
      let scs =
        {
          Scs.default with
          Scs.connection = Params.Two_way;
          transmission;
          recovery;
          reporting;
          ordering;
          recv_buffer_segments = 24;
          segment_bytes = 1000;
          initial_rto = Time.ms 50;
        }
      in
      let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
      Engine.run f.engine ~until:(Time.ms 50);
      Session.send s ~bytes:60_000 ();
      Engine.run f.engine ~until:(Time.sec 60.0);
      Session.close ~graceful:false s;
      Engine.run f.engine ~until:(Time.sec 90.0);
      let got = received_bytes f f.b in
      if fully_reliable then begin
        check_int (label ^ ": everything") 60_000 got;
        let seqs = received_seqs f f.b in
        check_int (label ^ ": exactly once") 60
          (List.length (List.sort_uniq compare seqs))
      end
      else check_bool (label ^ ": most of the stream") true (got >= 48_000))
    combos

(* ------------------------------------------------------- rate and window *)

let test_rate_pacing () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Rate_based { rate_bps = 800_000.0; burst = 2 };
      reporting = Params.No_report;
      recovery = Params.No_recovery;
      segment_bytes = 1000;
    }
  in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:100_000 ();
  Engine.run f.engine ~until:(Time.sec 10.0);
  (* 100 kB at 100 kB/s should take ~1 s: check the spread of arrivals. *)
  let ds = received f f.b in
  check_int "all delivered" 100 (List.length ds);
  let last = List.fold_left (fun acc d -> Time.max acc d.Session.delivered_at) 0 ds in
  check_bool "paced across ~1s" true (last > Time.ms 900 && last < Time.ms 1400);
  Session.close s;
  Engine.run f.engine

let test_window_respects_peer_advertisement () =
  let f = make_fixture ~path_ab:(lan ()) () in
  (* The responder's acceptor echoes the proposal, so advertise 4 via the
     proposal itself. *)
  let scs =
    {
      (transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 })) with
      Scs.transmission = Params.Sliding_window { window = 64 };
      recv_buffer_segments = 4;
    }
  in
  ignore (run_transfer ~bytes:50_000 f scs);
  check_int "complete" 50_000 (received_bytes f f.b);
  let wmax =
    match Unites.aggregate f.unites Unites.Window_size with
    | Some s -> s.Stats.max
    | None -> nan
  in
  check_bool "in-flight bounded by advertisement" true (wmax <= 4.0 +. 1e-9)

let test_slow_start_ramp () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs =
    {
      (transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 })) with
      Scs.congestion = Params.Slow_start { initial = 1; threshold = 8 };
    }
  in
  ignore (run_transfer ~bytes:50_000 f scs);
  check_int "complete" 50_000 (received_bytes f f.b);
  let wmin =
    match Unites.aggregate f.unites Unites.Window_size with
    | Some s -> s.Stats.min
    | None -> nan
  in
  (* The very first transmission must have happened with a tiny window. *)
  check_bool "started small" true (wmin <= 1.0 +. 1e-9)

(* --------------------------------------------------- connection set-up *)

let setup_latency f scs =
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:1000 ();
  Engine.run f.engine ~until:(Time.sec 5.0);
  let d = received f f.b in
  check_int "delivered" 1 (List.length d);
  let first = List.hd d in
  Session.close s;
  Engine.run f.engine;
  first.Session.delivered_at

let wan () =
  [ Link.create ~bandwidth_bps:45e6 ~propagation:(Time.ms 15) ~queue_pkts:64 ~mtu:1500 () ]

let test_implicit_saves_round_trip () =
  let base =
    { Scs.default with Scs.segment_bytes = 1000; initial_rto = Time.ms 200 }
  in
  let f1 = make_fixture ~path_ab:(wan ()) () in
  let implicit =
    setup_latency f1 { base with Scs.connection = Params.Implicit }
  in
  let f2 = make_fixture ~path_ab:(wan ()) () in
  let explicit =
    setup_latency f2 { base with Scs.connection = Params.Two_way }
  in
  (* One 15 ms hop: implicit ~15-16 ms, 2-way ~45-47 ms. *)
  check_bool "implicit under one RTT" true (implicit < Time.ms 25);
  check_bool "explicit costs an extra round trip" true
    (Time.diff explicit implicit >= Time.ms 25)

let test_three_way_extra_control () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs = { Scs.default with Scs.connection = Params.Three_way; segment_bytes = 1000 } in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:1000 ();
  Engine.run f.engine ~until:(Time.sec 2.0);
  check_bool "established" true (Session.state s = Session.Established);
  check_bool "established stamped" true (Session.established_at s <> None);
  Session.close s;
  Engine.run f.engine;
  check_bool "setup latency recorded" true
    (Unites.stats f.unites ~session:(Session.id s) Unites.Setup_latency <> None)

let test_orphan_data_accepted_with_defaults () =
  let f = make_fixture ~path_ab:(lan ()) () in
  (* Inject a data PDU for a connection nobody opened: the §4.1.1 default
     configuration path. *)
  let seg = Pdu.seg ~seq:0 ~bytes:500 ~last:true () in
  Network.send f.net ~src:f.a ~dst:f.b ~bytes:532
    (Pdu.Data { conn = 424242; seg; retransmit = false; tx_stamp = Time.zero });
  Engine.run f.engine;
  check_int "orphan delivered via default config" 500 (received_bytes f f.b)

let test_negotiation_counter_proposal () =
  (* A stingy responder clamps the receive buffer; the initiator adopts it. *)
  let f = make_fixture ~path_ab:(lan ()) () in
  Session.Dispatcher.set_acceptor f.disp_b (fun ~src:_ ~conn ~proposal ->
      let scs = Option.value ~default:Scs.default proposal in
      Session.Dispatcher.Accept
        {
          scs = { scs with Scs.recv_buffer_segments = 2 };
          name = Printf.sprintf "stingy-%d" conn;
          on_deliver =
            Some
              (fun _ d ->
                let log = Hashtbl.find f.deliveries f.b in
                log := d :: !log);
          on_signal = None;
        });
  let scs = transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 }) in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:20_000 ();
  Engine.run f.engine ~until:(Time.sec 10.0);
  check_bool "initiator adopted counter-proposal" true
    ((Session.scs s).Scs.recv_buffer_segments = 2);
  check_int "transfer still completes" 20_000 (received_bytes f f.b);
  Session.close s;
  Engine.run f.engine

let test_graceful_close_drains () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs = transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 }) in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:50_000 ();
  (* Close immediately: graceful close must still deliver everything. *)
  Session.close s;
  Engine.run f.engine ~until:(Time.sec 30.0);
  check_int "drained before fin" 50_000 (received_bytes f f.b);
  check_bool "closed" true (Session.state s = Session.Closed)

let test_abort_may_lose_data () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs = transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 }) in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:50_000 ();
  Session.close ~graceful:false s;
  check_bool "immediately closed" true (Session.state s = Session.Closed);
  Engine.run f.engine ~until:(Time.sec 5.0);
  check_bool "data was dropped" true (received_bytes f f.b < 50_000)

let test_send_after_close_rejected () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs:Scs.default () in
  Session.close ~graceful:false s;
  Alcotest.check_raises "send on closed"
    (Invalid_argument "Session.send: session is closing or closed") (fun () ->
      Session.send s ~bytes:10 ())

(* ------------------------------------------------------------ signaling *)

let test_signal_round_trip () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let seen = ref [] in
  Session.Dispatcher.set_acceptor f.disp_b (fun ~src:_ ~conn ~proposal ->
      Session.Dispatcher.Accept
        {
          scs = Option.value ~default:Scs.default proposal;
          name = Printf.sprintf "sig-%d" conn;
          on_deliver = None;
          on_signal =
            Some
              (fun _ blob ->
                seen := blob :: !seen;
                "pong:" ^ blob);
        });
  let replies = ref [] in
  let s =
    Session.connect f.disp_a ~peers:[ f.b ] ~scs:Scs.default
      ~on_signal_reply:(fun _ r -> replies := r :: !replies)
      ()
  in
  Engine.run f.engine ~until:(Time.ms 100);
  Session.signal s "ping";
  Engine.run f.engine ~until:(Time.sec 1.0);
  Alcotest.(check (list string)) "peer saw blob" [ "ping" ] !seen;
  Alcotest.(check (list string)) "initiator got reply" [ "pong:ping" ] !replies;
  Session.close s;
  Engine.run f.engine

(* ----------------------------------------------- live reconfiguration *)

let test_segue_gbn_to_sr_no_loss () =
  (* Switch recovery scheme mid-transfer over a lossy link: the stream must
     still arrive exactly once, in order — the MSP-style on-the-fly change
     without data loss. *)
  let f = make_fixture ~path_ab:(lossy_lan ~queue:3 ()) () in
  let scs = transfer_scs Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 1 }) in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:200_000 ();
  (* Reconfigure in the thick of the transfer. *)
  ignore
    (Engine.schedule f.engine ~at:(Time.ms 60) (fun () ->
         match
           Session.reconfigure s
             {
               scs with
               Scs.recovery = Params.Selective_repeat;
               reporting = Params.Selective_ack { delay = Time.ms 1 };
             }
         with
         | Ok changed -> check_bool "components changed" true (changed <> [])
         | Error e -> Alcotest.fail e));
  Engine.run f.engine ~until:(Time.sec 60.0);
  Session.close s;
  Engine.run f.engine ~until:(Time.sec 120.0);
  check_int "every byte exactly once" 200_000 (received_bytes f f.b);
  Alcotest.(check (list int)) "in order" (seq_range 200) (received_seqs f f.b);
  check_bool "segue applied" true ((Session.scs s).Scs.recovery = Params.Selective_repeat);
  check_bool "peer segued too" true
    (Unites.aggregate_total f.unites Unites.Reconfigurations > 0.0)

let test_segue_rate_change_live () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Rate_based { rate_bps = 400_000.0; burst = 2 };
      reporting = Params.No_report;
      recovery = Params.No_recovery;
      segment_bytes = 1000;
    }
  in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Session.send s ~bytes:100_000 ();
  (* Double the rate after 0.5 s; 100 kB finishes sooner than at 50 kB/s. *)
  ignore
    (Engine.schedule f.engine ~at:(Time.ms 500) (fun () ->
         ignore
           (Session.reconfigure s
              {
                scs with
                Scs.transmission = Params.Rate_based { rate_bps = 1_600_000.0; burst = 2 };
              })));
  Engine.run f.engine ~until:(Time.sec 10.0);
  let last =
    List.fold_left (fun acc d -> Time.max acc d.Session.delivered_at) 0 (received f f.b)
  in
  check_int "all delivered" 100 (List.length (received f f.b));
  (* At a constant 400 kb/s it would take 2 s; speed-up must land well
     under that. *)
  check_bool "rate change took effect" true (last < Time.ms 1400);
  Session.close s;
  Engine.run f.engine

let test_static_template_refuses_live_reconfig () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let s =
    Session.connect ~binding:(Tko.Static_template "tcp-compatible") f.disp_a
      ~peers:[ f.b ] ~scs:Scs.default ()
  in
  (match Session.reconfigure s { Scs.default with Scs.recovery = Params.Selective_repeat } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "static binding must refuse");
  Session.close ~graceful:false s

(* ------------------------------------------------------------ multicast *)

let two_receiver_fixture () =
  (* a -> {b, c} share the first hop. *)
  let shared = Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~mtu:1500 () in
  let tail_b = Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~mtu:1500 () in
  let tail_c = Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~mtu:1500 () in
  let f = make_fixture ~path_ab:[ shared; tail_b ] ~path_ac:[ shared; tail_c ] () in
  (f, shared)

let mcast_scs =
  {
    Scs.default with
    Scs.connection = Params.Two_way;
    transmission = Params.Rate_based { rate_bps = 2e6; burst = 8 };
    reporting = Params.Nack_on_gap;
    recovery = Params.Selective_repeat;
    segment_bytes = 1000;
    initial_rto = Time.ms 50;
  }

let test_multicast_delivers_to_all () =
  let f, shared = two_receiver_fixture () in
  let s = Session.connect f.disp_a ~peers:[ f.b; f.c ] ~scs:mcast_scs () in
  Engine.run f.engine ~until:(Time.ms 50);
  check_bool "established with both" true (Session.state s = Session.Established);
  Session.send s ~bytes:50_000 ();
  Engine.run f.engine ~until:(Time.sec 10.0);
  check_int "b complete" 50_000 (received_bytes f f.b);
  check_int "c complete" 50_000 (received_bytes f f.c);
  (* Data crossed the shared hop once per segment, not twice. *)
  let data_carried = (Link.stats shared).Link.accepted in
  check_bool "shared hop not duplicated" true (data_carried < 80);
  Session.close s;
  Engine.run f.engine

let test_multicast_nack_repair () =
  let f, _ = two_receiver_fixture () in
  (* Make c's tail lossy: c must NACK and get unicast repairs, b unaffected. *)
  let tail_c = List.nth (Option.get (Topology.route f.topo ~src:f.a ~dst:f.c)) 1 in
  ignore tail_c;
  (* Drop via a tiny queue instead: rebuild with queue 2. *)
  let shared = Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~mtu:1500 () in
  let tail_b = Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~mtu:1500 () in
  let tail_c = Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64 ~ber:2e-5 ~mtu:1500 () in
  let f = make_fixture ~path_ab:[ shared; tail_b ] ~path_ac:[ shared; tail_c ] () in
  let s = Session.connect f.disp_a ~peers:[ f.b; f.c ] ~scs:mcast_scs () in
  Engine.run f.engine ~until:(Time.ms 50);
  Session.send s ~bytes:100_000 ();
  Engine.run f.engine ~until:(Time.sec 20.0);
  check_int "b complete" 100_000 (received_bytes f f.b);
  check_int "c repaired to complete" 100_000 (received_bytes f f.c);
  check_bool "nacks flowed" true (Unites.aggregate_total f.unites Unites.Nacks_sent > 0.0);
  Session.close s;
  Engine.run f.engine

let test_multicast_add_remove_peer () =
  let f, _ = two_receiver_fixture () in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs:mcast_scs () in
  Engine.run f.engine ~until:(Time.ms 50);
  Session.send s ~bytes:20_000 ();
  Engine.run f.engine ~until:(Time.sec 2.0);
  (* c joins mid-stream: it must receive from the join point onward without
     stalling on the history it never saw. *)
  Session.add_peer s f.c;
  Engine.run f.engine ~until:(Time.sec 2.5);
  Session.send s ~bytes:20_000 ();
  Engine.run f.engine ~until:(Time.sec 6.0);
  check_int "b has everything" 40_000 (received_bytes f f.b);
  check_int "c has the second half" 20_000 (received_bytes f f.c);
  Session.remove_peer s f.c;
  Engine.run f.engine ~until:(Time.sec 6.5);
  Session.send s ~bytes:10_000 ();
  Engine.run f.engine ~until:(Time.sec 10.0);
  check_int "b got the tail too" 50_000 (received_bytes f f.b);
  check_int "c stopped receiving" 20_000 (received_bytes f f.c);
  Session.close s;
  Engine.run f.engine

(* ------------------------------------------------------------------ FEC *)

let fec_scs =
  {
    Scs.default with
    Scs.connection = Params.Two_way;
    transmission = Params.Rate_based { rate_bps = 2e6; burst = 4 };
    reporting = Params.No_report;
    recovery = Params.Forward_error_correction { group = 4 };
    ordering = Params.Ordered;
    segment_bytes = 1000;
  }

let test_fec_recovers_without_retransmission () =
  let f = make_fixture ~path_ab:(noisy_lan ~ber:3e-6 ()) () in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs:fec_scs () in
  Engine.run f.engine ~until:(Time.ms 50);
  Session.send s ~bytes:200_000 ();
  Engine.run f.engine ~until:(Time.sec 10.0);
  Session.close s;
  Engine.run f.engine ~until:(Time.sec 20.0);
  check_bool "parity flowed" true
    (Unites.aggregate_total f.unites Unites.Fec_parity_sent > 0.0);
  check_bool "recovered losses" true
    (Unites.aggregate_total f.unites Unites.Fec_recovered > 0.0);
  Alcotest.(check (float 0.0)) "zero retransmissions" 0.0
    (Unites.aggregate_total f.unites Unites.Retransmissions);
  (* Most data arrives; double losses within a group are genuinely gone. *)
  check_bool "nearly complete" true (received_bytes f f.b > 195_000);
  Alcotest.(check (list int)) "still ordered, no dups"
    (List.sort_uniq compare (received_seqs f f.b))
    (received_seqs f f.b)

let test_ordered_no_arq_skips_gaps () =
  (* Without recovery, an ordered stream must not stall on a lost segment. *)
  let f = make_fixture ~path_ab:(noisy_lan ~ber:8e-6 ()) () in
  let scs =
    {
      fec_scs with
      Scs.recovery = Params.No_recovery;
      initial_rto = Time.ms 40;
    }
  in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Engine.run f.engine ~until:(Time.ms 50);
  Session.send s ~bytes:100_000 ();
  Engine.run f.engine ~until:(Time.sec 20.0);
  let seqs = received_seqs f f.b in
  check_bool "something lost" true (List.length seqs < 100);
  check_bool "but stream advanced past gaps" true
    (List.length seqs > 60 && List.nth seqs (List.length seqs - 1) > 90);
  check_bool "monotonic order" true
    (fst
       (List.fold_left
          (fun (ok, prev) s -> (ok && s > prev, s))
          (true, -1) seqs));
  check_bool "skips counted" true
    (Unites.aggregate_total f.unites Unites.Losses_unrecovered > 0.0);
  Session.close ~graceful:false s;
  Engine.run f.engine ~until:(Time.sec 21.0)

(* --------------------------------------------------------------- playout *)

let test_playout_smooths_jitter () =
  let f = make_fixture ~path_ab:(lan ()) () in
  let scs =
    {
      fec_scs with
      Scs.recovery = Params.No_recovery;
      delivery = Params.Playout { target = Time.ms 60 };
    }
  in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Engine.run f.engine ~until:(Time.ms 10);
  (* Send frames with irregular submission: all stamped at submission. *)
  for i = 0 to 19 do
    ignore
      (Engine.schedule f.engine ~at:(Time.ms (10 + (20 * i))) (fun () ->
           Session.send s ~bytes:1000 ()))
  done;
  Engine.run f.engine ~until:(Time.sec 3.0);
  let ds = received f f.b in
  check_int "all frames" 20 (List.length ds);
  (* Every delivery is exactly playout-target after its stamp. *)
  List.iter
    (fun d ->
      check_int "constant latency at playout point" (Time.ms 60)
        (Time.diff d.Session.delivered_at d.Session.app_stamp))
    ds;
  Session.close s;
  Engine.run f.engine

let test_playout_late_discard () =
  (* A playout target smaller than the path delay discards everything. *)
  let f = make_fixture ~path_ab:(wan ()) () in
  let scs =
    {
      fec_scs with
      Scs.recovery = Params.No_recovery;
      delivery = Params.Playout { target = Time.ms 5 };
    }
  in
  let s = Session.connect f.disp_a ~peers:[ f.b ] ~scs () in
  Engine.run f.engine ~until:(Time.ms 100);
  Session.send s ~bytes:5_000 ();
  Engine.run f.engine ~until:(Time.sec 2.0);
  check_int "nothing playable" 0 (received_bytes f f.b);
  check_bool "late discards counted" true
    (Unites.aggregate_total f.unites Unites.Late_discards > 0.0);
  Session.close ~graceful:false s

let suite =
  [
    ( "session.reliability",
      [
        Alcotest.test_case "go-back-n clean transfer" `Quick test_gbn_clean_transfer;
        Alcotest.test_case "go-back-n recovers queue loss" `Quick
          test_gbn_recovers_from_queue_loss;
        Alcotest.test_case "selective repeat recovers" `Quick test_selective_repeat_recovers;
        Alcotest.test_case "SR wastes less than GBN" `Quick
          test_selective_repeat_wastes_less;
        Alcotest.test_case "stop and wait" `Quick test_stop_and_wait;
        Alcotest.test_case "corruption detected and repaired" `Quick
          test_corruption_detected_and_recovered;
        Alcotest.test_case "no detection delivers damage" `Quick
          test_no_detection_delivers_damage;
        Alcotest.test_case "mechanism compatibility matrix" `Slow
          test_mechanism_compatibility_matrix;
      ] );
    ( "session.transmission",
      [
        Alcotest.test_case "rate pacing" `Quick test_rate_pacing;
        Alcotest.test_case "peer window respected" `Quick
          test_window_respects_peer_advertisement;
        Alcotest.test_case "slow start ramps" `Quick test_slow_start_ramp;
      ] );
    ( "session.connection",
      [
        Alcotest.test_case "implicit saves a round trip" `Quick
          test_implicit_saves_round_trip;
        Alcotest.test_case "three-way handshake" `Quick test_three_way_extra_control;
        Alcotest.test_case "orphan data uses defaults" `Quick
          test_orphan_data_accepted_with_defaults;
        Alcotest.test_case "negotiation counter-proposal" `Quick
          test_negotiation_counter_proposal;
        Alcotest.test_case "graceful close drains" `Quick test_graceful_close_drains;
        Alcotest.test_case "abort may lose data" `Quick test_abort_may_lose_data;
        Alcotest.test_case "send after close rejected" `Quick
          test_send_after_close_rejected;
      ] );
    ( "session.signaling",
      [ Alcotest.test_case "signal round trip" `Quick test_signal_round_trip ] );
    ( "session.reconfiguration",
      [
        Alcotest.test_case "segue GBN->SR without loss" `Quick test_segue_gbn_to_sr_no_loss;
        Alcotest.test_case "live rate change" `Quick test_segue_rate_change_live;
        Alcotest.test_case "static template refuses" `Quick
          test_static_template_refuses_live_reconfig;
      ] );
    ( "session.multicast",
      [
        Alcotest.test_case "delivers to all members" `Quick test_multicast_delivers_to_all;
        Alcotest.test_case "nack repair" `Quick test_multicast_nack_repair;
        Alcotest.test_case "dynamic membership" `Quick test_multicast_add_remove_peer;
      ] );
    ( "session.fec",
      [
        Alcotest.test_case "FEC recovers without retransmission" `Quick
          test_fec_recovers_without_retransmission;
        Alcotest.test_case "ordered no-ARQ skips gaps" `Quick test_ordered_no_arq_skips_gaps;
      ] );
    ( "session.playout",
      [
        Alcotest.test_case "smooths jitter to zero" `Quick test_playout_smooths_jitter;
        Alcotest.test_case "late discard" `Quick test_playout_late_discard;
      ] );
  ]
