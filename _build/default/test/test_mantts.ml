(* Tests for the MANTTS policy subsystem: classification, the Stage II
   derivation rules, negotiation, and data-phase adaptation. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let stack_with path =
  let stack = Adaptive.create_stack ~seed:11 () in
  let a = Adaptive.add_host stack "a" in
  let b = Adaptive.add_host stack "b" in
  Adaptive.connect_hosts stack a b path;
  (stack, a, b)

let acd_for ?explicit_tsc ?tsa qos b = Acd.make ?explicit_tsc ?tsa ~participants:[ b ] ~qos ()

(* ---------------------------------------------------------------- stages *)

let test_classify_explicit_override () =
  let (_, _, b) = stack_with (Profiles.lan_path ()) in
  let acd =
    acd_for ~explicit_tsc:Tsc.Realtime_non_isochronous
      { Qos.default with Qos.isochronous = true; interactive = true }
      b
  in
  check_bool "explicit wins" true (Mantts.classify acd = Tsc.Realtime_non_isochronous);
  let implicit = acd_for { Qos.default with Qos.isochronous = true; interactive = true } b in
  check_bool "otherwise stage I" true
    (Mantts.classify implicit = Tsc.Interactive_isochronous)

let test_sample_paths () =
  let stack = Adaptive.create_stack ~seed:3 () in
  let a = Adaptive.add_host stack "a" in
  let b = Adaptive.add_host stack "b" in
  Adaptive.connect_hosts stack a b (Profiles.satellite_path ());
  let acd = acd_for Qos.default b in
  let path = Mantts.sample_paths stack.Adaptive.mantts ~src:a acd in
  check_int "min mtu" 1500 path.Mantts.mtu;
  check_bool "bottleneck 10M" true (path.Mantts.bottleneck_bps = 10e6);
  check_bool "rtt includes satellite" true (path.Mantts.rtt > Time.ms 500);
  check_bool "ber is worst hop" true (path.Mantts.worst_ber >= 1e-7);
  check_int "hops" 3 path.Mantts.hop_count

let derive stack src acd =
  let tsc = Mantts.classify acd in
  Mantts.derive_scs stack.Adaptive.mantts ~src acd tsc

let test_derive_voice_on_lan () =
  let stack, a, b = stack_with (Profiles.lan_path ()) in
  let scs = derive stack a (acd_for (Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Voice_conversation) b) in
  check_bool "rate paced" true
    (match scs.Scs.transmission with Params.Rate_based _ -> true | _ -> false);
  check_bool "playout" true
    (match scs.Scs.delivery with Params.Playout _ -> true | _ -> false);
  check_bool "no recovery on short path" true (scs.Scs.recovery = Params.No_recovery);
  check_bool "no reports" true (scs.Scs.reporting = Params.No_report);
  check_bool "implicit setup" true (scs.Scs.connection = Params.Implicit);
  check_bool "unordered" true (scs.Scs.ordering = Params.Unordered);
  (* Table 1: voice conversation requests no priority delivery. *)
  check_int "default priority" 4 scs.Scs.priority

let test_derive_bulk_on_lfn () =
  let stack, a, b = stack_with (Profiles.bisdn_path ()) in
  let scs = derive stack a (acd_for Qos.default b) in
  (* 155 Mb/s x ~60 ms RTT is a long fat network: needs a large scaled
     window and selective repeat. *)
  (match scs.Scs.transmission with
  | Params.Sliding_window { window } ->
    check_bool "window scaled beyond 64KiB-equivalent" true (window > 64)
  | Params.Rate_based _ | Params.Stop_and_wait -> Alcotest.fail "expected window");
  check_bool "selective repeat" true (scs.Scs.recovery = Params.Selective_repeat);
  check_bool "sack reporting" true
    (match scs.Scs.reporting with Params.Selective_ack _ -> true | _ -> false);
  check_bool "congestion control on multi-hop" true
    (match scs.Scs.congestion with Params.Slow_start _ -> true | _ -> false)

let test_derive_media_on_satellite_uses_fec () =
  let stack, a, b = stack_with (Profiles.satellite_path ()) in
  let scs =
    derive stack a
      (acd_for (Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Video_compressed) b)
  in
  check_bool "FEC over long delay" true
    (match scs.Scs.recovery with Params.Forward_error_correction _ -> true | _ -> false)

let test_derive_multicast_teleconference () =
  let stack = Adaptive.create_stack ~seed:5 () in
  let a = Adaptive.add_host stack "src" in
  let b = Adaptive.add_host stack "r1" in
  let c = Adaptive.add_host stack "r2" in
  Adaptive.connect_hosts stack a b (Profiles.lan_path ());
  Adaptive.connect_hosts stack a c (Profiles.lan_path ());
  let acd =
    Acd.make ~participants:[ b; c ]
      ~qos:(Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Teleconferencing)
      ()
  in
  let scs = derive stack a acd in
  check_bool "rate paced for fan-out" true
    (match scs.Scs.transmission with Params.Rate_based _ -> true | _ -> false);
  check_bool "no congestion window" true
    (scs.Scs.congestion = Params.No_congestion_control)

let test_derive_segment_fits_mtu () =
  let stack, a, b = stack_with (Profiles.internet_path ()) in
  let scs = derive stack a (acd_for Qos.default b) in
  (* Smallest MTU on the internet path is the 576-byte T1 hop. *)
  check_bool "segment under path mtu" true (scs.Scs.segment_bytes <= 576 - 32);
  check_bool "detection at least checksum" true (scs.Scs.detection <> Params.No_detection)

let test_derive_interactive_oltp () =
  let stack, a, b = stack_with (Profiles.lan_path ()) in
  let scs =
    derive stack a (acd_for (Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Oltp) b)
  in
  check_bool "implicit for request-response" true (scs.Scs.connection = Params.Implicit);
  (match scs.Scs.transmission with
  | Params.Sliding_window { window } -> check_bool "small window" true (window <= 8)
  | Params.Rate_based _ | Params.Stop_and_wait -> Alcotest.fail "expected small window")

(* ------------------------------------------------------- table 1 checks *)

let test_stage1_agrees_with_table1 () =
  List.iter
    (fun app ->
      let qos = Adaptive_workloads.Workloads.qos app in
      Alcotest.(check string)
        (Adaptive_workloads.Workloads.name app)
        (Tsc.name (Adaptive_workloads.Workloads.expected_tsc app))
        (Tsc.name (Tsc.classify qos)))
    Adaptive_workloads.Workloads.all

(* ---------------------------------------------------------- negotiation *)

let test_open_session_end_to_end () =
  let stack, a, b = stack_with (Profiles.lan_path ()) in
  let got = ref 0 in
  Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts b) (fun _ d ->
      got := !got + d.Session.bytes);
  let acd = acd_for Qos.default b in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd ~name:"m1" () in
  Session.send s ~bytes:100_000 ();
  Adaptive.run stack ~until:(Time.sec 30.0);
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 60.0);
  check_int "delivered through MANTTS" 100_000 !got;
  check_bool "closed" true (Session.state s = Session.Closed)

let test_negotiation_clamps_to_pool () =
  let stack = Adaptive.create_stack ~seed:9 () in
  let a = Adaptive.add_host stack "a" in
  (* The responder can only commit 16 buffer segments. *)
  let b = Adaptive.add_host ~buffer_segments:16 stack "b" in
  Adaptive.connect_hosts stack a b (Profiles.bisdn_path ());
  let acd = acd_for Qos.default b in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  Adaptive.run stack ~until:(Time.sec 2.0);
  check_bool "established" true (Session.state s = Session.Established);
  check_bool "adopted clamped buffer" true ((Session.scs s).Scs.recv_buffer_segments <= 16);
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack

let test_pool_commitment_and_release () =
  (* A 100-segment pool: the first big session commits most of it, the
     second gets the remainder; closing the first returns its buffers
     (§4.1.3). *)
  let stack = Adaptive.create_stack ~seed:13 () in
  let a = Adaptive.add_host stack "a" in
  let b = Adaptive.add_host ~buffer_segments:100 stack "b" in
  Adaptive.connect_hosts stack a b (Profiles.bisdn_path ());
  let open_one () =
    let acd = Acd.make ~participants:[ b ] ~qos:Qos.default () in
    let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
    Adaptive.run stack ~until:(Time.add (Adaptive.now stack) (Time.sec 2.0));
    s
  in
  let s1 = open_one () in
  let b1 = (Session.scs s1).Scs.recv_buffer_segments in
  check_bool "first session gets a large share" true (b1 >= 90);
  let s2 = open_one () in
  let b2 = (Session.scs s2).Scs.recv_buffer_segments in
  check_bool "second session squeezed by commitments" true (b2 <= 100 - b1 + 4);
  (* Release the first session's buffers... *)
  Mantts.close_session stack.Adaptive.mantts s1;
  Adaptive.run stack ~until:(Time.add (Adaptive.now stack) (Time.sec 5.0));
  check_bool "first closed" true (Session.state s1 = Session.Closed);
  let s3 = open_one () in
  check_bool "released buffers are reusable" true
    ((Session.scs s3).Scs.recv_buffer_segments >= 80);
  Mantts.close_session stack.Adaptive.mantts s2;
  Mantts.close_session stack.Adaptive.mantts s3;
  Adaptive.run stack ~until:(Time.add (Adaptive.now stack) (Time.sec 10.0))

(* ----------------------------------------------------------- adaptation *)

let congestion_scenario () =
  let stack = Adaptive.create_stack ~seed:21 () in
  let a = Adaptive.add_host stack "a" in
  let b = Adaptive.add_host stack "b" in
  let hops = Profiles.campus_path () in
  Adaptive.connect_hosts stack a b hops;
  (stack, a, b, List.nth hops 1)

let test_congestion_switches_recovery () =
  let stack, a, b, backbone = congestion_scenario () in
  (* Heavy cross traffic arrives at 1 s and clears at 6 s. *)
  Congestion.phases stack.Adaptive.engine backbone
    [ (Time.sec 1.0, 0.85); (Time.sec 6.0, 0.05) ];
  let acd = acd_for Qos.default b in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  (* Keep traffic flowing so the session stays alive. *)
  let rec feed t =
    if t < 9.0 then
      ignore
        (Engine.schedule stack.Adaptive.engine ~at:(Time.sec t) (fun () ->
             if Session.state s = Session.Established then Session.send s ~bytes:20_000 ();
             feed (t +. 0.25)))
  in
  feed 0.1;
  Adaptive.run stack ~until:(Time.sec 3.0);
  check_bool "switched to selective repeat under congestion" true
    ((Session.scs s).Scs.recovery = Params.Selective_repeat);
  Adaptive.run stack ~until:(Time.sec 9.0);
  check_bool "restored go-back-n when congestion subsided" true
    ((Session.scs s).Scs.recovery = Params.Go_back_n);
  let log = Mantts.adaptations stack.Adaptive.mantts in
  check_bool "both adaptations logged" true (List.length log >= 2);
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 20.0)

let test_route_change_to_satellite_switches_fec () =
  let stack = Adaptive.create_stack ~seed:31 () in
  let a = Adaptive.add_host stack "a" in
  let b = Adaptive.add_host stack "b" in
  let terrestrial = Profiles.campus_path () in
  Adaptive.connect_hosts stack a b terrestrial;
  let acd =
    acd_for (Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Video_compressed) b
  in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  Adaptive.run stack ~until:(Time.ms 500);
  check_bool "no FEC on terrestrial route" true
    ((Session.scs s).Scs.recovery = Params.No_recovery);
  (* An intermediate failure reroutes over the satellite (§4.1.2). *)
  ignore
    (Engine.schedule stack.Adaptive.engine ~at:(Time.sec 1.0) (fun () ->
         Topology.set_symmetric_route stack.Adaptive.topology ~a ~b
           (Profiles.satellite_path ())));
  let rec feed t =
    if t < 4.0 then
      ignore
        (Engine.schedule stack.Adaptive.engine ~at:(Time.sec t) (fun () ->
             if Session.state s = Session.Established then Session.send s ~bytes:10_000 ();
             feed (t +. 0.2)))
  in
  feed 0.6;
  Adaptive.run stack ~until:(Time.sec 4.0);
  check_bool "switched to FEC on long-delay route" true
    (match (Session.scs s).Scs.recovery with
    | Params.Forward_error_correction _ -> true
    | _ -> false);
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 10.0)

let test_rate_scaling_under_congestion () =
  let stack, a, b, backbone = congestion_scenario () in
  Congestion.phases stack.Adaptive.engine backbone [ (Time.sec 1.0, 0.9) ];
  let acd =
    acd_for (Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Voice_conversation) b
  in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  let original_rate =
    match (Session.scs s).Scs.transmission with
    | Params.Rate_based { rate_bps; _ } -> rate_bps
    | _ -> Alcotest.fail "expected rate pacing"
  in
  let rec feed t =
    if t < 4.0 then
      ignore
        (Engine.schedule stack.Adaptive.engine ~at:(Time.sec t) (fun () ->
             if Session.state s = Session.Established then Session.send s ~bytes:160 ();
             feed (t +. 0.02)))
  in
  feed 0.05;
  Adaptive.run stack ~until:(Time.sec 4.0);
  let rate_now =
    match (Session.scs s).Scs.transmission with
    | Params.Rate_based { rate_bps; _ } -> rate_bps
    | _ -> Alcotest.fail "still rate paced"
  in
  check_bool "inter-PDU gap widened" true (rate_now < original_rate);
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 10.0)

let test_renegotiate_adjusts_tsc () =
  let stack, a, b = stack_with (Profiles.lan_path ()) in
  (* Open as bulk transfer... *)
  let acd = acd_for Qos.default b in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  Adaptive.run stack ~until:(Time.ms 100);
  check_bool "starts reliable" true (Scs.reliable (Session.scs s));
  (* ...then the application becomes an isochronous media source. *)
  let media =
    acd_for (Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Video_compressed) b
  in
  (match Mantts.renegotiate ~acd:media stack.Adaptive.mantts s with
  | Ok changed -> check_bool "components changed" true (List.length changed >= 3)
  | Error e -> Alcotest.fail e);
  check_bool "now rate paced" true
    (match (Session.scs s).Scs.transmission with
    | Params.Rate_based _ -> true
    | _ -> false);
  check_bool "now playout buffered" true
    (match (Session.scs s).Scs.delivery with Params.Playout _ -> true | _ -> false);
  check_bool "connection choice untouched" true
    ((Session.scs s).Scs.connection = Params.Three_way);
  check_bool "logged" true
    (List.exists
       (fun (_, _, what) -> String.length what > 12 && String.sub what 0 12 = "renegotiated")
       (Mantts.adaptations stack.Adaptive.mantts));
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 5.0)

let test_renegotiate_requires_monitor () =
  let stack, a, b = stack_with (Profiles.lan_path ()) in
  let disp = Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a) in
  let s = Session.connect disp ~peers:[ b ] ~scs:Scs.default () in
  (match Mantts.renegotiate stack.Adaptive.mantts s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sessions without a monitor must be rejected");
  Session.close ~graceful:false s

let test_tmc_restricts_metrics () =
  let stack, a, b = stack_with (Profiles.lan_path ()) in
  let tmc =
    { Acd.collect = [ Unites.Setup_latency; Unites.Segments_delivered ];
      sample_every = Time.sec 1.0 }
  in
  let acd = Acd.make ~tmc ~participants:[ b ] ~qos:Qos.default () in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  Session.send s ~bytes:50_000 ();
  Adaptive.run stack ~until:(Time.sec 10.0);
  let u = stack.Adaptive.unites in
  let id = Session.id s in
  check_bool "requested whitebox metric collected" true
    (Unites.stats u ~session:id Unites.Segments_delivered <> None);
  check_bool "unrequested whitebox metric suppressed" true
    (Unites.stats u ~session:id Unites.Segments_sent = None);
  check_bool "blackbox always collected" true (Unites.stats u ~session:id Unites.Rtt <> None);
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 20.0)

let test_short_sessions_not_monitored () =
  (* The same congestion scenario that triggers a recovery switch for a
     long session leaves a sub-2-second session alone (§4.1.1). *)
  let stack, a, b, backbone = congestion_scenario () in
  Congestion.constant backbone 0.9;
  let qos = { Qos.default with Qos.duration = Some (Time.ms 500) } in
  let acd = acd_for qos b in
  let s = Mantts.open_session stack.Adaptive.mantts ~src:a ~acd () in
  let recovery0 = (Session.scs s).Scs.recovery in
  let rec feed t =
    if t < 3.0 then
      ignore
        (Engine.schedule stack.Adaptive.engine ~at:(Time.sec t) (fun () ->
             if Session.state s = Session.Established then Session.send s ~bytes:20_000 ();
             feed (t +. 0.25)))
  in
  feed 0.1;
  Adaptive.run stack ~until:(Time.sec 3.0);
  check_bool "no adaptation for a short-lived session" true
    ((Session.scs s).Scs.recovery = recovery0
    && Mantts.adaptations stack.Adaptive.mantts = []);
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack ~until:(Time.sec 30.0)

let test_user_tsa_notify () =
  let stack, a, b = stack_with (Profiles.lan_path ()) in
  let notified = ref [] in
  let tsa =
    [
      {
        Acd.condition = Acd.Receivers_below 2;
        action = Acd.Notify_application "membership-low";
        once = true;
      };
    ]
  in
  let acd = acd_for ~tsa Qos.default b in
  let s =
    Mantts.open_session stack.Adaptive.mantts ~src:a ~acd
      ~on_notify:(fun _ msg -> notified := msg :: !notified)
      ()
  in
  Adaptive.run stack ~until:(Time.sec 2.0);
  Alcotest.(check (list string)) "one-shot rule fired once" [ "membership-low" ] !notified;
  Mantts.close_session stack.Adaptive.mantts s;
  Adaptive.run stack

let test_synchronized_streams () =
  (* Audio over the LAN, video over the satellite: synchronization lifts
     the audio playout point to the video's, so both streams deliver at
     matching latency (lip sync). *)
  let stack = Adaptive.create_stack ~seed:15 () in
  let src = Adaptive.add_host stack "studio" in
  let snd_sink = Adaptive.add_host stack "speaker" in
  let vid_sink = Adaptive.add_host stack "screen" in
  Adaptive.connect_hosts stack src snd_sink (Profiles.lan_path ());
  Adaptive.connect_hosts stack src vid_sink (Profiles.satellite_path ());
  let audio_lat = ref [] and video_lat = ref [] in
  let record cell _ (d : Session.delivery) =
    cell := Time.to_sec (Time.diff d.Session.delivered_at d.Session.app_stamp) :: !cell
  in
  Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts snd_sink) (record audio_lat);
  Mantts.set_app_handler (Mantts.entity stack.Adaptive.mantts vid_sink) (record video_lat);
  let audio =
    Mantts.open_session stack.Adaptive.mantts ~src
      ~acd:
        (Acd.make ~participants:[ snd_sink ]
           ~qos:(Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Voice_conversation)
           ())
      ()
  in
  let video =
    Mantts.open_session stack.Adaptive.mantts ~src
      ~acd:
        (Acd.make ~participants:[ vid_sink ]
           ~qos:(Adaptive_workloads.Workloads.qos Adaptive_workloads.Workloads.Video_compressed)
           ())
      ()
  in
  Mantts.synchronize stack.Adaptive.mantts [ audio; video ];
  (* Paced frames on both streams. *)
  let rec frames i =
    if i < 100 then
      ignore
        (Engine.schedule stack.Adaptive.engine
           ~at:(Time.add (Time.ms 200) (i * Time.ms 33))
           (fun () ->
             if Session.state audio = Session.Established then Session.send audio ~bytes:160 ();
             if Session.state video = Session.Established then Session.send video ~bytes:8_000 ();
             frames (i + 1)))
  in
  frames 0;
  Adaptive.run stack ~until:(Time.sec 8.0);
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
  let a = mean !audio_lat and v = mean !video_lat in
  check_bool "both streams delivered" true
    (List.length !audio_lat > 50 && List.length !video_lat > 50);
  (* Without sync the audio would arrive in ~35 ms; aligned it must sit
     within 20% of the video's playout latency. *)
  check_bool "audio delayed to match video" true (Float.abs (a -. v) < 0.2 *. v);
  check_bool "sync logged" true
    (List.exists
       (fun (_, _, what) ->
         String.length what >= 12 && String.sub what 0 12 = "synchronized")
       (Mantts.adaptations stack.Adaptive.mantts));
  Mantts.close_session stack.Adaptive.mantts audio;
  Mantts.close_session stack.Adaptive.mantts video;
  Adaptive.run stack ~until:(Time.sec 15.0)

let suite =
  [
    ( "mantts.stages",
      [
        Alcotest.test_case "explicit TSC override" `Quick test_classify_explicit_override;
        Alcotest.test_case "network sampling" `Quick test_sample_paths;
        Alcotest.test_case "voice on LAN" `Quick test_derive_voice_on_lan;
        Alcotest.test_case "bulk on LFN" `Quick test_derive_bulk_on_lfn;
        Alcotest.test_case "media on satellite uses FEC" `Quick
          test_derive_media_on_satellite_uses_fec;
        Alcotest.test_case "multicast teleconference" `Quick
          test_derive_multicast_teleconference;
        Alcotest.test_case "segment fits path MTU" `Quick test_derive_segment_fits_mtu;
        Alcotest.test_case "interactive OLTP" `Quick test_derive_interactive_oltp;
        Alcotest.test_case "stage I agrees with Table 1" `Quick
          test_stage1_agrees_with_table1;
      ] );
    ( "mantts.negotiation",
      [
        Alcotest.test_case "open session end to end" `Quick test_open_session_end_to_end;
        Alcotest.test_case "buffer clamped to pool" `Quick test_negotiation_clamps_to_pool;
        Alcotest.test_case "pool commitment and release" `Quick
          test_pool_commitment_and_release;
      ] );
    ( "mantts.adaptation",
      [
        Alcotest.test_case "congestion switches GBN->SR and back" `Quick
          test_congestion_switches_recovery;
        Alcotest.test_case "route change to satellite switches FEC" `Quick
          test_route_change_to_satellite_switches_fec;
        Alcotest.test_case "rate scaling under congestion" `Quick
          test_rate_scaling_under_congestion;
        Alcotest.test_case "user TSA notify (one-shot)" `Quick test_user_tsa_notify;
        Alcotest.test_case "renegotiate adjusts the TSC" `Quick
          test_renegotiate_adjusts_tsc;
        Alcotest.test_case "renegotiate requires a monitor" `Quick
          test_renegotiate_requires_monitor;
        Alcotest.test_case "TMC restricts collection" `Quick test_tmc_restricts_metrics;
        Alcotest.test_case "short sessions are not monitored" `Quick
          test_short_sessions_not_monitored;
        Alcotest.test_case "synchronized streams (lip sync)" `Quick
          test_synchronized_streams;
      ] );
  ]
