(* E9 — the chaos soak: randomized fault schedules against a full
   two-session stack in three interoperation environments, with the
   invariant checker watching every delivery, counter and policy
   decision (§4.1.2's implicit-reconfiguration triggers, exercised
   adversarially).  Also self-tests the failure machinery: a sabotaged
   run must be caught and shrink to a one-fault minimal repro. *)

open Adaptive_sim
open Adaptive_chaos

let smoke = ref false

let e9_chaos () =
  Util.heading "E9 — chaos soak: fault injection under invariant checking (§4.1.2)";
  let schedules = if !smoke then 25 else 210 in
  let seed = 4242 in
  let jobs = !Util.jobs in
  Util.row "soaking %d randomized schedule(s), base seed %d, environments %s, %d job(s)@."
    schedules seed
    (String.concat ", " (List.map Soak.environment_name Soak.all_environments))
    jobs;
  let report = Soak.soak_par ~jobs ~seed ~schedules () in
  let outcomes = report.Soak.r_outcomes in
  let injected =
    List.fold_left (fun acc o -> acc + o.Soak.o_injected) 0 outcomes
  in
  let delivered =
    List.fold_left (fun acc o -> acc + o.Soak.o_delivered) 0 outcomes
  in
  Util.row "  %d fault(s) injected, %d application deliveries, %d failure(s)@."
    injected delivered
    (List.length report.Soak.r_failures);
  List.iter
    (fun env ->
      let mine =
        List.filter (fun o -> o.Soak.o_env = env) outcomes
      in
      let faults = List.fold_left (fun a o -> a + o.Soak.o_injected) 0 mine in
      let failovers = List.fold_left (fun a o -> a + o.Soak.o_failovers) 0 mine in
      let switches = List.fold_left (fun a o -> a + o.Soak.o_switches) 0 mine in
      Util.row "  %-10s %3d run(s) %4d fault(s) %4d failover(s) %4d switch(es)@."
        (Soak.environment_name env)
        (List.length mine) faults failovers switches)
    Soak.all_environments;
  (* Per-class injection counts and time-to-recover distributions. *)
  Util.row "@.  %-17s %9s %10s %10s %10s %10s@." "fault class" "injected"
    "recovered" "ttr p50" "ttr p95" "ttr max";
  let all_recoveries = List.concat_map (fun o -> o.Soak.o_recoveries) outcomes in
  let classes_covered = ref 0 in
  List.iter
    (fun cls ->
      let count =
        List.fold_left
          (fun acc o ->
            acc
            + List.length
                (List.filter (fun f -> f.Fault.cls = cls) o.Soak.o_schedule))
          0 outcomes
      in
      if count > 0 then incr classes_covered;
      let ttrs =
        List.sort compare
          (List.filter_map
             (fun (c, ttr) -> if c = cls then Some ttr else None)
             all_recoveries)
      in
      let n = List.length ttrs in
      let pct q =
        if n = 0 then 0.0 else List.nth ttrs (min (n - 1) (n * q / 100))
      in
      Util.row "  %-17s %9d %10d %9.3fs %9.3fs %9.3fs@." (Fault.class_name cls)
        count n (pct 50) (pct 95) (pct 100))
    Fault.all_classes;
  (match outcomes with
  | first :: _ ->
    Util.row "@.sample run (seed %d, %s) UNITES report:@.%s@." first.Soak.o_seed
      (Soak.environment_name first.Soak.o_env)
      first.Soak.o_unites
  | [] -> ());
  List.iter
    (fun ((o : Soak.outcome), (s : Soak.shrink_result)) ->
      Format.printf "@.FAILURE:@.%a@." Soak.pp_repro o;
      List.iter
        (fun v -> Format.printf "  %a@." Invariant.pp_violation v)
        o.Soak.o_violations;
      Format.printf "minimal repro (%d -> %d fault(s), %d re-run(s)):@.%a@."
        s.Soak.s_original
        (List.length s.Soak.s_minimal)
        s.Soak.s_runs Soak.pp_repro s.Soak.s_outcome)
    report.Soak.r_failures;
  Util.shape_check
    (Printf.sprintf "all invariants hold across %d randomized schedules" schedules)
    (report.Soak.r_failures = []);
  Util.shape_check "every fault class exercised" (!classes_covered = 8);
  Util.shape_check "recoveries observed after faults" (all_recoveries <> []);
  (* Replay determinism: the same seed must reproduce the same schedule
     and the same trace hash, bit for bit. *)
  let a = Soak.run_one ~env:Soak.Campus ~seed:4242 () in
  let b = Soak.run_one ~env:Soak.Campus ~seed:4242 () in
  Util.shape_check "replay: same seed, same schedule, same trace hash"
    (a.Soak.o_schedule = b.Soak.o_schedule
    && Int64.equal a.Soak.o_hash b.Soak.o_hash
    && a.Soak.o_delivered = b.Soak.o_delivered);
  (* Shrinker self-test: a planted violation on the one ber_burst in a
     five-fault schedule must be detected and shrink to that fault. *)
  let f cls start =
    {
      Fault.cls;
      start = Time.ms start;
      duration = Time.ms 800;
      target = 0;
      intensity = 0.5;
    }
  in
  let sabotage_schedule =
    [
      f Fault.Link_down 1600;
      f Fault.Congestion_storm 2400;
      f Fault.Ber_burst 3200;
      f Fault.Host_stall 4000;
      f Fault.Mtu_shrink 4800;
    ]
  in
  let failing =
    Soak.run_schedule ~sabotage:true ~env:Soak.Campus ~seed:5 sabotage_schedule
  in
  let shrunk =
    Soak.shrink ~sabotage:true ~env:Soak.Campus ~seed:5 sabotage_schedule
  in
  Format.printf "@.sabotage self-test shrink (%d re-runs):@.%a@."
    shrunk.Soak.s_runs Soak.pp_repro shrunk.Soak.s_outcome;
  Util.shape_check "sabotaged run is caught" (not (Soak.ok failing));
  Util.shape_check "shrinks 5 faults to the 1 sabotaged ber_burst"
    (match shrunk.Soak.s_minimal with
    | [ m ] -> m.Fault.cls = Fault.Ber_burst
    | _ -> false)
