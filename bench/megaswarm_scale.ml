(* e13_megaswarm_scale — partitioned many-session scale (MEGASWARM).

   The megaswarm workload spreads session churn across logical
   partitions joined by a constant-latency WAN and executes them over
   OCaml 5 domains with conservative barrier-window synchronization
   (Shard).  Per scale the experiment reports events per wall-clock
   second plus the tick-cost breakdown the O(active) control plane is
   about: shared monitor-tick firings and monitors walked, coalesced
   time-wait sweeps and entries expired, and the mean demux probes per
   lookup.  A steady-state allocation probe records minor words per
   event — the struct-of-arrays hot loop must not allocate more per
   event as the population grows.

   Shard parity: the same 10k-session configuration runs at --shards 1
   and --shards 4 (2 in smoke) and the combined FNV-1a digest and every
   rendered per-partition UNITES report must be byte-identical — the
   shard count is an execution choice, never a result.

   Parallel reporting is honest: when the machine has fewer cores than
   the sharded run asks for, "speedup" is null with a reason, not a
   misleading sub-1.0 number.

   The full run adds a 100k-session churn in one world: it must complete
   with flat demux probes while every per-(session, metric) UNITES
   bucket runs the P² streaming estimator (bounded memory by
   construction).  Emits BENCH_megaswarm.json. *)

open Adaptive_workloads

let smoke = ref false

let pf = Format.printf

type scale_result = {
  sessions : int;
  shards : int;
  outcome : Megaswarm.outcome;
  elapsed_s : float;
  minor_words_per_event : float;
}

let run_scale ~sessions ~shards ~seed =
  let cfg =
    { (Megaswarm.default_config ~sessions ~seed) with Megaswarm.shards }
  in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let outcome = Megaswarm.run cfg in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. minor0 in
  {
    sessions;
    shards;
    outcome;
    elapsed_s;
    minor_words_per_event =
      (let e = outcome.Megaswarm.events_fired in
       if e > 0 then minor /. float_of_int e else 0.0);
  }

let events_per_sec r =
  if r.elapsed_s <= 0.0 then 0.0
  else float_of_int r.outcome.Megaswarm.events_fired /. r.elapsed_s

let per t w = if t = 0 then 0.0 else float_of_int w /. float_of_int t

let report_scale r =
  let o = r.outcome in
  pf
    "  %7d sessions x%d shard(s): %9.0f ev/s  wall %6.2f s  monitor \
     %.1f/tick  tw %.1f/sweep  demux mean %.3f  alloc %.0f w/ev@."
    r.sessions r.shards (events_per_sec r) r.elapsed_s
    (per o.Megaswarm.monitor_ticks o.Megaswarm.monitor_walked)
    (per o.Megaswarm.tw_sweeps o.Megaswarm.tw_expired)
    o.Megaswarm.demux_probes_mean_max r.minor_words_per_event

let json_scale buf r trailing =
  let o = r.outcome in
  Printf.bprintf buf
    {|    { "sessions": %d, "shards": %d, "wall_s": %.6f,
      "events": %d, "events_per_sec": %.1f,
      "tick_cost": { "monitor_ticks": %d, "monitor_walked": %d,
        "monitor_walked_per_tick": %.2f,
        "tw_sweeps": %d, "tw_expired": %d, "tw_expired_per_sweep": %.2f,
        "demux_probes_mean": %.4f },
      "minor_words_per_event": %.1f,
      "peak_live": %d, "wan_msgs": %d,
      "digest": "0x%Lx" }%s
|}
    r.sessions r.shards r.elapsed_s o.Megaswarm.events_fired
    (events_per_sec r) o.Megaswarm.monitor_ticks o.Megaswarm.monitor_walked
    (per o.Megaswarm.monitor_ticks o.Megaswarm.monitor_walked)
    o.Megaswarm.tw_sweeps o.Megaswarm.tw_expired
    (per o.Megaswarm.tw_sweeps o.Megaswarm.tw_expired)
    o.Megaswarm.demux_probes_mean_max r.minor_words_per_event
    o.Megaswarm.peak_live o.Megaswarm.wan_exchanged o.Megaswarm.digest
    trailing

let e13_megaswarm_scale () =
  let seed = 0x4D53 in
  let parity_sessions = 10_000 in
  let parity_shards = if !smoke then 2 else 4 in
  let scales =
    if !smoke then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ]
  in
  let cores = Domain.recommended_domain_count () in
  Util.heading
    (Printf.sprintf
       "E13 — MEGASWARM: partitioned churn across domains%s"
       (if !smoke then " [smoke]" else ""));
  pf "  %d core(s) available@." cores;

  (* Scale sweep, single-sharded: the workload cost itself. *)
  let results =
    List.map (fun sessions -> run_scale ~sessions ~shards:1 ~seed) scales
  in
  List.iter report_scale results;

  (* O(active) control plane: the monitored share is a fixed fraction of
     the population, so the per-tick working set tracks the {e live}
     monitored sessions — it must stay under the concurrent peak and far
     under the total churned population (closed sessions cost zero). *)
  let first = List.hd results in
  let last = List.nth results (List.length results - 1) in
  let walked_per_tick r =
    per r.outcome.Megaswarm.monitor_ticks r.outcome.Megaswarm.monitor_walked
  in
  Util.shape_check
    (Printf.sprintf
       "monitor tick walks only live monitors (%.1f/tick, peak live %d, %d \
        opens)"
       (walked_per_tick last) last.outcome.Megaswarm.peak_live
       last.outcome.Megaswarm.admitted)
    (List.for_all
       (fun r ->
         walked_per_tick r <= float_of_int r.outcome.Megaswarm.peak_live
         && walked_per_tick r *. 10.0
            <= float_of_int r.outcome.Megaswarm.admitted)
       results);
  Util.shape_check "time-wait sweeps coalesce many expiries per firing"
    (List.for_all
       (fun r ->
         r.outcome.Megaswarm.tw_expired = 0
         || r.outcome.Megaswarm.tw_sweeps < r.outcome.Megaswarm.tw_expired)
       results);
  Util.shape_check
    (Printf.sprintf "demux probes stay flat at the largest scale (mean %.3f)"
       last.outcome.Megaswarm.demux_probes_mean_max)
    (last.outcome.Megaswarm.demux_probes_mean_max < 4.0);
  Util.shape_check
    (Printf.sprintf
       "allocation per event does not grow with scale (%.0f vs %.0f words/ev)"
       last.minor_words_per_event first.minor_words_per_event)
    (last.minor_words_per_event <= 1.5 *. first.minor_words_per_event);

  (* Shard parity at the pinned scale: digest and UNITES byte-identical
     whatever the domain count. *)
  let base =
    match List.find_opt (fun r -> r.sessions = parity_sessions) results with
    | Some r -> r
    | None -> run_scale ~sessions:parity_sessions ~shards:1 ~seed
  in
  let sharded = run_scale ~sessions:parity_sessions ~shards:parity_shards ~seed in
  report_scale sharded;
  let digests_match =
    Int64.equal base.outcome.Megaswarm.digest sharded.outcome.Megaswarm.digest
  in
  let unites_identical =
    base.outcome.Megaswarm.unites_reports
    = sharded.outcome.Megaswarm.unites_reports
  in
  Util.shape_check
    (Printf.sprintf "digest identical at --shards 1 vs --shards %d (0x%Lx)"
       parity_shards base.outcome.Megaswarm.digest)
    digests_match;
  Util.shape_check "per-partition UNITES reports byte-identical" unites_identical;

  (* Honest speedup: only a real number when the hardware could have
     delivered one. *)
  let speedup =
    if cores < parity_shards then None
    else if sharded.elapsed_s > 0.0 then Some (base.elapsed_s /. sharded.elapsed_s)
    else None
  in
  (match speedup with
  | Some s -> pf "  speedup %.2fx at %d shard(s)@." s parity_shards
  | None ->
    pf "  speedup: n/a (%d core(s) available < %d shard(s))@." cores
      parity_shards);

  (* JSON emission. *)
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n\
    \  \"experiment\": \"e13_megaswarm_scale\",\n\
    \  \"seed\": %d,\n\
    \  \"smoke\": %b,\n\
    \  \"cores_available\": %d,\n\
    \  \"partitions\": 4,\n\
    \  \"estimator\": \"p2\",\n\
    \  \"scales\": [\n"
    seed !smoke cores;
  let rec emit = function
    | [] -> ()
    | [ r ] -> json_scale buf r ""
    | r :: rest ->
      json_scale buf r ",";
      emit rest
  in
  emit (results @ [ sharded ]);
  Printf.bprintf buf
    "  ],\n\
    \  \"parity\": { \"sessions\": %d, \"shards\": [1, %d],\n\
    \    \"digest\": \"0x%Lx\", \"digests_match\": %b,\n\
    \    \"unites_byte_identical\": %b },\n"
    parity_sessions parity_shards base.outcome.Megaswarm.digest digests_match
    unites_identical;
  (match speedup with
  | Some s -> Printf.bprintf buf "  \"speedup\": %.3f\n}\n" s
  | None ->
    Printf.bprintf buf
      "  \"speedup\": null,\n  \"reason\": \"cores_available < jobs\"\n}\n");
  let oc = open_out "BENCH_megaswarm.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "  wrote BENCH_megaswarm.json@.";
  if not (digests_match && unites_identical) then exit 1
