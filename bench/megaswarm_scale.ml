(* e13_megaswarm_scale / e15_gigaswarm — partitioned many-session scale.

   e13 (MEGASWARM) spreads session churn across logical partitions
   joined by a constant-latency WAN and executes them over OCaml 5
   domains with conservative barrier-window synchronization (Shard).
   Per scale the experiment reports events per wall-clock second plus
   the tick-cost breakdown the O(active) control plane is about: shared
   monitor-tick firings and monitors walked, coalesced time-wait sweeps
   and entries expired, and the mean demux probes per lookup.

   Allocation accounting is staged: megaswarm splits its minor-word
   count into build / schedule / sim / reduce, so the headline
   words-per-event figure is the {e sim} stage — the event hot path —
   not diluted or inflated by one-time setup or the O(sessions) UNITES
   report rendering.  The ceiling (<= 150 words/event at 10k sessions)
   is asserted here and by a tier-1 guard test.

   Shard parity: the same 10k-session configuration runs at --shards 1
   and --shards 4 (2 in smoke) and the combined FNV-1a digest and every
   rendered per-partition UNITES report must be byte-identical — the
   shard count is an execution choice, never a result.

   e15 (GIGASWARM) pushes the same workload through scale decades up to
   one million sessions with bounded memory: opens are staggered at a
   constant ~10k/s so the live population stays flat, and a UNITES
   session cap folds the metric tail into one overflow bucket.  Each
   decade records events/s, sim-stage words/event, live heap after a
   forced major cycle, and the SHARD window counters.

   Both experiments write sections of BENCH_megaswarm.json; whichever
   runs last re-emits the file with every section produced so far in
   this process. *)

open Adaptive_sim
open Adaptive_workloads

let smoke = ref false

let pf = Format.printf

type scale_result = {
  sessions : int;
  shards : int;
  outcome : Megaswarm.outcome;
  elapsed_s : float;
  gc : Util.gc_sample;
  minor_words_per_event : float;  (* sim stage, coordinating domain *)
  total_minor_words_per_event : float;  (* whole run incl. setup/report *)
  heap_words_live : int;  (* live major words after a forced full cycle *)
}

let stage outcome name =
  match List.assoc_opt name outcome.Megaswarm.stage_minor_words with
  | Some w -> w
  | None -> 0.0

let run_scale ?(config = fun c -> c) ~sessions ~shards ~seed () =
  let cfg =
    config { (Megaswarm.default_config ~sessions ~seed) with Megaswarm.shards }
  in
  (* Level the field between measurements: without this, a run scheduled
     after a bigger one pays rent on the predecessor's bloated major
     heap, and the x1-vs-xN wall comparison measures run order. *)
  Gc.compact ();
  let outcome, gc =
    Util.gc_stage (fun () -> Megaswarm.run ~clock:Unix.gettimeofday cfg)
  in
  let events = outcome.Megaswarm.events_fired in
  let per_event w = if events > 0 then w /. float_of_int events else 0.0 in
  Gc.full_major ();
  {
    sessions;
    shards;
    outcome;
    elapsed_s = gc.Util.gs_wall_s;
    gc;
    minor_words_per_event = per_event (stage outcome "sim");
    total_minor_words_per_event = per_event gc.Util.gs_minor_words;
    heap_words_live = (Gc.quick_stat ()).Gc.heap_words;
  }

let events_per_sec r =
  if r.elapsed_s <= 0.0 then 0.0
  else float_of_int r.outcome.Megaswarm.events_fired /. r.elapsed_s

let events_per_window r =
  if r.outcome.Megaswarm.sync_windows = 0 then 0.0
  else
    float_of_int r.outcome.Megaswarm.events_fired
    /. float_of_int r.outcome.Megaswarm.sync_windows

let per t w = if t = 0 then 0.0 else float_of_int w /. float_of_int t

let report_scale r =
  let o = r.outcome in
  pf
    "  %7d sessions x%d shard(s): %9.0f ev/s  wall %6.2f s  monitor \
     %.1f/tick  tw %.1f/sweep  demux mean %.3f  alloc %.0f w/ev (sim)@."
    r.sessions r.shards (events_per_sec r) r.elapsed_s
    (per o.Megaswarm.monitor_ticks o.Megaswarm.monitor_walked)
    (per o.Megaswarm.tw_sweeps o.Megaswarm.tw_expired)
    o.Megaswarm.demux_probes_mean_max r.minor_words_per_event

let json_scale buf r trailing =
  let o = r.outcome in
  Printf.bprintf buf
    {|    { "sessions": %d, "shards": %d, "wall_s": %.6f,
      "events": %d, "events_per_sec": %.1f,
      "tick_cost": { "monitor_ticks": %d, "monitor_walked": %d,
        "monitor_walked_per_tick": %.2f,
        "tw_sweeps": %d, "tw_expired": %d, "tw_expired_per_sweep": %.2f,
        "demux_probes_mean": %.4f },
      "minor_words_per_event": %.1f,
      "total_minor_words_per_event": %.1f,
      "stage_minor_words": { %s },
      |}
    r.sessions r.shards r.elapsed_s o.Megaswarm.events_fired
    (events_per_sec r) o.Megaswarm.monitor_ticks o.Megaswarm.monitor_walked
    (per o.Megaswarm.monitor_ticks o.Megaswarm.monitor_walked)
    o.Megaswarm.tw_sweeps o.Megaswarm.tw_expired
    (per o.Megaswarm.tw_sweeps o.Megaswarm.tw_expired)
    o.Megaswarm.demux_probes_mean_max r.minor_words_per_event
    r.total_minor_words_per_event
    (String.concat ", "
       (List.map
          (fun (name, w) -> Printf.sprintf {|"%s": %.0f|} name w)
          o.Megaswarm.stage_minor_words));
  Util.json_gc buf r.gc;
  Printf.bprintf buf
    {|,
      "sync": { "windows": %d, "skipped_spans": %d,
        "events_per_window": %.1f,
        "shard_wall_s": [%s] },
      "heap_words_live": %d,
      "peak_live": %d, "wan_msgs": %d,
      "digest": "0x%Lx" }%s
|}
    o.Megaswarm.sync_windows o.Megaswarm.sync_skipped (events_per_window r)
    (String.concat ", "
       (List.map (Printf.sprintf "%.4f") o.Megaswarm.shard_wall_s))
    r.heap_words_live o.Megaswarm.peak_live o.Megaswarm.wan_exchanged
    o.Megaswarm.digest trailing

(* ------------------------------------------------ shared JSON output *)

(* e13 and e15 each contribute top-level sections; whichever runs last
   writes the union observed so far in this process. *)
let e13_section : string option ref = ref None
let giga_section : string option ref = ref None

let write_bench_json () =
  let sections = List.filter_map (fun r -> !r) [ e13_section; giga_section ] in
  let oc = open_out "BENCH_megaswarm.json" in
  output_string oc "{\n";
  output_string oc
    (Printf.sprintf
       "  \"experiment\": \"megaswarm\",\n  \"smoke\": %b,\n  \
        \"cores_available\": %d,\n"
       !smoke
       (Domain.recommended_domain_count ()));
  output_string oc (String.concat ",\n" sections);
  output_string oc "\n}\n";
  close_out oc;
  pf "  wrote BENCH_megaswarm.json@."

(* ------------------------------------------------------------- e13 *)

let alloc_ceiling_words_per_event = 150.0

let e13_megaswarm_scale () =
  let seed = 0x4D53 in
  let parity_sessions = 10_000 in
  let parity_shards = if !smoke then 2 else 4 in
  let scales =
    if !smoke then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ]
  in
  let cores = Domain.recommended_domain_count () in
  Util.heading
    (Printf.sprintf
       "E13 — MEGASWARM: partitioned churn across domains%s"
       (if !smoke then " [smoke]" else ""));
  pf "  %d core(s) available@." cores;

  (* Scale sweep, single-sharded: the workload cost itself. *)
  let results =
    List.map (fun sessions -> run_scale ~sessions ~shards:1 ~seed ()) scales
  in
  List.iter report_scale results;

  (* O(active) control plane: the monitored share is a fixed fraction of
     the population, so the per-tick working set tracks the {e live}
     monitored sessions — it must stay under the concurrent peak and far
     under the total churned population (closed sessions cost zero). *)
  let first = List.hd results in
  let last = List.nth results (List.length results - 1) in
  let walked_per_tick r =
    per r.outcome.Megaswarm.monitor_ticks r.outcome.Megaswarm.monitor_walked
  in
  Util.shape_check
    (Printf.sprintf
       "monitor tick walks only live monitors (%.1f/tick, peak live %d, %d \
        opens)"
       (walked_per_tick last) last.outcome.Megaswarm.peak_live
       last.outcome.Megaswarm.admitted)
    (List.for_all
       (fun r ->
         walked_per_tick r <= float_of_int r.outcome.Megaswarm.peak_live
         && walked_per_tick r *. 10.0
            <= float_of_int r.outcome.Megaswarm.admitted)
       results);
  Util.shape_check "time-wait sweeps coalesce many expiries per firing"
    (List.for_all
       (fun r ->
         r.outcome.Megaswarm.tw_expired = 0
         || r.outcome.Megaswarm.tw_sweeps < r.outcome.Megaswarm.tw_expired)
       results);
  Util.shape_check
    (Printf.sprintf "demux probes stay flat at the largest scale (mean %.3f)"
       last.outcome.Megaswarm.demux_probes_mean_max)
    (last.outcome.Megaswarm.demux_probes_mean_max < 4.0);
  Util.shape_check
    (Printf.sprintf
       "allocation per event does not grow with scale (%.0f vs %.0f words/ev)"
       last.minor_words_per_event first.minor_words_per_event)
    (last.minor_words_per_event <= 1.5 *. first.minor_words_per_event);
  let ten_k =
    match List.find_opt (fun r -> r.sessions = parity_sessions) results with
    | Some r -> r
    | None -> run_scale ~sessions:parity_sessions ~shards:1 ~seed ()
  in
  Util.shape_check
    (Printf.sprintf
       "hot-path allocation under the ceiling (%.0f <= %.0f words/event at \
        10k)"
       ten_k.minor_words_per_event alloc_ceiling_words_per_event)
    (ten_k.minor_words_per_event <= alloc_ceiling_words_per_event);

  (* Shard parity at the pinned scale: digest and UNITES byte-identical
     whatever the domain count. *)
  let base = ten_k in
  let sharded =
    run_scale ~sessions:parity_sessions ~shards:parity_shards ~seed ()
  in
  report_scale sharded;
  let digests_match =
    Int64.equal base.outcome.Megaswarm.digest sharded.outcome.Megaswarm.digest
  in
  let unites_identical =
    base.outcome.Megaswarm.unites_reports
    = sharded.outcome.Megaswarm.unites_reports
  in
  Util.shape_check
    (Printf.sprintf "digest identical at --shards 1 vs --shards %d (0x%Lx)"
       parity_shards base.outcome.Megaswarm.digest)
    digests_match;
  Util.shape_check "per-partition UNITES reports byte-identical" unites_identical;

  (* Honest speedup: only a real number when the hardware could have
     delivered one.  The sync counters and per-shard wall times in the
     JSON keep the barrier overhead visible even when speedup is null. *)
  let speedup =
    if cores < parity_shards then None
    else if sharded.elapsed_s > 0.0 then Some (base.elapsed_s /. sharded.elapsed_s)
    else None
  in
  (match speedup with
  | Some s -> pf "  speedup %.2fx at %d shard(s)@." s parity_shards
  | None ->
    pf "  speedup: n/a (%d core(s) available < %d shard(s))@." cores
      parity_shards);

  (* JSON section. *)
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "  \"e13\": {\n\
    \  \"seed\": %d,\n\
    \  \"partitions\": 4,\n\
    \  \"estimator\": \"p2\",\n\
    \  \"scales\": [\n"
    seed;
  let rec emit = function
    | [] -> ()
    | [ r ] -> json_scale buf r ""
    | r :: rest ->
      json_scale buf r ",";
      emit rest
  in
  emit (results @ [ sharded ]);
  Printf.bprintf buf
    "  ],\n\
    \  \"parity\": { \"sessions\": %d, \"shards\": [1, %d],\n\
    \    \"digest\": \"0x%Lx\", \"digests_match\": %b,\n\
    \    \"unites_byte_identical\": %b },\n"
    parity_sessions parity_shards base.outcome.Megaswarm.digest digests_match
    unites_identical;
  (match speedup with
  | Some s -> Printf.bprintf buf "  \"speedup\": %.3f\n  }" s
  | None ->
    Printf.bprintf buf
      "  \"speedup\": null,\n  \"speedup_reason\": \"cores_available < \
       jobs\"\n  }");
  e13_section := Some (Buffer.contents buf);
  write_bench_json ();
  if
    not
      (digests_match && unites_identical
      && ten_k.minor_words_per_event <= alloc_ceiling_words_per_event)
  then exit 1

(* ------------------------------------------------------------- e15 *)

(* GIGASWARM decade configuration: constant ~10k opens/s whatever the
   total, so the live population — and with the UNITES session cap, the
   metric tables — stay flat while the cumulative churn grows to 1M. *)
let giga_config sessions cfg =
  {
    cfg with
    Megaswarm.open_window = Time.sec (float_of_int sessions /. 10_000.0);
    session_cap = Some 20_000;
  }

let e15_gigaswarm () =
  let seed = 0x47494741 (* "GIGA" *) in
  let cores = Domain.recommended_domain_count () in
  let decades =
    if !smoke then [ 50_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  Util.heading
    (Printf.sprintf "E15 — GIGASWARM: scale decades to 1M sessions%s"
       (if !smoke then " [smoke]" else ""));
  pf "  %d core(s) available@." cores;
  let results =
    List.map
      (fun sessions ->
        let r =
          run_scale ~config:(giga_config sessions) ~sessions ~shards:1 ~seed ()
        in
        report_scale r;
        pf
          "           windows=%d skipped=%d (%.0f events/window)  live heap \
           %.1f MB@."
          r.outcome.Megaswarm.sync_windows r.outcome.Megaswarm.sync_skipped
          (events_per_window r)
          (float_of_int r.heap_words_live *. 8.0 /. 1e6);
        r)
      decades
  in
  (* Bounded memory: churned-through sessions must not accumulate
     transport state anywhere (conntable, UNITES, time-wait).  The
     workload's own churn generator keeps one slot record per session
     by design, so absolute live heap is O(sessions) with a small
     constant — the invariant is that live heap {e per session} falls
     steeply across decades (1.2 kB/session at 10k -> ~80 B/session at
     1M measured): everything except the generator's slot table is flat
     in the total. *)
  let first = List.hd results in
  let last = List.nth results (List.length results - 1) in
  let per_session r =
    float_of_int r.heap_words_live *. 8.0 /. float_of_int (max r.sessions 1)
  in
  Util.shape_check
    (Printf.sprintf
       "live heap sublinear across decades (%.0f B/session at %d vs %.0f \
        B/session at %d; %.1f MB total)"
       (per_session last) last.sessions (per_session first) first.sessions
       (float_of_int last.heap_words_live *. 8.0 /. 1e6))
    (last.sessions = first.sessions
    || per_session last <= per_session first /. 4.0);
  Util.shape_check
    (Printf.sprintf
       "hot-path allocation flat at scale (%.0f vs %.0f words/event)"
       last.minor_words_per_event first.minor_words_per_event)
    (last.minor_words_per_event
    <= Float.max (1.5 *. first.minor_words_per_event)
         alloc_ceiling_words_per_event);
  (* Parity spot-check on the smallest decade: the gigaswarm config is
     as shard-invariant as the e13 one. *)
  let parity_shards = 2 in
  let parity =
    run_scale
      ~config:(giga_config first.sessions)
      ~sessions:first.sessions ~shards:parity_shards ~seed ()
  in
  let digests_match =
    Int64.equal first.outcome.Megaswarm.digest parity.outcome.Megaswarm.digest
  in
  let unites_identical =
    first.outcome.Megaswarm.unites_reports
    = parity.outcome.Megaswarm.unites_reports
  in
  Util.shape_check
    (Printf.sprintf "digest identical at --shards 1 vs --shards %d (0x%Lx)"
       parity_shards first.outcome.Megaswarm.digest)
    digests_match;
  Util.shape_check "per-partition UNITES reports byte-identical"
    unites_identical;
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "  \"gigaswarm\": {\n\
    \  \"seed\": %d,\n\
    \  \"partitions\": 4,\n\
    \  \"session_cap\": 20000,\n\
    \  \"opens_per_sec\": 10000,\n\
    \  \"scales\": [\n"
    seed;
  let rec emit = function
    | [] -> ()
    | [ r ] -> json_scale buf r ""
    | r :: rest ->
      json_scale buf r ",";
      emit rest
  in
  emit (results @ [ parity ]);
  Printf.bprintf buf
    "  ],\n\
    \  \"parity\": { \"sessions\": %d, \"shards\": [1, %d],\n\
    \    \"digest\": \"0x%Lx\", \"digests_match\": %b,\n\
    \    \"unites_byte_identical\": %b }\n\
    \  }"
    first.sessions parity_shards first.outcome.Megaswarm.digest digests_match
    unites_identical;
  giga_section := Some (Buffer.contents buf);
  write_bench_json ();
  if
    not
      (digests_match && unites_identical
      && last.minor_words_per_event
         <= Float.max
              (1.5 *. first.minor_words_per_event)
              alloc_ceiling_words_per_event)
  then exit 1
