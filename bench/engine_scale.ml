(* e8_engine_scale — scheduler scalability and allocation discipline.

   Models the timer churn of 10k concurrent transport sessions: every
   session owns a retransmission-style timer that re-arms itself on each
   expiry, and a quarter of expiries also reschedule a random peer's
   timer (the ack-cancels-retransmission pattern).  Delays are drawn
   mostly inside the wheel horizon with a heavy tail reaching the
   overflow heap.

   The identical deterministic workload is driven through three engines:

   - [wheel] — lib/sim's hierarchical timer wheel (the default backend);
   - [heap]  — the same engine forced onto its pure-heap backend;
   - [seed]  — the vendored pre-wheel engine ({!Seed_engine}), which
     allocates a boxed heap entry per push, option/tuple per pop and a
     closure per timer re-arm.

   Reports events/sec and minor-heap words allocated per fired event, and
   emits BENCH_engine.json.  The PR's acceptance criterion is a >= 2x
   reduction in words per event for [wheel] vs [seed]. *)

open Adaptive_sim

(* Set by main.ml's --smoke flag: shrink the workload so the @bench-smoke
   alias finishes in seconds. *)
let smoke = ref false

module type ENGINE = sig
  type t
  type timer

  val create : unit -> t
  val run : ?until:Time.t -> ?max_events:int -> t -> unit
  val events_fired : t -> int
  val pending_events : t -> int
  val one_shot : t -> delay:Time.t -> (unit -> unit) -> timer
  val reschedule : timer -> delay:Time.t -> unit
end

module Wheel_engine = struct
  include Engine

  let create () = Engine.create ~backend:`Wheel ()
  type timer = Engine.Timer.timer

  let one_shot = Engine.Timer.one_shot
  let reschedule = Engine.Timer.reschedule
end

module Heap_engine = struct
  include Engine

  let create () = Engine.create ~backend:`Heap ()
  type timer = Engine.Timer.timer

  let one_shot = Engine.Timer.one_shot
  let reschedule = Engine.Timer.reschedule
end

module Seed = struct
  include Seed_engine

  type timer = Seed_engine.Timer.timer

  let one_shot = Seed_engine.Timer.one_shot
  let reschedule = Seed_engine.Timer.reschedule
end

type stats = {
  fired : int;
  pending : int;
  elapsed_s : float;
  minor_words : float;
}

let words_per_event s = s.minor_words /. float_of_int (max 1 s.fired)

let events_per_sec s =
  if s.elapsed_s <= 0.0 then 0.0 else float_of_int s.fired /. s.elapsed_s

(* Session timer delays: mostly sub-10ms (wheel level 0/1), a tail into
   hundreds of ms (level 1), and a sliver of seconds-scale timeouts that
   land in the overflow heap. *)
let pick_delay rng =
  let p = Rng.float rng 1.0 in
  if p < 0.85 then Rng.int_in rng (Time.us 100) (Time.ms 10)
  else if p < 0.98 then Rng.int_in rng (Time.ms 10) (Time.ms 500)
  else Rng.int_in rng (Time.sec 3.0) (Time.sec 8.0)

module Churn (E : ENGINE) = struct
  (* Returns the engine too so callers can read backend-specific counters
     (E.t is left transparent on purpose). *)
  let run ~sessions ~fires ~seed =
    let rng = Rng.create seed in
    let engine = E.create () in
    let timers = Array.make sessions None in
    (* Pre-draw all randomness: the RNG itself allocates (boxed int64
       state words), and drawing inside the expiry callbacks would charge
       identical workload noise to every backend, drowning the engine
       difference the experiment is after.  The tables are consumed in
       fire order, which the equivalence property test pins to be the
       same for every backend, so each one sees the identical schedule. *)
    let mask = 0xFFFF in
    let delays = Array.init (mask + 1) (fun _ -> pick_delay rng) in
    let peers =
      Array.init (mask + 1) (fun _ ->
          if Rng.bernoulli rng 0.25 then Rng.int rng sessions else -1)
    in
    let didx = ref 0 and pidx = ref 0 in
    for i = 0 to sessions - 1 do
      let expire () =
        (match timers.(i) with
        | Some tm ->
          E.reschedule tm ~delay:delays.(!didx land mask);
          incr didx
        | None -> ());
        let j = peers.(!pidx land mask) in
        incr pidx;
        if j >= 0 then
          match timers.(j) with
          | Some tm ->
            E.reschedule tm ~delay:delays.(!didx land mask);
            incr didx
          | None -> ()
      in
      timers.(i) <- Some (E.one_shot engine ~delay:delays.(!didx land mask) expire);
      incr didx
    done;
    (* Setup (timer records, closures, initial inserts) is excluded: the
       criterion is about the steady-state churn path. *)
    Gc.full_major ();
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    E.run ~max_events:fires engine;
    let elapsed_s = Sys.time () -. t0 in
    let minor_words = Gc.minor_words () -. w0 in
    ( {
        fired = E.events_fired engine;
        pending = E.pending_events engine;
        elapsed_s;
        minor_words;
      },
      engine )
end

module Churn_wheel = Churn (Wheel_engine)
module Churn_heap = Churn (Heap_engine)
module Churn_seed = Churn (Seed)

let pf = Format.printf

let report name s =
  pf "  %-6s %9d events  %8.0f ev/s  %10.0f minor words  %6.2f words/event@."
    name s.fired (events_per_sec s) s.minor_words (words_per_event s)

let json_backend buf name s extra =
  Printf.bprintf buf
    {|    { "name": %S, "events_fired": %d, "pending": %d, "elapsed_s": %.6f,
      "events_per_sec": %.1f, "minor_words": %.0f, "words_per_event": %.3f%s }|}
    name s.fired s.pending s.elapsed_s (events_per_sec s) s.minor_words
    (words_per_event s) extra

let wheel_extra engine =
  let c = Engine.counters engine in
  Printf.sprintf
    {|,
      "wheel_hit_rate": %.4f, "cancelled_ratio": %.4f,
      "counters": { "timers_rearmed": %d, "wheel_inserts": %d,
        "ready_inserts": %d, "overflow_inserts": %d, "wheel_cancels": %d,
        "lazy_cancels": %d, "cascades": %d, "compactions": %d }|}
    (Engine.wheel_hit_rate engine)
    (Engine.cancelled_ratio engine)
    c.Engine.timers_rearmed c.Engine.wheel_inserts c.Engine.ready_inserts
    c.Engine.overflow_inserts c.Engine.wheel_cancels c.Engine.lazy_cancels
    c.Engine.cascades c.Engine.compactions

(* Microbenchmark: the bare timer re-arm path — a single self-rescheduling
   timer with a fixed short delay, no churn, no randomness in the loop. *)
let micro_rearm () =
  let fires = if !smoke then 20_000 else 500_000 in
  pf "  micro: single timer, %d rearm+fire cycles, fixed 1ms delay@." fires;
  let measure name create one_shot reschedule run fired =
    let engine = create () in
    let tm = ref None in
    tm := Some (one_shot engine ~delay:(Time.ms 1) (fun () ->
        match !tm with Some t -> reschedule t ~delay:(Time.ms 1) | None -> ()));
    Gc.full_major ();
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    run engine;
    let dt = Sys.time () -. t0 in
    let dw = Gc.minor_words () -. w0 in
    let n = float_of_int (fired engine) in
    pf "  %-6s %7.1f ns/cycle  %6.2f words/cycle@." name
      (dt *. 1e9 /. n) (dw /. n)
  in
  measure "wheel" Wheel_engine.create Wheel_engine.one_shot
    Wheel_engine.reschedule
    (fun e -> Wheel_engine.run ~max_events:fires e)
    Wheel_engine.events_fired;
  measure "heap" Heap_engine.create Heap_engine.one_shot Heap_engine.reschedule
    (fun e -> Heap_engine.run ~max_events:fires e)
    Heap_engine.events_fired;
  measure "seed" Seed.create Seed.one_shot Seed.reschedule
    (fun e -> Seed.run ~max_events:fires e)
    Seed.events_fired

let e8_engine_scale () =
  let sessions = if !smoke then 500 else 10_000 in
  let fires = if !smoke then 10_000 else 300_000 in
  let seed = 0xADA9 in
  pf "@.== e8_engine_scale: timer churn of %d concurrent sessions (%d events)%s ==@."
    sessions fires (if !smoke then " [smoke]" else "");
  let wheel, wheel_engine = Churn_wheel.run ~sessions ~fires ~seed in
  let heap, _ = Churn_heap.run ~sessions ~fires ~seed in
  let seed_stats, _ = Churn_seed.run ~sessions ~fires ~seed in
  report "wheel" wheel;
  report "heap" heap;
  report "seed" seed_stats;
  pf "  wheel hit rate %.3f, cancelled ratio %.3f@."
    (Engine.wheel_hit_rate wheel_engine)
    (Engine.cancelled_ratio wheel_engine);
  let improvement = words_per_event seed_stats /. words_per_event wheel in
  pf "  allocation: %.2fx fewer words/event than seed engine (criterion >= 2.0: %s)@."
    improvement
    (if improvement >= 2.0 then "PASS" else "FAIL");
  micro_rearm ();
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e8_engine_scale\",\n  \"sessions\": %d,\n  \"events\": %d,\n  \"smoke\": %b,\n  \"backends\": [\n"
    sessions fires !smoke;
  json_backend buf "wheel" wheel (wheel_extra wheel_engine);
  Buffer.add_string buf ",\n";
  json_backend buf "heap" heap "";
  Buffer.add_string buf ",\n";
  json_backend buf "seed" seed_stats "";
  Buffer.add_string buf "\n  ],\n";
  Printf.bprintf buf "  \"alloc_improvement_vs_seed\": %.3f\n}\n" improvement;
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "  wrote BENCH_engine.json@."
