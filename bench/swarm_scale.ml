(* e11_swarm_scale — many-session scale for the dispatcher (SWARM).

   One simulated host pair carries 100 / 1k / 10k concurrent sessions
   through the full MANTTS open/transfer/close path, with churn.  Per
   scale the experiment reports sessions opened and events fired per
   wall-clock second, plus the deterministic demux cost (connection-table
   probes per lookup) and the table occupancy histogram from the UNITES
   "swarm" whitebox session.

   Determinism checks: the same seed must produce the identical FNV-1a
   trace digest on a second run, and across a [Fleet.map ~jobs:4] replay
   on separate domains.

   A wall-clock microbenchmark times [Conntable.find] over tables holding
   100 / 1k / 10k live connections; the acceptance criterion is
   p99 ns/op at 10k <= 2x the 100-session value (demux must stay O(1)).

   An overload phase reruns the mid scale under an admission policy too
   small for the offered load and checks that every refused or degraded
   open is accounted in the swarm session.

   Emits BENCH_swarm.json. *)

open Adaptive_sim
open Adaptive_core
open Adaptive_workloads

(* Set by main.ml's --smoke flag: 500-session churn instead of 10k. *)
let smoke = ref false

let pf = Format.printf

type scale_result = {
  sessions : int;
  outcome : Swarm.outcome;
  elapsed_s : float;
}

let run_scale ~sessions ~seed =
  let cfg = Swarm.default_config ~sessions ~seed in
  let t0 = Unix.gettimeofday () in
  let outcome = Swarm.run cfg in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  { sessions; outcome; elapsed_s }

let sessions_per_sec r =
  if r.elapsed_s <= 0.0 then 0.0
  else float_of_int r.outcome.Swarm.admitted /. r.elapsed_s

let events_per_sec r =
  if r.elapsed_s <= 0.0 then 0.0
  else float_of_int r.outcome.Swarm.events_fired /. r.elapsed_s

let report_scale r =
  let o = r.outcome in
  pf
    "  %6d sessions: %7.0f sessions/s  %9.0f ev/s  demux probes mean %.3f p99 \
     %.0f  occupancy p99 %.2f  peak live %d@."
    r.sessions (sessions_per_sec r) (events_per_sec r) o.Swarm.demux_probes_mean
    o.Swarm.demux_probes_p99 o.Swarm.occupancy_p99 o.Swarm.peak_live

(* The UNITES swarm whitebox session, presented on its own: at ten
   thousand registered sessions the full [Unites.report] would be pages
   of per-session lines. *)
let swarm_report o =
  let u = o.Swarm.unites in
  pf "  UNITES swarm session:@.";
  List.iter
    (fun m ->
      match Unites.stats u ~session:Unites.swarm_session m with
      | None -> ()
      | Some s ->
        pf "    %-16s n=%-6d total=%-9.0f mean=%.3f p50=%.3f p95=%.3f p99=%.3f \
            max=%.3f@."
          (Unites.metric_name m) s.Stats.n (s.Stats.mean *. float_of_int s.Stats.n)
          s.Stats.mean s.Stats.p50 s.Stats.p95 s.Stats.p99 s.Stats.max)
    [
      Unites.Sessions_open;
      Unites.Sessions_refused;
      Unites.Sessions_degraded;
      Unites.Demux_probes;
      Unites.Table_occupancy;
      Unites.Timewait_drops;
    ]

(* ---------------------------------------------- wall-clock demux micro *)

type micro_result = { live : int; capacity : int; p50_ns : float; p99_ns : float }

let demux_micro ~live =
  let t = Conntable.create () in
  for k = 1 to live do
    Conntable.insert t ~key:k ~half_open:false k
  done;
  let rng = Rng.create 0xC0FFEE in
  let per_batch = if !smoke then 20_000 else 50_000 in
  let batches = if !smoke then 20 else 50 in
  let keys = Array.init per_batch (fun _ -> 1 + Rng.int rng live) in
  (* The sink defeats dead-code elimination of the measured loop. *)
  let sink = ref 0 in
  for i = 0 to per_batch - 1 do
    sink := !sink + Conntable.find t (Array.unsafe_get keys i)
  done;
  let ns = Array.make batches 0.0 in
  for b = 0 to batches - 1 do
    let t0 = Unix.gettimeofday () in
    for i = 0 to per_batch - 1 do
      sink := !sink + Conntable.find t (Array.unsafe_get keys i)
    done;
    ns.(b) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int per_batch
  done;
  ignore (Sys.opaque_identity !sink);
  Array.sort compare ns;
  let at q = ns.(min (batches - 1) (int_of_float (q *. float_of_int (batches - 1)))) in
  { live; capacity = Conntable.capacity t; p50_ns = at 0.5; p99_ns = at 0.99 }

(* --------------------------------------------------------------- e11 *)

let e11_swarm_scale () =
  let seed = 0x5A11 in
  let scales = if !smoke then [ 100; 500 ] else [ 100; 1_000; 10_000 ] in
  pf "@.== e11_swarm_scale: %s-session dispatcher churn%s ==@."
    (string_of_int (List.fold_left max 0 scales))
    (if !smoke then " [smoke]" else "");

  (* Scale sweep. *)
  let results = List.map (fun sessions -> run_scale ~sessions ~seed) scales in
  List.iter report_scale results;
  let largest = List.nth results (List.length results - 1) in
  swarm_report largest.outcome;

  (* Determinism: double run at the largest scale. *)
  let rerun = run_scale ~sessions:largest.sessions ~seed in
  let stable = rerun.outcome.Swarm.digest = largest.outcome.Swarm.digest in
  Util.shape_check
    (Printf.sprintf "same seed, %d sessions: identical trace digest on rerun"
       largest.sessions)
    stable;

  (* Determinism: four domains replaying the identical config via FLEET. *)
  let fleet_sessions = List.nth scales (min 1 (List.length scales - 1)) in
  let reference = run_scale ~sessions:fleet_sessions ~seed in
  let digests =
    Adaptive_fleet.Fleet.map ~jobs:4
      (fun s -> (Swarm.run (Swarm.default_config ~sessions:s ~seed)).Swarm.digest)
      (Array.make 4 fleet_sessions)
  in
  let fleet_ok =
    Array.for_all (fun d -> d = reference.outcome.Swarm.digest) digests
  in
  Util.shape_check
    (Printf.sprintf "jobs=4 fleet replay, %d sessions: all digests identical"
       fleet_sessions)
    fleet_ok;

  (* Wall-clock demux micro: the O(1) criterion. *)
  let micro = List.map (fun live -> demux_micro ~live) scales in
  List.iter
    (fun m ->
      pf "  micro: find over %5d live conns (capacity %6d): p50 %5.2f ns/op  \
          p99 %5.2f ns/op@."
        m.live m.capacity m.p50_ns m.p99_ns)
    micro;
  let first = List.hd micro in
  let last = List.nth micro (List.length micro - 1) in
  let ratio = last.p99_ns /. first.p99_ns in
  Util.shape_check
    (Printf.sprintf
       "demux p99 ns/op at %d sessions <= 2x the %d-session value (%.2fx)"
       last.live first.live ratio)
    (ratio <= 2.0);

  (* Overload: a policy sized well under the offered load must refuse or
     degrade, and every such decision must be accounted in UNITES. *)
  let over_sessions = fleet_sessions in
  let policy =
    {
      Mantts.soft_sessions = over_sessions / 4;
      hard_sessions = over_sessions / 2;
      max_cpu_backlog = Time.ms 50;
    }
  in
  let over_cfg =
    { (Swarm.default_config ~sessions:over_sessions ~seed) with
      Swarm.admission = Some policy }
  in
  let over = Swarm.run over_cfg in
  pf "  overload (%d sessions, soft %d hard %d): admitted %d degraded %d \
      refused %d@."
    over_sessions policy.Mantts.soft_sessions policy.Mantts.hard_sessions
    over.Swarm.admitted over.Swarm.degraded over.Swarm.refused;
  swarm_report over;
  let u = over.Swarm.unites in
  let counted m = int_of_float (Unites.total u ~session:Unites.swarm_session m) in
  Util.shape_check "overload refuses or degrades sessions"
    (over.Swarm.refused > 0 || over.Swarm.degraded > 0);
  Util.shape_check "refusals accounted in UNITES swarm session"
    (counted Unites.Sessions_refused = over.Swarm.refused);
  Util.shape_check "degradations accounted in UNITES swarm session"
    (counted Unites.Sessions_degraded = over.Swarm.degraded);
  Util.shape_check "admissions accounted in UNITES swarm session"
    (counted Unites.Sessions_open = over.Swarm.admitted);
  Util.shape_check "peak live sessions stayed under the hard threshold"
    (over.Swarm.peak_live <= policy.Mantts.hard_sessions);

  (* JSON emission. *)
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e11_swarm_scale\",\n  \"seed\": %d,\n  \"smoke\": %b,\n  \"scales\": [\n"
    seed !smoke;
  List.iteri
    (fun i (r, m) ->
      let o = r.outcome in
      Printf.bprintf buf
        {|    { "sessions": %d, "sessions_per_sec": %.1f, "events_per_sec": %.1f,
      "demux_probes_mean": %.4f, "demux_probes_p99": %.1f,
      "demux_find_p50_ns": %.2f, "demux_find_p99_ns": %.2f,
      "occupancy_p99": %.4f, "peak_live": %d, "table_capacity": %d,
      "digest": "0x%Lx" }%s
|}
        r.sessions (sessions_per_sec r) (events_per_sec r)
        o.Swarm.demux_probes_mean o.Swarm.demux_probes_p99 m.p50_ns m.p99_ns
        o.Swarm.occupancy_p99 o.Swarm.peak_live o.Swarm.table_capacity
        o.Swarm.digest
        (if i = List.length results - 1 then "" else ","))
    (List.combine results micro);
  Printf.bprintf buf
    "  ],\n  \"micro_p99_ratio\": %.3f,\n  \"digest_stable\": %b,\n  \"fleet_jobs4_identical\": %b,\n"
    ratio stable fleet_ok;
  Printf.bprintf buf
    "  \"overload\": { \"sessions\": %d, \"admitted\": %d, \"degraded\": %d, \"refused\": %d }\n}\n"
    over_sessions over.Swarm.admitted over.Swarm.degraded over.Swarm.refused;
  let oc = open_out "BENCH_swarm.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "  wrote BENCH_swarm.json@."
