(* e10_fleet_scale — FLEET campaign scaling and determinism.

   Runs the e9-style chaos campaign (randomized fault schedules against
   the full two-session stack, cycling the three interoperation
   environments) twice: sequentially, and sharded across domains by
   FLEET.  The parallel run must be byte-identical — same per-run
   FNV-1a trace hashes, same rendered UNITES reports, same combined
   campaign digest — and the wall-clock ratio is the measured speedup.
   Emits BENCH_fleet.json.

   The determinism checks are exact and hold on any machine; the
   speedup criterion (>= 2x at 4 domains) needs >= 4 hardware cores —
   the JSON records how many were available so a single-core container
   run is legible as such. *)

open Adaptive_chaos
open Adaptive_fleet

let smoke = ref false

let wall () = Unix.gettimeofday ()

type run = {
  r_jobs : int;
  r_wall_s : float;
  r_events : int;
  r_hash : int64;
  r_reports : (int * string) list;
  r_failures : int;
}

let measure ~jobs ~seed ~schedules =
  let t0 = wall () in
  let report = Soak.soak_par ~jobs ~seed ~schedules () in
  let r_wall_s = wall () -. t0 in
  let outcomes = report.Soak.r_outcomes in
  {
    r_jobs = jobs;
    r_wall_s;
    r_events = List.fold_left (fun a o -> a + o.Soak.o_events) 0 outcomes;
    r_hash = Fleet.combine_hashes (List.map (fun o -> o.Soak.o_hash) outcomes);
    r_reports = List.mapi (fun i o -> (i, o.Soak.o_unites)) outcomes;
    r_failures = List.length report.Soak.r_failures;
  }

let events_per_sec r =
  if r.r_wall_s <= 0.0 then 0.0 else float_of_int r.r_events /. r.r_wall_s

let pf = Format.printf

let report_run label r =
  pf "  %-12s %8d events  %8.3f s wall  %9.0f ev/s  digest 0x%016Lx@." label
    r.r_events r.r_wall_s (events_per_sec r) r.r_hash

let e10_fleet_scale () =
  Util.heading "E10 — FLEET: deterministic parallel campaign execution";
  let schedules = if !smoke then 12 else 48 in
  let seed = 4242 in
  let jobs = if !Util.jobs > 1 then !Util.jobs else 4 in
  let cores = Domain.recommended_domain_count () in
  pf "  campaign: %d chaos schedule(s), base seed %d, %d job(s), %d core(s) available%s@."
    schedules seed jobs cores
    (if !smoke then " [smoke]" else "");
  let seq = measure ~jobs:1 ~seed ~schedules in
  let par = measure ~jobs ~seed ~schedules in
  report_run "jobs=1" seq;
  report_run (Printf.sprintf "jobs=%d" jobs) par;
  let mismatches = Fleet.check_identical seq.r_reports par.r_reports in
  let identical = mismatches = [] && Int64.equal seq.r_hash par.r_hash in
  (* Honest reporting: a wall-clock ratio from a machine with fewer
     cores than jobs measures domain overhead, not speedup — report
     null with a reason instead of a misleading number. *)
  let speedup =
    if cores < jobs then None
    else if par.r_wall_s > 0.0 then Some (seq.r_wall_s /. par.r_wall_s)
    else None
  in
  (match speedup with
  | Some s ->
    pf "  speedup %.2fx wall-clock (criterion >= 2.0 needs >= 4 cores: %s)@." s
      (if s >= 2.0 then "PASS" else if cores < 4 then "N/A on this machine" else "FAIL")
  | None ->
    pf "  speedup: n/a (%d core(s) available < %d job(s))@." cores jobs);
  Util.shape_check "no invariant violations in either run"
    (seq.r_failures = 0 && par.r_failures = 0);
  Util.shape_check
    (Printf.sprintf "parallel campaign digest matches sequential (0x%016Lx)" seq.r_hash)
    (Int64.equal seq.r_hash par.r_hash);
  Util.shape_check "every rendered UNITES report byte-identical" (mismatches = []);
  List.iter
    (fun (i, _, _) -> pf "  MISMATCH at run %d@." i)
    mismatches;
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n\
    \  \"experiment\": \"e10_fleet_scale\",\n\
    \  \"schedules\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"smoke\": %b,\n\
    \  \"cores_available\": %d,\n\
    \  \"runs\": [\n"
    schedules seed !smoke cores;
  let json_run r trailing =
    Printf.bprintf buf
      "    { \"jobs\": %d, \"wall_s\": %.6f, \"events\": %d, \"events_per_sec\": %.1f }%s\n"
      r.r_jobs r.r_wall_s r.r_events (events_per_sec r) trailing
  in
  json_run seq ",";
  json_run par "";
  Printf.bprintf buf
    "  ],\n\
    \  \"campaign_hash\": \"0x%016Lx\",\n\
    \  \"deterministic\": %b,\n"
    seq.r_hash identical;
  (match speedup with
  | Some s -> Printf.bprintf buf "  \"speedup\": %.3f\n}\n" s
  | None ->
    Printf.bprintf buf
      "  \"speedup\": null,\n  \"reason\": \"cores_available < jobs\"\n}\n");
  let oc = open_out "BENCH_fleet.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "  wrote BENCH_fleet.json@.";
  if not identical then exit 1
