(* Benchmark and experiment harness for the ADAPTIVE reproduction.

   Regenerates every table and figure of the paper, plus one experiment
   per quantitative claim.  Run everything:

     dune exec bench/main.exe

   or a single experiment:

     dune exec bench/main.exe -- --only e3_fec
     dune exec bench/main.exe -- --list

   [--smoke] shrinks the workloads that honor it (e8_engine_scale) so CI
   can exercise the harness quickly; the [@bench-smoke] dune alias runs
   exactly that. *)

let registry =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("fig1", Figures.fig1);
    ("fig2", Figures.fig2);
    ("fig3", Figures.fig3);
    ("fig6", Figures.fig6);
    ("e1_weight", Experiments.e1_weight);
    ("e2_recovery", Experiments.e2_recovery);
    ("e3_fec", Experiments.e3_fec);
    ("e4_preserve", Experiments.e4_preserve);
    ("e5_reconfig", Experiments.e5_reconfig);
    ("e6_window", Experiments.e6_window);
    ("e7_replicate", Experiments.e7_replicate);
    ("e8_engine_scale", Engine_scale.e8_engine_scale);
    ("e9_chaos", Chaos_bench.e9_chaos);
    ("a1_detection", Ablations.a1_detection);
    ("a2_fec_group", Ablations.a2_fec_group);
    ("a3_ack_delay", Ablations.a3_ack_delay);
    ("a4_layering", Ablations.a4_layering);
    ("fig45_micro", Micro.fig45_and_micro);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let smoke, args = List.partition (String.equal "--smoke") args in
  if smoke <> [] then begin
    Engine_scale.smoke := true;
    Chaos_bench.smoke := true
  end;
  match args with
  | _ :: "--list" :: _ ->
    List.iter (fun (id, _) -> print_endline id) registry
  | _ :: "--only" :: id :: _ -> (
    match List.assoc_opt id registry with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown experiment %S; try --list\n" id;
      exit 1)
  | _ ->
    Format.printf
      "ADAPTIVE reproduction — experiment harness (all tables, figures and claims)@.";
    List.iter (fun (_, f) -> f ()) registry
