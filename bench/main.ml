(* Benchmark and experiment harness for the ADAPTIVE reproduction.

   Regenerates every table and figure of the paper, plus one experiment
   per quantitative claim.  Run everything:

     dune exec bench/main.exe

   or a single experiment:

     dune exec bench/main.exe -- --only e3_fec
     dune exec bench/main.exe -- --list

   [--smoke] shrinks the workloads that honor it (e8_engine_scale,
   e9_chaos, e10_fleet_scale) so CI can exercise the harness quickly;
   the [@bench-smoke], [@chaos-smoke] and [@fleet-smoke] dune aliases
   run exactly that.  [--jobs N] shards the replication-style
   experiments (e7, e9, e10) across N domains via FLEET; [--seeds
   a,b,c] overrides the seed list the replication experiments sweep. *)

open Bench_harness

let registry =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("fig1", Figures.fig1);
    ("fig2", Figures.fig2);
    ("fig3", Figures.fig3);
    ("fig6", Figures.fig6);
    ("e1_weight", Experiments.e1_weight);
    ("e2_recovery", Experiments.e2_recovery);
    ("e3_fec", Experiments.e3_fec);
    ("e4_preserve", Experiments.e4_preserve);
    ("e5_reconfig", Experiments.e5_reconfig);
    ("e6_window", Experiments.e6_window);
    ("e7_replicate", Experiments.e7_replicate);
    ("e8_engine_scale", Engine_scale.e8_engine_scale);
    ("e9_chaos", Chaos_bench.e9_chaos);
    ("e10_fleet_scale", Fleet_scale.e10_fleet_scale);
    ("e11_swarm_scale", Swarm_scale.e11_swarm_scale);
    ("e12_wire_path", Wire_path.e12_wire_path);
    ("e13_megaswarm_scale", Megaswarm_scale.e13_megaswarm_scale);
    ("e14_steer", Steer_bench.e14_steer);
    ("e15_gigaswarm", Megaswarm_scale.e15_gigaswarm);
    ("a1_detection", Ablations.a1_detection);
    ("a2_fec_group", Ablations.a2_fec_group);
    ("a3_ack_delay", Ablations.a3_ack_delay);
    ("a4_layering", Ablations.a4_layering);
    ("fig45_micro", Micro.fig45_and_micro);
  ]

(* A later registration silently shadowing an earlier one is exactly the
   kind of bug that makes an experiment "pass" by running the wrong
   code; refuse to start instead. *)
let () =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (id, _) ->
      if Hashtbl.mem seen id then begin
        Printf.eprintf "duplicate experiment registration: %S\n" id;
        exit 2
      end;
      Hashtbl.add seen id ())
    registry

let usage () =
  prerr_endline
    "usage: main.exe [--smoke] [--jobs N] [--seeds a,b,c] [--list | --only ID \
     [--only ID ...]]";
  exit 1

let () =
  let action = ref `All in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      Engine_scale.smoke := true;
      Chaos_bench.smoke := true;
      Fleet_scale.smoke := true;
      Swarm_scale.smoke := true;
      Wire_path.smoke := true;
      Megaswarm_scale.smoke := true;
      Steer_bench.smoke := true;
      parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> Util.jobs := n
      | _ ->
        Printf.eprintf "--jobs: expected a positive integer, got %S\n" n;
        exit 1);
      parse rest
    | "--seeds" :: s :: rest ->
      (match Util.parse_seed_list s with
      | Some seeds -> Util.seeds_override := Some seeds
      | None ->
        Printf.eprintf "--seeds: expected a comma-separated integer list, got %S\n" s;
        exit 1);
      parse rest
    | "--list" :: rest ->
      action := `List;
      parse rest
    | "--only" :: id :: rest ->
      (* Repeatable: experiments that contribute sections to a shared
         artifact (e13 + e15 -> BENCH_megaswarm.json) can run in one
         process. *)
      (action :=
         match !action with
         | `Only ids -> `Only (ids @ [ id ])
         | _ -> `Only [ id ]);
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !action with
  | `List -> List.iter (fun (id, _) -> print_endline id) registry
  | `Only ids ->
    List.iter
      (fun id ->
        match List.assoc_opt id registry with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; try --list\n" id;
          exit 1)
      ids
  | `All ->
    Format.printf
      "ADAPTIVE reproduction — experiment harness (all tables, figures and claims)@.";
    List.iter (fun (_, f) -> f ()) registry
