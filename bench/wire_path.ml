(* e12_wire_path — the wire-true zero-copy data path (WIRE).

   Three layers of evidence that the fused single-pass encode+checksum
   path is both faster and exact:

   1. Micro: serialize the same data PDU through the string codec
      ([Codec.encode]: blit pass + checksum pass + a fresh string per
      PDU) and through the fused path ([Codec.encode_into]: one pass
      into a reused wire buffer).  Reported per path: bytes/s, minor
      words per PDU, and Msg-counted physical copies per PDU.  The
      acceptance criteria are fused >= 2x string-codec bytes/s, and
      0 minor words per PDU at steady state for [encode_into] and for
      the in-place receive scan ([Codec.scan_data]) — asserted via
      [Gc.minor_words] deltas over the timed loops.  [Codec.decode_view]
      necessarily allocates its result PDU; its (small, constant)
      words/PDU is reported for contrast.

   2. Wire-true runs: the SWARM churn workload executed in wire-true
      mode on its lossless LAN must produce the FNV-1a trace digest of
      the value-mode run — the wire hooks add zero simulated time and
      no extra random draws — and the digest must hold on a rerun and
      across a [Fleet.map ~jobs:4] replay on separate domains.

   3. Wire whitebox: every injected frame is accounted (encodes =
      decodes on the lossless link, zero rejects), and the buffer pool
      serves the steady state from reuse rather than fresh allocation.

   Emits BENCH_wire.json. *)

open Adaptive_sim
open Adaptive_buf
open Adaptive_mech
open Adaptive_core
open Adaptive_workloads

(* Set by main.ml's --smoke flag: shorter loops, smaller swarm. *)
let smoke = ref false

let pf = Format.printf

(* ------------------------------------------------------------- micro *)

let payload_bytes = 1400

let make_data () =
  let payload =
    Msg.of_string
      (String.init payload_bytes (fun i -> Char.chr (((i * 131) + 17) land 0xff)))
  in
  Pdu.Data
    {
      conn = 7;
      seg =
        Pdu.seg ~payload ~last:false ~stamp:(Time.us 123) ~seq:42
          ~bytes:payload_bytes ();
      retransmit = false;
      tx_stamp = Time.us 456;
    }

type micro_result = {
  label : string;
  bytes_per_sec : float;
  words_per_pdu : float;
  copies_per_pdu : float;
}

(* Time [iters] runs of [f], reading the minor-word and Msg-copy
   counters around the loop.  [Gc.minor_words] itself boxes a float; at
   the loop lengths used here that is < 0.001 words/PDU of noise. *)
let measure ~label ~iters ~pdu_bytes f =
  for _ = 1 to 1000 do
    f ()
  done;
  Msg.reset_copy_counters ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let n = float_of_int iters in
  {
    label;
    bytes_per_sec =
      (if elapsed <= 0.0 then 0.0 else float_of_int (iters * pdu_bytes) /. elapsed);
    words_per_pdu = words /. n;
    copies_per_pdu = float_of_int (Msg.physical_copies ()) /. n;
  }

let report_micro r =
  pf "  %-24s %8.1f MB/s  %10.4f words/PDU  %6.3f copies/PDU@." r.label
    (r.bytes_per_sec /. 1e6) r.words_per_pdu r.copies_per_pdu

(* ---------------------------------------------------------------- e12 *)

let e12_wire_path () =
  let iters = if !smoke then 50_000 else 200_000 in
  pf "@.== e12_wire_path: fused single-pass encode+checksum%s ==@."
    (if !smoke then " [smoke]" else "");

  let pdu = make_data () in
  let wire_len = Pdu.wire_bytes pdu in
  let st = Codec.wire_state () in
  let buf = Bytes.create (wire_len + 64) in

  (* Encode paths. *)
  let enc_string =
    measure ~label:"encode (string codec)" ~iters ~pdu_bytes:wire_len (fun () ->
        ignore (Sys.opaque_identity (Codec.encode pdu)))
  in
  let enc_fused =
    measure ~label:"encode_into (fused)" ~iters ~pdu_bytes:wire_len (fun () ->
        ignore (Sys.opaque_identity (Codec.encode_into st pdu buf ~off:0)))
  in

  (* Decode paths, over the image the fused encoder just produced. *)
  let image = String.sub (Bytes.unsafe_to_string buf) 0 wire_len in
  let dec_string =
    measure ~label:"decode (string codec)" ~iters ~pdu_bytes:wire_len (fun () ->
        match Codec.decode image with
        | Ok _ -> ()
        | Error _ -> failwith "e12: string decode failed")
  in
  let dec_view =
    measure ~label:"decode_view (in place)" ~iters ~pdu_bytes:wire_len (fun () ->
        match Codec.decode_view buf ~off:0 ~len:wire_len with
        | Ok _ -> ()
        | Error _ -> failwith "e12: decode_view failed")
  in
  let dec_scan =
    measure ~label:"scan_data (zero-alloc)" ~iters ~pdu_bytes:wire_len (fun () ->
        match Codec.scan_data st buf ~off:0 ~len:wire_len with
        | Codec.Scan_ok -> ()
        | _ -> failwith "e12: scan_data failed")
  in
  let micro = [ enc_string; enc_fused; dec_string; dec_view; dec_scan ] in
  List.iter report_micro micro;

  let enc_ratio = enc_fused.bytes_per_sec /. enc_string.bytes_per_sec in
  let scan_ratio = dec_scan.bytes_per_sec /. dec_string.bytes_per_sec in
  Util.shape_check
    (Printf.sprintf "fused encode >= 2x string-codec bytes/s (%.2fx)" enc_ratio)
    (enc_ratio >= 2.0);
  Util.shape_check
    (Printf.sprintf "in-place scan >= 2x string-codec decode (%.2fx)" scan_ratio)
    (scan_ratio >= 2.0);
  (* "Zero minor words per data PDU at steady state": the only
     allocation tolerated over the loop is the float box Gc.minor_words
     itself costs, far under 0.01 words/PDU. *)
  Util.shape_check
    (Printf.sprintf "encode_into allocates 0 words/PDU (%.4f)"
       enc_fused.words_per_pdu)
    (enc_fused.words_per_pdu < 0.01);
  Util.shape_check
    (Printf.sprintf "scan_data allocates 0 words/PDU (%.4f)"
       dec_scan.words_per_pdu)
    (dec_scan.words_per_pdu < 0.01);
  Util.shape_check
    (Printf.sprintf "fused path performs no counted payload copies (%.3f)"
       enc_fused.copies_per_pdu)
    (enc_fused.copies_per_pdu = 0.0);
  Util.shape_check
    (Printf.sprintf "fused checksums happened in the copy pass (%d)"
       (Codec.fused_sums st))
    (Codec.fused_sums st > 0);

  (* Wire-true vs value mode on the lossless SWARM LAN. *)
  let sessions = if !smoke then 200 else 1_000 in
  let seed = 0xE12 in
  let value_cfg = Swarm.default_config ~sessions ~seed in
  let wire_cfg = { value_cfg with Swarm.wire = true } in
  let value_o = Swarm.run value_cfg in
  let wire_o = Swarm.run wire_cfg in
  pf "  value mode: digest=0x%Lx  wire mode: digest=0x%Lx@." value_o.Swarm.digest
    wire_o.Swarm.digest;
  (match wire_o.Swarm.wire_report with
  | None -> ()
  | Some w ->
    pf "  wire: encodes=%d decodes=%d rejects=%d fused_sums=%d pool_reuse=%.3f@."
      w.Session.Wire.encodes w.Session.Wire.decodes w.Session.Wire.rejects
      w.Session.Wire.fused_sums w.Session.Wire.pool_reuse_rate);
  Util.shape_check "wire-true digest equals value-mode digest (lossless)"
    (wire_o.Swarm.digest = value_o.Swarm.digest);
  let wire_o2 = Swarm.run wire_cfg in
  Util.shape_check "wire-true rerun: identical digest"
    (wire_o2.Swarm.digest = wire_o.Swarm.digest);
  let digests =
    Adaptive_fleet.Fleet.map ~jobs:4
      (fun cfg -> (Swarm.run cfg).Swarm.digest)
      (Array.make 4 wire_cfg)
  in
  Util.shape_check "jobs=4 fleet replay: all wire digests identical"
    (Array.for_all (fun d -> d = wire_o.Swarm.digest) digests);
  let wr =
    match wire_o.Swarm.wire_report with
    | Some w -> w
    | None -> failwith "e12: wire run produced no wire report"
  in
  Util.shape_check "lossless link: every encoded frame decoded, none rejected"
    (wr.Session.Wire.encodes = wr.Session.Wire.decodes
    && wr.Session.Wire.rejects = 0);
  Util.shape_check
    (Printf.sprintf "frame leases mostly pool-served (reuse %.3f)"
       wr.Session.Wire.pool_reuse_rate)
    (wr.Session.Wire.pool_reuse_rate >= 0.5);

  (* JSON emission. *)
  let buf_j = Buffer.create 2048 in
  Printf.bprintf buf_j
    "{\n  \"experiment\": \"e12_wire_path\",\n  \"seed\": %d,\n  \"smoke\": %b,\n\
    \  \"payload_bytes\": %d,\n  \"wire_bytes\": %d,\n  \"iters\": %d,\n\
    \  \"micro\": [\n"
    seed !smoke payload_bytes wire_len iters;
  List.iteri
    (fun i r ->
      Printf.bprintf buf_j
        {|    { "path": %S, "bytes_per_sec": %.0f, "words_per_pdu": %.4f, "copies_per_pdu": %.3f }%s
|}
        r.label r.bytes_per_sec r.words_per_pdu r.copies_per_pdu
        (if i = List.length micro - 1 then "" else ","))
    micro;
  Printf.bprintf buf_j
    "  ],\n  \"encode_speedup\": %.3f,\n  \"scan_speedup\": %.3f,\n\
    \  \"digest_parity\": %b,\n  \"rerun_stable\": %b,\n\
    \  \"fleet_jobs4_identical\": %b,\n"
    enc_ratio scan_ratio
    (wire_o.Swarm.digest = value_o.Swarm.digest)
    (wire_o2.Swarm.digest = wire_o.Swarm.digest)
    (Array.for_all (fun d -> d = wire_o.Swarm.digest) digests);
  Printf.bprintf buf_j
    "  \"wire\": { \"encodes\": %d, \"decodes\": %d, \"rejects\": %d, \
     \"fused_sums\": %d, \"pool_reuse_rate\": %.4f }\n}\n"
    wr.Session.Wire.encodes wr.Session.Wire.decodes wr.Session.Wire.rejects
    wr.Session.Wire.fused_sums wr.Session.Wire.pool_reuse_rate;
  let oc = open_out "BENCH_wire.json" in
  output_string oc (Buffer.contents buf_j);
  close_out oc;
  pf "  wrote BENCH_wire.json@."
