(* Quantitative experiments for the paper's prose claims (§2.2, §3, §4):
   over/underweight configurations, adaptive recovery switching,
   ARQ-vs-FEC crossover, the throughput preservation problem, data-phase
   reconfiguration, and long-fat-network window scaling. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_baselines
open Adaptive_workloads

(* ------------------------------------------------------------ e1_weight *)

(* §2.2(B): an overweight configuration (TP4-style full reliability for
   loss-tolerant voice) versus the ADAPTIVE-synthesized lightweight one;
   and an underweight configuration (TCP has no multicast, so group
   delivery costs N unicast connections). *)
let e1_weight () =
  Util.heading "E1 — over/underweight configurations (§2.2 B)";
  (* Part A: interactive voice under WAN congestion. *)
  let run_voice which =
    let p = Util.make_pair (Profiles.internet_path ()) in
    Congestion.constant (List.nth p.Util.hops 1) 0.90;
    let latencies = ref [] and delivered = ref 0 in
    Mantts.set_app_handler
      (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.dst)
      (fun _ d ->
        incr delivered;
        latencies := Time.diff d.Session.delivered_at d.Session.app_stamp :: !latencies);
    let session =
      match which with
      | `Tp4 ->
        Baselines.connect
          (Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src))
          ~peers:[ p.Util.dst ] Baselines.Tp4_like
      | `Adaptive ->
        let acd =
          Acd.make ~participants:[ p.Util.dst ]
            ~qos:(Workloads.qos Workloads.Voice_conversation) ()
        in
        Mantts.open_session p.Util.stack.Adaptive.mantts ~src:p.Util.src ~acd ()
    in
    let driver =
      Workloads.drive p.Util.stack.Adaptive.engine p.Util.stack.Adaptive.rng ~session
        Workloads.Voice_conversation ~stop_at:(Time.sec 10.0)
    in
    Adaptive.run p.Util.stack ~until:(Time.sec 13.0);
    let sorted = List.sort compare !latencies in
    let n = List.length sorted in
    let pct q = if n = 0 then Time.zero else List.nth sorted (min (n - 1) (n * q / 100)) in
    let deadline = Time.ms 200 in
    let misses = List.length (List.filter (fun l -> l > deadline) !latencies) in
    let sent = Workloads.messages_sent driver in
    ( sent,
      !delivered,
      pct 50,
      pct 95,
      100.0 *. float_of_int misses /. float_of_int (max 1 !delivered) )
  in
  let s_tp4, d_tp4, p50_tp4, p95_tp4, miss_tp4 = run_voice `Tp4 in
  let s_ad, d_ad, p50_ad, p95_ad, miss_ad = run_voice `Adaptive in
  Util.row "voice over congested WAN (200 ms deadline):@.";
  Util.row "  %-22s %6s %6s %12s %12s %10s@." "configuration" "sent" "dlvrd" "p50" "p95"
    "miss%%";
  Util.row "  %-22s %6d %6d %12s %12s %9.1f%%@." "tp4 (overweight)" s_tp4 d_tp4
    (Time.to_string p50_tp4) (Time.to_string p95_tp4) miss_tp4;
  Util.row "  %-22s %6d %6d %12s %12s %9.1f%%@." "adaptive lightweight" s_ad d_ad
    (Time.to_string p50_ad) (Time.to_string p95_ad) miss_ad;
  Util.shape_check "lightweight config misses fewer deadlines than TP4"
    (miss_ad < miss_tp4);
  Util.shape_check "lightweight tail latency below TP4's" (p95_ad < p95_tp4);
  (* Part B: reliable delivery to a group of N. *)
  Util.row "@.group delivery of 1 MB to N receivers (shared access link):@.";
  Util.row "  %-3s %22s %22s %8s@." "N" "adaptive mcast (bytes)" "tcp n-unicast (bytes)"
    "ratio";
  let ratios =
    List.map
      (fun n ->
        (* ADAPTIVE reliable multicast. *)
        let stack, src, dsts, access = Util.make_star ~receivers:n () in
        let qos =
          { (Workloads.qos Workloads.Teleconferencing) with Qos.loss_tolerance = 0.0 }
        in
        let acd = Acd.make ~participants:dsts ~qos () in
        let s = Mantts.open_session stack.Adaptive.mantts ~src ~acd () in
        Adaptive.run stack ~until:(Time.ms 100);
        Session.send s ~bytes:1_000_000 ();
        Adaptive.run stack ~until:(Time.sec 30.0);
        let mcast_bytes = (Link.stats access).Link.bytes_carried in
        Mantts.close_session stack.Adaptive.mantts s;
        (* TCP-like N-unicast. *)
        let stack2, src2, dsts2, access2 = Util.make_star ~receivers:n () in
        let sessions =
          List.map
            (fun dst ->
              Baselines.connect
                (Mantts.dispatcher (Mantts.entity stack2.Adaptive.mantts src2))
                ~peers:[ dst ] Baselines.Tcp_like)
            dsts2
        in
        Adaptive.run stack2 ~until:(Time.ms 100);
        List.iter (fun s -> Session.send s ~bytes:1_000_000 ()) sessions;
        Adaptive.run stack2 ~until:(Time.sec 60.0);
        let unicast_bytes = (Link.stats access2).Link.bytes_carried in
        let ratio = float_of_int unicast_bytes /. float_of_int (max 1 mcast_bytes) in
        Util.row "  %-3d %22d %22d %8.2f@." n mcast_bytes unicast_bytes ratio;
        (n, ratio))
      [ 2; 4; 8 ]
  in
  Util.shape_check "n-unicast cost on the shared hop grows ~linearly with N"
    (List.for_all (fun (n, r) -> r > 0.7 *. float_of_int n) ratios)

(* ---------------------------------------------------------- e2_recovery *)

(* §3(C) example 1: go-back-n vs selective repeat across congestion
   levels, and the adaptive policy that switches between them. *)
let e2_recovery () =
  Util.heading "E2 — recovery scheme vs congestion (§3 C, example 1)";
  let transfer = 2_000_000 in
  let run_static recovery reporting congestion_level =
    let p = Util.make_pair (Profiles.campus_path ()) in
    Congestion.constant (List.nth p.Util.hops 1) congestion_level;
    let scs =
      {
        Scs.default with
        Scs.connection = Params.Two_way;
        transmission = Params.Sliding_window { window = 32 };
        recovery;
        reporting;
        recv_buffer_segments = 64;
        segment_bytes = 1400;
        initial_rto = Time.ms 60;
      }
    in
    let disp = Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src) in
    let s = Session.connect disp ~peers:[ p.Util.dst ] ~scs () in
    Session.send s ~bytes:transfer ();
    Adaptive.run p.Util.stack ~until:(Time.sec 120.0);
    Session.close ~graceful:false s;
    ( Util.mbps (Util.goodput_bps p.Util.stack),
      Util.total p.Util.stack Unites.Retransmissions,
      Util.total p.Util.stack Unites.Timeouts,
      (Network.stats p.Util.stack.Adaptive.net).Network.dropped_queue )
  in
  Util.row "%-12s %24s %24s %16s@." "congestion" "gbn Mb/s (rtx/to/drop)"
    "srepeat Mb/s (rtx/to/drop)" "winner";
  Util.rule 84;
  let sr_wins_high = ref false and comparable_low = ref false in
  List.iter
    (fun level ->
      let g_gbn, rtx_gbn, to_gbn, dr_gbn =
        run_static Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 2 }) level
      in
      let g_sr, rtx_sr, to_sr, dr_sr =
        run_static Params.Selective_repeat
          (Params.Selective_ack { delay = Time.ms 2 })
          level
      in
      if level >= 0.85 && g_sr > g_gbn then sr_wins_high := true;
      if level <= 0.3 && Float.abs (g_gbn -. g_sr) < 0.4 *. Float.max g_gbn g_sr then
        comparable_low := true;
      Util.row "%-12.2f %8.2f (%4.0f/%3.0f/%4d) %8.2f (%4.0f/%3.0f/%4d) %16s@." level
        g_gbn rtx_gbn to_gbn dr_gbn g_sr rtx_sr to_sr dr_sr
        (if g_sr > g_gbn *. 1.05 then "selective repeat"
         else if g_gbn > g_sr *. 1.05 then "go-back-n"
         else "comparable"))
    [ 0.0; 0.3; 0.6; 0.8; 0.9 ];
  Util.rule 76;
  Util.shape_check "schemes comparable at low congestion" !comparable_low;
  Util.shape_check "selective repeat wins under heavy congestion" !sr_wins_high

(* --------------------------------------------------------------- e3_fec *)

(* §3(C) example 2: retransmission-based vs FEC-based recovery as the
   round-trip delay grows (terrestrial -> satellite). *)
let e3_fec () =
  Util.heading "E3 — ARQ vs FEC vs delay (§3 C, example 2)";
  (* A 1.6 Mb/s CBR stream: one 1000-byte segment every 5 ms, each
     stamped at generation so delivery latency is per segment. *)
  let frames = 1200 in
  (* ~1% packet loss from bit errors on a 1000-byte segment. *)
  let ber = 1.25e-6 in
  let run recovery one_way =
    let hops =
      [
        Link.create ~bandwidth_bps:10e6 ~propagation:one_way ~queue_pkts:128 ~ber
          ~mtu:1500 ();
      ]
    in
    let p = Util.make_pair hops in
    let reporting =
      match recovery with
      | Params.Selective_repeat -> Params.Selective_ack { delay = Time.ms 2 }
      | _ -> Params.No_report
    in
    let scs =
      {
        Scs.default with
        Scs.connection = Params.Two_way;
        transmission =
          (match recovery with
          | Params.Selective_repeat -> Params.Sliding_window { window = 64 }
          | _ -> Params.Rate_based { rate_bps = 4e6; burst = 8 });
        recovery;
        reporting;
        (* Media frames are independent: deliver as they arrive, as the
           Stage II rules themselves choose for these classes. *)
        ordering = Params.Unordered;
        recv_buffer_segments = 128;
        segment_bytes = 1000;
        initial_rto = Time.max (Time.ms 40) (3 * one_way);
      }
    in
    let disp = Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src) in
    let s = Session.connect disp ~peers:[ p.Util.dst ] ~scs () in
    let engine = p.Util.stack.Adaptive.engine in
    for i = 0 to frames - 1 do
      ignore
        (Engine.schedule engine
           ~at:(Time.add (Time.ms 20) (i * Time.ms 5))
           (fun () ->
             if Session.state s = Session.Established then Session.send s ~bytes:1000 ()))
    done;
    Adaptive.run p.Util.stack ~until:(Time.sec 60.0);
    Session.close ~graceful:false s;
    let delivered = Util.delivered_bytes p.Util.stack /. float_of_int (frames * 1000) in
    let lat = Util.latency_summary p.Util.stack in
    let p99 = match lat with Some l -> l.Stats.p99 | None -> nan in
    (100.0 *. delivered, p99)
  in
  Util.row "%-12s %24s %24s %20s@." "one-way" "srepeat dlvd%% / p99" "fec:8 dlvd%% / p99"
    "latency winner";
  Util.rule 88;
  let fec_flat = ref true and arq_grows = ref (0.0, 0.0) in
  List.iter
    (fun ms ->
      let d_arq, l_arq = run Params.Selective_repeat (Time.ms ms) in
      let d_fec, l_fec = run (Params.Forward_error_correction { group = 8 }) (Time.ms ms) in
      if ms = 1 then arq_grows := (l_arq, snd !arq_grows);
      if ms = 300 then arq_grows := (fst !arq_grows, l_arq);
      if ms = 300 && l_fec > 1.0 then fec_flat := false;
      Util.row "%-12s %14.1f%% %7.0fms %14.1f%% %7.0fms %20s@."
        (Time.to_string (Time.ms ms))
        d_arq (l_arq *. 1e3) d_fec (l_fec *. 1e3)
        (if l_fec < l_arq then "fec" else "arq"))
    [ 1; 10; 50; 150; 300 ];
  Util.rule 88;
  let l1, l300 = !arq_grows in
  Util.shape_check "ARQ tail latency grows with the round trip" (l300 > 4.0 *. l1);
  Util.shape_check "FEC tail latency stays near the path delay" !fec_flat

(* ----------------------------------------------------------- e4_preserve *)

(* §2.2(A): the throughput preservation problem — delivered bandwidth as
   channel speed grows, under host-overhead regimes. *)
let e4_preserve () =
  Util.heading "E4 — throughput preservation (§2.2 A)";
  let transfer = 4_000_000 in
  let run ~bw ~host =
    let hops =
      [ Link.create ~bandwidth_bps:bw ~propagation:(Time.us 50) ~queue_pkts:1024 ~mtu:9180 () ]
    in
    let p = Util.make_pair ~host_cpu:host hops in
    let acd = Acd.make ~participants:[ p.Util.dst ] ~qos:Qos.default () in
    let s = Mantts.open_session p.Util.stack.Adaptive.mantts ~src:p.Util.src ~acd () in
    Session.send s ~bytes:transfer ();
    Adaptive.run p.Util.stack ~until:(Time.sec 60.0);
    Mantts.close_session p.Util.stack.Adaptive.mantts s;
    Util.goodput_bps p.Util.stack
  in
  let ideal e = Host.zero_cost e in
  let host_1992 e = Host.create ~per_packet:(Time.us 100) ~per_byte_copy:(Time.ns 25) ~copies:2 e in
  let host_4copy e = Host.create ~per_packet:(Time.us 100) ~per_byte_copy:(Time.ns 25) ~copies:4 e in
  Util.row "%-12s %16s %22s %22s@." "channel" "ideal host" "1992 host (2 copies)"
    "1992 host (4 copies)";
  Util.rule 78;
  let results =
    List.map
      (fun bw ->
        let g0 = run ~bw ~host:ideal in
        let g2 = run ~bw ~host:host_1992 in
        let g4 = run ~bw ~host:host_4copy in
        Util.row "%8.0f Mb/s %8.1f (%3.0f%%) %13.1f (%3.0f%%) %13.1f (%3.0f%%)@."
          (Util.mbps bw) (Util.mbps g0)
          (100.0 *. g0 /. bw)
          (Util.mbps g2)
          (100.0 *. g2 /. bw)
          (Util.mbps g4)
          (100.0 *. g4 /. bw);
        (bw, g0, g2, g4))
      [ 10e6; 45e6; 100e6; 155e6; 622e6 ]
  in
  Util.rule 78;
  let _, g0_slow, g2_slow, _ = List.hd results in
  let bw_fast, g0_fast, g2_fast, g4_fast = List.nth results 4 in
  Util.shape_check "ideal host scales >=20x across the channel sweep"
    (g0_fast > 20.0 *. g0_slow);
  Util.shape_check "1992 host delivers a small fraction of the fast channel"
    (g2_fast < 0.25 *. bw_fast);
  Util.shape_check "host cap is roughly flat across fast channels"
    (g2_fast < 3.0 *. g2_slow *. (622.0 /. 10.0) /. 10.0 || g2_fast < 100e6);
  Util.shape_check "extra copies push delivered throughput down further"
    (g4_fast < g2_fast)

(* ---------------------------------------------------------- e5_reconfig *)

(* §4.1.2: data-transfer-phase reconfiguration timeline.  A video session
   rides out a congestion burst and a terrestrial-to-satellite route
   change.  The adaptive session gets the full §4.1.2 repertoire: SCS
   adjustments (rate scaling, playout re-derivation, ARQ->FEC) and the
   application callback ("begin transmitting with an application-specific
   coding scheme") through which the source drops to a lower-rate coding
   layer while the network is congested.  The static control changes
   nothing. *)
let e5_reconfig () =
  Util.heading "E5 — data-phase reconfiguration timeline (§4.1.2)";
  let run adaptive =
    let stack = Adaptive.create_stack ~seed:777 () in
    let a = Adaptive.add_host stack "a" in
    let b = Adaptive.add_host stack "b" in
    let hops = Profiles.campus_path () in
    Adaptive.connect_hosts stack a b hops;
    (* Congestion burst from 3 s to 6 s; route moves to satellite at 9 s. *)
    Congestion.phases stack.Adaptive.engine (List.nth hops 1)
      [ (Time.sec 3.0, 0.92); (Time.sec 6.0, 0.05) ];
    ignore
      (Engine.schedule stack.Adaptive.engine ~at:(Time.sec 9.0) (fun () ->
           Topology.set_symmetric_route stack.Adaptive.topology ~a ~b
             (Profiles.satellite_path ())));
    let qos = Workloads.qos Workloads.Video_compressed in
    (* The application's coding layer: frame size scales with quality. *)
    let quality = ref 1.0 in
    let session =
      if adaptive then begin
        let tsa =
          [
            {
              Acd.condition = Acd.Congestion_above 0.75;
              action = Acd.Notify_application "degrade-coding";
              once = false;
            };
            {
              Acd.condition = Acd.Congestion_below 0.30;
              action = Acd.Notify_application "restore-coding";
              once = false;
            };
          ]
        in
        let acd = Acd.make ~tsa ~participants:[ b ] ~qos () in
        Mantts.open_session stack.Adaptive.mantts ~src:a ~acd ~name:"adaptive"
          ~on_notify:(fun _ msg ->
            if msg = "degrade-coding" then quality := 0.3
            else if msg = "restore-coding" then quality := 1.0)
          ()
      end
      else begin
        (* The same initial configuration, statically bound: no monitor,
           no segue, no callback. *)
        let acd = Acd.make ~participants:[ b ] ~qos () in
        let tsc = Mantts.classify acd in
        let scs = Mantts.derive_scs stack.Adaptive.mantts ~src:a acd tsc in
        Session.connect ~binding:(Tko.Static_template "frozen")
          (Mantts.dispatcher (Mantts.entity stack.Adaptive.mantts a))
          ~peers:[ b ] ~scs ()
      end
    in
    (* 30 frames/s VBR source honouring the current coding quality. *)
    let rng = Rng.split stack.Adaptive.rng in
    let rec frame () =
      if Adaptive.now stack < Time.sec 14.0 then begin
        if Session.state session = Session.Established then begin
          let mean = 6e6 /. 8.0 /. 30.0 *. !quality in
          let bytes =
            max 256 (min 100_000 (int_of_float (Rng.pareto rng ~shape:2.5 ~scale:(mean *. 0.6))))
          in
          Session.send session ~bytes ()
        end;
        ignore (Engine.schedule_after stack.Adaptive.engine ~delay:(Time.ms 33) frame)
      end
    in
    frame ();
    Adaptive.run stack ~until:(Time.sec 16.0);
    let sent = Util.total stack Unites.Segments_sent in
    let delivered = Util.total stack Unites.Segments_delivered in
    let late = Util.total stack Unites.Late_discards in
    let lost = Util.total stack Unites.Losses_unrecovered in
    (stack, sent, delivered, late, lost)
  in
  let ad_stack, ad_sent, ad_dlvd, ad_late, ad_lost = run true in
  let st_stack, st_sent, st_dlvd, st_late, st_lost = run false in
  Util.row "timeline: congestion 0.92 at 3 s, clear at 6 s, satellite route at 9 s@.@.";
  (* Per-second delivery trace from the UNITES series. *)
  let series stack =
    Unites.aggregate_series stack.Adaptive.unites Unites.Segments_delivered
  in
  let at series t =
    match List.assoc_opt (Time.sec (float_of_int t)) series with
    | Some v -> v
    | None -> 0.0
  in
  let ad_series = series ad_stack and st_series = series st_stack in
  Util.row "delivered segments per second:@.";
  Util.row "  %-5s %10s %10s@." "t" "adaptive" "static";
  for t = 0 to 15 do
    Util.row "  %-5d %10.0f %10.0f@." t (at ad_series t) (at st_series t)
  done;
  Util.row "@.";
  Util.row "adaptations applied:@.";
  List.iter
    (fun (at, _, what) -> Util.row "  [%8s] %s@." (Time.to_string at) what)
    (Mantts.adaptations ad_stack.Adaptive.mantts);
  Util.row "@.%-10s %10s %12s %12s %10s %12s@." "session" "segments" "delivered"
    "late-drop" "lost" "delivered%%";
  Util.row "%-10s %10.0f %12.0f %12.0f %10.0f %11.1f%%@." "adaptive" ad_sent ad_dlvd
    ad_late ad_lost
    (100.0 *. ad_dlvd /. Float.max 1.0 ad_sent);
  Util.row "%-10s %10.0f %12.0f %12.0f %10.0f %11.1f%%@." "static" st_sent st_dlvd
    st_late st_lost
    (100.0 *. st_dlvd /. Float.max 1.0 st_sent);
  Util.shape_check "policies fired during the session"
    (List.length (Mantts.adaptations ad_stack.Adaptive.mantts) >= 3);
  Util.shape_check "adaptive session delivers more of its stream"
    (ad_dlvd /. Float.max 1.0 ad_sent > st_dlvd /. Float.max 1.0 st_sent)

(* ------------------------------------------------------------ e6_window *)

(* §2.2(C): long-delay support — fixed 64 KiB window vs negotiated scaled
   window as the bandwidth-delay product grows. *)
let e6_window () =
  Util.heading "E6 — window scaling on long fat networks (§2.2 C)";
  let transfer = 20_000_000 in
  let run which span_ms =
    let mk () =
      Link.create ~bandwidth_bps:155e6 ~propagation:(Time.ms span_ms) ~queue_pkts:512
        ~ber:1e-9 ~mtu:9180 ()
    in
    let p = Util.make_pair [ mk (); mk (); mk () ] in
    let session =
      match which with
      | `Tcp ->
        Baselines.connect
          (Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src))
          ~peers:[ p.Util.dst ] Baselines.Tcp_like
      | `Adaptive ->
        let acd = Acd.make ~participants:[ p.Util.dst ] ~qos:Qos.default () in
        Mantts.open_session p.Util.stack.Adaptive.mantts ~src:p.Util.src ~acd ()
    in
    Session.send session ~bytes:transfer ();
    Adaptive.run p.Util.stack ~until:(Time.sec 180.0);
    Session.close ~graceful:false session;
    Util.mbps (Util.goodput_bps p.Util.stack)
  in
  Util.row "%-12s %10s %16s %16s %8s@." "RTT" "BDP (KiB)" "tcp 64KiB Mb/s"
    "adaptive Mb/s" "gain";
  Util.rule 70;
  let gains =
    List.map
      (fun span_ms ->
        let rtt_s = 6.0 *. float_of_int span_ms /. 1e3 in
        let bdp_kib = 155e6 *. rtt_s /. 8.0 /. 1024.0 in
        let g_tcp = run `Tcp span_ms in
        let g_ad = run `Adaptive span_ms in
        Util.row "%-12s %10.0f %16.2f %16.2f %7.1fx@."
          (Time.to_string (Time.ms (6 * span_ms)))
          bdp_kib g_tcp g_ad (g_ad /. Float.max 0.01 g_tcp);
        (span_ms, g_tcp, g_ad))
      [ 1; 5; 10; 20; 40 ]
  in
  Util.rule 70;
  let _, g_tcp_40, g_ad_40 = List.nth gains 4 in
  let _, g_tcp_1, _ = List.hd gains in
  Util.shape_check "tcp collapses as the BDP grows" (g_tcp_40 < 0.4 *. g_tcp_1);
  Util.shape_check "scaled windows keep the pipe full at high BDP"
    (g_ad_40 > 4.0 *. g_tcp_40)

(* --------------------------------------------------------- e7_replicate *)

(* §2.2(D): the "controlled, empirical experimentation" methodology —
   replicate a comparison across seeds and only claim a difference when
   the confidence intervals separate.  The question: does selective
   repeat really beat go-back-n at heavy congestion, and is the low-load
   difference a real effect or noise? *)
let e7_replicate () =
  Util.heading "E7 — replication methodology (§2.2 D): GBN vs SR across seeds";
  let goodput ~recovery ~reporting ~level ~seed =
    let p = Util.make_pair ~seed (Profiles.campus_path ()) in
    Congestion.constant (List.nth p.Util.hops 1) level;
    let scs =
      {
        Scs.default with
        Scs.connection = Params.Two_way;
        transmission = Params.Sliding_window { window = 32 };
        recovery;
        reporting;
        recv_buffer_segments = 64;
        segment_bytes = 1400;
        initial_rto = Time.ms 60;
      }
    in
    let disp = Mantts.dispatcher (Mantts.entity p.Util.stack.Adaptive.mantts p.Util.src) in
    let s = Session.connect disp ~peers:[ p.Util.dst ] ~scs () in
    Session.send s ~bytes:2_000_000 ();
    Adaptive.run p.Util.stack ~until:(Time.sec 120.0);
    Session.close ~graceful:false s;
    Util.mbps (Util.goodput_bps p.Util.stack)
  in
  let rep recovery reporting level =
    (* --jobs shards the per-seed replicas across domains; --seeds
       overrides the replication seed list.  The reduction is ordered,
       so jobs > 1 changes nothing but wall-clock. *)
    Lab.replicate_par ~jobs:!Util.jobs ~seeds:(Util.replication_seeds ())
      (fun ~seed -> goodput ~recovery ~reporting ~level ~seed)
  in
  let rows =
    List.map
      (fun level ->
        ( Printf.sprintf "load %.2f" level,
          rep Params.Go_back_n (Params.Cumulative_ack { delay = Time.ms 2 }) level,
          rep Params.Selective_repeat (Params.Selective_ack { delay = Time.ms 2 }) level ))
      [ 0.2; 0.9 ]
  in
  Lab.compare_table ~label_a:"gbn" ~label_b:"srepeat" ~rows Format.std_formatter ();
  let low = List.nth rows 0 and high = List.nth rows 1 in
  let _, _, sr_high = high and _, gbn_high, _ = (fun (a, b, c) -> (a, b, c)) high in
  let _, gbn_low, sr_low = low in
  Util.shape_check "SR's win at heavy load survives replication"
    (Lab.distinguishable gbn_high sr_high && sr_high.Lab.mean > gbn_high.Lab.mean);
  Util.shape_check "at light load the schemes are within each other's CI or close"
    ((not (Lab.distinguishable gbn_low sr_low))
    || Float.abs (gbn_low.Lab.mean -. sr_low.Lab.mean) < 0.15 *. sr_low.Lab.mean)
