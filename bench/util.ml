(* Shared helpers for the experiment harness: scenario builders, traffic
   drivers and table formatting. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_core

(* All table/figure output funnels through this formatter so the golden
   tests can capture a table byte-for-byte instead of scraping stdout. *)
let out = ref Format.std_formatter

let fprintf fmt = Format.fprintf !out fmt

let with_captured f =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let saved = !out in
  out := fmt;
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush fmt ();
      out := saved)
    f;
  Buffer.contents buf

(* ------------------------------------------------------------ tables *)

let rule width = fprintf "%s@." (String.make width '-')

let heading title =
  fprintf "@.=== %s@." title;
  rule 72

let row fmt = Format.fprintf !out fmt

let shape_check label ok =
  fprintf "shape: %-58s %s@." label (if ok then "OK" else "MISMATCH")

(* ----------------------------------------------------- harness flags *)

(* Set by main.ml: --jobs N shards the experiments that replicate across
   seeds/schedules (e7, e9, e10) over N domains via FLEET. *)
let jobs = ref 1

(* Set by main.ml: --seeds a,b,c overrides the replication seed list the
   seed-sweeping experiments draw from. *)
let seeds_override : int list option ref = ref None

let replication_seeds () =
  match !seeds_override with
  | Some seeds -> seeds
  | None -> Lab.default_seeds

let parse_seed_list s =
  match
    String.split_on_char ',' s
    |> List.filter (fun tok -> tok <> "")
    |> List.map int_of_string
  with
  | [] -> None
  | seeds -> Some seeds
  | exception Failure _ -> None

(* ------------------------------------------------------- scenarios *)

type pair = {
  stack : Adaptive.stack;
  src : Network.addr;
  dst : Network.addr;
  hops : Link.t list;
}

let make_pair ?(seed = 4242) ?host_cpu hops =
  let stack = Adaptive.create_stack ~seed () in
  let mk () =
    match host_cpu with
    | Some f -> Some (f stack.Adaptive.engine)
    | None -> None
  in
  let src = Adaptive.add_host ?host_cpu:(mk ()) stack "src" in
  let dst = Adaptive.add_host ?host_cpu:(mk ()) stack "dst" in
  Adaptive.connect_hosts stack src dst hops;
  { stack; src; dst; hops }

(* A star topology: one sender, [n] receivers behind a shared access
   link. *)
let make_star ?(seed = 4242) ~receivers () =
  let stack = Adaptive.create_stack ~seed () in
  let src = Adaptive.add_host stack "src" in
  let access =
    Link.create ~name:"access" ~bandwidth_bps:10e6 ~propagation:(Time.us 5)
      ~queue_pkts:256 ~mtu:1500 ()
  in
  let dsts =
    List.init receivers (fun i ->
        let r = Adaptive.add_host stack (Printf.sprintf "r%d" i) in
        let tail =
          Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:256
            ~mtu:1500 ()
        in
        Topology.set_route stack.Adaptive.topology ~src ~dst:r [ access; tail ];
        Topology.set_route stack.Adaptive.topology ~src:r ~dst:src
          [
            Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:256
              ~mtu:1500 ();
          ];
        r)
  in
  (stack, src, dsts, access)

(* ---------------------------------------------------- GC sampling *)

(* Per-stage GC accounting for the bench harness.  OCaml 5 caveat:
   [Gc] counters are per-domain, so a stage that fans work out to other
   domains reports only the calling domain's share of minor words —
   label such stages accordingly or sample at jobs/shards = 1. *)
type gc_sample = {
  gs_minor_words : float;  (* minor allocation during the stage *)
  gs_promoted_words : float;  (* survived a minor collection *)
  gs_major_words : float;  (* major allocation incl. promotions *)
  gs_major_collections : int;  (* major cycles finished in-stage *)
  gs_wall_s : float;
}

let gc_stage f =
  let q0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let q1 = Gc.quick_stat () in
  ( r,
    {
      gs_minor_words = q1.Gc.minor_words -. q0.Gc.minor_words;
      gs_promoted_words = q1.Gc.promoted_words -. q0.Gc.promoted_words;
      gs_major_words = q1.Gc.major_words -. q0.Gc.major_words;
      gs_major_collections = q1.Gc.major_collections - q0.Gc.major_collections;
      gs_wall_s = wall;
    } )

(* JSON fragment for a sample, no trailing newline or comma. *)
let json_gc buf s =
  Printf.bprintf buf
    {|"gc": { "minor_words": %.0f, "promoted_words": %.0f, "major_words": %.0f, "major_collections": %d }|}
    s.gs_minor_words s.gs_promoted_words s.gs_major_words
    s.gs_major_collections

(* --------------------------------------------------------- metrics *)

let goodput_bps stack =
  let u = stack.Adaptive.unites in
  let delivered = Unites.aggregate_total u Unites.Bytes_delivered in
  match Unites.aggregate u Unites.Delivery_latency with
  | Some s when s.Stats.max > 0.0 -> delivered *. 8.0 /. s.Stats.max
  | Some _ | None -> 0.0

let delivered_bytes stack =
  Unites.aggregate_total stack.Adaptive.unites Unites.Bytes_delivered

let total stack m = Unites.aggregate_total stack.Adaptive.unites m

let latency_summary stack =
  Unites.aggregate stack.Adaptive.unites Unites.Delivery_latency

let mbps v = v /. 1e6
