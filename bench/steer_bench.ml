(* e14_steer — closed-loop steering vs every static configuration.

   The same seeded SWARM churn (10k session slots; 200 in smoke) runs
   under an identical deterministic chaos backdrop — ber bursts,
   congestion storms and a route flap against the swarm link — in five
   arms:

     steered      every admitted session under the STEER policy engine
     nosteer      per-application derived configurations, no closed loop
     static-gbn   the whole population pinned to go-back-n ARQ
     static-sr    the whole population pinned to selective repeat
     static-fec   the whole population pinned to group-8 FEC

   All arms disable the built-in MANTTS monitors (monitored_share = 0),
   so the steered arm's only adaptation path is STEER itself.  The
   acceptance criteria are the ISSUE's: the steered arm beats every
   static arm on aggregate goodput (delivered application bytes over the
   common horizon), the steered run's invariant checker — including the
   flap-cooldown oracle over the combined MANTTS/STEER switch stream —
   records zero violations, and a jobs=4 FLEET replay of the steered
   configuration produces the sequential digest.

   Emits BENCH_steer.json. *)

open Adaptive_sim
open Adaptive_core
open Adaptive_mech
open Adaptive_chaos
open Adaptive_workloads

(* Set by main.ml's --smoke flag: 200-session churn instead of 10k. *)
let smoke = ref false

let pf = Format.printf

(* Deterministic chaos backdrop, written out fault by fault (no random
   draws: the arms must share it exactly).  The swarm horizon at 2 churn
   rounds is 10 s; the schedule stresses the middle eight seconds. *)
let backdrop : Fault.schedule =
  let f cls start duration intensity =
    { Fault.cls; start; duration; target = 0; intensity }
  in
  [
    f Fault.Ber_burst (Time.ms 600) (Time.ms 1500) 0.8;
    f Fault.Congestion_storm (Time.sec 2.4) (Time.ms 1200) 0.8;
    f Fault.Ber_burst (Time.sec 3.9) (Time.ms 1200) 1.0;
    f Fault.Route_flap (Time.sec 5.2) (Time.ms 500) 0.5;
  ]

(* Static pins.  Pinning a recovery scheme also has to pin a feedback
   channel that can drive it: go-back-n needs (at least) cumulative acks,
   selective repeat needs SACK blocks. *)
let ack_delay = Time.ms 2

let pin_gbn (scs : Scs.t) =
  {
    scs with
    Scs.recovery = Params.Go_back_n;
    reporting =
      (match scs.Scs.reporting with
      | Params.No_report | Params.Nack_on_gap ->
        Params.Cumulative_ack { delay = ack_delay }
      | (Params.Cumulative_ack _ | Params.Selective_ack _) as r -> r);
  }

let pin_sr (scs : Scs.t) =
  {
    scs with
    Scs.recovery = Params.Selective_repeat;
    reporting =
      (match scs.Scs.reporting with
      | Params.No_report | Params.Nack_on_gap | Params.Cumulative_ack _ ->
        Params.Selective_ack { delay = ack_delay }
      | Params.Selective_ack _ as r -> r);
  }

let pin_fec (scs : Scs.t) =
  { scs with Scs.recovery = Params.Forward_error_correction { group = 8 } }

type arm = {
  arm_name : string;
  outcome : Swarm.outcome;
  elapsed_s : float;
}

(* A constrained topology where configuration actually matters: a
   realistic MTU makes sessions multi-segment (recovery schemes and FEC
   groups have real dynamics), and the link has genuine calm-time
   headroom — each slot demands ~160 kb/s (a 12 KB transfer per 600 ms
   lifetime) against 250 kb/s of share, so an undisturbed run completes
   essentially everything — but becomes scarce when a congestion storm
   takes 94-96% of it, and bursts then make overhead choices (acks,
   go-back-n floods, parity) cost goodput.  Headroom matters: sized
   below the demand, the metric stops measuring adaptation and starts
   rewarding whichever pin blasts bytes fastest (FEC's rate-driven
   send, free of any ack clock, wins that contest at scale regardless
   of what the faults do).  Bandwidth, queue depth AND host CPU all
   scale with the population (250 kb/s, ~20 queue packets and 1/200th
   of a 2 us/packet CPU per session slot — the two endpoints stand for
   a population of hosts) so the 10k full run keeps the 200-session
   smoke run's per-slot regime: scaling only the bandwidth would
   shrink the queue from seconds of buffering to milliseconds and
   leave a fixed host CPU saturating near 140k pkts/s as the real
   binding constraint. *)
let base_config ~sessions ~seed =
  {
    (Swarm.default_config ~sessions ~seed) with
    Swarm.monitored_share = 0;
    churn_rounds = 6;
    payload_bytes = 12_000;
    link_bps = 250e3 *. float_of_int sessions;
    link_mtu = 1500;
    link_queue_pkts = 4096 * sessions / 200;
    host_speed = float_of_int sessions /. 200.;
    chaos = Some backdrop;
    check_invariants = true;
  }

let run_arm ~sessions ~seed arm_name transform =
  let cfg = transform (base_config ~sessions ~seed) in
  let t0 = Unix.gettimeofday () in
  let outcome = Swarm.run cfg in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  { arm_name; outcome; elapsed_s }

let goodput_bps (o : Swarm.outcome) =
  let dt = Time.to_sec o.Swarm.sim_time in
  if dt <= 0.0 then 0.0 else float_of_int (8 * o.Swarm.goodput_bytes) /. dt

let report_arm a =
  let o = a.outcome in
  pf
    "  %-10s goodput %9d bytes (%8.0f bit/s, raw delivered %9d)  faults %d  \
     violations %d%s@."
    a.arm_name o.Swarm.goodput_bytes (goodput_bps o) o.Swarm.delivered_bytes
    o.Swarm.faults_injected
    (List.length o.Swarm.violations)
    (match o.Swarm.steer_stats with
    | Some (swaps, blocked) -> Printf.sprintf "  swaps %d blocked %d" swaps blocked
    | None -> "")

let e14_steer () =
  let seed = 0x57EE12 in
  let sessions = if !smoke then 200 else 10_000 in
  pf "@.== e14_steer: closed-loop steering vs static configurations, %d \
      sessions%s ==@."
    sessions
    (if !smoke then " [smoke]" else "");

  let steered =
    run_arm ~sessions ~seed "steered" (fun cfg ->
        { cfg with Swarm.steer = Some Steer.default_policy })
  in
  let nosteer = run_arm ~sessions ~seed "nosteer" (fun cfg -> cfg) in
  let statics =
    List.map
      (fun (name, pin) ->
        run_arm ~sessions ~seed name (fun cfg ->
            { cfg with Swarm.scs_transform = Some pin }))
      [ ("static-gbn", pin_gbn); ("static-sr", pin_sr); ("static-fec", pin_fec) ]
  in
  List.iter report_arm (steered :: nosteer :: statics);

  (* Steering cost accounting from the UNITES steer session. *)
  let u = steered.outcome.Swarm.unites in
  (match Unites.stats u ~session:Unites.steer_session Unites.Steer_time_in_config with
  | Some s ->
    pf "  steer dwell time before swap: n=%d mean %.3f s p95 %.3f s max %.3f s@."
      s.Stats.n s.Stats.mean s.Stats.p95 s.Stats.max
  | None -> ());

  let steered_bytes = steered.outcome.Swarm.goodput_bytes in
  Util.shape_check "steered run applied swaps"
    (match steered.outcome.Swarm.steer_stats with
    | Some (swaps, _) -> swaps > 0
    | None -> false);
  List.iter
    (fun a ->
      Util.shape_check
        (Printf.sprintf "steered goodput beats %s (%d > %d bytes)" a.arm_name
           steered_bytes a.outcome.Swarm.goodput_bytes)
        (steered_bytes > a.outcome.Swarm.goodput_bytes))
    statics;
  Util.shape_check "steered run: zero invariant violations"
    (steered.outcome.Swarm.violations = []);
  Util.shape_check "nosteer run: zero invariant violations"
    (nosteer.outcome.Swarm.violations = []);

  (* Determinism: the steered arm replayed on four domains must land on
     the sequential digest. *)
  let steered_cfg sessions =
    { (base_config ~sessions ~seed) with Swarm.steer = Some Steer.default_policy }
  in
  let fleet_sessions = if !smoke then sessions else 1_000 in
  let reference = (Swarm.run (steered_cfg fleet_sessions)).Swarm.digest in
  let digests =
    Adaptive_fleet.Fleet.map ~jobs:4
      (fun s -> (Swarm.run (steered_cfg s)).Swarm.digest)
      (Array.make 4 fleet_sessions)
  in
  let fleet_ok = Array.for_all (fun d -> d = reference) digests in
  Util.shape_check
    (Printf.sprintf "jobs=4 fleet replay of the steered arm (%d sessions): all \
                     digests identical"
       fleet_sessions)
    fleet_ok;

  (* JSON emission. *)
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e14_steer\",\n  \"seed\": %d,\n  \"smoke\": %b,\n  \
     \"sessions\": %d,\n  \"faults\": %d,\n  \"arms\": [\n"
    seed !smoke sessions (List.length backdrop);
  let arms = steered :: nosteer :: statics in
  List.iteri
    (fun i a ->
      let o = a.outcome in
      let swaps, blocked =
        match o.Swarm.steer_stats with Some sb -> sb | None -> (0, 0)
      in
      Printf.bprintf buf
        {|    { "arm": "%s", "goodput_bytes": %d, "delivered_bytes": %d,
      "goodput_bps": %.0f, "faults_injected": %d, "violations": %d,
      "steer_swaps": %d, "steer_blocked": %d, "digest": "0x%Lx" }%s
|}
        a.arm_name o.Swarm.goodput_bytes o.Swarm.delivered_bytes (goodput_bps o)
        o.Swarm.faults_injected
        (List.length o.Swarm.violations)
        swaps blocked o.Swarm.digest
        (if i = List.length arms - 1 then "" else ","))
    arms;
  let best_static =
    List.fold_left
      (fun acc a -> max acc a.outcome.Swarm.goodput_bytes)
      0 statics
  in
  Printf.bprintf buf
    "  ],\n  \"steered_beats_every_static\": %b,\n  \
     \"steered_over_best_static\": %.4f,\n  \"fleet_jobs4_identical\": %b\n}\n"
    (List.for_all
       (fun a -> steered_bytes > a.outcome.Swarm.goodput_bytes)
       statics)
    (if best_static = 0 then 0.0
     else float_of_int steered_bytes /. float_of_int best_static)
    fleet_ok;
  let oc = open_out "BENCH_steer.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "  wrote BENCH_steer.json@."
