(* Vendored copy of the original (pre-timer-wheel) simulation engine and
   its boxed-entry binary heap, kept verbatim as the baseline for the
   e8_engine_scale allocation/throughput comparison.  The live engine in
   lib/sim has since moved to a hierarchical timer wheel with flat-array
   heaps and slot-reusing timers; this module is what it replaced:

   - every [Heap.push] allocates a boxed [entry] record;
   - every [Heap.pop]/[peek] allocates [Some (key, value)] tuples;
   - every timer (re)arm allocates a fresh closure and a [Some handle].

   Do not use this outside the benchmark harness. *)

open Adaptive_sim

module Heap = struct
  type 'a entry = { key : int; seq : int; value : 'a }

  type 'a t = {
    mutable arr : 'a entry array;
    mutable size : int;
    mutable next_seq : int;
  }

  let create () = { arr = [||]; size = 0; next_seq = 0 }

  let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

  let grow h e =
    let cap = Array.length h.arr in
    if h.size = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let na = Array.make ncap e in
      Array.blit h.arr 0 na 0 h.size;
      h.arr <- na
    end

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h.arr.(i) h.arr.(parent) then begin
        let tmp = h.arr.(i) in
        h.arr.(i) <- h.arr.(parent);
        h.arr.(parent) <- tmp;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && less h.arr.(l) h.arr.(!smallest) then smallest := l;
    if r < h.size && less h.arr.(r) h.arr.(!smallest) then smallest := r;
    if !smallest <> i then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(!smallest);
      h.arr.(!smallest) <- tmp;
      sift_down h !smallest
    end

  let push h ~key value =
    let e = { key; seq = h.next_seq; value } in
    h.next_seq <- h.next_seq + 1;
    grow h e;
    h.arr.(h.size) <- e;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let peek h =
    if h.size = 0 then None
    else
      let e = h.arr.(0) in
      Some (e.key, e.value)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.arr.(0) <- h.arr.(h.size);
        sift_down h 0
      end;
      Some (top.key, top.value)
    end
end

type event = { mutable live : bool; action : unit -> unit }

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable live_count : int;
  mutable fired : int;
}

type handle = t * event

let create () = { clock = Time.zero; queue = Heap.create (); live_count = 0; fired = 0 }
let now t = t.clock

let schedule t ~at f =
  if at < t.clock then invalid_arg "Seed_engine.schedule: event in the past";
  let e = { live = true; action = f } in
  Heap.push t.queue ~key:at e;
  t.live_count <- t.live_count + 1;
  (t, e)

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f

let cancel (t, e) =
  if e.live then begin
    e.live <- false;
    t.live_count <- t.live_count - 1
  end

let is_pending (_, e) = e.live

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, e) ->
    if e.live then begin
      e.live <- false;
      t.live_count <- t.live_count - 1;
      t.clock <- at;
      t.fired <- t.fired + 1;
      e.action ();
      true
    end
    else step t

let rec next_live_at t =
  match Heap.peek t.queue with
  | None -> None
  | Some (at, e) -> if e.live then Some at else (ignore (Heap.pop t.queue); next_live_at t)

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    !budget > 0
    &&
    match next_live_at t with
    | None -> false
    | Some at -> (
      match until with None -> true | Some limit -> at <= limit)
  in
  while continue () do
    if step t then decr budget
  done;
  match until with
  | Some limit when t.clock < limit && !budget > 0 -> t.clock <- limit
  | Some _ | None -> ()

let pending_events t = t.live_count
let events_fired t = t.fired

let cancel_handle = cancel

module Timer = struct
  type timer = {
    engine : t;
    mutable handle : handle option;
    mutable period : Time.t option;
    mutable count : int;
    callback : unit -> unit;
  }

  let rec arm timer delay =
    let h =
      schedule_after timer.engine ~delay (fun () ->
          timer.handle <- None;
          timer.count <- timer.count + 1;
          (match timer.period with
          | Some interval -> arm timer interval
          | None -> ());
          timer.callback ())
    in
    timer.handle <- Some h

  let one_shot engine ~delay f =
    let timer = { engine; handle = None; period = None; count = 0; callback = f } in
    arm timer delay;
    timer

  let periodic engine ~interval f =
    if interval <= 0 then invalid_arg "Timer.periodic: non-positive interval";
    let timer =
      { engine; handle = None; period = Some interval; count = 0; callback = f }
    in
    arm timer interval;
    timer

  let cancel timer =
    (match timer.handle with Some h -> cancel_handle h | None -> ());
    timer.handle <- None;
    timer.period <- None

  let reschedule timer ~delay =
    (match timer.handle with Some h -> cancel_handle h | None -> ());
    arm timer delay

  let is_active timer =
    match timer.handle with Some h -> is_pending h | None -> false

  let expirations timer = timer.count
end
