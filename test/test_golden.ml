(* Golden-output regression tests: the regenerated paper tables and a
   synthetic UNITES report are pinned byte-for-byte.  A diff here means
   presentation (or the data behind it) changed; update the golden only
   when the change is intentional. *)

open Adaptive_sim
open Adaptive_core

let table1_golden =
  {golden|
=== Table 1 — Application Transport Service Classes (regenerated)
------------------------------------------------------------------------
Service Class                  Application                  Thruput   Burst Delay Jitter Order Loss  Pri  Mcast
--------------------------------------------------------------------------------------------------------------
Interactive Isochronous        Voice Conversation           low       low   high  high   low   high  no   no   
Interactive Isochronous        Tele-Conferencing            mod       mod   high  high   low   mod   yes  yes  
Distributional Isochronous     Full-Motion Video (comp)     high      high  high  mod    low   mod   yes  yes  
Distributional Isochronous     Full-Motion Video (raw)      very-high low   high  high   low   mod   yes  yes  
Real-Time Non-Isochronous      Manufacturing Control        mod       mod   high  N/D    high  low   yes  yes  
Non-Real-Time Non-Isochronous  File Transfer                mod       low   low   N/D    high  none  no   no   
Non-Real-Time Non-Isochronous  TELNET                       very-low  high  high  low    high  none  yes  no   
Non-Real-Time Non-Isochronous  On-Line Transaction Processing low       high  high  low    high  none  no   no   
Non-Real-Time Non-Isochronous  Remote File Service          low       high  high  low    high  none  no   yes  
--------------------------------------------------------------------------------------------------------------
cells agreeing with the paper's grades: 72 / 72
shape: all nine applications land in the paper's service class    OK
shape: at least 80% of qualitative grades match the paper         OK
|golden}

let table2_golden =
  {golden|
=== Table 2 — The ADAPTIVE Communication Descriptor (regenerated)
------------------------------------------------------------------------
Remote Session Participant Address(es)    
    Specifies >= 1 addresses of remote end-systems that comprise the communication association.
    e.g. unicast: [b]; multicast: [b; c; d]
Quantitative QoS Parameters               
    Specifies the performance criteria requested by the application.
    e.g. peak and average throughput, minimum and maximum latency and jitter, error-rate probabilities, duration
Qualitative QoS Parameters                
    Specifies the functionality or behavior requested by the application.
    e.g. sequenced/non-sequenced delivery, duplicate sensitivity, explicit/implicit connection management, priority delivery
Transport Service Adjustment (TSA)        
    Actions to perform when changes occur in local or remote hosts or the network.
    e.g. <congestion > 0.60, switch recovery to srepeat>; <rtt > 150ms, switch recovery to fec:8>
Transport Measurement Component (TMC)     
    Specifies performance metrics to collect for this particular communication session.
    e.g. throughput_bps, delivery_latency_s, retransmissions; sampling rate 1s
shape: five descriptor components as in the paper                 OK
|golden}

let unites_report_golden =
  {golden|UNITES metric repository (t=0ns, whitebox=true)
session 0 (scheduler):
  sched_cancelled_ratio [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  sched_wheel_hit_rate [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
session 1 (golden-session):
  throughput_bps       [bb] n=3 mean=2e+06 sd=1e+06 min=1e+06 p50=2e+06 p95=2.9e+06 p99=2.98e+06 max=3e+06
  delivery_latency_s   [wb] n=4 mean=0.0115 sd=0.001291 min=0.01 p50=0.0115 p95=0.01285 p99=0.01297 max=0.013
  retransmissions      [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  sessions_open        [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  demux_probes         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  table_occupancy      [wb] n=1 mean=0.25 sd=nan min=0.25 p50=0.25 p95=0.25 p99=0.25 max=0.25
trace (dropped log entries: 0):
  close                        1
  open                         1
|golden}

let check_golden name golden actual =
  if String.equal golden actual then ()
  else begin
    (* Print both in full: alcotest's one-line diff is useless for a
       multi-line table. *)
    Format.eprintf "=== %s: expected ===@.%s@.=== got ===@.%s@." name golden
      actual;
    Alcotest.failf "%s drifted from its golden output" name
  end

let test_table1 () =
  check_golden "table1" table1_golden
    (Bench_harness.Util.with_captured Bench_harness.Tables.table1)

let test_table2 () =
  check_golden "table2" table2_golden
    (Bench_harness.Util.with_captured Bench_harness.Tables.table2)

(* A small fixed repository: one real session with blackbox and whitebox
   observations, a trace sink, and the scheduler pseudo-session that
   [report] folds in. *)
let test_unites_report () =
  let engine = Engine.create () in
  let unites = Unites.create ~reservoir:64 engine in
  let trace = Trace.create ~log_capacity:16 () in
  Unites.attach_trace unites trace;
  Unites.register_session unites ~id:1 ~name:"golden-session";
  List.iter
    (fun v -> Unites.observe unites ~session:1 Unites.Throughput v)
    [ 1.0e6; 2.0e6; 3.0e6 ];
  List.iter
    (fun v -> Unites.observe unites ~session:1 Unites.Delivery_latency v)
    [ 0.010; 0.012; 0.011; 0.013 ];
  Unites.count unites ~session:1 Unites.Retransmissions;
  Unites.count unites ~session:1 Unites.Sessions_open;
  Unites.observe unites ~session:1 Unites.Demux_probes 1.0;
  Unites.observe unites ~session:1 Unites.Table_occupancy 0.25;
  Trace.event trace ~at:Time.zero ~category:"open" ~detail:"1";
  Trace.event trace ~at:(Time.ms 5) ~category:"close" ~detail:"1";
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Unites.report fmt unites;
  Format.pp_print_flush fmt ();
  check_golden "unites report" unites_report_golden (Buffer.contents buf)

(* One wire-true run pinned end to end: the swarm outcome (with its wire
   report line) and the full UNITES repository, including the wire
   pseudo-session.  Any change to the wire path's accounting, the codec's
   byte counts, or frame-level determinism shows up here as a digest or
   counter drift. *)
let wire_swarm_golden =
  {golden|swarm: offered=10 admitted=10 degraded=0 refused=0 closed=10
delivered: 10 msgs, 22096 bytes; peak live=5; table capacity=16
demux probes: mean=1.000 p99=1; occupancy p99=0.500; timewait drops=0
events=218 sim_time=7.000s digest=0x6bdd92b6ac9d6f04
wire: encodes=52 decodes=52 rejects=0 fused_sums=0 pool_reuse=1.000
=== unites ===
UNITES metric repository (t=7.000s, whitebox=true)
session -3 (wire):
  wire_encodes         [wb] n=1 mean=52 sd=nan min=52 p50=52 p95=52 p99=52 max=52
  wire_decodes         [wb] n=1 mean=52 sd=nan min=52 p50=52 p95=52 p99=52 max=52
  wire_rejects         [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  wire_fused_sums      [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  wire_pool_reuse      [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
session -2 (swarm):
  sessions_open        [wb] n=10 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  demux_probes         [wb] n=52 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  table_occupancy      [wb] n=54 mean=0.3218 sd=0.1626 min=0 p50=0.375 p95=0.5 p99=0.5 max=0.5
session 0 (scheduler):
  sched_events_fired   [wb] n=1 mean=218 sd=nan min=218 p50=218 p95=218 p99=218 max=218
  sched_timers_rearmed [wb] n=1 mean=29 sd=nan min=29 p50=29 p95=29 p99=29 max=29
  sched_cancelled_ratio [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  sched_wheel_hit_rate [wb] n=1 mean=0.5598 sd=nan min=0.5598 p50=0.5598 p95=0.5598 p99=0.5598 max=0.5598
session 1 (sw-0-0):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
session 2 (sw-1-0):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.522e-06 sd=nan min=6.522e-06 p50=6.522e-06 p95=6.522e-06 p99=6.522e-06 max=6.522e-06
session 3 (sw-2-0):
  setup_latency_s      [wb] n=2 mean=6.135e-05 sd=8.676e-05 min=0 p50=6.135e-05 p95=0.0001166 p99=0.0001215 max=0.0001227
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 4 (sw-3-0):
  setup_latency_s      [wb] n=2 mean=6.138e-05 sd=8.68e-05 min=0 p50=6.138e-05 p95=0.0001166 p99=0.0001215 max=0.0001228
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
session 5 (sw-1-1):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.522e-06 sd=nan min=6.522e-06 p50=6.522e-06 p95=6.522e-06 p99=6.522e-06 max=6.522e-06
session 6 (sw-0-1):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
session 7 (sw-4-0):
  rtt_s                [bb] n=1 mean=0.002171 sd=nan min=0.002171 p50=0.002171 p95=0.002171 p99=0.002171 max=0.002171
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.314e-06 sd=nan min=6.314e-06 p50=6.314e-06 p95=6.314e-06 p99=6.314e-06 max=6.314e-06
session 8 (sw-2-1):
  setup_latency_s      [wb] n=2 mean=6.135e-05 sd=8.676e-05 min=0 p50=6.135e-05 p95=0.0001166 p99=0.0001215 max=0.0001227
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 9 (sw-4-1):
  rtt_s                [bb] n=1 mean=0.002221 sd=nan min=0.002221 p50=0.002221 p95=0.002221 p99=0.002221 max=0.002221
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.314e-06 sd=nan min=6.314e-06 p50=6.314e-06 p95=6.314e-06 p99=6.314e-06 max=6.314e-06
session 10 (sw-3-1):
  setup_latency_s      [wb] n=2 mean=6.138e-05 sd=8.68e-05 min=0 p50=6.138e-05 p95=0.0001166 p99=0.0001215 max=0.0001228
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
trace (dropped log entries: 0):
  close                        10
  deliver                      10
  open                         10
|golden}

let wire_swarm_output () =
  let open Adaptive_workloads in
  let cfg =
    { (Swarm.default_config ~sessions:5 ~seed:424242) with
      Swarm.churn_rounds = 1;
      wire = true }
  in
  let o = Swarm.run cfg in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Format.asprintf "%a" Swarm.pp_outcome o);
  Buffer.add_string buf "\n=== unites ===\n";
  let fmt = Format.formatter_of_buffer buf in
  Unites.report fmt o.Swarm.unites;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_wire_swarm () =
  check_golden "wire-true swarm report" wire_swarm_golden (wire_swarm_output ())

(* One steered run pinned end to end: a small swarm on the scarce
   steering topology under a fixed bit-error burst, with the STEER
   policy engine live.  The outcome block (including the steer swap
   counters and contract-aware goodput) and the full UNITES repository —
   notably the "steer" pseudo-session carrying the per-swap cost
   accounting — are pinned byte-for-byte.  Any drift in the policy
   rules, the swap accounting, or steered-run determinism lands here. *)
let steer_swarm_golden = {golden|swarm: offered=12 admitted=12 degraded=0 refused=0 closed=12
delivered: 76 msgs, 100900 bytes; peak live=6; table capacity=16
demux probes: mean=1.000 p99=1; occupancy p99=0.625; timewait drops=0
events=854 sim_time=7.000s digest=0x93799c1458cb517e
steer: swaps=8 blocked=14 faults=1 violations=0 goodput=100900
=== unites ===
UNITES metric repository (t=7.000s, whitebox=true)
session -4 (steer):
  steer_swaps          [wb] n=8 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  steer_blocked        [wb] n=14 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  steer_time_in_config_s [wb] n=8 mean=0.1826 sd=0.2387 min=0 p50=0.1303 p95=0.5717 p99=0.6743 max=0.7
session -2 (swarm):
  sessions_open        [wb] n=12 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  demux_probes         [wb] n=236 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  table_occupancy      [wb] n=62 mean=0.373 sd=0.169 min=0 p50=0.4375 p95=0.6219 p99=0.625 max=0.625
session -1 (chaos):
  faults_injected      [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
session 0 (scheduler):
  sched_events_fired   [wb] n=1 mean=854 sd=nan min=854 p50=854 p95=854 p99=854 max=854
  sched_timers_rearmed [wb] n=1 mean=51 sd=nan min=51 p50=51 p95=51 p99=51 max=51
  sched_cancelled_ratio [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  sched_wheel_hit_rate [wb] n=1 mean=0.6697 sd=nan min=0.6697 p50=0.6697 p95=0.6697 p99=0.6697 max=0.6697
session 1 (sw-0-0):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 2 (sw-1-0):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.509e-06 sd=nan min=6.509e-06 p50=6.509e-06 p95=6.509e-06 p99=6.509e-06 max=6.509e-06
session 3 (sw-2-0):
  setup_latency_s      [wb] n=2 mean=0.0001105 sd=0.0001562 min=0 p50=0.0001105 p95=0.0002099 p99=0.0002187 max=0.0002209
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.47e-06 sd=nan min=6.47e-06 p50=6.47e-06 p95=6.47e-06 p99=6.47e-06 max=6.47e-06
session 4 (sw-0-1):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 5 (sw-3-0):
  setup_latency_s      [wb] n=2 mean=0.0001108 sd=0.0001566 min=0 p50=0.0001108 p95=0.0002104 p99=0.0002193 max=0.0002215
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 6 (sw-1-1):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.509e-06 sd=nan min=6.509e-06 p50=6.509e-06 p95=6.509e-06 p99=6.509e-06 max=6.509e-06
session 7 (sw-4-0):
  rtt_s                [bb] n=5 mean=0.001705 sd=0.001075 min=0.000551 p50=0.001755 p95=0.003054 p99=0.003276 max=0.003332
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.301e-06 sd=nan min=6.301e-06 p50=6.301e-06 p95=6.301e-06 p99=6.301e-06 max=6.301e-06
session 8 (sw-5-0):
  rtt_s                [bb] n=21 mean=0.002829 sd=0.002484 min=0.0007518 p50=0.002649 p95=0.003855 p99=0.01107 max=0.01287
  setup_latency_s      [wb] n=2 mean=0.0001173 sd=0.0001659 min=0 p50=0.0001173 p95=0.0002229 p99=0.0002323 max=0.0002347
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=1.443e-05 sd=nan min=1.443e-05 p50=1.443e-05 p95=1.443e-05 p99=1.443e-05 max=1.443e-05
session 9 (sw-3-1):
  setup_latency_s      [wb] n=2 mean=0.0001108 sd=0.0001566 min=0 p50=0.0001108 p95=0.0002104 p99=0.0002193 max=0.0002215
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 10 (sw-2-1):
  setup_latency_s      [wb] n=2 mean=0.0001105 sd=0.0001562 min=0 p50=0.0001105 p95=0.0002099 p99=0.0002187 max=0.0002209
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.47e-06 sd=nan min=6.47e-06 p50=6.47e-06 p95=6.47e-06 p99=6.47e-06 max=6.47e-06
session 11 (sw-5-1):
  rtt_s                [bb] n=2 mean=0.002451 sd=0.0001443 min=0.002349 p50=0.002451 p95=0.002543 p99=0.002551 max=0.002553
  setup_latency_s      [wb] n=2 mean=0.000105 sd=0.0001485 min=0 p50=0.000105 p95=0.0001995 p99=0.0002079 max=0.00021
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.223e-06 sd=nan min=6.223e-06 p50=6.223e-06 p95=6.223e-06 p99=6.223e-06 max=6.223e-06
session 12 (sw-4-1):
  rtt_s                [bb] n=2 mean=0.002464 sd=0.0001628 min=0.002349 p50=0.002464 p95=0.002568 p99=0.002577 max=0.002579
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.301e-06 sd=nan min=6.301e-06 p50=6.301e-06 p95=6.301e-06 p99=6.301e-06 max=6.301e-06
trace (dropped log entries: 0):
  chaos.fault.ber_burst        1
  close                        12
  deliver                      76
  open                         12
  steer.swap                   8
|golden}

let steer_swarm_output () =
  let open Adaptive_workloads in
  let open Adaptive_chaos in
  let burst =
    [ { Fault.cls = Fault.Ber_burst; start = Time.ms 150; duration = Time.ms 900;
        target = 0; intensity = 0.8 } ]
  in
  let cfg =
    { (Swarm.default_config ~sessions:6 ~seed:31337) with
      Swarm.churn_rounds = 1;
      monitored_share = 0;
      payload_bytes = 12_000;
      link_bps = 30e6;
      link_mtu = 1500;
      steer = Some Adaptive_core.Steer.default_policy;
      chaos = Some burst }
  in
  let o = Swarm.run cfg in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Format.asprintf "%a" Swarm.pp_outcome o);
  Buffer.add_string buf "\n=== unites ===\n";
  let fmt = Format.formatter_of_buffer buf in
  Unites.report fmt o.Swarm.unites;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_steer_swarm () =
  check_golden "steered swarm report" steer_swarm_golden (steer_swarm_output ())

let suite =
  [
    ( "golden",
      [
        Alcotest.test_case "table1 output is pinned" `Quick test_table1;
        Alcotest.test_case "table2 output is pinned" `Quick test_table2;
        Alcotest.test_case "UNITES report is pinned" `Quick test_unites_report;
        Alcotest.test_case "wire-true swarm report is pinned" `Quick
          test_wire_swarm;
        Alcotest.test_case "steered swarm report is pinned" `Quick
          test_steer_swarm;
      ] );
  ]
