(* Golden-output regression tests: the regenerated paper tables and a
   synthetic UNITES report are pinned byte-for-byte.  A diff here means
   presentation (or the data behind it) changed; update the golden only
   when the change is intentional. *)

open Adaptive_sim
open Adaptive_core

let table1_golden =
  {golden|
=== Table 1 — Application Transport Service Classes (regenerated)
------------------------------------------------------------------------
Service Class                  Application                  Thruput   Burst Delay Jitter Order Loss  Pri  Mcast
--------------------------------------------------------------------------------------------------------------
Interactive Isochronous        Voice Conversation           low       low   high  high   low   high  no   no   
Interactive Isochronous        Tele-Conferencing            mod       mod   high  high   low   mod   yes  yes  
Distributional Isochronous     Full-Motion Video (comp)     high      high  high  mod    low   mod   yes  yes  
Distributional Isochronous     Full-Motion Video (raw)      very-high low   high  high   low   mod   yes  yes  
Real-Time Non-Isochronous      Manufacturing Control        mod       mod   high  N/D    high  low   yes  yes  
Non-Real-Time Non-Isochronous  File Transfer                mod       low   low   N/D    high  none  no   no   
Non-Real-Time Non-Isochronous  TELNET                       very-low  high  high  low    high  none  yes  no   
Non-Real-Time Non-Isochronous  On-Line Transaction Processing low       high  high  low    high  none  no   no   
Non-Real-Time Non-Isochronous  Remote File Service          low       high  high  low    high  none  no   yes  
--------------------------------------------------------------------------------------------------------------
cells agreeing with the paper's grades: 72 / 72
shape: all nine applications land in the paper's service class    OK
shape: at least 80% of qualitative grades match the paper         OK
|golden}

let table2_golden =
  {golden|
=== Table 2 — The ADAPTIVE Communication Descriptor (regenerated)
------------------------------------------------------------------------
Remote Session Participant Address(es)    
    Specifies >= 1 addresses of remote end-systems that comprise the communication association.
    e.g. unicast: [b]; multicast: [b; c; d]
Quantitative QoS Parameters               
    Specifies the performance criteria requested by the application.
    e.g. peak and average throughput, minimum and maximum latency and jitter, error-rate probabilities, duration
Qualitative QoS Parameters                
    Specifies the functionality or behavior requested by the application.
    e.g. sequenced/non-sequenced delivery, duplicate sensitivity, explicit/implicit connection management, priority delivery
Transport Service Adjustment (TSA)        
    Actions to perform when changes occur in local or remote hosts or the network.
    e.g. <congestion > 0.60, switch recovery to srepeat>; <rtt > 150ms, switch recovery to fec:8>
Transport Measurement Component (TMC)     
    Specifies performance metrics to collect for this particular communication session.
    e.g. throughput_bps, delivery_latency_s, retransmissions; sampling rate 1s
shape: five descriptor components as in the paper                 OK
|golden}

let unites_report_golden =
  {golden|UNITES metric repository (t=0ns, whitebox=true)
session 0 (scheduler):
  sched_cancelled_ratio [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  sched_wheel_hit_rate [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
session 1 (golden-session):
  throughput_bps       [bb] n=3 mean=2e+06 sd=1e+06 min=1e+06 p50=2e+06 p95=2.9e+06 p99=2.98e+06 max=3e+06
  delivery_latency_s   [wb] n=4 mean=0.0115 sd=0.001291 min=0.01 p50=0.0115 p95=0.01285 p99=0.01297 max=0.013
  retransmissions      [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  sessions_open        [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  demux_probes         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  table_occupancy      [wb] n=1 mean=0.25 sd=nan min=0.25 p50=0.25 p95=0.25 p99=0.25 max=0.25
trace (dropped log entries: 0):
  close                        1
  open                         1
|golden}

let check_golden name golden actual =
  if String.equal golden actual then ()
  else begin
    (* Print both in full: alcotest's one-line diff is useless for a
       multi-line table. *)
    Format.eprintf "=== %s: expected ===@.%s@.=== got ===@.%s@." name golden
      actual;
    Alcotest.failf "%s drifted from its golden output" name
  end

let test_table1 () =
  check_golden "table1" table1_golden
    (Bench_harness.Util.with_captured Bench_harness.Tables.table1)

let test_table2 () =
  check_golden "table2" table2_golden
    (Bench_harness.Util.with_captured Bench_harness.Tables.table2)

(* A small fixed repository: one real session with blackbox and whitebox
   observations, a trace sink, and the scheduler pseudo-session that
   [report] folds in. *)
let test_unites_report () =
  let engine = Engine.create () in
  let unites = Unites.create ~reservoir:64 engine in
  let trace = Trace.create ~log_capacity:16 () in
  Unites.attach_trace unites trace;
  Unites.register_session unites ~id:1 ~name:"golden-session";
  List.iter
    (fun v -> Unites.observe unites ~session:1 Unites.Throughput v)
    [ 1.0e6; 2.0e6; 3.0e6 ];
  List.iter
    (fun v -> Unites.observe unites ~session:1 Unites.Delivery_latency v)
    [ 0.010; 0.012; 0.011; 0.013 ];
  Unites.count unites ~session:1 Unites.Retransmissions;
  Unites.count unites ~session:1 Unites.Sessions_open;
  Unites.observe unites ~session:1 Unites.Demux_probes 1.0;
  Unites.observe unites ~session:1 Unites.Table_occupancy 0.25;
  Trace.event trace ~at:Time.zero ~category:"open" ~detail:"1";
  Trace.event trace ~at:(Time.ms 5) ~category:"close" ~detail:"1";
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Unites.report fmt unites;
  Format.pp_print_flush fmt ();
  check_golden "unites report" unites_report_golden (Buffer.contents buf)

(* One wire-true run pinned end to end: the swarm outcome (with its wire
   report line) and the full UNITES repository, including the wire
   pseudo-session.  Any change to the wire path's accounting, the codec's
   byte counts, or frame-level determinism shows up here as a digest or
   counter drift. *)
let wire_swarm_golden =
  {golden|swarm: offered=10 admitted=10 degraded=0 refused=0 closed=10
delivered: 10 msgs, 22096 bytes; peak live=5; table capacity=16
demux probes: mean=1.000 p99=1; occupancy p99=0.500; timewait drops=0
events=218 sim_time=7.000s digest=0x6bdd92b6ac9d6f04
wire: encodes=52 decodes=52 rejects=0 fused_sums=0 pool_reuse=1.000
=== unites ===
UNITES metric repository (t=7.000s, whitebox=true)
session -3 (wire):
  wire_encodes         [wb] n=1 mean=52 sd=nan min=52 p50=52 p95=52 p99=52 max=52
  wire_decodes         [wb] n=1 mean=52 sd=nan min=52 p50=52 p95=52 p99=52 max=52
  wire_rejects         [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  wire_fused_sums      [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  wire_pool_reuse      [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
session -2 (swarm):
  sessions_open        [wb] n=10 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  demux_probes         [wb] n=52 mean=1 sd=0 min=1 p50=1 p95=1 p99=1 max=1
  table_occupancy      [wb] n=54 mean=0.3218 sd=0.1626 min=0 p50=0.375 p95=0.5 p99=0.5 max=0.5
session 0 (scheduler):
  sched_events_fired   [wb] n=1 mean=218 sd=nan min=218 p50=218 p95=218 p99=218 max=218
  sched_timers_rearmed [wb] n=1 mean=29 sd=nan min=29 p50=29 p95=29 p99=29 max=29
  sched_cancelled_ratio [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  sched_wheel_hit_rate [wb] n=1 mean=0.5598 sd=nan min=0.5598 p50=0.5598 p95=0.5598 p99=0.5598 max=0.5598
session 1 (sw-0-0):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
session 2 (sw-1-0):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.522e-06 sd=nan min=6.522e-06 p50=6.522e-06 p95=6.522e-06 p99=6.522e-06 max=6.522e-06
session 3 (sw-2-0):
  setup_latency_s      [wb] n=2 mean=6.135e-05 sd=8.676e-05 min=0 p50=6.135e-05 p95=0.0001166 p99=0.0001215 max=0.0001227
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 4 (sw-3-0):
  setup_latency_s      [wb] n=2 mean=6.138e-05 sd=8.68e-05 min=0 p50=6.138e-05 p95=0.0001166 p99=0.0001215 max=0.0001228
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
session 5 (sw-1-1):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.522e-06 sd=nan min=6.522e-06 p50=6.522e-06 p95=6.522e-06 p99=6.522e-06 max=6.522e-06
session 6 (sw-0-1):
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
session 7 (sw-4-0):
  rtt_s                [bb] n=1 mean=0.002171 sd=nan min=0.002171 p50=0.002171 p95=0.002171 p99=0.002171 max=0.002171
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.314e-06 sd=nan min=6.314e-06 p50=6.314e-06 p95=6.314e-06 p99=6.314e-06 max=6.314e-06
session 8 (sw-2-1):
  setup_latency_s      [wb] n=2 mean=6.135e-05 sd=8.676e-05 min=0 p50=6.135e-05 p95=0.0001166 p99=0.0001215 max=0.0001227
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.483e-06 sd=nan min=6.483e-06 p50=6.483e-06 p95=6.483e-06 p99=6.483e-06 max=6.483e-06
session 9 (sw-4-1):
  rtt_s                [bb] n=1 mean=0.002221 sd=nan min=0.002221 p50=0.002221 p95=0.002221 p99=0.002221 max=0.002221
  setup_latency_s      [wb] n=2 mean=0 sd=0 min=0 p50=0 p95=0 p99=0 max=0
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.314e-06 sd=nan min=6.314e-06 p50=6.314e-06 p95=6.314e-06 p99=6.314e-06 max=6.314e-06
session 10 (sw-3-1):
  setup_latency_s      [wb] n=2 mean=6.138e-05 sd=8.68e-05 min=0 p50=6.138e-05 p95=0.0001166 p99=0.0001215 max=0.0001228
  control_pdus         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  host_cpu_s           [wb] n=1 mean=6.496e-06 sd=nan min=6.496e-06 p50=6.496e-06 p95=6.496e-06 p99=6.496e-06 max=6.496e-06
trace (dropped log entries: 0):
  close                        10
  deliver                      10
  open                         10
|golden}

let wire_swarm_output () =
  let open Adaptive_workloads in
  let cfg =
    { (Swarm.default_config ~sessions:5 ~seed:424242) with
      Swarm.churn_rounds = 1;
      wire = true }
  in
  let o = Swarm.run cfg in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Format.asprintf "%a" Swarm.pp_outcome o);
  Buffer.add_string buf "\n=== unites ===\n";
  let fmt = Format.formatter_of_buffer buf in
  Unites.report fmt o.Swarm.unites;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_wire_swarm () =
  check_golden "wire-true swarm report" wire_swarm_golden (wire_swarm_output ())

let suite =
  [
    ( "golden",
      [
        Alcotest.test_case "table1 output is pinned" `Quick test_table1;
        Alcotest.test_case "table2 output is pinned" `Quick test_table2;
        Alcotest.test_case "UNITES report is pinned" `Quick test_unites_report;
        Alcotest.test_case "wire-true swarm report is pinned" `Quick
          test_wire_swarm;
      ] );
  ]
