(* Golden-output regression tests: the regenerated paper tables and a
   synthetic UNITES report are pinned byte-for-byte.  A diff here means
   presentation (or the data behind it) changed; update the golden only
   when the change is intentional. *)

open Adaptive_sim
open Adaptive_core

let table1_golden =
  {golden|
=== Table 1 — Application Transport Service Classes (regenerated)
------------------------------------------------------------------------
Service Class                  Application                  Thruput   Burst Delay Jitter Order Loss  Pri  Mcast
--------------------------------------------------------------------------------------------------------------
Interactive Isochronous        Voice Conversation           low       low   high  high   low   high  no   no   
Interactive Isochronous        Tele-Conferencing            mod       mod   high  high   low   mod   yes  yes  
Distributional Isochronous     Full-Motion Video (comp)     high      high  high  mod    low   mod   yes  yes  
Distributional Isochronous     Full-Motion Video (raw)      very-high low   high  high   low   mod   yes  yes  
Real-Time Non-Isochronous      Manufacturing Control        mod       mod   high  N/D    high  low   yes  yes  
Non-Real-Time Non-Isochronous  File Transfer                mod       low   low   N/D    high  none  no   no   
Non-Real-Time Non-Isochronous  TELNET                       very-low  high  high  low    high  none  yes  no   
Non-Real-Time Non-Isochronous  On-Line Transaction Processing low       high  high  low    high  none  no   no   
Non-Real-Time Non-Isochronous  Remote File Service          low       high  high  low    high  none  no   yes  
--------------------------------------------------------------------------------------------------------------
cells agreeing with the paper's grades: 72 / 72
shape: all nine applications land in the paper's service class    OK
shape: at least 80% of qualitative grades match the paper         OK
|golden}

let table2_golden =
  {golden|
=== Table 2 — The ADAPTIVE Communication Descriptor (regenerated)
------------------------------------------------------------------------
Remote Session Participant Address(es)    
    Specifies >= 1 addresses of remote end-systems that comprise the communication association.
    e.g. unicast: [b]; multicast: [b; c; d]
Quantitative QoS Parameters               
    Specifies the performance criteria requested by the application.
    e.g. peak and average throughput, minimum and maximum latency and jitter, error-rate probabilities, duration
Qualitative QoS Parameters                
    Specifies the functionality or behavior requested by the application.
    e.g. sequenced/non-sequenced delivery, duplicate sensitivity, explicit/implicit connection management, priority delivery
Transport Service Adjustment (TSA)        
    Actions to perform when changes occur in local or remote hosts or the network.
    e.g. <congestion > 0.60, switch recovery to srepeat>; <rtt > 150ms, switch recovery to fec:8>
Transport Measurement Component (TMC)     
    Specifies performance metrics to collect for this particular communication session.
    e.g. throughput_bps, delivery_latency_s, retransmissions; sampling rate 1s
shape: five descriptor components as in the paper                 OK
|golden}

let unites_report_golden =
  {golden|UNITES metric repository (t=0ns, whitebox=true)
session 0 (scheduler):
  sched_cancelled_ratio [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
  sched_wheel_hit_rate [wb] n=1 mean=0 sd=nan min=0 p50=0 p95=0 p99=0 max=0
session 1 (golden-session):
  throughput_bps       [bb] n=3 mean=2e+06 sd=1e+06 min=1e+06 p50=2e+06 p95=2.9e+06 p99=2.98e+06 max=3e+06
  delivery_latency_s   [wb] n=4 mean=0.0115 sd=0.001291 min=0.01 p50=0.0115 p95=0.01285 p99=0.01297 max=0.013
  retransmissions      [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  sessions_open        [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  demux_probes         [wb] n=1 mean=1 sd=nan min=1 p50=1 p95=1 p99=1 max=1
  table_occupancy      [wb] n=1 mean=0.25 sd=nan min=0.25 p50=0.25 p95=0.25 p99=0.25 max=0.25
trace (dropped log entries: 0):
  close                        1
  open                         1
|golden}

let check_golden name golden actual =
  if String.equal golden actual then ()
  else begin
    (* Print both in full: alcotest's one-line diff is useless for a
       multi-line table. *)
    Format.eprintf "=== %s: expected ===@.%s@.=== got ===@.%s@." name golden
      actual;
    Alcotest.failf "%s drifted from its golden output" name
  end

let test_table1 () =
  check_golden "table1" table1_golden
    (Bench_harness.Util.with_captured Bench_harness.Tables.table1)

let test_table2 () =
  check_golden "table2" table2_golden
    (Bench_harness.Util.with_captured Bench_harness.Tables.table2)

(* A small fixed repository: one real session with blackbox and whitebox
   observations, a trace sink, and the scheduler pseudo-session that
   [report] folds in. *)
let test_unites_report () =
  let engine = Engine.create () in
  let unites = Unites.create ~reservoir:64 engine in
  let trace = Trace.create ~log_capacity:16 () in
  Unites.attach_trace unites trace;
  Unites.register_session unites ~id:1 ~name:"golden-session";
  List.iter
    (fun v -> Unites.observe unites ~session:1 Unites.Throughput v)
    [ 1.0e6; 2.0e6; 3.0e6 ];
  List.iter
    (fun v -> Unites.observe unites ~session:1 Unites.Delivery_latency v)
    [ 0.010; 0.012; 0.011; 0.013 ];
  Unites.count unites ~session:1 Unites.Retransmissions;
  Unites.count unites ~session:1 Unites.Sessions_open;
  Unites.observe unites ~session:1 Unites.Demux_probes 1.0;
  Unites.observe unites ~session:1 Unites.Table_occupancy 0.25;
  Trace.event trace ~at:Time.zero ~category:"open" ~detail:"1";
  Trace.event trace ~at:(Time.ms 5) ~category:"close" ~detail:"1";
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Unites.report fmt unites;
  Format.pp_print_flush fmt ();
  check_golden "unites report" unites_report_golden (Buffer.contents buf)

let suite =
  [
    ( "golden",
      [
        Alcotest.test_case "table1 output is pinned" `Quick test_table1;
        Alcotest.test_case "table2 output is pinned" `Quick test_table2;
        Alcotest.test_case "UNITES report is pinned" `Quick test_unites_report;
      ] );
  ]
