(* Tests for the buffer-management substrate: Msg (TKO_Message), Checksum,
   Pool. *)

open Adaptive_buf

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ Msg *)

let test_msg_create () =
  let m = Msg.create 100 in
  check_int "data" 100 (Msg.data_length m);
  check_int "headers" 0 (Msg.header_length m);
  check_int "total" 100 (Msg.total_length m);
  let m2 = Msg.of_string "hello" in
  check_int "of_string" 5 (Msg.data_length m2);
  check_str "content" "hello" (Msg.data_to_string m2)

let test_msg_push_pop () =
  let m = Msg.of_string "payload" in
  Msg.push m "tcp|";
  Msg.push m "ip|";
  Msg.push m "eth|";
  check_int "header bytes" 11 (Msg.header_length m);
  check_str "outermost first" "eth|ip|tcp|payload" (Msg.to_string m);
  Alcotest.(check (option string)) "peek" (Some "eth|") (Msg.peek_header m);
  Alcotest.(check (option string)) "pop eth" (Some "eth|") (Msg.pop m);
  Alcotest.(check (option string)) "pop ip" (Some "ip|") (Msg.pop m);
  Alcotest.(check (option string)) "pop tcp" (Some "tcp|") (Msg.pop m);
  Alcotest.(check (option string)) "pop empty" None (Msg.pop m);
  check_int "data untouched" 7 (Msg.data_length m)

let test_msg_split () =
  let m = Msg.of_string "abcdefghij" in
  Msg.push m "H";
  let front, back = Msg.split m 4 in
  check_str "front data" "abcd" (Msg.data_to_string front);
  check_str "back data" "efghij" (Msg.data_to_string back);
  check_int "headers stay with front" 1 (Msg.header_length front);
  check_int "back headerless" 0 (Msg.header_length back);
  Alcotest.check_raises "negative" (Invalid_argument "Msg.split: index out of range")
    (fun () -> ignore (Msg.split m (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Msg.split: index out of range")
    (fun () -> ignore (Msg.split m 11))

let test_msg_split_edges () =
  let m = Msg.of_string "xyz" in
  let a, b = Msg.split m 0 in
  check_int "empty front" 0 (Msg.data_length a);
  check_str "full back" "xyz" (Msg.data_to_string b);
  let c, d = Msg.split m 3 in
  check_str "full front" "xyz" (Msg.data_to_string c);
  check_int "empty back" 0 (Msg.data_length d)

let test_msg_fragment_concat () =
  let m = Msg.of_string "0123456789abcdef" in
  let frags = Msg.fragment m ~mtu:5 in
  check_int "fragment count" 4 (List.length frags);
  Alcotest.(check (list int)) "fragment sizes" [ 5; 5; 5; 1 ]
    (List.map Msg.data_length frags);
  let whole = Msg.concat frags in
  check_str "reassembled" "0123456789abcdef" (Msg.data_to_string whole);
  Alcotest.check_raises "bad mtu" (Invalid_argument "Msg.fragment: non-positive MTU")
    (fun () -> ignore (Msg.fragment m ~mtu:0))

let test_msg_copy_sharing () =
  let base = Bytes.of_string "shared" in
  let m = Msg.of_bytes base in
  let c = Msg.copy m in
  Msg.push c "X";
  check_int "copy header independent" 0 (Msg.header_length m);
  check_int "copy has header" 1 (Msg.header_length c);
  (* Data bytes are shared: mutating the base is visible through both. *)
  Bytes.set base 0 'S';
  check_str "original sees change" "Shared" (Msg.data_to_string m);
  check_str "copy sees change" "Shared" (Msg.data_to_string c)

let test_msg_copy_counters () =
  Msg.reset_copy_counters ();
  let m = Msg.of_string "0123456789" in
  let _frags = Msg.fragment m ~mtu:3 in
  let _c = Msg.copy m in
  let _halves = Msg.split m 5 in
  check_int "logical ops copy nothing" 0 (Msg.physical_copies ());
  ignore (Msg.data_to_string m);
  check_int "materialize counts" 1 (Msg.physical_copies ());
  check_int "bytes counted" 10 (Msg.copied_bytes ());
  let dst = Bytes.create 10 in
  Msg.blit_data m dst 0;
  check_int "blit counts" 2 (Msg.physical_copies ());
  Msg.reset_copy_counters ();
  check_int "reset" 0 (Msg.physical_copies ())

let test_msg_iter_data () =
  let m = Msg.of_string "abcdef" in
  let _, back = Msg.split m 2 in
  let collected = Buffer.create 8 in
  Msg.iter_data back (fun b off len -> Buffer.add_subbytes collected b off len);
  check_str "iter over segments" "cdef" (Buffer.contents collected)

let test_msg_of_bytes_slice () =
  let base = Bytes.of_string "0123456789" in
  let m = Msg.of_bytes_slice base ~off:2 ~len:5 in
  check_int "slice length" 5 (Msg.data_length m);
  check_str "slice content" "23456" (Msg.data_to_string m);
  (* The slice is a view: base mutations show through. *)
  Bytes.set base 3 'X';
  check_str "aliases base" "2X456" (Msg.data_to_string m);
  Alcotest.check_raises "overrun" (Invalid_argument "Msg.of_bytes_slice")
    (fun () -> ignore (Msg.of_bytes_slice base ~off:8 ~len:3));
  Alcotest.check_raises "negative" (Invalid_argument "Msg.of_bytes_slice")
    (fun () -> ignore (Msg.of_bytes_slice base ~off:(-1) ~len:2))

let test_msg_detach () =
  let base = Bytes.of_string "leased frame bytes" in
  let view = Msg.of_bytes_slice base ~off:7 ~len:5 in
  Msg.reset_copy_counters ();
  let owned = Msg.detach view in
  check_int "detach is one counted copy" 1 (Msg.physical_copies ());
  check_int "bytes counted" 5 (Msg.copied_bytes ());
  check_str "same content" "frame" (Msg.data_to_string owned);
  (* The detached message survives the lease's buffer being recycled. *)
  Bytes.fill base 0 (Bytes.length base) '\000';
  check_str "independent of base" "frame" (Msg.data_to_string owned);
  check_str "view sees the recycle" "\000\000\000\000\000" (Msg.data_to_string view)

let prop_fragment_roundtrip =
  QCheck2.Test.make ~name:"fragment/concat is the identity" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 200)) (int_range 1 32))
    (fun (s, mtu) ->
      let m = Msg.of_string s in
      Msg.data_to_string (Msg.concat (Msg.fragment m ~mtu)) = s)

let prop_split_partition =
  QCheck2.Test.make ~name:"split partitions the data region" ~count:300
    QCheck2.Gen.(string_size (int_range 0 100))
    (fun s ->
      let n = String.length s / 2 in
      let m = Msg.of_string s in
      let a, b = Msg.split m n in
      Msg.data_to_string a ^ Msg.data_to_string b = s)

let prop_push_pop_roundtrip =
  QCheck2.Test.make ~name:"push then pop returns headers LIFO" ~count:200
    QCheck2.Gen.(list_size (int_range 0 10) (string_size (int_range 1 8)))
    (fun headers ->
      let m = Msg.of_string "data" in
      List.iter (Msg.push m) headers;
      let popped = List.filter_map (fun _ -> Msg.pop m) headers in
      popped = List.rev headers)

(* ------------------------------------------------------------- Checksum *)

let test_internet_known_vector () =
  (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, cksum ~220d *)
  let data = String.init 8 (fun i -> Char.chr (List.nth [ 0x00; 0x01; 0xf2; 0x03; 0xf4; 0xf5; 0xf6; 0xf7 ] i)) in
  check_int "rfc1071" 0x220D (Checksum.internet data)

let test_internet_odd_length () =
  let even = Checksum.internet "ab" in
  let odd = Checksum.internet "ab\000" in
  check_int "trailing zero pad equivalent" even odd

let test_crc32_known_vector () =
  Alcotest.(check int32) "check value" 0xCBF43926l (Checksum.crc32 "123456789")

let test_adler32_known_vector () =
  Alcotest.(check int32) "wikipedia" 0x11E60398l (Checksum.adler32 "Wikipedia")

let test_checksum_detects_flip () =
  let s = "The quick brown fox jumps over the lazy dog" in
  let flipped = Bytes.of_string s in
  Bytes.set flipped 7 (Char.chr (Char.code (Bytes.get flipped 7) lxor 0x40));
  check_bool "internet detects" true
    (Checksum.internet s <> Checksum.internet (Bytes.to_string flipped));
  check_bool "crc detects" true
    (Checksum.crc32 s <> Checksum.crc32 (Bytes.to_string flipped))

let prop_internet_msg_fragmentation_invariant =
  QCheck2.Test.make ~name:"internet_msg is invariant under fragmentation" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 128)) (int_range 1 16))
    (fun (s, mtu) ->
      let whole = Checksum.internet s in
      let m = Msg.concat (Msg.fragment (Msg.of_string s) ~mtu) in
      Checksum.internet_msg m = whole)

let prop_crc32_msg_fragmentation_invariant =
  QCheck2.Test.make ~name:"crc32_msg is invariant under fragmentation" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 128)) (int_range 1 16))
    (fun (s, mtu) ->
      let whole = Checksum.crc32 s in
      let m = Msg.concat (Msg.fragment (Msg.of_string s) ~mtu) in
      Checksum.crc32_msg m = whole)

let prop_crc_bit_flip =
  QCheck2.Test.make ~name:"crc32 detects any single bit flip" ~count:300
    QCheck2.Gen.(string_size (int_range 1 64))
    (fun s ->
      let b = Bytes.of_string s in
      let i = (String.length s * 7) mod String.length s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Checksum.crc32 s <> Checksum.crc32 (Bytes.to_string b))

(* Byte-at-a-time reference implementations the word-at-a-time folds in
   Checksum must agree with. *)

let ref_internet s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + (Bytes.get_uint8 b !i lsl 8) + Bytes.get_uint8 b (!i + 1);
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Bytes.get_uint8 b !i lsl 8);
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let ref_crc32 s =
  let poly = 0xEDB88320 in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := !c lxor Char.code ch;
      for _ = 0 to 7 do
        if !c land 1 <> 0 then c := poly lxor (!c lsr 1) else c := !c lsr 1
      done)
    s;
  Int32.of_int (!c lxor 0xFFFFFFFF)

let prop_internet_matches_bytewise_reference =
  QCheck2.Test.make ~name:"word-at-a-time internet = byte-wise reference"
    ~count:500
    QCheck2.Gen.(string_size (int_range 0 300))
    (fun s -> Checksum.internet s = ref_internet s)

let prop_crc32_matches_bytewise_reference =
  QCheck2.Test.make ~name:"slicing-by-8 crc32 = byte-wise reference" ~count:500
    QCheck2.Gen.(string_size (int_range 0 300))
    (fun s -> Checksum.crc32 s = ref_crc32 s)

let prop_internet_msg_odd_segments =
  (* Odd-length segments force the cross-boundary carry path. *)
  QCheck2.Test.make ~name:"internet_msg carries across odd segment splits"
    ~count:500
    QCheck2.Gen.(list_size (int_range 0 8) (string_size (int_range 0 33)))
    (fun pieces ->
      let m = Msg.concat (List.map Msg.of_string pieces) in
      Checksum.internet_msg m = ref_internet (String.concat "" pieces))

let prop_crc32_msg_odd_segments =
  QCheck2.Test.make ~name:"crc32_msg over segments = byte-wise reference"
    ~count:500
    QCheck2.Gen.(list_size (int_range 0 8) (string_size (int_range 0 33)))
    (fun pieces ->
      let m = Msg.concat (List.map Msg.of_string pieces) in
      Checksum.crc32_msg m = ref_crc32 (String.concat "" pieces))

(* Fused running sums: the packed-state [sum_*] operations must agree
   with copy-then-[internet] over any chunking — including odd-length
   chunks (which exercise the pending-byte carry) and nonzero offsets
   (which exercise the unaligned bulk loop). *)

(* Cut [s] into chunks whose lengths are drawn from [cuts]. *)
let chunked s cuts =
  let n = String.length s in
  let rec go pos cuts acc =
    if pos >= n then List.rev acc
    else
      match cuts with
      | [] -> List.rev ((pos, n - pos) :: acc)
      | c :: rest ->
        let len = min (1 + c) (n - pos) in
        go (pos + len) rest ((pos, len) :: acc)
  in
  go 0 cuts []

let gen_string_and_cuts =
  QCheck2.Gen.(
    pair
      (string_size (int_range 0 300))
      (list_size (int_range 0 12) (int_range 0 37)))

let prop_sum_add_chunked_matches_internet =
  QCheck2.Test.make
    ~name:"sum_add over any chunking = internet of the whole" ~count:500
    gen_string_and_cuts
    (fun (s, cuts) ->
      let b = Bytes.of_string s in
      let st =
        List.fold_left
          (fun st (off, len) -> Checksum.sum_add st b off len)
          Checksum.sum_init (chunked s cuts)
      in
      Checksum.sum_finish st = Checksum.internet s)

let prop_sum_into_matches_copy_then_internet =
  (* The satellite property: fused copy+sum = Bytes.blit then
     [internet], for odd lengths and offset starts on both sides. *)
  QCheck2.Test.make
    ~name:"sum_into = blit + internet (odd lengths, offset starts)"
    ~count:500
    QCheck2.Gen.(pair gen_string_and_cuts (pair (int_range 0 7) (int_range 0 7)))
    (fun ((s, cuts), (src_pad, dst_pad)) ->
      let n = String.length s in
      (* Embed the source at [src_pad] so bulk loops start unaligned. *)
      let src = Bytes.make (src_pad + n) '\xAA' in
      Bytes.blit_string s 0 src src_pad n;
      let dst = Bytes.make (dst_pad + n) '\x55' in
      let st =
        List.fold_left
          (fun st (off, len) ->
            Checksum.sum_into st ~src ~src_off:(src_pad + off) ~dst
              ~dst_off:(dst_pad + off) ~len)
          Checksum.sum_init (chunked s cuts)
      in
      Checksum.sum_finish st = Checksum.internet s
      && Bytes.sub_string dst dst_pad n = s)

let prop_sum_skip2_is_two_zero_bytes =
  QCheck2.Test.make
    ~name:"sum_skip2 = sum_add of two zero bytes at any parity" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 64)) (string_size (int_range 0 64)))
    (fun (before, after) ->
      let b1 = Bytes.of_string before and b2 = Bytes.of_string after in
      let zz = Bytes.make 2 '\000' in
      let via_skip =
        Checksum.sum_add
          (Checksum.sum_skip2
             (Checksum.sum_add Checksum.sum_init b1 0 (Bytes.length b1)))
          b2 0 (Bytes.length b2)
      in
      let via_zeros =
        Checksum.sum_add
          (Checksum.sum_add
             (Checksum.sum_add Checksum.sum_init b1 0 (Bytes.length b1))
             zz 0 2)
          b2 0 (Bytes.length b2)
      in
      Checksum.sum_finish via_skip = Checksum.sum_finish via_zeros)

let test_sum_into_bounds () =
  let src = Bytes.create 8 and dst = Bytes.create 8 in
  Alcotest.check_raises "src overrun" (Invalid_argument "Checksum.sum_into")
    (fun () ->
      ignore
        (Checksum.sum_into Checksum.sum_init ~src ~src_off:4 ~dst ~dst_off:0
           ~len:5));
  Alcotest.check_raises "dst overrun" (Invalid_argument "Checksum.sum_into")
    (fun () ->
      ignore
        (Checksum.sum_into Checksum.sum_init ~src ~src_off:0 ~dst ~dst_off:4
           ~len:5));
  Alcotest.check_raises "negative len" (Invalid_argument "Checksum.sum_add")
    (fun () -> ignore (Checksum.sum_add Checksum.sum_init src 0 (-1)))

(* Cached lengths: [data_length]/[header_length] are O(1) fields now;
   check they always agree with a recount over the actual regions. *)

let recounted_data_length m =
  let n = ref 0 in
  Msg.iter_data m (fun _ _ len -> n := !n + len);
  !n

let prop_msg_cached_data_length =
  QCheck2.Test.make ~name:"cached data_length survives split/fragment/concat"
    ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 120)) (int_range 1 17))
    (fun (s, mtu) ->
      let m = Msg.of_string s in
      let n = String.length s in
      let front, back = Msg.split m (n / 2) in
      let frags = Msg.fragment m ~mtu in
      let whole = Msg.concat (front :: back :: frags) in
      Msg.data_length m = recounted_data_length m
      && Msg.data_length front = n / 2
      && Msg.data_length back = n - (n / 2)
      && List.for_all (fun f -> Msg.data_length f = recounted_data_length f) frags
      && Msg.data_length whole = 2 * n
      && Msg.total_length whole = Msg.header_length whole + Msg.data_length whole)

let prop_msg_cached_header_length =
  QCheck2.Test.make ~name:"cached header_length tracks push/pop" ~count:300
    QCheck2.Gen.(list_size (int_range 0 12) (string_size (int_range 0 9)))
    (fun headers ->
      let m = Msg.of_string "payload" in
      List.iter (Msg.push m) headers;
      let full = List.fold_left (fun a h -> a + String.length h) 0 headers in
      let ok_pushed = Msg.header_length m = full in
      let popped = match Msg.pop m with None -> 0 | Some h -> String.length h in
      ok_pushed
      && Msg.header_length m = full - popped
      && Msg.header_length (Msg.copy m) = full - popped)

(* ------------------------------------------------------------------ Pool *)

let test_pool_alloc_free () =
  let p = Pool.create ~buffers:2 ~size:64 in
  check_int "capacity" 2 (Pool.capacity p);
  check_int "available" 2 (Pool.available p);
  let a = Option.get (Pool.alloc p) in
  let _b = Option.get (Pool.alloc p) in
  check_int "in use" 2 (Pool.in_use p);
  check_bool "exhausted" true (Pool.alloc p = None);
  check_int "miss recorded" 1 (Pool.misses p);
  check_int "allocs recorded" 2 (Pool.allocations p);
  Pool.free p a;
  check_int "available again" 1 (Pool.available p);
  check_bool "realloc works" true (Pool.alloc p <> None)

let test_pool_free_errors () =
  let p = Pool.create ~buffers:1 ~size:32 in
  Alcotest.check_raises "wrong size" (Invalid_argument "Pool.free: wrong buffer size")
    (fun () -> Pool.free p (Bytes.create 16));
  Alcotest.check_raises "already full" (Invalid_argument "Pool.free: pool already full")
    (fun () -> Pool.free p (Bytes.create 32))

let test_pool_resize () =
  let p = Pool.create ~buffers:2 ~size:16 in
  let a = Option.get (Pool.alloc p) in
  Pool.resize p ~buffers:5;
  check_int "grown capacity" 5 (Pool.capacity p);
  check_int "grown available" 4 (Pool.available p);
  Pool.resize p ~buffers:1;
  check_int "shrunk capacity" 1 (Pool.capacity p);
  check_int "shrunk available" 0 (Pool.available p);
  check_int "allocated buffer survives" 1 (Pool.in_use p);
  Pool.free p a;
  check_int "freed beyond capacity dropped" 1 (Pool.available p)

let test_pool_buffer_size () =
  let p = Pool.create ~buffers:1 ~size:128 in
  check_int "size" 128 (Pool.buffer_size p);
  check_int "buffer length" 128 (Bytes.length (Option.get (Pool.alloc p)))

let test_pool_free_discarded () =
  let p = Pool.create ~buffers:2 ~size:8 in
  let a = Option.get (Pool.alloc p) in
  let b = Option.get (Pool.alloc p) in
  Pool.resize p ~buffers:1;
  check_int "no discards yet" 0 (Pool.free_discarded p);
  Pool.free p a;
  check_int "over-capacity return dropped" 1 (Pool.free_discarded p);
  check_int "not added to free list" 0 (Pool.available p);
  Pool.free p b;
  check_int "within-capacity return kept" 1 (Pool.available p);
  check_int "discard count unchanged" 1 (Pool.free_discarded p)

let test_pool_count_invariant () =
  (* [available] is a maintained counter; hammer a deterministic
     alloc/free pattern and check the accounting identity
     available + in_use = capacity at every step (no resizes, so no
     discards can occur). *)
  let p = Pool.create ~buffers:8 ~size:4 in
  let held = ref [] in
  for i = 0 to 999 do
    (if i land 3 <> 0 then
       match Pool.alloc p with
       | Some b -> held := b :: !held
       | None -> ()
     else
       match !held with
       | b :: rest ->
         held := rest;
         Pool.free p b
       | [] -> ());
    if Pool.available p + Pool.in_use p <> Pool.capacity p then
      Alcotest.failf "counter drift at step %d: %d free + %d used <> %d cap" i
        (Pool.available p) (Pool.in_use p) (Pool.capacity p)
  done;
  check_int "in_use matches held buffers" (List.length !held) (Pool.in_use p);
  check_int "no discards without resize" 0 (Pool.free_discarded p)

(* ------------------------------------------------------------ Pool leases *)

let test_lease_reuse () =
  let p = Pool.create ~buffers:2 ~size:64 in
  let l1 = Pool.lease p ~min_bytes:32 in
  check_int "pool served" 1 (Pool.lease_hits p);
  check_int "one ref" 1 (Pool.lease_refs l1);
  check_int "taken from free list" 1 (Pool.available p);
  let b1 = Pool.lease_buf l1 in
  Pool.release p l1;
  check_int "returned on final release" 2 (Pool.available p);
  (* The recycled buffer comes straight back for the next frame. *)
  let l2 = Pool.lease p ~min_bytes:32 in
  check_bool "same physical buffer reused" true (Pool.lease_buf l2 == b1);
  check_int "still zero fresh" 0 (Pool.lease_fresh p);
  Pool.release p l2

let test_lease_refcount () =
  let p = Pool.create ~buffers:1 ~size:16 in
  let l = Pool.lease p ~min_bytes:8 in
  Pool.retain l;
  Pool.retain l;
  check_int "three holders" 3 (Pool.lease_refs l);
  Pool.release p l;
  Pool.release p l;
  check_int "buffer still held" 0 (Pool.available p);
  check_bool "still readable" true (Bytes.length (Pool.lease_buf l) = 16);
  Pool.release p l;
  check_int "final release returns it" 1 (Pool.available p);
  check_int "refs exhausted" 0 (Pool.lease_refs l)

let test_lease_double_release () =
  let p = Pool.create ~buffers:1 ~size:16 in
  let l = Pool.lease p ~min_bytes:8 in
  Pool.release p l;
  Alcotest.check_raises "double free" (Invalid_argument "Pool.release: lease already released")
    (fun () -> Pool.release p l);
  Alcotest.check_raises "use after free" (Invalid_argument "Pool.lease_buf: lease already released")
    (fun () -> ignore (Pool.lease_buf l));
  Alcotest.check_raises "retain after free" (Invalid_argument "Pool.retain: lease already released")
    (fun () -> Pool.retain l)

let test_lease_fresh_fallbacks () =
  let p = Pool.create ~buffers:1 ~size:32 in
  (* Oversized request: fresh buffer sized to the request. *)
  let big = Pool.lease p ~min_bytes:100 in
  check_int "oversized is fresh" 1 (Pool.lease_fresh p);
  check_bool "sized to request" true (Bytes.length (Pool.lease_buf big) >= 100);
  check_int "pool untouched" 1 (Pool.available p);
  (* Exhaustion: pool empty, so fresh again (and an alloc miss). *)
  let a = Pool.lease p ~min_bytes:8 in
  let b = Pool.lease p ~min_bytes:8 in
  check_int "second lease fresh on empty pool" 2 (Pool.lease_fresh p);
  check_bool "exhaustion counted as miss" true (Pool.misses p >= 1);
  Pool.release p a;
  check_int "pooled buffer comes back" 1 (Pool.available p);
  Pool.release p b;
  Pool.release p big;
  check_int "fresh buffers are not pooled on release" 1 (Pool.available p)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "buf.msg",
      [
        Alcotest.test_case "create and lengths" `Quick test_msg_create;
        Alcotest.test_case "header push/pop" `Quick test_msg_push_pop;
        Alcotest.test_case "split" `Quick test_msg_split;
        Alcotest.test_case "split edges" `Quick test_msg_split_edges;
        Alcotest.test_case "fragment and concat" `Quick test_msg_fragment_concat;
        Alcotest.test_case "lazy copy shares payload" `Quick test_msg_copy_sharing;
        Alcotest.test_case "copy counters" `Quick test_msg_copy_counters;
        Alcotest.test_case "iter_data" `Quick test_msg_iter_data;
        Alcotest.test_case "of_bytes_slice views" `Quick test_msg_of_bytes_slice;
        Alcotest.test_case "detach copies out of a lease" `Quick test_msg_detach;
      ]
      @ qsuite
          [
            prop_fragment_roundtrip;
            prop_split_partition;
            prop_push_pop_roundtrip;
            prop_msg_cached_data_length;
            prop_msg_cached_header_length;
          ] );
    ( "buf.checksum",
      [
        Alcotest.test_case "internet RFC vector" `Quick test_internet_known_vector;
        Alcotest.test_case "internet odd length" `Quick test_internet_odd_length;
        Alcotest.test_case "crc32 check value" `Quick test_crc32_known_vector;
        Alcotest.test_case "adler32 vector" `Quick test_adler32_known_vector;
        Alcotest.test_case "detects bit flips" `Quick test_checksum_detects_flip;
        Alcotest.test_case "sum_into/sum_add bounds" `Quick test_sum_into_bounds;
      ]
      @ qsuite
          [
            prop_internet_msg_fragmentation_invariant;
            prop_crc32_msg_fragmentation_invariant;
            prop_crc_bit_flip;
            prop_internet_matches_bytewise_reference;
            prop_crc32_matches_bytewise_reference;
            prop_internet_msg_odd_segments;
            prop_crc32_msg_odd_segments;
            prop_sum_add_chunked_matches_internet;
            prop_sum_into_matches_copy_then_internet;
            prop_sum_skip2_is_two_zero_bytes;
          ] );
    ( "buf.pool",
      [
        Alcotest.test_case "alloc and free" `Quick test_pool_alloc_free;
        Alcotest.test_case "free errors" `Quick test_pool_free_errors;
        Alcotest.test_case "resize" `Quick test_pool_resize;
        Alcotest.test_case "buffer size" `Quick test_pool_buffer_size;
        Alcotest.test_case "over-capacity frees discarded" `Quick
          test_pool_free_discarded;
        Alcotest.test_case "free-count accounting invariant" `Quick
          test_pool_count_invariant;
        Alcotest.test_case "lease reuse" `Quick test_lease_reuse;
        Alcotest.test_case "lease refcounts" `Quick test_lease_refcount;
        Alcotest.test_case "lease double release" `Quick test_lease_double_release;
        Alcotest.test_case "lease fresh fallbacks" `Quick test_lease_fresh_fallbacks;
      ] );
  ]
