(* STEER test layer: property tests over random chaos schedules (the
   flap-cooldown oracle, counter agreement, the infinite-policy
   no-op-equivalence), a seeded differential check that the steered
   population's contract-aware goodput is at least the best static
   baseline's, and the Session.reconfigure error paths the policy engine
   depends on (static-template bindings, never-opened sessions,
   reconfigure racing close and time-wait). *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_chaos
open Adaptive_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------- property fixtures *)

(* A small steered swarm on the scarcity topology the steering
   experiments use: a realistic MTU makes sessions multi-segment and a
   30 Mb/s link leaves congestion storms something to saturate. *)
let steer_config ?steer ?chaos ~check_invariants ~sessions ~seed () =
  {
    (Swarm.default_config ~sessions ~seed) with
    Swarm.monitored_share = 0;
    churn_rounds = 1;
    payload_bytes = 12_000;
    link_bps = 30e6;
    link_mtu = 1500;
    steer;
    chaos;
    check_invariants;
  }

(* Random chaos schedules drawn by the library's own seeded generator,
   restricted to the classes STEER reacts to and timed inside the small
   swarm's activity window. *)
let schedule_of_seed seed =
  Fault.random_schedule
    ~rng:(Rng.create seed)
    ~classes:[ Fault.Ber_burst; Fault.Congestion_storm; Fault.Route_flap ]
    ~first:(Time.ms 200) ~last:(Time.sec 2.5) ~max_duration:(Time.sec 1.0) ()

(* Property: over random chaos schedules, the steered run's invariant
   checker — whose flap-cooldown oracle scans the combined MANTTS/STEER
   switch stream and flags any session with two component switches
   closer than [Mantts.reconfigure_cooldown] — records zero violations.
   This is the "no session gets two STEER swaps inside the cooldown"
   property, checked by the oracle that audits the real switch log. *)
let prop_cooldown_respected =
  QCheck2.Test.make ~name:"random chaos: steered swaps respect the cooldown"
    ~count:8
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let o =
        Swarm.run
          (steer_config ~steer:Steer.default_policy
             ~chaos:(schedule_of_seed seed) ~check_invariants:true ~sessions:40
             ~seed ())
      in
      o.Swarm.violations = [])

(* Property: the outcome's swap counters agree with the UNITES steer
   pseudo-session's monotone counters, are non-negative, and replay
   identically (same seed, same schedule, same counts and digest). *)
let prop_counters_agree_and_replay =
  QCheck2.Test.make
    ~name:"random chaos: swap counters agree with UNITES and replay" ~count:6
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let cfg () =
        steer_config ~steer:Steer.default_policy ~chaos:(schedule_of_seed seed)
          ~check_invariants:false ~sessions:40 ~seed ()
      in
      let o1 = Swarm.run (cfg ()) and o2 = Swarm.run (cfg ()) in
      let swaps, blocked =
        match o1.Swarm.steer_stats with Some sb -> sb | None -> (-1, -1)
      in
      let u_swaps =
        int_of_float
          (Unites.total o1.Swarm.unites ~session:Unites.steer_session
             Unites.Steer_swaps)
      in
      let u_blocked =
        int_of_float
          (Unites.total o1.Swarm.unites ~session:Unites.steer_session
             Unites.Steer_blocked)
      in
      swaps >= 0 && blocked >= 0 && swaps = u_swaps && blocked = u_blocked
      && o1.Swarm.steer_stats = o2.Swarm.steer_stats
      && o1.Swarm.digest = o2.Swarm.digest)

(* Property: a policy whose thresholds are all infinite can never fire,
   so the steered run is observationally identical — same trace digest,
   same delivered bytes — to the unsteered run under the same chaos. *)
let prop_infinite_policy_is_noop =
  QCheck2.Test.make
    ~name:"random chaos: infinite-threshold policy is digest-identical to \
           no steering"
    ~count:6
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let run steer =
        Swarm.run
          (steer_config ?steer ~chaos:(schedule_of_seed seed)
             ~check_invariants:false ~sessions:40 ~seed ())
      in
      let steered = run (Some Steer.infinite) and plain = run None in
      (match steered.Swarm.steer_stats with
      | Some (0, _) -> true
      | Some _ | None -> false)
      && steered.Swarm.digest = plain.Swarm.digest
      && steered.Swarm.delivered_bytes = plain.Swarm.delivered_bytes)

(* --------------------------------------------------- differential test *)

(* Seeded ber-burst differential, mirroring the Table-1 idiom of
   test_swarm.ml: a 200-session swarm under a pinned burst-loss
   backdrop, steered vs the static go-back-n and selective-repeat pins.

   The pinned tolerance is deliberately below 1.0.  On a pure bit-error
   backdrop (no congestion), always-selective-repeat is a structural
   upper bound: it protects every segment from birth, while a closed
   loop steering the QoS-derived configurations can only protect a
   loss-tolerant stream after the whitebox shows the burst — and a
   sender with no recovery machinery keeps no copies, so its pre-swap
   losses are gone forever.  Steering converges to the static optimum
   (within the tolerance) here; it strictly beats every static pin when
   congestion storms are in the mix, which is exactly what the e14_steer
   bench demonstrates.  The floor protects against regressions in the
   loop itself: a steered run that mis-converts (e.g. parity FEC under
   multi-loss bursts) or thrashes drops well below it. *)
let diff_tolerance = 0.90

let diff_backdrop : Fault.schedule =
  let f cls start duration intensity =
    { Fault.cls; start; duration; target = 0; intensity }
  in
  [
    f Fault.Ber_burst (Time.ms 400) (Time.ms 1800) 0.8;
    f Fault.Ber_burst (Time.sec 2.6) (Time.ms 1600) 1.0;
  ]

let ack_delay = Time.ms 2

let pin_gbn (scs : Scs.t) =
  {
    scs with
    Scs.recovery = Params.Go_back_n;
    reporting =
      (match scs.Scs.reporting with
      | Params.No_report | Params.Nack_on_gap ->
        Params.Cumulative_ack { delay = ack_delay }
      | (Params.Cumulative_ack _ | Params.Selective_ack _) as r -> r);
  }

let pin_sr (scs : Scs.t) =
  {
    scs with
    Scs.recovery = Params.Selective_repeat;
    reporting =
      (match scs.Scs.reporting with
      | Params.No_report | Params.Nack_on_gap | Params.Cumulative_ack _ ->
        Params.Selective_ack { delay = ack_delay }
      | Params.Selective_ack _ as r -> r);
  }

let test_differential_goodput () =
  let seed = 0xD1FF in
  let base ?steer ?scs_transform () =
    {
      (steer_config ?steer ~chaos:diff_backdrop ~check_invariants:false
         ~sessions:200 ~seed ())
      with
      Swarm.churn_rounds = 2;
      scs_transform;
    }
  in
  let steered = Swarm.run (base ~steer:Steer.default_policy ()) in
  let statics =
    List.map
      (fun (name, pin) -> (name, Swarm.run (base ~scs_transform:pin ())))
      [ ("gbn", pin_gbn); ("sr", pin_sr) ]
  in
  (match steered.Swarm.steer_stats with
  | Some (swaps, _) -> check_bool "steering fired" true (swaps > 0)
  | None -> Alcotest.fail "steered run lost its steer stats");
  let best_name, best =
    List.fold_left
      (fun (bn, b) (n, o) ->
        if o.Swarm.goodput_bytes > b.Swarm.goodput_bytes then (n, o) else (bn, b))
      (List.hd statics) (List.tl statics)
  in
  let floor_bytes =
    int_of_float (diff_tolerance *. float_of_int best.Swarm.goodput_bytes)
  in
  if steered.Swarm.goodput_bytes < floor_bytes then
    Alcotest.failf
      "steered goodput %d under burst loss fell below %.2f x best static \
       (static-%s at %d)"
      steered.Swarm.goodput_bytes diff_tolerance best_name
      best.Swarm.goodput_bytes

(* ------------------------------------- Session.reconfigure error paths *)

(* A two-host fixture small enough to reason about: accept-anything
   responder, delivery log at b. *)
type fixture = {
  engine : Engine.t;
  disp_a : Session.Dispatcher.dispatcher;
  received : int ref;
}

let make_fixture ?(seed = 7) () =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" in
  let b = Topology.add_host topo "b" in
  Topology.set_symmetric_route topo ~a ~b
    [
      Link.create ~bandwidth_bps:10e6 ~propagation:(Time.us 5) ~queue_pkts:64
        ~mtu:1500 ();
    ];
  let net = Network.create engine ~rng:(Rng.create seed) topo in
  let unites = Unites.create engine in
  let received = ref 0 in
  let mk_disp addr =
    let disp =
      Session.Dispatcher.create net ~addr ~host:(Host.zero_cost engine) ~unites
    in
    Session.Dispatcher.set_acceptor disp (fun ~src:_ ~conn:_ ~proposal ->
        let scs =
          match proposal with
          | Some scs -> scs
          | None -> { Scs.default with Scs.connection = Params.Implicit }
        in
        Session.Dispatcher.Accept
          {
            scs;
            name = "acc";
            on_deliver = Some (fun _ d -> received := !received + d.Session.bytes);
            on_signal = None;
          });
    disp
  in
  let disp_a = mk_disp a in
  let _disp_b = mk_disp b in
  (a, b, { engine; disp_a; received })

let transfer_scs =
  {
    Scs.default with
    Scs.connection = Params.Two_way;
    transmission = Params.Sliding_window { window = 16 };
    recovery = Params.Go_back_n;
    reporting = Params.Cumulative_ack { delay = Time.ms 2 };
    recv_buffer_segments = 32;
    segment_bytes = 1000;
    initial_rto = Time.ms 50;
  }

let to_sr (scs : Scs.t) =
  {
    scs with
    Scs.recovery = Params.Selective_repeat;
    reporting = Params.Selective_ack { delay = Time.ms 2 };
  }

let test_reconfigure_static_binding () =
  let _a, b, f = make_fixture () in
  let s =
    Session.connect ~binding:(Tko.Static_template "pinned") f.disp_a
      ~peers:[ b ] ~scs:transfer_scs ()
  in
  Engine.run f.engine;
  (match Session.reconfigure s (to_sr transfer_scs) with
  | Ok _ -> Alcotest.fail "static-template binding must refuse to segue"
  | Error msg ->
    check_bool "error names the template" true
      (String.length msg > 0
      && String.exists (fun _ -> true) msg
      &&
      let has_sub sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      has_sub "static template" msg));
  check_bool "configuration unchanged" true
    (Scs.equal (Session.scs s) transfer_scs)

let test_reconfigure_before_open () =
  let _a, b, f = make_fixture () in
  let s = Session.connect f.disp_a ~peers:[ b ] ~scs:transfer_scs () in
  (* The connect PDU has not even been delivered yet. *)
  check_bool "still opening" true (Session.state s = Session.Opening);
  (match Session.reconfigure s (to_sr transfer_scs) with
  | Ok changed -> check_bool "recovery swapped" true (List.mem "recovery" changed)
  | Error e -> Alcotest.failf "reconfigure while opening failed: %s" e);
  check_bool "new scs bound locally" true
    ((Session.scs s).Scs.recovery = Params.Selective_repeat);
  (* The session must still come up and carry data under the new
     configuration. *)
  Session.send s ~bytes:4000 ();
  Engine.run f.engine;
  check_bool "established after reconfigure-in-opening" true
    (Session.state s = Session.Established || Session.state s = Session.Closed);
  check_int "all bytes delivered" 4000 !(f.received)

let test_reconfigure_racing_close () =
  let _a, b, f = make_fixture () in
  let s = Session.connect f.disp_a ~peers:[ b ] ~scs:transfer_scs () in
  Session.send s ~bytes:8000 ();
  Engine.run f.engine;
  check_int "transfer completed" 8000 !(f.received);
  let committed_before =
    Session.Dispatcher.committed_recv_segments f.disp_a
  in
  (* Race 1: reconfigure immediately after close, while the endpoint is
     draining (Closing).  It must neither crash nor resurrect. *)
  Session.close s;
  let _ = Session.reconfigure s (to_sr transfer_scs) in
  (* Run past the teardown handshake but not past the time-wait sweep,
     so the connection id is still quarantined. *)
  Engine.run ~until:(Time.add (Engine.now f.engine) (Time.ms 100)) f.engine;
  check_bool "closed despite racing reconfigure" true
    (Session.state s = Session.Closed);
  (* Race 2: reconfigure a fully closed endpoint (its connection id is
     in time-wait).  The dispatcher's committed-buffer accounting must
     not drift — a closed endpoint holds no receive commitment. *)
  check_bool "conn id quarantined in time-wait" true
    (Session.Dispatcher.time_wait_count f.disp_a >= 1);
  let bigger = { transfer_scs with Scs.recv_buffer_segments = 512 } in
  let _ = Session.reconfigure s bigger in
  check_bool "still closed" true (Session.state s = Session.Closed);
  check_int "no committed-buffer drift from a dead endpoint"
    (committed_before - transfer_scs.Scs.recv_buffer_segments)
    (Session.Dispatcher.committed_recv_segments f.disp_a)

(* ------------------------------------------------------------- suite *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "steer.properties",
      qsuite
        [
          prop_cooldown_respected;
          prop_counters_agree_and_replay;
          prop_infinite_policy_is_noop;
        ] );
    ( "steer.differential",
      [
        Alcotest.test_case "steered goodput vs best static under burst loss"
          `Slow test_differential_goodput;
      ] );
    ( "steer.reconfigure",
      [
        Alcotest.test_case "static-template binding refuses segue" `Quick
          test_reconfigure_static_binding;
        Alcotest.test_case "reconfigure before the session opens" `Quick
          test_reconfigure_before_open;
        Alcotest.test_case "reconfigure racing close and time-wait" `Quick
          test_reconfigure_racing_close;
      ] );
  ]
