(* Tests for the ADAPTIVE core types: Qos, Tsc, Scs, Acd, Unites, Tko. *)

open Adaptive_sim
open Adaptive_mech
open Adaptive_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ Qos *)

let test_qos_levels_thresholds () =
  let q bps = { Qos.default with Qos.avg_bps = bps; peak_bps = bps } in
  let tl bps = (Qos.levels (q bps)).Qos.throughput in
  check_str "very-low" "very-low" (Qos.level_to_string (tl 1e3));
  check_str "low" "low" (Qos.level_to_string (tl 64e3));
  check_str "mod" "mod" (Qos.level_to_string (tl 2e6));
  check_str "high" "high" (Qos.level_to_string (tl 10e6));
  check_str "very-high" "very-high" (Qos.level_to_string (tl 120e6))

let test_qos_burst_ratio () =
  let q = { Qos.default with Qos.avg_bps = 1e6; peak_bps = 8e6 } in
  Alcotest.(check (float 1e-9)) "ratio" 8.0 (Qos.burst_ratio q);
  check_bool "high burst" true ((Qos.levels q).Qos.burst_factor = Qos.High);
  let steady = { Qos.default with Qos.avg_bps = 1e6; peak_bps = 1e6 } in
  check_bool "low burst" true ((Qos.levels steady).Qos.burst_factor = Qos.Low)

let test_qos_delay_jitter_levels () =
  let with_lat l = { Qos.default with Qos.max_latency = l } in
  check_bool "no bound -> low" true
    ((Qos.levels (with_lat None)).Qos.delay_sensitivity = Qos.Low);
  check_bool "tight -> high" true
    ((Qos.levels (with_lat (Some (Time.ms 100)))).Qos.delay_sensitivity = Qos.High);
  let with_jit j = { Qos.default with Qos.max_jitter = j } in
  check_bool "no jitter bound" true
    ((Qos.levels (with_jit None)).Qos.jitter_sensitivity = Qos.Not_defined);
  check_bool "tight jitter" true
    ((Qos.levels (with_jit (Some (Time.ms 10)))).Qos.jitter_sensitivity = Qos.High)

let test_qos_loss_levels () =
  let with_loss l = { Qos.default with Qos.loss_tolerance = l } in
  check_bool "none" true
    ((Qos.levels (with_loss 0.0)).Qos.loss_tolerance_level = Qos.Not_defined);
  check_bool "low" true ((Qos.levels (with_loss 0.001)).Qos.loss_tolerance_level = Qos.Low);
  check_bool "mod" true
    ((Qos.levels (with_loss 0.02)).Qos.loss_tolerance_level = Qos.Moderate);
  check_bool "high" true
    ((Qos.levels (with_loss 0.1)).Qos.loss_tolerance_level = Qos.High)

(* ------------------------------------------------------------------ Tsc *)

let test_tsc_classify_quadrants () =
  let base = Qos.default in
  let q ~iso ~inter ~rt =
    { base with Qos.isochronous = iso; interactive = inter; realtime = rt }
  in
  check_bool "interactive iso" true
    (Tsc.classify (q ~iso:true ~inter:true ~rt:true) = Tsc.Interactive_isochronous);
  check_bool "distributional iso" true
    (Tsc.classify (q ~iso:true ~inter:false ~rt:true) = Tsc.Distributional_isochronous);
  check_bool "realtime non-iso" true
    (Tsc.classify (q ~iso:false ~inter:false ~rt:true) = Tsc.Realtime_non_isochronous);
  check_bool "non-rt non-iso" true
    (Tsc.classify (q ~iso:false ~inter:true ~rt:false) = Tsc.Non_realtime_non_isochronous)

let test_tsc_names () =
  check_int "four classes" 4 (List.length Tsc.all);
  check_str "name" "Interactive Isochronous" (Tsc.name Tsc.Interactive_isochronous)

let test_tsc_policies () =
  let voice =
    {
      Qos.default with
      Qos.isochronous = true;
      interactive = true;
      loss_tolerance = 0.05;
    }
  in
  let p = Tsc.policies Tsc.Interactive_isochronous voice in
  check_bool "voice not fully reliable" false p.Tsc.full_reliability;
  check_bool "voice playout" true p.Tsc.playout_smoothing;
  check_bool "voice rate paced" true p.Tsc.rate_paced;
  check_bool "voice fast setup" true p.Tsc.fast_setup;
  let bulk = Tsc.policies Tsc.Non_realtime_non_isochronous Qos.default in
  check_bool "bulk reliable" true bulk.Tsc.full_reliability;
  check_bool "bulk congestion responsive" true bulk.Tsc.congestion_responsive;
  check_bool "bulk no playout" false bulk.Tsc.playout_smoothing

let prop_tsc_total =
  QCheck2.Test.make ~name:"classifier is total" ~count:300
    QCheck2.Gen.(quad bool bool bool bool)
    (fun (iso, inter, rt, _) ->
      let q =
        { Qos.default with Qos.isochronous = iso; interactive = inter; realtime = rt }
      in
      List.mem (Tsc.classify q) Tsc.all)

(* ------------------------------------------------------------------ Scs *)

let variant_scs =
  {
    Scs.connection = Params.Implicit;
    transmission = Params.Rate_based { rate_bps = 1234567.0; burst = 3 };
    congestion = Params.Slow_start { initial = 2; threshold = 9 };
    detection = Params.Crc32;
    reporting = Params.Nack_on_gap;
    recovery = Params.Forward_error_correction { group = 5 };
    ordering = Params.Unordered;
    duplicates = Params.Accept_duplicates;
    delivery = Params.Playout { target = Time.ms 42 };
    segment_bytes = 777;
    recv_buffer_segments = 33;
    priority = 2;
    initial_rto = Time.ms 123;
  }

let test_scs_blob_roundtrip () =
  check_bool "default" true (Scs.of_blob (Scs.to_blob Scs.default) = Some Scs.default);
  check_bool "variant" true (Scs.of_blob (Scs.to_blob variant_scs) = Some variant_scs);
  check_bool "equal reflexive" true (Scs.equal variant_scs variant_scs);
  check_bool "not equal" false (Scs.equal variant_scs Scs.default)

let test_scs_blob_garbage () =
  check_bool "empty" true (Scs.of_blob "" = None);
  check_bool "nonsense" true (Scs.of_blob "hello world" = None);
  check_bool "partial" true (Scs.of_blob "conn=3way" = None)

let test_scs_blob_tolerates_extras () =
  let blob = "startseq=55;" ^ Scs.to_blob Scs.default in
  check_bool "extra keys ignored" true (Scs.of_blob blob = Some Scs.default)

let test_scs_component_names () =
  Alcotest.(check (list string)) "no diff" [] (Scs.component_names Scs.default Scs.default);
  let changed = { Scs.default with Scs.recovery = Params.Selective_repeat } in
  Alcotest.(check (list string)) "one diff" [ "recovery" ]
    (Scs.component_names Scs.default changed);
  check_bool "many diffs" true
    (List.length (Scs.component_names Scs.default variant_scs) > 5)

let test_scs_predicates () =
  check_bool "gbn reliable" true (Scs.reliable Scs.default);
  check_bool "fec not ARQ-reliable" false (Scs.reliable variant_scs);
  check_bool "cumack tracks" true (Scs.tracks_peer_feedback Scs.default);
  check_bool "nack tracks" true (Scs.tracks_peer_feedback variant_scs);
  let silent = { variant_scs with Scs.reporting = Params.No_report } in
  check_bool "no report does not track" false (Scs.tracks_peer_feedback silent)

(* ------------------------------------------------------------------ Acd *)

let test_acd_make () =
  Alcotest.check_raises "no participants" (Invalid_argument "Acd.make: no participants")
    (fun () -> ignore (Acd.make ~participants:[] ~qos:Qos.default ()));
  let acd = Acd.make ~participants:[ 1; 2 ] ~qos:Qos.default () in
  check_int "participants" 2 (List.length acd.Acd.participants);
  check_bool "default tmc empty" true (acd.Acd.tmc.Acd.collect = []);
  check_bool "no explicit tsc" true (acd.Acd.explicit_tsc = None)

let test_acd_strings () =
  check_str "condition" "congestion > 0.60"
    (Acd.condition_to_string (Acd.Congestion_above 0.6));
  check_str "action" "switch recovery to srepeat"
    (Acd.action_to_string (Acd.Switch_recovery Params.Selective_repeat));
  check_str "rtt" "rtt > 150.00ms" (Acd.condition_to_string (Acd.Rtt_above (Time.ms 150)));
  check_str "scale" "scale rate by 0.75" (Acd.action_to_string (Acd.Scale_rate 0.75))

let test_acd_table2 () =
  check_int "five rows" 5 (List.length Acd.table2);
  let names = List.map (fun (n, _, _) -> n) Acd.table2 in
  check_bool "has TSA row" true
    (List.exists (fun n -> n = "Transport Service Adjustment (TSA)") names);
  check_bool "has TMC row" true
    (List.exists (fun n -> n = "Transport Measurement Component (TMC)") names)

(* ---------------------------------------------------------------- Unites *)

let test_unites_observe_stats () =
  let e = Engine.create () in
  let u = Unites.create e in
  Unites.register_session u ~id:1 ~name:"s1";
  Unites.observe u ~session:1 Unites.Throughput 100.0;
  Unites.observe u ~session:1 Unites.Throughput 200.0;
  let s = Option.get (Unites.stats u ~session:1 Unites.Throughput) in
  check_int "n" 2 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 150.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "total" 300.0 (Unites.total u ~session:1 Unites.Throughput);
  check_bool "absent metric" true (Unites.stats u ~session:1 Unites.Rtt = None);
  Alcotest.(check (float 1e-9)) "absent total" 0.0 (Unites.total u ~session:1 Unites.Rtt)

let test_unites_whitebox_gating () =
  let e = Engine.create () in
  let u = Unites.create ~whitebox:false e in
  Unites.observe u ~session:1 Unites.Retransmissions 1.0;
  check_bool "whitebox dropped" true (Unites.stats u ~session:1 Unites.Retransmissions = None);
  check_int "no samples recorded" 0 (Unites.whitebox_samples u);
  Unites.observe u ~session:1 Unites.Throughput 5.0;
  check_bool "blackbox kept" true (Unites.stats u ~session:1 Unites.Throughput <> None);
  Unites.set_whitebox u true;
  Unites.observe u ~session:1 Unites.Retransmissions 1.0;
  check_int "sample counted" 1 (Unites.whitebox_samples u)

let test_unites_metric_kinds () =
  check_bool "throughput blackbox" true (Unites.metric_kind Unites.Throughput = Unites.Blackbox);
  check_bool "rtt blackbox" true (Unites.metric_kind Unites.Rtt = Unites.Blackbox);
  check_bool "retransmissions whitebox" true
    (Unites.metric_kind Unites.Retransmissions = Unites.Whitebox);
  check_bool "jitter-ish whitebox" true
    (Unites.metric_kind Unites.Delivery_latency = Unites.Whitebox);
  check_bool "jitter whitebox" true (Unites.metric_kind Unites.Jitter = Unites.Whitebox);
  check_bool "scheduler overhead whitebox" true
    (Unites.metric_kind Unites.Sched_events_fired = Unites.Whitebox
    && Unites.metric_kind Unites.Sched_wheel_hit_rate = Unites.Whitebox);
  check_bool "swarm metrics whitebox" true
    (Unites.metric_kind Unites.Sessions_refused = Unites.Whitebox
    && Unites.metric_kind Unites.Demux_probes = Unites.Whitebox
    && Unites.metric_kind Unites.Table_occupancy = Unites.Whitebox);
  check_bool "wire metrics whitebox" true
    (Unites.metric_kind Unites.Wire_encodes = Unites.Whitebox
    && Unites.metric_kind Unites.Wire_rejects = Unites.Whitebox
    && Unites.metric_kind Unites.Wire_pool_reuse = Unites.Whitebox);
  check_bool "steer metrics whitebox" true
    (Unites.metric_kind Unites.Steer_swaps = Unites.Whitebox
    && Unites.metric_kind Unites.Steer_blocked = Unites.Whitebox
    && Unites.metric_kind Unites.Steer_time_in_config = Unites.Whitebox);
  check_int "all metrics listed" 43 (List.length Unites.all_metrics);
  (* Names are unique. *)
  let names = List.map Unites.metric_name Unites.all_metrics in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_unites_aggregate () =
  let e = Engine.create () in
  let u = Unites.create e in
  Unites.observe u ~session:1 Unites.Rtt 0.1;
  Unites.observe u ~session:2 Unites.Rtt 0.3;
  let agg = Option.get (Unites.aggregate u Unites.Rtt) in
  check_int "combined n" 2 agg.Stats.n;
  Alcotest.(check (float 1e-9)) "combined total" 0.4 (Unites.aggregate_total u Unites.Rtt)

let test_unites_first_name_wins () =
  let e = Engine.create () in
  let u = Unites.create e in
  Unites.register_session u ~id:9 ~name:"first";
  Unites.register_session u ~id:9 ~name:"second";
  Alcotest.(check (list (pair int string))) "first name kept" [ (9, "first") ]
    (Unites.sessions u)

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_unites_series () =
  let e = Engine.create () in
  let u = Unites.create ~bucket:(Time.sec 1.0) e in
  (* Two observations in bucket 0, one in bucket 2. *)
  Unites.observe u ~session:1 Unites.Bytes_delivered 100.0;
  Unites.observe u ~session:1 Unites.Bytes_delivered 50.0;
  ignore (Engine.schedule e ~at:(Time.sec 2.5) (fun () ->
      Unites.observe u ~session:1 Unites.Bytes_delivered 25.0));
  Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "bucketed totals"
    [ (0, 150.0); (Time.sec 2.0, 25.0) ]
    (Unites.series u ~session:1 Unites.Bytes_delivered);
  (* Aggregate merges sessions. *)
  Unites.observe u ~session:2 Unites.Bytes_delivered 5.0;
  check_bool "aggregate series sums sessions" true
    (List.assoc (Time.sec 2.0) (Unites.aggregate_series u Unites.Bytes_delivered)
     = 25.0 +. 5.0);
  check_bool "no series for unseen metric" true
    (Unites.series u ~session:1 Unites.Rtt = [])

let test_unites_report_smoke () =
  let e = Engine.create () in
  let u = Unites.create e in
  Unites.register_session u ~id:1 ~name:"smoke";
  Unites.count u ~session:1 Unites.Segments_sent;
  let out = Format.asprintf "%a" Unites.report u in
  check_bool "mentions session" true (string_contains out "smoke");
  check_bool "mentions metric" true (string_contains out "segments_sent")

(* ------------------------------------------------------------------ Tko *)

let test_tko_synthesize_components () =
  let ctx = Tko.synthesize variant_scs in
  check_bool "rate pacer" true (ctx.Tko.rate <> None);
  check_bool "cc" true (ctx.Tko.cc <> None);
  check_bool "fec tx" true (ctx.Tko.fec_tx <> None);
  check_bool "playout" true (ctx.Tko.playout <> None);
  let plain = Tko.synthesize Scs.default in
  check_bool "no pacer" true (plain.Tko.rate = None);
  check_bool "no cc" true (plain.Tko.cc = None);
  check_bool "no fec" true (plain.Tko.fec_tx = None);
  check_bool "no playout" true (plain.Tko.playout = None)

let test_tko_effective_window () =
  let scs = { Scs.default with Scs.transmission = Params.Sliding_window { window = 10 } } in
  let ctx = Tko.synthesize scs in
  check_int "min of window and peer" 7 (Tko.effective_send_window ctx ~peer_window:7);
  check_int "own window binds" 10 (Tko.effective_send_window ctx ~peer_window:100);
  let saw = Tko.synthesize { scs with Scs.transmission = Params.Stop_and_wait } in
  check_int "stop and wait" 1 (Tko.effective_send_window saw ~peer_window:100);
  let rate =
    Tko.synthesize
      { scs with Scs.transmission = Params.Rate_based { rate_bps = 1e6; burst = 4 } }
  in
  check_int "rate unbounded" max_int (Tko.effective_send_window rate ~peer_window:1);
  let cc =
    Tko.synthesize
      { scs with Scs.congestion = Params.Slow_start { initial = 2; threshold = 8 } }
  in
  check_int "cc binds" 2 (Tko.effective_send_window cc ~peer_window:100)

let test_tko_segue_static_refuses () =
  let ctx = Tko.synthesize ~binding:(Tko.Static_template "tcp-compatible") Scs.default in
  match Tko.segue ctx { Scs.default with Scs.recovery = Params.Selective_repeat } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "static template must refuse segue"

let test_tko_segue_preserves_shared_state () =
  let ctx = Tko.synthesize Scs.default in
  (* Outstanding segments and RTT history... *)
  Window.track ctx.Tko.window
    (Pdu.seg ~seq:0 ~bytes:10 ())
    ~at:Time.zero;
  Rtt.observe ctx.Tko.rtt (Time.ms 30);
  (* ...survive a recovery swap. *)
  (match Tko.segue ctx { Scs.default with Scs.recovery = Params.Selective_repeat } with
  | Ok changed -> Alcotest.(check (list string)) "one component" [ "recovery" ] changed
  | Error e -> Alcotest.fail e);
  check_int "window preserved" 1 (Window.in_flight ctx.Tko.window);
  check_int "rtt preserved" 1 (Rtt.samples ctx.Tko.rtt);
  check_int "segue counted" 1 ctx.Tko.segue_count;
  check_bool "scs updated" true (ctx.Tko.scs.Scs.recovery = Params.Selective_repeat)

let test_tko_segue_same_scs_noop () =
  let ctx = Tko.synthesize Scs.default in
  (match Tko.segue ctx Scs.default with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "identical SCS must be a no-op");
  check_int "not counted" 0 ctx.Tko.segue_count

let test_tko_segue_rate_keeps_tokens () =
  let scs =
    { Scs.default with Scs.transmission = Params.Rate_based { rate_bps = 1e6; burst = 4 } }
  in
  let ctx = Tko.synthesize scs in
  let pacer_before = Option.get ctx.Tko.rate in
  (match
     Tko.segue ctx
       { scs with Scs.transmission = Params.Rate_based { rate_bps = 2e6; burst = 4 } }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let pacer_after = Option.get ctx.Tko.rate in
  check_bool "same pacer object" true (pacer_before == pacer_after);
  Alcotest.(check (float 1.0)) "rate updated" 2e6 (Rate.rate_bps pacer_after)

let test_tko_segue_to_fec_and_back () =
  let ctx = Tko.synthesize Scs.default in
  (match
     Tko.segue ctx
       { Scs.default with Scs.recovery = Params.Forward_error_correction { group = 4 } }
   with
  | Ok _ -> check_bool "fec tx appears" true (ctx.Tko.fec_tx <> None)
  | Error e -> Alcotest.fail e);
  match Tko.segue ctx Scs.default with
  | Ok _ -> check_bool "fec tx removed" true (ctx.Tko.fec_tx = None)
  | Error e -> Alcotest.fail e

let test_tko_segue_ordering_change_carries_cum_point () =
  let ctx = Tko.synthesize Scs.default in
  (* Receive 0..2 in order. *)
  List.iter
    (fun i ->
      ignore
        (Reorder.offer ctx.Tko.reorder
           (Pdu.seg ~seq:i ~bytes:1 ())))
    [ 0; 1; 2 ];
  (match Tko.segue ctx { Scs.default with Scs.ordering = Params.Unordered } with
  | Ok changed -> check_bool "ordering changed" true (List.mem "ordering" changed)
  | Error e -> Alcotest.fail e);
  check_int "cumulative point carried" 3 (Reorder.expected ctx.Tko.reorder)

let test_tko_templates () =
  check_int "seven templates" 7 (List.length Tko.Templates.names);
  (match Tko.Templates.find Tko.Templates.tcp_compatible with
  | Some (Tko.Static_template _, scs) ->
    check_bool "tcp is gbn" true (scs.Scs.recovery = Params.Go_back_n);
    check_bool "tcp slow start" true
      (match scs.Scs.congestion with Params.Slow_start _ -> true | _ -> false)
  | Some _ -> Alcotest.fail "tcp template must be static"
  | None -> Alcotest.fail "tcp template missing");
  (match Tko.Templates.find Tko.Templates.media_stream with
  | Some (Tko.Reconfigurable_template _, scs) ->
    check_bool "media is rate paced" true
      (match scs.Scs.transmission with Params.Rate_based _ -> true | _ -> false)
  | Some _ -> Alcotest.fail "media template must be reconfigurable"
  | None -> Alcotest.fail "media template missing");
  check_bool "unknown" true (Tko.Templates.find "nope" = None)

let test_tko_template_cache_counting () =
  let hits0 = Tko.Templates.cache_hits () in
  let misses0 = Tko.Templates.cache_misses () in
  (match Tko.Templates.find Tko.Templates.bulk_lfn with
  | Some (_, scs) -> (
    match Tko.Templates.lookup_scs scs with
    | Some (_, name) -> check_str "found by scs" Tko.Templates.bulk_lfn name
    | None -> Alcotest.fail "expected cache hit")
  | None -> Alcotest.fail "bulk template missing");
  ignore (Tko.Templates.lookup_scs variant_scs);
  check_int "hit counted" (hits0 + 1) (Tko.Templates.cache_hits ());
  check_int "miss counted" (misses0 + 1) (Tko.Templates.cache_misses ())

(* ------------------------------------------------------------ Protograph *)

let test_protograph_edit_ops () =
  let g = Protograph.create () in
  check_bool "add" true (Protograph.add_layer g (Protograph.layer "a") = Ok ());
  check_bool "dup rejected" true
    (match Protograph.add_layer g (Protograph.layer "a") with Error _ -> true | Ok () -> false);
  ignore (Protograph.add_layer g (Protograph.layer "b"));
  ignore (Protograph.add_layer g (Protograph.layer "c"));
  check_bool "connect" true (Protograph.connect g ~upper:"a" ~lower:"b" = Ok ());
  check_bool "connect 2" true (Protograph.connect g ~upper:"b" ~lower:"c" = Ok ());
  check_bool "self edge rejected" true
    (match Protograph.connect g ~upper:"a" ~lower:"a" with Error _ -> true | Ok () -> false);
  check_bool "cycle rejected" true
    (match Protograph.connect g ~upper:"c" ~lower:"a" with Error _ -> true | Ok () -> false);
  Alcotest.(check (list string)) "lowers" [ "b" ] (Protograph.lowers g "a");
  Alcotest.(check (list string)) "uppers" [ "b" ] (Protograph.uppers g "c");
  check_bool "unknown layer rejected" true
    (match Protograph.connect g ~upper:"a" ~lower:"zz" with Error _ -> true | Ok () -> false)

let test_protograph_path_and_overhead () =
  let g = Protograph.conventional_stack () in
  match Protograph.path g ~from_:"application" ~to_:"driver" with
  | None -> Alcotest.fail "expected a path"
  | Some stack ->
    check_int "four layers" 4 (List.length stack);
    let o = Protograph.stack_overhead stack in
    check_int "headers" (20 + 20 + 14) o.Protograph.header_total;
    check_int "trailers" 4 o.Protograph.trailer_total;
    check_int "copies" 4 o.Protograph.copy_total;
    check_int "processing" (Time.us 150) o.Protograph.processing

let test_protograph_insert_between () =
  let g = Protograph.conventional_stack () in
  let filter = Protograph.layer ~header:8 ~copies:1 ~per_packet:(Time.us 80) "encryption" in
  check_bool "splice" true
    (Protograph.insert_between g filter ~upper:"transport" ~lower:"network" = Ok ());
  Alcotest.(check (list string)) "edge rerouted" [ "encryption" ]
    (Protograph.lowers g "transport");
  Alcotest.(check (list string)) "filter feeds network" [ "network" ]
    (Protograph.lowers g "encryption");
  (match Protograph.path g ~from_:"application" ~to_:"driver" with
  | Some stack -> check_int "five layers" 5 (List.length stack)
  | None -> Alcotest.fail "path lost");
  check_bool "splice needs an edge" true
    (match
       Protograph.insert_between g (Protograph.layer "x") ~upper:"application"
         ~lower:"driver"
     with
    | Error _ -> true
    | Ok () -> false)

let test_protograph_remove () =
  let g = Protograph.conventional_stack () in
  check_bool "remove" true (Protograph.remove_layer g "network" = Ok ());
  check_bool "path broken" true
    (Protograph.path g ~from_:"application" ~to_:"driver" = None);
  Alcotest.(check (list string)) "edges cleaned" [] (Protograph.lowers g "transport");
  check_bool "absent remove rejected" true
    (match Protograph.remove_layer g "network" with Error _ -> true | Ok () -> false)

let test_protograph_flat_stack_cheaper () =
  let conv =
    Option.get
      (Protograph.path (Protograph.conventional_stack ()) ~from_:"application"
         ~to_:"driver")
  in
  let flat =
    Option.get
      (Protograph.path (Protograph.adaptive_stack ()) ~from_:"application" ~to_:"driver")
  in
  let oc = Protograph.stack_overhead conv in
  let oa = Protograph.stack_overhead flat in
  check_bool "fewer copies" true (oa.Protograph.copy_total < oc.Protograph.copy_total);
  check_bool "less processing" true (oa.Protograph.processing < oc.Protograph.processing)

let prop_protograph_acyclic =
  QCheck2.Test.make ~name:"random edits never create a cycle" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 7) (int_range 0 7)))
    (fun edges ->
      let g = Protograph.create () in
      for i = 0 to 7 do
        ignore (Protograph.add_layer g (Protograph.layer (string_of_int i)))
      done;
      List.iter
        (fun (u, l) ->
          ignore (Protograph.connect g ~upper:(string_of_int u) ~lower:(string_of_int l)))
        edges;
      (* If any cycle existed, a path from a node to itself through >0
         edges would exist; connect's guard must have prevented that.
         Check: no node reaches itself via its lowers. *)
      List.for_all
        (fun (l : Protograph.layer) ->
          let name = l.Protograph.name in
          not
            (List.exists
               (fun child ->
                 match Protograph.path g ~from_:child ~to_:name with
                 | Some _ -> true
                 | None -> false)
               (Protograph.lowers g name)))
        (Protograph.layers g))

(* ------------------------------------------------------------------ Lab *)

let test_lab_replicate () =
  let r = Lab.replicate ~seeds:[ 1; 2; 3; 4 ] (fun ~seed -> float_of_int seed) in
  check_int "n" 4 r.Lab.n;
  Alcotest.(check (float 1e-9)) "mean" 2.5 r.Lab.mean;
  Alcotest.(check (float 1e-9)) "median (even n)" 2.5 r.Lab.median;
  check_bool "half width positive" true (r.Lab.half_width > 0.0);
  let constant = Lab.replicate ~seeds:[ 7; 8; 9 ] (fun ~seed:_ -> 5.0) in
  Alcotest.(check (float 1e-9)) "constant mean" 5.0 constant.Lab.mean;
  Alcotest.(check (float 1e-9)) "constant width" 0.0 constant.Lab.half_width;
  Alcotest.check_raises "no seeds" (Invalid_argument "Lab.replicate: no seeds")
    (fun () -> ignore (Lab.replicate ~seeds:[] (fun ~seed:_ -> 0.0)))

let test_lab_median_skewed () =
  (* The median must resist a single fault-skewed replica; the mean does
     not.  Odd n picks the middle element exactly. *)
  let r =
    Lab.replicate ~seeds:[ 1; 2; 3; 4; 5 ] (fun ~seed ->
        if seed = 5 then 1000.0 else float_of_int seed)
  in
  Alcotest.(check (float 1e-9)) "median ignores outlier" 3.0 r.Lab.median;
  check_bool "mean dragged by outlier" true (r.Lab.mean > 100.0)

let test_lab_duplicate_seeds () =
  Alcotest.check_raises "duplicate seeds"
    (Invalid_argument "Lab.replicate: duplicate seeds (replicas would be identical)")
    (fun () -> ignore (Lab.replicate ~seeds:[ 1; 2; 1 ] (fun ~seed:_ -> 0.0)))

let test_lab_distinguishable () =
  let mk mean half_width =
    { Lab.n = 5; mean; median = mean; stddev = 0.0; half_width }
  in
  check_bool "separated" true (Lab.distinguishable (mk 10.0 1.0) (mk 15.0 1.0));
  check_bool "overlapping" false (Lab.distinguishable (mk 10.0 3.0) (mk 15.0 3.0));
  check_bool "single run has zero width" true
    ((Lab.replicate ~seeds:[ 42 ] (fun ~seed:_ -> 1.0)).Lab.half_width = 0.0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "core.qos",
      [
        Alcotest.test_case "throughput levels" `Quick test_qos_levels_thresholds;
        Alcotest.test_case "burst ratio" `Quick test_qos_burst_ratio;
        Alcotest.test_case "delay and jitter levels" `Quick test_qos_delay_jitter_levels;
        Alcotest.test_case "loss levels" `Quick test_qos_loss_levels;
      ] );
    ( "core.tsc",
      [
        Alcotest.test_case "classifier quadrants" `Quick test_tsc_classify_quadrants;
        Alcotest.test_case "names" `Quick test_tsc_names;
        Alcotest.test_case "policy bundles" `Quick test_tsc_policies;
      ]
      @ qsuite [ prop_tsc_total ] );
    ( "core.scs",
      [
        Alcotest.test_case "blob round trip" `Quick test_scs_blob_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick test_scs_blob_garbage;
        Alcotest.test_case "extra keys tolerated" `Quick test_scs_blob_tolerates_extras;
        Alcotest.test_case "component diff" `Quick test_scs_component_names;
        Alcotest.test_case "predicates" `Quick test_scs_predicates;
      ] );
    ( "core.acd",
      [
        Alcotest.test_case "make validation" `Quick test_acd_make;
        Alcotest.test_case "condition/action strings" `Quick test_acd_strings;
        Alcotest.test_case "table 2 rows" `Quick test_acd_table2;
      ] );
    ( "core.unites",
      [
        Alcotest.test_case "observe and stats" `Quick test_unites_observe_stats;
        Alcotest.test_case "whitebox gating" `Quick test_unites_whitebox_gating;
        Alcotest.test_case "metric kinds" `Quick test_unites_metric_kinds;
        Alcotest.test_case "aggregate" `Quick test_unites_aggregate;
        Alcotest.test_case "first name wins" `Quick test_unites_first_name_wins;
        Alcotest.test_case "bucketed series" `Quick test_unites_series;
        Alcotest.test_case "report smoke" `Quick test_unites_report_smoke;
      ] );
    ( "core.protograph",
      [
        Alcotest.test_case "graph edit operations" `Quick test_protograph_edit_ops;
        Alcotest.test_case "path and overhead" `Quick test_protograph_path_and_overhead;
        Alcotest.test_case "insert between" `Quick test_protograph_insert_between;
        Alcotest.test_case "remove layer" `Quick test_protograph_remove;
        Alcotest.test_case "flat stack is cheaper" `Quick test_protograph_flat_stack_cheaper;
      ]
      @ qsuite [ prop_protograph_acyclic ] );
    ( "core.lab",
      [
        Alcotest.test_case "replicate" `Quick test_lab_replicate;
        Alcotest.test_case "median under skew" `Quick test_lab_median_skewed;
        Alcotest.test_case "duplicate seeds rejected" `Quick test_lab_duplicate_seeds;
        Alcotest.test_case "distinguishable" `Quick test_lab_distinguishable;
      ] );
    ( "core.tko",
      [
        Alcotest.test_case "synthesize instantiates components" `Quick
          test_tko_synthesize_components;
        Alcotest.test_case "effective window" `Quick test_tko_effective_window;
        Alcotest.test_case "static template refuses segue" `Quick
          test_tko_segue_static_refuses;
        Alcotest.test_case "segue preserves shared state" `Quick
          test_tko_segue_preserves_shared_state;
        Alcotest.test_case "segue no-op" `Quick test_tko_segue_same_scs_noop;
        Alcotest.test_case "rate segue keeps token state" `Quick
          test_tko_segue_rate_keeps_tokens;
        Alcotest.test_case "segue to FEC and back" `Quick test_tko_segue_to_fec_and_back;
        Alcotest.test_case "ordering segue carries cum point" `Quick
          test_tko_segue_ordering_change_carries_cum_point;
        Alcotest.test_case "templates" `Quick test_tko_templates;
        Alcotest.test_case "template cache counting" `Quick
          test_tko_template_cache_counting;
      ] );
  ]
