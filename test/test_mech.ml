(* Tests for the protocol mechanism repository: Pdu, Params, Window, Rate,
   Rtt, Reorder, Fec, Playout, Slowstart, Host. *)

open Adaptive_sim
open Adaptive_mech

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let seg ?(bytes = 100) ?(stamp = Time.zero) ?(last = false) seq =
  Pdu.seg ~seq ~bytes ~stamp ~last ()

(* ------------------------------------------------------------------ Pdu *)

let test_pdu_conn_id () =
  let samples =
    [
      Pdu.Data { conn = 7; seg = seg 0; retransmit = false; tx_stamp = Time.zero };
      Pdu.Parity
        { conn = 7; group_start = 0; group_len = 2; covered = [ seg 0; seg 1 ];
          parity = None };
      Pdu.Ack { conn = 7; cum = 1; window = 4; sack = []; echo = Time.zero };
      Pdu.Nack { conn = 7; missing = [ 3 ] };
      Pdu.Syn { conn = 7; blob = "b"; first = None };
      Pdu.Syn_ack { conn = 7; accepted = true; blob = "b" };
      Pdu.Ack_of_syn { conn = 7 };
      Pdu.Fin { conn = 7; graceful = true };
      Pdu.Fin_ack { conn = 7 };
      Pdu.Signal { conn = 7; blob = "s" };
      Pdu.Signal_ack { conn = 7; blob = "r" };
    ]
  in
  List.iter (fun p -> check_int "conn id" 7 (Pdu.conn_id p)) samples

let test_pdu_wire_bytes () =
  let data =
    Pdu.Data { conn = 1; seg = seg ~bytes:500 0; retransmit = false; tx_stamp = Time.zero }
  in
  check_int "data wire" (32 + 500) (Pdu.wire_bytes data);
  let ack =
    Pdu.Ack { conn = 1; cum = 5; window = 8; sack = [ 7; 9 ]; echo = Time.ms 3 }
  in
  check_int "ack wire" (24 + 8) (Pdu.wire_bytes ack);
  let parity =
    Pdu.Parity
      { conn = 1; group_start = 0; group_len = 2;
        covered = [ seg ~bytes:300 0; seg ~bytes:400 1 ]; parity = None }
  in
  (* Parity payload is the max covered size; each covered entry costs a
     16-byte descriptor. *)
  check_int "parity wire" (16 + 32 + 400) (Pdu.wire_bytes parity);
  let syn = Pdu.Syn { conn = 1; blob = "abcd"; first = None } in
  check_int "syn wire" 28 (Pdu.wire_bytes syn)

let test_pdu_describe () =
  Alcotest.(check string) "data" "data#3"
    (Pdu.describe (Pdu.Data { conn = 1; seg = seg 3; retransmit = false; tx_stamp = Time.zero }));
  Alcotest.(check string) "rtx" "data#3(rtx)"
    (Pdu.describe (Pdu.Data { conn = 1; seg = seg 3; retransmit = true; tx_stamp = Time.zero }));
  Alcotest.(check string) "ack" "ack<5"
    (Pdu.describe (Pdu.Ack { conn = 1; cum = 5; window = 1; sack = []; echo = Time.zero }))

(* ---------------------------------------------------------------- Params *)

let roundtrip to_s of_s v = of_s (to_s v) = Some v

let test_params_roundtrip () =
  let open Params in
  check_bool "conn" true
    (List.for_all (roundtrip connection_to_string connection_of_string)
       [ Implicit; Two_way; Three_way ]);
  check_bool "tx" true
    (List.for_all (roundtrip transmission_to_string transmission_of_string)
       [
         Stop_and_wait;
         Sliding_window { window = 17 };
         Rate_based { rate_bps = 1500000.0; burst = 4 };
       ]);
  check_bool "cc" true
    (List.for_all (roundtrip congestion_window_to_string congestion_window_of_string)
       [ No_congestion_control; Slow_start { initial = 2; threshold = 16 } ]);
  check_bool "det" true
    (List.for_all (roundtrip detection_to_string detection_of_string)
       [ No_detection; Internet_checksum; Crc32 ]);
  check_bool "rep" true
    (List.for_all (roundtrip reporting_to_string reporting_of_string)
       [
         No_report;
         Cumulative_ack { delay = Time.ms 2 };
         Selective_ack { delay = Time.zero };
         Nack_on_gap;
       ]);
  check_bool "rec" true
    (List.for_all (roundtrip recovery_to_string recovery_of_string)
       [
         No_recovery;
         Go_back_n;
         Selective_repeat;
         Forward_error_correction { group = 8 };
       ]);
  check_bool "ord" true
    (List.for_all (roundtrip ordering_to_string ordering_of_string) [ Unordered; Ordered ]);
  check_bool "dup" true
    (List.for_all (roundtrip duplicates_to_string duplicates_of_string)
       [ Accept_duplicates; Drop_duplicates ]);
  check_bool "del" true
    (List.for_all (roundtrip delivery_to_string delivery_of_string)
       [ As_available; Playout { target = Time.ms 80 } ])

let test_params_garbage () =
  check_bool "bad conn" true (Params.connection_of_string "nonsense" = None);
  check_bool "bad tx" true (Params.transmission_of_string "window:" = None);
  check_bool "bad rec" true (Params.recovery_of_string "fec" = None);
  check_bool "bad del" true (Params.delivery_of_string "playout:x" = None)

(* ---------------------------------------------------------------- Window *)

let test_window_track_ack () =
  let w = Window.create () in
  check_bool "empty" true (Window.is_empty w);
  List.iter (fun s -> Window.track w s ~at:(Time.ms s.Pdu.seq)) [ seg 0; seg 1; seg 2; seg 3 ];
  check_int "in flight" 4 (Window.in_flight w);
  check_int "bytes" 400 (Window.bytes_in_flight w);
  Alcotest.(check (option int)) "lowest" (Some 0) (Window.lowest_outstanding w);
  let acked = Window.on_cumulative_ack w ~cum:2 in
  Alcotest.(check (list int)) "acked in order" [ 0; 1 ]
    (List.map (fun e -> e.Window.seg.Pdu.seq) acked);
  check_int "remaining" 2 (Window.in_flight w);
  Alcotest.(check (option int)) "new lowest" (Some 2) (Window.lowest_outstanding w)

let test_window_sack_queries () =
  let w = Window.create () in
  List.iter (fun s -> Window.track w s ~at:Time.zero)
    [ seg 0; seg 1; seg 2; seg 3; seg 4 ];
  Window.mark_sacked w [ 1; 3 ];
  Alcotest.(check (list int)) "gbn set skips sacked" [ 0; 2; 4 ]
    (List.map (fun s -> s.Pdu.seq) (Window.unsacked_from w 0));
  Alcotest.(check (list int)) "gbn from 2" [ 2; 4 ]
    (List.map (fun s -> s.Pdu.seq) (Window.unsacked_from w 2));
  Alcotest.(check (list int)) "selective missing" [ 2 ]
    (List.map (fun s -> s.Pdu.seq) (Window.unsacked_missing w [ 1; 2; 3 ]));
  check_bool "oldest unsacked" true
    ((Option.get (Window.oldest_unsacked w)).Window.seg.Pdu.seq = 0);
  Window.mark_sacked w [ 0 ];
  check_bool "oldest skips sacked" true
    ((Option.get (Window.oldest_unsacked w)).Window.seg.Pdu.seq = 2)

let test_window_touch () =
  let w = Window.create () in
  Window.track w (seg 5) ~at:(Time.ms 1);
  Window.touch w 5 ~at:(Time.ms 9);
  let e = Option.get (Window.find w 5) in
  check_int "retries" 1 e.Window.retries;
  check_int "sent_at updated" (Time.ms 9) e.Window.sent_at;
  Window.touch w 99 ~at:Time.zero (* unknown: no-op *)

let prop_window_conservation =
  QCheck2.Test.make ~name:"in_flight = tracked - cumulatively acked" ~count:200
    QCheck2.Gen.(pair (int_range 1 60) (int_range 0 70))
    (fun (n, cum) ->
      let w = Window.create () in
      for i = 0 to n - 1 do
        Window.track w (seg i) ~at:Time.zero
      done;
      let acked = Window.on_cumulative_ack w ~cum in
      Window.in_flight w = n - List.length acked
      && List.length acked = min n (max 0 cum))

(* ------------------------------------------------------------------ Rate *)

let test_rate_burst_then_paced () =
  let r = Rate.create ~rate_bps:8000.0 ~burst_bytes:1000 in
  (* Burst allowance: first 1000 bytes go immediately. *)
  check_int "immediate" 0 (Rate.earliest_send r ~now:Time.zero ~bytes:1000);
  Rate.commit r ~at:Time.zero ~bytes:1000;
  (* Now empty: 500 bytes need 500*8/8000 = 0.5 s. *)
  check_int "paced" (Time.sec 0.5) (Rate.earliest_send r ~now:Time.zero ~bytes:500);
  (* Tokens refill over time. *)
  check_int "after refill" (Time.sec 1.0)
    (Rate.earliest_send r ~now:(Time.sec 1.0) ~bytes:1000)

let test_rate_set_rate () =
  let r = Rate.create ~rate_bps:8000.0 ~burst_bytes:100 in
  Rate.commit r ~at:Time.zero ~bytes:100;
  Rate.set_rate r ~rate_bps:16000.0;
  Alcotest.(check (float 1.0)) "rate changed" 16000.0 (Rate.rate_bps r);
  (* 100 bytes at 16 kb/s = 50 ms. *)
  check_int "faster pacing" (Time.ms 50) (Rate.earliest_send r ~now:Time.zero ~bytes:100);
  Alcotest.check_raises "bad rate" (Invalid_argument "Rate.set_rate: non-positive rate")
    (fun () -> Rate.set_rate r ~rate_bps:0.0)

let test_rate_burst_cap () =
  let r = Rate.create ~rate_bps:8000.0 ~burst_bytes:200 in
  (* Long idle does not accumulate more than the burst. *)
  check_int "bounded burst" (Time.sec 100.0)
    (Rate.earliest_send r ~now:(Time.sec 100.0) ~bytes:200);
  Rate.commit r ~at:(Time.sec 100.0) ~bytes:200;
  check_bool "but not more" true
    (Rate.earliest_send r ~now:(Time.sec 100.0) ~bytes:201 > Time.sec 100.0)

(* ------------------------------------------------------------------- Rtt *)

let test_rtt_first_sample () =
  let r = Rtt.create ~initial_rto:(Time.sec 2.0) () in
  check_int "initial rto" (Time.sec 2.0) (Rtt.rto r);
  check_bool "no srtt" true (Rtt.srtt r = None);
  Rtt.observe r (Time.ms 100);
  check_int "srtt = sample" (Time.ms 100) (Option.get (Rtt.srtt r));
  check_int "rttvar = sample/2" (Time.ms 50) (Option.get (Rtt.rttvar r));
  check_int "samples" 1 (Rtt.samples r)

let test_rtt_convergence () =
  let r = Rtt.create () in
  for _ = 1 to 50 do
    Rtt.observe r (Time.ms 80)
  done;
  let srtt = Option.get (Rtt.srtt r) in
  check_bool "converged" true (abs (srtt - Time.ms 80) < Time.ms 2);
  (* Constant samples: variance floor keeps RTO sane. *)
  check_bool "rto >= srtt + floor" true (Rtt.rto r >= srtt + Time.ms 10)

let test_rtt_backoff () =
  let r = Rtt.create () in
  Rtt.observe r (Time.ms 100);
  let base = Rtt.rto r in
  Rtt.on_timeout r;
  check_int "doubled" (min (Time.sec 60.0) (2 * base)) (Rtt.rto r);
  Rtt.on_timeout r;
  check_int "doubled again" (min (Time.sec 60.0) (4 * base)) (Rtt.rto r);
  Rtt.observe r (Time.ms 100);
  (* The new sample also shrinks the variance, so just check the backoff
     multiplier is gone. *)
  check_bool "sample resets backoff" true (Rtt.rto r <= base)

let test_rtt_clamps () =
  let r = Rtt.create () in
  Rtt.observe r (Time.us 1);
  check_bool "min clamp" true (Rtt.rto r >= Time.ms 10);
  let r2 = Rtt.create () in
  Rtt.observe r2 (Time.sec 100.0);
  check_bool "max clamp" true (Rtt.rto r2 <= Time.sec 60.0)

(* --------------------------------------------------------------- Reorder *)

let mk_reorder ?start ?(ordering = Params.Ordered) ?(duplicates = Params.Drop_duplicates)
    () =
  Reorder.create ?start ~ordering ~duplicates ()

let delivered = function
  | Reorder.Deliver segs -> List.map (fun s -> s.Pdu.seq) segs
  | Reorder.Buffered | Reorder.Duplicate -> []

let test_reorder_in_order () =
  let r = mk_reorder () in
  Alcotest.(check (list int)) "0" [ 0 ] (delivered (Reorder.offer r (seg 0)));
  Alcotest.(check (list int)) "1" [ 1 ] (delivered (Reorder.offer r (seg 1)));
  check_int "expected" 2 (Reorder.expected r);
  check_int "highest" 1 (Reorder.highest_seen r);
  Alcotest.(check (list int)) "no gaps" [] (Reorder.missing r)

let test_reorder_out_of_order () =
  let r = mk_reorder () in
  check_bool "2 buffered" true (Reorder.offer r (seg 2) = Reorder.Buffered);
  check_bool "1 buffered" true (Reorder.offer r (seg 1) = Reorder.Buffered);
  Alcotest.(check (list int)) "gap" [ 0 ] (Reorder.missing r);
  Alcotest.(check (list int)) "sack" [ 1; 2 ] (Reorder.sack_list r);
  check_int "buffered count" 2 (Reorder.buffered_count r);
  Alcotest.(check (list int)) "run released" [ 0; 1; 2 ]
    (delivered (Reorder.offer r (seg 0)));
  check_int "expected" 3 (Reorder.expected r)

let test_reorder_duplicates () =
  let r = mk_reorder () in
  ignore (Reorder.offer r (seg 0));
  check_bool "dup dropped" true (Reorder.offer r (seg 0) = Reorder.Duplicate);
  let r2 = mk_reorder ~duplicates:Params.Accept_duplicates () in
  ignore (Reorder.offer r2 (seg 0));
  Alcotest.(check (list int)) "dup accepted" [ 0 ] (delivered (Reorder.offer r2 (seg 0)))

let test_reorder_unordered () =
  let r = mk_reorder ~ordering:Params.Unordered () in
  Alcotest.(check (list int)) "5 released immediately" [ 5 ]
    (delivered (Reorder.offer r (seg 5)));
  Alcotest.(check (list int)) "gaps tracked" [ 0; 1; 2; 3; 4 ] (Reorder.missing r);
  check_int "no ordered buffering" 0 (Reorder.buffered_count r);
  check_bool "dup still detected" true (Reorder.offer r (seg 5) = Reorder.Duplicate)

let test_reorder_start_offset () =
  let r = mk_reorder ~start:100 () in
  check_int "expected at start" 100 (Reorder.expected r);
  Alcotest.(check (list int)) "delivery from start" [ 100 ]
    (delivered (Reorder.offer r (seg 100)))

let test_reorder_advance_past_gap () =
  let r = mk_reorder () in
  ignore (Reorder.offer r (seg 0));
  ignore (Reorder.offer r (seg 3));
  ignore (Reorder.offer r (seg 4));
  let skipped, released = Reorder.advance_past_gap r in
  check_int "skipped 1 and 2" 2 skipped;
  Alcotest.(check (list int)) "released run" [ 3; 4 ]
    (List.map (fun s -> s.Pdu.seq) released);
  check_int "expected past run" 5 (Reorder.expected r);
  check_bool "no-op without gap" true (Reorder.advance_past_gap r = (0, []))

let prop_reorder_permutation =
  QCheck2.Test.make ~name:"any arrival order delivers 0..n-1 in order exactly once"
    ~count:300
    QCheck2.Gen.(int_range 1 40 >>= fun n -> pair (return n) (shuffle_l (List.init n Fun.id)))
    (fun (n, order) ->
      let r = mk_reorder () in
      let out = ref [] in
      List.iter
        (fun s ->
          match Reorder.offer r (seg s) with
          | Reorder.Deliver segs ->
            out := List.rev_append (List.map (fun x -> x.Pdu.seq) segs) !out
          | Reorder.Buffered | Reorder.Duplicate -> ())
        order;
      List.rev !out = List.init n Fun.id)

let prop_reorder_dups_never_delivered_twice =
  QCheck2.Test.make ~name:"drop-duplicates never delivers a seq twice" ~count:200
    QCheck2.Gen.(list_size (int_range 1 80) (int_bound 15))
    (fun arrivals ->
      let r = mk_reorder ~ordering:Params.Unordered () in
      let counts = Hashtbl.create 16 in
      List.iter
        (fun s ->
          match Reorder.offer r (seg s) with
          | Reorder.Deliver segs ->
            List.iter
              (fun x ->
                Hashtbl.replace counts x.Pdu.seq
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts x.Pdu.seq)))
              segs
          | Reorder.Buffered | Reorder.Duplicate -> ())
        arrivals;
      Hashtbl.fold (fun _ c acc -> acc && c = 1) counts true)

(* ------------------------------------------------------------------- Fec *)

let test_fec_sender_groups () =
  let s = Fec.Sender.create ~group:3 in
  check_bool "no parity yet" true (Fec.Sender.push s (seg 0) = None);
  check_bool "still none" true (Fec.Sender.push s (seg 1) = None);
  check_int "pending" 2 (Fec.Sender.pending s);
  (match Fec.Sender.push s (seg 2) with
  | Some covered ->
    Alcotest.(check (list int)) "covers group" [ 0; 1; 2 ]
      (List.map (fun x -> x.Pdu.seq) covered)
  | None -> Alcotest.fail "expected parity");
  check_int "reset" 0 (Fec.Sender.pending s);
  ignore (Fec.Sender.push s (seg 3));
  (match Fec.Sender.flush s with
  | Some covered ->
    Alcotest.(check (list int)) "partial flush" [ 3 ]
      (List.map (fun x -> x.Pdu.seq) covered)
  | None -> Alcotest.fail "expected flush");
  check_bool "empty flush" true (Fec.Sender.flush s = None);
  Alcotest.check_raises "group >= 2"
    (Invalid_argument "Fec.Sender.create: group must be >= 2") (fun () ->
      ignore (Fec.Sender.create ~group:1))

let test_fec_receiver_single_loss () =
  let r = Fec.Receiver.create () in
  ignore (Fec.Receiver.on_data r (seg 0));
  ignore (Fec.Receiver.on_data r (seg 2));
  (* Seq 1 lost; parity arrives. *)
  let recovered = Fec.Receiver.on_parity r ~covered:[ seg 0; seg 1; seg 2 ] ~parity:None in
  Alcotest.(check (list int)) "recovered 1" [ 1 ]
    (List.map (fun s -> s.Pdu.seq) recovered);
  check_int "count" 1 (Fec.Receiver.recovered r);
  check_int "no pending" 0 (Fec.Receiver.pending_groups r)

let test_fec_receiver_double_loss_then_arrival () =
  let r = Fec.Receiver.create () in
  ignore (Fec.Receiver.on_data r (seg 0));
  (* 1 and 2 missing: parity can't resolve yet. *)
  check_bool "unresolved" true
    (Fec.Receiver.on_parity r ~covered:[ seg 0; seg 1; seg 2 ] ~parity:None = []);
  check_int "parked" 1 (Fec.Receiver.pending_groups r);
  (* 1 arrives late: 2 becomes recoverable. *)
  let recovered = Fec.Receiver.on_data r (seg 1) in
  Alcotest.(check (list int)) "2 reconstructed" [ 2 ]
    (List.map (fun s -> s.Pdu.seq) recovered);
  check_int "group resolved" 0 (Fec.Receiver.pending_groups r)

let test_fec_receiver_complete_group () =
  let r = Fec.Receiver.create () in
  List.iter (fun i -> ignore (Fec.Receiver.on_data r (seg i))) [ 0; 1; 2 ];
  check_bool "nothing to recover" true
    (Fec.Receiver.on_parity r ~covered:[ seg 0; seg 1; seg 2 ] ~parity:None = []);
  check_int "no pending group" 0 (Fec.Receiver.pending_groups r)

let prop_fec_single_loss_per_group_always_recovers =
  QCheck2.Test.make ~name:"one loss per group is always reconstructed" ~count:200
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 7))
    (fun (group, lost_ix) ->
      let lost_ix = lost_ix mod group in
      let r = Fec.Receiver.create () in
      for i = 0 to group - 1 do
        if i <> lost_ix then ignore (Fec.Receiver.on_data r (seg i))
      done;
      let covered = List.init group (fun i -> seg i) in
      let recovered = Fec.Receiver.on_parity r ~covered ~parity:None in
      List.map (fun s -> s.Pdu.seq) recovered = [ lost_ix ])

(* --------------------------------------------------------------- Playout *)

let test_playout_early_and_late () =
  let p = Playout.create ~target:(Time.ms 50) in
  (match Playout.offer p ~app_stamp:Time.zero ~arrival:(Time.ms 20) with
  | Playout.Release_at at -> check_int "release at playout point" (Time.ms 50) at
  | Playout.Late _ -> Alcotest.fail "should not be late");
  (match Playout.offer p ~app_stamp:Time.zero ~arrival:(Time.ms 70) with
  | Playout.Late by -> check_int "lateness" (Time.ms 20) by
  | Playout.Release_at _ -> Alcotest.fail "should be late");
  check_int "released" 1 (Playout.released p);
  check_int "discarded" 1 (Playout.discarded p)

let test_playout_set_target () =
  let p = Playout.create ~target:(Time.ms 10) in
  Playout.set_target p (Time.ms 100);
  check_int "target updated" (Time.ms 100) (Playout.target p);
  match Playout.offer p ~app_stamp:Time.zero ~arrival:(Time.ms 50) with
  | Playout.Release_at at -> check_int "uses new target" (Time.ms 100) at
  | Playout.Late _ -> Alcotest.fail "should fit new target"

let test_playout_boundary () =
  let p = Playout.create ~target:(Time.ms 50) in
  match Playout.offer p ~app_stamp:Time.zero ~arrival:(Time.ms 50) with
  | Playout.Release_at at -> check_int "exactly on time" (Time.ms 50) at
  | Playout.Late _ -> Alcotest.fail "boundary counts as on time"

(* ------------------------------------------------------------- Slowstart *)

let test_slowstart_growth () =
  let cc = Slowstart.create ~initial:1 ~threshold:8 in
  check_int "initial" 1 (Slowstart.window cc);
  for _ = 1 to 7 do
    Slowstart.on_ack cc
  done;
  check_int "exponential to threshold" 8 (Slowstart.window cc);
  (* Above threshold growth is ~1/cwnd per ack: 9 acks ≈ +1 window. *)
  for _ = 1 to 9 do
    Slowstart.on_ack cc
  done;
  let w = Slowstart.window cc in
  check_bool "additive afterwards" true (w = 9);
  (* Whole extra round trip of acks for the next increment. *)
  for _ = 1 to 9 do
    Slowstart.on_ack cc
  done;
  check_int "one per round trip" 10 (Slowstart.window cc)

let test_slowstart_loss () =
  let cc = Slowstart.create ~initial:2 ~threshold:64 in
  for _ = 1 to 30 do
    Slowstart.on_ack cc
  done;
  let before = Slowstart.window cc in
  Slowstart.on_loss cc;
  check_int "window collapses" 2 (Slowstart.window cc);
  check_int "threshold halves" (max 2 (before / 2)) (Slowstart.threshold cc);
  check_int "loss counted" 1 (Slowstart.losses cc);
  Alcotest.check_raises "bad args" (Invalid_argument "Slowstart.create") (fun () ->
      ignore (Slowstart.create ~initial:0 ~threshold:1))

(* ------------------------------------------------------------------ Host *)

let test_host_costs () =
  let e = Engine.create () in
  let h = Host.create ~per_packet:(Time.us 100) ~per_byte_copy:(Time.ns 10) ~copies:2 e in
  (* 1000 bytes, 2 copies at 10ns = 20 us + 100 us fixed = 120 us. *)
  check_int "first completes" (Time.us 120) (Host.process h ~bytes:1000 ());
  (* Second packet queues behind the first. *)
  check_int "second queues" (Time.us 240) (Host.process h ~bytes:1000 ());
  check_int "packets" 2 (Host.packets h);
  check_int "accumulated" (Time.us 240) (Host.total_busy h)

let test_host_extra_and_copies () =
  let e = Engine.create () in
  let h = Host.create ~per_packet:Time.zero ~per_byte_copy:(Time.ns 10) ~copies:1 e in
  check_int "extra charged" (Time.us 20)
    (Host.process h ~bytes:1000 ~extra:(Time.us 10) ());
  Host.set_copies h 3;
  check_int "copies raised" 3 (Host.copies h);
  check_int "triple copy cost" (Time.us 50) (Host.process h ~bytes:1000 ())

let test_host_zero_cost () =
  let e = Engine.create () in
  let h = Host.zero_cost e in
  check_int "free" 0 (Host.process h ~bytes:1_000_000 ());
  check_int "still free" 0 (Host.process h ~bytes:1_000_000 ())

let test_host_idle_gap () =
  let e = Engine.create () in
  let h = Host.create ~per_packet:(Time.us 10) ~per_byte_copy:Time.zero ~copies:0 e in
  ignore (Host.process h ~bytes:1 ());
  (* Advance simulated time past the busy period. *)
  ignore (Engine.schedule e ~at:(Time.ms 1) (fun () -> ()));
  Engine.run e;
  check_int "starts at now when idle" (Time.ms 1 + Time.us 10)
    (Host.process h ~bytes:1 ())

(* ----------------------------------------------------------------- Codec *)

let sample_pdus =
  [
    Pdu.Data
      { conn = 9; seg = Pdu.seg ~seq:3 ~bytes:5
            ~payload:(Adaptive_buf.Msg.of_string "hello") ~stamp:(Time.ms 7)
            ~last:true (); retransmit = true; tx_stamp = Time.ms 9 };
    Pdu.Parity
      { conn = 9; group_start = 4; group_len = 2;
        covered = [ seg ~bytes:3 4; seg ~bytes:3 5 ];
        parity = Some (Adaptive_buf.Msg.of_string "xyz") };
    Pdu.Ack { conn = 9; cum = 17; window = 32; sack = [ 19; 21; 25 ]; echo = Time.us 11 };
    Pdu.Nack { conn = 9; missing = [ 17; 18 ] };
    Pdu.Syn { conn = 9; blob = "conn=2way"; first = None };
    Pdu.Syn
      { conn = 9; blob = "x";
        first =
          Some
            (Pdu.Data
               { conn = 9; seg = seg ~bytes:2 0; retransmit = false; tx_stamp = Time.zero }) };
    Pdu.Syn_ack { conn = 9; accepted = false; blob = "no" };
    Pdu.Ack_of_syn { conn = 9 };
    Pdu.Fin { conn = 9; graceful = true };
    Pdu.Fin { conn = 9; graceful = false };
    Pdu.Fin_ack { conn = 9 };
    Pdu.Signal { conn = 9; blob = "scs!whatever" };
    Pdu.Signal_ack { conn = 9; blob = "ok" };
  ]

let metadata_equal a b =
  (* Compare everything except payload identity (codec materializes
     zero-filled payloads for payload-less segments). *)
  let strip_data = function
    | Pdu.Data { conn; seg = s; retransmit; tx_stamp } ->
      Pdu.Data { conn; seg = Pdu.strip_payload s; retransmit; tx_stamp }
    | p -> p
  in
  let strip = function
    | Pdu.Data _ as p -> strip_data p
    | Pdu.Parity { conn; group_start; group_len; covered; parity = _ } ->
      Pdu.Parity
        { conn; group_start; group_len;
          covered = List.map Pdu.strip_payload covered; parity = None }
    | Pdu.Syn { conn; blob; first = Some inner } ->
      Pdu.Syn { conn; blob; first = Some (strip_data inner) }
    | p -> p
  in
  strip a = strip b

let test_codec_roundtrip_samples () =
  List.iter
    (fun pdu ->
      let wire = Codec.encode pdu in
      check_int (Pdu.describe pdu ^ " length") (Pdu.wire_bytes pdu) (String.length wire);
      match Codec.decode wire with
      | Ok back -> check_bool (Pdu.describe pdu ^ " roundtrip") true (metadata_equal pdu back)
      | Error e -> Alcotest.fail (Pdu.describe pdu ^ ": " ^ Codec.error_to_string e))
    sample_pdus

let test_codec_payload_roundtrip () =
  let text = "the quick brown fox" in
  let pdu =
    Pdu.Data
      { conn = 1;
        seg = Pdu.seg ~seq:0 ~bytes:(String.length text)
            ~payload:(Adaptive_buf.Msg.of_string text) ();
        retransmit = false;
        tx_stamp = Time.us 77 }
  in
  match Codec.decode (Codec.encode pdu) with
  | Ok (Pdu.Data { seg = s; _ }) ->
    (match s.Pdu.payload with
    | Some m -> Alcotest.(check string) "payload bytes" text (Adaptive_buf.Msg.data_to_string m)
    | None -> Alcotest.fail "payload lost")
  | Ok _ | Error _ -> Alcotest.fail "decode failed"

let test_codec_detects_damage () =
  let pdu = Pdu.Ack { conn = 2; cum = 5; window = 8; sack = [ 7 ]; echo = Time.ms 1 } in
  let wire = Bytes.of_string (Codec.encode pdu) in
  Bytes.set wire 9 (Char.chr (Char.code (Bytes.get wire 9) lxor 0x10));
  (match Codec.decode (Bytes.to_string wire) with
  | Error Codec.Bad_checksum -> ()
  | Ok _ -> Alcotest.fail "damage must be caught"
  | Error e -> Alcotest.fail (Codec.error_to_string e));
  (* The unchecked path parses it anyway — the no-detection behaviour. *)
  match Codec.decode_unchecked (Bytes.to_string wire) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("unchecked: " ^ Codec.error_to_string e)

let test_codec_rejects_garbage () =
  check_bool "short" true (Codec.decode "abc" = Error Codec.Truncated);
  let bogus = Bytes.make 16 '\000' in
  Bytes.set_uint8 bogus 0 99;
  check_bool "bad type" true
    (match Codec.decode_unchecked (Bytes.to_string bogus) with
    | Error (Codec.Bad_type 99) -> true
    | _ -> false);
  (* A data header promising more payload than present. *)
  let pdu =
    Pdu.Data { conn = 1; seg = seg ~bytes:100 0; retransmit = false; tx_stamp = Time.zero }
  in
  let wire = Codec.encode pdu in
  check_bool "truncated payload" true
    (Codec.decode_unchecked (String.sub wire 0 30) = Error Codec.Truncated)

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrips arbitrary data/ack/nack PDUs" ~count:300
    QCheck2.Gen.(
      let* kind = int_range 0 2 in
      let* conn = int_range 0 0xFFFF in
      let* a = int_range 0 100000 in
      let* b = int_range 0 1000 in
      let* text = string_size ~gen:printable (int_range 0 64) in
      return (kind, conn, a, b, text))
    (fun (kind, conn, a, b, text) ->
      let pdu =
        match kind with
        | 0 ->
          Pdu.Data
            { conn;
              seg = Pdu.seg ~seq:a ~bytes:(String.length text)
                  ~payload:(Adaptive_buf.Msg.of_string text) ~stamp:b ();
              retransmit = b mod 2 = 0;
              tx_stamp = a + b }
        | 1 -> Pdu.Ack { conn; cum = a; window = b; sack = [ a + 1; a + 3 ]; echo = b }
        | _ -> Pdu.Nack { conn; missing = [ a; a + 2; a + 9 ] }
      in
      let wire = Codec.encode pdu in
      String.length wire = Pdu.wire_bytes pdu
      &&
      match Codec.decode wire with
      | Ok back -> metadata_equal pdu back
      | Error _ -> false)

let prop_codec_decode_never_raises =
  QCheck2.Test.make ~name:"decode of arbitrary bytes returns, never raises" ~count:500
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun junk ->
      (match Codec.decode junk with Ok _ | Error _ -> true)
      && match Codec.decode_unchecked junk with Ok _ | Error _ -> true)

let prop_codec_bitflip_detected =
  QCheck2.Test.make ~name:"any single bit flip in a data PDU is caught" ~count:300
    QCheck2.Gen.(pair (string_size ~gen:printable (int_range 1 40)) (int_range 0 10_000))
    (fun (text, flip) ->
      let pdu =
        Pdu.Data
          { conn = 5;
            seg = Pdu.seg ~seq:1 ~bytes:(String.length text)
                ~payload:(Adaptive_buf.Msg.of_string text) ();
            retransmit = false;
            tx_stamp = Time.us 3 }
      in
      let wire = Bytes.of_string (Codec.encode pdu) in
      let bit = flip mod (8 * Bytes.length wire) in
      let byte = bit / 8 in
      Bytes.set wire byte (Char.chr (Char.code (Bytes.get wire byte) lxor (1 lsl (bit mod 8))));
      match Codec.decode (Bytes.to_string wire) with
      | Error Codec.Bad_checksum -> true
      | Error _ -> true (* structural fields damaged: also caught *)
      | Ok _ -> false)

(* -------------------------------------------------- wire-true codec paths *)

(* Random PDUs over every constructor, for the fused-path equivalence
   properties below. *)
let gen_any_pdu =
  QCheck2.Gen.(
    let* kind = int_range 0 12 in
    let* conn = int_range 0 0xFFFF in
    let* a = int_range 0 100_000 in
    let* b = int_range 0 1_000 in
    let* text = string_size (int_range 0 80) in
    let payload_seg =
      Pdu.seg ~seq:a ~bytes:(String.length text)
        ~payload:(Adaptive_buf.Msg.of_string text) ~stamp:b ~last:(b mod 2 = 0)
        ()
    in
    return
      (match kind with
      | 0 -> Pdu.Data { conn; seg = payload_seg; retransmit = a mod 2 = 0; tx_stamp = b }
      | 1 ->
        (* Payload-less segment: the codec writes zero filler. *)
        Pdu.Data
          { conn; seg = seg ~bytes:(1 + (a mod 50)) a; retransmit = false;
            tx_stamp = Time.us 9 }
      | 2 ->
        Pdu.Parity
          { conn; group_start = a; group_len = 2;
            covered = [ seg ~bytes:3 a; seg ~bytes:3 (a + 1) ];
            parity = Some (Adaptive_buf.Msg.of_string text) }
      | 3 -> Pdu.Ack { conn; cum = a; window = b; sack = [ a + 1; a + 4 ]; echo = b }
      | 4 -> Pdu.Nack { conn; missing = [ a; a + 2 ] }
      | 5 -> Pdu.Syn { conn; blob = text; first = None }
      | 6 ->
        Pdu.Syn
          { conn; blob = text;
            first = Some (Pdu.Data { conn; seg = payload_seg; retransmit = false; tx_stamp = b }) }
      | 7 -> Pdu.Syn_ack { conn; accepted = a mod 2 = 0; blob = text }
      | 8 -> Pdu.Ack_of_syn { conn }
      | 9 -> Pdu.Fin { conn; graceful = a mod 2 = 0 }
      | 10 -> Pdu.Fin_ack { conn }
      | 11 -> Pdu.Signal { conn; blob = text }
      | _ -> Pdu.Signal_ack { conn; blob = text }))

let prop_encode_into_equals_encode =
  QCheck2.Test.make
    ~name:"encode_into = encode byte-for-byte, at any offset, all PDU types"
    ~count:500
    QCheck2.Gen.(pair gen_any_pdu (int_range 0 9))
    (fun (pdu, off) ->
      let st = Codec.wire_state () in
      let reference = Codec.encode pdu in
      let need = Pdu.wire_bytes pdu in
      let buf = Bytes.make (off + need + 4) '\xCC' in
      let n = Codec.encode_into st pdu buf ~off in
      n = need
      && String.length reference = need
      && Bytes.sub_string buf off n = reference
      (* Bytes outside [off, off+n) are untouched. *)
      && (off = 0 || Bytes.get buf (off - 1) = '\xCC')
      && Bytes.get buf (off + n) = '\xCC')

(* Error-for-error equivalence of the in-place and string decoders, over
   pristine, truncated, type-damaged and checksum-damaged images. *)
let mutate image mutation knob =
  match mutation with
  | 0 -> image
  | 1 -> String.sub image 0 (knob mod (String.length image + 1))
  | 2 ->
    let b = Bytes.of_string image in
    let bit = knob mod (8 * Bytes.length b) in
    Bytes.set b (bit / 8)
      (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  | _ ->
    let b = Bytes.of_string image in
    Bytes.set_uint8 b 0 (100 + (knob mod 100));
    Bytes.to_string b

let prop_decode_view_equals_decode =
  QCheck2.Test.make
    ~name:"decode_view = decode, value and error, on damaged images too"
    ~count:800
    QCheck2.Gen.(
      pair gen_any_pdu (triple (int_range 0 3) (int_range 0 100_000) (int_range 0 9)))
    (fun (pdu, (mutation, knob, off)) ->
      let image = mutate (Codec.encode pdu) mutation knob in
      let len = String.length image in
      let padded = Bytes.make (off + len + 3) '\xEE' in
      Bytes.blit_string image 0 padded off len;
      match (Codec.decode image, Codec.decode_view padded ~off ~len) with
      | Ok a, Ok b ->
        (* Re-encoding both results must give identical bytes: metadata
           and payload content agree. *)
        metadata_equal a b && Codec.encode a = Codec.encode b
      | Error ea, Error eb -> ea = eb
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_scan_data_agrees_with_decode_view =
  QCheck2.Test.make
    ~name:"scan_data classifies exactly as decode_view" ~count:800
    QCheck2.Gen.(
      pair gen_any_pdu (triple (int_range 0 3) (int_range 0 100_000) (int_range 0 9)))
    (fun (pdu, (mutation, knob, off)) ->
      let st = Codec.wire_state () in
      let image = mutate (Codec.encode pdu) mutation knob in
      let len = String.length image in
      let padded = Bytes.make (off + len + 3) '\xEE' in
      Bytes.blit_string image 0 padded off len;
      let view = Codec.decode_view padded ~off ~len in
      match Codec.scan_data st padded ~off ~len with
      | Codec.Scan_not_data -> (
        match view with
        | Ok (Pdu.Data _) -> false
        | Ok _ | Error _ -> true)
      | Codec.Scan_truncated -> (
        (* scan_data only judges data PDUs; a short non-data image is
           classified Scan_truncated before the type check can run. *)
        match view with
        | Error Codec.Truncated -> true
        | Ok (Pdu.Data _) -> false
        | Ok _ | Error _ -> len < 32)
      | Codec.Scan_bad_checksum -> view = Error Codec.Bad_checksum
      | Codec.Scan_ok -> (
        match view with
        | Ok (Pdu.Data { conn; seg = s; retransmit; tx_stamp }) ->
          Codec.scan_conn st = conn
          && Codec.scan_seq st = s.Pdu.seq
          && Codec.scan_last st = s.Pdu.app_last
          && Codec.scan_retransmit st = retransmit
          && Codec.scan_app_stamp st = s.Pdu.app_stamp
          && Codec.scan_tx_stamp st = tx_stamp
          && Codec.scan_payload_len st = s.Pdu.seg_bytes
          && (match s.Pdu.payload with
             | None -> true
             | Some m ->
               Bytes.sub_string padded (Codec.scan_payload_off st)
                 (Codec.scan_payload_len st)
               = Adaptive_buf.Msg.data_to_string m)
        | Ok _ | Error _ -> false))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "mech.pdu",
      [
        Alcotest.test_case "conn id" `Quick test_pdu_conn_id;
        Alcotest.test_case "wire bytes" `Quick test_pdu_wire_bytes;
        Alcotest.test_case "describe" `Quick test_pdu_describe;
      ] );
    ( "mech.codec",
      [
        Alcotest.test_case "sample roundtrips + exact sizes" `Quick
          test_codec_roundtrip_samples;
        Alcotest.test_case "payload bytes roundtrip" `Quick test_codec_payload_roundtrip;
        Alcotest.test_case "trailer checksum detects damage" `Quick
          test_codec_detects_damage;
        Alcotest.test_case "garbage rejected" `Quick test_codec_rejects_garbage;
      ]
      @ qsuite
          [ prop_codec_roundtrip; prop_codec_decode_never_raises; prop_codec_bitflip_detected ]
    );
    ( "mech.params",
      [
        Alcotest.test_case "string round trips" `Quick test_params_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick test_params_garbage;
      ] );
    ( "mech.window",
      [
        Alcotest.test_case "track and cumulative ack" `Quick test_window_track_ack;
        Alcotest.test_case "sack queries" `Quick test_window_sack_queries;
        Alcotest.test_case "touch retries" `Quick test_window_touch;
      ]
      @ qsuite [ prop_window_conservation ] );
    ( "mech.rate",
      [
        Alcotest.test_case "burst then paced" `Quick test_rate_burst_then_paced;
        Alcotest.test_case "live rate change" `Quick test_rate_set_rate;
        Alcotest.test_case "burst cap" `Quick test_rate_burst_cap;
      ] );
    ( "mech.rtt",
      [
        Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
        Alcotest.test_case "convergence" `Quick test_rtt_convergence;
        Alcotest.test_case "timeout backoff" `Quick test_rtt_backoff;
        Alcotest.test_case "clamps" `Quick test_rtt_clamps;
      ] );
    ( "mech.reorder",
      [
        Alcotest.test_case "in order" `Quick test_reorder_in_order;
        Alcotest.test_case "out of order" `Quick test_reorder_out_of_order;
        Alcotest.test_case "duplicates" `Quick test_reorder_duplicates;
        Alcotest.test_case "unordered mode" `Quick test_reorder_unordered;
        Alcotest.test_case "start offset" `Quick test_reorder_start_offset;
        Alcotest.test_case "advance past gap" `Quick test_reorder_advance_past_gap;
      ]
      @ qsuite [ prop_reorder_permutation; prop_reorder_dups_never_delivered_twice ] );
    ( "mech.fec",
      [
        Alcotest.test_case "sender groups" `Quick test_fec_sender_groups;
        Alcotest.test_case "single loss recovery" `Quick test_fec_receiver_single_loss;
        Alcotest.test_case "double loss resolves late" `Quick
          test_fec_receiver_double_loss_then_arrival;
        Alcotest.test_case "complete group" `Quick test_fec_receiver_complete_group;
      ]
      @ qsuite [ prop_fec_single_loss_per_group_always_recovers ] );
    ( "mech.playout",
      [
        Alcotest.test_case "early and late" `Quick test_playout_early_and_late;
        Alcotest.test_case "target adjustment" `Quick test_playout_set_target;
        Alcotest.test_case "boundary" `Quick test_playout_boundary;
      ] );
    ( "mech.slowstart",
      [
        Alcotest.test_case "growth phases" `Quick test_slowstart_growth;
        Alcotest.test_case "multiplicative decrease" `Quick test_slowstart_loss;
      ] );
    ( "mech.host",
      [
        Alcotest.test_case "serial cost model" `Quick test_host_costs;
        Alcotest.test_case "extra work and copies" `Quick test_host_extra_and_copies;
        Alcotest.test_case "zero cost" `Quick test_host_zero_cost;
        Alcotest.test_case "idle restart" `Quick test_host_idle_gap;
      ] );
  ]
