(* Tests for the simulation substrate: Time, Heap, Rng, Stats, Engine,
   Trace. *)

open Adaptive_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float msg ~eps expected actual = Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ Time *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "sec" 1_500_000_000 (Time.sec 1.5);
  check_int "minutes" 120_000_000_000 (Time.minutes 2);
  check_float "to_sec" ~eps:1e-12 0.002 (Time.to_sec (Time.ms 2));
  check_float "to_ms" ~eps:1e-9 2.5 (Time.to_ms (Time.us 2500));
  check_float "to_us" ~eps:1e-9 3.0 (Time.to_us (Time.ns 3000))

let test_time_arith () =
  check_int "add" 30 (Time.add 10 20);
  check_int "diff" (-10) (Time.diff 10 20);
  check_int "max" 20 (Time.max 10 20);
  check_int "min" 10 (Time.min 10 20);
  check_bool "compare" true (Time.compare 1 2 < 0)

let test_time_of_rate () =
  (* 8000 bits at 1 Mb/s = 8 ms *)
  check_int "1Mbps" (Time.ms 8) (Time.of_rate ~bits:8000 ~bps:1e6);
  (* 12000 bits at 10 Mb/s = 1.2 ms *)
  check_int "10Mbps" 1_200_000 (Time.of_rate ~bits:12000 ~bps:10e6);
  Alcotest.check_raises "zero rate" (Invalid_argument "Time.of_rate: non-positive rate")
    (fun () -> ignore (Time.of_rate ~bits:1 ~bps:0.0))

let test_time_pp () =
  Alcotest.(check string) "ns" "123ns" (Time.to_string 123);
  Alcotest.(check string) "us" "12.30us" (Time.to_string 12_300);
  Alcotest.(check string) "ms" "1.50ms" (Time.to_string 1_500_000);
  Alcotest.(check string) "s" "2.000s" (Time.to_string 2_000_000_000)

(* ------------------------------------------------------------------ Heap *)

let test_heap_basic () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  Heap.push h ~key:5 "five";
  Heap.push h ~key:1 "one";
  Heap.push h ~key:3 "three";
  check_int "length" 3 (Heap.length h);
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "one")) (Heap.peek h);
  Alcotest.(check (option (pair int string))) "pop1" (Some (1, "one")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop2" (Some (3, "three")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop3" (Some (5, "five")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop empty" None (Heap.pop h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~key:7 v) [ "a"; "b"; "c"; "d" ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "FIFO among equal keys" [ "a"; "b"; "c"; "d" ] order

let test_heap_clear_drain () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 4; 2; 9; 1 ];
  let seen = ref [] in
  Heap.drain h ~f:(fun k _ -> seen := k :: !seen);
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 4; 9 ] (List.rev !seen);
  Heap.push h ~key:1 1;
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let prop_heap_sorted =
  QCheck2.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck2.Gen.(list (int_bound 10_000))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k k) keys;
      let rec collect acc =
        match Heap.pop h with None -> List.rev acc | Some (k, _) -> collect (k :: acc)
      in
      let popped = collect [] in
      popped = List.sort compare keys)

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 99 and b = Rng.create 99 in
  let seq_a = List.init 32 (fun _ -> Rng.bits64 a) in
  let seq_b = List.init 32 (fun _ -> Rng.bits64 b) in
  check_bool "same seed same stream" true (seq_a = seq_b);
  let c = Rng.create 100 in
  let seq_c = List.init 32 (fun _ -> Rng.bits64 c) in
  check_bool "different seed different stream" false (seq_a = seq_c)

let test_rng_split_copy () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let rest_a = List.init 16 (fun _ -> Rng.bits64 a) in
  let rest_b = List.init 16 (fun _ -> Rng.bits64 b) in
  check_bool "split independent" false (rest_a = rest_b);
  let c = Rng.create 7 in
  let d = Rng.copy c in
  check_bool "copy same stream" true
    (List.init 8 (fun _ -> Rng.bits64 c) = List.init 8 (fun _ -> Rng.bits64 d))

let test_rng_split_ix () =
  (* Pure: deriving never advances the parent. *)
  let parent = Rng.create 42 in
  let _ = Rng.split_ix parent 0 and _ = Rng.split_ix parent 7 in
  let untouched = Rng.create 42 in
  check_bool "parent not advanced" true
    (List.init 8 (fun _ -> Rng.bits64 parent)
    = List.init 8 (fun _ -> Rng.bits64 untouched));
  (* Reproducible: same (parent state, index) gives the same stream. *)
  let stream i =
    List.init 16 (fun _ -> Rng.bits64 (Rng.split_ix (Rng.create 42) i))
  in
  check_bool "same index same stream" true (stream 3 = stream 3);
  (* Independent: distinct indices give pairwise-distinct streams. *)
  let streams = List.init 32 stream in
  let distinct = List.sort_uniq compare streams in
  check_int "32 indices, 32 distinct streams" 32 (List.length distinct);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.split_ix: negative index") (fun () ->
      ignore (Rng.split_ix parent (-1)))

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "int_in out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Rng.int: non-positive bound") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    if Rng.bernoulli rng 0.0 then Alcotest.fail "p=0 returned true";
    if not (Rng.bernoulli rng 1.0) then Alcotest.fail "p=1 returned false"
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:3.0
  done;
  check_float "sample mean near 3.0" ~eps:0.15 3.0 (!sum /. float_of_int n)

let test_rng_geometric () =
  let rng = Rng.create 6 in
  check_int "p=1 is 0" 0 (Rng.geometric rng ~p:1.0);
  for _ = 1 to 500 do
    if Rng.geometric rng ~p:0.3 < 0 then Alcotest.fail "negative geometric"
  done;
  Alcotest.check_raises "bad p" (Invalid_argument "Rng.geometric: p outside (0,1]")
    (fun () -> ignore (Rng.geometric rng ~p:0.0))

let test_rng_gaussian_moments () =
  let rng = Rng.create 8 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian rng ~mu:10.0 ~sigma:2.0 in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check_float "mean" ~eps:0.1 10.0 mean;
  check_float "variance" ~eps:0.3 4.0 var

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let prop_rng_pareto_scale =
  QCheck2.Test.make ~name:"pareto samples >= scale" ~count:100
    QCheck2.Gen.(pair (int_range 1 1000) (float_range 1.1 5.0))
    (fun (seed, shape) ->
      let rng = Rng.create seed in
      let v = Rng.pareto rng ~shape ~scale:2.0 in
      v >= 2.0)

(* ------------------------------------------------------------------ Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  check_float "total" ~eps:1e-9 40.0 (Stats.total s);
  check_float "mean" ~eps:1e-9 5.0 (Stats.mean s);
  check_float "variance" ~eps:1e-9 (32.0 /. 7.0) (Stats.variance s);
  check_float "min" ~eps:1e-9 2.0 (Stats.min_value s);
  check_float "max" ~eps:1e-9 9.0 (Stats.max_value s)

let test_stats_empty () =
  let s = Stats.create () in
  check_bool "mean nan" true (Float.is_nan (Stats.mean s));
  check_bool "min nan" true (Float.is_nan (Stats.min_value s));
  (* Quantiles and summaries of nothing are defined (zero), not NaN, so
     reports and emitted JSON stay well-formed. *)
  check_float "quantile zero" ~eps:0.0 0.0 (Stats.quantile s 0.5);
  check_float "p99 zero" ~eps:0.0 0.0 (Stats.quantile s 0.99);
  let summary = Stats.summarize s in
  check_int "summary n" 0 summary.Stats.n;
  check_float "summary mean" ~eps:0.0 0.0 summary.Stats.mean;
  check_float "summary sd" ~eps:0.0 0.0 summary.Stats.stddev;
  check_float "summary min" ~eps:0.0 0.0 summary.Stats.min;
  check_float "summary max" ~eps:0.0 0.0 summary.Stats.max;
  check_float "summary p50" ~eps:0.0 0.0 summary.Stats.p50;
  check_float "summary p99" ~eps:0.0 0.0 summary.Stats.p99

let test_stats_merge_empty () =
  (* Merging an empty accumulator in either direction preserves the
     non-empty side's moments and extrema exactly. *)
  let check_preserved label m =
    check_int (label ^ " count") 3 (Stats.count m);
    check_float (label ^ " total") ~eps:1e-9 9.0 (Stats.total m);
    check_float (label ^ " mean") ~eps:1e-9 3.0 (Stats.mean m);
    check_float (label ^ " variance") ~eps:1e-9 4.0 (Stats.variance m);
    check_float (label ^ " min") ~eps:1e-9 1.0 (Stats.min_value m);
    check_float (label ^ " max") ~eps:1e-9 5.0 (Stats.max_value m);
    check_float (label ^ " p50") ~eps:1e-9 3.0 (Stats.quantile m 0.5)
  in
  let full () =
    let s = Stats.create () in
    List.iter (Stats.add s) [ 1.0; 3.0; 5.0 ];
    s
  in
  check_preserved "empty-into-full" (Stats.merge (full ()) (Stats.create ()));
  check_preserved "full-into-empty" (Stats.merge (Stats.create ()) (full ()));
  let both = Stats.merge (Stats.create ()) (Stats.create ()) in
  check_int "both empty count" 0 (Stats.count both);
  check_float "both empty p50" ~eps:0.0 0.0 (Stats.quantile both 0.5)

let test_stats_quantiles () =
  let s = Stats.create () in
  for i = 0 to 100 do
    Stats.add s (float_of_int i)
  done;
  check_float "p50" ~eps:1.0 50.0 (Stats.quantile s 0.5);
  check_float "p95" ~eps:1.5 95.0 (Stats.quantile s 0.95);
  check_float "p0" ~eps:1e-9 0.0 (Stats.quantile s 0.0);
  check_float "p100" ~eps:1e-9 100.0 (Stats.quantile s 1.0)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0; 3.0 ];
  List.iter (Stats.add b) [ 10.0; 20.0 ];
  let m = Stats.merge a b in
  check_int "merged count" 5 (Stats.count m);
  check_float "merged total" ~eps:1e-9 36.0 (Stats.total m);
  check_float "merged mean" ~eps:1e-9 7.2 (Stats.mean m);
  check_float "merged min" ~eps:1e-9 1.0 (Stats.min_value m);
  check_float "merged max" ~eps:1e-9 20.0 (Stats.max_value m)

let test_stats_clear () =
  let s = Stats.create () in
  Stats.add s 5.0;
  Stats.clear s;
  check_int "cleared count" 0 (Stats.count s)

let test_stats_reservoir_bounded () =
  (* Millions of samples must not blow memory; quantiles stay sane. *)
  let s = Stats.create ~reservoir:512 () in
  for i = 1 to 100_000 do
    Stats.add s (float_of_int (i mod 1000))
  done;
  check_int "count" 100_000 (Stats.count s);
  let q = Stats.quantile s 0.5 in
  check_bool "median plausible" true (q > 350.0 && q < 650.0)

let prop_stats_mean_bounded =
  QCheck2.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_value s -. 1e-9 && m <= Stats.max_value s +. 1e-9)

let prop_stats_variance_nonneg =
  QCheck2.Test.make ~name:"variance is non-negative" ~count:200
    QCheck2.Gen.(list_size (int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.variance s >= -1e-9)

(* ---------------------------------------------------------------- Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule e ~at:(Time.ms 30) (note "c"));
  ignore (Engine.schedule e ~at:(Time.ms 10) (note "a"));
  ignore (Engine.schedule e ~at:(Time.ms 20) (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_int "clock at last event" (Time.ms 30) (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:(Time.ms 1) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:(Time.ms 5) (fun () -> fired := true) in
  check_bool "pending" true (Engine.is_pending h);
  Engine.cancel h;
  check_bool "not pending" false (Engine.is_pending h);
  Engine.run e;
  check_bool "cancelled did not fire" false !fired;
  Engine.cancel h (* idempotent *)

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:(Time.ms 10) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: event in the past")
    (fun () -> ignore (Engine.schedule e ~at:(Time.ms 5) (fun () -> ())))

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun t -> ignore (Engine.schedule e ~at:t (fun () -> incr count)))
    [ Time.ms 1; Time.ms 2; Time.ms 50 ];
  Engine.run e ~until:(Time.ms 10);
  check_int "only early events" 2 !count;
  check_int "clock advanced to limit" (Time.ms 10) (Engine.now e);
  check_int "one pending" 1 (Engine.pending_events e);
  Engine.run e;
  check_int "rest ran" 3 !count

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:(Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e ~delay:(Time.ms 1) (fun () ->
                log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_int "events fired" 2 (Engine.events_fired e)

let test_engine_max_events () =
  let e = Engine.create () in
  let rec forever () = ignore (Engine.schedule_after e ~delay:1 forever) in
  forever ();
  Engine.run e ~max_events:100;
  check_int "bounded" 100 (Engine.events_fired e)

let test_timer_one_shot () =
  let e = Engine.create () in
  let fired = ref 0 in
  let timer = Engine.Timer.one_shot e ~delay:(Time.ms 3) (fun () -> incr fired) in
  check_bool "active" true (Engine.Timer.is_active timer);
  Engine.run e;
  check_int "fired once" 1 !fired;
  check_int "expirations" 1 (Engine.Timer.expirations timer);
  check_bool "inactive after" false (Engine.Timer.is_active timer)

let test_timer_periodic_cancel () =
  let e = Engine.create () in
  let fired = ref 0 in
  let timer = Engine.Timer.periodic e ~interval:(Time.ms 10) (fun () -> incr fired) in
  ignore
    (Engine.schedule e ~at:(Time.ms 55) (fun () -> Engine.Timer.cancel timer));
  Engine.run e;
  check_int "five periods before cancel" 5 !fired;
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Timer.periodic: non-positive interval") (fun () ->
      ignore (Engine.Timer.periodic e ~interval:0 (fun () -> ())))

let test_timer_reschedule () =
  let e = Engine.create () in
  let fired_at = ref Time.zero in
  let timer =
    Engine.Timer.one_shot e ~delay:(Time.ms 10) (fun () -> fired_at := Engine.now e)
  in
  ignore
    (Engine.schedule e ~at:(Time.ms 5) (fun () ->
         Engine.Timer.reschedule timer ~delay:(Time.ms 20)));
  Engine.run e;
  check_int "fired at rescheduled time" (Time.ms 25) !fired_at;
  check_int "fired once" 1 (Engine.Timer.expirations timer)

(* ------------------------------------------------- Heap flat-array API *)

let test_heap_explicit_seq () =
  let h = Heap.create () in
  Heap.push_seq h ~key:5 ~seq:10 "late";
  Heap.push_seq h ~key:5 ~seq:2 "early";
  Heap.push_seq h ~key:1 ~seq:99 "first";
  check_int "top key" 1 (Heap.top_key h);
  check_int "top seq" 99 (Heap.top_seq h);
  Alcotest.(check string) "top value" "first" (Heap.top_value h);
  Heap.drop_top h;
  Alcotest.(check string) "seq breaks key tie" "early" (Heap.top_value h);
  Heap.drop_top h;
  Alcotest.(check string) "higher seq later" "late" (Heap.top_value h);
  Heap.drop_top h;
  Alcotest.check_raises "top_key empty" (Invalid_argument "Heap.top_key: empty heap")
    (fun () -> ignore (Heap.top_key h));
  Alcotest.check_raises "drop_top empty" (Invalid_argument "Heap.drop_top: empty heap")
    (fun () -> Heap.drop_top h)

let test_heap_filter_in_place () =
  let h = Heap.create () in
  for k = 19 downto 0 do
    Heap.push h ~key:k (string_of_int k)
  done;
  Heap.filter_in_place h ~f:(fun key _seq _v -> key mod 2 = 0);
  check_int "kept half" 10 (Heap.length h);
  let out = ref [] in
  Heap.drain h ~f:(fun k _v -> out := k :: !out);
  Alcotest.(check (list int)) "still a heap over survivors"
    [ 0; 2; 4; 6; 8; 10; 12; 14; 16; 18 ]
    (List.rev !out);
  Heap.push h ~key:1 "x";
  Heap.filter_in_place h ~f:(fun _ _ _ -> false);
  check_bool "can drop everything" true (Heap.is_empty h)

(* --------------------------------------- Engine wheel/heap equivalence *)

(* A randomized schedule/cancel/reschedule workload whose delays span the
   wheel's level-0 and level-1 horizons and the overflow heap, with a
   bias towards identical deadlines so FIFO tie-breaking is exercised.
   Returns the full fire trace: (timer id, fire time) in order. *)
let run_random_schedule backend seed =
  let rng = Rng.create seed in
  let engine = Engine.create ~backend () in
  let n = 8 + Rng.int rng 25 in
  let trace = ref [] in
  let timers = Array.make n None in
  let delay () =
    match Rng.int rng 6 with
    | 0 -> Time.us (1 + Rng.int rng 64) (* below one wheel tick *)
    | 1 -> Time.ms (1 + Rng.int rng 10) (* level 0 *)
    | 2 -> Time.ms (20 * (1 + Rng.int rng 10)) (* level 1 *)
    | 3 -> Time.sec (float_of_int (1 + Rng.int rng 4)) (* level-1 edge *)
    | 4 -> Time.sec (float_of_int (5 + Rng.int rng 5)) (* overflow *)
    | _ -> Time.ms 1 (* tie magnet *)
  in
  for i = 0 to n - 1 do
    let expire () =
      trace := (i, Engine.now engine) :: !trace;
      match Rng.int rng 4 with
      | 0 -> (
        match timers.(i) with
        | Some t -> Engine.Timer.reschedule t ~delay:(delay ())
        | None -> ())
      | 1 -> (
        match timers.(Rng.int rng n) with
        | Some t -> Engine.Timer.cancel t
        | None -> ())
      | 2 -> (
        match timers.(Rng.int rng n) with
        | Some t -> Engine.Timer.reschedule t ~delay:(delay ())
        | None -> ())
      | _ -> ()
    in
    timers.(i) <- Some (Engine.Timer.one_shot engine ~delay:(delay ()) expire)
  done;
  Engine.run ~max_events:300 engine;
  (List.rev !trace, Engine.events_fired engine, Engine.pending_events engine)

let prop_engine_backend_equivalence =
  QCheck2.Test.make
    ~name:"wheel and heap backends fire the identical event sequence" ~count:1000
    QCheck2.Gen.int
    (fun seed ->
      run_random_schedule `Wheel seed = run_random_schedule `Heap seed)

let test_engine_horizon_order () =
  (* One deterministic schedule straddling every tier: ready (zero
     delay), wheel level 0, level 1, a level-1 cascade boundary, and the
     overflow heap. *)
  List.iter
    (fun backend ->
      let e = Engine.create ~backend () in
      let log = ref [] in
      let note tag () = log := tag :: !log in
      ignore (Engine.schedule_after e ~delay:(Time.sec 10.0) (note "overflow"));
      ignore (Engine.schedule_after e ~delay:(Time.sec 2.0) (note "level1"));
      ignore (Engine.schedule_after e ~delay:(Time.ms 100) (note "cascade"));
      ignore (Engine.schedule_after e ~delay:(Time.ms 1) (note "level0"));
      ignore (Engine.schedule_after e ~delay:0 (note "ready"));
      ignore (Engine.schedule_after e ~delay:(Time.ms 1) (note "level0-tie"));
      Engine.run e;
      Alcotest.(check (list string))
        "tiers fire in deadline order"
        [ "ready"; "level0"; "level0-tie"; "cascade"; "level1"; "overflow" ]
        (List.rev !log))
    [ `Wheel; `Heap ]

let test_engine_counters () =
  let e = Engine.create () in
  let c0 = Engine.counters e in
  check_int "starts clean" 0
    (c0.Engine.events_fired + c0.Engine.wheel_inserts + c0.Engine.lazy_cancels);
  let near = Engine.schedule_after e ~delay:(Time.ms 1) (fun () -> ()) in
  let far = Engine.schedule_after e ~delay:(Time.sec 60.0) (fun () -> ()) in
  ignore (Engine.schedule_after e ~delay:0 (fun () -> ()));
  let c = Engine.counters e in
  check_int "wheel insert" 1 c.Engine.wheel_inserts;
  check_int "overflow insert" 1 c.Engine.overflow_inserts;
  check_int "ready insert" 1 c.Engine.ready_inserts;
  Engine.cancel near;
  Engine.cancel far;
  let c = Engine.counters e in
  check_int "wheel cancel is eager" 1 c.Engine.wheel_cancels;
  check_int "heap cancel is lazy" 1 c.Engine.lazy_cancels;
  check_int "dead entry awaiting sweep" 1 c.Engine.dead_entries;
  let hr = Engine.wheel_hit_rate e in
  check_bool "hit rate in [0,1]" true (hr >= 0.0 && hr <= 1.0);
  let cr = Engine.cancelled_ratio e in
  check_bool "cancelled ratio in (0,1]" true (cr > 0.0 && cr <= 1.0);
  Engine.run e;
  let c = Engine.counters e in
  check_int "only the live event fired" 1 c.Engine.events_fired;
  let timer = Engine.Timer.one_shot e ~delay:(Time.ms 1) (fun () -> ()) in
  Engine.Timer.reschedule timer ~delay:(Time.ms 2);
  let c = Engine.counters e in
  check_int "reschedule counted as rearm" 1 c.Engine.timers_rearmed;
  Engine.run e;
  check_int "no dead entries left" 0 (Engine.counters e).Engine.dead_entries

(* ----------------------------------------------------------------- Trace *)

let test_trace_counters () =
  let tr = Trace.create () in
  Trace.count tr "x";
  Trace.count tr "x";
  Trace.count_by tr "y" 5;
  check_int "x" 2 (Trace.counter tr "x");
  check_int "y" 5 (Trace.counter tr "y");
  check_int "missing" 0 (Trace.counter tr "z");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("x", 2); ("y", 5) ]
    (Trace.counters tr)

let test_trace_log_capacity () =
  let tr = Trace.create ~log_capacity:3 () in
  for i = 1 to 5 do
    Trace.event tr ~at:(Time.ms i) ~category:"ev" ~detail:(string_of_int i)
  done;
  let entries = Trace.entries tr in
  check_int "bounded" 3 (List.length entries);
  Alcotest.(check (list string)) "oldest dropped" [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.detail) entries);
  check_int "counter still exact" 5 (Trace.counter tr "ev");
  Trace.clear tr;
  check_int "cleared" 0 (Trace.counter tr "ev")

let test_trace_disabled_log () =
  let tr = Trace.create ~log_capacity:0 () in
  Trace.event tr ~at:Time.zero ~category:"ev" ~detail:"d";
  check_int "no entries" 0 (List.length (Trace.entries tr));
  check_int "counter works" 1 (Trace.counter tr "ev")

let test_trace_dropped () =
  let tr = Trace.create ~log_capacity:3 () in
  for i = 1 to 5 do
    Trace.event tr ~at:(Time.ms i) ~category:"ev" ~detail:(string_of_int i)
  done;
  check_int "two evicted" 2 (Trace.dropped tr);
  let disabled = Trace.create ~log_capacity:0 () in
  Trace.event disabled ~at:Time.zero ~category:"ev" ~detail:"d";
  check_int "capacity 0 drops everything" 1 (Trace.dropped disabled);
  Trace.clear tr;
  check_int "clear resets" 0 (Trace.dropped tr)

let test_trace_hash () =
  let feed tr =
    for i = 1 to 5 do
      Trace.event tr ~at:(Time.ms i) ~category:"ev" ~detail:(string_of_int i)
    done
  in
  let a = Trace.create ~log_capacity:3 () in
  let b = Trace.create ~log_capacity:512 () in
  feed a;
  feed b;
  Alcotest.(check int64) "hash covers evicted entries too" (Trace.hash a)
    (Trace.hash b);
  let c = Trace.create () in
  Trace.event c ~at:(Time.ms 1) ~category:"ev" ~detail:"other";
  check_bool "different stream, different hash" true (Trace.hash a <> Trace.hash c);
  check_bool "nonzero offset basis" true (Trace.hash (Trace.create ()) <> 0L)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "sim.time",
      [
        Alcotest.test_case "unit conversions" `Quick test_time_units;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "of_rate" `Quick test_time_of_rate;
        Alcotest.test_case "printer" `Quick test_time_pp;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "push/pop ordering" `Quick test_heap_basic;
        Alcotest.test_case "FIFO tie-break" `Quick test_heap_fifo_ties;
        Alcotest.test_case "clear and drain" `Quick test_heap_clear_drain;
      ]
      @ qsuite [ prop_heap_sorted ] );
    ( "sim.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split and copy" `Quick test_rng_split_copy;
        Alcotest.test_case "indexed split is pure and independent" `Quick
          test_rng_split_ix;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "geometric" `Quick test_rng_geometric;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
      ]
      @ qsuite [ prop_rng_pareto_scale ] );
    ( "sim.stats",
      [
        Alcotest.test_case "basic moments" `Quick test_stats_basic;
        Alcotest.test_case "empty accumulator" `Quick test_stats_empty;
        Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "merge with empty" `Quick test_stats_merge_empty;
        Alcotest.test_case "clear" `Quick test_stats_clear;
        Alcotest.test_case "bounded reservoir" `Quick test_stats_reservoir_bounded;
      ]
      @ qsuite [ prop_stats_mean_bounded; prop_stats_variance_nonneg ] );
    ( "sim.engine",
      [
        Alcotest.test_case "time ordering" `Quick test_engine_ordering;
        Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "past scheduling raises" `Quick test_engine_past_raises;
        Alcotest.test_case "run until" `Quick test_engine_run_until;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
        Alcotest.test_case "max events bound" `Quick test_engine_max_events;
        Alcotest.test_case "one-shot timer" `Quick test_timer_one_shot;
        Alcotest.test_case "periodic timer and cancel" `Quick test_timer_periodic_cancel;
        Alcotest.test_case "reschedule" `Quick test_timer_reschedule;
        Alcotest.test_case "explicit-seq flat heap" `Quick test_heap_explicit_seq;
        Alcotest.test_case "heap filter_in_place" `Quick test_heap_filter_in_place;
        Alcotest.test_case "tier ordering across horizons" `Quick
          test_engine_horizon_order;
        Alcotest.test_case "whitebox counters" `Quick test_engine_counters;
      ]
      @ qsuite [ prop_engine_backend_equivalence ] );
    ( "sim.trace",
      [
        Alcotest.test_case "counters" `Quick test_trace_counters;
        Alcotest.test_case "log capacity" `Quick test_trace_log_capacity;
        Alcotest.test_case "disabled log keeps counters" `Quick test_trace_disabled_log;
        Alcotest.test_case "dropped-entry counter" `Quick test_trace_dropped;
        Alcotest.test_case "stream hash is capacity-independent" `Quick
          test_trace_hash;
      ] );
  ]
