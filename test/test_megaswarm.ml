(* MEGASWARM test layer: shard-count invariance of the partitioned
   workload (the digest and every rendered UNITES report must not depend
   on how many domains execute it), rejection of zero-lookahead
   configurations, and the P² streaming quantile estimator against exact
   order statistics. *)

open Adaptive_sim
open Adaptive_fleet
open Adaptive_workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Shard-count invariance *)

(* Random small configurations, each executed at 1, 2 and 4 shards.  The
   partition count stays fixed across the three runs — it is part of the
   workload — while the shard grouping varies; combined digest and the
   per-partition UNITES reports must be byte-identical. *)
let prop_shard_parity =
  let gen =
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* sessions = int_range 80 200 in
      let* partitions = int_range 2 5 in
      return (seed, sessions, partitions))
  in
  QCheck2.Test.make
    ~name:"megaswarm digest and UNITES independent of shard count" ~count:3
    ~print:(fun (seed, sessions, partitions) ->
      Printf.sprintf "seed=%d sessions=%d partitions=%d" seed sessions
        partitions)
    gen
    (fun (seed, sessions, partitions) ->
      let cfg =
        { (Megaswarm.default_config ~sessions ~seed) with
          Megaswarm.partitions;
          churn_rounds = 1 }
      in
      let run shards = Megaswarm.run { cfg with Megaswarm.shards } in
      let o1 = run 1 and o2 = run 2 and o4 = run 4 in
      Int64.equal o1.Megaswarm.digest o2.Megaswarm.digest
      && Int64.equal o1.Megaswarm.digest o4.Megaswarm.digest
      && o1.Megaswarm.partition_digests = o2.Megaswarm.partition_digests
      && o1.Megaswarm.unites_reports = o2.Megaswarm.unites_reports
      && o1.Megaswarm.unites_reports = o4.Megaswarm.unites_reports)

(* Heterogeneous per-pair lookahead: a positive wan_spread gives every
   ordered partition pair its own latency and hands SHARD the matching
   lookahead matrix, so the barrier runs per-destination run-ahead
   horizons instead of the global minimum.  The refinement must be
   invisible in the results: digest, per-partition digests and rendered
   UNITES reports byte-identical at 1, 2 and 4 shards. *)
let prop_pair_lookahead_parity =
  let gen =
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* sessions = int_range 80 200 in
      let* partitions = int_range 2 5 in
      let* spread_ms = int_range 1 20 in
      return (seed, sessions, partitions, spread_ms))
  in
  QCheck2.Test.make
    ~name:"per-pair lookahead preserves shard-count invariance" ~count:3
    ~print:(fun (seed, sessions, partitions, spread_ms) ->
      Printf.sprintf "seed=%d sessions=%d partitions=%d spread=%dms" seed
        sessions partitions spread_ms)
    gen
    (fun (seed, sessions, partitions, spread_ms) ->
      let cfg =
        { (Megaswarm.default_config ~sessions ~seed) with
          Megaswarm.partitions;
          churn_rounds = 1;
          wan_spread = Time.ms spread_ms }
      in
      let run shards = Megaswarm.run { cfg with Megaswarm.shards } in
      let o1 = run 1 and o2 = run 2 and o4 = run 4 in
      Int64.equal o1.Megaswarm.digest o2.Megaswarm.digest
      && Int64.equal o1.Megaswarm.digest o4.Megaswarm.digest
      && o1.Megaswarm.partition_digests = o2.Megaswarm.partition_digests
      && o1.Megaswarm.unites_reports = o2.Megaswarm.unites_reports
      && o1.Megaswarm.unites_reports = o4.Megaswarm.unites_reports)

let test_megaswarm_deterministic () =
  let cfg = Megaswarm.default_config ~sessions:150 ~seed:11 in
  let o1 = Megaswarm.run cfg in
  let o2 = Megaswarm.run cfg in
  check_bool "same seed, same digest" true
    (Int64.equal o1.Megaswarm.digest o2.Megaswarm.digest);
  check_int "all opens admitted without a policy" o1.Megaswarm.offered
    o1.Megaswarm.admitted;
  check_bool "cross-partition traffic flowed" true
    (o1.Megaswarm.wan_exchanged > 0);
  check_bool "cross sessions opened" true (o1.Megaswarm.cross_opened > 0);
  (* O(active) control plane: the monitor tick walks the monitored
     share, not the whole population, and the time-wait sweeper fires
     far fewer times than there are closed connections. *)
  check_bool "monitor tick working set stayed O(monitored)" true
    (o1.Megaswarm.monitor_ticks = 0
    || o1.Megaswarm.monitor_walked / o1.Megaswarm.monitor_ticks
       <= o1.Megaswarm.admitted);
  check_bool "time-wait sweeps coalesced" true
    (o1.Megaswarm.tw_expired = 0
    || o1.Megaswarm.tw_sweeps < o1.Megaswarm.tw_expired)

(* ------------------------------------------------------------------ *)
(* Zero-lookahead rejection *)

let test_zero_lookahead_rejected () =
  let dummy_run _ _ = () in
  let dummy_drain _ = [] in
  let dummy_inject _ ~at:_ ~src:_ () = () in
  Alcotest.check_raises "Time.zero lookahead is rejected"
    (Invalid_argument
       "Shard.create: lookahead must be positive — a zero-lookahead \
        cross-partition link admits no conservative synchronization window")
    (fun () ->
      ignore
        (Shard.create ~lookahead:Time.zero ~partitions:2 ~run_to:dummy_run
           ~drain:dummy_drain ~inject:dummy_inject ()));
  (* The same guard reaches megaswarm configs through wan_latency. *)
  match
    Megaswarm.run
      { (Megaswarm.default_config ~sessions:50 ~seed:3) with
        Megaswarm.wan_latency = Time.zero }
  with
  | _ -> Alcotest.fail "zero wan_latency must not run"
  | exception Invalid_argument _ -> ()

(* The per-pair refinement must not open a hole the scalar guard
   closed: a lookahead matrix with even one non-positive entry is
   rejected at construction. *)
let test_zero_pair_lookahead_rejected () =
  let dummy_run _ _ = () in
  let dummy_drain _ = [] in
  let dummy_inject _ ~at:_ ~src:_ () = () in
  Alcotest.check_raises "one zero pair is rejected"
    (Invalid_argument
       "Shard.create: per-pair lookahead must be positive — a zero-lookahead \
        cross-partition link admits no conservative synchronization window")
    (fun () ->
      ignore
        (Shard.create
           ~pair_lookahead:(fun ~src ~dst ->
             if src = 2 && dst = 0 then Time.zero else Time.ms 5)
           ~lookahead:(Time.ms 5) ~partitions:3 ~run_to:dummy_run
           ~drain:dummy_drain ~inject:dummy_inject ()))

(* ------------------------------------------------------------------ *)
(* Hot-path allocation budget *)

(* Regression guard for the allocation-starved event loop: the sim
   stage of a seeded churn run must stay under a fixed minor-words-per-
   event ceiling.  The measured figure is ~100 words/event; the ceiling
   leaves headroom for compiler/runtime variance but fails loudly if an
   allocating construct (closure, tuple key, format call) sneaks back
   onto the per-event path.  shards = 1 so the per-domain GC counters
   see every event. *)
let test_alloc_budget () =
  let cfg =
    { (Megaswarm.default_config ~sessions:2_000 ~seed:77) with
      Megaswarm.partitions = 2 }
  in
  let o = Megaswarm.run cfg in
  let sim =
    match List.assoc_opt "sim" o.Megaswarm.stage_minor_words with
    | Some w -> w
    | None -> Alcotest.fail "outcome is missing the sim stage sample"
  in
  check_bool "events fired" true (o.Megaswarm.events_fired > 0);
  let per_event = sim /. float_of_int o.Megaswarm.events_fired in
  if per_event > 180.0 then
    Alcotest.failf
      "hot path allocates %.0f minor words/event (ceiling 180); an \
       allocation crept back into the per-event path"
      per_event;
  check_bool "stage accounting covers the run" true
    (List.map fst o.Megaswarm.stage_minor_words
    = [ "build"; "schedule"; "sim"; "reduce" ])

(* ------------------------------------------------------------------ *)
(* P² estimator vs exact order statistics *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

(* On a uniform stream the P² markers track their target quantiles
   closely; we assert a conservative bound — within 10% of the sample
   range of the exact order statistic — plus exact moments and extrema,
   which the estimator maintains independently of the sketch. *)
let prop_p2_error_bound =
  let gen =
    QCheck2.Gen.(list_size (int_range 50 1500) (float_bound_inclusive 1000.0))
  in
  QCheck2.Test.make ~name:"P2 quantiles within 10% of range of exact"
    ~count:50
    ~print:(fun l -> Printf.sprintf "%d samples" (List.length l))
    gen
    (fun samples ->
      QCheck2.assume (samples <> []);
      let p2 = Stats.create ~estimator:Stats.P2 () in
      List.iter (Stats.add p2) samples;
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let range = sorted.(n - 1) -. sorted.(0) in
      let tol = Float.max (0.10 *. range) 1e-9 in
      let close q =
        Float.abs (Stats.quantile p2 q -. exact_quantile sorted q) <= tol
      in
      let exact_sum = List.fold_left ( +. ) 0.0 samples in
      close 0.5 && close 0.95 && close 0.99
      && Stats.count p2 = n
      && Float.abs (Stats.mean p2 -. (exact_sum /. float_of_int n)) <= 1e-6
      && Stats.min_value p2 = sorted.(0)
      && Stats.max_value p2 = sorted.(n - 1))

(* The first five observations are stored verbatim: quantiles are exact
   order statistics, not marker reads. *)
let test_p2_small_n_exact () =
  let p2 = Stats.create ~estimator:Stats.P2 () in
  List.iter (Stats.add p2) [ 9.0; 1.0; 5.0; 3.0; 7.0 ];
  Alcotest.(check (float 1e-9)) "median of five" 5.0 (Stats.quantile p2 0.5);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.quantile p2 0.0);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.quantile p2 1.0)

(* Merging two P² accumulators: counts, moments and extrema combine
   exactly; quantiles stay plausible (inside the merged extrema). *)
let test_p2_merge () =
  let a = Stats.create ~estimator:Stats.P2 () in
  let b = Stats.create ~estimator:Stats.P2 () in
  for i = 1 to 400 do
    Stats.add a (float_of_int i)
  done;
  for i = 401 to 1000 do
    Stats.add b (float_of_int i)
  done;
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 1000 (Stats.count m);
  Alcotest.(check (float 1e-6)) "mean" 500.5 (Stats.mean m);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value m);
  Alcotest.(check (float 1e-9)) "max" 1000.0 (Stats.max_value m);
  check_bool "merged estimator stays P2" true
    (Stats.estimator_kind m = Stats.P2);
  let p50 = Stats.quantile m 0.5 in
  check_bool "merged median within the merged range" true
    (p50 >= 1.0 && p50 <= 1000.0 && Float.abs (p50 -. 500.5) <= 100.0)

let suite =
  [
    ( "megaswarm.parity",
      List.map QCheck_alcotest.to_alcotest
        [ prop_shard_parity; prop_pair_lookahead_parity ]
      @ [
          Alcotest.test_case "megaswarm is deterministic" `Quick
            test_megaswarm_deterministic;
        ] );
    ( "megaswarm.lookahead",
      [
        Alcotest.test_case "zero lookahead rejected" `Quick
          test_zero_lookahead_rejected;
        Alcotest.test_case "zero per-pair lookahead rejected" `Quick
          test_zero_pair_lookahead_rejected;
      ] );
    ( "megaswarm.alloc",
      [
        Alcotest.test_case "sim stage under the words/event ceiling" `Quick
          test_alloc_budget;
      ] );
    ( "megaswarm.p2",
      List.map QCheck_alcotest.to_alcotest [ prop_p2_error_bound ]
      @ [
          Alcotest.test_case "first five observations are exact" `Quick
            test_p2_small_n_exact;
          Alcotest.test_case "merge combines moments exactly" `Quick
            test_p2_merge;
        ] );
  ]
