(* SWARM test layer: the dispatcher's hashed connection table against a
   reference model, demux integrity under arbitrary session churn, the
   MANTTS admission path, and a differential check that each Table-1
   application's synthesized stack delivers the same payload bytes as the
   matching static baseline over a lossless link. *)

open Adaptive_sim
open Adaptive_buf
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_baselines
open Adaptive_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Conntable vs a reference model *)

(* The model: an association from key to state, mirroring exactly the
   documented semantics of each update. *)
module Model = struct
  type state = Half | Open | Wait of Time.t

  type t = (int, state * int) Hashtbl.t (* key -> state, value *)

  let create () : t = Hashtbl.create 16

  let insert m ~key ~half_open v =
    Hashtbl.replace m key ((if half_open then Half else Open), v)

  let promote m key =
    match Hashtbl.find_opt m key with
    | Some (Half, v) -> Hashtbl.replace m key (Open, v)
    | _ -> ()

  let retire m ~key ~expiry =
    match Hashtbl.find_opt m key with
    | Some ((Half | Open), v) -> Hashtbl.replace m key (Wait expiry, v)
    | _ -> ()

  let remove m key =
    let present = Hashtbl.mem m key in
    Hashtbl.remove m key;
    present

  let sweep m ~now =
    let expired =
      Hashtbl.fold
        (fun key (st, _) acc ->
          match st with Wait e when e <= now -> key :: acc | _ -> acc)
        m []
    in
    List.iter (Hashtbl.remove m) expired;
    List.length expired

  let live m =
    Hashtbl.fold
      (fun _ (st, _) acc -> match st with Half | Open -> acc + 1 | Wait _ -> acc)
      m 0

  let half m =
    Hashtbl.fold
      (fun _ (st, _) acc -> match st with Half -> acc + 1 | _ -> acc)
      m 0

  let waiting m =
    Hashtbl.fold
      (fun _ (st, _) acc -> match st with Wait _ -> acc + 1 | _ -> acc)
      m 0

  let find m key = Hashtbl.find_opt m key
end

type table_op =
  | Op_insert of int * bool * int
  | Op_promote of int
  | Op_retire of int
  | Op_remove of int
  | Op_advance_sweep (* advance time past some expiries, then sweep *)
  | Op_find of int

let gen_table_ops =
  QCheck2.Gen.(
    let op =
      let* key = int_range 1 60 in
      let* pick = int_range 0 9 in
      let* v = int_range 0 1000 in
      return
        (match pick with
        | 0 | 1 | 2 -> Op_insert (key, pick = 0, v)
        | 3 -> Op_promote key
        | 4 -> Op_retire key
        | 5 -> Op_remove key
        | 6 -> Op_advance_sweep
        | _ -> Op_find key)
    in
    list_size (int_range 50 400) op)

let prop_conntable_matches_model =
  QCheck2.Test.make ~name:"conntable agrees with reference model" ~count:300
    gen_table_ops (fun ops ->
      let t = Conntable.create ~initial_capacity:4 () in
      let m = Model.create () in
      let now = ref Time.zero in
      let ok = ref true in
      let agree key =
        let slot = Conntable.find t key in
        match (Model.find m key, slot) with
        | None, -1 -> true
        | None, _ | Some _, -1 -> false
        | Some (st, v), slot -> (
          match (st, Conntable.slot_state t slot) with
          | Model.Half, Conntable.Half_open | Model.Open, Conntable.Open ->
            Conntable.slot_value t slot = v
            && Conntable.find_live t key = Some v
          | Model.Wait _, Conntable.Time_wait -> Conntable.find_live t key = None
          | _ -> false)
      in
      List.iter
        (fun op ->
          (match op with
          | Op_insert (key, half_open, v) ->
            Conntable.insert t ~key ~half_open v;
            Model.insert m ~key ~half_open v
          | Op_promote key ->
            Conntable.promote t key;
            Model.promote m key
          | Op_retire key ->
            let expiry = Time.add !now (Time.ms 10) in
            Conntable.retire t ~key ~expiry;
            Model.retire m ~key ~expiry
          | Op_remove key ->
            if Conntable.remove t key <> Model.remove m key then ok := false
          | Op_advance_sweep ->
            now := Time.add !now (Time.ms 15);
            if Conntable.sweep t ~now:!now <> Model.sweep m ~now:!now then
              ok := false
          | Op_find key -> if not (agree key) then ok := false);
          if
            Conntable.live_count t <> Model.live m
            || Conntable.half_open_count t <> Model.half m
            || Conntable.time_wait_count t <> Model.waiting m
          then ok := false)
        ops;
      (* Every key agrees at the end, and live iteration is consistent. *)
      for key = 1 to 60 do
        if not (agree key) then ok := false
      done;
      let iterated = ref 0 in
      Conntable.iter_live (fun _ _ -> incr iterated) t;
      !ok && !iterated = Conntable.live_count t)

(* ------------------------------------------------------------------ *)
(* Demux integrity under churn: arbitrary interleavings of active opens,
   closes, data and late segments across >= 100 endpoints never mis-route
   a payload and never leak a table entry. *)

type churn_op =
  | Ch_open of int (* slot *)
  | Ch_send of int
  | Ch_close of int
  | Ch_late of int (* re-inject a data segment for a retired conn *)

let gen_churn =
  QCheck2.Gen.(
    let op =
      let* slot = int_range 0 119 in
      let* pick = int_range 0 7 in
      return
        (match pick with
        | 0 | 1 | 2 -> Ch_open slot
        | 3 | 4 -> Ch_send slot
        | 5 | 6 -> Ch_close slot
        | _ -> Ch_late slot)
    in
    pair (int_range 1 10_000) (list_size (int_range 150 400) op))

let run_churn (seed, ops) =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  Topology.set_symmetric_route topo ~a ~b
    [
      Link.create ~bandwidth_bps:100e6 ~propagation:(Time.us 50) ~queue_pkts:2048
        ~mtu:1500 ();
    ];
  let net = Network.create engine ~rng:(Rng.create seed) topo in
  let unites = Unites.create engine in
  (* conn id -> the unique marker its payloads must carry *)
  let expected : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let misroutes = ref 0 and deliveries = ref 0 in
  let record_delivery session del =
    incr deliveries;
    match del.Session.payload with
    | None -> incr misroutes (* every send in this test carries bytes *)
    | Some msg -> (
      match Hashtbl.find_opt expected (Session.id session) with
      | Some marker when Msg.data_to_string msg = marker -> ()
      | Some _ | None -> incr misroutes)
  in
  let mk addr =
    let d =
      Session.Dispatcher.create net ~addr ~host:(Host.zero_cost engine) ~unites
    in
    Session.Dispatcher.set_acceptor d (fun ~src:_ ~conn ~proposal ->
        match proposal with
        | None ->
          (* A data segment with no connection context must not fabricate
             a session. *)
          Session.Dispatcher.Reject
        | Some scs ->
          Session.Dispatcher.Accept
            {
              scs;
              name = Printf.sprintf "acc-%d" conn;
              on_deliver = Some record_delivery;
              on_signal = None;
            });
    d
  in
  let da = mk a and db = mk b in
  let sessions = Array.make 120 None in
  let retired = ref [] in
  let scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Sliding_window { window = 8 };
      recv_buffer_segments = 16;
      segment_bytes = 256;
      initial_rto = Time.ms 40;
    }
  in
  let t = ref Time.zero in
  List.iteri
    (fun i op ->
      t := Time.add !t (Time.ms ((i mod 7) + 1));
      let at = !t in
      ignore
        (Engine.schedule engine ~at (fun () ->
             match op with
             | Ch_open slot ->
               if sessions.(slot) = None then begin
                 let marker = Printf.sprintf "slot-%d-op-%d" slot i in
                 let s = Session.connect da ~peers:[ b ] ~scs () in
                 Hashtbl.replace expected (Session.id s) marker;
                 sessions.(slot) <- Some (s, marker)
               end
             | Ch_send slot -> (
               match sessions.(slot) with
               | Some (s, marker) when Session.state s <> Session.Closed ->
                 Session.send s
                   ~bytes:(String.length marker)
                   ~payload:(Msg.of_string marker) ()
               | Some _ | None -> ())
             | Ch_close slot -> (
               match sessions.(slot) with
               | Some (s, _) ->
                 retired := Session.id s :: !retired;
                 Session.close s;
                 sessions.(slot) <- None
               | None -> ())
             | Ch_late slot -> (
               (* A stale segment for some torn-down connection arrives at
                  the responder. *)
               match !retired with
               | [] -> ()
               | conns ->
                 let conn = List.nth conns (slot mod List.length conns) in
                 Network.send net ~src:a ~dst:b ~bytes:64
                   (Pdu.Data
                      {
                        conn;
                        seg = Pdu.seg ~seq:9999 ~bytes:64 ();
                        retransmit = true;
                        tx_stamp = Time.zero;
                      })))))
    ops;
  Engine.run engine ~until:(Time.sec 30.0);
  (* Quiesce: close everything still open, then run past the time-wait
     quarantine so the sweeper reclaims every entry. *)
  Array.iter
    (function Some (s, _) -> Session.close s | None -> ())
    sessions;
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 30.0));
  let leaked d =
    Session.Dispatcher.session_count d
    + Session.Dispatcher.half_open_count d
    + Session.Dispatcher.time_wait_count d
  in
  (!misroutes, !deliveries, leaked da + leaked db)

let prop_churn_no_misroute_no_leak =
  QCheck2.Test.make
    ~name:"churn over 120 endpoints: no mis-routed payload, no table leak"
    ~count:40 gen_churn (fun case ->
      let misroutes, _deliveries, leaked = run_churn case in
      misroutes = 0 && leaked = 0)

(* ------------------------------------------------------------------ *)
(* Admission control units *)

let overload_stack () =
  let stack = Adaptive.create_stack ~seed:11 () in
  let a = Adaptive.add_host stack "a" and b = Adaptive.add_host stack "b" in
  Adaptive.connect_hosts stack a b (Profiles.lan_path ());
  (stack, a, b)

let test_admission_thresholds () =
  let stack, a, b = overload_stack () in
  let m = Adaptive.mantts stack in
  Mantts.set_admission m
    (Some
       { Mantts.soft_sessions = 2; hard_sessions = 4; max_cpu_backlog = Time.sec 1.0 });
  let acd = Acd.make ~participants:[ b ] ~qos:Qos.default () in
  let decisions =
    List.init 6 (fun _ ->
        match Mantts.try_open_session m ~src:a ~acd () with
        | Ok (_, d) -> d
        | Error _ -> Mantts.Refused)
  in
  check_bool "first two admitted plainly" true
    (List.filteri (fun i _ -> i < 2) decisions
    = [ Mantts.Admitted; Mantts.Admitted ]);
  check_bool "next two degraded" true
    (List.filteri (fun i _ -> i >= 2 && i < 4) decisions
    = [ Mantts.Degraded; Mantts.Degraded ]);
  check_bool "past the hard limit refused" true
    (List.filteri (fun i _ -> i >= 4) decisions
    = [ Mantts.Refused; Mantts.Refused ]);
  let u = stack.Adaptive.unites in
  check_int "refusals counted"
    2
    (int_of_float (Unites.total u ~session:Unites.swarm_session Unites.Sessions_refused));
  check_int "degradations counted"
    2
    (int_of_float
       (Unites.total u ~session:Unites.swarm_session Unites.Sessions_degraded))

let test_degrade_preserves_semantics () =
  List.iter
    (fun name ->
      match Tko.Templates.find name with
      | None -> Alcotest.failf "template %s not found" name
      | Some (_, scs) ->
        let d = Mantts.degrade_scs scs in
        check_bool "reliability preserved" true
          (d.Scs.recovery = scs.Scs.recovery);
        check_bool "ordering preserved" true (d.Scs.ordering = scs.Scs.ordering);
        check_bool "duplicate policy preserved" true
          (d.Scs.duplicates = scs.Scs.duplicates);
        check_bool "delivery semantics preserved" true
          (d.Scs.delivery = scs.Scs.delivery);
        check_bool "buffer not larger" true
          (d.Scs.recv_buffer_segments <= scs.Scs.recv_buffer_segments))
    Tko.Templates.names

(* ------------------------------------------------------------------ *)
(* Differential: each Table-1 application's MANTTS stack vs the matching
   static baseline delivers the identical payload bytes over a lossless
   link. *)

let baseline_for app =
  match Workloads.expected_tsc app with
  | Tsc.Interactive_isochronous | Tsc.Distributional_isochronous ->
    Baselines.Udp_like
  | Tsc.Realtime_non_isochronous -> Baselines.Tp4_like
  | Tsc.Non_realtime_non_isochronous -> Baselines.Tcp_like

(* Fixed message schedule: 20 small messages, paced so even the bare
   datagram baseline cannot overrun a lossless LAN queue. *)
let messages app =
  List.init 20 (fun i -> Printf.sprintf "%s:%02d:payload" (Workloads.name app) i)

let drive_and_collect ~open_session app =
  let stack = Adaptive.create_stack ~seed:99 () in
  let a = Adaptive.add_host stack "a" and b = Adaptive.add_host stack "b" in
  Adaptive.connect_hosts stack a b (Profiles.lan_path ());
  let got = ref [] in
  Mantts.set_app_handler
    (Mantts.entity (Adaptive.mantts stack) b)
    (fun _ del ->
      match del.Session.payload with
      | Some msg -> got := Msg.data_to_string msg :: !got
      | None -> ());
  let session = open_session stack a b in
  List.iteri
    (fun i text ->
      ignore
        (Engine.schedule stack.Adaptive.engine
           ~at:(Time.ms (10 + (i * 5)))
           (fun () ->
             Session.send session
               ~bytes:(String.length text)
               ~payload:(Msg.of_string text) ())))
    (messages app);
  Adaptive.run stack ~until:(Time.sec 20.0);
  Session.close session;
  Adaptive.run stack ~until:(Time.sec 40.0);
  List.sort compare !got

let test_differential_vs_baselines () =
  List.iter
    (fun app ->
      let adaptive =
        drive_and_collect app ~open_session:(fun stack a b ->
            let acd =
              Acd.make ~participants:[ b ] ~qos:(Workloads.qos app) ()
            in
            Mantts.open_session (Adaptive.mantts stack) ~src:a ~acd ())
      in
      let baseline =
        drive_and_collect app ~open_session:(fun stack a b ->
            Baselines.connect
              (Mantts.dispatcher (Mantts.entity (Adaptive.mantts stack) a))
              ~peers:[ b ] (baseline_for app))
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: adaptive and %s deliver identical payloads"
           (Workloads.name app)
           (Baselines.name (baseline_for app)))
        baseline adaptive;
      check_bool
        (Printf.sprintf "%s: all 20 messages arrived" (Workloads.name app))
        true
        (List.length adaptive = 20))
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Swarm workload determinism (fast case; the bench does the full scale) *)

let test_swarm_deterministic () =
  let cfg = Adaptive_workloads.Swarm.default_config ~sessions:120 ~seed:5 in
  let o1 = Adaptive_workloads.Swarm.run cfg in
  let o2 = Adaptive_workloads.Swarm.run cfg in
  check_bool "same seed, same digest" true
    (o1.Adaptive_workloads.Swarm.digest = o2.Adaptive_workloads.Swarm.digest);
  check_int "all offered opens admitted without a policy"
    o1.Adaptive_workloads.Swarm.offered o1.Adaptive_workloads.Swarm.admitted;
  check_bool "demux stayed O(1) on average" true
    (o1.Adaptive_workloads.Swarm.demux_probes_mean < 2.0)

let suite =
  [
    ( "swarm.conntable",
      List.map QCheck_alcotest.to_alcotest [ prop_conntable_matches_model ] );
    ( "swarm.churn",
      List.map QCheck_alcotest.to_alcotest [ prop_churn_no_misroute_no_leak ] );
    ( "swarm.admission",
      [
        Alcotest.test_case "thresholds: admit, degrade, refuse" `Quick
          test_admission_thresholds;
        Alcotest.test_case "degrade_scs preserves delivery semantics" `Quick
          test_degrade_preserves_semantics;
      ] );
    ( "swarm.differential",
      [
        Alcotest.test_case "Table-1 apps vs static baselines" `Slow
          test_differential_vs_baselines;
      ] );
    ( "swarm.workload",
      [
        Alcotest.test_case "swarm workload is deterministic" `Quick
          test_swarm_deterministic;
      ] );
  ]
