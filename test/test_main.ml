(* Aggregated test runner for the ADAPTIVE reproduction. *)

let () =
  Alcotest.run "adaptive"
    (Test_sim.suite @ Test_buf.suite @ Test_net.suite @ Test_mech.suite
   @ Test_core.suite @ Test_session.suite @ Test_mantts.suite
   @ Test_workloads.suite @ Test_payload.suite @ Test_random.suite
   @ Test_integration.suite @ Test_chaos.suite @ Test_fleet.suite
   @ Test_swarm.suite @ Test_megaswarm.suite @ Test_steer.suite
   @ Test_golden.suite)
