(* Tests for the network substrate: Link, Topology, Network, Congestion,
   Profiles. *)

open Adaptive_sim
open Adaptive_net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_link ?(bw = 8e6) ?(prop = Time.ms 1) ?(queue = 4) ?(ber = 0.0) ?(mtu = 1500) ()
    =
  Link.create ~bandwidth_bps:bw ~propagation:prop ~queue_pkts:queue ~ber ~mtu ()

(* ------------------------------------------------------------------ Link *)

let test_link_timing () =
  let link = mk_link () in
  let rng = Rng.create 1 in
  (* 1000 bytes at 8 Mb/s = 1 ms serialization + 1 ms propagation. *)
  match Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:1000 () with
  | Link.Transmitted { departs; corrupted } ->
    check_int "departure" (Time.ms 2) departs;
    check_bool "clean" false corrupted
  | Link.Dropped_queue | Link.Dropped_down -> Alcotest.fail "unexpected drop"

let test_link_fifo_backlog () =
  let link = mk_link () in
  let rng = Rng.create 1 in
  let d1 =
    match Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:1000 () with
    | Link.Transmitted { departs; _ } -> departs
    | _ -> Alcotest.fail "drop"
  in
  let d2 =
    match Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:1000 () with
    | Link.Transmitted { departs; _ } -> departs
    | _ -> Alcotest.fail "drop"
  in
  check_int "second queues behind first" (Time.ms 1) (Time.diff d2 d1)

let test_link_queue_overflow () =
  let link = mk_link ~queue:2 () in
  let rng = Rng.create 1 in
  let dropped = ref 0 and sent = ref 0 in
  for _ = 1 to 10 do
    match Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:1000 () with
    | Link.Transmitted _ -> incr sent
    | Link.Dropped_queue -> incr dropped
    | Link.Dropped_down -> Alcotest.fail "down?"
  done;
  check_bool "some dropped" true (!dropped > 0);
  check_bool "some sent" true (!sent >= 2);
  let stats = Link.stats link in
  check_int "stats agree" !dropped stats.Link.dropped_queue

let test_link_failure () =
  let link = mk_link () in
  let rng = Rng.create 1 in
  Link.fail link;
  check_bool "down" false (Link.is_up link);
  (match Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:100 () with
  | Link.Dropped_down -> ()
  | Link.Transmitted _ | Link.Dropped_queue -> Alcotest.fail "expected Dropped_down");
  Link.repair link;
  check_bool "up" true (Link.is_up link);
  match Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:100 () with
  | Link.Transmitted _ -> ()
  | Link.Dropped_down | Link.Dropped_queue -> Alcotest.fail "expected delivery"

let test_link_background_scales_rate () =
  let fast = mk_link () and slow = mk_link () in
  Link.set_background_utilization slow 0.5;
  let rng = Rng.create 1 in
  let departs l =
    match Link.transmit l ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:1000 () with
    | Link.Transmitted { departs; _ } -> departs
    | _ -> Alcotest.fail "drop"
  in
  let df = departs fast and ds = departs slow in
  (* Half the bandwidth -> double the serialization (1 ms -> 2 ms). *)
  check_int "fast" (Time.ms 2) df;
  check_int "slow" (Time.ms 3) ds;
  check_bool "clamped" true (Link.set_background_utilization slow 5.0;
                             Link.background_utilization slow <= 0.98)

let test_link_corruption () =
  let link = mk_link ~ber:1.0 () in
  let rng = Rng.create 1 in
  match Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:10 () with
  | Link.Transmitted { corrupted; _ } ->
    check_bool "ber=1 always corrupts" true corrupted;
    check_int "counted" 1 (Link.stats link).Link.corrupted
  | _ -> Alcotest.fail "drop"

let test_link_estimates () =
  let link = mk_link () in
  let rng = Rng.create 1 in
  check_int "idle queue delay" 0 (Link.queue_delay_estimate link ~now:Time.zero);
  ignore (Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:1000 ());
  check_bool "busy queue delay" true (Link.queue_delay_estimate link ~now:Time.zero > 0);
  Link.set_background_utilization link 0.4;
  check_bool "estimate includes background" true
    (Link.utilization_estimate link ~now:Time.zero >= 0.4)

let test_link_reset_stats () =
  let link = mk_link () in
  let rng = Rng.create 1 in
  ignore (Link.transmit link ~rng ~now:Time.zero ~arrival:Time.zero ~bytes:500 ());
  Link.reset_stats link;
  check_int "accepted reset" 0 (Link.stats link).Link.accepted

(* -------------------------------------------------------------- Topology *)

let test_topology_hosts_routes () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  Alcotest.(check string) "name" "a" (Topology.host_name topo a);
  Alcotest.(check string) "name" "b" (Topology.host_name topo b);
  Alcotest.(check (list (pair int string))) "hosts" [ (a, "a"); (b, "b") ]
    (Topology.hosts topo);
  check_bool "no route yet" true (Topology.route topo ~src:a ~dst:b = None);
  let l1 = mk_link ~mtu:1500 () and l2 = mk_link ~mtu:900 ~prop:(Time.ms 5) () in
  Topology.set_symmetric_route topo ~a ~b [ l1; l2 ];
  check_int "fwd hops" 2 (List.length (Option.get (Topology.route topo ~src:a ~dst:b)));
  (* The reverse route mirrors the forward hops in reverse order with
     fresh full-duplex twins. *)
  let reverse = Option.get (Topology.route topo ~src:b ~dst:a) in
  check_int "reverse hops" 2 (List.length reverse);
  check_bool "reverse order mirrored" true
    (List.map Link.propagation reverse = [ Time.ms 5; Time.ms 1 ]);
  check_bool "reverse links are distinct objects" true
    (List.for_all (fun l -> not (List.memq l [ l1; l2 ])) reverse);
  check_int "path mtu" 900 (Option.get (Topology.path_mtu topo ~src:a ~dst:b));
  check_int "path prop" (Time.ms 6)
    (Option.get (Topology.path_propagation topo ~src:a ~dst:b));
  Alcotest.(check (float 1.0)) "bottleneck" 8e6
    (Option.get (Topology.bottleneck_bps topo ~src:a ~dst:b));
  check_int "distinct links incl mirrors" 4 (List.length (Topology.links topo));
  Alcotest.check_raises "empty route" (Invalid_argument "Topology.set_route: empty route")
    (fun () -> Topology.set_route topo ~src:a ~dst:b []);
  Alcotest.check_raises "unknown host" Not_found (fun () ->
      ignore (Topology.host_name topo 99))

let test_topology_route_switch () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  let terrestrial = mk_link () and satellite = mk_link ~prop:(Time.ms 280) () in
  Topology.set_route topo ~src:a ~dst:b [ terrestrial ];
  check_int "before" (Time.ms 1) (Option.get (Topology.path_propagation topo ~src:a ~dst:b));
  Topology.set_route topo ~src:a ~dst:b [ satellite ];
  check_int "after" (Time.ms 280)
    (Option.get (Topology.path_propagation topo ~src:a ~dst:b))

(* --------------------------------------------------------------- Network *)

type net_fixture = {
  engine : Engine.t;
  topo : Topology.t;
  net : string Network.t;
  a : Network.addr;
  b : Network.addr;
  c : Network.addr;
  shared : Link.t;
  tail_b : Link.t;
  tail_c : Link.t;
}

let make_net () =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" in
  let b = Topology.add_host topo "b" in
  let c = Topology.add_host topo "c" in
  let shared = mk_link () in
  let tail_b = mk_link () and tail_c = mk_link () in
  Topology.set_route topo ~src:a ~dst:b [ shared; tail_b ];
  Topology.set_route topo ~src:b ~dst:a [ tail_b; shared ];
  Topology.set_route topo ~src:a ~dst:c [ shared; tail_c ];
  let net = Network.create engine ~rng:(Rng.create 2) topo in
  { engine; topo; net; a; b; c; shared; tail_b; tail_c }

let test_network_unicast () =
  let f = make_net () in
  let got = ref [] in
  Network.attach f.net f.b (fun r -> got := r :: !got);
  Network.send f.net ~src:f.a ~dst:f.b ~bytes:1000 "hello";
  Engine.run f.engine;
  match !got with
  | [ r ] ->
    Alcotest.(check string) "payload" "hello" r.Network.payload;
    check_int "src" f.a r.Network.src;
    check_int "wire bytes" 1000 r.Network.wire_bytes;
    (* 2 hops x (1 ms serialization + 1 ms propagation) = 4 ms. *)
    check_int "arrival" (Time.ms 4) r.Network.received_at;
    check_int "sent at" Time.zero r.Network.sent_at;
    check_int "delivered count" 1 (Network.stats f.net).Network.delivered
  | _ -> Alcotest.fail "expected one delivery"

let test_network_drop_reasons () =
  let f = make_net () in
  (* No route: b -> c was never routed. *)
  Network.send f.net ~src:f.b ~dst:f.c ~bytes:100 "x";
  check_int "no-route drop" 1 (Network.stats f.net).Network.dropped_no_route;
  (* Oversized. *)
  Network.send f.net ~src:f.a ~dst:f.b ~bytes:20_000 "x";
  check_int "mtu drop" 1 (Network.stats f.net).Network.dropped_mtu;
  (* Down link. *)
  Link.fail f.shared;
  Network.send f.net ~src:f.a ~dst:f.b ~bytes:100 "x";
  check_int "down drop" 1 (Network.stats f.net).Network.dropped_down;
  Alcotest.check_raises "bad size" (Invalid_argument "Network.send: non-positive size")
    (fun () -> Network.send f.net ~src:f.a ~dst:f.b ~bytes:0 "x")

let test_network_detach () =
  let f = make_net () in
  let got = ref 0 in
  Network.attach f.net f.b (fun _ -> incr got);
  Network.detach f.net f.b;
  Network.send f.net ~src:f.a ~dst:f.b ~bytes:100 "x";
  Engine.run f.engine;
  check_int "no delivery after detach" 0 !got

let test_network_multicast_shared_link_once () =
  let f = make_net () in
  let got_b = ref 0 and got_c = ref 0 in
  Network.attach f.net f.b (fun _ -> incr got_b);
  Network.attach f.net f.c (fun _ -> incr got_c);
  Network.multicast f.net ~src:f.a ~dsts:[ f.b; f.c ] ~bytes:1000 "m";
  Engine.run f.engine;
  check_int "b received" 1 !got_b;
  check_int "c received" 1 !got_c;
  (* The shared first hop carried the packet once; the tails once each. *)
  check_int "shared once" 1 (Link.stats f.shared).Link.accepted;
  check_int "tail b once" 1 (Link.stats f.tail_b).Link.accepted;
  check_int "tail c once" 1 (Link.stats f.tail_c).Link.accepted;
  check_int "sent counted once" 1 (Network.stats f.net).Network.sent

let test_network_unicast_pair_pays_twice () =
  let f = make_net () in
  Network.attach f.net f.b (fun _ -> ());
  Network.attach f.net f.c (fun _ -> ());
  Network.send f.net ~src:f.a ~dst:f.b ~bytes:1000 "u";
  Network.send f.net ~src:f.a ~dst:f.c ~bytes:1000 "u";
  Engine.run f.engine;
  check_int "shared paid twice" 2 (Link.stats f.shared).Link.accepted

let test_network_path_state_and_rtt () =
  let f = make_net () in
  let hops = Network.path_state f.net ~src:f.a ~dst:f.b in
  check_int "two hops" 2 (List.length hops);
  List.iter (fun h -> check_bool "up" true h.Network.up) hops;
  check_bool "rtt estimate" true
    (Network.rtt_estimate f.net ~src:f.a ~dst:f.b ~bytes:1000 = Some (Time.ms 8));
  check_bool "unrouted rtt none" true
    (Network.rtt_estimate f.net ~src:f.b ~dst:f.c ~bytes:100 = None);
  check_int "unrouted path empty" 0
    (List.length (Network.path_state f.net ~src:f.b ~dst:f.c))

let test_network_reset_stats () =
  let f = make_net () in
  Network.attach f.net f.b (fun _ -> ());
  Network.send f.net ~src:f.a ~dst:f.b ~bytes:100 "x";
  Engine.run f.engine;
  Network.reset_stats f.net;
  check_int "reset" 0 (Network.stats f.net).Network.sent;
  check_int "links reset too" 0 (Link.stats f.shared).Link.accepted

(* ------------------------------------------------------------ Congestion *)

let test_congestion_phases () =
  let engine = Engine.create () in
  let link = mk_link () in
  Congestion.phases engine link [ (Time.ms 10, 0.5); (Time.ms 20, 0.1) ];
  Engine.run engine ~until:(Time.ms 15);
  Alcotest.(check (float 1e-9)) "first phase" 0.5 (Link.background_utilization link);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "second phase" 0.1 (Link.background_utilization link)

let test_congestion_constant () =
  let link = mk_link () in
  Congestion.constant link 0.33;
  Alcotest.(check (float 1e-9)) "set" 0.33 (Link.background_utilization link)

let test_congestion_random_walk_bounded () =
  let engine = Engine.create () in
  let link = mk_link () in
  let rng = Rng.create 4 in
  let timer =
    Congestion.random_walk engine rng link ~every:(Time.ms 1) ~step:0.3 ~floor:0.1
      ~ceiling:0.6
  in
  let ok = ref true in
  for _ = 1 to 200 do
    ignore (Engine.step engine);
    let u = Link.background_utilization link in
    if u < 0.1 -. 1e-9 || u > 0.6 +. 1e-9 then ok := false
  done;
  Engine.Timer.cancel timer;
  check_bool "stays within bounds" true !ok

let test_congestion_on_off () =
  let engine = Engine.create () in
  let link = mk_link () in
  let rng = Rng.create 5 in
  Congestion.on_off engine rng link ~busy:0.8 ~idle:0.05 ~mean_busy:(Time.ms 10)
    ~mean_idle:(Time.ms 10);
  let seen_busy = ref false and seen_idle = ref false in
  for _ = 1 to 100 do
    ignore (Engine.step engine);
    let u = Link.background_utilization link in
    if u > 0.7 then seen_busy := true;
    if u < 0.1 then seen_idle := true
  done;
  check_bool "visits busy" true !seen_busy;
  check_bool "visits idle" true !seen_idle

(* --------------------------------------------------------------- Routing *)

let test_routing_failover_and_failback () =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  let primary = [ mk_link () ] in
  let backup = [ mk_link ~prop:(Time.ms 280) () ] in
  let routing = Routing.create engine topo in
  Routing.set_candidates routing ~src:a ~dst:b [ primary; backup ];
  Alcotest.(check (option int)) "primary active" (Some 0)
    (Routing.active_index routing ~src:a ~dst:b);
  check_int "installed" (Time.ms 1)
    (Option.get (Topology.path_propagation topo ~src:a ~dst:b));
  (* Primary fails: next reevaluation moves to the backup. *)
  Link.fail (List.hd primary);
  Routing.reevaluate routing;
  Alcotest.(check (option int)) "backup active" (Some 1)
    (Routing.active_index routing ~src:a ~dst:b);
  check_int "satellite installed" (Time.ms 280)
    (Option.get (Topology.path_propagation topo ~src:a ~dst:b));
  check_int "one failover" 1 (Routing.failovers routing);
  (* Repair: traffic fails back. *)
  Link.repair (List.hd primary);
  Routing.reevaluate routing;
  Alcotest.(check (option int)) "failback" (Some 0)
    (Routing.active_index routing ~src:a ~dst:b);
  check_int "two changes logged" 2 (List.length (Routing.log routing))

let test_routing_monitor_timer () =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  let primary = [ mk_link () ] and backup = [ mk_link ~prop:(Time.ms 50) () ] in
  let routing = Routing.create engine topo in
  Routing.set_symmetric_candidates routing ~a ~b [ primary; backup ];
  let timer = Routing.monitor ~every:(Time.ms 100) routing in
  ignore (Engine.schedule engine ~at:(Time.ms 450) (fun () -> Link.fail (List.hd primary)));
  Engine.run engine ~until:(Time.sec 1.0);
  Engine.Timer.cancel timer;
  (* Forward direction failed over; the reverse (mirrored) path still has
     its own live links and stays. *)
  Alcotest.(check (option int)) "forward on backup" (Some 1)
    (Routing.active_index routing ~src:a ~dst:b);
  Alcotest.(check (option int)) "reverse untouched" (Some 0)
    (Routing.active_index routing ~src:b ~dst:a);
  check_bool "change after the failure instant" true
    (match Routing.log routing with (at, _, _, _) :: _ -> at >= Time.ms 450 | [] -> false)

let test_routing_all_down_keeps_first () =
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  let p1 = [ mk_link () ] and p2 = [ mk_link () ] in
  let routing = Routing.create engine topo in
  Routing.set_candidates routing ~src:a ~dst:b [ p1; p2 ];
  Link.fail (List.hd p1);
  Link.fail (List.hd p2);
  Routing.reevaluate routing;
  Alcotest.(check (option int)) "falls to most preferred" (Some 0)
    (Routing.active_index routing ~src:a ~dst:b);
  Alcotest.check_raises "empty candidates rejected"
    (Invalid_argument "Routing.set_candidates: empty candidate list or path") (fun () ->
      Routing.set_candidates routing ~src:a ~dst:b [])

let test_routing_random_flaps () =
  (* Property: under an arbitrary storm of link failures and repairs,
     traffic always follows the highest-priority fully-live candidate,
     and the failover counter matches the number of observed route
     changes (no hidden churn). *)
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" and b = Topology.add_host topo "b" in
  let candidates = [ [ mk_link () ]; [ mk_link () ]; [ mk_link () ] ] in
  let routing = Routing.create engine topo in
  Routing.set_candidates routing ~src:a ~dst:b candidates;
  let rng = Rng.create 2024 in
  let links = List.concat candidates in
  let best_live () =
    let rec scan i = function
      | [] -> None
      | cand :: rest ->
        if List.for_all Link.is_up cand then Some i else scan (i + 1) rest
    in
    scan 0 candidates
  in
  let current = ref (Option.get (Routing.active_index routing ~src:a ~dst:b)) in
  let observed_changes = ref 0 in
  for _ = 1 to 300 do
    let l = List.nth links (Rng.int rng (List.length links)) in
    if Rng.bool rng then Link.fail l else Link.repair l;
    Routing.reevaluate routing;
    let active = Option.get (Routing.active_index routing ~src:a ~dst:b) in
    (match best_live () with
    | Some i ->
      check_int "active is the best live candidate" i active;
      check_bool "installed route is that candidate" true
        (match Topology.route topo ~src:a ~dst:b with
        | Some hops -> hops == List.nth candidates i
        | None -> false)
    | None -> ());
    if active <> !current then begin
      incr observed_changes;
      current := active
    end
  done;
  check_int "failover count matches observed route changes" !observed_changes
    (Routing.failovers routing);
  (* Heal everything: traffic must fail back to the primary. *)
  List.iter Link.repair links;
  Routing.reevaluate routing;
  Alcotest.(check (option int)) "failback to primary after full heal" (Some 0)
    (Routing.active_index routing ~src:a ~dst:b)

(* -------------------------------------------------------------- Profiles *)

let test_profiles_speeds () =
  check_bool "ethernet < fddi" true
    (Link.bandwidth_bps (Profiles.ethernet ()) < Link.bandwidth_bps (Profiles.fddi ()));
  check_bool "fddi < atm155" true
    (Link.bandwidth_bps (Profiles.fddi ()) < Link.bandwidth_bps (Profiles.atm_155 ()));
  check_bool "atm155 < atm622" true
    (Link.bandwidth_bps (Profiles.atm_155 ()) < Link.bandwidth_bps (Profiles.atm_622 ()));
  check_int "ethernet mtu" 1500 (Link.mtu (Profiles.ethernet ()));
  check_int "fddi mtu" 4500 (Link.mtu (Profiles.fddi ()));
  check_int "smds mtu" 9188 (Link.mtu (Profiles.smds ()))

let test_profiles_fresh_links () =
  let a = Profiles.ethernet () and b = Profiles.ethernet () in
  check_bool "distinct state" true (a != b)

let test_profiles_paths () =
  check_int "lan is one hop" 1 (List.length (Profiles.lan_path ()));
  check_int "campus" 3 (List.length (Profiles.campus_path ()));
  check_int "internet" 5 (List.length (Profiles.internet_path ()));
  check_int "bisdn" 5 (List.length (Profiles.bisdn_path ()));
  check_int "satellite" 3 (List.length (Profiles.satellite_path ()));
  let sat_prop =
    List.fold_left
      (fun acc l -> Time.add acc (Link.propagation l))
      Time.zero (Profiles.satellite_path ())
  in
  check_bool "satellite dominates delay" true (sat_prop >= Time.ms 280)

let suite =
  [
    ( "net.link",
      [
        Alcotest.test_case "serialization timing" `Quick test_link_timing;
        Alcotest.test_case "FIFO backlog" `Quick test_link_fifo_backlog;
        Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
        Alcotest.test_case "failure and repair" `Quick test_link_failure;
        Alcotest.test_case "background load scales rate" `Quick
          test_link_background_scales_rate;
        Alcotest.test_case "corruption at ber=1" `Quick test_link_corruption;
        Alcotest.test_case "estimates" `Quick test_link_estimates;
        Alcotest.test_case "reset stats" `Quick test_link_reset_stats;
      ] );
    ( "net.topology",
      [
        Alcotest.test_case "hosts and routes" `Quick test_topology_hosts_routes;
        Alcotest.test_case "route switching" `Quick test_topology_route_switch;
      ] );
    ( "net.network",
      [
        Alcotest.test_case "unicast delivery and timing" `Quick test_network_unicast;
        Alcotest.test_case "drop accounting" `Quick test_network_drop_reasons;
        Alcotest.test_case "detach" `Quick test_network_detach;
        Alcotest.test_case "multicast pays shared links once" `Quick
          test_network_multicast_shared_link_once;
        Alcotest.test_case "n-unicast pays shared links n times" `Quick
          test_network_unicast_pair_pays_twice;
        Alcotest.test_case "path state and rtt estimate" `Quick
          test_network_path_state_and_rtt;
        Alcotest.test_case "reset stats" `Quick test_network_reset_stats;
      ] );
    ( "net.congestion",
      [
        Alcotest.test_case "scheduled phases" `Quick test_congestion_phases;
        Alcotest.test_case "constant" `Quick test_congestion_constant;
        Alcotest.test_case "random walk bounded" `Quick
          test_congestion_random_walk_bounded;
        Alcotest.test_case "on/off bursts" `Quick test_congestion_on_off;
      ] );
    ( "net.routing",
      [
        Alcotest.test_case "failover and failback" `Quick
          test_routing_failover_and_failback;
        Alcotest.test_case "monitor timer" `Quick test_routing_monitor_timer;
        Alcotest.test_case "all candidates down" `Quick test_routing_all_down_keeps_first;
        Alcotest.test_case "randomized flap storm" `Quick test_routing_random_flaps;
      ] );
    ( "net.profiles",
      [
        Alcotest.test_case "speed and mtu ladder" `Quick test_profiles_speeds;
        Alcotest.test_case "fresh links per call" `Quick test_profiles_fresh_links;
        Alcotest.test_case "standard paths" `Quick test_profiles_paths;
      ] );
  ]
