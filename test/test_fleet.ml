(* Tests for FLEET: the domain pool, order-preserving map, campaign
   grid, and the property the subsystem exists for — parallel runs are
   byte-identical to sequential ones. *)

open Adaptive_fleet
open Adaptive_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- pool *)

let test_pool_basic () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check_int "jobs recorded" 3 (Pool.jobs pool);
      let futs = List.init 20 (fun i -> Pool.submit pool (fun () -> i * i)) in
      let got = List.map Pool.await futs in
      check_bool "all results in submit order" true
        (got = List.init 20 (fun i -> i * i)))

let test_pool_sequential_inline () =
  (* jobs = 1 spawns no domain: the thunk runs inline at submit, on this
     very domain — provable through a shared ref without any locking. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let r = ref 0 in
      let f = Pool.submit pool (fun () -> r := 41; !r + 1) in
      check_int "ran at submit" 41 !r;
      check_int "await returns value" 42 (Pool.await f))

exception Boom of string

let test_pool_exception_propagation () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let good = Pool.submit pool (fun () -> "fine") in
      let bad = Pool.submit pool (fun () -> raise (Boom "task failed")) in
      Alcotest.(check string) "healthy task unaffected" "fine" (Pool.await good);
      (match Pool.await bad with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom msg ->
        Alcotest.(check string) "original exception payload" "task failed" msg);
      (* A failed task must not poison the pool. *)
      check_int "pool still serves" 7 (Pool.await (Pool.submit pool (fun () -> 7))))

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  let futs = List.init 8 (fun i -> Pool.submit pool (fun () -> i)) in
  Pool.shutdown pool;
  check_bool "queued work drained before join" true
    (List.map Pool.await futs = List.init 8 Fun.id);
  Pool.shutdown pool;  (* idempotent *)
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 0)))

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be positive") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

(* -------------------------------------------------------------- map *)

let test_map_order_preserving () =
  let input = Array.init 50 (fun i -> i) in
  let seq = Fleet.map ~jobs:1 (fun i -> i * 3) input in
  let par = Fleet.map ~jobs:4 (fun i -> i * 3) input in
  check_bool "parallel map equals sequential" true (seq = par);
  check_bool "order preserved" true (par = Array.init 50 (fun i -> i * 3))

let test_map_empty () =
  check_int "empty array maps to empty" 0
    (Array.length (Fleet.map ~jobs:4 (fun i -> i) [||]));
  check_bool "empty list maps to empty" true
    (Fleet.map_list ~jobs:4 (fun i -> i) [] = [])

(* -------------------------------------------------------- campaigns *)

let campaign seeds envs =
  {
    Fleet.name = "toy";
    seeds;
    envs;
    run = (fun ~seed ~env ~index -> (seed * 100) + (env * 10) + index);
  }

let test_campaign_grid_order () =
  let c = campaign [ 7; 8 ] [ 0; 1; 2 ] in
  check_int "task count" 6 (Fleet.task_count c);
  check_bool "seed-major, env-minor canonical order" true
    (Fleet.tasks c
    = [ (0, 7, 0); (1, 7, 1); (2, 7, 2); (3, 8, 0); (4, 8, 1); (5, 8, 2) ])

let test_campaign_parallel_equals_sequential () =
  let c = campaign [ 3; 5; 9 ] [ 0; 1 ] in
  let order = ref [] in
  let progress (r : (_, _) Fleet.task_result) =
    order := r.Fleet.t_index :: !order
  in
  let seq = Fleet.run_campaign ~jobs:1 c in
  let par = Fleet.run_campaign ~progress ~jobs:4 c in
  check_bool "results identical" true (seq = par);
  check_bool "progress fires in canonical order" true
    (List.rev !order = List.init 6 Fun.id)

let test_campaign_validation () =
  Alcotest.check_raises "empty environment grid rejected"
    (Invalid_argument "Fleet.run_campaign: no environments") (fun () ->
      ignore (Fleet.run_campaign ~jobs:1 (campaign [ 1 ] [])));
  Alcotest.check_raises "duplicate seeds rejected"
    (Invalid_argument "Fleet.run_campaign: duplicate seeds (tasks would be identical)")
    (fun () ->
      ignore (Fleet.run_campaign ~jobs:1 (campaign [ 4; 4 ] [ 0 ])));
  check_bool "empty seed list is an empty campaign" true
    (Fleet.run_campaign ~jobs:4 (campaign [] [ 0; 1 ]) = [])

let test_seeds_of () =
  let a = Fleet.seeds_of ~master:123 ~n:64 in
  check_int "requested count" 64 (List.length a);
  check_int "duplicate-free" 64 (List.length (List.sort_uniq compare a));
  check_bool "non-negative" true (List.for_all (fun s -> s >= 0) a);
  check_bool "reproducible" true (a = Fleet.seeds_of ~master:123 ~n:64);
  check_bool "master perturbs the list" true
    (a <> Fleet.seeds_of ~master:124 ~n:64)

(* -------------------------------------------------------- reduction *)

let test_combine_hashes () =
  let h = [ 1L; 2L; 3L ] in
  check_bool "deterministic" true
    (Fleet.combine_hashes h = Fleet.combine_hashes h);
  check_bool "order-sensitive" true
    (Fleet.combine_hashes h <> Fleet.combine_hashes [ 3L; 2L; 1L ]);
  check_bool "length-sensitive" true
    (Fleet.combine_hashes h <> Fleet.combine_hashes [ 1L; 2L ])

let test_check_identical () =
  let a = [ (0, "x"); (1, "y") ] in
  check_int "identical runs, no mismatch" 0
    (List.length (Fleet.check_identical a a));
  (match Fleet.check_identical a [ (0, "x"); (1, "z") ] with
  | [ (1, "y", "z") ] -> ()
  | _ -> Alcotest.fail "expected exactly the index-1 mismatch");
  (match Fleet.check_identical a [ (0, "x") ] with
  | [ (1, "y", "") ] -> ()
  | _ -> Alcotest.fail "missing index compares against the empty string")

(* ------------------------------------------ end-to-end determinism *)

(* The acceptance property: an e9-style chaos campaign run at jobs=4
   produces the same FNV-1a trace hashes, the same campaign digest and
   the same rendered UNITES reports as jobs=1 — bit for bit. *)
let soak_fingerprint report =
  let hashes = List.map (fun o -> o.Soak.o_hash) report.Soak.r_outcomes in
  let reports =
    List.mapi (fun i o -> (i, o.Soak.o_unites)) report.Soak.r_outcomes
  in
  (Fleet.combine_hashes hashes, reports)

let test_soak_parallel_determinism () =
  let run jobs = Soak.soak_par ~jobs ~seed:4242 ~schedules:6 () in
  let seq = run 1 and par = run 4 in
  check_int "same run count" seq.Soak.r_runs par.Soak.r_runs;
  let seq_digest, seq_reports = soak_fingerprint seq in
  let par_digest, par_reports = soak_fingerprint par in
  Alcotest.(check int64) "campaign digests identical" seq_digest par_digest;
  check_int "every UNITES report byte-identical" 0
    (List.length (Fleet.check_identical seq_reports par_reports));
  check_bool "outcome streams identical" true
    (List.map2
       (fun a b ->
         a.Soak.o_seed = b.Soak.o_seed
         && a.Soak.o_hash = b.Soak.o_hash
         && a.Soak.o_delivered = b.Soak.o_delivered
         && a.Soak.o_injected = b.Soak.o_injected
         && a.Soak.o_events = b.Soak.o_events)
       seq.Soak.r_outcomes par.Soak.r_outcomes
    |> List.for_all Fun.id)

let test_replicate_par_equals_replicate () =
  let open Adaptive_core in
  let f ~seed = float_of_int (seed * seed) +. 0.125 in
  let seeds = List.init 9 (fun i -> 100 + i) in
  let seq = Lab.replicate ~seeds f in
  let par = Lab.replicate_par ~jobs:4 ~seeds f in
  (* Bit-identical, not approximately equal: the parallel reducer folds
     in seed order, so even float summation order matches. *)
  check_bool "summary bit-identical" true (seq = par)

let suite =
  [
    ( "fleet.pool",
      [
        Alcotest.test_case "submit/await across domains" `Quick test_pool_basic;
        Alcotest.test_case "jobs=1 runs inline" `Quick
          test_pool_sequential_inline;
        Alcotest.test_case "task exceptions re-raised at await" `Quick
          test_pool_exception_propagation;
        Alcotest.test_case "shutdown drains, joins, is idempotent" `Quick
          test_pool_shutdown;
        Alcotest.test_case "non-positive jobs rejected" `Quick
          test_pool_invalid_jobs;
      ] );
    ( "fleet.map",
      [
        Alcotest.test_case "parallel map preserves input order" `Quick
          test_map_order_preserving;
        Alcotest.test_case "empty input" `Quick test_map_empty;
      ] );
    ( "fleet.campaign",
      [
        Alcotest.test_case "canonical seed-major grid" `Quick
          test_campaign_grid_order;
        Alcotest.test_case "jobs=4 equals jobs=1, progress ordered" `Quick
          test_campaign_parallel_equals_sequential;
        Alcotest.test_case "empty envs and duplicate seeds rejected" `Quick
          test_campaign_validation;
        Alcotest.test_case "seeds_of is spread and reproducible" `Quick
          test_seeds_of;
      ] );
    ( "fleet.reduce",
      [
        Alcotest.test_case "hash folding" `Quick test_combine_hashes;
        Alcotest.test_case "report comparison" `Quick test_check_identical;
      ] );
    ( "fleet.determinism",
      [
        Alcotest.test_case
          "chaos campaign: jobs=4 byte-identical to jobs=1" `Slow
          test_soak_parallel_determinism;
        Alcotest.test_case "Lab.replicate_par bit-identical to replicate"
          `Quick test_replicate_par_equals_replicate;
      ] );
  ]
