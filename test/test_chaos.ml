(* Tests for the chaos subsystem: schedule generation, replay
   determinism, the invariant oracles and the shrinker. *)

open Adaptive_sim
open Adaptive_core
open Adaptive_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------- schedules *)

let test_schedule_deterministic () =
  let draw () =
    Fault.random_schedule ~rng:(Rng.create 99) ()
  in
  let a = draw () and b = draw () in
  check_int "same length" (List.length a) (List.length b);
  check_bool "identical" true (a = b)

let test_schedule_properties () =
  let rng = Rng.create 7 in
  for _ = 1 to 20 do
    let first = Time.ms 1500 and last = Time.sec 12.0 in
    let s = Fault.random_schedule ~rng:(Rng.split rng) ~first ~last () in
    List.iter
      (fun (f : Fault.fault) ->
        check_bool "start in window" true (f.Fault.start > first && f.Fault.start <= last);
        check_bool "duration floor" true (f.Fault.duration >= Time.ms 200);
        check_bool "duration cap" true
          (f.Fault.duration
          <= (if f.Fault.cls = Fault.Partition then Time.ms 1500 else Time.ms 2500));
        check_bool "intensity in [0,1)" true
          (f.Fault.intensity >= 0.0 && f.Fault.intensity < 1.0))
      s;
    let sorted = List.sort (fun a b -> compare a.Fault.start b.Fault.start) s in
    check_bool "sorted by start" true
      (List.map (fun f -> f.Fault.start) s
      = List.map (fun f -> f.Fault.start) sorted)
  done

let test_schedule_of_seed_stable () =
  let a = Soak.schedule_of_seed ~env:Soak.Campus ~seed:11 in
  let b = Soak.schedule_of_seed ~env:Soak.Campus ~seed:11 in
  let c = Soak.schedule_of_seed ~env:Soak.Internet ~seed:11 in
  check_bool "same (seed, env) -> same schedule" true (a = b);
  check_bool "env perturbs the draw" true (a <> c)

(* ------------------------------------------------------ determinism *)

let test_replay_determinism () =
  let run () = Soak.run_one ~env:Soak.Campus ~seed:4242 () in
  let a = run () and b = run () in
  check_bool "no violations" true (Soak.ok a && Soak.ok b);
  check_bool "same schedule" true (a.Soak.o_schedule = b.Soak.o_schedule);
  Alcotest.(check int64) "same trace hash" a.Soak.o_hash b.Soak.o_hash;
  check_int "same delivery count" a.Soak.o_delivered b.Soak.o_delivered;
  check_int "same faults injected" a.Soak.o_injected b.Soak.o_injected

(* --------------------------------------------------------- oracles *)

let mk_checker () =
  let engine = Engine.create () in
  let unites = Unites.create engine in
  Invariant.create ~engine ~unites ()

let observe c ?(ordered = true) ?(reliable = true) ?(detected = true)
    ?(damaged = false) seq =
  Invariant.observe c ~label:"s" ~key:1 ~ordered ~reliable ~detected
    ~at:Time.zero ~seq ~damaged

let kinds c = List.map (fun v -> v.Invariant.kind) (Invariant.violations c)

let test_oracle_clean_stream () =
  let c = mk_checker () in
  List.iter (observe c) [ 0; 1; 2; 3 ];
  check_int "no violations" 0 (List.length (Invariant.violations c))

let test_oracle_duplicate () =
  let c = mk_checker () in
  List.iter (observe c) [ 0; 1; 1 ];
  check_bool "duplicate flagged" true (kinds c = [ Invariant.Duplicate_delivery ])

let test_oracle_out_of_order () =
  let c = mk_checker () in
  List.iter (observe c) [ 0; 1; 2; 1 ];
  check_bool "regression flagged" true
    (List.mem Invariant.Out_of_order (kinds c))

let test_oracle_gap () =
  let c = mk_checker () in
  List.iter (observe c) [ 0; 1; 4 ];
  check_bool "gap flagged" true (kinds c = [ Invariant.Delivery_gap ])

let test_oracle_first_seq () =
  let c = mk_checker () in
  observe c 3;
  check_bool "nonzero first seq flagged" true (kinds c = [ Invariant.Delivery_gap ])

let test_oracle_unreliable_gaps_allowed () =
  let c = mk_checker () in
  List.iter (observe c ~reliable:false) [ 2; 5; 9 ];
  check_int "gaps tolerated for unreliable stream" 0
    (List.length (Invariant.violations c));
  (* Once unreliable, a later reliable segue must not re-arm gap checks. *)
  observe c ~reliable:true 20;
  check_int "no retroactive gap check after segue" 0
    (List.length (Invariant.violations c))

let test_oracle_undetected_corruption () =
  let c = mk_checker () in
  observe c ~damaged:true ~detected:true 0;
  check_bool "damaged despite detection flagged" true
    (kinds c = [ Invariant.Undetected_corruption ]);
  let c2 = mk_checker () in
  observe c2 ~damaged:true ~detected:false 0;
  check_int "damage without detection configured is allowed" 0
    (List.length (Invariant.violations c2))

(* --------------------------------------------------------- liveness *)

(* A two-host stack over one slow link: a single Link_down fault heals,
   and [kill_after_heal] then fails the link permanently from outside the
   injector.  Every injected fault is healed, the sender holds a backlog,
   yet nothing is ever delivered again — the genuine wedge the liveness
   oracle exists to catch.  Without the kill the transfer recovers after
   RTO backoff and the same oracle must stay silent (exoneration). *)
let run_liveness ~kill_after_heal =
  let open Adaptive_net in
  let open Adaptive_mech in
  let engine = Engine.create () in
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" in
  let b = Topology.add_host topo "b" in
  let link =
    Link.create ~bandwidth_bps:1e6 ~propagation:(Time.us 50) ~queue_pkts:64
      ~mtu:1500 ()
  in
  Topology.set_symmetric_route topo ~a ~b [ link ];
  let net = Network.create engine ~rng:(Rng.create 5) topo in
  let unites = Unites.create engine in
  let scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Sliding_window { window = 16 };
      recovery = Params.Go_back_n;
      reporting = Params.Cumulative_ack { delay = Time.ms 1 };
      recv_buffer_segments = 32;
      segment_bytes = 1000;
      initial_rto = Time.ms 50;
    }
  in
  let mk_disp addr =
    let disp =
      Session.Dispatcher.create net ~addr ~host:(Host.zero_cost engine) ~unites
    in
    Session.Dispatcher.set_acceptor disp (fun ~src:_ ~conn:_ ~proposal ->
        let scs = match proposal with Some proposed -> proposed | None -> scs in
        Session.Dispatcher.Accept
          { scs; name = "acc"; on_deliver = None; on_signal = None });
    disp
  in
  let disp_a = mk_disp a and disp_b = mk_disp b in
  let checker =
    Invariant.create ~engine ~unites ~liveness_bound:(Time.ms 500) ()
  in
  Invariant.attach_dispatcher checker disp_a;
  Invariant.attach_dispatcher checker disp_b;
  let s = Session.connect disp_a ~peers:[ b ] ~scs () in
  Invariant.track_sender checker ~label:"wedge" s;
  Session.send s ~bytes:500_000 ();
  let env =
    { Fault.links = [ link ]; tail_links = []; hosts = []; routing = None }
  in
  let schedule =
    [
      {
        Fault.cls = Fault.Link_down;
        start = Time.ms 300;
        duration = Time.ms 200;
        target = 0;
        intensity = 0.5;
      };
    ]
  in
  let inj = Fault.install ~engine ~unites env schedule in
  Invariant.set_injector checker inj;
  Invariant.start checker;
  (* 2 ms after the heal: no segment can transit the 8 ms-per-packet link
     in between, so the heal's watch never sees a delivery. *)
  if kill_after_heal then
    ignore (Engine.schedule engine ~at:(Time.ms 502) (fun () -> Link.fail link));
  Engine.run engine ~until:(Time.sec 5.0);
  Invariant.finish checker;
  Invariant.violations checker

let test_liveness_catches_wedge () =
  let vs = run_liveness ~kill_after_heal:true in
  check_bool "wedge flagged" true
    (List.exists (fun v -> v.Invariant.kind = Invariant.Liveness_stall) vs)

let test_liveness_recovery_exonerated () =
  check_int "recovered run is clean" 0
    (List.length (run_liveness ~kill_after_heal:false))

(* -------------------------------------------------------- shrinking *)

let test_shrink_to_sabotage () =
  (* Five faults, exactly one ber_burst; sabotage plants a violation on
     every ber_burst application, so the minimal repro must be that one
     fault with its duration halved to the floor. *)
  let f cls start =
    {
      Fault.cls;
      start = Time.ms start;
      duration = Time.ms 800;
      target = 0;
      intensity = 0.5;
    }
  in
  let schedule =
    [
      f Fault.Link_down 1600;
      f Fault.Congestion_storm 2400;
      f Fault.Ber_burst 3200;
      f Fault.Host_stall 4000;
      f Fault.Mtu_shrink 4800;
    ]
  in
  let failing = Soak.run_schedule ~sabotage:true ~env:Soak.Campus ~seed:5 schedule in
  check_bool "sabotaged run fails" true (not (Soak.ok failing));
  check_bool "sabotage recorded" true
    (List.exists
       (fun v -> v.Invariant.kind = Invariant.Injected_sabotage)
       failing.Soak.o_violations);
  let r = Soak.shrink ~sabotage:true ~env:Soak.Campus ~seed:5 schedule in
  check_int "original size recorded" 5 r.Soak.s_original;
  check_int "shrinks to one fault" 1 (List.length r.Soak.s_minimal);
  (match r.Soak.s_minimal with
  | [ m ] ->
    check_bool "the ber_burst survives" true (m.Fault.cls = Fault.Ber_burst);
    check_bool "duration halved to the floor" true (m.Fault.duration = Time.ms 100)
  | _ -> Alcotest.fail "expected a single-fault repro");
  check_bool "minimal repro still fails" true (not (Soak.ok r.Soak.s_outcome))

(* ------------------------------------------------------ wire-true soak *)

(* A bit-error storm under wire-true mode: corruption lands on the real
   frame bytes, so it must be caught by the in-place checksum verify
   ([decode_view]) and counted as wire rejects — never delivered as a
   damaged PDU, and therefore never able to trip the
   undetected-corruption oracle. *)
let test_wire_ber_burst_soak () =
  let burst start =
    {
      Fault.cls = Fault.Ber_burst;
      start = Time.ms start;
      duration = Time.ms 2500;
      target = 0;
      intensity = 0.9;
    }
  in
  let schedule = [ burst 500; burst 3500 ] in
  let o = Soak.run_schedule ~wire:true ~env:Soak.Campus ~seed:21 schedule in
  let w =
    match o.Soak.o_wire with
    | Some w -> w
    | None -> Alcotest.fail "wire-true run carried no wire report"
  in
  check_bool "the storm actually corrupted frames" true
    (w.Session.Wire.rejects > 0);
  check_bool "every arriving frame was either decoded or rejected" true
    (w.Session.Wire.decodes + w.Session.Wire.rejects <= w.Session.Wire.encodes
    && w.Session.Wire.decodes > 0);
  check_bool "no undetected corruption under wire-true mode" true
    (not
       (List.exists
          (fun v -> v.Invariant.kind = Invariant.Undetected_corruption)
          o.Soak.o_violations));
  check_bool "soak passes all oracles" true (Soak.ok o);
  (* Frame-level determinism: the wire path replays bit-for-bit. *)
  let o2 = Soak.run_schedule ~wire:true ~env:Soak.Campus ~seed:21 schedule in
  Alcotest.(check int64) "same trace hash" o.Soak.o_hash o2.Soak.o_hash;
  check_bool "same reject count" true
    (match o2.Soak.o_wire with
    | Some w2 -> w2.Session.Wire.rejects = w.Session.Wire.rejects
    | None -> false)

let suite =
  [
    ( "chaos.schedule",
      [
        Alcotest.test_case "equal rng states draw equal schedules" `Quick
          test_schedule_deterministic;
        Alcotest.test_case "windows, caps and ordering" `Quick
          test_schedule_properties;
        Alcotest.test_case "schedule is a pure function of (seed, env)" `Quick
          test_schedule_of_seed_stable;
      ] );
    ( "chaos.replay",
      [
        Alcotest.test_case "same seed, same schedule, same trace hash" `Slow
          test_replay_determinism;
      ] );
    ( "chaos.oracle",
      [
        Alcotest.test_case "clean stream" `Quick test_oracle_clean_stream;
        Alcotest.test_case "duplicate delivery" `Quick test_oracle_duplicate;
        Alcotest.test_case "out of order" `Quick test_oracle_out_of_order;
        Alcotest.test_case "delivery gap" `Quick test_oracle_gap;
        Alcotest.test_case "nonzero first sequence" `Quick test_oracle_first_seq;
        Alcotest.test_case "unreliable streams may skip" `Quick
          test_oracle_unreliable_gaps_allowed;
        Alcotest.test_case "undetected corruption" `Quick
          test_oracle_undetected_corruption;
      ] );
    ( "chaos.liveness",
      [
        Alcotest.test_case "a wedged session is caught at finish" `Quick
          test_liveness_catches_wedge;
        Alcotest.test_case "slow recovery after backoff is exonerated" `Quick
          test_liveness_recovery_exonerated;
      ] );
    ( "chaos.wire",
      [
        Alcotest.test_case "ber burst is caught at decode_view" `Slow
          test_wire_ber_burst_soak;
      ] );
    ( "chaos.shrink",
      [
        Alcotest.test_case "sabotaged schedule shrinks to one fault" `Slow
          test_shrink_to_sabotage;
      ] );
  ]
