open Adaptive_sim

type 'm outgoing = {
  out_at : Time.t;
  out_dst : int;
  out_payload : 'm;
}

type 'm t = {
  lookahead : Time.t;
  partitions : int;
  run_to : int -> Time.t -> unit;
  drain : int -> 'm outgoing list;
  inject : int -> at:Time.t -> src:int -> 'm -> unit;
}

let create ~lookahead ~partitions ~run_to ~drain ~inject =
  if Time.compare lookahead Time.zero <= 0 then
    invalid_arg
      "Shard.create: lookahead must be positive — a zero-lookahead \
       cross-partition link admits no conservative synchronization window";
  if partitions < 1 then invalid_arg "Shard.create: partitions must be >= 1";
  { lookahead; partitions; run_to; drain; inject }

(* One barrier exchange: drain every partition in index order, stamp each
   message with its (source, outbox position), and inject the union in
   canonical (arrival, source, sequence) order.  The sort key is total
   over distinct messages, so the injection order — and therefore every
   same-timestamp tie-break inside the destination engines — is the same
   whatever shard grouping produced the outboxes. *)
let exchange t ~window_end =
  let all = ref [] in
  for p = t.partitions - 1 downto 0 do
    let seq = ref 0 in
    let msgs =
      List.map
        (fun m ->
          let s = !seq in
          incr seq;
          (m.out_at, p, s, m))
        (t.drain p)
    in
    all := msgs @ !all
  done;
  let all =
    List.sort
      (fun (at_a, src_a, seq_a, _) (at_b, src_b, seq_b, _) ->
        let c = Time.compare at_a at_b in
        if c <> 0 then c
        else
          let c = compare (src_a : int) src_b in
          if c <> 0 then c else compare (seq_a : int) seq_b)
      !all
  in
  List.iter
    (fun (at, src, _, m) ->
      if Time.compare at window_end <= 0 then
        failwith
          (Printf.sprintf
             "Shard.run: lookahead violated — partition %d emitted a message \
              arriving at %s, inside the window that just ran (ended %s); \
              every cross-partition path must have latency >= the lookahead"
             src
             (Format.asprintf "%a" Time.pp at)
             (Format.asprintf "%a" Time.pp window_end));
      if m.out_dst < 0 || m.out_dst >= t.partitions then
        failwith
          (Printf.sprintf "Shard.run: message addressed to unknown partition %d"
             m.out_dst);
      t.inject m.out_dst ~at ~src m.out_payload)
    all;
  List.length all

let run_on_pool t ~pool ~shards ~until =
  (* Fixed partition->shard grouping, round-robin.  The grouping affects
     only which domain executes a partition, never the result. *)
  let groups = Array.make shards [] in
  for p = t.partitions - 1 downto 0 do
    groups.(p mod shards) <- p :: groups.(p mod shards)
  done;
  let exchanged = ref 0 in
  let horizon = ref Time.zero in
  while Time.compare !horizon until < 0 do
    let window_end = Time.min until (Time.add !horizon t.lookahead) in
    ignore
      (Fleet.map ~pool ~jobs:shards
         (fun group -> List.iter (fun p -> t.run_to p window_end) group)
         groups);
    exchanged := !exchanged + exchange t ~window_end;
    horizon := window_end
  done;
  !exchanged

let run ?pool t ~shards ~until =
  if shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  match pool with
  | Some pool -> run_on_pool t ~pool ~shards ~until
  | None ->
    (* One pool for the whole run: a window is a few hundred microseconds
       of work, so spawning domains per window would dominate it. *)
    Pool.with_pool ~jobs:shards (fun pool -> run_on_pool t ~pool ~shards ~until)
