open Adaptive_sim

type 'm outgoing = {
  out_at : Time.t;
  out_dst : int;
  out_payload : 'm;
}

type stats = {
  windows : int;
  skipped_spans : int;
  exchanged : int;
  shard_wall_s : float array;
}

type 'm t = {
  window : Time.t;  (* W: minimum lookahead over all ordered pairs *)
  delta : Time.t array;  (* delta.(d): min over sources s<>d of L[s,d] *)
  partitions : int;
  run_to : int -> Time.t -> unit;
  drain : int -> 'm outgoing list;
  inject : int -> at:Time.t -> src:int -> 'm -> unit;
  next_deadline : (int -> Time.t option) option;
  clock : (unit -> float) option;
  (* Exchange batch, reused across windows.  Keys live in parallel int
     arrays ([Time.t] is an int count of nanoseconds) so a barrier sorts
     a reusable index permutation instead of building and sorting a
     fresh tuple list every window.  Unused slots keep [b_at = max_int]
     so they sink to the tail of the sort. *)
  mutable b_at : int array;
  mutable b_src : int array;
  mutable b_seq : int array;
  mutable b_ix : int array;
  mutable b_msg : 'm outgoing array;  (* length 0 until the first batch *)
  mutable st_windows : int;
  mutable st_skipped : int;
  mutable st_exchanged : int;
  mutable st_wall : float array;
}

let create ?pair_lookahead ?next_deadline ?clock ~lookahead ~partitions ~run_to
    ~drain ~inject () =
  if Time.compare lookahead Time.zero <= 0 then
    invalid_arg
      "Shard.create: lookahead must be positive — a zero-lookahead \
       cross-partition link admits no conservative synchronization window";
  if partitions < 1 then invalid_arg "Shard.create: partitions must be >= 1";
  (* Per-pair lookaheads refine the classical single-L window: the
     barrier still paces at the matrix minimum W, but each destination
     [d] may run ahead to [B + delta.(d)], the minimum over its incoming
     pairs — never less than W, so heterogeneous latencies only widen
     windows. *)
  let pair s d =
    match pair_lookahead with Some f -> f ~src:s ~dst:d | None -> lookahead
  in
  let delta = Array.make partitions lookahead in
  let window = ref lookahead in
  if partitions > 1 then begin
    for d = 0 to partitions - 1 do
      let m = ref max_int in
      for s = 0 to partitions - 1 do
        if s <> d then begin
          let l = pair s d in
          if Time.compare l Time.zero <= 0 then
            invalid_arg
              "Shard.create: per-pair lookahead must be positive — a \
               zero-lookahead cross-partition link admits no conservative \
               synchronization window";
          if Time.compare l !m < 0 then m := l
        end
      done;
      delta.(d) <- !m
    done;
    window := Array.fold_left Time.min delta.(0) delta
  end;
  {
    window = !window;
    delta;
    partitions;
    run_to;
    drain;
    inject;
    next_deadline;
    clock;
    b_at = [||];
    b_src = [||];
    b_seq = [||];
    b_ix = [||];
    b_msg = [||];
    st_windows = 0;
    st_skipped = 0;
    st_exchanged = 0;
    st_wall = [||];
  }

let ensure_capacity t n first =
  let cap = Array.length t.b_msg in
  if cap < n then begin
    let cap' = max 64 (max n (2 * cap)) in
    t.b_at <- Array.make cap' max_int;
    t.b_src <- Array.make cap' 0;
    t.b_seq <- Array.make cap' 0;
    t.b_ix <- Array.make cap' 0;
    t.b_msg <- Array.make cap' first
  end

(* One barrier exchange: drain every partition in index order, stamp each
   message with its (source, outbox position), and inject the union in
   canonical (arrival, source, sequence) order.  The sort key is total
   over distinct messages, so the injection order — and therefore every
   same-timestamp tie-break inside the destination engines — is the same
   whatever shard grouping produced the outboxes.

   [horizon d] is the simulated time partition [d] has already executed
   through in the window that just ran; the lookahead contract requires
   every arrival to land strictly beyond its destination's horizon. *)
let exchange t ~horizon =
  let n = ref 0 in
  let first = ref None in
  for p = 0 to t.partitions - 1 do
    let msgs = t.drain p in
    if msgs <> [] && !first = None then first := Some (List.hd msgs);
    (* Stage into the batch, growing it on first contact with this
       window's volume. *)
    List.iter
      (fun m ->
        ensure_capacity t (!n + 1) m;
        t.b_at.(!n) <- m.out_at;
        t.b_src.(!n) <- p;
        t.b_msg.(!n) <- m;
        incr n)
      msgs
  done;
  let n = !n in
  if n = 0 then 0
  else begin
    (* Outbox sequence numbers restart per source partition. *)
    let seq = ref 0 in
    let cur_src = ref (-1) in
    for i = 0 to n - 1 do
      if t.b_src.(i) <> !cur_src then begin
        cur_src := t.b_src.(i);
        seq := 0
      end;
      t.b_seq.(i) <- !seq;
      incr seq
    done;
    let cap = Array.length t.b_ix in
    for i = 0 to cap - 1 do
      t.b_ix.(i) <- i;
      if i >= n then t.b_at.(i) <- max_int
    done;
    let at = t.b_at and src = t.b_src and sq = t.b_seq in
    Array.sort
      (fun i j ->
        let c = compare at.(i) at.(j) in
        if c <> 0 then c
        else
          let c = compare src.(i) src.(j) in
          if c <> 0 then c else compare sq.(i) sq.(j))
      t.b_ix;
    for k = 0 to n - 1 do
      let i = t.b_ix.(k) in
      let m = t.b_msg.(i) in
      let a = t.b_at.(i) in
      if Time.compare a (horizon m.out_dst) <= 0 then
        failwith
          (Printf.sprintf
             "Shard.run: lookahead violated — partition %d emitted a message \
              arriving at %s, inside the window that just ran (ended %s); \
              every cross-partition path must have latency >= the lookahead"
             t.b_src.(i)
             (Format.asprintf "%a" Time.pp a)
             (Format.asprintf "%a" Time.pp (horizon m.out_dst)));
      if m.out_dst < 0 || m.out_dst >= t.partitions then
        failwith
          (Printf.sprintf "Shard.run: message addressed to unknown partition %d"
             m.out_dst);
      t.inject m.out_dst ~at:a ~src:t.b_src.(i) m.out_payload
    done;
    (* Drop payload references so a quiet stretch does not keep the last
       busy window's messages alive. *)
    (match !first with
    | Some f -> Array.fill t.b_msg 0 (Array.length t.b_msg) f
    | None -> ());
    n
  end

let run_on_pool t ~pool ~shards ~until =
  (* Fixed partition->shard grouping, round-robin.  The grouping affects
     only which domain executes a partition, never the result. *)
  let groups = Array.make shards [] in
  for p = t.partitions - 1 downto 0 do
    groups.(p mod shards) <- p :: groups.(p mod shards)
  done;
  let tagged = Array.mapi (fun i g -> (i, g)) groups in
  t.st_windows <- 0;
  t.st_skipped <- 0;
  t.st_exchanged <- 0;
  t.st_wall <- Array.make shards 0.0;
  let barrier = ref Time.zero in
  while Time.compare !barrier until < 0 do
    (* Each destination runs ahead to its own incoming-lookahead horizon:
       a message generated by [s] inside this window is generated after
       [B - W + delta.(s)], so it arrives after
       [B - W + delta.(s) + L[s,d] >= B + delta.(d)] — strictly beyond
       everything the destination executes here. *)
    let b = !barrier in
    let horizon d = Time.min until (Time.add b t.delta.(d)) in
    let exec (gi, group) =
      match t.clock with
      | None -> List.iter (fun p -> t.run_to p (horizon p)) group
      | Some c ->
        let t0 = c () in
        List.iter (fun p -> t.run_to p (horizon p)) group;
        (* Distinct slot per shard: no cross-domain contention. *)
        t.st_wall.(gi) <- t.st_wall.(gi) +. (c () -. t0)
    in
    (* Shards 1.. go to worker domains; shard 0 runs right here — the
       coordinating domain would otherwise sleep through every window,
       which on a single core turns each barrier into a pure context
       switch. *)
    let futures =
      Array.init (shards - 1) (fun i ->
          Pool.submit pool (fun () -> exec tagged.(i + 1)))
    in
    exec tagged.(0);
    Array.iter Pool.await futures;
    t.st_windows <- t.st_windows + 1;
    let n = exchange t ~horizon in
    t.st_exchanged <- t.st_exchanged + n;
    let step = Time.add b t.window in
    (* Skip-empty fast path: a barrier that exchanged nothing proves no
       cross-partition message is in flight, so every future event is
       already sitting in some partition's queue.  Jump the barrier to
       one window before the earliest pending deadline anywhere: the
       skipped span contains no events and no traffic, and the jump is a
       function of global engine state only, so it is identical at every
       shard count. *)
    let next =
      if n > 0 then step
      else
        match t.next_deadline with
        | None -> step
        | Some nd ->
          let earliest = ref max_int in
          for d = 0 to t.partitions - 1 do
            match nd d with
            | None -> ()
            | Some x -> if Time.compare x !earliest < 0 then earliest := x
          done;
          if !earliest = max_int then until (* quiescent: nothing will fire *)
          else
            let jump = Time.diff !earliest t.window in
            if Time.compare jump step > 0 then begin
              t.st_skipped <- t.st_skipped + 1;
              Time.min until jump
            end
            else step
    in
    barrier := next
  done;
  t.st_exchanged

let run ?pool t ~shards ~until =
  if shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  match pool with
  | Some pool -> run_on_pool t ~pool ~shards ~until
  | None ->
    (* One pool for the whole run: a window is a few hundred microseconds
       of work, so spawning domains per window would dominate it. *)
    Pool.with_pool ~jobs:shards (fun pool -> run_on_pool t ~pool ~shards ~until)

let last_stats t =
  {
    windows = t.st_windows;
    skipped_spans = t.st_skipped;
    exchanged = t.st_exchanged;
    shard_wall_s = Array.copy t.st_wall;
  }
