open Adaptive_sim
module Pool = Pool

(* --------------------------------------------------------------- map *)

let map_on pool f arr =
  let futures = Array.map (fun x -> Pool.submit pool (fun () -> f x)) arr in
  (* Await in input order: the reduction point where parallel execution
     becomes order-preserving again. *)
  Array.map Pool.await futures

let map ?pool ~jobs f arr =
  match pool with
  | Some p -> map_on p f arr
  | None ->
    if Array.length arr = 0 then [||]
    else Pool.with_pool ~jobs (fun p -> map_on p f arr)

let map_list ?pool ~jobs f l =
  Array.to_list (map ?pool ~jobs f (Array.of_list l))

(* ---------------------------------------------------------- campaigns *)

type ('env, 'r) campaign = {
  name : string;
  seeds : int list;
  envs : 'env list;
  run : seed:int -> env:'env -> index:int -> 'r;
}

type ('env, 'r) task_result = {
  t_index : int;
  t_seed : int;
  t_env : 'env;
  t_result : 'r;
}

let validate c =
  if c.envs = [] then invalid_arg "Fleet.run_campaign: no environments";
  let sorted = List.sort_uniq compare c.seeds in
  if List.length sorted <> List.length c.seeds then
    invalid_arg "Fleet.run_campaign: duplicate seeds (tasks would be identical)"

let task_count c = List.length c.seeds * List.length c.envs

let tasks c =
  let i = ref (-1) in
  List.concat_map
    (fun seed ->
      List.map
        (fun env ->
          incr i;
          (!i, seed, env))
        c.envs)
    c.seeds

let run_campaign ?pool ?progress ~jobs c =
  validate c;
  let grid = Array.of_list (tasks c) in
  let results =
    map ?pool ~jobs
      (fun (index, seed, env) ->
        { t_index = index; t_seed = seed; t_env = env; t_result = c.run ~seed ~env ~index })
      grid
  in
  (match progress with
  | Some f -> Array.iter f results
  | None -> ());
  Array.to_list results

let seeds_of ~master ~n =
  if n < 0 then invalid_arg "Fleet.seeds_of: negative count";
  let base = Rng.create master in
  let seen = Hashtbl.create (2 * n) in
  let rec fresh i attempt =
    (* split_ix is a pure function of (state, index): stream [i] is the
       same whatever order — or domain — asks for it.  Collisions are
       ~2^-62 per pair; re-derive from a shifted index if one occurs. *)
    let s =
      Int64.to_int
        (Int64.logand
           (Rng.bits64 (Rng.split_ix base ((attempt * n) + i)))
           0x3FFFFFFFFFFFFFFFL)
    in
    if Hashtbl.mem seen s then fresh i (attempt + 1)
    else begin
      Hashtbl.add seen s ();
      s
    end
  in
  List.init n (fun i -> fresh i 0)

(* ---------------------------------------------------------- reduction *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let combine_hashes hashes =
  List.fold_left
    (fun acc h ->
      let acc = ref acc in
      for shift = 0 to 7 do
        let byte = Int64.logand (Int64.shift_right_logical h (shift * 8)) 0xFFL in
        acc := Int64.mul (Int64.logxor !acc byte) fnv_prime
      done;
      !acc)
    fnv_offset hashes

let check_identical a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (i, s) -> Hashtbl.replace tbl i (s, "")) a;
  List.iter
    (fun (i, s) ->
      match Hashtbl.find_opt tbl i with
      | Some (sa, _) -> Hashtbl.replace tbl i (sa, s)
      | None -> Hashtbl.replace tbl i ("", s))
    b;
  Hashtbl.fold (fun i (sa, sb) acc -> if String.equal sa sb then acc else (i, sa, sb) :: acc) tbl []
  |> List.sort compare
