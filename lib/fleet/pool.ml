(* Bounded work-queue domain pool.

   One mutex guards the queue and every future's cell; workers and
   awaiters block on two condition variables (queue activity, future
   completion).  Campaign tasks are coarse — whole simulation runs, tens
   of milliseconds each — so a single coarse lock costs nothing
   measurable and keeps the memory model obvious: every write to a
   future happens-before the await that reads it, via the mutex. *)

type 'a state = Pending | Value of 'a | Error of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

type task = Task : 'a future * (unit -> 'a) -> task

type t = {
  p_jobs : int;
  p_bound : int;
  p_mutex : Mutex.t;
  p_nonempty : Condition.t; (* queue gained work or closed *)
  p_nonfull : Condition.t; (* queue lost work *)
  p_queue : task Queue.t;
  mutable p_closed : bool;
  mutable p_domains : unit Domain.t list;
}

let jobs t = t.p_jobs

let fill fut result =
  Mutex.lock fut.f_mutex;
  fut.f_state <- result;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let run_task (Task (fut, thunk)) =
  let result =
    match thunk () with
    | v -> Value v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  fill fut result

let worker t () =
  let rec loop () =
    Mutex.lock t.p_mutex;
    while Queue.is_empty t.p_queue && not t.p_closed do
      Condition.wait t.p_nonempty t.p_mutex
    done;
    match Queue.take_opt t.p_queue with
    | Some task ->
      Condition.signal t.p_nonfull;
      Mutex.unlock t.p_mutex;
      run_task task;
      loop ()
    | None ->
      (* closed and drained *)
      Mutex.unlock t.p_mutex
  in
  loop ()

let create ?queue_bound ~jobs () =
  if jobs <= 0 then invalid_arg "Pool.create: jobs must be positive";
  let bound =
    match queue_bound with
    | Some b when b <= 0 -> invalid_arg "Pool.create: queue_bound must be positive"
    | Some b -> b
    | None -> 4 * jobs
  in
  let t =
    {
      p_jobs = jobs;
      p_bound = bound;
      p_mutex = Mutex.create ();
      p_nonempty = Condition.create ();
      p_nonfull = Condition.create ();
      p_queue = Queue.create ();
      p_closed = false;
      p_domains = [];
    }
  in
  if jobs > 1 then
    t.p_domains <- List.init jobs (fun _ -> Domain.spawn (worker t));
  t

let submit t thunk =
  let fut =
    { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending }
  in
  let task = Task (fut, thunk) in
  if t.p_jobs <= 1 then begin
    if t.p_closed then invalid_arg "Pool.submit: pool is shut down";
    run_task task
  end
  else begin
    Mutex.lock t.p_mutex;
    while Queue.length t.p_queue >= t.p_bound && not t.p_closed do
      Condition.wait t.p_nonfull t.p_mutex
    done;
    if t.p_closed then begin
      Mutex.unlock t.p_mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.add task t.p_queue;
    Condition.signal t.p_nonempty;
    Mutex.unlock t.p_mutex
  end;
  fut

let await fut =
  Mutex.lock fut.f_mutex;
  while (match fut.f_state with Pending -> true | _ -> false) do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let state = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match state with
  | Value v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown t =
  Mutex.lock t.p_mutex;
  let domains = t.p_domains in
  t.p_closed <- true;
  t.p_domains <- [];
  Condition.broadcast t.p_nonempty;
  Condition.broadcast t.p_nonfull;
  Mutex.unlock t.p_mutex;
  List.iter Domain.join domains

let with_pool ?queue_bound ~jobs f =
  let t = create ?queue_bound ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
