(** FLEET — deterministic parallel experiment execution.

    The paper's methodology is bulk replication: the same scenario run
    across seeds, environments and fault schedules until the comparison
    is statistically meaningful (§4.3).  FLEET shards that
    embarrassingly-parallel work across OCaml 5 domains while keeping
    the one property the whole repository is built on: {e bit-for-bit
    determinism}.  Three rules make that hold:

    + {b Isolation} — every task builds its own [Engine], [Rng],
      [Buf.Pool] and [Unites] instance; no simulator state crosses a
      task boundary.  The few process-wide counters (link names,
      connection ids, copy accounting) are atomic and never enter
      traces or reports.
    + {b Seeding} — each task derives its randomness from the campaign
      seed and its own task index via {!Adaptive_sim.Rng.split_ix};
      nothing depends on which domain or in which order a task ran.
    + {b Ordered reduction} — results are reduced in canonical
      (seed-major, environment-minor) task order, so the merged output
      of a [--jobs 4] run is byte-identical to [--jobs 1].

    {!Pool} is the underlying bounded work-queue domain pool. *)

module Pool = Pool

val map : ?pool:Pool.t -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] applies [f] to every element on [jobs] domains
    and returns the results {e in input order} — the order-preserving
    parallel map every FLEET entry point reduces to.  [f] must be
    self-contained (isolation rule above).  With [?pool] the tasks run
    on the given pool ([jobs] is ignored); otherwise a fresh pool is
    created and shut down.  An exception raised by any [f] is re-raised
    after all tasks settle. *)

val map_list : ?pool:Pool.t -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

(** {1 Campaigns} *)

type ('env, 'r) campaign = {
  name : string;  (** Scenario name, for reports. *)
  seeds : int list;  (** Replication axis; duplicate-free. *)
  envs : 'env list;  (** Environment axis; non-empty. *)
  run : seed:int -> env:'env -> index:int -> 'r;
      (** One task: a full, isolated scenario execution.  [index] is the
          task's position in canonical order — derive any extra
          randomness from it with [Rng.split_ix], never from shared
          state. *)
}

type ('env, 'r) task_result = {
  t_index : int;  (** Position in canonical (seed, env) order. *)
  t_seed : int;
  t_env : 'env;
  t_result : 'r;
}

val task_count : ('env, 'r) campaign -> int
(** [List.length seeds * List.length envs]. *)

val tasks : ('env, 'r) campaign -> (int * int * 'env) list
(** The campaign's task grid [(index, seed, env)] in canonical order:
    seed-major, environment-minor, exactly the order a sequential nested
    loop over [seeds] then [envs] would visit. *)

val run_campaign :
  ?pool:Pool.t ->
  ?progress:(('env, 'r) task_result -> unit) ->
  jobs:int ->
  ('env, 'r) campaign ->
  ('env, 'r) task_result list
(** Execute every task of the grid across [jobs] domains and return the
    results in canonical order.  [progress] fires on the calling domain,
    in canonical order, as each result is reduced — parallel progress
    output is byte-identical to sequential.  Raises [Invalid_argument]
    on an empty environment list or duplicate seeds (a repeated seed
    would silently run the same deterministic task twice). *)

val seeds_of : master:int -> n:int -> int list
(** [n] well-spread, duplicate-free, non-negative task seeds derived
    from [master] with [Rng.split_ix] — the campaign-builder's way to
    grow a seed list without reseeding or sharing a generator. *)

(** {1 Deterministic reduction helpers} *)

val combine_hashes : int64 list -> int64
(** Fold per-task FNV-1a trace hashes, in the order given, into one
    campaign-level digest: equal iff every per-task history matched in
    order.  The fold is itself FNV-1a over the 8 bytes of each hash. *)

val check_identical : (int * string) list -> (int * string) list -> (int * string * string) list
(** [check_identical a b] compares two [(index, rendered report)] runs
    of the same campaign and returns the mismatches as
    [(index, in_a, in_b)] — empty means the runs were byte-identical.
    Missing indices compare against [""]. *)
