(** SHARD — conservative domain-sharded parallel discrete-event simulation.

    A partitioned simulation runs [P] independent logical partitions,
    each with its own engine, and exchanges timestamped messages between
    them.  SHARD advances all partitions in lockstep {e barrier windows}
    of one lookahead [L] — the minimum cross-partition latency — which
    is the classical conservative-synchronization guarantee: a message
    generated inside window [k] cannot arrive before the end of window
    [k], so exchanging outboxes at each barrier never delivers into a
    partition's past.

    Within a window the partitions are executed across OCaml 5 domains
    ([shards] of them), but the {e result} is independent of the shard
    count by construction: each partition's window is a deterministic
    function of its own state plus the messages injected at the previous
    barrier, and the barrier itself injects messages in one canonical
    order — sorted by (arrival time, source partition, outbox sequence) —
    whatever grouping produced them.  [--shards 1] and [--shards N] are
    therefore bit-identical, which is what the megaswarm parity tests
    pin. *)

open Adaptive_sim

type 'm outgoing = {
  out_at : Time.t;  (** Modeled arrival time at the destination. *)
  out_dst : int;  (** Destination partition index. *)
  out_payload : 'm;
}
(** One cross-partition message drained from a partition's outbox. *)

type 'm t
(** A sharded simulation: partition callbacks plus the lookahead. *)

val create :
  lookahead:Time.t ->
  partitions:int ->
  run_to:(int -> Time.t -> unit) ->
  drain:(int -> 'm outgoing list) ->
  inject:(int -> at:Time.t -> src:int -> 'm -> unit) ->
  'm t
(** [run_to p horizon] must advance partition [p]'s engine through every
    event at or before [horizon]; [drain p] returns the cross-partition
    messages partition [p] generated since the last drain, in generation
    order; [inject p ~at ~src m] must schedule [m]'s delivery inside
    partition [p] at time [at].  [run_to] may run on any domain;
    [drain]/[inject] are only called between windows, on the
    coordinating domain.

    Raises [Invalid_argument] if [lookahead <= 0] — a zero-lookahead
    link admits no conservative window and the simulation could not be
    parallelized without violating causality — or if [partitions < 1]. *)

val run : ?pool:Pool.t -> 'm t -> shards:int -> until:Time.t -> int
(** Drive every partition to [until] in lookahead-wide barrier windows,
    executing each window's partitions across [shards] domains (with
    [?pool], on the given pool — its job count then bounds the real
    parallelism).  Returns the number of cross-partition messages
    exchanged.  Raises [Failure] if a drained message's arrival time
    violates the lookahead contract (it would land in a window that
    already ran). *)
