(** SHARD — conservative domain-sharded parallel discrete-event simulation.

    A partitioned simulation runs [P] independent logical partitions,
    each with its own engine, and exchanges timestamped messages between
    them.  SHARD advances all partitions in lockstep {e barrier windows}
    paced by [W], the minimum cross-partition latency over all ordered
    pairs — the classical conservative-synchronization guarantee: a
    message generated inside window [k] cannot arrive before the end of
    window [k], so exchanging outboxes at each barrier never delivers
    into a partition's past.

    Two refinements tighten the classical scheme:

    {ul
    {- {b Per-pair lookahead.}  With heterogeneous latencies [L(s,d)],
       destination [d] may run ahead to [B + delta(d)] where
       [delta(d) = min_s L(s,d)] is the soonest anything can reach it —
       never less than the global minimum [W], so wider pairs only widen
       windows.  Soundness: an event executed by source [s] in this
       window happens after [B - W + delta(s)], so its message arrives
       after [B - W + delta(s) + L(s,d) >= B + delta(d)] (because
       [delta(s) >= W] and [L(s,d) >= delta(d)]) — strictly beyond
       everything [d] executes here.}
    {- {b Skip-empty windows.}  A barrier that exchanged nothing proves
       no cross-partition message is in flight, so every future event
       already sits in some partition's queue.  The barrier then jumps
       to one window before the earliest pending deadline anywhere
       (queried through [next_deadline]) instead of grinding through
       empty lookahead-wide windows — the dominant cost at scale, where
       churn leaves long quiet spans.  The jump is a function of global
       engine state only, so it is identical at every shard count.}}

    Within a window the partitions are executed across OCaml 5 domains
    ([shards] of them), but the {e result} is independent of the shard
    count by construction: each partition's window is a deterministic
    function of its own state plus the messages injected at the previous
    barrier, and the barrier itself injects messages in one canonical
    order — sorted by (arrival time, source partition, outbox sequence) —
    whatever grouping produced them.  [--shards 1] and [--shards N] are
    therefore bit-identical, which is what the megaswarm parity tests
    pin. *)

open Adaptive_sim

type 'm outgoing = {
  out_at : Time.t;  (** Modeled arrival time at the destination. *)
  out_dst : int;  (** Destination partition index. *)
  out_payload : 'm;
}
(** One cross-partition message drained from a partition's outbox. *)

type stats = {
  windows : int;  (** Barrier windows executed. *)
  skipped_spans : int;  (** Empty spans jumped by the fast path. *)
  exchanged : int;  (** Cross-partition messages delivered. *)
  shard_wall_s : float array;
      (** Wall-clock seconds each shard spent executing partition
          windows, indexed by shard.  All zeros unless [create] was
          given a [clock]. *)
}
(** Synchronization counters from the most recent {!run}. *)

type 'm t
(** A sharded simulation: partition callbacks plus the lookahead. *)

val create :
  ?pair_lookahead:(src:int -> dst:int -> Time.t) ->
  ?next_deadline:(int -> Time.t option) ->
  ?clock:(unit -> float) ->
  lookahead:Time.t ->
  partitions:int ->
  run_to:(int -> Time.t -> unit) ->
  drain:(int -> 'm outgoing list) ->
  inject:(int -> at:Time.t -> src:int -> 'm -> unit) ->
  unit ->
  'm t
(** [run_to p horizon] must advance partition [p]'s engine through every
    event at or before [horizon]; [drain p] returns the cross-partition
    messages partition [p] generated since the last drain, in generation
    order; [inject p ~at ~src m] must schedule [m]'s delivery inside
    partition [p] at time [at].  [run_to] may run on any domain;
    [drain]/[inject] are only called between windows, on the
    coordinating domain.

    [pair_lookahead ~src ~dst] (called once per ordered pair at creation)
    refines the scalar [lookahead] with the actual minimum latency from
    partition [src] to partition [dst]; every returned value must be
    positive, and [lookahead] is ignored (beyond its own positivity
    check) when it is given.  [next_deadline p] must report the earliest
    pending event in partition [p] without firing anything; providing it
    enables the skip-empty-window fast path.  [clock] (e.g.
    [Unix.gettimeofday] — [lib/fleet] itself does not link unix) enables
    per-shard wall-time accounting in {!last_stats}.

    Raises [Invalid_argument] if [lookahead <= 0] or any per-pair
    lookahead is [<= 0] — a zero-lookahead link admits no conservative
    window and the simulation could not be parallelized without
    violating causality — or if [partitions < 1]. *)

val run : ?pool:Pool.t -> 'm t -> shards:int -> until:Time.t -> int
(** Drive every partition to [until] in barrier windows, executing each
    window's partitions across [shards] domains (with [?pool], on the
    given pool — its job count then bounds the real parallelism).
    Returns the number of cross-partition messages exchanged.  Raises
    [Failure] if a drained message's arrival time violates the lookahead
    contract (it would land at or before its destination's executed
    horizon). *)

val last_stats : 'm t -> stats
(** Counters from the most recent {!run} on this value. *)
