(** A bounded work-queue domain pool with futures.

    FLEET's execution substrate: [jobs] OCaml 5 domains pull thunks off
    a bounded queue; {!submit} returns a {!future} that {!await} blocks
    on, re-raising the task's exception (with its backtrace) if it
    failed.  Tasks must be self-contained — a campaign task builds its
    own [Engine]/[Rng]/[Buf.Pool]/[Unites] instances and shares no
    simulator state — so the pool never serializes anything but the
    queue itself.

    With [jobs <= 1] no domain is spawned and [submit] runs the thunk
    inline: [--jobs 1] is exactly the sequential path, which is what
    parallel runs are checked byte-for-byte against. *)

type t
(** A pool; owns its worker domains until {!shutdown}. *)

val create : ?queue_bound:int -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains when [jobs > 1],
    none otherwise.  [queue_bound] (default [4 * jobs]) bounds the
    backlog of accepted thunks; a full queue makes {!submit} block, so
    memory for an enormous campaign stays proportional to [jobs], not
    to the campaign.  [jobs] must be positive ([Invalid_argument]). *)

val jobs : t -> int
(** The parallelism this pool was created with. *)

type 'a future
(** The eventual result of a submitted task. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Blocks while the queue is at its bound.  Raises
    [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task finishes; returns its value or re-raises its
    exception with the original backtrace. *)

val shutdown : t -> unit
(** Run every queued task to completion, then join the worker domains.
    Idempotent; further {!submit}s raise. *)

val with_pool : ?queue_bound:int -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
