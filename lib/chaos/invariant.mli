(** Continuous invariant oracles for chaos runs.

    A checker observes a running system through the {!Session.Dispatcher}
    delivery tap, the UNITES repository and the MANTTS adaptation log,
    and records a {!violation} whenever an oracle fails:

    - exactly-once in-order delivery for reliable sessions (strictly
      increasing, gap-free sequence numbers);
    - no undetected corruption reaching the application while a
      detection mechanism is configured;
    - session liveness — progress resumes within a bound after the last
      fault heals, while the sender still has data pending;
    - MANTTS policy sanity — applied component switches respect the
      reconfiguration cooldown (no flapping past the debounce);
    - UNITES consistency — cumulative whitebox counters are monotone and
      blackbox throughput stays below link capacity. *)

open Adaptive_sim
open Adaptive_core

type kind =
  | Out_of_order
  | Duplicate_delivery
  | Delivery_gap
  | Undetected_corruption
  | Liveness_stall
  | Policy_flapping
  | Counter_regression
  | Throughput_excess
  | Injected_sabotage  (** Deliberately planted by {!inject_violation} —
                           the shrinker's self-test target. *)

val kind_to_string : kind -> string

type violation = {
  at : Time.t;
  label : string;  (** Session label, or "-" for system-wide oracles. *)
  kind : kind;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type t
(** One checker over one running stack. *)

val create :
  engine:Engine.t ->
  unites:Unites.t ->
  ?mantts:Mantts.t ->
  ?trace:Trace.t ->
  ?liveness_bound:Time.t ->
  ?capacity_bps:float ->
  unit ->
  t
(** [liveness_bound] (default 10 s) is the minimum silence after a heal
    before a backlogged session becomes a liveness suspect.  A suspect is
    exonerated by any later delivery — retransmission backoff legitimately
    stretches recovery past any fixed bound — and becomes a
    {!Liveness_stall} violation only if still silent when {!finish} runs
    with every fault healed.  [capacity_bps] enables the blackbox
    throughput-bound oracle.  Violations are also recorded into [trace]
    as "chaos.violation.<kind>" events. *)

val set_injector : t -> Fault.injector -> unit
(** Connect the fault injector: deliveries feed its time-to-recover
    bookkeeping and its heal times arm the liveness oracle. *)

val attach_dispatcher : t -> Session.Dispatcher.dispatcher -> unit
(** Install the delivery tap at one host.  Every delivery at that host is
    checked against the ordering/corruption oracles. *)

val track_sender : t -> label:string -> Session.t -> unit
(** Register a sending endpoint for the liveness and throughput oracles;
    [label] keys its delivery counts and names it in violations. *)

val observe :
  t ->
  label:string ->
  key:int ->
  ordered:bool ->
  reliable:bool ->
  detected:bool ->
  at:Time.t ->
  seq:int ->
  damaged:bool ->
  unit
(** The delivery oracle, exposed for unit tests: [key] identifies one
    receiving endpoint's stream, [detected] says whether the session
    configures a corruption-detection mechanism.  {!attach_dispatcher}
    routes real deliveries here. *)

val start : t -> unit
(** Begin the periodic (100 ms) monitor sweep: counter monotonicity,
    policy-flap scan and liveness evaluation. *)

val finish : t -> unit
(** Stop the sweep and run end-of-run oracles (throughput bound). *)

val inject_violation : t -> detail:string -> unit
(** Plant an {!Injected_sabotage} violation — used to prove the soak
    runner's detection and shrinking machinery end to end. *)

val violations : t -> violation list
(** Everything recorded, oldest first. *)
