(** The chaos soak runner.

    Builds a complete two-session ADAPTIVE stack over one of three
    interoperation environments, installs a fault schedule and the
    invariant checker, runs it to quiescence and reports the outcome —
    including the run's replay signature (seed, environment, schedule
    and FNV-1a trace hash).  Equal seeds produce equal schedules and
    equal trace hashes.

    When a run violates an invariant, {!shrink} greedily reduces its
    schedule — dropping faults one at a time, then halving durations —
    to a minimal still-failing repro. *)

open Adaptive_sim

type environment = Campus | Internet | Satellite

val all_environments : environment list
val environment_name : environment -> string
val environment_of_name : string -> environment option

val schedule_of_seed : env:environment -> seed:int -> Fault.schedule
(** The schedule a seeded run draws: an independent generator seeded
    from [(seed, env)], so the stack's own randomness never perturbs the
    fault pattern. *)

type outcome = {
  o_seed : int;
  o_env : environment;
  o_schedule : Fault.schedule;
  o_violations : Invariant.violation list;
  o_hash : int64;  (** FNV-1a hash over the run's trace stream. *)
  o_dropped : int;  (** Trace entries evicted by the bounded log. *)
  o_injected : int;  (** Faults actually applied. *)
  o_recoveries : (Fault.fault_class * float) list;
      (** Observed time-to-recover samples, seconds, oldest first. *)
  o_failovers : int;  (** Routing failovers + failbacks. *)
  o_delivered : int;  (** Application deliveries across both sessions. *)
  o_switches : int;  (** MANTTS component switches applied. *)
  o_events : int;  (** Engine events the run fired — the campaign
                       throughput unit FLEET's scaling bench reports. *)
  o_wire : Adaptive_core.Session.Wire.report option;
      (** Wire-path counters when the run was wire-true: corrupted frames
          show up here as rejects, caught physically by the fused
          checksum instead of by a simulation flag. *)
  o_unites : string;
      (** The run's formatted UNITES report — per-fault-class counters,
          recovery-time statistics and the trace's dropped-entry count. *)
}

val ok : outcome -> bool
(** No invariant violated. *)

val run_schedule :
  ?sabotage:bool ->
  ?wire:bool ->
  env:environment ->
  seed:int ->
  Fault.schedule ->
  outcome
(** One deterministic run of an explicit schedule.  [sabotage] (default
    false) plants an {!Invariant.Injected_sabotage} violation whenever a
    {!Fault.Ber_burst} fault is applied — the self-test hook proving the
    detection and shrinking machinery end to end.  [wire] (default
    false) runs the stack in wire-true mode: BER bursts flip real bits
    and the codec's checksum — not a flag — rejects the frames. *)

val run_one :
  ?sabotage:bool -> ?wire:bool -> env:environment -> seed:int -> unit -> outcome
(** [run_schedule] of {!schedule_of_seed}. *)

type shrink_result = {
  s_original : int;  (** Faults in the failing schedule. *)
  s_minimal : Fault.schedule;  (** Smallest still-failing schedule. *)
  s_runs : int;  (** Re-executions the search spent. *)
  s_outcome : outcome;  (** The minimal schedule's run. *)
}

val shrink :
  ?sabotage:bool ->
  ?wire:bool ->
  env:environment ->
  seed:int ->
  Fault.schedule ->
  shrink_result
(** Greedy shrink of a failing schedule: repeated drop-one-fault passes
    to a fixed point, then per-fault duration halving (floor 100 ms).
    The input schedule must fail; every intermediate candidate is
    re-executed with the same seed and environment. *)

val pp_repro : Format.formatter -> outcome -> unit
(** The minimal replayable repro block: seed, environment, trace hash
    and the schedule, one fault per line. *)

type report = {
  r_runs : int;
  r_outcomes : outcome list;  (** Every run, in execution order. *)
  r_failures : (outcome * shrink_result) list;
      (** Each failing run with its shrunk repro. *)
}

val soak :
  ?sabotage:bool ->
  ?wire:bool ->
  ?environments:environment list ->
  ?seeds:int list ->
  ?progress:(int -> outcome -> unit) ->
  seed:int ->
  schedules:int ->
  unit ->
  report
(** Run [schedules] seeded runs — seed [seed + i], environment cycling
    through [environments] (default {!all_environments}) — shrinking
    every failure.  [seeds] overrides the derived seed list entirely
    (run [i] uses the [i]th listed seed; [schedules] is then ignored). *)

val soak_par :
  ?sabotage:bool ->
  ?wire:bool ->
  ?environments:environment list ->
  ?seeds:int list ->
  ?progress:(int -> outcome -> unit) ->
  ?pool:Adaptive_fleet.Pool.t ->
  jobs:int ->
  seed:int ->
  schedules:int ->
  unit ->
  report
(** {!soak} sharded across [jobs] domains by FLEET.  Every run is an
    isolated task (own engine, RNGs, stack); a failing run shrinks
    inside its own task; results are reduced in run order, so the
    report — outcome order, failure order and [progress] callbacks —
    is byte-identical to the sequential {!soak}.  [jobs <= 1] without
    a [pool] {e is} the sequential {!soak}. *)

val duration : Time.t
(** How long each run's applications generate traffic (16 s); the
    engine runs a further liveness-bound tail beyond this. *)
