open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

type fault_class =
  | Link_down
  | Ber_burst
  | Route_flap
  | Partition
  | Congestion_storm
  | Host_stall
  | Mtu_shrink
  | Branch_down

let all_classes =
  [
    Link_down;
    Ber_burst;
    Route_flap;
    Partition;
    Congestion_storm;
    Host_stall;
    Mtu_shrink;
    Branch_down;
  ]

let class_name = function
  | Link_down -> "link_down"
  | Ber_burst -> "ber_burst"
  | Route_flap -> "route_flap"
  | Partition -> "partition"
  | Congestion_storm -> "congestion_storm"
  | Host_stall -> "host_stall"
  | Mtu_shrink -> "mtu_shrink"
  | Branch_down -> "branch_down"

let class_index c =
  let rec scan i = function
    | [] -> assert false
    | c' :: rest -> if c' = c then i else scan (i + 1) rest
  in
  scan 0 all_classes

type fault = {
  cls : fault_class;
  start : Time.t;
  duration : Time.t;
  target : int;
  intensity : float;
}

type schedule = fault list

let pp_fault fmt f =
  Format.fprintf fmt "%s@%a+%a tgt=%d i=%.3f" (class_name f.cls) Time.pp f.start
    Time.pp f.duration f.target f.intensity

let pp_schedule fmt s =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_fault)
    s

(* ------------------------------------------------------------------ *)
(* Random schedule generation *)

(* Expected faults of each class over the generation window — the Poisson
   arrival intensity, kept low enough that a run sees a handful of faults
   rather than a permanent storm. *)
let expected_count = function
  | Link_down -> 0.8
  | Ber_burst -> 1.0
  | Route_flap -> 0.6
  | Partition -> 0.5
  | Congestion_storm -> 1.0
  | Host_stall -> 0.8
  | Mtu_shrink -> 0.6
  | Branch_down -> 0.5

let min_duration = Time.ms 200

let duration_cap cls max_duration =
  match cls with
  (* Partitions black-hole everything, so cap them harder: healing within
     the ARQ backoff envelope keeps the liveness bound meaningful. *)
  | Partition -> Time.min max_duration (Time.ms 1500)
  | _ -> max_duration

let random_schedule ~rng ?(classes = all_classes) ?(first = Time.ms 1500)
    ?(last = Time.sec 12.0) ?(max_duration = Time.ms 2500) () =
  if last < first then invalid_arg "Fault.random_schedule: last < first";
  let window = Time.diff last first in
  let faults = ref [] in
  List.iter
    (fun cls ->
      let mean_gap = Time.to_sec window /. expected_count cls in
      let rec arrivals at =
        let gap = Time.sec (Rng.exponential rng ~mean:mean_gap) in
        let at = Time.add at (Time.max (Time.ms 1) gap) in
        if at <= last then begin
          let cap = Time.max min_duration (duration_cap cls max_duration) in
          let duration = Rng.int_in rng min_duration cap in
          let target = Rng.int rng 8 in
          let intensity = Rng.float rng 1.0 in
          faults := { cls; start = at; duration; target; intensity } :: !faults;
          arrivals at
        end
      in
      arrivals first)
    classes;
  List.sort
    (fun a b ->
      compare
        (a.start, class_index a.cls, a.target)
        (b.start, class_index b.cls, b.target))
    !faults

(* ------------------------------------------------------------------ *)
(* Installation *)

type link_base = { b_up : bool; b_ber : float; b_mtu : int; b_background : float }

type injector = {
  engine : Engine.t;
  env : env;
  trace : Trace.t option;
  unites : Unites.t option;
  on_apply : (fault -> unit) option;
  base : (Link.t * link_base) list;  (* physical identity *)
  mutable injected_count : int;
  mutable active_count : int;
  mutable last_heal_at : Time.t option;
  mutable pending : (Time.t * fault_class) list;  (* heals awaiting a delivery *)
  mutable recovered : (fault_class * float) list;  (* newest first *)
}

and env = {
  links : Link.t list;
  tail_links : Link.t list;
  hosts : Host.t list;
  routing : Routing.t option;
}

let dedup_links lists =
  let seen = ref [] in
  List.iter
    (List.iter (fun l -> if not (List.memq l !seen) then seen := l :: !seen))
    lists;
  List.rev !seen

let partition_set env =
  match env.routing with
  | Some r -> dedup_links [ env.links; Routing.links r ]
  | None -> dedup_links [ env.links ]

let base_of inj link =
  match List.assq_opt link inj.base with
  | Some b -> b
  | None ->
    (* A link that appeared after install (should not happen); treat its
       current state as base. *)
    {
      b_up = Link.is_up link;
      b_ber = Link.ber link;
      b_mtu = Link.mtu link;
      b_background = Link.background_utilization link;
    }

let restore_up inj link =
  if (base_of inj link).b_up then Link.repair link else Link.fail link

let pick list target =
  match list with
  | [] -> None
  | _ -> Some (List.nth list (target mod List.length list))

let target_link inj f = pick inj.env.links f.target

let target_tail inj f =
  match pick inj.env.tail_links f.target with
  | Some l -> Some l
  | None -> target_link inj f

let target_host inj f = pick inj.env.hosts f.target

let stall_of intensity = Time.us (500 + int_of_float (intensity *. 19_500.0))

let apply inj f =
  (match f.cls with
  | Link_down -> Option.iter Link.fail (target_link inj f)
  | Branch_down -> Option.iter Link.fail (target_tail inj f)
  | Ber_burst ->
    Option.iter
      (fun l ->
        Link.set_ber l ((base_of inj l).b_ber +. 1e-6 +. (f.intensity *. 4.9e-5)))
      (target_link inj f)
  | Route_flap -> Option.iter Link.fail (target_link inj f)
  | Partition -> List.iter Link.fail (partition_set inj.env)
  | Congestion_storm ->
    Option.iter
      (fun l -> Link.set_background_utilization l (0.80 +. (0.18 *. f.intensity)))
      (target_link inj f)
  | Host_stall ->
    Option.iter (fun h -> Host.set_stall h (stall_of f.intensity)) (target_host inj f)
  | Mtu_shrink ->
    Option.iter
      (fun l ->
        let divisor = 2 + int_of_float (f.intensity *. 4.0) in
        Link.set_mtu l (max 256 ((base_of inj l).b_mtu / divisor)))
      (target_link inj f));
  inj.injected_count <- inj.injected_count + 1;
  inj.active_count <- inj.active_count + 1;
  let at = Engine.now inj.engine in
  Option.iter
    (fun trace ->
      Trace.event trace ~at
        ~category:("chaos.fault." ^ class_name f.cls)
        ~detail:(Format.asprintf "tgt=%d i=%.3f dur=%a" f.target f.intensity
                   Time.pp f.duration))
    inj.trace;
  Option.iter
    (fun u -> Unites.count u ~session:Unites.chaos_session Unites.Faults_injected)
    inj.unites;
  Option.iter (fun g -> g f) inj.on_apply

let heal inj f =
  (match f.cls with
  | Link_down | Route_flap | Branch_down ->
    Option.iter (restore_up inj)
      (if f.cls = Branch_down then target_tail inj f else target_link inj f)
  | Ber_burst ->
    Option.iter (fun l -> Link.set_ber l (base_of inj l).b_ber) (target_link inj f)
  | Partition -> List.iter (restore_up inj) (partition_set inj.env)
  | Congestion_storm ->
    Option.iter
      (fun l -> Link.set_background_utilization l (base_of inj l).b_background)
      (target_link inj f)
  | Host_stall ->
    Option.iter (fun h -> Host.set_stall h Time.zero) (target_host inj f)
  | Mtu_shrink ->
    Option.iter (fun l -> Link.set_mtu l (base_of inj l).b_mtu) (target_link inj f));
  inj.active_count <- inj.active_count - 1;
  let at = Engine.now inj.engine in
  inj.last_heal_at <- Some at;
  inj.pending <- (at, f.cls) :: inj.pending

(* Route flaps pre-expand into individual toggle events so that shrinking
   a flap's duration deterministically removes toggles. *)
let flap_period intensity = Time.ms (80 + int_of_float (intensity *. 160.0))

let install ~engine ?trace ?unites ?on_apply env schedule =
  let targets =
    dedup_links
      [
        env.links;
        env.tail_links;
        (match env.routing with Some r -> Routing.links r | None -> []);
      ]
  in
  let base =
    List.map
      (fun l ->
        ( l,
          {
            b_up = Link.is_up l;
            b_ber = Link.ber l;
            b_mtu = Link.mtu l;
            b_background = Link.background_utilization l;
          } ))
      targets
  in
  let inj =
    {
      engine;
      env;
      trace;
      unites;
      on_apply;
      base;
      injected_count = 0;
      active_count = 0;
      last_heal_at = None;
      pending = [];
      recovered = [];
    }
  in
  Option.iter
    (fun u -> Unites.register_session u ~id:Unites.chaos_session ~name:"chaos")
    unites;
  let now = Engine.now engine in
  List.iter
    (fun f ->
      let start = Time.max now f.start in
      let stop = Time.add start (Time.max (Time.ms 1) f.duration) in
      ignore (Engine.schedule engine ~at:start (fun () -> apply inj f));
      (match f.cls with
      | Route_flap ->
        (* Toggle between start and stop; odd toggles repair, even fail.
           The final heal restores base state regardless of parity. *)
        let period = flap_period f.intensity in
        let rec toggles k =
          let at = Time.add start (k * period) in
          if at < stop then begin
            ignore
              (Engine.schedule engine ~at (fun () ->
                   Option.iter
                     (fun l -> if k mod 2 = 1 then Link.repair l else Link.fail l)
                     (target_link inj f)));
            toggles (k + 1)
          end
        in
        toggles 1
      | _ -> ());
      ignore (Engine.schedule engine ~at:stop (fun () -> heal inj f)))
    schedule;
  inj

let injected inj = inj.injected_count
let active inj = inj.active_count
let last_heal inj = inj.last_heal_at

let note_delivery inj ~at =
  match inj.pending with
  | [] -> ()
  | pending ->
    let credited, remaining =
      List.partition (fun (h, _) -> h <= at) pending
    in
    (* [pending] is newest first; credit oldest first for a stable
       recovery order. *)
    List.iter
      (fun (h, cls) ->
        let ttr = Time.to_sec (Time.diff at h) in
        inj.recovered <- (cls, ttr) :: inj.recovered;
        Option.iter
          (fun trace -> Trace.count trace ("chaos.recover." ^ class_name cls))
          inj.trace;
        Option.iter
          (fun u ->
            Unites.observe u ~session:Unites.chaos_session Unites.Fault_recovery ttr)
          inj.unites)
      (List.rev credited);
    inj.pending <- remaining

let recoveries inj = List.rev inj.recovered
