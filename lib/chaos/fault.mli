(** Chaos fault model and scenario engine.

    A typed vocabulary of injectable network and host faults, compiled
    into deterministic engine timer events against the live simulation
    objects ({!Adaptive_net.Link}, {!Adaptive_net.Routing},
    {!Adaptive_mech.Host}).  Schedules are either written explicitly or
    drawn from a seeded random generator (Poisson arrivals per fault
    class, bounded durations), so every run — and every failure — is
    replayable from its seed. *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

type fault_class =
  | Link_down  (** One hop of the primary path fails, then repairs. *)
  | Ber_burst  (** A hop's bit-error rate spikes. *)
  | Route_flap  (** A hop toggles down/up rapidly, ending repaired. *)
  | Partition  (** Every candidate link between the hosts fails —
                   including standby paths, so failover cannot escape —
                   then heals. *)
  | Congestion_storm  (** A hop's cross traffic jumps near saturation. *)
  | Host_stall  (** A host's per-packet CPU cost spikes — the GC-pause
                    analog. *)
  | Mtu_shrink  (** A hop's MTU collapses (path-MTU change). *)
  | Branch_down  (** A delivery-tree tail link fails (multicast-branch
                     failure analog). *)

val all_classes : fault_class list
(** Every class, in canonical order. *)

val class_name : fault_class -> string
(** Short stable name ("link_down", "ber_burst", ...). *)

type fault = {
  cls : fault_class;
  start : Time.t;  (** When the fault is applied. *)
  duration : Time.t;  (** Applied state lasts this long, then heals. *)
  target : int;  (** Which eligible object, resolved modulo the class's
                     target list at install time. *)
  intensity : float;  (** Class-specific severity in [\[0, 1\]]. *)
}

type schedule = fault list

val pp_fault : Format.formatter -> fault -> unit
val pp_schedule : Format.formatter -> schedule -> unit
(** Stable renderings used in minimal-repro reports. *)

val random_schedule :
  rng:Rng.t ->
  ?classes:fault_class list ->
  ?first:Time.t ->
  ?last:Time.t ->
  ?max_duration:Time.t ->
  unit ->
  schedule
(** Draw one random schedule: per class (default {!all_classes}),
    Poisson arrivals over the window [\[first, last\]] (defaults 1.5 s
    and 12 s), durations bounded by [max_duration] (default 2.5 s) and
    below by 200 ms, uniform intensities.  Draws happen in a fixed order,
    so equal generator states yield equal schedules.  The result is
    sorted by start time. *)

type env = {
  links : Link.t list;  (** Primary-path hops, the default targets. *)
  tail_links : Link.t list;  (** Delivery-tree tails for {!Branch_down}
                                 (falls back to [links] when empty). *)
  hosts : Host.t list;  (** {!Host_stall} targets. *)
  routing : Routing.t option;
      (** When present, {!Partition} also fails every standby candidate
          link ({!Routing.links}). *)
}
(** The live objects a schedule is compiled against. *)

type injector
(** A schedule installed into an engine. *)

val install :
  engine:Engine.t ->
  ?trace:Trace.t ->
  ?unites:Unites.t ->
  ?on_apply:(fault -> unit) ->
  env ->
  schedule ->
  injector
(** Compile the schedule into engine events.  Base link/host state is
    snapshotted once at install time and every heal restores it, so
    overlapping or shrunken faults stay idempotent.  [trace] receives a
    "chaos.fault.<class>" event per application and a
    "chaos.recover.<class>" count per observed recovery; [unites]
    records {!Unites.Faults_injected} counts and {!Unites.Fault_recovery}
    times under {!Unites.chaos_session}.  [on_apply] fires as each fault
    is applied (the soak runner's sabotage hook). *)

val injected : injector -> int
(** Faults applied so far. *)

val active : injector -> int
(** Faults currently applied and not yet healed. *)

val last_heal : injector -> Time.t option
(** When the most recent fault healed — the liveness monitor's anchor. *)

val note_delivery : injector -> at:Time.t -> unit
(** Tell the injector an application delivery happened: each fault healed
    at [h <= at] and not yet credited records a time-to-recover of
    [at - h]. *)

val recoveries : injector -> (fault_class * float) list
(** Every observed recovery so far: fault class and time-to-recover in
    seconds, oldest first. *)
