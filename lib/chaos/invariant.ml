open Adaptive_sim
open Adaptive_mech
open Adaptive_core

type kind =
  | Out_of_order
  | Duplicate_delivery
  | Delivery_gap
  | Undetected_corruption
  | Liveness_stall
  | Policy_flapping
  | Counter_regression
  | Throughput_excess
  | Injected_sabotage

let kind_to_string = function
  | Out_of_order -> "out_of_order"
  | Duplicate_delivery -> "duplicate_delivery"
  | Delivery_gap -> "delivery_gap"
  | Undetected_corruption -> "undetected_corruption"
  | Liveness_stall -> "liveness_stall"
  | Policy_flapping -> "policy_flapping"
  | Counter_regression -> "counter_regression"
  | Throughput_excess -> "throughput_excess"
  | Injected_sabotage -> "injected_sabotage"

type violation = { at : Time.t; label : string; kind : kind; detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "[%a] %s %s: %s" Time.pp v.at (kind_to_string v.kind) v.label
    v.detail

(* Per-receiving-endpoint delivery-stream state. *)
type stream = { mutable last_seq : int option; mutable ever_unreliable : bool }

type t = {
  engine : Engine.t;
  unites : Unites.t;
  mantts : Mantts.t option;
  trace : Trace.t option;
  liveness_bound : Time.t;
  capacity_bps : float option;
  mutable injector : Fault.injector option;
  streams : (int, stream) Hashtbl.t;
  delivered : (string, int ref) Hashtbl.t;  (* per-label delivery counts *)
  mutable tracked : (string * Session.t) list;  (* insertion order *)
  prev_totals : (int * Unites.metric, float) Hashtbl.t;
  mutable adaptations_seen : int;
  last_switch : (int, Time.t) Hashtbl.t;
  mutable heal_seen : Time.t;
  mutable heal_pending : (Time.t * (string * int) list) list;
  mutable sweep : Engine.Timer.timer option;
  mutable violations_rev : violation list;
}

(* Cumulative whitebox counters that must never decrease. *)
let monotone_metrics =
  [
    Unites.Segments_sent;
    Unites.Segments_delivered;
    Unites.Bytes_delivered;
    Unites.Retransmissions;
    Unites.Acks_sent;
    Unites.Control_pdus;
  ]

let create ~engine ~unites ?mantts ?trace ?(liveness_bound = Time.sec 10.0)
    ?capacity_bps () =
  {
    engine;
    unites;
    mantts;
    trace;
    liveness_bound;
    capacity_bps;
    injector = None;
    streams = Hashtbl.create 16;
    delivered = Hashtbl.create 16;
    tracked = [];
    prev_totals = Hashtbl.create 64;
    adaptations_seen = 0;
    last_switch = Hashtbl.create 16;
    heal_seen = Time.zero;
    heal_pending = [];
    sweep = None;
    violations_rev = [];
  }

let set_injector t inj = t.injector <- Some inj

let record t ~label ~kind ~detail =
  let at = Engine.now t.engine in
  t.violations_rev <- { at; label; kind; detail } :: t.violations_rev;
  Option.iter
    (fun trace ->
      Trace.event trace ~at
        ~category:("chaos.violation." ^ kind_to_string kind)
        ~detail:(label ^ ": " ^ detail))
    t.trace

let inject_violation t ~detail =
  record t ~label:"-" ~kind:Injected_sabotage ~detail

let violations t = List.rev t.violations_rev

let bump t label =
  match Hashtbl.find_opt t.delivered label with
  | Some r -> incr r
  | None -> Hashtbl.add t.delivered label (ref 1)

let delivered_count t label =
  match Hashtbl.find_opt t.delivered label with Some r -> !r | None -> 0

let observe t ~label ~key ~ordered ~reliable ~detected ~at:_ ~seq ~damaged =
  let stream =
    match Hashtbl.find_opt t.streams key with
    | Some s -> s
    | None ->
      let s = { last_seq = None; ever_unreliable = false } in
      Hashtbl.add t.streams key s;
      s
  in
  if not reliable then stream.ever_unreliable <- true;
  if damaged && detected then
    record t ~label ~kind:Undetected_corruption
      ~detail:
        (Printf.sprintf "seq %d reached the application damaged despite detection"
           seq);
  (* The gap-free (exactly-once) oracle only binds streams that have been
     reliable for their whole life: a session that ever ran without
     retransmission may legitimately skip past losses. *)
  let gap_free = reliable && not stream.ever_unreliable in
  (match stream.last_seq with
  | None ->
    if gap_free && seq <> 0 then
      record t ~label ~kind:Delivery_gap
        ~detail:(Printf.sprintf "first delivery is seq %d, expected 0" seq)
  | Some last ->
    if ordered && seq = last then
      record t ~label ~kind:Duplicate_delivery
        ~detail:(Printf.sprintf "seq %d delivered twice" seq)
    else if ordered && seq < last then
      record t ~label ~kind:Out_of_order
        ~detail:(Printf.sprintf "seq %d after seq %d" seq last)
    else if gap_free && seq > last + 1 then
      record t ~label ~kind:Delivery_gap
        ~detail:(Printf.sprintf "seq %d after seq %d skipped %d segments" seq last
                   (seq - last - 1)));
  (match stream.last_seq with
  | Some last when ordered && seq <= last -> ()
  | _ -> stream.last_seq <- Some seq);
  bump t label;
  Option.iter (fun inj -> Fault.note_delivery inj ~at:(Engine.now t.engine)) t.injector

let attach_dispatcher t disp =
  Session.Dispatcher.set_delivery_tap disp (fun s (d : Session.delivery) ->
      let scs = Session.scs s in
      let ordered =
        scs.Scs.ordering = Params.Ordered
        && scs.Scs.duplicates = Params.Drop_duplicates
      in
      (* A playout delivery constraint sanctions loss: segments past the
         playout point are discarded late no matter what the recovery
         machinery recovers, so such a stream is never gap-bound even
         when its recovery scheme is nominally reliable (e.g. a steered
         media session swapped to selective repeat). *)
      let lossy_delivery =
        match scs.Scs.delivery with Params.Playout _ -> true | _ -> false
      in
      let label =
        match
          List.find_opt (fun (_, tracked) -> Session.id tracked = Session.id s)
            t.tracked
        with
        | Some (label, _) -> label
        | None -> Session.name s
      in
      let key = (Session.local_addr s * 1_000_000) + Session.id s in
      observe t ~label ~key ~ordered
        ~reliable:(Scs.reliable scs && not lossy_delivery)
        ~detected:(scs.Scs.detection <> Params.No_detection)
        ~at:d.Session.delivered_at ~seq:d.Session.seq ~damaged:d.Session.damaged;
      Option.iter
        (fun trace ->
          Trace.event trace ~at:(Engine.now t.engine) ~category:"app.deliver"
            ~detail:(Printf.sprintf "%s:%d" label d.Session.seq))
        t.trace)

let track_sender t ~label sender = t.tracked <- t.tracked @ [ (label, sender) ]

(* ------------------------------------------------------------------ *)
(* Periodic sweep *)

let check_monotone t =
  List.iter
    (fun (id, _) ->
      if id >= 1 then
        List.iter
          (fun m ->
            let total = Unites.total t.unites ~session:id m in
            let key = (id, m) in
            (match Hashtbl.find_opt t.prev_totals key with
            | Some prev when total < prev -.  1e-9 ->
              record t
                ~label:(Printf.sprintf "session-%d" id)
                ~kind:Counter_regression
                ~detail:
                  (Printf.sprintf "%s fell from %.0f to %.0f"
                     (Unites.metric_name m) prev total)
            | Some _ | None -> ());
            Hashtbl.replace t.prev_totals key total)
          monotone_metrics)
    (Unites.sessions t.unites)

let check_policy t =
  match t.mantts with
  | None -> ()
  | Some mantts ->
    let entries = Mantts.adaptations mantts in
    let fresh =
      List.filteri (fun i _ -> i >= t.adaptations_seen) entries
    in
    t.adaptations_seen <- List.length entries;
    List.iter
      (fun (at, session, desc) ->
        if String.length desc >= 7 && String.sub desc 0 7 = "switch " then begin
          Option.iter
            (fun trace ->
              Trace.event trace ~at ~category:"mantts.switch" ~detail:desc)
            t.trace;
          (match Hashtbl.find_opt t.last_switch session with
          | Some prev ->
            let gap = Time.diff at prev in
            (* Same-instant entries are one monitor tick applying several
               rules; anything else below the cooldown is flapping. *)
            if gap > Time.zero && gap < Mantts.reconfigure_cooldown then
              record t
                ~label:(Printf.sprintf "session-%d" session)
                ~kind:Policy_flapping
                ~detail:
                  (Printf.sprintf "switch %s after only %s (cooldown %s)" desc
                     (Time.to_string gap)
                     (Time.to_string Mantts.reconfigure_cooldown))
          | None -> ());
          Hashtbl.replace t.last_switch session at
        end)
      fresh

let snapshot_counts t =
  List.map (fun (label, _) -> (label, delivered_count t label)) t.tracked

(* Liveness: a heal arms a watch holding each sender's delivery count.
   Progress at any later point exonerates the watch — retransmission
   timers back off after fault-inflated RTTs, so recovery bounded only
   by the backoff clamp is still recovery.  A watch that is past the
   bound AND still silent when the run ends (every fault healed, data
   pending, session up) is the wedge the oracle exists to catch. *)
let check_liveness ~final t =
  match t.injector with
  | None -> ()
  | Some inj ->
    (match Fault.last_heal inj with
    | Some h when h > t.heal_seen ->
      t.heal_seen <- h;
      t.heal_pending <- (h, snapshot_counts t) :: t.heal_pending
    | Some _ | None -> ());
    let now = Engine.now t.engine in
    t.heal_pending <-
      List.filter
        (fun (h, counts) ->
          if Time.diff now h < t.liveness_bound then not final
          else begin
            let stalled (label, sender) =
              let snap =
                match List.assoc_opt label counts with Some n -> n | None -> 0
              in
              delivered_count t label <= snap
              && (not (Session.send_queue_empty sender))
              && Session.state sender = Session.Established
              && Fault.active inj = 0
            in
            let suspects = List.filter stalled t.tracked in
            if suspects = [] then false
            else if final then begin
              List.iter
                (fun (label, _) ->
                  record t ~label ~kind:Liveness_stall
                    ~detail:
                      (Printf.sprintf
                         "no delivery between the heal at %s and the end of \
                          the run (bound %s) despite pending data"
                         (Time.to_string h)
                         (Time.to_string t.liveness_bound)))
                suspects;
              false
            end
            else true
          end)
        t.heal_pending

let sweep_tick t () =
  check_monotone t;
  check_policy t;
  check_liveness ~final:false t

let start t =
  match t.sweep with
  | Some _ -> ()
  | None ->
    t.sweep <-
      Some (Engine.Timer.periodic t.engine ~interval:(Time.ms 100) (sweep_tick t))

let check_throughput t =
  match t.capacity_bps with
  | None -> ()
  | Some cap ->
    let elapsed = Time.to_sec (Engine.now t.engine) in
    if elapsed > 0.0 then
      List.iter
        (fun (label, sender) ->
          let bytes =
            Unites.total t.unites ~session:(Session.id sender)
              Unites.Bytes_delivered
          in
          let rate = bytes *. 8.0 /. elapsed in
          if rate > cap *. 1.1 then
            record t ~label ~kind:Throughput_excess
              ~detail:
                (Printf.sprintf
                   "blackbox throughput %.3g bps exceeds link capacity %.3g bps"
                   rate cap))
        t.tracked

let finish t =
  (match t.sweep with
  | Some timer ->
    Engine.Timer.cancel timer;
    t.sweep <- None
  | None -> ());
  check_monotone t;
  check_policy t;
  check_liveness ~final:true t;
  check_throughput t
