open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core

type environment = Campus | Internet | Satellite

let all_environments = [ Campus; Internet; Satellite ]

let environment_name = function
  | Campus -> "campus"
  | Internet -> "internet"
  | Satellite -> "satellite"

let environment_of_name = function
  | "campus" -> Some Campus
  | "internet" -> Some Internet
  | "satellite" -> Some Satellite
  | _ -> None

let env_index = function Campus -> 0 | Internet -> 1 | Satellite -> 2

let primary_path = function
  | Campus -> Profiles.campus_path ()
  | Internet -> Profiles.internet_path ()
  | Satellite -> Profiles.satellite_path ()

let duration = Time.sec 16.0
let liveness_bound = Time.sec 10.0

let schedule_of_seed ~env ~seed =
  (* Independent generator: the stack's own draws (loss, jitter) never
     perturb the fault pattern, so a schedule is a pure function of
     (seed, env) — [Rng.split_ix] derives the environment's stream from
     the seed's generator without sharing or reseeding anything a
     parallel campaign task could race on. *)
  let rng = Rng.split_ix (Rng.create (seed * 8191)) (env_index env) in
  Fault.random_schedule ~rng ~first:(Time.ms 1500)
    ~last:(Time.sec (0.75 *. Time.to_sec duration))
    ()

type outcome = {
  o_seed : int;
  o_env : environment;
  o_schedule : Fault.schedule;
  o_violations : Invariant.violation list;
  o_hash : int64;
  o_dropped : int;
  o_injected : int;
  o_recoveries : (Fault.fault_class * float) list;
  o_failovers : int;
  o_delivered : int;
  o_switches : int;
  o_events : int;
  o_wire : Session.Wire.report option;
  o_unites : string;
}

let ok o = o.o_violations = []

let bulk_qos =
  {
    Qos.default with
    Qos.avg_bps = 2e6;
    peak_bps = 4e6;
    duration = Some (Time.sec 60.0);
  }

let media_qos =
  {
    Qos.default with
    Qos.avg_bps = 1.5e6;
    peak_bps = 6e6;
    max_latency = Some (Time.ms 300);
    max_jitter = Some (Time.ms 40);
    loss_tolerance = 0.05;
    realtime = true;
    isochronous = true;
    duration = Some (Time.sec 60.0);
  }

let run_schedule ?(sabotage = false) ?(wire = false) ~env ~seed schedule =
  let stack = Adaptive.create_stack ~seed () in
  let wire_handle =
    if wire then Some (Session.Wire.install stack.Adaptive.net) else None
  in
  let engine = stack.Adaptive.engine in
  let trace = Trace.create ~log_capacity:512 () in
  Unites.attach_trace stack.Adaptive.unites trace;
  let host_a = Host.create engine and host_b = Host.create engine in
  let a = Adaptive.add_host ~host_cpu:host_a stack "alpha" in
  let b = Adaptive.add_host ~host_cpu:host_b stack "beta" in
  let primary = primary_path env in
  let backup =
    [
      Profiles.custom ~name:"chaos-backup" ~bandwidth_bps:5e6
        ~propagation:(Time.ms 40) ~ber:1e-7 ~mtu:1500 ();
    ]
  in
  let routing = Routing.create engine stack.Adaptive.topology in
  Routing.set_symmetric_candidates routing ~a ~b [ primary; backup ];
  let route_monitor = Routing.monitor ~every:(Time.ms 50) routing in
  let capacity =
    List.fold_left
      (fun acc l -> Float.max acc (Link.bandwidth_bps l))
      (Link.bandwidth_bps (List.hd backup))
      [ List.hd primary ]
  in
  let checker =
    Invariant.create ~engine ~unites:stack.Adaptive.unites
      ~mantts:stack.Adaptive.mantts ~trace ~liveness_bound ~capacity_bps:capacity
      ()
  in
  let mantts = stack.Adaptive.mantts in
  Invariant.attach_dispatcher checker (Mantts.dispatcher (Mantts.entity mantts a));
  Invariant.attach_dispatcher checker (Mantts.dispatcher (Mantts.entity mantts b));
  let delivered = ref 0 in
  Mantts.set_app_handler (Mantts.entity mantts b) (fun _ _ -> incr delivered);
  let bulk =
    Mantts.open_session mantts ~name:"bulk" ~src:a
      ~acd:(Acd.make ~participants:[ b ] ~qos:bulk_qos ())
      ()
  in
  let media =
    Mantts.open_session mantts ~name:"media" ~src:a
      ~acd:(Acd.make ~participants:[ b ] ~qos:media_qos ())
      ()
  in
  Invariant.track_sender checker ~label:"bulk" bulk;
  Invariant.track_sender checker ~label:"media" media;
  let pace session ~bytes ~every ~from =
    let rec step at =
      if at <= duration then
        ignore
          (Engine.schedule engine ~at (fun () ->
               if Session.state session = Session.Established then
                 Session.send session ~bytes ();
               step (Time.add at every)))
    in
    step from
  in
  pace bulk ~bytes:4000 ~every:(Time.ms 50) ~from:(Time.ms 200);
  pace media ~bytes:2000 ~every:(Time.ms 33) ~from:(Time.ms 233);
  let fault_env =
    {
      Fault.links = primary;
      tail_links = [];
      hosts = [ host_a; host_b ];
      routing = Some routing;
    }
  in
  let on_apply =
    if sabotage then
      Some
        (fun (f : Fault.fault) ->
          if f.Fault.cls = Fault.Ber_burst then
            Invariant.inject_violation checker
              ~detail:"sabotage: planted on ber_burst application")
    else None
  in
  let injector =
    Fault.install ~engine ~trace ~unites:stack.Adaptive.unites ?on_apply
      fault_env schedule
  in
  Invariant.set_injector checker injector;
  Invariant.start checker;
  Adaptive.run stack ~until:(Time.add duration (Time.add liveness_bound (Time.ms 500)));
  Invariant.finish checker;
  Engine.Timer.cancel route_monitor;
  let switches =
    List.length
      (List.filter
         (fun (_, _, desc) ->
           String.length desc >= 7 && String.sub desc 0 7 = "switch ")
         (Mantts.adaptations mantts))
  in
  Option.iter
    (fun h -> Session.Wire.observe h stack.Adaptive.unites)
    wire_handle;
  {
    o_seed = seed;
    o_env = env;
    o_schedule = schedule;
    o_violations = Invariant.violations checker;
    o_hash = Trace.hash trace;
    o_dropped = Trace.dropped trace;
    o_injected = Fault.injected injector;
    o_recoveries = Fault.recoveries injector;
    o_failovers = Routing.failovers routing;
    o_delivered = !delivered;
    o_switches = switches;
    o_events = Engine.events_fired engine;
    o_wire = Option.map Session.Wire.report wire_handle;
    o_unites = Format.asprintf "%a" Unites.report stack.Adaptive.unites;
  }

let run_one ?sabotage ?wire ~env ~seed () =
  run_schedule ?sabotage ?wire ~env ~seed (schedule_of_seed ~env ~seed)

(* ------------------------------------------------------------------ *)
(* Shrinking *)

type shrink_result = {
  s_original : int;
  s_minimal : Fault.schedule;
  s_runs : int;
  s_outcome : outcome;
}

let min_shrunk_duration = Time.ms 100

let shrink ?(sabotage = false) ?wire ~env ~seed schedule =
  let runs = ref 0 in
  let fails sched =
    incr runs;
    not (ok (run_schedule ~sabotage ?wire ~env ~seed sched))
  in
  (* Drop-one passes to a fixed point: removing any single fault must
     make the failure disappear before we stop. *)
  let rec drop_pass sched =
    let n = List.length sched in
    let rec try_at i =
      if i >= n then sched
      else
        let candidate = List.filteri (fun j _ -> j <> i) sched in
        if candidate <> [] && fails candidate then drop_pass candidate
        else try_at (i + 1)
    in
    if n <= 1 then sched else try_at 0
  in
  (* Then halve each surviving fault's duration while the failure
     persists. *)
  let halve_pass sched =
    let rec try_at i sched =
      if i >= List.length sched then sched
      else
        let f = List.nth sched i in
        if f.Fault.duration > min_shrunk_duration then begin
          let f' =
            {
              f with
              Fault.duration =
                Time.max min_shrunk_duration (f.Fault.duration / 2);
            }
          in
          let candidate = List.mapi (fun j g -> if j = i then f' else g) sched in
          if fails candidate then try_at i candidate else try_at (i + 1) sched
        end
        else try_at (i + 1) sched
    in
    try_at 0 sched
  in
  let minimal = halve_pass (drop_pass schedule) in
  let s_outcome = run_schedule ~sabotage ?wire ~env ~seed minimal in
  { s_original = List.length schedule; s_minimal = minimal; s_runs = !runs; s_outcome }

let pp_repro fmt o =
  Format.fprintf fmt
    "@[<v>repro: seed=%d env=%s hash=0x%016Lx faults=%d@,%a@]" o.o_seed
    (environment_name o.o_env) o.o_hash
    (List.length o.o_schedule)
    Fault.pp_schedule o.o_schedule

(* ------------------------------------------------------------------ *)
(* Soak *)

type report = {
  r_runs : int;
  r_outcomes : outcome list;
  r_failures : (outcome * shrink_result) list;
}

(* The soak's run list: seed [seed + i] unless an explicit seed list
   overrides it (the CLI's --seeds flag), environment cycling through
   [environments] either way. *)
let run_grid ~environments ~seeds ~seed ~schedules =
  let run_seeds =
    match seeds with
    | Some l -> Array.of_list l
    | None -> Array.init schedules (fun i -> seed + i)
  in
  Array.mapi
    (fun i s -> (i, s, List.nth environments (i mod List.length environments)))
    run_seeds

let soak ?(sabotage = false) ?wire ?(environments = all_environments) ?seeds
    ?progress ~seed ~schedules () =
  if environments = [] then invalid_arg "Soak.soak: no environments";
  let grid = run_grid ~environments ~seeds ~seed ~schedules in
  let outcomes = ref [] and failures = ref [] in
  Array.iter
    (fun (i, run_seed, env) ->
      let o = run_one ~sabotage ?wire ~env ~seed:run_seed () in
      outcomes := o :: !outcomes;
      (match progress with Some f -> f i o | None -> ());
      if not (ok o) then
        failures :=
          (o, shrink ~sabotage ?wire ~env ~seed:run_seed o.o_schedule)
          :: !failures)
    grid;
  {
    r_runs = Array.length grid;
    r_outcomes = List.rev !outcomes;
    r_failures = List.rev !failures;
  }

let soak_par ?(sabotage = false) ?wire ?(environments = all_environments)
    ?seeds ?progress ?pool ~jobs ~seed ~schedules () =
  if environments = [] then invalid_arg "Soak.soak_par: no environments";
  if jobs <= 1 && Option.is_none pool then
    (* Exactly the sequential path — the byte-identity reference. *)
    soak ~sabotage ?wire ~environments ?seeds ?progress ~seed ~schedules ()
  else begin
    let grid = run_grid ~environments ~seeds ~seed ~schedules in
    (* Each task is a complete isolated run: fresh stack, fresh engine,
       fresh RNGs; the shrinker for a failing run executes inside the
       same task, so the report needs no cross-task state. *)
    let settled =
      Adaptive_fleet.Fleet.map ?pool ~jobs
        (fun (_, run_seed, env) ->
          let o = run_one ~sabotage ?wire ~env ~seed:run_seed () in
          let s =
            if ok o then None
            else Some (shrink ~sabotage ?wire ~env ~seed:run_seed o.o_schedule)
          in
          (o, s))
        grid
    in
    (* Reduce in canonical run order: progress lines, outcome order and
       failure order all match the sequential soak byte for byte. *)
    let outcomes = ref [] and failures = ref [] in
    Array.iteri
      (fun i (o, s) ->
        outcomes := o :: !outcomes;
        (match progress with Some f -> f i o | None -> ());
        match s with
        | Some shrunk -> failures := (o, shrunk) :: !failures
        | None -> ())
      settled;
    {
      r_runs = Array.length grid;
      r_outcomes = List.rev !outcomes;
      r_failures = List.rev !failures;
    }
  end
