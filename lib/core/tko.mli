(** TKO — "Transport Kernel Objects" (§4.2).

    The session architecture level: a {!context} is the executable
    representation the synthesizer builds from an SCS — a table of
    instantiated mechanism components (the analog of the C++ table of
    pointers to abstract base classes in Figure 5).  The protocol
    interpreter ({!Session}) invokes operations on PDUs through the
    context.

    [segue] is the live-swap mechanism: rebinding one or more components
    of an {e established} context to different concrete implementations
    without losing shared session state (send window, receive sequencing,
    RTT history survive a swap untouched).

    Templates (§4.2.2) pre-assemble common configurations.  {e Static}
    templates trade flexibility for speed: a context synthesized from one
    refuses segue and must be re-synthesized to change.  {e Reconfigurable}
    templates and fully dynamic syntheses accept segue. *)

open Adaptive_mech

type binding =
  | Static_template of string  (** Fully customized; cannot change. *)
  | Reconfigurable_template of string  (** Pre-assembled but swappable. *)
  | Synthesized  (** Built mechanism-by-mechanism from the SCS. *)

type context = {
  binding : binding;
  mutable scs : Scs.t;  (** Currently bound configuration. *)
  window : Window.t;  (** Shared in-flight state (survives segue). *)
  rtt : Rtt.t;  (** Shared RTT history (survives segue). *)
  mutable reorder : Reorder.t;  (** Receiver sequencing state. *)
  mutable fec_rx_cell : Fec.Receiver.t option;
      (** FEC reconstruction state; [None] until first touched. *)
  mutable fec_tx : Fec.Sender.t option;  (** Parity accumulator when FEC
                                             recovery is bound. *)
  mutable rate : Rate.t option;  (** Pacer when rate-based transmission
                                     is bound. *)
  mutable cc : Slowstart.t option;  (** Congestion window when bound. *)
  mutable playout : Playout.t option;  (** Playout buffer when bound. *)
  mutable segue_count : int;  (** Number of live swaps applied. *)
}

val synthesize : ?binding:binding -> Scs.t -> context
(** Instantiate every component the SCS names (Stage III).  Default
    binding is [Synthesized]. *)

val fec_rx : context -> Fec.Receiver.t
(** The context's FEC receiver, materialized on first use. *)

val segue : context -> Scs.t -> (string list, string) result
(** Rebind the context to a new SCS.  Returns the component names that
    changed ([Ok []] when the SCS is identical).  [Error _] when the
    context came from a static template.  Shared state is preserved;
    components present in both configurations keep their state
    (e.g. pacer token level survives a rate change via
    {!Rate.set_rate}). *)

val effective_send_window : context -> peer_window:int -> int
(** Segments the sender may currently have outstanding: the transmission
    window bounded by the peer advertisement and any congestion window.
    [max_int] for rate-based transmission. *)

(** The template cache (§4.2.2): named default configurations for
    commonly requested SCSs. *)
module Templates : sig
  val tcp_compatible : string
  (** Static template: TCP-like reliable byte stream. *)

  val udp_compatible : string
  (** Static template: bare datagrams. *)

  val media_stream : string
  (** Reconfigurable: rate-paced, playout-buffered continuous media. *)

  val bulk_lfn : string
  (** Reconfigurable: bulk transfer over long-fat-network paths (scaled
      window + SACK + selective repeat). *)

  val transaction : string
  (** Reconfigurable: implicit-setup request/response. *)

  val reliable_multicast : string
  (** Reconfigurable: NACK-based selective-repeat multicast. *)

  val swarm_lite : string
  (** Reconfigurable: the minimal-footprint configuration MANTTS admission
      control counter-proposes under overload — reliable and ordered, but
      with a tiny window, a small receive-buffer commitment and background
      priority. *)

  val names : string list
  (** Every template name. *)

  val find : string -> (binding * Scs.t) option
  (** Look up a template. *)

  val lookup_scs : Scs.t -> (binding * string) option
  (** Reverse lookup: does some template pre-assemble this exact SCS?
      Counts a cache hit when it does. *)

  val cache_hits : unit -> int
  (** Reverse-lookup successes since start-up. *)

  val cache_misses : unit -> int
  (** Reverse-lookup failures since start-up. *)
end
