(** UNITES — "UNIform Transport Evaluation Subsystem" (§4.3, Figure 6).

    Coordinates metric specification, collection, analysis and
    presentation.  Metrics are {e blackbox} (observable without internal
    instrumentation: throughput, round-trip latency) or {e whitebox}
    (requiring instrumentation of the synthesized configuration:
    connection-establishment latency, retransmission counts, jitter,
    loss, per-mechanism event counts).  Whitebox collection can be
    disabled wholesale, which is how the instrumentation-overhead
    experiment compares the two modes.

    The repository aggregates per-session accumulators and can present
    them per-connection, per-host (by aggregating a host's sessions) or
    system-wide. *)

open Adaptive_sim

type metric =
  | Throughput  (** Delivered application bits per second (blackbox). *)
  | Rtt  (** Measured round-trip time, seconds (blackbox). *)
  | Setup_latency  (** Connection establishment, seconds. *)
  | Delivery_latency  (** Application stamp to delivery, seconds. *)
  | Jitter  (** Variation between consecutive deliveries' latencies,
                seconds (the paper's "degree of jitter"). *)
  | Segments_sent  (** First transmissions. *)
  | Segments_delivered  (** Segments handed to the application. *)
  | Bytes_delivered  (** Application payload bytes delivered. *)
  | Retransmissions  (** Segments re-sent. *)
  | Timeouts  (** Retransmission timer expirations. *)
  | Dup_segments  (** Duplicates suppressed (or delivered). *)
  | Corrupt_detected  (** Checksum/CRC caught a bit error. *)
  | Corrupt_delivered  (** Bit-damaged data reached the application. *)
  | Late_discards  (** Segments past their playout point. *)
  | Losses_unrecovered  (** Segments given up on (loss-tolerant
                            configurations). *)
  | Fec_parity_sent  (** Parity PDUs emitted. *)
  | Fec_recovered  (** Segments reconstructed from parity. *)
  | Acks_sent  (** Acknowledgment PDUs emitted. *)
  | Nacks_sent  (** Negative acknowledgments emitted. *)
  | Control_pdus  (** Connection/signaling PDUs exchanged. *)
  | Reconfigurations  (** Segue operations applied. *)
  | Window_size  (** Effective send window samples. *)
  | Host_cpu  (** Host CPU seconds consumed. *)
  | Sched_events_fired  (** Engine events executed since the last
                            scheduler sample. *)
  | Sched_timers_rearmed  (** Timer re-arms (slot-reusing reschedules)
                              since the last scheduler sample. *)
  | Sched_cancelled_ratio  (** Cancelled-but-unswept entries as a
                               fraction of the queued population. *)
  | Sched_wheel_hit_rate  (** Fraction of event inserts served by a
                              timer-wheel slot rather than a heap. *)
  | Faults_injected  (** Faults the chaos injector applied (recorded
                         under {!chaos_session}). *)
  | Fault_recovery  (** Time from a fault's heal to the next observed
                        application delivery, seconds — the chaos
                        subsystem's time-to-recover distribution. *)
  | Sessions_open  (** Sessions admitted (recorded under
                       {!swarm_session}). *)
  | Sessions_refused  (** Open attempts refused by MANTTS admission
                          control. *)
  | Sessions_degraded  (** Open attempts admitted only after the ACD was
                           negotiated down to a lighter configuration. *)
  | Demux_probes  (** Probe count of each dispatcher connection-table
                      lookup — the deterministic proxy for demux cost
                      (1.0 = first-slot hit). *)
  | Table_occupancy  (** Connection-table load factor samples
                         ((live + time-wait) / capacity), recorded on
                         insert and retire — the occupancy histogram. *)
  | Timewait_drops  (** Late segments absorbed by a time-wait entry
                        instead of reaching the acceptor. *)
  | Wire_encodes  (** Frames serialized by the fused wire-true encoder
                      (recorded under {!wire_session}). *)
  | Wire_decodes  (** Frames verified and parsed in place at delivery. *)
  | Wire_rejects  (** Frames the codec rejected (physical corruption
                      caught by the fused checksum). *)
  | Wire_fused_sums  (** Payload copies whose Internet checksum was
                         computed inside the copy pass itself. *)
  | Wire_pool_reuse  (** Fraction of frame leases served from the buffer
                         pool rather than freshly allocated. *)
  | Steer_swaps  (** Component swaps the STEER policy engine applied
                     (recorded under {!steer_session}). *)
  | Steer_blocked  (** Swap decisions suppressed by the per-session
                       reconfigure cooldown. *)
  | Steer_time_in_config  (** Seconds a steered session spent in a
                              configuration before STEER swapped it out —
                              the per-swap dwell-time distribution. *)

type kind = Blackbox | Whitebox

val metric_kind : metric -> kind
(** Classification per §4.3. *)

val metric_name : metric -> string
(** Short stable name. *)

val all_metrics : metric list
(** Every metric, blackbox first. *)

type t
(** A metric repository. *)

val create :
  ?whitebox:bool -> ?bucket:Time.t -> ?reservoir:int ->
  ?estimator:Stats.estimator -> ?session_cap:int -> Engine.t -> t
(** [create engine] makes a repository; [whitebox] (default [true])
    enables whitebox collection.  [bucket] (default 1 s) is the width of
    the time buckets behind {!series} — the TMC "sampling rate".
    [reservoir] (default 8192) bounds each per-session accumulator's
    quantile sample; many-session workloads shrink it so tens of
    thousands of sessions do not cost 64 KiB of reservoir each.
    [estimator] (default {!Stats.Reservoir}) selects the quantile sketch
    for every accumulator: megaswarm-scale runs pass {!Stats.P2} so the
    repository's memory is ~15 floats per (session, metric) bucket
    regardless of sample volume.  [session_cap] (default unbounded)
    bounds the number of real sessions tracked individually: the first
    [session_cap] distinct session ids (deterministic first-contact
    order) keep per-session accumulators, later ones fold into
    {!overflow_session} so GIGASWARM-scale runs hold per-session state
    for a bounded prefix while totals stay exact. *)

val set_session_cap : t -> int -> unit
(** Adjust the individually-tracked session bound (min 1).  Sessions
    already admitted stay tracked. *)

val whitebox_enabled : t -> bool
(** Whether whitebox metrics are being recorded. *)

val set_whitebox : t -> bool -> unit
(** Toggle whitebox collection. *)

val register_session : t -> id:int -> name:string -> unit
(** Announce a session so reports can label it. *)

val restrict_session : t -> id:int -> metric list -> unit
(** Honor a session's Transport Measurement Component: record only the
    listed whitebox metrics for this session (blackbox metrics are always
    collected).  An empty list removes the restriction. *)

val observe : t -> session:int -> metric -> float -> unit
(** Record one observation.  Whitebox observations are dropped when
    whitebox collection is off. *)

val count : t -> session:int -> metric -> unit
(** [observe t ~session m 1.0]. *)

val stats : t -> session:int -> metric -> Stats.summary option
(** Summary of a session's metric, if any observation was recorded. *)

val total : t -> session:int -> metric -> float
(** Sum of a session's observations (0 when none). *)

val mean : t -> session:int -> metric -> float
(** Mean of a session's observations ([nan] when none). *)

val aggregate : t -> metric -> Stats.summary option
(** System-wide summary across sessions. *)

val aggregate_total : t -> metric -> float
(** System-wide sum. *)

val sessions : t -> (int * string) list
(** Registered sessions in id order. *)

val whitebox_samples : t -> int
(** Whitebox observations actually recorded — the instrumentation
    activity the overhead experiment charges for. *)

val scheduler_session : int
(** Reserved pseudo-session id under which scheduler overhead metrics
    are recorded (real connection ids start at 1). *)

val chaos_session : int
(** Reserved pseudo-session id ([-1]) under which the chaos subsystem
    records {!Faults_injected} counts and {!Fault_recovery} times —
    faults belong to the run, not to any one connection. *)

val swarm_session : int
(** Reserved pseudo-session id ([-2]) under which the dispatcher and
    MANTTS admission control record many-session scale metrics:
    {!Sessions_open}, {!Sessions_refused}, {!Sessions_degraded},
    {!Demux_probes}, {!Table_occupancy} and {!Timewait_drops}.  All of
    them are deterministic functions of the schedule (probe counts, not
    wall-clock), so whitebox reports stay byte-identical across
    parallel-fleet replays. *)

val wire_session : int
(** Reserved pseudo-session id ([-3]) under which the wire-true data
    path records {!Wire_encodes}, {!Wire_decodes}, {!Wire_rejects},
    {!Wire_fused_sums} and {!Wire_pool_reuse} — the codec and buffer
    pool belong to the stack, not to any one connection. *)

val steer_session : int
(** Reserved pseudo-session id ([-4]) under which the STEER closed-loop
    policy engine records {!Steer_swaps}, {!Steer_blocked} and
    {!Steer_time_in_config} — the steering loop belongs to the stack,
    not to any one connection. *)

val overflow_session : int
(** Reserved pseudo-session id ([-5]) that absorbs observations from
    real sessions beyond the [session_cap]: their totals are preserved
    in aggregate under this id instead of per-session accumulators. *)

val attach_trace : t -> Trace.t -> unit
(** Attach a trace sink so {!report} presents its counters — including
    the dropped-entry count of the bounded event log — alongside the
    metric repository. *)

val attached_trace : t -> Trace.t option
(** The sink given to {!attach_trace}, if any. *)

val sample_scheduler : t -> unit
(** Fold the engine's whitebox scheduler counters ({!Engine.counters})
    into the repository under {!scheduler_session}: events fired and
    timers re-armed since the previous sample, plus the current
    cancelled-entry ratio and wheel hit rate.  Called automatically by
    {!report}; experiments can also call it periodically to build the
    bucketed series.  A no-op while whitebox collection is off. *)

val series : t -> session:int -> metric -> (Time.t * float) list
(** Per-bucket totals of a session's metric over simulated time, oldest
    first: [(bucket_start, sum_of_observations_in_bucket)].  Empty
    buckets are omitted.  This is the presentation UNITES' interactive
    displays draw from (Figure 6). *)

val aggregate_series : t -> metric -> (Time.t * float) list
(** Bucketed totals across every session. *)

val report : Format.formatter -> t -> unit
(** Per-session presentation of all collected metrics. *)
