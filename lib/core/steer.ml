open Adaptive_sim
open Adaptive_net
open Adaptive_mech

type policy = {
  loss_hi : float;
  loss_lo : float;
  fec_loss_hi : float;
  fec_group : int;
  cong_hi : float;
  cong_lo : float;
  idle_after : Time.t;
  debounce : int;
}

let default_policy =
  {
    loss_hi = 0.05;
    loss_lo = 0.01;
    fec_loss_hi = 0.15;
    fec_group = 8;
    cong_hi = 0.85;
    cong_lo = 0.40;
    idle_after = Time.sec 1.0;
    debounce = 2;
  }

(* Thresholds no signal can reach: loss and utilization live in [0, 1],
   so [infinity] bounds are never exceeded and negative bounds are never
   undershot; [max_int] idleness outlives any horizon.  The debounce is
   also unreachable — rules whose trigger is a structural condition
   rather than a threshold (the backlog rule watches queue occupancy
   against an infinite congestion bound) must be silenced too. *)
let infinite =
  {
    loss_hi = infinity;
    loss_lo = -1.0;
    fec_loss_hi = infinity;
    fec_group = 8;
    cong_hi = infinity;
    cong_lo = -1.0;
    idle_after = max_int;
    debounce = max_int;
  }

type watch = {
  w_session : Session.t;
  w_base : Scs.t;  (* configuration at watch time — the restore target *)
  w_loss_tolerant : bool;
  mutable w_dead : bool;
  mutable w_since : Time.t;  (* when the current configuration was entered *)
  mutable w_last_swap : Time.t;  (* local cooldown floor (sessions without
                                    a MANTTS monitor record still debounce) *)
  mutable w_loss_streak : int;
  mutable w_calm_streak : int;
  mutable w_cong_streak : int;
  mutable w_decong_streak : int;
  mutable w_backlog_streak : int;
  mutable w_idle_since : Time.t option;
  mutable w_shed : bool;
}

type t = {
  mantts : Mantts.t;
  engine : Engine.t;
  unites : Unites.t;
  net : Pdu.t Network.t;
  pol : policy;
  mutable arr : watch option array;
  mutable len : int;
  mutable dead : int;
  mutable timer : Engine.Timer.timer option;
  mutable armed : bool;
  mutable swap_log : (Time.t * int * string) list;  (* newest first *)
  mutable n_swaps : int;
  mutable n_blocked : int;
}

let create ?(policy = default_policy) mantts =
  let unites = Mantts.unites mantts in
  Unites.register_session unites ~id:Unites.steer_session ~name:"steer";
  {
    mantts;
    engine = Mantts.engine mantts;
    unites;
    net = Mantts.network mantts;
    pol = policy;
    arr = Array.make 16 None;
    len = 0;
    dead = 0;
    timer = None;
    armed = false;
    swap_log = [];
    n_swaps = 0;
    n_blocked = 0;
  }

let policy t = t.pol
let watched t = t.len - t.dead
let swaps t = List.rev t.swap_log
let swap_count t = t.n_swaps
let blocked_count t = t.n_blocked

let compact t =
  if t.dead > 16 && t.dead * 2 > t.len then begin
    let w = ref 0 in
    for r = 0 to t.len - 1 do
      match t.arr.(r) with
      | Some watch when not watch.w_dead ->
        t.arr.(!w) <- t.arr.(r);
        incr w
      | Some _ | None -> ()
    done;
    for i = !w to t.len - 1 do
      t.arr.(i) <- None
    done;
    t.len <- !w;
    t.dead <- 0
  end

(* ------------------------------------------------------------------ *)
(* Signals *)

(* Path whitebox: worst cross traffic (a sender must not read its own
   queueing as a reason to back off) and worst hop BER along the
   session's routes.  The BER matters because a session with no recovery
   machinery never retransmits, so its {!Session.loss_rate_estimate} is
   stuck at zero — exactly the sessions a bit-error burst silently
   bleeds.  The per-tick cache keeps a 10k-watch population from
   re-walking the same route 10k times. *)
let path_signals t cache watch =
  let src = Session.local_addr watch.w_session in
  List.fold_left
    (fun acc dst ->
      let hops =
        match Hashtbl.find_opt cache (src, dst) with
        | Some hops -> hops
        | None ->
          let hops = Network.path_state t.net ~src ~dst in
          Hashtbl.add cache (src, dst) hops;
          hops
      in
      List.fold_left
        (fun (util, ber) (h : Network.hop_state) ->
          (Float.max util h.Network.cross_traffic, Float.max ber h.Network.hop_ber))
        acc hops)
    (0.0, 0.0)
    (Session.peers watch.w_session)

(* Expected per-segment corruption probability at this session's segment
   size — the loss a silent (no-feedback) configuration is suffering
   without being able to report it. *)
let predicted_segment_loss watch ~ber =
  if ber <= 0.0 then 0.0
  else
    let bits = float_of_int (8 * (Session.scs watch.w_session).Scs.segment_bytes) in
    1.0 -. ((1.0 -. ber) ** bits)

(* ------------------------------------------------------------------ *)
(* Rule evaluation — at most one candidate per session per tick *)

let recovery_name = Params.recovery_to_string
let reporting_name = Params.reporting_to_string

(* Upgrade the feedback channel alongside selective repeat: retransmitting
   exactly the missing segments needs the receiver to say which ones. *)
let selective_reporting = function
  | Params.Cumulative_ack { delay } -> Params.Selective_ack { delay }
  | (Params.No_report | Params.Selective_ack _ | Params.Nack_on_gap) as r -> r

let candidate t watch ~loss ~util ~idle_for =
  let cur = Session.scs watch.w_session in
  let pol = t.pol in
  let arq r = r = Params.Go_back_n || r = Params.Selective_repeat in
  if watch.w_shed && not (idle_for <> None) then
    (* Activity resumed: bring the base machinery back immediately. *)
    Some
      ( Printf.sprintf "switch recovery to %s (steer: active again)"
          (recovery_name watch.w_base.Scs.recovery),
        { cur with
          Scs.recovery = watch.w_base.Scs.recovery;
          reporting = watch.w_base.Scs.reporting;
        },
        fun () -> watch.w_shed <- false )
  else if
    (not watch.w_shed)
    && (match idle_for with Some d -> d >= pol.idle_after | None -> false)
  then
    if watch.w_loss_tolerant && cur.Scs.recovery <> Params.No_recovery then
      Some
        ( "switch recovery to none (steer: idle shed)",
          { cur with Scs.recovery = Params.No_recovery; reporting = Params.No_report },
          fun () -> watch.w_shed <- true )
    else if (not watch.w_loss_tolerant) && cur.Scs.recovery = Params.Selective_repeat
    then
      (* Semantics-preserving shed: both ARQ schemes guarantee delivery,
         go-back-n just keeps less per-segment bookkeeping. *)
      Some
        ( "switch recovery to go_back_n (steer: idle shed)",
          { cur with Scs.recovery = Params.Go_back_n },
          fun () -> watch.w_shed <- true )
    else None
  else if watch.w_shed then None
  else if
    watch.w_loss_tolerant && watch.w_loss_streak >= pol.debounce
    && cur.Scs.recovery = Params.No_recovery
  then
    (* An unprotected loss-tolerant session bleeding segments.  Default
       to selective repeat — retransmission recovers everything a parity
       scheme only recovers sometimes — but take inline FEC where a
       retransmission works against the stream: into a congested path
       (every resend is another ticket in the drop lottery), and for
       playout streams, whose repairs race a deadline while parity
       arrives in-band with the group it protects. *)
    if
      (util > pol.cong_hi && loss > pol.fec_loss_hi)
      || (Session.context watch.w_session).Tko.playout <> None
    then
      Some
        ( Printf.sprintf "switch recovery to fec/%d (steer: loss %.3f, unprotected)"
            pol.fec_group loss,
          { cur with
            Scs.recovery = Params.Forward_error_correction { group = pol.fec_group };
          },
          fun () -> () )
    else
      Some
        ( Printf.sprintf
            "switch recovery to selective_repeat (steer: loss %.3f, unprotected)"
            loss,
          { cur with
            Scs.recovery = Params.Selective_repeat;
            reporting =
              (match cur.Scs.reporting with
              | Params.No_report | Params.Nack_on_gap ->
                Params.Selective_ack { delay = Time.ms 2 }
              | (Params.Cumulative_ack _ | Params.Selective_ack _) as r ->
                selective_reporting r);
          },
          fun () -> () )
  else if
    watch.w_loss_tolerant && watch.w_loss_streak >= pol.debounce
    && loss > pol.fec_loss_hi && arq cur.Scs.recovery
    && (util > pol.cong_hi
       || (Session.context watch.w_session).Tko.playout <> None)
  then
    (* ARQ → FEC where retransmission works against the stream: repairs
       for a playout stream race a deadline parity never misses, and
       repairs into a congested path amplify the very overload dropping
       them. *)
    Some
      ( Printf.sprintf "switch recovery to fec/%d (steer: burst loss %.3f > %.3f)"
          pol.fec_group loss pol.fec_loss_hi,
        { cur with
          Scs.recovery = Params.Forward_error_correction { group = pol.fec_group };
        },
        fun () -> () )
  else if
    watch.w_loss_streak >= pol.debounce && cur.Scs.recovery = Params.Go_back_n
  then
    (* Go-back-n under sustained loss floods the path with redundant
       resends and parks the window on the oldest gap.  Swap to selective
       repeat, and open the window in the same segue (one swap, one
       cooldown charge): under loss, in-flight-but-lost segments pin
       window slots, so the derived size starves first transmissions. *)
    let transmission =
      match (cur.Scs.transmission, watch.w_base.Scs.transmission) with
      | Params.Sliding_window { window }, Params.Sliding_window { window = bw }
        when window < 4 * bw ->
        Params.Sliding_window { window = min (4 * bw) (2 * window) }
      | (t : Params.transmission), _ -> t
    in
    Some
      ( Printf.sprintf
          "switch recovery to selective_repeat (steer: loss %.3f > %.3f)" loss
          pol.loss_hi,
        { cur with
          Scs.recovery = Params.Selective_repeat;
          reporting = selective_reporting cur.Scs.reporting;
          transmission;
        },
        fun () -> () )
  else if
    watch.w_calm_streak >= pol.debounce
    && (cur.Scs.recovery <> watch.w_base.Scs.recovery
       || cur.Scs.reporting <> watch.w_base.Scs.reporting)
  then
    Some
      ( Printf.sprintf "switch recovery to %s/%s (steer: calm, loss %.3f < %.3f)"
          (recovery_name watch.w_base.Scs.recovery)
          (reporting_name watch.w_base.Scs.reporting)
          loss pol.loss_lo,
        { cur with
          Scs.recovery = watch.w_base.Scs.recovery;
          reporting = watch.w_base.Scs.reporting;
        },
        fun () -> () )
  else if
    watch.w_backlog_streak >= pol.debounce && util < pol.cong_hi
    &&
    match (cur.Scs.transmission, watch.w_base.Scs.transmission) with
    | Params.Sliding_window { window }, Params.Sliding_window { window = bw } ->
      window < 4 * bw
    | _, _ -> false
  then (
    (* The send queue has been backlogged for consecutive ticks while the
       path sits idle: the window, not the network, is the bottleneck.
       Open it (bounded at 4x the derived size) so the session drains
       before its close instead of abandoning the tail of its payload. *)
    match cur.Scs.transmission with
    | Params.Sliding_window { window } ->
      Some
        ( Printf.sprintf "scale window to %d (steer: backlog, path idle %.2f)"
            (2 * window) util,
          { cur with Scs.transmission = Params.Sliding_window { window = 2 * window } },
          fun () -> () )
    | Params.Rate_based _ | Params.Stop_and_wait -> None)
  else if watch.w_cong_streak >= pol.debounce then
    match (cur.Scs.transmission, watch.w_base.Scs.transmission) with
    | Params.Rate_based { rate_bps; burst }, base ->
      let base_rate =
        match base with Params.Rate_based { rate_bps = b; _ } -> b | _ -> rate_bps
      in
      let next = Float.max (0.25 *. base_rate) (0.5 *. rate_bps) in
      if Float.abs (next -. rate_bps) < 1.0 then None
      else
        Some
          ( Printf.sprintf "scale rate to %.0f bps (steer: congestion %.2f > %.2f)"
              next util pol.cong_hi,
            { cur with Scs.transmission = Params.Rate_based { rate_bps = next; burst } },
            fun () -> () )
    | Params.Sliding_window { window }, _ ->
      if window <= 2 then None
      else
        Some
          ( Printf.sprintf "scale window to %d (steer: congestion %.2f > %.2f)"
              (max 2 (window / 2)) util pol.cong_hi,
            { cur with Scs.transmission = Params.Sliding_window { window = max 2 (window / 2) } },
            fun () -> () )
    | Params.Stop_and_wait, _ -> None
  else if watch.w_decong_streak >= pol.debounce then
    match (cur.Scs.transmission, watch.w_base.Scs.transmission) with
    | ( Params.Rate_based { rate_bps; burst },
        Params.Rate_based { rate_bps = base_rate; _ } ) ->
      let next = Float.min base_rate (2.0 *. rate_bps) in
      if Float.abs (next -. rate_bps) < 1.0 then None
      else
        Some
          ( Printf.sprintf "scale rate to %.0f bps (steer: calm %.2f < %.2f)" next
              util pol.cong_lo,
            { cur with Scs.transmission = Params.Rate_based { rate_bps = next; burst } },
            fun () -> () )
    | ( Params.Sliding_window { window },
        Params.Sliding_window { window = base_window } ) ->
      let next = min base_window (window * 2) in
      (* [<=], not [=]: a window the backlog rule raised above its base
         must not be "restored" downward by the decongestion path. *)
      if next <= window then None
      else
        Some
          ( Printf.sprintf "scale window to %d (steer: calm %.2f < %.2f)" next util
              pol.cong_lo,
            { cur with Scs.transmission = Params.Sliding_window { window = next } },
            fun () -> () )
    | ( (Params.Rate_based _ | Params.Sliding_window _ | Params.Stop_and_wait),
        (Params.Rate_based _ | Params.Sliding_window _ | Params.Stop_and_wait) ) ->
      None
  else None

let reset_streaks watch =
  watch.w_loss_streak <- 0;
  watch.w_calm_streak <- 0;
  watch.w_cong_streak <- 0;
  watch.w_decong_streak <- 0;
  watch.w_backlog_streak <- 0

let apply t watch ~now desc next on_success =
  match Session.reconfigure watch.w_session next with
  | Ok [] -> false
  | Ok _changed ->
    Unites.count t.unites ~session:Unites.steer_session Unites.Steer_swaps;
    Unites.observe t.unites ~session:Unites.steer_session Unites.Steer_time_in_config
      (Time.to_sec (Time.diff now watch.w_since));
    watch.w_since <- now;
    watch.w_last_swap <- now;
    Mantts.note_switch t.mantts watch.w_session desc;
    (match Unites.attached_trace t.unites with
    | Some trace ->
      Trace.event trace ~at:now ~category:"steer.swap"
        ~detail:(Printf.sprintf "%d:%s" (Session.id watch.w_session) desc)
    | None -> ());
    t.swap_log <- (now, Session.id watch.w_session, desc) :: t.swap_log;
    t.n_swaps <- t.n_swaps + 1;
    on_success ();
    true
  | Error _ -> false

let steer_one t cache ~now watch =
  let session = watch.w_session in
  let pol = t.pol in
  let util, ber = path_signals t cache watch in
  (* The retransmission-based estimate only sees losses the recovery
     machinery noticed; the BER-predicted rate sees what a silent
     configuration is losing.  Steer on the worse of the two. *)
  let loss =
    Float.max (Session.loss_rate_estimate session)
      (predicted_segment_loss watch ~ber)
  in
  let idle = Session.send_queue_empty session in
  (match (idle, watch.w_idle_since) with
  | true, None -> watch.w_idle_since <- Some now
  | true, Some _ -> ()
  | false, _ -> watch.w_idle_since <- None);
  let idle_for =
    match watch.w_idle_since with
    | Some since -> Some (Time.diff now since)
    | None -> None
  in
  watch.w_backlog_streak <- (if idle then 0 else watch.w_backlog_streak + 1);
  watch.w_loss_streak <- (if loss > pol.loss_hi then watch.w_loss_streak + 1 else 0);
  watch.w_calm_streak <- (if loss < pol.loss_lo then watch.w_calm_streak + 1 else 0);
  watch.w_cong_streak <- (if util > pol.cong_hi then watch.w_cong_streak + 1 else 0);
  watch.w_decong_streak <-
    (if util < pol.cong_lo then watch.w_decong_streak + 1 else 0);
  match candidate t watch ~loss ~util ~idle_for with
  | None -> ()
  | Some (desc, next, on_success) ->
    let last =
      match Mantts.last_reconfigured t.mantts session with
      | Some ts -> Time.max ts watch.w_last_swap
      | None -> watch.w_last_swap
    in
    if Time.diff now last >= Mantts.reconfigure_cooldown then begin
      if apply t watch ~now desc next on_success then reset_streaks watch
    end
    else begin
      t.n_blocked <- t.n_blocked + 1;
      Unites.count t.unites ~session:Unites.steer_session Unites.Steer_blocked
    end

(* One shared tick walks every live watch in insertion (= session open)
   order, so runs are deterministic and the engine carries one recurring
   event regardless of watch count.  Re-armed only while watches remain. *)
let rec arm t =
  if not t.armed then begin
    t.armed <- true;
    let delay = Mantts.monitor_interval in
    match t.timer with
    | Some timer -> Engine.Timer.reschedule timer ~delay
    | None ->
      t.timer <- Some (Engine.Timer.one_shot t.engine ~delay (fun () -> tick t))
  end

and tick t =
  t.armed <- false;
  let now = Engine.now t.engine in
  let cache = Hashtbl.create 8 in
  compact t;
  for i = 0 to t.len - 1 do
    match t.arr.(i) with
    | Some watch when not watch.w_dead ->
      if Session.state watch.w_session = Session.Closed then begin
        watch.w_dead <- true;
        t.dead <- t.dead + 1
      end
      else steer_one t cache ~now watch
    | Some _ | None -> ()
  done;
  if t.len > t.dead then arm t

let watch t ?(loss_tolerant = false) session =
  match (Session.context session).Tko.binding with
  | Tko.Static_template _ -> ()  (* cannot segue; nothing to steer *)
  | Tko.Reconfigurable_template _ | Tko.Synthesized ->
    if Session.state session <> Session.Closed then begin
      let w =
        {
          w_session = session;
          w_base = Session.scs session;
          w_loss_tolerant = loss_tolerant;
          w_dead = false;
          w_since = Engine.now t.engine;
          w_last_swap = Time.zero;
          w_loss_streak = 0;
          w_calm_streak = 0;
          w_cong_streak = 0;
          w_decong_streak = 0;
          w_backlog_streak = 0;
          w_idle_since = None;
          w_shed = false;
        }
      in
      if t.len = Array.length t.arr then begin
        let next = Array.make (2 * t.len) None in
        Array.blit t.arr 0 next 0 t.len;
        t.arr <- next
      end;
      t.arr.(t.len) <- Some w;
      t.len <- t.len + 1;
      (* Protect at birth: a loss-tolerant session admitted while the
         path whitebox already shows burst-level BER would bleed its
         opening segments for a whole monitor tick (plus the debounce)
         before the loop notices — and a sender with no recovery
         machinery keeps no copies, so those losses are unrecoverable
         forever.  Treat the debounce as already served by the path
         itself and evaluate the rules once right now; the ordinary
         swap path (cooldown, UNITES cost accounting, switch log)
         applies unchanged. *)
      (if loss_tolerant && (Session.scs session).Scs.recovery = Params.No_recovery
       then
         let cache = Hashtbl.create 1 in
         let _, ber = path_signals t cache w in
         if predicted_segment_loss w ~ber > t.pol.loss_hi then begin
           w.w_loss_streak <- max 0 (t.pol.debounce - 1);
           steer_one t cache ~now:(Engine.now t.engine) w
         end);
      arm t
    end
