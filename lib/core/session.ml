open Adaptive_sim
open Adaptive_net
open Adaptive_mech

type state = Opening | Established | Closing | Closed

type delivery = {
  seq : int;
  bytes : int;
  app_stamp : Time.t;
  delivered_at : Time.t;
  damaged : bool;
  payload : Adaptive_buf.Msg.t option;
}

type pending_send = {
  ps_bytes : int;
  ps_stamp : Time.t;
  ps_last : bool;
  ps_payload : Adaptive_buf.Msg.t option;
}

type dispatcher = {
  net : Pdu.t Network.t;
  d_engine : Engine.t;
  d_addr : Network.addr;
  d_host : Host.t;
  d_unites : Unites.t;
  conns : t Conntable.t;
  mutable acceptor :
    (src:Network.addr -> conn:int -> proposal:Scs.t option -> accept_decision) option;
  mutable d_tap : (t -> delivery -> unit) option;
      (* Invoked on every application delivery, before the endpoint's own
         [on_deliver] — the chaos invariant monitors' observation point. *)
  mutable d_on_close : (t -> unit) option;
      (* Invoked once per endpoint when it leaves the live set (whatever
         the teardown path) — MANTTS retires its monitor here instead of
         sweeping the whole population every tick. *)
  mutable d_committed : int;
      (* Running sum of every live endpoint's [recv_buffer_segments]:
         the acceptor's admission math reads this in O(1) where folding
         the connection table was O(capacity) per accept. *)
  (* One coalesced sweeper expires every time-wait entry in the table;
     it is armed only while such entries exist, so an idle dispatcher
     schedules nothing. *)
  mutable tw_timer : Engine.Timer.timer option;
  mutable tw_armed : bool;
  mutable tw_sweeps : int; (* sweeper firings, cumulative *)
  mutable tw_expired : int; (* time-wait entries expired, cumulative *)
  d_soa : Sessoa.t;
      (* Flat columns for every endpoint's per-event-touched counters;
         see sessoa.mli.  The boxed record below keeps only cold and
         setup state. *)
}

and accept_decision =
  | Accept of {
      scs : Scs.t;
      name : string;
      on_deliver : (t -> delivery -> unit) option;
      on_signal : (t -> string -> string) option;
    }
  | Reject

and t = {
  id : int;
  ep_name : string;
  disp : dispatcher;
  soa_slot : int;
      (* Index of this endpoint's row in the dispatcher's [Sessoa]
         columns: send-side sequencing and recovery marks, queue and
         delivery counters, the receiver echo stamp.  Accessed only via
         the helpers right below the type definitions. *)
  mutable peers : Network.addr list;
  ctx : Tko.context;
  mutable ep_state : state;
  opened_at : Time.t;
  mutable established_time : Time.t option;
  mutable pending_peers : Network.addr list; (* awaiting Syn_ack *)
  (* sender half *)
  sendq : pending_send Queue.t;
  mutable rtx_timer : Engine.Timer.timer option;
  mutable pump_event : Engine.handle option;
  mutable syn_timer : Engine.Timer.timer option;
  mutable syn_retries : int;
  mutable fin_timer : Engine.Timer.timer option;
  (* receiver half *)
  mutable ack_timer : Engine.Timer.timer option;
  mutable ack_with_sack : bool; (* read by the persistent ack timer callback *)
  mutable skip_timer : Engine.Timer.timer option;
  mutable nack_timer : Engine.Timer.timer option;
  mutable last_latency : Time.t option;
  (* signaling *)
  signal_queue : string Queue.t;
  mutable signal_inflight : string option;
  mutable signal_timer : Engine.Timer.timer option;
  mutable on_deliver : t -> delivery -> unit;
  mutable on_signal : t -> string -> string;
  mutable on_signal_reply : t -> string -> unit;
}

(* Connection ids are allocated per-network (the namespace they must be
   unique in), so every stack numbers its connections — and its UNITES
   session reports — identically regardless of what ran before it or
   runs beside it on another domain. *)
let fresh_conn_id disp = Network.fresh_conn_id disp.net

(* ------------------------------------------------------------------ *)
(* Struct-of-arrays hot counters.  These helpers are the only access
   path to the dispatcher's [Sessoa] columns; everything below reads
   like the old record fields but compiles to immediate int loads and
   stores into flat arrays. *)

let next_seq t = Sessoa.get_next_seq t.disp.d_soa t.soa_slot
let set_next_seq t v = Sessoa.set_next_seq t.disp.d_soa t.soa_slot v
let peer_window t = Sessoa.get_peer_window t.disp.d_soa t.soa_slot
let set_peer_window t v = Sessoa.set_peer_window t.disp.d_soa t.soa_slot v
let dup_acks t = Sessoa.get_dup_acks t.disp.d_soa t.soa_slot
let set_dup_acks t v = Sessoa.set_dup_acks t.disp.d_soa t.soa_slot v
let last_cum t = Sessoa.get_last_cum t.disp.d_soa t.soa_slot
let set_last_cum t v = Sessoa.set_last_cum t.disp.d_soa t.soa_slot v

(* RFC 6582: highest seq sent when the current loss-recovery episode
   began. *)
let recover_mark t = Sessoa.get_recover t.disp.d_soa t.soa_slot
let set_recover_mark t v = Sessoa.set_recover t.disp.d_soa t.soa_slot v
let first_tx t = Sessoa.get_first_tx t.disp.d_soa t.soa_slot
let set_first_tx t v = Sessoa.set_first_tx t.disp.d_soa t.soa_slot v
let rtx_count t = Sessoa.get_rtx_count t.disp.d_soa t.soa_slot
let set_rtx_count t v = Sessoa.set_rtx_count t.disp.d_soa t.soa_slot v
let sendq_bytes t = Sessoa.get_sendq_bytes t.disp.d_soa t.soa_slot
let set_sendq_bytes t v = Sessoa.set_sendq_bytes t.disp.d_soa t.soa_slot v
let delivered_segments t = Sessoa.get_delivered_segments t.disp.d_soa t.soa_slot
let set_delivered_segments t v =
  Sessoa.set_delivered_segments t.disp.d_soa t.soa_slot v
let delivered_bytes t = Sessoa.get_delivered_bytes t.disp.d_soa t.soa_slot
let set_delivered_bytes t v = Sessoa.set_delivered_bytes t.disp.d_soa t.soa_slot v

(* Newest data tx_stamp seen, echoed in acks. *)
let echo_stamp t : Time.t = Sessoa.get_echo_stamp t.disp.d_soa t.soa_slot
let set_echo_stamp t (v : Time.t) = Sessoa.set_echo_stamp t.disp.d_soa t.soa_slot v

(* ------------------------------------------------------------------ *)
(* Connection-table maintenance (time-wait, swarm telemetry) *)

(* How long a closed connection id is quarantined before late segments
   may reach the acceptor again, and how often the shared sweeper looks. *)
let time_wait_period = Time.ms 500
let tw_sweep_interval = Time.ms 250

let observe_demux disp probes =
  Unites.observe disp.d_unites ~session:Unites.swarm_session Unites.Demux_probes
    (float_of_int probes)

let observe_table disp =
  Unites.observe disp.d_unites ~session:Unites.swarm_session
    Unites.Table_occupancy
    (Conntable.occupancy disp.conns)

let rec arm_tw_sweeper disp =
  if not disp.tw_armed then begin
    disp.tw_armed <- true;
    let delay = tw_sweep_interval in
    match disp.tw_timer with
    | Some timer -> Engine.Timer.reschedule timer ~delay
    | None ->
      disp.tw_timer <-
        Some (Engine.Timer.one_shot disp.d_engine ~delay (fun () -> tw_sweep disp))
  end

and tw_sweep disp =
  disp.tw_armed <- false;
  let expired = Conntable.sweep disp.conns ~now:(Engine.now disp.d_engine) in
  disp.tw_sweeps <- disp.tw_sweeps + 1;
  disp.tw_expired <- disp.tw_expired + expired;
  if expired > 0 then observe_table disp;
  if Conntable.time_wait_count disp.conns > 0 then arm_tw_sweeper disp

(* ------------------------------------------------------------------ *)
(* Small accessors *)

let id t = t.id
let name t = t.ep_name
let state t = t.ep_state
let scs t = t.ctx.Tko.scs
let context t = t.ctx
let peers t = t.peers
let local_addr t = t.disp.d_addr
let established_at t = t.established_time
let bytes_delivered t = delivered_bytes t
let segments_delivered t = delivered_segments t
let engine t = t.disp.d_engine
let now t = Engine.now (engine t)
let unites t = t.disp.d_unites
let smoothed_rtt t = Rtt.srtt t.ctx.Tko.rtt

(* Every reconfiguration funnels through here so the dispatcher's
   committed-buffer counter tracks [recv_buffer_segments] changes made
   after setup (segue can renegotiate the receive commitment). *)
let segue_ctx t next =
  let before = (scs t).Scs.recv_buffer_segments in
  let r = Tko.segue t.ctx next in
  (match r with
  | Ok _ when t.ep_state <> Closed ->
    t.disp.d_committed <-
      t.disp.d_committed + ((scs t).Scs.recv_buffer_segments - before)
  | Ok _ | Error _ -> ());
  r

let loss_rate_estimate t =
  if first_tx t = 0 then 0.0
  else float_of_int (rtx_count t) /. float_of_int (first_tx t + rtx_count t)

(* For NACK-based and silent reporting, the in-flight set is only a repair
   history: it never drains via acks and must not hold up close. *)
let send_queue_empty t =
  Queue.is_empty t.sendq
  && (Window.is_empty t.ctx.Tko.window || not (Scs.ack_based (scs t)))

let is_multicast t = List.length t.peers > 1

let backlog_delay t =
  match t.ctx.Tko.rate with
  | Some pacer when sendq_bytes t > 0 ->
    Time.of_rate ~bits:(sendq_bytes t * 8) ~bps:(Rate.rate_bps pacer)
  | Some _ | None -> Time.zero

(* ------------------------------------------------------------------ *)
(* Negotiation blob: SCS fields plus a start-sequence marker. *)

(* Proposals repeat endlessly in a swarm (few configurations, start_seq
   almost always 0), so the rendered blob is memoized per (scs, seq). *)
let proposal_cache : (Scs.t * int, string) Hashtbl.t = Hashtbl.create 64

let encode_proposal scs ~start_seq =
  let key = (scs, start_seq) in
  match Hashtbl.find proposal_cache key with
  | blob -> blob
  | exception Not_found ->
    let blob = Printf.sprintf "startseq=%d;%s" start_seq (Scs.to_blob scs) in
    if Hashtbl.length proposal_cache >= 512 then Hashtbl.reset proposal_cache;
    Hashtbl.add proposal_cache key blob;
    blob

let decode_start_seq blob =
  (* Fast path: [encode_proposal] always writes the marker first, so a
     prefix scan decodes it without splitting the blob into parts. *)
  let prefix = "startseq=" in
  let plen = String.length prefix in
  let len = String.length blob in
  let rec digits i acc =
    if i < len then
      match blob.[i] with
      | '0' .. '9' -> digits (i + 1) ((acc * 10) + (Char.code blob.[i] - 48))
      | ';' -> Some acc
      | _ -> None
    else Some acc
  in
  let fast =
    if len > plen && String.sub blob 0 plen = prefix then digits plen 0 else None
  in
  match fast with
  | Some seq -> seq
  | None ->
    List.fold_left
      (fun acc part ->
        match String.index_opt part '=' with
        | Some i when String.sub part 0 i = "startseq" ->
          int_of_string_opt (String.sub part (i + 1) (String.length part - i - 1))
          |> Option.value ~default:acc
        | Some _ | None -> acc)
      0
      (String.split_on_char ';' blob)

(* ------------------------------------------------------------------ *)
(* Host CPU charging: every PDU pays the per-packet and copy costs, and
   checksum-bearing configurations pay a per-byte verification cost. *)

let detection_extra detection bytes =
  match detection with
  | Params.No_detection -> Time.zero
  | Params.Internet_checksum -> bytes * 12
  | Params.Crc32 -> bytes * 60

(* Priorities 0-2 get expedited host scheduling (Table 2's "priorities
   for message delivery and scheduling"). *)
let expedited t = (scs t).Scs.priority <= 2

(* Whitebox instrumentation is not free: each probe costs the host a
   couple of microseconds of bookkeeping (§4.3's measurable
   instrumentation overhead). *)
let instrumentation_extra t =
  if Unites.whitebox_enabled (unites t) then Time.us 2 else Time.zero

let charge t bytes =
  let host = t.disp.d_host in
  let before = Host.total_busy host in
  let extra =
    Time.add (detection_extra (scs t).Scs.detection bytes) (instrumentation_extra t)
  in
  let done_at = Host.process host ~bytes ~extra ~expedited:(expedited t) () in
  Unites.observe (unites t) ~session:t.id Unites.Host_cpu
    (Time.to_sec (Time.diff (Host.total_busy host) before));
  done_at

(* ------------------------------------------------------------------ *)
(* Wire output *)

let inject_to t dsts pdu =
  let bytes = Pdu.wire_bytes pdu in
  let done_at = charge t bytes in
  let net = t.disp.net in
  let src = t.disp.d_addr in
  Engine.schedule_anon (engine t) ~at:done_at (fun () ->
      match dsts with
      | [ dst ] -> Network.send net ~src ~dst ~bytes pdu
      | _ :: _ :: _ -> Network.multicast net ~src ~dsts ~bytes pdu
      | [] -> ())

let inject t pdu = inject_to t t.peers pdu

let count_control t = Unites.count (unites t) ~session:t.id Unites.Control_pdus

(* ------------------------------------------------------------------ *)
(* Retransmission timer *)

let cancel_timer = function Some timer -> Engine.Timer.cancel timer | None -> ()

let timer_active = function
  | Some timer -> Engine.Timer.is_active timer
  | None -> false

let rec ensure_rtx_armed t =
  (* Timeout-driven behaviour only makes sense when acknowledgments drain
     the in-flight set; NACK-based recovery is receiver-driven. *)
  let needs = Scs.ack_based (scs t) && not (Window.is_empty t.ctx.Tko.window) in
  if not needs then cancel_timer t.rtx_timer
  else if not (timer_active t.rtx_timer) then begin
    let delay = Rtt.rto t.ctx.Tko.rtt in
    (* Each timer keeps one event record and callback for the session's
       lifetime; re-arming goes through [reschedule] so the constant
       rtx churn of the send path never allocates. *)
    match t.rtx_timer with
    | Some timer -> Engine.Timer.reschedule timer ~delay
    | None ->
      t.rtx_timer <-
        Some (Engine.Timer.one_shot (engine t) ~delay (fun () -> on_rtx_timeout t))
  end

and on_rtx_timeout t =
  if not (Window.is_empty t.ctx.Tko.window) && t.ep_state <> Closed then begin
    Unites.count (unites t) ~session:t.id Unites.Timeouts;
    set_recover_mark t (next_seq t - 1);
    Rtt.on_timeout t.ctx.Tko.rtt;
    (match t.ctx.Tko.cc with Some cc -> Slowstart.on_loss cc | None -> ());
    (match (scs t).Scs.recovery with
    | Params.Go_back_n -> (
      match Window.lowest_outstanding t.ctx.Tko.window with
      | Some low ->
        let segs = Window.unsacked_from t.ctx.Tko.window low in
        let window = Tko.effective_send_window t.ctx ~peer_window:(peer_window t) in
        let capped = List.filteri (fun i _ -> i < max 1 window) segs in
        List.iter (retransmit t ~dsts:t.peers) capped
      | None -> ())
    | Params.Selective_repeat ->
      (* Resend every hole: tail losses have no SACK blocks above them to
         drive recovery, so the timeout is their only signal. *)
      let holes = ref [] in
      Window.iter t.ctx.Tko.window (fun entry ->
          if not entry.Window.sacked then holes := entry.Window.seg :: !holes);
      List.iter (retransmit t ~dsts:t.peers) (List.rev !holes)
    | Params.No_recovery | Params.Forward_error_correction _ ->
      (* No ARQ: free stalled in-flight state so the window never wedges. *)
      let given_up = Window.on_cumulative_ack t.ctx.Tko.window ~cum:(next_seq t) in
      Unites.observe (unites t) ~session:t.id Unites.Losses_unrecovered
        (float_of_int (List.length given_up)));
    ensure_rtx_armed t;
    pump t
  end

and retransmit t ~dsts (seg : Pdu.seg) =
  set_rtx_count t (rtx_count t + 1);
  Unites.count (unites t) ~session:t.id Unites.Retransmissions;
  Window.touch t.ctx.Tko.window seg.Pdu.seq ~at:(now t);
  inject_to t dsts (Pdu.Data { conn = t.id; seg; retransmit = true; tx_stamp = now t })

(* ------------------------------------------------------------------ *)
(* Sender: pump queued segments under the bound transmission control. *)

and pump t =
  match t.ep_state with
  | Opening | Closed -> ()
  | Established | Closing ->
    let ctx = t.ctx in
    let continue = ref true in
    while (not (Queue.is_empty t.sendq)) && !continue do
      let tracks = Scs.tracks_peer_feedback (scs t) in
      let window_ok =
        if not tracks then true
        else
          Window.in_flight ctx.Tko.window
          < Tko.effective_send_window ctx ~peer_window:(peer_window t)
      in
      if not window_ok then continue := false
      else begin
        match ctx.Tko.rate with
        | Some pacer ->
          let next = Queue.peek t.sendq in
          let at = Rate.earliest_send pacer ~now:(now t) ~bytes:next.ps_bytes in
          if at > now t then begin
            continue := false;
            schedule_pump t ~at
          end
          else begin
            Rate.commit pacer ~at:(now t) ~bytes:next.ps_bytes;
            transmit_next t
          end
        | None -> transmit_next t
      end
    done;
    if
      t.ep_state = Closing && Queue.is_empty t.sendq
      && Window.is_empty ctx.Tko.window
    then send_fin t ~graceful:true

and schedule_pump t ~at =
  let already =
    match t.pump_event with Some h -> Engine.is_pending h | None -> false
  in
  if not already then
    t.pump_event <-
      Some
        (Engine.schedule (engine t) ~at (fun () ->
             t.pump_event <- None;
             pump t))

and transmit_next t =
  let { ps_bytes; ps_stamp; ps_last; ps_payload } = Queue.pop t.sendq in
  set_sendq_bytes t (sendq_bytes t - ps_bytes);
  let seg =
    {
      Pdu.seq = next_seq t;
      seg_bytes = ps_bytes;
      app_stamp = ps_stamp;
      app_last = ps_last;
      payload = ps_payload;
    }
  in
  set_next_seq t (next_seq t + 1);
  set_first_tx t (first_tx t + 1);
  let ctx = t.ctx in
  if Scs.tracks_peer_feedback (scs t) then begin
    Window.track ctx.Tko.window seg ~at:(now t);
    (* NACK-only sessions never see cumulative acks; bound the repair
       history so it cannot grow without limit. *)
    if (scs t).Scs.reporting = Params.Nack_on_gap then begin
      let cap = max 256 (4 * (scs t).Scs.recv_buffer_segments) in
      if Window.in_flight ctx.Tko.window > cap then
        ignore (Window.on_cumulative_ack ctx.Tko.window ~cum:(next_seq t - cap))
    end
  end;
  Unites.count (unites t) ~session:t.id Unites.Segments_sent;
  Unites.observe (unites t) ~session:t.id Unites.Window_size
    (float_of_int (Window.in_flight ctx.Tko.window));
  inject t (Pdu.Data { conn = t.id; seg; retransmit = false; tx_stamp = now t });
  (match ctx.Tko.fec_tx with
  | Some fec -> (
    match Fec.Sender.push fec seg with
    | Some covered -> send_parity t covered
    | None -> ())
  | None -> ());
  ensure_rtx_armed t

and send_parity t covered =
  match covered with
  | [] -> ()
  | first :: _ ->
    Unites.count (unites t) ~session:t.id Unites.Fec_parity_sent;
    inject t
      (Pdu.Parity
         {
           conn = t.id;
           group_start = first.Pdu.seq;
           group_len = List.length covered;
           covered = List.map Pdu.strip_payload covered;
           parity = Fec.parity_of covered;
         })

(* ------------------------------------------------------------------ *)
(* Connection management: active open *)

and send_syn t =
  let blob = encode_proposal (scs t) ~start_seq:(next_seq t) in
  count_control t;
  let dsts = if t.pending_peers = [] then t.peers else t.pending_peers in
  inject_to t dsts (Pdu.Syn { conn = t.id; blob; first = None });
  arm_syn_timer t

and arm_syn_timer t =
  let delay = (scs t).Scs.initial_rto in
  match t.syn_timer with
  | Some timer -> Engine.Timer.reschedule timer ~delay
  | None ->
    t.syn_timer <- Some (Engine.Timer.one_shot (engine t) ~delay (fun () -> on_syn_timeout t))

and on_syn_timeout t =
  if t.pending_peers <> [] && t.ep_state <> Closed then begin
    t.syn_retries <- t.syn_retries + 1;
    (* Giving up must release the connection-table entry too, or refused
       and unreachable peers would leak table slots. *)
    if t.syn_retries > 5 then finish_close t else send_syn t
  end

and cancel_all_timers t =
  List.iter cancel_timer
    [
      t.rtx_timer; t.syn_timer; t.fin_timer; t.ack_timer; t.skip_timer;
      t.nack_timer; t.signal_timer;
    ];
  (match t.pump_event with Some h -> Engine.cancel h | None -> ());
  t.rtx_timer <- None;
  t.syn_timer <- None;
  t.fin_timer <- None;
  t.ack_timer <- None;
  t.skip_timer <- None;
  t.nack_timer <- None;
  t.signal_timer <- None;
  t.pump_event <- None

and mark_established t =
  if t.established_time = None then begin
    t.established_time <- Some (now t);
    Unites.observe (unites t) ~session:t.id Unites.Setup_latency
      (Time.to_sec (Time.diff (now t) t.opened_at))
  end;
  if t.ep_state = Opening then begin
    t.ep_state <- Established;
    Conntable.promote t.disp.conns t.id
  end

(* ------------------------------------------------------------------ *)
(* Connection release *)

and send_fin t ~graceful =
  count_control t;
  inject t (Pdu.Fin { conn = t.id; graceful });
  (* Give up waiting for the Fin_ack after one retry period. *)
  let delay = Rtt.rto t.ctx.Tko.rtt in
  (match t.fin_timer with
  | Some timer -> Engine.Timer.reschedule timer ~delay
  | None ->
    t.fin_timer <- Some (Engine.Timer.one_shot (engine t) ~delay (fun () -> finish_close t)))

and finish_close t =
  let was_closed = t.ep_state = Closed in
  t.ep_state <- Closed;
  cancel_all_timers t;
  let disp = t.disp in
  if not was_closed then begin
    disp.d_committed <- disp.d_committed - (scs t).Scs.recv_buffer_segments;
    match disp.d_on_close with Some f -> f t | None -> ()
  end;
  (* The id lingers in time-wait so stray retransmissions are absorbed
     rather than offered to the acceptor as a fresh connection. *)
  Conntable.retire disp.conns ~key:t.id
    ~expiry:(Time.add (Engine.now disp.d_engine) time_wait_period);
  observe_table disp;
  arm_tw_sweeper disp

(* ------------------------------------------------------------------ *)
(* Receiver half *)

and advertised_window t =
  max 0 ((scs t).Scs.recv_buffer_segments - Reorder.buffered_count t.ctx.Tko.reorder)

and send_ack_now t ~with_sack =
  let reorder = t.ctx.Tko.reorder in
  let sack =
    if with_sack then
      let all = Reorder.sack_list reorder in
      List.filteri (fun i _ -> i < 16) all
    else []
  in
  Unites.count (unites t) ~session:t.id Unites.Acks_sent;
  inject t
    (Pdu.Ack
       {
         conn = t.id;
         cum = Reorder.expected reorder;
         window = advertised_window t;
         sack;
         echo = echo_stamp t;
       })

and schedule_ack t ~delay ~with_sack =
  if delay <= 0 then send_ack_now t ~with_sack
  else if not (timer_active t.ack_timer) then begin
    (* The persistent callback reads [ack_with_sack] instead of capturing
       the flag, so one closure serves every delayed ack. *)
    t.ack_with_sack <- with_sack;
    match t.ack_timer with
    | Some timer -> Engine.Timer.reschedule timer ~delay
    | None ->
      t.ack_timer <-
        Some
          (Engine.Timer.one_shot (engine t) ~delay (fun () ->
               send_ack_now t ~with_sack:t.ack_with_sack))
  end

and send_nack t missing =
  match missing with
  | [] -> ()
  | _ ->
    let capped = List.filteri (fun i _ -> i < 32) missing in
    Unites.count (unites t) ~session:t.id Unites.Nacks_sent;
    inject t (Pdu.Nack { conn = t.id; missing = capped })

and deliver_segment t (seg : Pdu.seg) ~damaged =
  let release arrival_point =
    set_delivered_segments t (delivered_segments t + 1);
    set_delivered_bytes t (delivered_bytes t + seg.Pdu.seg_bytes);
    Unites.count (unites t) ~session:t.id Unites.Segments_delivered;
    Unites.observe (unites t) ~session:t.id Unites.Bytes_delivered
      (float_of_int seg.Pdu.seg_bytes);
    let latency = Time.diff arrival_point seg.Pdu.app_stamp in
    Unites.observe (unites t) ~session:t.id Unites.Delivery_latency
      (Time.to_sec latency);
    (match t.last_latency with
    | Some prev ->
      Unites.observe (unites t) ~session:t.id Unites.Jitter
        (Float.abs (Time.to_sec (Time.diff latency prev)))
    | None -> ());
    t.last_latency <- Some latency;
    if damaged then Unites.count (unites t) ~session:t.id Unites.Corrupt_delivered;
    (* Undetected corruption of a real payload damages the bytes the
       application sees — the sender's copy is left untouched. *)
    let payload =
      match (seg.Pdu.payload, damaged) with
      | Some m, true when Adaptive_buf.Msg.data_length m > 0 ->
        let b = Bytes.of_string (Adaptive_buf.Msg.data_to_string m) in
        let i = seg.Pdu.seq mod Bytes.length b in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
        Some (Adaptive_buf.Msg.of_bytes b)
      | p, _ -> p
    in
    let d =
      {
        seq = seg.Pdu.seq;
        bytes = seg.Pdu.seg_bytes;
        app_stamp = seg.Pdu.app_stamp;
        delivered_at = arrival_point;
        damaged;
        payload;
      }
    in
    (match t.disp.d_tap with Some tap -> tap t d | None -> ());
    t.on_deliver t d
  in
  match t.ctx.Tko.playout with
  | None -> release (now t)
  | Some playout -> (
    match Playout.offer playout ~app_stamp:seg.Pdu.app_stamp ~arrival:(now t) with
    | Playout.Release_at at ->
      (* Always go through the event queue: same-instant events fire in
         scheduling order, so releases reach the application in offer
         order even when release points collide. *)
      let at = Time.max at (now t) in
      Engine.schedule_anon (engine t) ~at (fun () -> release at)
    | Playout.Late _ -> Unites.count (unites t) ~session:t.id Unites.Late_discards)

(* Returns [true] when the segment was a duplicate. *)
and offer_to_reorder t (seg : Pdu.seg) ~damaged =
  match Reorder.offer t.ctx.Tko.reorder seg with
  | Reorder.Deliver segs ->
    List.iter
      (fun s -> deliver_segment t s ~damaged:(damaged && s.Pdu.seq = seg.Pdu.seq))
      segs;
    false
  | Reorder.Buffered -> false
  | Reorder.Duplicate ->
    Unites.count (unites t) ~session:t.id Unites.Dup_segments;
    true

and arm_skip_timer t =
  let applies =
    (scs t).Scs.ordering = Params.Ordered && not (Scs.reliable (scs t))
  in
  if
    applies
    && Reorder.missing t.ctx.Tko.reorder <> []
    && not (timer_active t.skip_timer)
  then begin
    let delay =
      match t.ctx.Tko.playout with
      | Some playout -> Time.max (Time.ms 5) (2 * Playout.target playout)
      | None -> (scs t).Scs.initial_rto
    in
    match t.skip_timer with
    | Some timer -> Engine.Timer.reschedule timer ~delay
    | None ->
      t.skip_timer <- Some (Engine.Timer.one_shot (engine t) ~delay (fun () -> on_skip_timeout t))
  end

and on_skip_timeout t =
  let skipped, released = Reorder.advance_past_gap t.ctx.Tko.reorder in
  if skipped > 0 then
    Unites.observe (unites t) ~session:t.id Unites.Losses_unrecovered
      (float_of_int skipped);
  List.iter (fun s -> deliver_segment t s ~damaged:false) released;
  arm_skip_timer t

and arm_renack_timer t =
  if
    (scs t).Scs.reporting = Params.Nack_on_gap
    && (not (timer_active t.nack_timer))
    && Reorder.missing t.ctx.Tko.reorder <> []
  then begin
    let delay = (scs t).Scs.initial_rto in
    match t.nack_timer with
    | Some timer -> Engine.Timer.reschedule timer ~delay
    | None ->
      t.nack_timer <- Some (Engine.Timer.one_shot (engine t) ~delay (fun () -> on_renack_timeout t))
  end

and on_renack_timeout t =
  if t.ep_state <> Closed then begin
    let missing = Reorder.missing t.ctx.Tko.reorder in
    if missing <> [] then begin
      send_nack t missing;
      arm_renack_timer t
    end
  end

and handle_data t ?(tx_stamp = Time.zero) (recv : Pdu.t Network.recv) (seg : Pdu.seg) =
  let detection = (scs t).Scs.detection in
  if tx_stamp > echo_stamp t then set_echo_stamp t tx_stamp;
  if recv.Network.corrupted && detection <> Params.No_detection then
    Unites.count (unites t) ~session:t.id Unites.Corrupt_detected
  else begin
    let damaged = recv.Network.corrupted in
    let prior_missing = Reorder.missing t.ctx.Tko.reorder in
    (* FEC bookkeeping runs regardless of arrival order. *)
    let duplicate =
      match (scs t).Scs.recovery with
      | Params.Forward_error_correction _ ->
        let recovered = Fec.Receiver.on_data (Tko.fec_rx t.ctx) seg in
        let dup = offer_to_reorder t seg ~damaged in
        List.iter
          (fun s ->
            Unites.count (unites t) ~session:t.id Unites.Fec_recovered;
            ignore (offer_to_reorder t s ~damaged:false))
          recovered;
        dup
      | Params.No_recovery | Params.Go_back_n | Params.Selective_repeat ->
        offer_to_reorder t seg ~damaged
    in
    (* Reporting.  Out-of-order arrivals are acknowledged immediately so
       the sender's duplicate-ack counter sees every arrival — delaying
       them would coalesce the dup-ack stream and defeat fast
       retransmission.  Pure duplicates with no gap left are echoes of the
       sender's own recovery burst; acknowledging each would feed the
       duplicate-ack counter and re-trigger it, so they ride the delayed
       ack. *)
    let gaps = Reorder.missing t.ctx.Tko.reorder <> [] in
    (match (scs t).Scs.reporting with
    | Params.No_report -> ()
    | Params.Cumulative_ack { delay } ->
      let delay = ack_delay_for t ~gaps ~duplicate ~delay in
      schedule_ack t ~delay ~with_sack:false
    | Params.Selective_ack { delay } ->
      let delay = ack_delay_for t ~gaps ~duplicate ~delay in
      schedule_ack t ~delay ~with_sack:true
    | Params.Nack_on_gap ->
      let missing = Reorder.missing t.ctx.Tko.reorder in
      let fresh = List.filter (fun s -> not (List.mem s prior_missing)) missing in
      if fresh <> [] then send_nack t missing;
      arm_renack_timer t);
    arm_skip_timer t
  end

(* Gap-free duplicates are echoes of the peer's recovery burst: a long
   coalescing delay folds a whole burst into one acknowledgment, which
   cannot reach the three-duplicate-ack threshold (no storm) yet still
   rescues a sender stalled by a lost acknowledgment. *)
and ack_delay_for t ~gaps ~duplicate ~delay =
  if duplicate && not gaps then Time.max (Time.ms 25) ((scs t).Scs.initial_rto / 2)
  else if gaps then Time.zero
  else delay

and handle_parity t (recv : Pdu.t Network.recv) ~covered ~parity =
  if recv.Network.corrupted && (scs t).Scs.detection <> Params.No_detection then
    Unites.count (unites t) ~session:t.id Unites.Corrupt_detected
  else begin
    let recovered = Fec.Receiver.on_parity (Tko.fec_rx t.ctx) ~covered ~parity in
    List.iter
      (fun s ->
        Unites.count (unites t) ~session:t.id Unites.Fec_recovered;
        ignore (offer_to_reorder t s ~damaged:false))
      recovered;
    arm_skip_timer t
  end

(* ------------------------------------------------------------------ *)
(* Sender: feedback processing *)

and handle_ack t ~cum ~window ~sack ~echo =
  set_peer_window t (max 1 window);
  let ctx = t.ctx in
  let newly = Window.on_cumulative_ack ctx.Tko.window ~cum in
  (* RTT sampling via timestamp echo (RFC 7323 style): the receiver
     returned the transmit stamp of the newest data PDU it has seen, so
     the sample is unambiguous even when that PDU was a retransmission —
     no Karn exclusion needed, and the estimator keeps tracking the true
     round trip through heavy recovery. *)
  if echo > Time.zero && echo <= now t then begin
    let sample = Time.diff (now t) echo in
    Rtt.observe ctx.Tko.rtt sample;
    Unites.observe (unites t) ~session:t.id Unites.Rtt (Time.to_sec sample)
  end;
  List.iter
    (fun (_ : Window.entry) ->
      match ctx.Tko.cc with Some cc -> Slowstart.on_ack cc | None -> ())
    newly;
  Window.mark_sacked ctx.Tko.window sack;
  (* SACK-driven loss recovery (RFC 6675 style): any un-SACKed segment
     below the highest SACK block is a hole; resend each at most once per
     measured round trip.  This works even when the window slides too
     slowly for a three-dup-ack volley. *)
  (match (scs t).Scs.recovery with
  | Params.Selective_repeat when sack <> [] ->
    let limit = List.fold_left max (cum + 1) sack in
    let min_age =
      match Rtt.srtt ctx.Tko.rtt with
      | Some srtt -> Time.max (Time.ms 1) srtt
      | None -> Time.max (Time.ms 1) ((scs t).Scs.initial_rto / 4)
    in
    let holes = ref [] in
    Window.iter ctx.Tko.window (fun entry ->
        if
          (not entry.Window.sacked)
          && entry.Window.seg.Pdu.seq < limit
          && Time.diff (now t) entry.Window.sent_at > min_age
        then holes := entry.Window.seg :: !holes);
    List.iter (retransmit t ~dsts:t.peers) (List.rev !holes)
  | Params.Selective_repeat | Params.Go_back_n | Params.No_recovery
  | Params.Forward_error_correction _ -> ());
  if newly = [] && cum = last_cum t && cum < next_seq t then begin
    set_dup_acks t (dup_acks t + 1);
    (* One fast retransmit per recovery episode (RFC 6582): duplicate
       acks below [recover] are echoes of our own retransmission burst,
       not evidence of a new loss. *)
    let fresh_episode = cum > recover_mark t in
    if dup_acks t >= 3 && fresh_episode then begin
      set_dup_acks t 0;
      set_recover_mark t (next_seq t - 1);
      (match ctx.Tko.cc with Some cc -> Slowstart.on_loss cc | None -> ());
      match (scs t).Scs.recovery with
      | Params.Go_back_n ->
        let segs = Window.unsacked_from ctx.Tko.window cum in
        let cap = max 1 (Tko.effective_send_window ctx ~peer_window:(peer_window t)) in
        List.iteri (fun i seg -> if i < cap then retransmit t ~dsts:t.peers seg) segs
      | Params.Selective_repeat -> (
        (* Without SACK blocks in this ack, fall back to resending the
           cumulative hole. *)
        match Window.find ctx.Tko.window cum with
        | Some entry when not entry.Window.sacked ->
          retransmit t ~dsts:t.peers entry.Window.seg
        | Some _ | None -> ())
      | Params.No_recovery | Params.Forward_error_correction _ -> ()
    end
  end
  else begin
    set_dup_acks t 0;
    set_last_cum t cum
  end;
  if newly <> [] then begin
    (* Forward progress: re-arm the timer afresh and drop any timeout
       backoff even if the acked segments were retransmissions. *)
    Rtt.reset_backoff ctx.Tko.rtt;
    cancel_timer t.rtx_timer
  end;
  ensure_rtx_armed t;
  pump t

and handle_nack t ~from ~missing =
  let segs = Window.unsacked_missing t.ctx.Tko.window missing in
  let dsts = if is_multicast t then [ from ] else t.peers in
  List.iter (retransmit t ~dsts) segs;
  ensure_rtx_armed t

(* ------------------------------------------------------------------ *)
(* Signaling *)

and try_send_signal t =
  if t.signal_inflight = None && not (Queue.is_empty t.signal_queue) then begin
    let blob = Queue.pop t.signal_queue in
    t.signal_inflight <- Some blob;
    push_signal t blob
  end

and push_signal t blob =
  count_control t;
  inject t (Pdu.Signal { conn = t.id; blob });
  let delay = Rtt.rto t.ctx.Tko.rtt in
  match t.signal_timer with
  | Some timer -> Engine.Timer.reschedule timer ~delay
  | None ->
    t.signal_timer <- Some (Engine.Timer.one_shot (engine t) ~delay (fun () -> on_signal_timeout t))

and on_signal_timeout t =
  match t.signal_inflight with
  | Some pending when t.ep_state <> Closed -> push_signal t pending
  | Some _ | None -> ()

and handle_signal t blob =
  count_control t;
  let response = t.on_signal t blob in
  inject t (Pdu.Signal_ack { conn = t.id; blob = response })

and handle_signal_ack t blob =
  cancel_timer t.signal_timer;
  t.signal_inflight <- None;
  t.on_signal_reply t blob;
  try_send_signal t

(* ------------------------------------------------------------------ *)
(* Default reconfiguration signal handler: "scs!<blob>" requests segue. *)

and default_on_signal t blob =
  let prefix = "scs!" in
  let plen = String.length prefix in
  if String.length blob > plen && String.sub blob 0 plen = prefix then begin
    let body = String.sub blob plen (String.length blob - plen) in
    match Scs.of_blob body with
    | Some next -> (
      match segue_ctx t next with
      | Ok changed ->
        Unites.observe (unites t) ~session:t.id Unites.Reconfigurations
          (float_of_int (max 1 (List.length changed)));
        "ok"
      | Error e -> "error:" ^ e)
    | None -> "error:bad-scs"
  end
  else ""

(* ------------------------------------------------------------------ *)
(* Endpoint construction *)

and make_endpoint ~disp ~conn ~ep_name ~binding ~peers ~scs ~start_seq ~on_deliver
    ~on_signal ~on_signal_reply ~initial_state =
  let ctx = Tko.synthesize ?binding scs in
  (* Receiver sequencing starts at the negotiated stream position. *)
  if start_seq > 0 then
    ctx.Tko.reorder <-
      Reorder.create ~start:start_seq ~ordering:scs.Scs.ordering
        ~duplicates:scs.Scs.duplicates ();
  let soa_slot = Sessoa.alloc disp.d_soa in
  let t = 
    {
      id = conn;
      ep_name;
      disp;
      peers;
      ctx;
      ep_state = initial_state;
      opened_at = Engine.now disp.d_engine;
      established_time = None;
      pending_peers = [];
      sendq = Queue.create ();
      soa_slot;
      rtx_timer = None;
      pump_event = None;
      syn_timer = None;
      syn_retries = 0;
      fin_timer = None;
      ack_timer = None;
      ack_with_sack = false;
      skip_timer = None;
      nack_timer = None;
      last_latency = None;
      signal_queue = Queue.create ();
      signal_inflight = None;
      signal_timer = None;
      on_deliver = (match on_deliver with Some f -> f | None -> fun _ _ -> ());
      on_signal = (fun _ _ -> "");
      on_signal_reply = (match on_signal_reply with Some f -> f | None -> fun _ _ -> ());
    }
  in
  (* Fresh columns are zero; only the non-zero hot state needs setting. *)
  set_next_seq t start_seq;
  set_peer_window t scs.Scs.recv_buffer_segments;
  set_last_cum t start_seq;
  set_recover_mark t (-1);
  t.on_signal <-
    (fun ep blob ->
      let builtin = default_on_signal ep blob in
      match on_signal with
      | Some custom -> if builtin = "" then custom ep blob else builtin
      | None -> builtin);
  (
  Conntable.insert disp.conns ~key:conn ~half_open:(initial_state = Opening) t);
  disp.d_committed <- disp.d_committed + scs.Scs.recv_buffer_segments;
  (* One count per session, charged to the initiating endpoint — the
     responder's endpoint is the same session arriving at the peer. *)
  if initial_state = Opening then
    Unites.count disp.d_unites ~session:Unites.swarm_session Unites.Sessions_open;
  (observe_table disp);
  (
  Unites.register_session disp.d_unites ~id:conn ~name:ep_name);
  t

(* ------------------------------------------------------------------ *)
(* PDU dispatch *)

and handle_pdu disp (recv : Pdu.t Network.recv) =
  let pdu = recv.Network.payload in
  let conn = Pdu.conn_id pdu in
  let slot = Conntable.find disp.conns conn in
  (
  observe_demux disp (Conntable.last_probes disp.conns));
  if slot >= 0 then
    match Conntable.slot_state disp.conns slot with
    | Conntable.Half_open | Conntable.Open ->
      endpoint_handle (Conntable.slot_value disp.conns slot) recv pdu
    | Conntable.Time_wait -> handle_timewait disp recv ~conn pdu
  else (
    match pdu with
    | Pdu.Syn { blob; first; _ } -> accept_connection disp recv ~conn ~blob ~first
    | Pdu.Data { seg; _ } -> (
      (* Orphan data: the connection request was lost (or implicit setup
         raced ahead).  Offer it to the acceptor with no proposal. *)
      match disp.acceptor with
      | None -> ()
      | Some acceptor -> (
        match acceptor ~src:recv.Network.src ~conn ~proposal:None with
        | Reject -> ()
        | Accept { scs; name; on_deliver; on_signal } ->
          let t =
            make_endpoint ~disp ~conn ~ep_name:name ~binding:None
              ~peers:[ recv.Network.src ] ~scs ~start_seq:0 ~on_deliver ~on_signal
              ~on_signal_reply:None ~initial_state:Established
          in
          mark_established t;
          handle_data t recv seg))
    | Pdu.Parity _ | Pdu.Ack _ | Pdu.Nack _ | Pdu.Syn_ack _ | Pdu.Ack_of_syn _
    | Pdu.Fin _ | Pdu.Fin_ack _ | Pdu.Signal _ | Pdu.Signal_ack _ -> ())

and handle_timewait disp (recv : Pdu.t Network.recv) ~conn pdu =
  match pdu with
  | Pdu.Fin _ ->
    (* The peer is retrying its side of the teardown after ours finished:
       re-answer so it can release its endpoint too. *)
    let done_at = Host.process disp.d_host ~bytes:64 () in
    Engine.schedule_anon disp.d_engine ~at:done_at (fun () ->
        Network.send disp.net ~src:disp.d_addr ~dst:recv.Network.src ~bytes:64
          (Pdu.Fin_ack { conn }))
  | _ ->
    Unites.count disp.d_unites ~session:Unites.swarm_session Unites.Timewait_drops

and accept_connection disp (recv : Pdu.t Network.recv) ~conn ~blob ~first =
  match disp.acceptor with
  | None -> ()
  | Some acceptor -> (
    let proposal = Scs.of_blob blob in
    match acceptor ~src:recv.Network.src ~conn ~proposal with
    | Reject ->
      (* A rejection still answers, so the initiator can fail fast. *)
      let engine = disp.d_engine in
      let done_at = Host.process disp.d_host ~bytes:64 () in
      Engine.schedule_anon engine ~at:done_at (fun () ->
          Network.send disp.net ~src:disp.d_addr ~dst:recv.Network.src ~bytes:64
            (Pdu.Syn_ack { conn; accepted = false; blob = "" }))
    | Accept { scs; name; on_deliver; on_signal } ->
      let start_seq = decode_start_seq blob in
      let t =
        make_endpoint ~disp ~conn ~ep_name:name ~binding:None
          ~peers:[ recv.Network.src ] ~scs ~start_seq ~on_deliver ~on_signal
          ~on_signal_reply:None ~initial_state:Established
      in
      mark_established t;
      count_control t;
      inject t
        (Pdu.Syn_ack
           { conn; accepted = true; blob = encode_proposal scs ~start_seq });
      (match first with
      | Some (Pdu.Data { seg; _ }) -> handle_data t recv seg
      | Some _ | None -> ()))

and endpoint_handle t (recv : Pdu.t Network.recv) pdu =
  if t.ep_state = Closed then ()
  else
    match pdu with
    | Pdu.Data { seg; tx_stamp; _ } -> handle_data t ~tx_stamp recv seg
    | Pdu.Parity { covered; parity; _ } -> handle_parity t recv ~covered ~parity
    | Pdu.Ack { cum; window; sack; echo; _ } ->
      if not (recv.Network.corrupted && (scs t).Scs.detection <> Params.No_detection)
      then handle_ack t ~cum ~window ~sack ~echo
    | Pdu.Nack { missing; _ } -> handle_nack t ~from:recv.Network.src ~missing
    | Pdu.Syn _ ->
      (* Duplicate connection request: re-answer. *)
      count_control t;
      inject_to t [ recv.Network.src ]
        (Pdu.Syn_ack
           {
             conn = t.id;
             accepted = true;
             blob = encode_proposal (scs t) ~start_seq:0;
           })
    | Pdu.Syn_ack { accepted; blob; _ } -> handle_syn_ack t recv ~accepted ~blob
    | Pdu.Ack_of_syn _ -> count_control t
    | Pdu.Fin { graceful = _; _ } ->
      count_control t;
      inject_to t [ recv.Network.src ] (Pdu.Fin_ack { conn = t.id });
      finish_close t
    | Pdu.Fin_ack _ ->
      count_control t;
      (* Membership removals also elicit Fin_acks; only a session-level
         close may tear the endpoint down. *)
      if t.ep_state = Closing then begin
        cancel_timer t.fin_timer;
        finish_close t
      end
    | Pdu.Signal { blob; _ } -> handle_signal t blob
    | Pdu.Signal_ack { blob; _ } -> handle_signal_ack t blob

and handle_syn_ack t (recv : Pdu.t Network.recv) ~accepted ~blob =
  count_control t;
  if not accepted then finish_close t
  else begin
    t.pending_peers <- List.filter (fun p -> p <> recv.Network.src) t.pending_peers;
    (* Adopt the responder's (possibly counter-proposed) configuration. *)
    (match Scs.of_blob blob with
    | Some final when not (Scs.equal final (scs t)) -> (
      match segue_ctx t final with Ok _ -> () | Error _ -> ())
    | Some _ | None -> ());
    if (scs t).Scs.connection = Params.Three_way then begin
      count_control t;
      inject_to t [ recv.Network.src ] (Pdu.Ack_of_syn { conn = t.id })
    end;
    if t.pending_peers = [] then begin
      cancel_timer t.syn_timer;
      t.syn_timer <- None;
      mark_established t;
      pump t
    end
  end

(* ------------------------------------------------------------------ *)
(* Dispatcher *)

module Dispatcher = struct
  type nonrec dispatcher = dispatcher
  type nonrec accept_decision = accept_decision =
    | Accept of {
        scs : Scs.t;
        name : string;
        on_deliver : (t -> delivery -> unit) option;
        on_signal : (t -> string -> string) option;
      }
    | Reject

  let create net ~addr ~host ~unites =
    let disp =
      {
        net;
        d_engine = Network.engine net;
        d_addr = addr;
        d_host = host;
        d_unites = unites;
        conns = Conntable.create ();
        acceptor = None;
        d_tap = None;
        d_on_close = None;
        d_committed = 0;
        d_soa = Sessoa.create ();
        tw_timer = None;
        tw_armed = false;
        tw_sweeps = 0;
        tw_expired = 0;
      }
    in
    Unites.register_session unites ~id:Unites.swarm_session ~name:"swarm";
    Network.attach net addr (fun recv ->
        (* Charge receive-side host processing, then handle. *)
        let pdu = recv.Network.payload in
        let conn = Pdu.conn_id pdu in
        let endpoint = Conntable.find_live disp.conns conn in
        let extra =
          match endpoint with
          | Some ep -> detection_extra (ep.ctx.Tko.scs).Scs.detection recv.Network.wire_bytes
          | None -> Time.zero
        in
        let before = Host.total_busy host in
        let expedite =
          match endpoint with
          | Some ep -> (ep.ctx.Tko.scs).Scs.priority <= 2
          | None -> false
        in
        let done_at =
          Host.process host ~bytes:recv.Network.wire_bytes ~extra ~expedited:expedite ()
        in
        (match endpoint with
        | Some ep ->
          Unites.observe unites ~session:ep.id Unites.Host_cpu
            (Time.to_sec (Time.diff (Host.total_busy host) before))
        | None -> ());
        Engine.schedule_anon disp.d_engine ~at:done_at (fun () ->
            handle_pdu disp recv));
    disp

  let addr d = d.d_addr
  let host d = d.d_host
  let unites d = d.d_unites
  let engine d = d.d_engine
  let network d = d.net
  let set_acceptor d f = d.acceptor <- Some f
  let set_delivery_tap d f = d.d_tap <- Some f
  let set_on_close d f = d.d_on_close <- Some f
  let endpoints d = Conntable.fold_live (fun _ ep acc -> ep :: acc) d.conns []
  let committed_recv_segments d = d.d_committed
  let session_count d = Conntable.live_count d.conns
  let half_open_count d = Conntable.half_open_count d.conns
  let time_wait_count d = Conntable.time_wait_count d.conns
  let table_capacity d = Conntable.capacity d.conns
  let table_occupancy d = Conntable.occupancy d.conns
  let tw_sweep_stats d = (d.tw_sweeps, d.tw_expired)
  let time_wait_period = time_wait_period
end

(* ------------------------------------------------------------------ *)
(* Public API *)

let connect ?name:ep_name ?binding ?on_deliver ?on_signal_reply ?(start_seq = 0)
    disp ~peers ~scs () =
  if peers = [] then invalid_arg "Session.connect: no peers";
  let conn = fresh_conn_id disp in
  let ep_name =
    match ep_name with Some n -> n | None -> "conn-" ^ string_of_int conn
  in
  let t =
    make_endpoint ~disp ~conn ~ep_name ~binding ~peers ~scs ~start_seq
      ~on_deliver ~on_signal:None ~on_signal_reply ~initial_state:Opening
  in
  (match scs.Scs.connection with
  | Params.Implicit ->
    (* Usable immediately; the request travels with (ahead of) the data. *)
    mark_established t;
    count_control t;
    inject t
      (Pdu.Syn { conn; blob = encode_proposal scs ~start_seq; first = None })
  | Params.Two_way | Params.Three_way ->
    t.pending_peers <- peers;
    send_syn t);
  t

let send t ~bytes ?payload ?app_stamp () =
  if bytes <= 0 then invalid_arg "Session.send: non-positive size";
  if t.ep_state = Closed || t.ep_state = Closing then
    invalid_arg "Session.send: session is closing or closed";
  (match payload with
  | Some m when Adaptive_buf.Msg.data_length m <> bytes ->
    invalid_arg "Session.send: payload length disagrees with bytes"
  | Some _ | None -> ());
  let stamp = match app_stamp with Some s -> s | None -> now t in
  let seg_size = (scs t).Scs.segment_bytes in
  let fragments =
    match payload with
    | None -> None
    | Some m -> Some (ref (Adaptive_buf.Msg.fragment m ~mtu:seg_size))
  in
  let next_fragment () =
    match fragments with
    | None -> None
    | Some cell -> (
      match !cell with
      | [] -> None
      | f :: rest ->
        cell := rest;
        Some f)
  in
  let rec split remaining =
    if remaining > seg_size then begin
      Queue.push
        { ps_bytes = seg_size; ps_stamp = stamp; ps_last = false;
          ps_payload = next_fragment () }
        t.sendq;
      split (remaining - seg_size)
    end
    else
      Queue.push
        { ps_bytes = remaining; ps_stamp = stamp; ps_last = true;
          ps_payload = next_fragment () }
        t.sendq
  in
  split bytes;
  set_sendq_bytes t (sendq_bytes t + bytes);
  pump t

let close ?(graceful = true) t =
  match t.ep_state with
  | Closed -> ()
  | Opening | Established | Closing ->
    if not graceful then begin
      count_control t;
      inject t (Pdu.Fin { conn = t.id; graceful = false });
      finish_close t
    end
    else begin
      t.ep_state <- Closing;
      (* Flush any partial FEC group so the tail is protected too. *)
      (match t.ctx.Tko.fec_tx with
      | Some fec -> (
        match Fec.Sender.flush fec with
        | Some covered -> send_parity t covered
        | None -> ())
      | None -> ());
      if send_queue_empty t then send_fin t ~graceful:true else pump t
    end

let signal t blob =
  Queue.push blob t.signal_queue;
  try_send_signal t

let reconfigure t next =
  match segue_ctx t next with
  | Error e -> Error e
  | Ok changed ->
    if changed <> [] then begin
      Unites.observe (unites t) ~session:t.id Unites.Reconfigurations
        (float_of_int (List.length changed));
      signal t ("scs!" ^ Scs.to_blob next)
    end;
    Ok changed

let add_peer t addr =
  if not (List.mem addr t.peers) then begin
    t.peers <- t.peers @ [ addr ];
    t.pending_peers <- addr :: t.pending_peers;
    count_control t;
    inject_to t [ addr ]
      (Pdu.Syn
         { conn = t.id; blob = encode_proposal (scs t) ~start_seq:(next_seq t); first = None });
    arm_syn_timer t
  end

let remove_peer t addr =
  if List.mem addr t.peers then begin
    t.peers <- List.filter (fun p -> p <> addr) t.peers;
    t.pending_peers <- List.filter (fun p -> p <> addr) t.pending_peers;
    count_control t;
    inject_to t [ addr ] (Pdu.Fin { conn = t.id; graceful = true })
  end

(* Wire-true mode plumbing.  The network stays parametric in the PDU
   type; this is where the transport supplies its codec as the wire
   hooks.  Decoded data/parity payloads alias the leased frame buffer,
   and the dispatcher hands PDUs to [handle_pdu] only after the host
   processing delay — past the delivery callback — so they are detached
   (one counted copy) before the lease can return to the pool. *)
module Wire = struct
  type report = {
    encodes : int;
    decodes : int;
    rejects : int;
    fused_sums : int;
    pool_reuse_rate : float;
  }

  type handle = {
    w_pool : Adaptive_buf.Pool.t;
    w_codec : Codec.wire;
    w_net : Pdu.t Network.t;
  }

  let detach_payload = function
    | Pdu.Data ({ seg = { payload = Some m; _ } as s; _ } as r) ->
      Pdu.Data
        { r with seg = { s with payload = Some (Adaptive_buf.Msg.detach m) } }
    | Pdu.Parity ({ parity = Some m; _ } as r) ->
      Pdu.Parity { r with parity = Some (Adaptive_buf.Msg.detach m) }
    | pdu -> pdu

  let install ?(buffers = 256) ?(buffer_bytes = 4096) net =
    let pool = Adaptive_buf.Pool.create ~buffers ~size:buffer_bytes in
    let codec = Codec.wire_state () in
    let encode pdu bytes =
      let lease = Adaptive_buf.Pool.lease pool ~min_bytes:bytes in
      let n =
        Codec.encode_into codec pdu (Adaptive_buf.Pool.lease_buf lease) ~off:0
      in
      if n <> bytes then
        invalid_arg
          (Printf.sprintf
             "Session.Wire: encoded %d bytes but the simulator accounts %d" n
             bytes);
      lease
    in
    let decode buf off len =
      match Codec.decode_view buf ~off ~len with
      | Ok pdu -> Some (detach_payload pdu)
      | Error _ -> None
    in
    let release lease = Adaptive_buf.Pool.release pool lease in
    Network.set_wire net ~encode ~decode ~release;
    { w_pool = pool; w_codec = codec; w_net = net }

  let report h =
    let enc, dec, rej =
      match Network.wire_stats h.w_net with
      | Some s -> Network.(s.wire_encoded, s.wire_decoded, s.wire_rejected)
      | None -> (0, 0, 0)
    in
    let hits = Adaptive_buf.Pool.lease_hits h.w_pool in
    let fresh = Adaptive_buf.Pool.lease_fresh h.w_pool in
    let reuse =
      if hits + fresh = 0 then 1.0
      else float_of_int hits /. float_of_int (hits + fresh)
    in
    {
      encodes = enc;
      decodes = dec;
      rejects = rej;
      fused_sums = Codec.fused_sums h.w_codec;
      pool_reuse_rate = reuse;
    }

  let observe h unites =
    let r = report h in
    Unites.register_session unites ~id:Unites.wire_session ~name:"wire";
    let ob m v = Unites.observe unites ~session:Unites.wire_session m v in
    ob Unites.Wire_encodes (float_of_int r.encodes);
    ob Unites.Wire_decodes (float_of_int r.decodes);
    ob Unites.Wire_rejects (float_of_int r.rejects);
    ob Unites.Wire_fused_sums (float_of_int r.fused_sums);
    ob Unites.Wire_pool_reuse r.pool_reuse_rate
end
