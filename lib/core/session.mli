(** Transport session endpoints — the protocol interpreter.

    A {!t} is one end of a configured transport session: the executable
    object that MANTTS Stage III produces.  It interprets the mechanism
    bindings in its {!Tko.context} over incoming and outgoing PDUs:
    segmentation, window/rate transmission control, checksum validation,
    acknowledgment and NACK generation, retransmission, FEC encode and
    reconstruct, sequencing, duplicate suppression, playout-point
    delivery, connection handshakes and graceful release, and the
    out-of-band signaling channel used for renegotiation.

    Endpoints at one host share a {!Dispatcher} — the [TKO_Protocol]
    analog — which demultiplexes arriving PDUs to sessions by connection
    identifier and consults an acceptor (the passive-open path of the
    remote MANTTS entity) for connection requests.  All per-PDU host CPU
    costs are charged to the dispatcher's {!Adaptive_mech.Host.t}. *)

open Adaptive_sim
open Adaptive_buf
open Adaptive_net
open Adaptive_mech

type t
(** A session endpoint. *)

type state = Opening | Established | Closing | Closed

type delivery = {
  seq : int;  (** Segment sequence number. *)
  bytes : int;  (** Payload bytes. *)
  app_stamp : Time.t;  (** Sender application timestamp. *)
  delivered_at : Time.t;  (** Delivery time at this application. *)
  damaged : bool;  (** Bit errors passed undetected to the
                       application (no-detection configurations). *)
  payload : Msg.t option;
      (** The actual bytes, when the sender supplied them.  Damaged
          deliveries carry genuinely damaged bytes. *)
}
(** One segment handed to the receiving application. *)

(** Per-host PDU demultiplexer and passive-open handler. *)
module Dispatcher : sig
  type dispatcher

  type accept_decision =
    | Accept of {
        scs : Scs.t;  (** Final configuration (possibly a
                          counter-proposal to the caller's). *)
        name : string;  (** Label for UNITES reports. *)
        on_deliver : (t -> delivery -> unit) option;
        on_signal : (t -> string -> string) option;
      }
    | Reject

  val create :
    Pdu.t Network.t -> addr:Network.addr -> host:Host.t -> unites:Unites.t ->
    dispatcher
  (** Attach a dispatcher to its host address on the network. *)

  val addr : dispatcher -> Network.addr
  val host : dispatcher -> Host.t
  val unites : dispatcher -> Unites.t
  val engine : dispatcher -> Engine.t
  val network : dispatcher -> Pdu.t Network.t

  val set_acceptor :
    dispatcher ->
    (src:Network.addr -> conn:int -> proposal:Scs.t option -> accept_decision) ->
    unit
  (** Install the passive-open policy.  [proposal = None] marks an orphan
      data PDU whose connection request was lost — the acceptor may still
      accept with a default configuration (§4.1.1's "reasonable values
      for default configurations"). *)

  val set_delivery_tap : dispatcher -> (t -> delivery -> unit) -> unit
  (** Install an observer invoked on {e every} application delivery at
      this host, just before the endpoint's own [on_deliver] callback.
      The chaos invariant monitors use this to check ordering,
      exactly-once and corruption-detection properties without touching
      application wiring. *)

  val set_on_close : dispatcher -> (t -> unit) -> unit
  (** Install an observer invoked exactly once per endpoint when it
      leaves the live set, whatever the teardown path (local close, peer
      [Fin], setup give-up).  MANTTS retires its policy monitor here
      instead of sweeping the whole monitor population every tick. *)

  val endpoints : dispatcher -> t list
  (** Live endpoints at this host.  O(table capacity) — maintenance code
      only; the hot paths use the running counters below. *)

  val committed_recv_segments : dispatcher -> int
  (** Sum of every live endpoint's negotiated [recv_buffer_segments],
      maintained incrementally (insert, segue, close) so admission
      policies can read the host's outstanding receive commitment in
      O(1) rather than folding the connection table per accept. *)

  val session_count : dispatcher -> int
  (** Live (half-open + open) entries in the connection table. *)

  val half_open_count : dispatcher -> int
  (** Initiators still awaiting their connection answer. *)

  val time_wait_count : dispatcher -> int
  (** Closed connection ids still quarantined against late segments. *)

  val table_capacity : dispatcher -> int
  (** Current connection-table capacity (a power of two). *)

  val table_occupancy : dispatcher -> float
  (** (live + time-wait) / capacity, in [0, 1]. *)

  val tw_sweep_stats : dispatcher -> int * int
  (** [(sweeps, expired)] — cumulative coalesced time-wait sweeper
      firings and entries they expired.  [expired / sweeps] shows the
      sweeper doing O(expired) work per firing rather than one timer per
      closed connection; the megaswarm bench reports it alongside the
      monitor-tick stats. *)

  val time_wait_period : Time.t
  (** How long a closed connection id lingers in time-wait.  Late
      non-[Fin] segments arriving within this window are dropped (and
      counted under {!Unites.Timewait_drops}); [Fin] retries are
      re-answered so the peer can finish its own teardown. *)
end

val connect :
  ?name:string ->
  ?binding:Tko.binding ->
  ?on_deliver:(t -> delivery -> unit) ->
  ?on_signal_reply:(t -> string -> unit) ->
  ?start_seq:int ->
  Dispatcher.dispatcher ->
  peers:Network.addr list ->
  scs:Scs.t ->
  unit ->
  t
(** Active open toward one peer (unicast) or several (multicast).  With
    implicit connection management the endpoint is usable immediately;
    explicit handshakes transition it to [Established] when the (first)
    [Syn_ack] arrives. *)

val send :
  t -> bytes:int -> ?payload:Msg.t -> ?app_stamp:Time.t -> unit -> unit
(** Submit one application message; it is segmented to the negotiated
    segment size and transmitted under the session's transmission
    control.  [payload] carries the actual bytes end to end (its data
    length must equal [bytes]); without it the protocol runs over sizes
    alone.  [app_stamp] defaults to now. *)

val close : ?graceful:bool -> t -> unit
(** Release the connection.  [graceful] (default [true]) first drains
    queued and unacknowledged data; otherwise buffered data may be
    lost. *)

val signal : t -> string -> unit
(** Send an out-of-band control blob to the peer(s); their [on_signal]
    handler's return value comes back through [on_signal_reply]. *)

val reconfigure : t -> Scs.t -> (string list, string) result
(** Renegotiate the session to a new configuration: signals the peer(s)
    to segue, then segues locally.  Returns the changed component names.
    Fails on static-template bindings. *)

val add_peer : t -> Network.addr -> unit
(** Grow a multicast session's membership; the new receiver is brought in
    with a connection request carrying the current sequence position. *)

val remove_peer : t -> Network.addr -> unit
(** Drop a member from the session. *)

val id : t -> int
(** Connection identifier (shared by both endpoints). *)

val name : t -> string
(** UNITES label. *)

val state : t -> state
(** Current connection state. *)

val scs : t -> Scs.t
(** Currently bound configuration. *)

val context : t -> Tko.context
(** The TKO context (mechanism bindings and shared state). *)

val peers : t -> Network.addr list
(** Current data destinations. *)

val local_addr : t -> Network.addr
(** This endpoint's host address. *)

val established_at : t -> Time.t option
(** When the connection reached [Established]. *)

val bytes_delivered : t -> int
(** Application payload bytes delivered at this endpoint. *)

val segments_delivered : t -> int
(** Segments delivered at this endpoint. *)

val send_queue_empty : t -> bool
(** Nothing queued and nothing in flight. *)

val smoothed_rtt : t -> Time.t option
(** Current RTT estimate, once measured. *)

val loss_rate_estimate : t -> float
(** Retransmissions / first transmissions at the sender (0 when nothing
    sent) — the loss signal the TSA policies test. *)

val backlog_delay : t -> Adaptive_sim.Time.t
(** How long the data now queued at this sender will take to drain at the
    bound pacer rate (zero for window-based transmission) — the
    self-induced component of end-to-end delay, which playout policies
    must absorb. *)

(** {2 Wire-true mode}

    Opt-in zero-copy data path: installs the transport codec as the
    network's wire hooks, so every PDU crosses the network as real bytes
    in a pooled, leased buffer — serialized once by the fused
    encode+checksum pass, verified and parsed in place at each delivery.
    On a lossless route wire-true and value mode produce identical
    traces; under corruption a wire frame has a real bit flipped and is
    rejected by the checksum (never delivered), where value mode
    delivers it flagged and leaves detection to the session's
    error-detection mechanism. *)
module Wire : sig
  type report = {
    encodes : int;  (** Frames serialized (one per injection). *)
    decodes : int;  (** Frames verified and parsed at delivery. *)
    rejects : int;  (** Frames the codec refused (corruption caught). *)
    fused_sums : int;  (** Payload copies with the checksum fused in. *)
    pool_reuse_rate : float;
        (** Leases served from the pool / total leases (1 when none). *)
  }

  type handle
  (** A stack's wire-mode installation. *)

  val install :
    ?buffers:int -> ?buffer_bytes:int -> Pdu.t Network.t -> handle
  (** [install net] switches [net] to wire-true mode backed by a fresh
      buffer pool of [buffers] (default 256) × [buffer_bytes] (default
      4096) frames.  Oversized or overflow frames fall back to fresh
      allocations, counted against the reuse rate. *)

  val report : handle -> report
  (** Read the wire whitebox counters. *)

  val observe : handle -> Unites.t -> unit
  (** Record the counters under {!Unites.wire_session} so UNITES reports
      include the wire path alongside protocol sessions. *)
end
