(** Top-level facade: one call to stand up a complete ADAPTIVE system.

    A {!stack} bundles the simulation engine, a network over a topology,
    the UNITES repository and the MANTTS policy subsystem — everything in
    Figure 1 — so applications (and the examples) can open sessions in a
    few lines:

    {[
      let stack = Adaptive.create_stack ~seed:42 () in
      let a = Adaptive.add_host stack "client" in
      let b = Adaptive.add_host stack "server" in
      Adaptive.connect_hosts stack a b (Adaptive_net.Profiles.lan_path ());
      let acd = Acd.make ~participants:[ b ] ~qos:Qos.default () in
      let s = Mantts.open_session (Adaptive.mantts stack) ~src:a ~acd () in
      ...
      Adaptive.run stack ~until:(Time.sec 10.)
    ]} *)

open Adaptive_sim
open Adaptive_net
open Adaptive_mech

type stack = {
  engine : Engine.t;
  rng : Rng.t;
  topology : Topology.t;
  net : Pdu.t Network.t;
  unites : Unites.t;
  mantts : Mantts.t;
}

val create_stack :
  ?seed:int -> ?whitebox:bool -> ?metric_reservoir:int ->
  ?metric_estimator:Stats.estimator -> unit -> stack
(** Build an empty system.  [seed] (default 1) determines every random
    draw; [whitebox] (default [true]) controls UNITES instrumentation.
    [metric_reservoir] bounds each UNITES accumulator's quantile
    reservoir (default 8192) — many-session workloads shrink it.
    [metric_estimator] selects the UNITES quantile sketch (default
    reservoir sampling; megaswarm passes {!Stats.P2} for flat memory). *)

val mantts : stack -> Mantts.t
(** The policy subsystem. *)

val add_host :
  ?host_cpu:Host.t -> ?buffer_segments:int -> stack -> string -> Network.addr
(** Register a named host with its MANTTS entity, dispatcher and buffer
    pool. *)

val connect_hosts :
  stack -> Network.addr -> Network.addr -> Link.t list -> unit
(** Install a symmetric route between two hosts over the given hops. *)

val run : ?until:Time.t -> stack -> unit
(** Run the simulation until quiescent or until the given time. *)

val now : stack -> Time.t
(** Current simulated time. *)
