open Adaptive_sim
open Adaptive_net
open Adaptive_mech

type stack = {
  engine : Engine.t;
  rng : Rng.t;
  topology : Topology.t;
  net : Pdu.t Network.t;
  unites : Unites.t;
  mantts : Mantts.t;
}

let create_stack ?(seed = 1) ?(whitebox = true) ?metric_reservoir
    ?metric_estimator () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let topology = Topology.create () in
  let net = Network.create engine ~rng:(Rng.split rng) topology in
  let unites =
    Unites.create ~whitebox ?reservoir:metric_reservoir
      ?estimator:metric_estimator engine
  in
  let mantts = Mantts.create ~net ~unites ~rng:(Rng.split rng) () in
  { engine; rng; topology; net; unites; mantts }

let mantts stack = stack.mantts

let add_host ?host_cpu ?buffer_segments stack name =
  let addr = Topology.add_host stack.topology name in
  ignore (Mantts.add_host ?host:host_cpu ?buffer_segments stack.mantts ~addr);
  addr

let connect_hosts stack a b hops =
  Topology.set_symmetric_route stack.topology ~a ~b hops

let run ?until stack = Engine.run ?until stack.engine
let now stack = Engine.now stack.engine
