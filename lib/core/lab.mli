(** Controlled experimentation support (§2.2(D), §4.3).

    The paper's methodology is iterative: specify and configure a session,
    experiment, analyze, refine.  Single simulation runs are deterministic
    given their seed, so statistical confidence comes from {e replication}
    across seeds.  This module runs a scenario under several seeds and
    reduces the results to a mean with a confidence half-width, and
    decides whether two configurations are distinguishable — the
    "meaningful comparisons between different session configurations"
    UNITES exists to enable. *)


type replication = {
  n : int;  (** Replicas run. *)
  mean : float;  (** Sample mean of the measured quantity. *)
  median : float;  (** Sample median — a robust center when a fault-heavy
                       replica skews the distribution. *)
  stddev : float;  (** Sample standard deviation. *)
  half_width : float;  (** ~95% confidence half-width
                           ([2 sd / sqrt n]; 0 for n < 2). *)
}

val replicate : seeds:int list -> (seed:int -> float) -> replication
(** Run the scenario once per seed and summarize.  [seeds] must be
    non-empty and duplicate-free — a repeated seed would silently count
    the same deterministic replica twice ([Invalid_argument]). *)

val replicate_par :
  ?pool:Adaptive_fleet.Pool.t ->
  jobs:int ->
  seeds:int list ->
  (seed:int -> float) ->
  replication
(** {!replicate} with the per-seed runs sharded across [jobs] domains
    by FLEET.  [f] must be self-contained (build its own stack from
    [seed]; share no simulator state).  Values are reduced in seed
    order, so the resulting record is bit-identical to the sequential
    {!replicate} — including the float summation order behind [mean]
    and [stddev]. *)

val default_seeds : int list
(** Five fixed seeds used by the replication experiments. *)

val distinguishable : replication -> replication -> bool
(** Whether the two configurations' confidence intervals do not overlap —
    the conservative "A really is different from B" test. *)

val pp : Format.formatter -> replication -> unit
(** "mean ± half-width (n=...)". *)

val compare_table :
  label_a:string ->
  label_b:string ->
  rows:(string * replication * replication) list ->
  Format.formatter ->
  unit ->
  unit
(** Print a two-configuration comparison table with a verdict column. *)
