open Adaptive_sim
open Adaptive_buf
open Adaptive_net
open Adaptive_mech

type entity = {
  e_disp : Session.Dispatcher.dispatcher;
  e_pool : Pool.t;
  mutable e_app : Session.t -> Session.delivery -> unit;
}

type rule_state = {
  rule : Acd.tsa_rule;
  mutable fired : bool;
  mutable streak : int; (* consecutive samples the condition held *)
}

(* A condition must hold for this many consecutive monitor samples before
   its action fires, and reconfigurations are spaced by a cooldown, so
   transient self-induced queueing cannot flap mechanisms. *)
let debounce_samples = 3
let reconfigure_cooldown = Time.ms 500

type monitor = {
  m_session : Session.t;
  m_acd : Acd.t;
  m_src : Network.addr;
  m_rules : rule_state list;
  m_original : Scs.t;
  m_base_rate : float option;
  m_playout_allowance : Time.t option;
  m_latency_bound : Time.t option;
      (* jitter + burst budget above the path's one-way delay, fixed at
         configuration time; the playout point is re-derived around the
         *current* one-way delay when routes change *)
  mutable m_route : string list;
  mutable m_last_change : Time.t;
  m_notify : Session.t -> string -> unit;
  m_monitored : bool;
      (* very-short-duration sessions keep a monitor record (so
         renegotiation and sync groups can find them) but are skipped by
         the shared policy tick *)
  mutable m_dead : bool;
      (* set when the session closes; the dense tick array skips dead
         entries and compacts them out lazily, so a close is O(1) and
         the tick never scans the historical population *)
}

(* MANTTS admission control (§4.1.1 "reasonable values" under pressure):
   past [soft_sessions] live sessions — or once the host's receive
   backlog exceeds [max_cpu_backlog] — new ACDs are negotiated down to a
   lighter configuration; past [hard_sessions] they are refused. *)
type admission_policy = {
  soft_sessions : int;
  hard_sessions : int;
  max_cpu_backlog : Time.t;
}

type admission = Admitted | Degraded | Refused

type t = {
  net : Pdu.t Network.t;
  t_engine : Engine.t;
  t_unites : Unites.t;
  rng : Rng.t;
  entities : (Network.addr, entity) Hashtbl.t;
  monitors : (int, monitor) Hashtbl.t; (* keyed by session id *)
  (* The shared tick's working set: monitored monitors in insertion
     order.  Session ids are allocated monotonically, so appending keeps
     the array sorted by id — the order the tick has always used — with
     no per-tick rebuild or sort.  Closed entries are marked dead in
     place and compacted out once they outnumber the live ones. *)
  mutable mon_arr : monitor option array;
  mutable mon_len : int;
  mutable mon_dead : int;
  mutable sync_groups : int list list; (* session-id groups to keep aligned *)
  mutable adaptation_log : (Time.t * int * string) list; (* newest first *)
  (* All policy monitors share one tick timer, armed only while monitors
     exist: 10k short-lived sessions schedule no monitor events at all,
     and long-lived ones cost one engine event per interval total. *)
  mutable monitor_timer : Engine.Timer.timer option;
  mutable monitor_armed : bool;
  (* Tick-cost telemetry: shared-tick firings and live monitors walked,
     cumulative since creation.  walked / ticks is the per-tick working
     set — the number the O(active) claim is about. *)
  mutable tick_rounds : int;
  mutable tick_walked : int;
  mutable admission : admission_policy option;
  (* Network snapshots shared across one monitor tick.  All monitors on
     a path read identical link state within a tick instant — no
     transmission can run between their callbacks — so the first monitor
     pays for the sample and the rest reuse it.  Cleared on tick entry
     AND exit, so out-of-tick callers always sample fresh state. *)
  path_cache : (int * int, Network.hop_state list) Hashtbl.t;
  rtt_cache : (int * int, Time.t option) Hashtbl.t;
  (* Synthesis memo (Stage I+II): everything derive_scs reads — path MTU,
     raw bandwidth, BER, propagation RTT, hop count — is a static link or
     route property, so repeated opens with an identical (source, ACD)
     pair derive the identical SCS until some link or route parameter
     mutates.  [dc_gen] pins the {!Link.config_generation} the cache was
     filled under; any mutation anywhere invalidates wholesale, which
     keeps chaos-driven parameter changes (BER bursts, MTU shrinks,
     failures) visible to the very next open.  The value carries the
     sampled path RTT so the playout-allowance computation does not need
     to re-sample the path. *)
  derive_cache : (int * Acd.t, Scs.t * Time.t) Hashtbl.t;
  mutable dc_gen : int;
  (* builtin_rules output is a pure function of (SCS, QoS) and its rule
     records are immutable, so sessions share one list per shape; the
     per-session mutable fired/streak state lives in the wrapper records
     built at open time. *)
  rules_cache : (Scs.t * Qos.t, Acd.tsa_rule list) Hashtbl.t;
}

let memo_bound = 512

let monitor_interval = Time.ms 100

(* §4.1.1: "it is not generally useful to dynamically reconfigure sessions
   that have very low duration" — sessions declaring less than this skip
   the policy monitor entirely. *)
let min_monitored_duration = Time.sec 2.0

let create ~net ~unites ~rng () =
  ignore rng;
  {
    net;
    t_engine = Network.engine net;
    t_unites = unites;
    rng;
    entities = Hashtbl.create 8;
    monitors = Hashtbl.create 64;
    mon_arr = Array.make 16 None;
    mon_len = 0;
    mon_dead = 0;
    sync_groups = [];
    adaptation_log = [];
    monitor_timer = None;
    monitor_armed = false;
    tick_rounds = 0;
    tick_walked = 0;
    admission = None;
    path_cache = Hashtbl.create 16;
    rtt_cache = Hashtbl.create 16;
    derive_cache = Hashtbl.create 64;
    dc_gen = Link.config_generation ();
    rules_cache = Hashtbl.create 64;
  }

let engine t = t.t_engine
let network t = t.net
let unites t = t.t_unites
let set_admission t policy = t.admission <- policy
let admission_policy t = t.admission
let tick_stats t = (t.tick_rounds, t.tick_walked)

(* ------------------------------------------------------------------ *)
(* Dense monitored-set maintenance *)

let mon_append t mon =
  if t.mon_len = Array.length t.mon_arr then begin
    let next = Array.make (2 * t.mon_len) None in
    Array.blit t.mon_arr 0 next 0 t.mon_len;
    t.mon_arr <- next
  end;
  t.mon_arr.(t.mon_len) <- Some mon;
  t.mon_len <- t.mon_len + 1

let mon_mark_dead t mon =
  if not mon.m_dead then begin
    mon.m_dead <- true;
    if mon.m_monitored then t.mon_dead <- t.mon_dead + 1
  end

(* Stable in-place compaction: keeps insertion (= id) order so the tick's
   iteration order is identical to the historical sorted walk. *)
let mon_compact t =
  if t.mon_dead * 2 > t.mon_len then begin
    let w = ref 0 in
    for r = 0 to t.mon_len - 1 do
      match t.mon_arr.(r) with
      | Some mon when not mon.m_dead ->
        t.mon_arr.(!w) <- t.mon_arr.(r);
        incr w
      | Some _ | None -> ()
    done;
    for i = !w to t.mon_len - 1 do
      t.mon_arr.(i) <- None
    done;
    t.mon_len <- !w;
    t.mon_dead <- 0
  end

(* A session can be torn down without [close_session] (setup give-up,
   peer-initiated Fin); the dispatcher's close hook retires the monitor
   record the moment the endpoint leaves the live set. *)
let retire_monitor t session =
  let id = Session.id session in
  match Hashtbl.find_opt t.monitors id with
  | Some mon when mon.m_session == session ->
    mon_mark_dead t mon;
    Hashtbl.remove t.monitors id
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Admission control *)

(* Lighten a configuration without changing its correctness contract:
   reliability, ordering, duplicate handling and delivery semantics are
   preserved; window, pacing rate, receive commitment, checksum strength
   and scheduling priority are cut down. *)
let degrade_scs (scs : Scs.t) =
  let transmission =
    match scs.Scs.transmission with
    | Params.Sliding_window { window } ->
      Params.Sliding_window { window = max 2 (min window 4) }
    | Params.Rate_based { rate_bps; burst } ->
      Params.Rate_based
        { rate_bps = Float.max 64e3 (rate_bps /. 2.0); burst = min burst 2 }
    | Params.Stop_and_wait -> Params.Stop_and_wait
  in
  let congestion =
    match (scs.Scs.congestion, transmission) with
    | Params.Slow_start { initial; _ }, Params.Sliding_window { window } ->
      Params.Slow_start { initial = min initial 2; threshold = max 2 (window / 2) }
    | (c, _) -> c
  in
  {
    scs with
    Scs.transmission;
    congestion;
    detection =
      (match scs.Scs.detection with
      | Params.Crc32 -> Params.Internet_checksum
      | d -> d);
    recv_buffer_segments = max 4 (min scs.Scs.recv_buffer_segments 8);
    priority = max scs.Scs.priority 6;
  }

let admission_decision t entity =
  match t.admission with
  | None -> Admitted
  | Some pol ->
    let disp = entity.e_disp in
    let live = Session.Dispatcher.session_count disp in
    if live >= pol.hard_sessions then Refused
    else
      let backlog =
        Time.diff
          (Host.busy_until (Session.Dispatcher.host disp))
          (Engine.now t.t_engine)
      in
      if live >= pol.soft_sessions || backlog > pol.max_cpu_backlog then Degraded
      else Admitted

let count_admission t = function
  | Admitted -> ()
  | Degraded ->
    Unites.count t.t_unites ~session:Unites.swarm_session Unites.Sessions_degraded
  | Refused ->
    Unites.count t.t_unites ~session:Unites.swarm_session Unites.Sessions_refused

(* ------------------------------------------------------------------ *)
(* Entities and negotiation *)

let default_accept_scs = { Scs.default with Scs.connection = Params.Implicit }

let add_host ?host ?(buffer_segments = 4096) t ~addr =
  let host = match host with Some h -> h | None -> Host.create t.t_engine in
  let disp = Session.Dispatcher.create t.net ~addr ~host ~unites:t.t_unites in
  let entity =
    {
      e_disp = disp;
      e_pool = Pool.create ~buffers:buffer_segments ~size:2048;
      e_app = (fun _ _ -> ());
    }
  in
  (* The passive-open policy: clamp the proposal's receive buffer to the
     resources this host can still commit — the pool minus what every live
     session already holds — accept, and let the initiator adopt the
     counter-proposal from the Syn_ack blob.  Closed sessions disappear
     from the dispatcher, so their buffers return automatically
     (§4.1.3's release of allocated resources). *)
  Session.Dispatcher.set_acceptor disp (fun ~src:_ ~conn ~proposal ->
      (* The passive side applies the policy but does not count the
         decision: the initiating entity already charged this attempt to
         the swarm session, and charging both ends would double-count. *)
      match admission_decision t entity with
      | Refused -> Session.Dispatcher.Reject
      | decision ->
      let proposed =
        match (proposal, decision) with
        | Some scs, Admitted -> scs
        | Some scs, (Degraded | Refused) -> degrade_scs scs
        | None, Admitted -> default_accept_scs
        (* Under pressure the default accept is the swarm-lite template:
           the counter-proposal to a lighter configuration. *)
        | None, (Degraded | Refused) -> (
          match Tko.Templates.find Tko.Templates.swarm_lite with
          | Some (_, scs) -> scs
          | None -> degrade_scs default_accept_scs)
      in
      let committed = Session.Dispatcher.committed_recv_segments disp in
      let available = max 4 (Pool.capacity entity.e_pool - committed) in
      let final =
        if proposed.Scs.recv_buffer_segments <= available then proposed
        else { proposed with Scs.recv_buffer_segments = available }
      in
      Session.Dispatcher.Accept
        {
          scs = final;
          name = Printf.sprintf "accept-%d" conn;
          on_deliver = Some (fun session d -> entity.e_app session d);
          on_signal = None;
        });
  Session.Dispatcher.set_on_close disp (fun session -> retire_monitor t session);
  Hashtbl.replace t.entities addr entity;
  entity

let entity t addr =
  match Hashtbl.find_opt t.entities addr with
  | Some e -> e
  | None -> raise Not_found

let dispatcher e = e.e_disp
let pool e = e.e_pool
let set_app_handler e f = e.e_app <- f

(* ------------------------------------------------------------------ *)
(* Stage I *)

let classify (acd : Acd.t) =
  match acd.Acd.explicit_tsc with
  | Some tsc -> tsc
  | None -> Tsc.classify acd.Acd.qos

(* ------------------------------------------------------------------ *)
(* Network sampling (the MANTTS-NMI of Figure 2) *)

type path_characteristics = {
  mtu : int;
  bottleneck_bps : float;
  worst_ber : float;
  rtt : Time.t;
  utilization : float;
  hop_count : int;
}

let sample_paths t ~src (acd : Acd.t) =
  let fold acc dst =
    let hops = Network.path_state t.net ~src ~dst in
    let rtt =
      match Network.rtt_estimate t.net ~src ~dst ~bytes:1024 with
      | Some r -> r
      | None -> Time.ms 100
    in
    List.fold_left
      (fun acc (h : Network.hop_state) ->
        {
          acc with
          mtu = min acc.mtu h.Network.hop_mtu;
          bottleneck_bps = Float.min acc.bottleneck_bps h.Network.bandwidth;
          worst_ber = Float.max acc.worst_ber h.Network.hop_ber;
          utilization = Float.max acc.utilization h.Network.utilization;
        })
      { acc with rtt = Time.max acc.rtt rtt; hop_count = max acc.hop_count (List.length hops) }
      hops
  in
  let init =
    {
      mtu = 65535;
      bottleneck_bps = infinity;
      worst_ber = 0.0;
      rtt = Time.zero;
      utilization = 0.0;
      hop_count = 0;
    }
  in
  let sampled = List.fold_left fold init acd.Acd.participants in
  if sampled.hop_count = 0 then
    { sampled with mtu = 1500; bottleneck_bps = 10e6; rtt = Time.ms 10 }
  else sampled

(* ------------------------------------------------------------------ *)
(* Stage II *)

let header_allowance = 64

let derive_scs_of_path (acd : Acd.t) tsc (path : path_characteristics) =
  let qos = acd.Acd.qos in
  let pol = Tsc.policies tsc qos in
  let segment_bytes = max 64 (path.mtu - header_allowance) in
  let bdp_segments =
    let bits = path.bottleneck_bps *. Time.to_sec path.rtt in
    max 1 (int_of_float (bits /. 8.0 /. float_of_int segment_bytes))
  in
  let multicast = List.length acd.Acd.participants > 1 in
  (* Error detection: strength follows reliability needs and channel
     quality. *)
  let detection =
    if qos.Qos.loss_tolerance <= 0.0 then
      if path.worst_ber > 1e-8 then Params.Crc32 else Params.Internet_checksum
    else Params.Internet_checksum
  in
  (* Error recovery: the §3(C) policy space. *)
  let recovery =
    if pol.Tsc.full_reliability then
      if multicast || path.rtt > Time.ms 50 || bdp_segments > 64 then
        Params.Selective_repeat
      else Params.Go_back_n
    else if path.rtt > Time.ms 150 then Params.Forward_error_correction { group = 8 }
    else if qos.Qos.loss_tolerance < 0.02 && not pol.Tsc.playout_smoothing then
      Params.Selective_repeat
    else Params.No_recovery
  in
  (* Error reporting follows recovery. *)
  let reporting =
    match recovery with
    | Params.No_recovery -> Params.No_report
    | Params.Forward_error_correction _ ->
      if pol.Tsc.playout_smoothing then Params.No_report else Params.Nack_on_gap
    | Params.Selective_repeat ->
      if multicast then Params.Nack_on_gap
      else
        Params.Selective_ack
          { delay = (if qos.Qos.interactive then Time.zero else Time.ms 2) }
    | Params.Go_back_n ->
      Params.Cumulative_ack
        { delay = (if qos.Qos.interactive then Time.zero else Time.ms 2) }
  in
  (* Transmission control. *)
  (* A pacer faster than the narrowest hop only fills queues; reconcile
     the requested rate with the sampled bottleneck. *)
  let rate_cap = 0.9 *. path.bottleneck_bps in
  let transmission =
    if pol.Tsc.rate_paced then
      Params.Rate_based
        { rate_bps = Float.min rate_cap (Float.max qos.Qos.peak_bps 64e3); burst = 4 }
    else if multicast then
      Params.Rate_based
        { rate_bps = Float.min rate_cap (Float.max qos.Qos.peak_bps 1e6); burst = 8 }
    else
      (* Headroom over the raw bandwidth-delay product: the estimate
         excludes host processing and delayed acks, which dominate the
         effective RTT on short paths. *)
      let window = min 1024 (max 8 (4 * bdp_segments)) in
      let window = if qos.Qos.interactive then min window 8 else window in
      Params.Sliding_window { window }
  in
  let congestion =
    match transmission with
    | Params.Sliding_window { window } when pol.Tsc.congestion_responsive && path.hop_count > 1
      -> Params.Slow_start { initial = 2; threshold = max 2 (window / 2) }
    | Params.Sliding_window _ | Params.Rate_based _ | Params.Stop_and_wait ->
      Params.No_congestion_control
  in
  let delivery =
    if pol.Tsc.playout_smoothing then
      (* The playout point must absorb the path's one-way delay plus a
         jitter allowance; a bound tighter than the path itself can
         deliver would discard everything as late. *)
      let one_way = path.rtt / 2 in
      let jitter_allowance =
        match qos.Qos.max_jitter with
        | Some j -> Time.max (Time.ms 10) (2 * j)
        | None -> Time.ms 40
      in
      (* Bursty media drains a peak frame through the paced bottleneck
         slower than it was produced; budget one 33 ms DCM frame at the
         peak rate being drained at the paced rate. *)
      let burst_drain =
        match transmission with
        | Params.Rate_based { rate_bps; _ } when qos.Qos.peak_bps > rate_bps ->
          Time.sec (qos.Qos.peak_bps *. 0.033 /. rate_bps)
        | Params.Rate_based _ | Params.Sliding_window _ | Params.Stop_and_wait ->
          Time.zero
      in
      let wanted = Time.add one_way (Time.add jitter_allowance burst_drain) in
      (* Conversational media must never buffer past its latency bound:
         data that old is useless, so late discard is correct.
         Distributional media prefers deeper buffering (a renegotiated,
         lower QoS) over discard. *)
      let capped =
        match qos.Qos.max_latency with
        | Some bound when qos.Qos.interactive -> Time.min wanted bound
        | Some _ | None -> wanted
      in
      Params.Playout { target = capped }
    else Params.As_available
  in
  let connection =
    if pol.Tsc.fast_setup then Params.Implicit
    else if pol.Tsc.full_reliability && not qos.Qos.isochronous then Params.Three_way
    else Params.Two_way
  in
  let recv_buffer =
    let needed =
      match transmission with
      | Params.Sliding_window { window } -> 2 * window
      | Params.Rate_based _ -> max 64 (2 * bdp_segments)
      | Params.Stop_and_wait -> 4
    in
    min 4096 (max 4 needed)
  in
  let initial_rto =
    Time.max (Time.ms 20) (Time.min (Time.sec 3.0) (4 * path.rtt))
  in
  {
    Scs.connection;
    transmission;
    congestion;
    detection;
    reporting;
    recovery;
    ordering = (if qos.Qos.ordered then Params.Ordered else Params.Unordered);
    duplicates =
      (if qos.Qos.duplicate_sensitive then Params.Drop_duplicates
       else Params.Accept_duplicates);
    delivery;
    segment_bytes;
    recv_buffer_segments = recv_buffer;
    priority = (if qos.Qos.priority || pol.Tsc.priority_scheduling then 1 else 4);
    initial_rto;
  }

let derive_scs t ~src (acd : Acd.t) tsc =
  derive_scs_of_path acd tsc (sample_paths t ~src acd)

(* Memoized Stage II for the open path: returns the derived SCS and the
   sampled path RTT.  Sound because every derive_scs input is a static
   link/route property (see [derive_cache]); the generation check makes
   any Link/Topology mutation flush the memo before it can serve stale
   shapes. *)
let derived t ~src (acd : Acd.t) tsc =
  let gen = Link.config_generation () in
  if t.dc_gen <> gen then begin
    Hashtbl.reset t.derive_cache;
    t.dc_gen <- gen
  end;
  match Hashtbl.find t.derive_cache (src, acd) with
  | hit -> hit
  | exception Not_found ->
    let path = sample_paths t ~src acd in
    let hit = (derive_scs_of_path acd tsc path, path.rtt) in
    if Hashtbl.length t.derive_cache >= memo_bound then
      Hashtbl.reset t.derive_cache;
    Hashtbl.add t.derive_cache (src, acd) hit;
    hit

(* ------------------------------------------------------------------ *)
(* Built-in adaptation policies (§3(C)) *)

let builtin_rules (scs : Scs.t) (qos : Qos.t) pol =
  let arq = Scs.reliable scs in
  let rules = ref [] in
  let add condition action = rules := { Acd.condition; action; once = false } :: !rules in
  (* Example 1: congestion drives go-back-n <-> selective repeat. *)
  if arq then begin
    add (Acd.Congestion_above 0.55) (Acd.Switch_recovery Params.Selective_repeat);
    if scs.Scs.recovery = Params.Go_back_n then
      add (Acd.Congestion_below 0.25) (Acd.Switch_recovery Params.Go_back_n)
  end;
  (* Example 2: long-delay routes drive retransmission -> FEC for
     loss-tolerant traffic; the original scheme is restored only when
     every reason for parity protection has cleared. *)
  if qos.Qos.loss_tolerance > 0.0 then begin
    add (Acd.Rtt_above (Time.ms 150))
      (Acd.Switch_recovery (Params.Forward_error_correction { group = 8 }));
    add
      (Acd.All_of [ Acd.Rtt_below (Time.ms 80); Acd.Congestion_below 0.30 ])
      (Acd.Switch_recovery scs.Scs.recovery)
  end;
  (* Rate-paced sessions adjust the inter-PDU gap under congestion. *)
  (match scs.Scs.transmission with
  | Params.Rate_based _ ->
    add (Acd.Congestion_above 0.70) (Acd.Scale_rate 0.75);
    add (Acd.Congestion_below 0.30) (Acd.Scale_rate 1.20)
  | Params.Sliding_window _ | Params.Stop_and_wait -> ());
  (* Loss-tolerant media cannot retransmit; protect it with dense parity
     while heavy cross traffic causes congestive loss (the long-delay rule
     above covers the high-RTT region, so keep the two disjoint). *)
  if (not arq) && qos.Qos.loss_tolerance > 0.0 then
    add
      (Acd.All_of [ Acd.Congestion_above 0.75; Acd.Rtt_below (Time.ms 150) ])
      (Acd.Switch_recovery (Params.Forward_error_correction { group = 4 }));
  ignore pol;
  List.rev !rules

(* ------------------------------------------------------------------ *)
(* Condition evaluation and action application *)

let cached_path_state t ~src ~dst =
  match Hashtbl.find_opt t.path_cache (src, dst) with
  | Some hops -> hops
  | None ->
    let hops = Network.path_state t.net ~src ~dst in
    Hashtbl.add t.path_cache (src, dst) hops;
    hops

let cached_rtt_estimate t ~src ~dst =
  match Hashtbl.find_opt t.rtt_cache (src, dst) with
  | Some r -> r
  | None ->
    let r = Network.rtt_estimate t.net ~src ~dst ~bytes:1024 in
    Hashtbl.add t.rtt_cache (src, dst) r;
    r

let clear_path_caches t =
  Hashtbl.reset t.path_cache;
  Hashtbl.reset t.rtt_cache

(* Congestion means cross traffic: a session pacing near the bottleneck's
   capacity must not read its own queueing as a reason to back off. *)
let worst_utilization t ~src session =
  List.fold_left
    (fun acc dst ->
      List.fold_left
        (fun acc (h : Network.hop_state) -> Float.max acc h.Network.cross_traffic)
        acc
        (cached_path_state t ~src ~dst))
    0.0 (Session.peers session)

let route_names t ~src session =
  List.concat_map
    (fun dst ->
      List.map
        (fun (h : Network.hop_state) -> h.Network.link_name)
        (cached_path_state t ~src ~dst))
    (Session.peers session)

(* Sessions without acknowledgment traffic have no measured RTT; fall back
   to the network monitor's estimate — base path delay plus the current
   forward queueing backlog, so congestion shows up in the delay signal
   the way a measured RTT would show it. *)
let session_rtt t mon =
  match Session.smoothed_rtt mon.m_session with
  | Some rtt -> Some rtt
  | None ->
    List.fold_left
      (fun acc dst ->
        match cached_rtt_estimate t ~src:mon.m_src ~dst with
        | Some base ->
          let queueing =
            List.fold_left
              (fun acc (h : Network.hop_state) -> Time.add acc h.Network.queue_delay)
              Time.zero
              (cached_path_state t ~src:mon.m_src ~dst)
          in
          let rtt = Time.add base queueing in
          Some (match acc with Some a -> Time.max a rtt | None -> rtt)
        | None -> acc)
      None (Session.peers mon.m_session)

let rec condition_holds t mon = function
  | Acd.Loss_rate_above bound -> Session.loss_rate_estimate mon.m_session > bound
  | Acd.Rtt_above bound -> (
    match session_rtt t mon with Some rtt -> rtt > bound | None -> false)
  | Acd.Rtt_below bound -> (
    match session_rtt t mon with Some rtt -> rtt < bound | None -> false)
  | Acd.Congestion_above bound -> worst_utilization t ~src:mon.m_src mon.m_session > bound
  | Acd.Congestion_below bound -> worst_utilization t ~src:mon.m_src mon.m_session < bound
  | Acd.Receivers_above n -> List.length (Session.peers mon.m_session) > n
  | Acd.Receivers_below n -> List.length (Session.peers mon.m_session) < n
  | Acd.Route_changed ->
    let current = route_names t ~src:mon.m_src mon.m_session in
    current <> mon.m_route
  | Acd.All_of cs -> List.for_all (condition_holds t mon) cs
  | Acd.Any_of cs -> List.exists (condition_holds t mon) cs

let log_adaptation t session text =
  t.adaptation_log <-
    (Engine.now t.t_engine, Session.id session, text) :: t.adaptation_log

let apply_action t mon on_notify action =
  let session = mon.m_session in
  let cur = Session.scs session in
  let described = Acd.action_to_string action in
  match action with
  | Acd.Notify_application msg ->
    on_notify session msg;
    log_adaptation t session ("notified application: " ^ msg);
    true
  | Acd.Switch_recovery _ | Acd.Switch_reporting _ | Acd.Switch_transmission _
  | Acd.Scale_rate _ | Acd.Adjust_playout _ -> (
  let target =
    match action with
    | Acd.Switch_recovery r ->
      if cur.Scs.recovery = r then None else Some { cur with Scs.recovery = r }
    | Acd.Switch_reporting r ->
      if cur.Scs.reporting = r then None else Some { cur with Scs.reporting = r }
    | Acd.Switch_transmission x ->
      if cur.Scs.transmission = x then None else Some { cur with Scs.transmission = x }
    | Acd.Scale_rate factor -> (
      match (cur.Scs.transmission, mon.m_base_rate) with
      | Params.Rate_based { rate_bps; burst }, Some base ->
        let next = Float.min base (Float.max (0.25 *. base) (rate_bps *. factor)) in
        if Float.abs (next -. rate_bps) < 1.0 then None
        else Some { cur with Scs.transmission = Params.Rate_based { rate_bps = next; burst } }
      | (Params.Rate_based _ | Params.Sliding_window _ | Params.Stop_and_wait), _ -> None)
    | Acd.Adjust_playout target -> (
      match cur.Scs.delivery with
      | Params.Playout { target = old } when old <> target ->
        Some { cur with Scs.delivery = Params.Playout { target } }
      | Params.Playout _ | Params.As_available -> None)
    | Acd.Notify_application _ -> None
  in
  match target with
  | None -> false
  | Some next -> (
    match Session.reconfigure session next with
    | Ok [] -> false
    | Ok _ ->
      log_adaptation t session described;
      true
    | Error e ->
      log_adaptation t session ("failed: " ^ described ^ " (" ^ e ^ ")");
      false))

(* Continuous SCS-parameter policy: keep the playout point tracking the
   path's one-way delay (plus the fixed jitter/burst allowance) so a route
   change does not turn every frame late — the "Adjust the SCS" case of
   §4.1.2. *)
let rederive_playout t mon on_notify =
  match (mon.m_playout_allowance, (Session.scs mon.m_session).Scs.delivery) with
  | Some allowance, Params.Playout { target } -> (
    match session_rtt t mon with
    | Some rtt ->
      let backlog = Session.backlog_delay mon.m_session in
      let wanted = Time.add (Time.add (rtt / 2) allowance) backlog in
      let wanted =
        match mon.m_latency_bound with
        | Some bound -> Time.min wanted bound
        | None -> wanted
      in
      let slack = Time.max (Time.ms 20) (target / 4) in
      if abs (Time.diff wanted target) > slack then
        ignore (apply_action t mon on_notify (Acd.Adjust_playout wanted))
    | None -> ())
  | (Some _ | None), _ -> ()

(* Lift every grouped member's playout point to the group maximum so
   related streams stay in step.  Groups whose members have all closed
   are dropped on the way, so long-running systems do not re-walk the
   ghosts of finished synchronization sets every tick. *)
let align_sync_groups t =
  t.sync_groups <-
    List.filter
      (fun group ->
        List.exists (fun id -> Hashtbl.mem t.monitors id) group)
      t.sync_groups;
  List.iter
    (fun group ->
      let members =
        List.filter_map (fun id -> Hashtbl.find_opt t.monitors id) group
      in
      let target_of mon =
        match (Session.scs mon.m_session).Scs.delivery with
        | Params.Playout { target } -> Some target
        | Params.As_available -> None
      in
      let slowest =
        List.fold_left
          (fun acc mon ->
            match target_of mon with Some v -> Time.max acc v | None -> acc)
          Time.zero members
      in
      if slowest > Time.zero then
        List.iter
          (fun mon ->
            match target_of mon with
            | Some current when current < slowest ->
              let session = mon.m_session in
              let cur = Session.scs session in
              (match
                 Session.reconfigure session
                   { cur with Scs.delivery = Params.Playout { target = slowest } }
               with
              | Ok (_ :: _) ->
                log_adaptation t session
                  (Printf.sprintf "synchronized playout to %s"
                     (Time.to_string slowest))
              | Ok [] | Error _ -> ())
            | Some _ | None -> ())
          members)
    t.sync_groups

let monitor_tick t mon on_notify () =
  if Session.state mon.m_session = Session.Closed then ()
  else begin
    let now = Engine.now t.t_engine in
    let cooled = Time.diff now mon.m_last_change >= reconfigure_cooldown in
    if cooled then begin
      rederive_playout t mon on_notify;
      align_sync_groups t
    end;
    List.iter
      (fun rs ->
        if not rs.fired then
          if condition_holds t mon rs.rule.Acd.condition then begin
            rs.streak <- rs.streak + 1;
            (* Notifications are edge-triggered: once per episode of the
               condition holding.  Reconfigurations are level-triggered
               (idempotent through segue) so parameter adjustments like
               rate scaling can iterate. *)
            let notify =
              match rs.rule.Acd.action with
              | Acd.Notify_application _ -> true
              | Acd.Switch_recovery _ | Acd.Switch_reporting _
              | Acd.Switch_transmission _ | Acd.Scale_rate _ | Acd.Adjust_playout _ ->
                false
            in
            let eligible =
              if notify then rs.streak = debounce_samples
              else rs.streak >= debounce_samples && cooled
            in
            if eligible then begin
              let applied = apply_action t mon on_notify rs.rule.Acd.action in
              if applied && not notify then begin
                mon.m_last_change <- now;
                rs.streak <- 0
              end;
              if applied && rs.rule.Acd.once then rs.fired <- true
            end
          end
          else rs.streak <- 0)
      mon.m_rules;
    (* Refresh the route snapshot after evaluating Route_changed rules. *)
    mon.m_route <- route_names t ~src:mon.m_src mon.m_session
  end

(* One shared tick walks every live monitor (session-id order, so runs
   are deterministic), so the engine carries a single recurring event
   regardless of session count.  The timer is re-armed only while
   monitored sessions remain. *)
let rec arm_monitor_timer t =
  if not t.monitor_armed then begin
    t.monitor_armed <- true;
    let delay = monitor_interval in
    match t.monitor_timer with
    | Some timer -> Engine.Timer.reschedule timer ~delay
    | None ->
      t.monitor_timer <-
        Some (Engine.Timer.one_shot t.t_engine ~delay (fun () -> shared_monitor_tick t))
  end

and shared_monitor_tick t =
  t.monitor_armed <- false;
  t.tick_rounds <- t.tick_rounds + 1;
  clear_path_caches t;
  mon_compact t;
  (* Walk the dense monitored set in insertion (= session id) order; dead
     entries cost one flag test.  Closing retired the monitor through the
     dispatcher hook already — the state check is a backstop for any
     teardown path that bypassed it. *)
  for i = 0 to t.mon_len - 1 do
    match t.mon_arr.(i) with
    | Some mon when not mon.m_dead ->
      t.tick_walked <- t.tick_walked + 1;
      if Session.state mon.m_session = Session.Closed then retire_monitor t mon.m_session
      else monitor_tick t mon mon.m_notify ()
    | Some _ | None -> ()
  done;
  clear_path_caches t;
  if t.mon_len > t.mon_dead then arm_monitor_timer t

(* ------------------------------------------------------------------ *)
(* Session lifecycle *)

let try_open_session ?name ?on_deliver ?on_notify ?scs_transform t ~src ~acd () =
  let e = entity t src in
  let decision = admission_decision t e in
  count_admission t decision;
  match decision with
  | Refused ->
    Error
      (Printf.sprintf
         "admission refused: %d live sessions at host %d exceed the hard limit"
         (Session.Dispatcher.session_count e.e_disp)
         src)
  | (Admitted | Degraded) as decision ->
  let tsc = classify acd in
  let scs, path_rtt = derived t ~src acd tsc in
  let scs = if decision = Degraded then degrade_scs scs else scs in
  (* Experiment hook: pin population-wide configuration choices (the
     static-baseline arms of the steering experiments) after derivation
     and degradation but before synthesis. *)
  let scs = match scs_transform with Some f -> f scs | None -> scs in
  let monitored =
    match acd.Acd.qos.Qos.duration with
    | Some d -> d >= min_monitored_duration
    | None -> true
  in
  (* Stage III: consult the template cache for a pre-assembled match. *)
  let binding =
    match Tko.Templates.lookup_scs scs with
    | Some (binding, _) -> Some binding
    | None -> Some Tko.Synthesized
  in
  let session =
    Session.connect ?name ?binding ?on_deliver e.e_disp ~peers:acd.Acd.participants
      ~scs ()
  in
  (* Honor the descriptor's Transport Measurement Component. *)
  (
  Unites.restrict_session t.t_unites ~id:(Session.id session) acd.Acd.tmc.Acd.collect);
  let on_notify = match on_notify with Some f -> f | None -> fun _ _ -> () in
  let rules =
    let base =
      match Hashtbl.find t.rules_cache (scs, acd.Acd.qos) with
      | rs -> rs
      | exception Not_found ->
        let pol = Tsc.policies tsc acd.Acd.qos in
        let rs = builtin_rules scs acd.Acd.qos pol in
        if Hashtbl.length t.rules_cache >= memo_bound then
          Hashtbl.reset t.rules_cache;
        Hashtbl.add t.rules_cache (scs, acd.Acd.qos) rs;
        rs
    in
    List.map (fun rule -> { rule; fired = false; streak = 0 }) (acd.Acd.tsa @ base)
  in
  let base_rate =
    match scs.Scs.transmission with
    | Params.Rate_based { rate_bps; _ } -> Some rate_bps
    | Params.Sliding_window _ | Params.Stop_and_wait -> None
  in
  let playout_allowance =
    match scs.Scs.delivery with
    | Params.Playout { target } ->
      Some (Time.max (Time.ms 10) (Time.diff target (path_rtt / 2)))
    | Params.As_available -> None
  in
  let mon =
    {
      m_session = session;
      m_acd = acd;
      m_src = src;
      m_rules = rules;
      m_original = scs;
      m_base_rate = base_rate;
      m_playout_allowance = playout_allowance;
      m_latency_bound =
        (if acd.Acd.qos.Qos.interactive then acd.Acd.qos.Qos.max_latency else None);
      m_route = [];
      m_last_change = Time.zero;
      m_notify = on_notify;
      m_monitored = monitored;
      m_dead = false;
    }
  in
  (
  mon.m_route <- route_names t ~src session);
  Hashtbl.replace t.monitors (Session.id session) mon;
  if monitored then begin
    mon_append t mon;
    arm_monitor_timer t
  end;
  Ok (session, decision)

let open_session ?name ?on_deliver ?on_notify ?scs_transform t ~src ~acd () =
  match try_open_session ?name ?on_deliver ?on_notify ?scs_transform t ~src ~acd () with
  | Ok (session, _) -> session
  | Error reason -> failwith ("Mantts.open_session: " ^ reason)

let close_session ?graceful t session =
  retire_monitor t session;
  Session.close ?graceful session

let renegotiate ?acd t session =
  match Hashtbl.find_opt t.monitors (Session.id session) with
  | None -> Error "session has no MANTTS monitor (not opened via open_session?)"
  | Some mon ->
    let acd = match acd with Some a -> a | None -> mon.m_acd in
    let tsc = classify acd in
    let next = derive_scs t ~src:mon.m_src acd tsc in
    (* Keep the connection-management choice already in force: handshakes
       cannot be retroactively changed. *)
    let next = { next with Scs.connection = (Session.scs session).Scs.connection } in
    (match Session.reconfigure session next with
    | Ok [] -> Ok []
    | Ok changed ->
      log_adaptation t session
        (Printf.sprintf "renegotiated to %s (%s)" (Tsc.name tsc)
           (String.concat ", " changed));
      Ok changed
    | Error e -> Error e)

let synchronize t sessions =
  let ids = List.map Session.id sessions in
  t.sync_groups <- ids :: t.sync_groups;
  align_sync_groups t

let adaptations t = List.rev t.adaptation_log

(* External steering engines share the per-session anti-flapping clock
   with the built-in monitor: both read and advance [m_last_change], so
   the combined switch stream respects one cooldown. *)
let last_reconfigured t session =
  match Hashtbl.find_opt t.monitors (Session.id session) with
  | None -> None
  | Some mon -> Some mon.m_last_change

let note_switch t session text =
  (match Hashtbl.find_opt t.monitors (Session.id session) with
  | Some mon -> mon.m_last_change <- Engine.now t.t_engine
  | None -> ());
  log_adaptation t session text
