open Adaptive_sim
open Adaptive_mech

type binding =
  | Static_template of string
  | Reconfigurable_template of string
  | Synthesized

type context = {
  binding : binding;
  mutable scs : Scs.t;
  window : Window.t;
  rtt : Rtt.t;
  mutable reorder : Reorder.t;
  mutable fec_rx_cell : Fec.Receiver.t option;
  mutable fec_tx : Fec.Sender.t option;
  mutable rate : Rate.t option;
  mutable cc : Slowstart.t option;
  mutable playout : Playout.t option;
  mutable segue_count : int;
}

let instantiate_rate (scs : Scs.t) =
  match scs.Scs.transmission with
  | Params.Rate_based { rate_bps; burst } ->
    Some (Rate.create ~rate_bps ~burst_bytes:(burst * scs.Scs.segment_bytes))
  | Params.Stop_and_wait | Params.Sliding_window _ -> None

let instantiate_cc (scs : Scs.t) =
  match scs.Scs.congestion with
  | Params.Slow_start { initial; threshold } -> Some (Slowstart.create ~initial ~threshold)
  | Params.No_congestion_control -> None

let instantiate_fec_tx (scs : Scs.t) =
  match scs.Scs.recovery with
  | Params.Forward_error_correction { group } -> Some (Fec.Sender.create ~group)
  | Params.No_recovery | Params.Go_back_n | Params.Selective_repeat -> None

let instantiate_playout (scs : Scs.t) =
  match scs.Scs.delivery with
  | Params.Playout { target } -> Some (Playout.create ~target)
  | Params.As_available -> None

let synthesize ?(binding = Synthesized) (scs : Scs.t) =
  {
    binding;
    scs;
    window = Window.create ();
    rtt = Rtt.create ~initial_rto:scs.Scs.initial_rto ();
    reorder =
      Reorder.create ~ordering:scs.Scs.ordering ~duplicates:scs.Scs.duplicates ();
    fec_rx_cell = None;
    fec_tx = instantiate_fec_tx scs;
    rate = instantiate_rate scs;
    cc = instantiate_cc scs;
    playout = instantiate_playout scs;
    segue_count = 0;
  }

(* FEC reconstruction state materializes on first use: the receiver
   carries three hash tables (~150 words), which would dominate endpoint
   construction for the vast majority of sessions that never see a
   parity group. *)
let fec_rx ctx =
  match ctx.fec_rx_cell with
  | Some rx -> rx
  | None ->
    let rx = Fec.Receiver.create () in
    ctx.fec_rx_cell <- Some rx;
    rx

let segue ctx (next : Scs.t) =
  match ctx.binding with
  | Static_template name ->
    Error (Printf.sprintf "context bound to static template %S cannot segue" name)
  | Reconfigurable_template _ | Synthesized ->
    let changed = Scs.component_names ctx.scs next in
    if changed = [] then Ok []
    else begin
      (* Transmission: keep the pacer's token level on a pure rate change;
         otherwise (re)instantiate. *)
      (match (ctx.rate, next.Scs.transmission) with
      | Some pacer, Params.Rate_based { rate_bps; _ } -> Rate.set_rate pacer ~rate_bps
      | _, _ -> ctx.rate <- instantiate_rate next);
      (match next.Scs.transmission with
      | Params.Rate_based _ -> ()
      | Params.Stop_and_wait | Params.Sliding_window _ -> ctx.rate <- None);
      (* Congestion control: preserve an existing window if the scheme is
         unchanged in kind. *)
      (match (ctx.cc, next.Scs.congestion) with
      | Some _, Params.Slow_start _ -> ()
      | _, _ -> ctx.cc <- instantiate_cc next);
      (* Recovery: FEC accumulator appears/disappears; ARQ schemes share
         the untouched Window.t, so GBN <-> SR swaps carry no state. *)
      (match (ctx.fec_tx, next.Scs.recovery) with
      | Some tx, Params.Forward_error_correction { group }
        when Fec.Sender.group tx = group -> ()
      | _, _ -> ctx.fec_tx <- instantiate_fec_tx next);
      (* Delivery: adjust the playout point in place when possible so
         released/discard statistics survive. *)
      (match (ctx.playout, next.Scs.delivery) with
      | Some p, Params.Playout { target } -> Playout.set_target p target
      | _, _ -> ctx.playout <- instantiate_playout next);
      (* Ordering/duplicates changes need a fresh sequencing buffer only
         if the discipline itself changed. *)
      if
        ctx.scs.Scs.ordering <> next.Scs.ordering
        || ctx.scs.Scs.duplicates <> next.Scs.duplicates
      then begin
        let fresh =
          Reorder.create ~ordering:next.Scs.ordering ~duplicates:next.Scs.duplicates ()
        in
        (* Carry the cumulative point forward so no segment is delivered
           twice or skipped. *)
        let rec catch_up n =
          if n < Reorder.expected ctx.reorder then begin
            ignore
              (Reorder.offer fresh
                 (Pdu.seg ~seq:n ~bytes:0 ()));
            catch_up (n + 1)
          end
        in
        catch_up 0;
        ctx.reorder <- fresh
      end;
      ctx.scs <- next;
      ctx.segue_count <- ctx.segue_count + 1;
      Ok changed
    end

let effective_send_window ctx ~peer_window =
  match ctx.scs.Scs.transmission with
  | Params.Rate_based _ -> max_int
  | Params.Stop_and_wait -> 1
  | Params.Sliding_window { window } ->
    let cc_bound = match ctx.cc with Some cc -> Slowstart.window cc | None -> max_int in
    max 1 (min window (min peer_window cc_bound))

module Templates = struct
  let tcp_compatible = "tcp-compatible"
  let udp_compatible = "udp-compatible"
  let media_stream = "media-stream"
  let bulk_lfn = "bulk-lfn"
  let transaction = "transaction"
  let reliable_multicast = "reliable-multicast"
  let swarm_lite = "swarm-lite"

  let tcp_scs =
    {
      Scs.default with
      Scs.connection = Params.Three_way;
      transmission = Params.Sliding_window { window = 44 (* 64 KiB / 1460 *) };
      congestion = Params.Slow_start { initial = 1; threshold = 22 };
      detection = Params.Internet_checksum;
      reporting = Params.Cumulative_ack { delay = Time.ms 2 };
      recovery = Params.Go_back_n;
      ordering = Params.Ordered;
      duplicates = Params.Drop_duplicates;
      delivery = Params.As_available;
      recv_buffer_segments = 44;
    }

  let udp_scs =
    {
      Scs.default with
      Scs.connection = Params.Implicit;
      transmission = Params.Rate_based { rate_bps = 100e6; burst = 16 };
      congestion = Params.No_congestion_control;
      detection = Params.Internet_checksum;
      reporting = Params.No_report;
      recovery = Params.No_recovery;
      ordering = Params.Unordered;
      duplicates = Params.Accept_duplicates;
      delivery = Params.As_available;
    }

  let media_scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Rate_based { rate_bps = 1.5e6; burst = 4 };
      congestion = Params.No_congestion_control;
      detection = Params.Internet_checksum;
      reporting = Params.No_report;
      recovery = Params.No_recovery;
      ordering = Params.Ordered;
      duplicates = Params.Drop_duplicates;
      delivery = Params.Playout { target = Time.ms 80 };
    }

  let bulk_lfn_scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Sliding_window { window = 512 };
      congestion = Params.Slow_start { initial = 4; threshold = 256 };
      detection = Params.Crc32;
      reporting = Params.Selective_ack { delay = Time.ms 2 };
      recovery = Params.Selective_repeat;
      ordering = Params.Ordered;
      duplicates = Params.Drop_duplicates;
      delivery = Params.As_available;
      recv_buffer_segments = 512;
    }

  let transaction_scs =
    {
      Scs.default with
      Scs.connection = Params.Implicit;
      transmission = Params.Sliding_window { window = 8 };
      congestion = Params.No_congestion_control;
      detection = Params.Internet_checksum;
      reporting = Params.Cumulative_ack { delay = Time.ms 1 };
      recovery = Params.Selective_repeat;
      ordering = Params.Ordered;
      duplicates = Params.Drop_duplicates;
      delivery = Params.As_available;
    }

  (* Minimal-footprint configuration MANTTS falls back to under admission
     pressure: reliable and ordered (so degraded sessions stay correct)
     but with a tiny window, small receive commitment and background
     priority. *)
  let swarm_lite_scs =
    {
      Scs.default with
      Scs.connection = Params.Implicit;
      transmission = Params.Sliding_window { window = 4 };
      congestion = Params.No_congestion_control;
      detection = Params.Internet_checksum;
      reporting = Params.Cumulative_ack { delay = Time.ms 2 };
      recovery = Params.Go_back_n;
      ordering = Params.Ordered;
      duplicates = Params.Drop_duplicates;
      delivery = Params.As_available;
      recv_buffer_segments = 4;
      priority = 6;
    }

  let reliable_multicast_scs =
    {
      Scs.default with
      Scs.connection = Params.Two_way;
      transmission = Params.Rate_based { rate_bps = 2e6; burst = 8 };
      congestion = Params.No_congestion_control;
      detection = Params.Internet_checksum;
      reporting = Params.Nack_on_gap;
      recovery = Params.Selective_repeat;
      ordering = Params.Ordered;
      duplicates = Params.Drop_duplicates;
      delivery = Params.As_available;
    }

  let entries =
    [
      (tcp_compatible, (Static_template tcp_compatible, tcp_scs));
      (udp_compatible, (Static_template udp_compatible, udp_scs));
      (media_stream, (Reconfigurable_template media_stream, media_scs));
      (bulk_lfn, (Reconfigurable_template bulk_lfn, bulk_lfn_scs));
      (transaction, (Reconfigurable_template transaction, transaction_scs));
      ( reliable_multicast,
        (Reconfigurable_template reliable_multicast, reliable_multicast_scs) );
      (swarm_lite, (Reconfigurable_template swarm_lite, swarm_lite_scs));
    ]

  let names = List.map fst entries
  let find name = List.assoc_opt name entries
  let hits = ref 0
  let misses = ref 0

  let lookup_scs scs =
    let found =
      List.find_opt (fun (_, (_, template_scs)) -> Scs.equal scs template_scs) entries
    in
    match found with
    | Some (name, (binding, _)) ->
      incr hits;
      Some (binding, name)
    | None ->
      incr misses;
      None

  let cache_hits () = !hits
  let cache_misses () = !misses
end
