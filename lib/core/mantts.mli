(** MANTTS — "Map Applications and Networks To Transport Systems" (§4.1).

    The policy subsystem.  Opening a session runs the three-stage
    transformation of Figure 2:

    - {b Stage I} — {!classify}: QoS requirements → Transport Service
      Class (unless the ACD selected one explicitly).
    - {b Stage II} — {!derive_scs}: TSC policies reconciled with sampled
      network characteristics (path MTU, bottleneck bandwidth, bit-error
      rate, RTT estimate, utilization) → Session Configuration
      Specification.
    - {b Stage III} — TKO synthesis: template-cache lookup, then
      {!Session.connect} instantiates the executable configuration.

    Each host runs a MANTTS {e entity} owning its buffer pool and the
    passive-open policy (negotiation clamps a proposal's receive buffer to
    local resources and counter-proposes).  During data transfer a
    per-session monitor samples the network and the session's own metrics
    and evaluates TSA rules — the application's ⟨condition, action⟩ pairs
    plus built-in class policies (§3(C)'s go-back-n ↔ selective-repeat
    and ARQ → FEC switches, rate scaling under congestion) — applying
    reconfigurations through segue. *)

open Adaptive_sim
open Adaptive_buf
open Adaptive_net
open Adaptive_mech

type t
(** A MANTTS instance spanning the hosts of one simulated system. *)

type entity
(** The per-host MANTTS entity. *)

val create : net:Pdu.t Network.t -> unites:Unites.t -> rng:Rng.t -> unit -> t
(** Build the policy subsystem over a network. *)

val engine : t -> Engine.t
val network : t -> Pdu.t Network.t
val unites : t -> Unites.t

val add_host :
  ?host:Host.t -> ?buffer_segments:int -> t -> addr:Network.addr -> entity
(** Register a host: creates its dispatcher, buffer pool
    ([buffer_segments], default 4096) and negotiation acceptor.  [host]
    defaults to a host CPU with 1992-class costs. *)

val entity : t -> Network.addr -> entity
(** The entity at an address.  Raises [Not_found] if absent. *)

val dispatcher : entity -> Session.Dispatcher.dispatcher
(** The host's PDU demultiplexer. *)

val pool : entity -> Pool.t
(** The host's buffer pool. *)

val set_app_handler : entity -> (Session.t -> Session.delivery -> unit) -> unit
(** Application callback for passively accepted sessions at this host. *)

val classify : Acd.t -> Tsc.t
(** Stage I. *)

type path_characteristics = {
  mtu : int;  (** Smallest MTU over all participants' paths. *)
  bottleneck_bps : float;  (** Narrowest hop bandwidth. *)
  worst_ber : float;  (** Largest hop bit-error rate. *)
  rtt : Time.t;  (** Round-trip estimate for a full segment. *)
  utilization : float;  (** Worst current hop utilization. *)
  hop_count : int;  (** Hops on the longest path. *)
}
(** What the MANTTS network-monitor interface reports about the route(s)
    to the session's participants. *)

val sample_paths : t -> src:Network.addr -> Acd.t -> path_characteristics
(** Sample current network state toward every participant. *)

val derive_scs : t -> src:Network.addr -> Acd.t -> Tsc.t -> Scs.t
(** Stage II: reconcile class policies, QoS and network state into a
    configuration. *)

type admission_policy = {
  soft_sessions : int;
      (** From this many live sessions on, new ACDs are admitted only
          degraded (counter-proposed down to a lighter configuration). *)
  hard_sessions : int;
      (** From this many live sessions on, new ACDs are refused. *)
  max_cpu_backlog : Time.t;
      (** Host receive-processing backlog above which new ACDs are
          degraded even below [soft_sessions]. *)
}
(** MANTTS admission control: the graceful-degradation policy applied to
    both active opens ({!try_open_session}) and passive accepts. *)

type admission = Admitted | Degraded | Refused
(** What admission control decided for one open attempt.  [Degraded] and
    [Refused] decisions are counted under {!Unites.swarm_session}. *)

val set_admission : t -> admission_policy option -> unit
(** Install (or clear, with [None]) the admission policy.  Default: no
    policy — every open is [Admitted]. *)

val admission_policy : t -> admission_policy option
(** The policy currently in force. *)

val tick_stats : t -> int * int
(** [(rounds, walked)] — cumulative shared-monitor-tick firings and live
    monitors walked across them.  [walked / rounds] is the mean per-tick
    working set: with the dense monitored array it tracks the {e
    monitored} population, not the session population, which is the
    O(active) control-plane claim the megaswarm bench records. *)

val degrade_scs : Scs.t -> Scs.t
(** The graceful-degradation transform: preserves reliability, ordering,
    duplicate handling and delivery semantics, but shrinks the window (or
    halves the pacing rate), caps the receive-buffer commitment, weakens
    CRC32 to the internet checksum and demotes scheduling priority. *)

val open_session :
  ?name:string ->
  ?on_deliver:(Session.t -> Session.delivery -> unit) ->
  ?on_notify:(Session.t -> string -> unit) ->
  ?scs_transform:(Scs.t -> Scs.t) ->
  t ->
  src:Network.addr ->
  acd:Acd.t ->
  unit ->
  Session.t
(** Run all three stages and start the connection.  Installs the
    data-transfer-phase monitor that evaluates the ACD's TSA rules and
    the built-in adaptation policies.  [on_notify] receives
    [Notify_application] actions.  [scs_transform] rewrites the derived
    (and possibly degraded) SCS just before Stage III synthesis — the
    hook the steering experiments use to pin a whole population to one
    static configuration.
    @raise Failure when the admission policy refuses the open — callers
    that expect refusals should use {!try_open_session}. *)

val try_open_session :
  ?name:string ->
  ?on_deliver:(Session.t -> Session.delivery -> unit) ->
  ?on_notify:(Session.t -> string -> unit) ->
  ?scs_transform:(Scs.t -> Scs.t) ->
  t ->
  src:Network.addr ->
  acd:Acd.t ->
  unit ->
  (Session.t * admission, string) result
(** Like {!open_session}, but admission-control aware: [Error reason]
    when the open is refused, [Ok (session, Degraded)] when it was
    admitted with a lightened configuration. *)

val close_session : ?graceful:bool -> t -> Session.t -> unit
(** Release the session and stop its monitor. *)

val renegotiate : ?acd:Acd.t -> t -> Session.t -> (string list, string) result
(** The "Adjust the TSC" reconfiguration path of §4.1.2: re-run Stages I
    and II — against a revised descriptor when [acd] is given, and the
    network's *current* state either way — and segue the session to the
    result.  Returns the changed component names.  [Error] if the session
    was not opened through {!open_session} or is statically bound. *)

val synchronize : t -> Session.t list -> unit
(** Temporal synchronization of related media streams (§3's
    tele-conferencing requirement; MANTTS "coordinates multiple related
    communication sessions").  The group's playout points are aligned to
    the slowest member — now and whenever re-derivation moves any member —
    so audio and video reach their applications in step. *)

val adaptations : t -> (Time.t * int * string) list
(** Every reconfiguration the policy monitors applied: time, session id,
    human-readable description — oldest first. *)

val last_reconfigured : t -> Session.t -> Time.t option
(** When a policy actor — the built-in monitor or an external steering
    engine — last applied a component switch to this session
    ([Time.zero] if never).  [None] when the session was not opened
    through {!open_session}/{!try_open_session}. *)

val note_switch : t -> Session.t -> string -> unit
(** Record an externally-applied component switch: appends to the
    {!adaptations} log and advances the session's cooldown clock, so an
    external steering engine (STEER) shares one anti-flapping clock with
    the built-in monitor and stays visible to the chaos flap-cooldown
    oracle.  Descriptions beginning with ["switch "] are the ones that
    oracle audits. *)

val monitor_interval : Time.t
(** How often session monitors sample conditions (100 ms). *)

val reconfigure_cooldown : Time.t
(** Minimum spacing a session monitor enforces between the component
    switches it applies (500 ms) — the anti-flapping debounce the chaos
    invariant checker holds MANTTS to. *)
