open Adaptive_sim

type replication = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  half_width : float;
}

let median_of values =
  let sorted = List.sort Float.compare values in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let validate_seeds ~what seeds =
  if seeds = [] then invalid_arg (what ^ ": no seeds");
  let sorted = List.sort_uniq compare seeds in
  if List.length sorted <> List.length seeds then
    invalid_arg (what ^ ": duplicate seeds (replicas would be identical)")

(* The reduction is a sequential fold over [values] in seed order, so a
   parallel run that preserves value order produces the bit-identical
   record (float summation order matters). *)
let summarize values =
  let stats = Stats.create () in
  List.iter (Stats.add stats) values;
  let n = Stats.count stats in
  let stddev = if n < 2 then 0.0 else Stats.stddev stats in
  {
    n;
    mean = Stats.mean stats;
    median = median_of values;
    stddev;
    half_width = (if n < 2 then 0.0 else 2.0 *. stddev /. sqrt (float_of_int n));
  }

let replicate ~seeds f =
  validate_seeds ~what:"Lab.replicate" seeds;
  summarize (List.map (fun seed -> f ~seed) seeds)

let replicate_par ?pool ~jobs ~seeds f =
  validate_seeds ~what:"Lab.replicate_par" seeds;
  summarize
    (Adaptive_fleet.Fleet.map_list ?pool ~jobs (fun seed -> f ~seed) seeds)

let default_seeds = [ 11; 211; 3011; 40111; 500111 ]

let distinguishable a b =
  Float.abs (a.mean -. b.mean) > a.half_width +. b.half_width

let pp fmt r =
  Format.fprintf fmt "%.3g ± %.2g (med %.3g, n=%d)" r.mean r.half_width r.median r.n

let compare_table ~label_a ~label_b ~rows fmt () =
  Format.fprintf fmt "%-14s %22s %22s %16s@." "" label_a label_b "verdict";
  List.iter
    (fun (name, a, b) ->
      Format.fprintf fmt "%-14s %22s %22s %16s@." name
        (Format.asprintf "%a" pp a)
        (Format.asprintf "%a" pp b)
        (if distinguishable a b then
           if a.mean > b.mean then label_a ^ " higher" else label_b ^ " higher"
         else "indistinct"))
    rows
