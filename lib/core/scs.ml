open Adaptive_sim
open Adaptive_mech

type t = {
  connection : Params.connection;
  transmission : Params.transmission;
  congestion : Params.congestion_window;
  detection : Params.detection;
  reporting : Params.reporting;
  recovery : Params.recovery;
  ordering : Params.ordering;
  duplicates : Params.duplicates;
  delivery : Params.delivery;
  segment_bytes : int;
  recv_buffer_segments : int;
  priority : int;
  initial_rto : Time.t;
}

let default =
  {
    connection = Params.Three_way;
    transmission = Params.Sliding_window { window = 8 };
    congestion = Params.No_congestion_control;
    detection = Params.Internet_checksum;
    reporting = Params.Cumulative_ack { delay = Time.ms 2 };
    recovery = Params.Go_back_n;
    ordering = Params.Ordered;
    duplicates = Params.Drop_duplicates;
    delivery = Params.As_available;
    segment_bytes = 1460;
    recv_buffer_segments = 64;
    priority = 4;
    initial_rto = Time.sec 1.0;
  }

(* Blobs are ;-separated key=value lists.  Component encodings come from
   Params; the scalar parameters are appended. *)
let to_blob_uncached t =
  String.concat ";"
    [
      "conn=" ^ Params.connection_to_string t.connection;
      "tx=" ^ Params.transmission_to_string t.transmission;
      "cc=" ^ Params.congestion_window_to_string t.congestion;
      "det=" ^ Params.detection_to_string t.detection;
      "rep=" ^ Params.reporting_to_string t.reporting;
      "rec=" ^ Params.recovery_to_string t.recovery;
      "ord=" ^ Params.ordering_to_string t.ordering;
      "dup=" ^ Params.duplicates_to_string t.duplicates;
      "del=" ^ Params.delivery_to_string t.delivery;
      "seg=" ^ string_of_int t.segment_bytes;
      "buf=" ^ string_of_int t.recv_buffer_segments;
      "pri=" ^ string_of_int t.priority;
      "rto=" ^ string_of_int t.initial_rto;
    ]

(* Connection setup serializes a proposal into every Syn and parses it
   back on both sides, but a swarm negotiates the same handful of
   configurations over and over: memoize both directions.  [t] is fully
   immutable, so returning a shared record is safe.  The tables reset at
   a size bound so a workload that synthesizes unbounded shapes cannot
   grow them without limit. *)
let blob_cache : (t, string) Hashtbl.t = Hashtbl.create 64
let parse_cache : (string, t option) Hashtbl.t = Hashtbl.create 64
let cache_bound = 512

let to_blob t =
  match Hashtbl.find blob_cache t with
  | blob -> blob
  | exception Not_found ->
    let blob = to_blob_uncached t in
    if Hashtbl.length blob_cache >= cache_bound then Hashtbl.reset blob_cache;
    Hashtbl.add blob_cache t blob;
    blob

let of_blob_uncached blob =
  let kvs =
    List.filter_map
      (fun part ->
        match String.index_opt part '=' with
        | None -> None
        | Some i ->
          Some
            ( String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1) ))
      (String.split_on_char ';' blob)
  in
  let find k = List.assoc_opt k kvs in
  let ( let* ) = Option.bind in
  let* conn = Option.bind (find "conn") Params.connection_of_string in
  let* tx = Option.bind (find "tx") Params.transmission_of_string in
  let* cc = Option.bind (find "cc") Params.congestion_window_of_string in
  let* det = Option.bind (find "det") Params.detection_of_string in
  let* rep = Option.bind (find "rep") Params.reporting_of_string in
  let* rec_ = Option.bind (find "rec") Params.recovery_of_string in
  let* ord = Option.bind (find "ord") Params.ordering_of_string in
  let* dup = Option.bind (find "dup") Params.duplicates_of_string in
  let* del = Option.bind (find "del") Params.delivery_of_string in
  let* seg = Option.bind (find "seg") int_of_string_opt in
  let* buf = Option.bind (find "buf") int_of_string_opt in
  let* pri = Option.bind (find "pri") int_of_string_opt in
  let* rto = Option.bind (find "rto") int_of_string_opt in
  Some
    {
      connection = conn;
      transmission = tx;
      congestion = cc;
      detection = det;
      reporting = rep;
      recovery = rec_;
      ordering = ord;
      duplicates = dup;
      delivery = del;
      segment_bytes = seg;
      recv_buffer_segments = buf;
      priority = pri;
      initial_rto = rto;
    }

let of_blob blob =
  match Hashtbl.find parse_cache blob with
  | parsed -> parsed
  | exception Not_found ->
    let parsed = of_blob_uncached blob in
    if Hashtbl.length parse_cache >= cache_bound then Hashtbl.reset parse_cache;
    Hashtbl.add parse_cache blob parsed;
    parsed

(* Structural equality.  The previous definition compared serialized
   blobs, which built ~2.9k words of strings per template-cache probe —
   the single largest allocation source at swarm scale.  Every field is
   an immediate or a variant of immediates/floats, so polymorphic
   equality is allocation-free and decides the same relation. *)
let equal (a : t) (b : t) = a = b

let component_names a b =
  List.filter_map
    (fun (name, differs) -> if differs then Some name else None)
    [
      ("connection", a.connection <> b.connection);
      ("transmission", a.transmission <> b.transmission);
      ("congestion", a.congestion <> b.congestion);
      ("detection", a.detection <> b.detection);
      ("reporting", a.reporting <> b.reporting);
      ("recovery", a.recovery <> b.recovery);
      ("ordering", a.ordering <> b.ordering);
      ("duplicates", a.duplicates <> b.duplicates);
      ("delivery", a.delivery <> b.delivery);
      ("segment_bytes", a.segment_bytes <> b.segment_bytes);
      ("recv_buffer", a.recv_buffer_segments <> b.recv_buffer_segments);
      ("priority", a.priority <> b.priority);
      ("initial_rto", a.initial_rto <> b.initial_rto);
    ]

let pp fmt t =
  Format.fprintf fmt "%a/%a/%a/%a/%a/%a/%a/%a/%a seg=%d buf=%d pri=%d"
    Params.pp_connection t.connection Params.pp_transmission t.transmission
    Params.pp_congestion_window t.congestion Params.pp_detection t.detection
    Params.pp_reporting t.reporting Params.pp_recovery t.recovery
    Params.pp_ordering t.ordering Params.pp_duplicates t.duplicates
    Params.pp_delivery t.delivery t.segment_bytes t.recv_buffer_segments
    t.priority

let reliable t =
  match t.recovery with
  | Params.Go_back_n | Params.Selective_repeat -> true
  | Params.No_recovery | Params.Forward_error_correction _ -> false

let tracks_peer_feedback t = t.reporting <> Params.No_report

let ack_based t =
  match t.reporting with
  | Params.Cumulative_ack _ | Params.Selective_ack _ -> true
  | Params.No_report | Params.Nack_on_gap -> false
