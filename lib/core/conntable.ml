open Adaptive_sim

type entry_state = Half_open | Open | Time_wait

(* Slot states, kept as raw ints in a flat array so the probe loop touches
   one immediate-typed array per step. *)
let s_free = 0
let s_tomb = 1
let s_half = 2
let s_open = 3
let s_wait = 4

type 'a t = {
  mutable keys : int array;
  mutable states : int array;
  mutable values : 'a option array;
  mutable expiry : Time.t array; (* meaningful only for time-wait slots *)
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int; (* half-open + open *)
  mutable half : int;
  mutable waiting : int;
  mutable tombs : int;
  mutable lookups : int;
  mutable total_probes : int;
  mutable last_probes : int;
  mutable max_probes : int;
  (* Time-wait FIFO: [retire] appends (key, expiry) to a ring so the
     sweeper pops expired entries from the front — O(expired) per sweep
     instead of a full O(capacity) slot scan.  Expiries are pushed in
     non-decreasing order in practice (a constant quarantine added to the
     monotone clock); an out-of-order entry is still expired correctly,
     just no earlier than the entries queued ahead of it. *)
  mutable twq_keys : int array;
  mutable twq_exp : Time.t array;
  mutable twq_head : int;
  mutable twq_len : int;
}

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(initial_capacity = 16) () =
  let cap = pow2 (max 8 initial_capacity) 8 in
  {
    keys = Array.make cap 0;
    states = Array.make cap s_free;
    values = Array.make cap None;
    expiry = Array.make cap Time.zero;
    mask = cap - 1;
    live = 0;
    half = 0;
    waiting = 0;
    tombs = 0;
    lookups = 0;
    total_probes = 0;
    last_probes = 0;
    max_probes = 0;
    twq_keys = Array.make 16 0;
    twq_exp = Array.make 16 Time.zero;
    twq_head = 0;
    twq_len = 0;
  }

let capacity t = t.mask + 1
let live_count t = t.live
let half_open_count t = t.half
let time_wait_count t = t.waiting
let occupancy t = float_of_int (t.live + t.waiting) /. float_of_int (capacity t)
let last_probes t = t.last_probes
let total_probes t = t.total_probes
let lookups t = t.lookups
let max_probes t = t.max_probes

(* Fibonacci-style multiplicative hash: connection ids are small dense
   integers, so a plain mask would cluster them into consecutive slots. *)
let slot_of t key = key * 0x2545F4914F6CDD1D land t.mask

(* The table is kept under 3/4 combined occupancy, so an empty slot always
   terminates the probe loop. *)
let find t key =
  let mask = t.mask in
  let states = t.states in
  let keys = t.keys in
  let i = ref (slot_of t key) in
  let probes = ref 1 in
  let result = ref (-2) in
  while !result = -2 do
    let s = Array.unsafe_get states !i in
    if s = s_free then result := -1
    else if s <> s_tomb && Array.unsafe_get keys !i = key then result := !i
    else begin
      i := (!i + 1) land mask;
      incr probes
    end
  done;
  t.lookups <- t.lookups + 1;
  t.total_probes <- t.total_probes + !probes;
  t.last_probes <- !probes;
  if !probes > t.max_probes then t.max_probes <- !probes;
  !result

(* Same probe loop as [find] but without touching the demux telemetry:
   maintenance lookups (the time-wait sweeper) must not count as
   application demux work. *)
let find_silent t key =
  let mask = t.mask in
  let states = t.states in
  let keys = t.keys in
  let i = ref (slot_of t key) in
  let result = ref (-2) in
  while !result = -2 do
    let s = Array.unsafe_get states !i in
    if s = s_free then result := -1
    else if s <> s_tomb && Array.unsafe_get keys !i = key then result := !i
    else i := (!i + 1) land mask
  done;
  !result

let slot_state t slot =
  match t.states.(slot) with
  | 2 -> Half_open
  | 3 -> Open
  | 4 -> Time_wait
  | _ -> invalid_arg "Conntable.slot_state: empty slot"

let slot_value t slot =
  match t.values.(slot) with
  | Some v -> v
  | None -> invalid_arg "Conntable.slot_value: no live value at slot"

let find_live t key =
  let slot = find t key in
  if slot < 0 then None
  else match t.values.(slot) with Some _ as v -> v | None -> None

(* Locate the slot where [key] lives or should be inserted: an existing
   entry wins; otherwise the first tombstone on the probe path is reused. *)
let insertion_slot t key =
  let mask = t.mask in
  let i = ref (slot_of t key) in
  let first_tomb = ref (-1) in
  let result = ref (-2) in
  while !result = -2 do
    let s = t.states.(!i) in
    if s = s_free then result := (if !first_tomb >= 0 then !first_tomb else !i)
    else if s = s_tomb then begin
      if !first_tomb < 0 then first_tomb := !i;
      i := (!i + 1) land mask
    end
    else if t.keys.(!i) = key then result := !i
    else i := (!i + 1) land mask
  done;
  !result

let clear_slot t slot =
  (match t.states.(slot) with
  | 2 ->
    t.half <- t.half - 1;
    t.live <- t.live - 1
  | 3 -> t.live <- t.live - 1
  | 4 -> t.waiting <- t.waiting - 1
  | _ -> ());
  t.values.(slot) <- None

let grow t =
  let old_states = t.states and old_keys = t.keys in
  let old_values = t.values and old_expiry = t.expiry in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap 0;
  t.states <- Array.make cap s_free;
  t.values <- Array.make cap None;
  t.expiry <- Array.make cap Time.zero;
  t.mask <- cap - 1;
  t.tombs <- 0;
  Array.iteri
    (fun i s ->
      if s >= s_half then begin
        let slot = insertion_slot t old_keys.(i) in
        t.keys.(slot) <- old_keys.(i);
        t.states.(slot) <- s;
        t.values.(slot) <- old_values.(i);
        t.expiry.(slot) <- old_expiry.(i)
      end)
    old_states

let maybe_grow t =
  if (t.live + t.waiting + t.tombs) * 4 >= (t.mask + 1) * 3 then grow t

let insert t ~key ~half_open v =
  maybe_grow t;
  let slot = insertion_slot t key in
  (match t.states.(slot) with
  | s when s = s_tomb -> t.tombs <- t.tombs - 1
  | s when s >= s_half -> clear_slot t slot
  | _ -> ());
  t.keys.(slot) <- key;
  t.states.(slot) <- (if half_open then s_half else s_open);
  t.values.(slot) <- Some v;
  t.live <- t.live + 1;
  if half_open then t.half <- t.half + 1

let promote t key =
  let slot = find t key in
  if slot >= 0 && t.states.(slot) = s_half then begin
    t.states.(slot) <- s_open;
    t.half <- t.half - 1
  end

let twq_push t key expiry =
  let cap = Array.length t.twq_keys in
  if t.twq_len = cap then begin
    let keys = Array.make (cap * 2) 0 in
    let exp = Array.make (cap * 2) Time.zero in
    for i = 0 to t.twq_len - 1 do
      keys.(i) <- t.twq_keys.((t.twq_head + i) land (cap - 1));
      exp.(i) <- t.twq_exp.((t.twq_head + i) land (cap - 1))
    done;
    t.twq_keys <- keys;
    t.twq_exp <- exp;
    t.twq_head <- 0
  end;
  let tail = (t.twq_head + t.twq_len) land (Array.length t.twq_keys - 1) in
  t.twq_keys.(tail) <- key;
  t.twq_exp.(tail) <- expiry;
  t.twq_len <- t.twq_len + 1

let retire t ~key ~expiry =
  let slot = find_silent t key in
  if slot >= 0 && t.states.(slot) >= s_half && t.states.(slot) <> s_wait then begin
    clear_slot t slot;
    t.states.(slot) <- s_wait;
    t.waiting <- t.waiting + 1;
    t.expiry.(slot) <- expiry;
    twq_push t key expiry
  end

let remove t key =
  let slot = find t key in
  if slot < 0 then false
  else begin
    clear_slot t slot;
    t.states.(slot) <- s_tomb;
    t.tombs <- t.tombs + 1;
    true
  end

(* Pop expired entries off the FIFO front.  A queue entry may be stale —
   its key re-inserted or re-retired since — so the slot must still be in
   time-wait with an expiry that has actually passed before it is freed;
   a later re-retire has its own queue entry. *)
let sweep t ~now =
  let expired = ref 0 in
  let continue = ref true in
  while !continue && t.twq_len > 0 do
    let mask = Array.length t.twq_keys - 1 in
    let head = t.twq_head land mask in
    if Time.compare t.twq_exp.(head) now <= 0 then begin
      let key = t.twq_keys.(head) in
      t.twq_head <- (t.twq_head + 1) land mask;
      t.twq_len <- t.twq_len - 1;
      let slot = find_silent t key in
      if
        slot >= 0
        && t.states.(slot) = s_wait
        && Time.compare t.expiry.(slot) now <= 0
      then begin
        t.states.(slot) <- s_tomb;
        t.tombs <- t.tombs + 1;
        t.waiting <- t.waiting - 1;
        incr expired
      end
    end
    else continue := false
  done;
  !expired

let iter_live f t =
  for slot = 0 to t.mask do
    let s = t.states.(slot) in
    if s = s_half || s = s_open then
      match t.values.(slot) with
      | Some v -> f t.keys.(slot) v
      | None -> ()
  done

let fold_live f t init =
  let acc = ref init in
  iter_live (fun k v -> acc := f k v !acc) t;
  !acc
