open Adaptive_sim

type metric =
  | Throughput
  | Rtt
  | Setup_latency
  | Delivery_latency
  | Jitter
  | Segments_sent
  | Segments_delivered
  | Bytes_delivered
  | Retransmissions
  | Timeouts
  | Dup_segments
  | Corrupt_detected
  | Corrupt_delivered
  | Late_discards
  | Losses_unrecovered
  | Fec_parity_sent
  | Fec_recovered
  | Acks_sent
  | Nacks_sent
  | Control_pdus
  | Reconfigurations
  | Window_size
  | Host_cpu
  | Sched_events_fired
  | Sched_timers_rearmed
  | Sched_cancelled_ratio
  | Sched_wheel_hit_rate
  | Faults_injected
  | Fault_recovery
  | Sessions_open
  | Sessions_refused
  | Sessions_degraded
  | Demux_probes
  | Table_occupancy
  | Timewait_drops
  | Wire_encodes
  | Wire_decodes
  | Wire_rejects
  | Wire_fused_sums
  | Wire_pool_reuse
  | Steer_swaps
  | Steer_blocked
  | Steer_time_in_config

type kind = Blackbox | Whitebox

let metric_kind = function
  | Throughput | Rtt -> Blackbox
  | Setup_latency | Delivery_latency | Jitter | Segments_sent | Segments_delivered
  | Bytes_delivered | Retransmissions | Timeouts | Dup_segments | Corrupt_detected
  | Corrupt_delivered | Late_discards | Losses_unrecovered | Fec_parity_sent
  | Fec_recovered | Acks_sent | Nacks_sent | Control_pdus | Reconfigurations
  | Window_size | Host_cpu | Sched_events_fired | Sched_timers_rearmed
  | Sched_cancelled_ratio | Sched_wheel_hit_rate | Faults_injected
  | Fault_recovery | Sessions_open | Sessions_refused | Sessions_degraded
  | Demux_probes | Table_occupancy | Timewait_drops | Wire_encodes
  | Wire_decodes | Wire_rejects | Wire_fused_sums | Wire_pool_reuse
  | Steer_swaps | Steer_blocked | Steer_time_in_config -> Whitebox

let metric_name = function
  | Throughput -> "throughput_bps"
  | Rtt -> "rtt_s"
  | Setup_latency -> "setup_latency_s"
  | Delivery_latency -> "delivery_latency_s"
  | Jitter -> "jitter_s"
  | Segments_sent -> "segments_sent"
  | Segments_delivered -> "segments_delivered"
  | Bytes_delivered -> "bytes_delivered"
  | Retransmissions -> "retransmissions"
  | Timeouts -> "timeouts"
  | Dup_segments -> "dup_segments"
  | Corrupt_detected -> "corrupt_detected"
  | Corrupt_delivered -> "corrupt_delivered"
  | Late_discards -> "late_discards"
  | Losses_unrecovered -> "losses_unrecovered"
  | Fec_parity_sent -> "fec_parity_sent"
  | Fec_recovered -> "fec_recovered"
  | Acks_sent -> "acks_sent"
  | Nacks_sent -> "nacks_sent"
  | Control_pdus -> "control_pdus"
  | Reconfigurations -> "reconfigurations"
  | Window_size -> "window_size"
  | Host_cpu -> "host_cpu_s"
  | Sched_events_fired -> "sched_events_fired"
  | Sched_timers_rearmed -> "sched_timers_rearmed"
  | Sched_cancelled_ratio -> "sched_cancelled_ratio"
  | Sched_wheel_hit_rate -> "sched_wheel_hit_rate"
  | Faults_injected -> "faults_injected"
  | Fault_recovery -> "fault_recovery_s"
  | Sessions_open -> "sessions_open"
  | Sessions_refused -> "sessions_refused"
  | Sessions_degraded -> "sessions_degraded"
  | Demux_probes -> "demux_probes"
  | Table_occupancy -> "table_occupancy"
  | Timewait_drops -> "timewait_drops"
  | Wire_encodes -> "wire_encodes"
  | Wire_decodes -> "wire_decodes"
  | Wire_rejects -> "wire_rejects"
  | Wire_fused_sums -> "wire_fused_sums"
  | Wire_pool_reuse -> "wire_pool_reuse"
  | Steer_swaps -> "steer_swaps"
  | Steer_blocked -> "steer_blocked"
  | Steer_time_in_config -> "steer_time_in_config_s"

let all_metrics =
  [
    Throughput;
    Rtt;
    Setup_latency;
    Delivery_latency;
    Jitter;
    Segments_sent;
    Segments_delivered;
    Bytes_delivered;
    Retransmissions;
    Timeouts;
    Dup_segments;
    Corrupt_detected;
    Corrupt_delivered;
    Late_discards;
    Losses_unrecovered;
    Fec_parity_sent;
    Fec_recovered;
    Acks_sent;
    Nacks_sent;
    Control_pdus;
    Reconfigurations;
    Window_size;
    Host_cpu;
    Sched_events_fired;
    Sched_timers_rearmed;
    Sched_cancelled_ratio;
    Sched_wheel_hit_rate;
    Faults_injected;
    Fault_recovery;
    Sessions_open;
    Sessions_refused;
    Sessions_degraded;
    Demux_probes;
    Table_occupancy;
    Timewait_drops;
    Wire_encodes;
    Wire_decodes;
    Wire_rejects;
    Wire_fused_sums;
    Wire_pool_reuse;
    Steer_swaps;
    Steer_blocked;
    Steer_time_in_config;
  ]

(* Dense metric indexing: the hot path keys accumulators by the packed
   int [(session lsl 6) lor metric_index] instead of an [(int * metric)]
   tuple, so a lookup allocates nothing.  The index order must match
   {!all_metrics}. *)
let metric_index = function
  | Throughput -> 0
  | Rtt -> 1
  | Setup_latency -> 2
  | Delivery_latency -> 3
  | Jitter -> 4
  | Segments_sent -> 5
  | Segments_delivered -> 6
  | Bytes_delivered -> 7
  | Retransmissions -> 8
  | Timeouts -> 9
  | Dup_segments -> 10
  | Corrupt_detected -> 11
  | Corrupt_delivered -> 12
  | Late_discards -> 13
  | Losses_unrecovered -> 14
  | Fec_parity_sent -> 15
  | Fec_recovered -> 16
  | Acks_sent -> 17
  | Nacks_sent -> 18
  | Control_pdus -> 19
  | Reconfigurations -> 20
  | Window_size -> 21
  | Host_cpu -> 22
  | Sched_events_fired -> 23
  | Sched_timers_rearmed -> 24
  | Sched_cancelled_ratio -> 25
  | Sched_wheel_hit_rate -> 26
  | Faults_injected -> 27
  | Fault_recovery -> 28
  | Sessions_open -> 29
  | Sessions_refused -> 30
  | Sessions_degraded -> 31
  | Demux_probes -> 32
  | Table_occupancy -> 33
  | Timewait_drops -> 34
  | Wire_encodes -> 35
  | Wire_decodes -> 36
  | Wire_rejects -> 37
  | Wire_fused_sums -> 38
  | Wire_pool_reuse -> 39
  | Steer_swaps -> 40
  | Steer_blocked -> 41
  | Steer_time_in_config -> 42

let key session mi = (session lsl 6) lor mi
let key_metric k = k land 63

let is_whitebox =
  Array.of_list
    (List.map (fun m -> metric_kind m = Whitebox) all_metrics)

(* Current-bucket accumulation cell.  The running sum lives in a
   one-element float array (unboxed store); completed buckets spill into
   [spill] once, when simulated time crosses into the next bucket. *)
type bcell = {
  mutable bslot : int;
  bcur : float array;
  mutable spill : (int, float) Hashtbl.t option;
      (* lazily created: a cell only spills when the session records in
         more than one bucket, which short-lived sessions never do *)
}

type t = {
  engine : Engine.t;
  mutable whitebox : bool;
  bucket : Time.t;
  res_size : int; (* per-accumulator reservoir bound *)
  estimator : Stats.estimator; (* quantile sketch for every accumulator *)
  table : (int, Stats.t) Hashtbl.t; (* packed (session, metric) key *)
  buckets : (int, bcell) Hashtbl.t; (* packed (session, metric) key *)
  names : (int, string) Hashtbl.t;
  tmc : (int, int) Hashtbl.t; (* per-session whitebox selection bitmask *)
  mutable session_cap : int; (* individually tracked real sessions *)
  mutable tracked : int;
  routed : (int, unit) Hashtbl.t; (* real sessions admitted to tracking *)
  mutable whitebox_count : int;
  (* last scheduler counter values folded into the repository, so each
     [sample_scheduler] observes the delta since the previous sample *)
  mutable sched_fired_seen : int;
  mutable sched_rearmed_seen : int;
  mutable trace : Trace.t option;
}

(* Scheduler observations live under a reserved pseudo-session: real
   connection ids are handed out starting from 1. *)
let scheduler_session = 0

(* Fault-injection observations likewise live under a reserved
   pseudo-session: faults belong to the run, not to any one connection. *)
let chaos_session = -1

(* Many-session scale observations (admission control, demux probes,
   table occupancy) likewise describe the host's dispatcher as a whole. *)
let swarm_session = -2

(* Wire-true data-path observations (encode/decode/reject counts, fused
   checksum passes, pool reuse) describe the codec and buffer pool of a
   whole stack, not any one connection. *)
let wire_session = -3

(* Closed-loop steering observations (swap counts, cooldown blocks,
   time-in-config) describe the STEER policy engine of a whole stack. *)
let steer_session = -4

(* When a session cap is set, real sessions past the cap share this
   pseudo-session: totals stay exact while per-session state stays
   bounded at GIGASWARM scale. *)
let overflow_session = -5

let create ?(whitebox = true) ?(bucket = Time.sec 1.0) ?(reservoir = 8192)
    ?(estimator = Stats.Reservoir) ?(session_cap = max_int) engine =
  {
    engine;
    whitebox;
    bucket = Time.max 1 bucket;
    res_size = max 8 reservoir;
    estimator;
    table = Hashtbl.create 64;
    buckets = Hashtbl.create 64;
    names = Hashtbl.create 16;
    tmc = Hashtbl.create 16;
    session_cap = max 1 session_cap;
    tracked = 0;
    routed = Hashtbl.create 16;
    whitebox_count = 0;
    sched_fired_seen = 0;
    sched_rearmed_seen = 0;
    trace = None;
  }

let set_session_cap t n = t.session_cap <- max 1 n

(* Route a real session id to its tracking bucket.  The first
   [session_cap] distinct real sessions (in deterministic first-contact
   order) are tracked individually; later ones fold into
   [overflow_session].  Only admitted sessions are stored, so the
   routing table itself is bounded by the cap. *)
let route t session =
  if session <= 0 || t.session_cap = max_int then session
  else if Hashtbl.mem t.routed session then session
  else if t.tracked < t.session_cap then begin
    t.tracked <- t.tracked + 1;
    Hashtbl.add t.routed session ();
    session
  end
  else begin
    if not (Hashtbl.mem t.names overflow_session) then
      Hashtbl.replace t.names overflow_session "overflow";
    overflow_session
  end

let whitebox_enabled t = t.whitebox
let set_whitebox t v = t.whitebox <- v
let register_session t ~id ~name =
  (* First registration wins: the initiator names the session; the
     responder's acceptance label is secondary.  Overflow-routed
     sessions are not named individually, so the name table stays
     bounded under a session cap. *)
  let id = route t id in
  if id <> overflow_session && not (Hashtbl.mem t.names id) then
    Hashtbl.add t.names id name

let accumulator t k =
  match Hashtbl.find t.table k with
  | s -> s
  | exception Not_found ->
    let s = Stats.create ~estimator:t.estimator ~reservoir:t.res_size () in
    Hashtbl.add t.table k s;
    s

let record_bucket t k v =
  let slot = Engine.now t.engine / t.bucket in
  match Hashtbl.find t.buckets k with
  | c ->
    if c.bslot = slot then c.bcur.(0) <- c.bcur.(0) +. v
    else begin
      (* Simulated time is monotone, so each bucket spills exactly once;
         the defensive merge keeps re-entry harmless regardless. *)
      let h =
        match c.spill with
        | Some h -> h
        | None ->
          let h = Hashtbl.create 4 in
          c.spill <- Some h;
          h
      in
      let prev =
        match Hashtbl.find h c.bslot with
        | p -> p
        | exception Not_found -> 0.0
      in
      Hashtbl.replace h c.bslot (prev +. c.bcur.(0));
      c.bslot <- slot;
      c.bcur.(0) <- v
    end
  | exception Not_found ->
    Hashtbl.add t.buckets k { bslot = slot; bcur = [| v |]; spill = None }

let mask_of metrics =
  List.fold_left (fun acc m -> acc lor (1 lsl metric_index m)) 0 metrics

let restrict_session t ~id metrics =
  let id = route t id in
  if id = overflow_session then begin
    (* Overflowed sessions share one restriction mask: the union of
       their TMCs.  Deterministic (first-contact order) and bounded. *)
    match mask_of metrics with
    | 0 -> ()
    | m ->
      let cur = match Hashtbl.find t.tmc id with c -> c | exception Not_found -> 0 in
      Hashtbl.replace t.tmc id (cur lor m)
  end
  else if metrics = [] then Hashtbl.remove t.tmc id
  else Hashtbl.replace t.tmc id (mask_of metrics)

let wanted t session mi =
  match Hashtbl.find t.tmc session with
  | mask -> mask land (1 lsl mi) <> 0
  | exception Not_found -> true

let record t session mi v =
  let k = key session mi in
  Stats.add (accumulator t k) v;
  record_bucket t k v

let observe t ~session m v =
  let mi = metric_index m in
  if Array.unsafe_get is_whitebox mi then begin
    if t.whitebox then begin
      let session = route t session in
      if wanted t session mi then begin
        t.whitebox_count <- t.whitebox_count + 1;
        record t session mi v
      end
    end
  end
  else record t (route t session) mi v

let count t ~session m = observe t ~session m 1.0

let stats t ~session m =
  Option.map Stats.summarize
    (Hashtbl.find_opt t.table (key session (metric_index m)))

let total t ~session m =
  match Hashtbl.find t.table (key session (metric_index m)) with
  | s -> Stats.total s
  | exception Not_found -> 0.0

let mean t ~session m =
  match Hashtbl.find t.table (key session (metric_index m)) with
  | s -> Stats.mean s
  | exception Not_found -> nan

let aggregate_acc t m =
  let mi = metric_index m in
  Hashtbl.fold
    (fun k s acc ->
      if key_metric k = mi then
        match acc with None -> Some s | Some a -> Some (Stats.merge a s)
      else acc)
    t.table None

let aggregate t m = Option.map Stats.summarize (aggregate_acc t m)

let aggregate_total t m =
  match aggregate_acc t m with Some s -> Stats.total s | None -> 0.0

let sessions t =
  Hashtbl.fold (fun id name acc -> (id, name) :: acc) t.names []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let whitebox_samples t = t.whitebox_count
let attach_trace t trace = t.trace <- Some trace
let attached_trace t = t.trace

let sample_scheduler t =
  if t.whitebox then begin
    register_session t ~id:scheduler_session ~name:"scheduler";
    let c = Engine.counters t.engine in
    let d_fired = c.Engine.events_fired - t.sched_fired_seen in
    let d_rearmed = c.Engine.timers_rearmed - t.sched_rearmed_seen in
    t.sched_fired_seen <- c.Engine.events_fired;
    t.sched_rearmed_seen <- c.Engine.timers_rearmed;
    if d_fired > 0 then
      observe t ~session:scheduler_session Sched_events_fired (float_of_int d_fired);
    if d_rearmed > 0 then
      observe t ~session:scheduler_session Sched_timers_rearmed
        (float_of_int d_rearmed);
    observe t ~session:scheduler_session Sched_cancelled_ratio
      (Engine.cancelled_ratio t.engine);
    observe t ~session:scheduler_session Sched_wheel_hit_rate
      (Engine.wheel_hit_rate t.engine)
  end

let cell_fold f acc c =
  let acc =
    match c.spill with
    | None -> acc
    | Some h -> Hashtbl.fold (fun slot v acc -> f acc slot v) h acc
  in
  f acc c.bslot c.bcur.(0)

let series t ~session m =
  match Hashtbl.find_opt t.buckets (key session (metric_index m)) with
  | None -> []
  | Some c ->
    cell_fold (fun acc slot v -> (slot * t.bucket, v) :: acc) [] c
    |> List.sort compare

let aggregate_series t m =
  let mi = metric_index m in
  let merged = Hashtbl.create 32 in
  let add _ slot v =
    Hashtbl.replace merged slot
      (v +. Option.value ~default:0.0 (Hashtbl.find_opt merged slot))
  in
  Hashtbl.iter
    (fun k c -> if key_metric k = mi then cell_fold add () c)
    t.buckets;
  Hashtbl.fold (fun slot v acc -> (slot * t.bucket, v) :: acc) merged []
  |> List.sort compare

let report fmt t =
  (* Fold the engine's current scheduler counters in so the report always
     shows scheduler overhead next to the transport metrics. *)
  sample_scheduler t;
  Format.fprintf fmt "@[<v>UNITES metric repository (t=%a, whitebox=%b)@,"
    Time.pp (Engine.now t.engine) t.whitebox;
  List.iter
    (fun (id, name) ->
      Format.fprintf fmt "session %d (%s):@," id name;
      List.iter
        (fun m ->
          match stats t ~session:id m with
          | None -> ()
          | Some s ->
            Format.fprintf fmt "  %-20s [%s] %a@," (metric_name m)
              (match metric_kind m with Blackbox -> "bb" | Whitebox -> "wb")
              Stats.pp_summary s)
        all_metrics)
    (sessions t);
  (match t.trace with
  | None -> ()
  | Some trace ->
    Format.fprintf fmt "trace (dropped log entries: %d):@," (Trace.dropped trace);
    List.iter
      (fun (name, n) -> Format.fprintf fmt "  %-28s %d@," name n)
      (Trace.counters trace));
  Format.fprintf fmt "@]"
