open Adaptive_sim

type metric =
  | Throughput
  | Rtt
  | Setup_latency
  | Delivery_latency
  | Jitter
  | Segments_sent
  | Segments_delivered
  | Bytes_delivered
  | Retransmissions
  | Timeouts
  | Dup_segments
  | Corrupt_detected
  | Corrupt_delivered
  | Late_discards
  | Losses_unrecovered
  | Fec_parity_sent
  | Fec_recovered
  | Acks_sent
  | Nacks_sent
  | Control_pdus
  | Reconfigurations
  | Window_size
  | Host_cpu
  | Sched_events_fired
  | Sched_timers_rearmed
  | Sched_cancelled_ratio
  | Sched_wheel_hit_rate
  | Faults_injected
  | Fault_recovery
  | Sessions_open
  | Sessions_refused
  | Sessions_degraded
  | Demux_probes
  | Table_occupancy
  | Timewait_drops
  | Wire_encodes
  | Wire_decodes
  | Wire_rejects
  | Wire_fused_sums
  | Wire_pool_reuse
  | Steer_swaps
  | Steer_blocked
  | Steer_time_in_config

type kind = Blackbox | Whitebox

let metric_kind = function
  | Throughput | Rtt -> Blackbox
  | Setup_latency | Delivery_latency | Jitter | Segments_sent | Segments_delivered
  | Bytes_delivered | Retransmissions | Timeouts | Dup_segments | Corrupt_detected
  | Corrupt_delivered | Late_discards | Losses_unrecovered | Fec_parity_sent
  | Fec_recovered | Acks_sent | Nacks_sent | Control_pdus | Reconfigurations
  | Window_size | Host_cpu | Sched_events_fired | Sched_timers_rearmed
  | Sched_cancelled_ratio | Sched_wheel_hit_rate | Faults_injected
  | Fault_recovery | Sessions_open | Sessions_refused | Sessions_degraded
  | Demux_probes | Table_occupancy | Timewait_drops | Wire_encodes
  | Wire_decodes | Wire_rejects | Wire_fused_sums | Wire_pool_reuse
  | Steer_swaps | Steer_blocked | Steer_time_in_config -> Whitebox

let metric_name = function
  | Throughput -> "throughput_bps"
  | Rtt -> "rtt_s"
  | Setup_latency -> "setup_latency_s"
  | Delivery_latency -> "delivery_latency_s"
  | Jitter -> "jitter_s"
  | Segments_sent -> "segments_sent"
  | Segments_delivered -> "segments_delivered"
  | Bytes_delivered -> "bytes_delivered"
  | Retransmissions -> "retransmissions"
  | Timeouts -> "timeouts"
  | Dup_segments -> "dup_segments"
  | Corrupt_detected -> "corrupt_detected"
  | Corrupt_delivered -> "corrupt_delivered"
  | Late_discards -> "late_discards"
  | Losses_unrecovered -> "losses_unrecovered"
  | Fec_parity_sent -> "fec_parity_sent"
  | Fec_recovered -> "fec_recovered"
  | Acks_sent -> "acks_sent"
  | Nacks_sent -> "nacks_sent"
  | Control_pdus -> "control_pdus"
  | Reconfigurations -> "reconfigurations"
  | Window_size -> "window_size"
  | Host_cpu -> "host_cpu_s"
  | Sched_events_fired -> "sched_events_fired"
  | Sched_timers_rearmed -> "sched_timers_rearmed"
  | Sched_cancelled_ratio -> "sched_cancelled_ratio"
  | Sched_wheel_hit_rate -> "sched_wheel_hit_rate"
  | Faults_injected -> "faults_injected"
  | Fault_recovery -> "fault_recovery_s"
  | Sessions_open -> "sessions_open"
  | Sessions_refused -> "sessions_refused"
  | Sessions_degraded -> "sessions_degraded"
  | Demux_probes -> "demux_probes"
  | Table_occupancy -> "table_occupancy"
  | Timewait_drops -> "timewait_drops"
  | Wire_encodes -> "wire_encodes"
  | Wire_decodes -> "wire_decodes"
  | Wire_rejects -> "wire_rejects"
  | Wire_fused_sums -> "wire_fused_sums"
  | Wire_pool_reuse -> "wire_pool_reuse"
  | Steer_swaps -> "steer_swaps"
  | Steer_blocked -> "steer_blocked"
  | Steer_time_in_config -> "steer_time_in_config_s"

let all_metrics =
  [
    Throughput;
    Rtt;
    Setup_latency;
    Delivery_latency;
    Jitter;
    Segments_sent;
    Segments_delivered;
    Bytes_delivered;
    Retransmissions;
    Timeouts;
    Dup_segments;
    Corrupt_detected;
    Corrupt_delivered;
    Late_discards;
    Losses_unrecovered;
    Fec_parity_sent;
    Fec_recovered;
    Acks_sent;
    Nacks_sent;
    Control_pdus;
    Reconfigurations;
    Window_size;
    Host_cpu;
    Sched_events_fired;
    Sched_timers_rearmed;
    Sched_cancelled_ratio;
    Sched_wheel_hit_rate;
    Faults_injected;
    Fault_recovery;
    Sessions_open;
    Sessions_refused;
    Sessions_degraded;
    Demux_probes;
    Table_occupancy;
    Timewait_drops;
    Wire_encodes;
    Wire_decodes;
    Wire_rejects;
    Wire_fused_sums;
    Wire_pool_reuse;
    Steer_swaps;
    Steer_blocked;
    Steer_time_in_config;
  ]

type t = {
  engine : Engine.t;
  mutable whitebox : bool;
  bucket : Time.t;
  res_size : int; (* per-accumulator reservoir bound *)
  estimator : Stats.estimator; (* quantile sketch for every accumulator *)
  table : (int * metric, Stats.t) Hashtbl.t;
  buckets : (int * metric, (int, float) Hashtbl.t) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  tmc : (int, metric list) Hashtbl.t; (* per-session whitebox selection *)
  mutable whitebox_count : int;
  (* last scheduler counter values folded into the repository, so each
     [sample_scheduler] observes the delta since the previous sample *)
  mutable sched_fired_seen : int;
  mutable sched_rearmed_seen : int;
  mutable trace : Trace.t option;
}

(* Scheduler observations live under a reserved pseudo-session: real
   connection ids are handed out starting from 1. *)
let scheduler_session = 0

(* Fault-injection observations likewise live under a reserved
   pseudo-session: faults belong to the run, not to any one connection. *)
let chaos_session = -1

(* Many-session scale observations (admission control, demux probes,
   table occupancy) likewise describe the host's dispatcher as a whole. *)
let swarm_session = -2

(* Wire-true data-path observations (encode/decode/reject counts, fused
   checksum passes, pool reuse) describe the codec and buffer pool of a
   whole stack, not any one connection. *)
let wire_session = -3

(* Closed-loop steering observations (swap counts, cooldown blocks,
   time-in-config) describe the STEER policy engine of a whole stack. *)
let steer_session = -4

let create ?(whitebox = true) ?(bucket = Time.sec 1.0) ?(reservoir = 8192)
    ?(estimator = Stats.Reservoir) engine =
  {
    engine;
    whitebox;
    bucket = Time.max 1 bucket;
    res_size = max 8 reservoir;
    estimator;
    table = Hashtbl.create 64;
    buckets = Hashtbl.create 64;
    names = Hashtbl.create 16;
    tmc = Hashtbl.create 16;
    whitebox_count = 0;
    sched_fired_seen = 0;
    sched_rearmed_seen = 0;
    trace = None;
  }

let whitebox_enabled t = t.whitebox
let set_whitebox t v = t.whitebox <- v
let register_session t ~id ~name =
  (* First registration wins: the initiator names the session; the
     responder's acceptance label is secondary. *)
  if not (Hashtbl.mem t.names id) then Hashtbl.add t.names id name

let accumulator t key =
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
    let s = Stats.create ~estimator:t.estimator ~reservoir:t.res_size () in
    Hashtbl.add t.table key s;
    s

let record_bucket t key v =
  let slot = Engine.now t.engine / t.bucket in
  let per_bucket =
    match Hashtbl.find_opt t.buckets key with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 16 in
      Hashtbl.add t.buckets key h;
      h
  in
  Hashtbl.replace per_bucket slot
    (v +. Option.value ~default:0.0 (Hashtbl.find_opt per_bucket slot))

let restrict_session t ~id metrics =
  if metrics = [] then Hashtbl.remove t.tmc id else Hashtbl.replace t.tmc id metrics

let wanted t session m =
  match Hashtbl.find_opt t.tmc session with
  | None -> true
  | Some metrics -> List.mem m metrics

let observe t ~session m v =
  match metric_kind m with
  | Whitebox when (not t.whitebox) || not (wanted t session m) -> ()
  | Whitebox ->
    t.whitebox_count <- t.whitebox_count + 1;
    Stats.add (accumulator t (session, m)) v;
    record_bucket t (session, m) v
  | Blackbox ->
    Stats.add (accumulator t (session, m)) v;
    record_bucket t (session, m) v

let count t ~session m = observe t ~session m 1.0

let stats t ~session m =
  Option.map Stats.summarize (Hashtbl.find_opt t.table (session, m))

let total t ~session m =
  match Hashtbl.find_opt t.table (session, m) with
  | Some s -> Stats.total s
  | None -> 0.0

let mean t ~session m =
  match Hashtbl.find_opt t.table (session, m) with
  | Some s -> Stats.mean s
  | None -> nan

let aggregate_acc t m =
  Hashtbl.fold
    (fun (_, metric) s acc ->
      if metric = m then match acc with None -> Some s | Some a -> Some (Stats.merge a s)
      else acc)
    t.table None

let aggregate t m = Option.map Stats.summarize (aggregate_acc t m)

let aggregate_total t m =
  match aggregate_acc t m with Some s -> Stats.total s | None -> 0.0

let sessions t =
  Hashtbl.fold (fun id name acc -> (id, name) :: acc) t.names []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let whitebox_samples t = t.whitebox_count
let attach_trace t trace = t.trace <- Some trace
let attached_trace t = t.trace

let sample_scheduler t =
  if t.whitebox then begin
    register_session t ~id:scheduler_session ~name:"scheduler";
    let c = Engine.counters t.engine in
    let d_fired = c.Engine.events_fired - t.sched_fired_seen in
    let d_rearmed = c.Engine.timers_rearmed - t.sched_rearmed_seen in
    t.sched_fired_seen <- c.Engine.events_fired;
    t.sched_rearmed_seen <- c.Engine.timers_rearmed;
    if d_fired > 0 then
      observe t ~session:scheduler_session Sched_events_fired (float_of_int d_fired);
    if d_rearmed > 0 then
      observe t ~session:scheduler_session Sched_timers_rearmed
        (float_of_int d_rearmed);
    observe t ~session:scheduler_session Sched_cancelled_ratio
      (Engine.cancelled_ratio t.engine);
    observe t ~session:scheduler_session Sched_wheel_hit_rate
      (Engine.wheel_hit_rate t.engine)
  end

let series t ~session m =
  match Hashtbl.find_opt t.buckets (session, m) with
  | None -> []
  | Some h ->
    Hashtbl.fold (fun slot v acc -> (slot * t.bucket, v) :: acc) h []
    |> List.sort compare

let aggregate_series t m =
  let merged = Hashtbl.create 32 in
  Hashtbl.iter
    (fun (_, metric) h ->
      if metric = m then
        Hashtbl.iter
          (fun slot v ->
            Hashtbl.replace merged slot
              (v +. Option.value ~default:0.0 (Hashtbl.find_opt merged slot)))
          h)
    t.buckets;
  Hashtbl.fold (fun slot v acc -> (slot * t.bucket, v) :: acc) merged []
  |> List.sort compare

let report fmt t =
  (* Fold the engine's current scheduler counters in so the report always
     shows scheduler overhead next to the transport metrics. *)
  sample_scheduler t;
  Format.fprintf fmt "@[<v>UNITES metric repository (t=%a, whitebox=%b)@,"
    Time.pp (Engine.now t.engine) t.whitebox;
  List.iter
    (fun (id, name) ->
      Format.fprintf fmt "session %d (%s):@," id name;
      List.iter
        (fun m ->
          match stats t ~session:id m with
          | None -> ()
          | Some s ->
            Format.fprintf fmt "  %-20s [%s] %a@," (metric_name m)
              (match metric_kind m with Blackbox -> "bb" | Whitebox -> "wb")
              Stats.pp_summary s)
        all_metrics)
    (sessions t);
  (match t.trace with
  | None -> ()
  | Some trace ->
    Format.fprintf fmt "trace (dropped log entries: %d):@," (Trace.dropped trace);
    List.iter
      (fun (name, n) -> Format.fprintf fmt "  %-28s %d@," name n)
      (Trace.counters trace));
  Format.fprintf fmt "@]"
