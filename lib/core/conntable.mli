(** Hashed connection table — the Dispatcher's demultiplexing structure.

    An open-addressing (linear probing) hash table mapping connection
    identifiers to endpoint state, designed so the per-PDU lookup on the
    receive path is O(1) expected and allocation-free: [find] returns a
    slot index into flat arrays rather than an option.

    Entries carry one of three connection states:

    - {e half-open}: an initiator that has sent its connection request and
      is waiting for the responder's answer;
    - {e open}: an established session;
    - {e time-wait}: a closed connection whose identifier is still
      quarantined so late segments are absorbed instead of being offered
      to the acceptor as orphans.  Time-wait entries hold no value — the
      session object is released for collection when the entry is
      retired — only the key and an expiry instant.

    The table grows by doubling and rehashing (dropping tombstones) when
    combined occupancy crosses 3/4, so probe sequences stay short at any
    session count. *)

open Adaptive_sim

type 'a t

type entry_state = Half_open | Open | Time_wait

val create : ?initial_capacity:int -> unit -> 'a t
(** [create ()] is an empty table.  [initial_capacity] (default 16) is
    rounded up to a power of two. *)

(** {1 Updates} *)

val insert : 'a t -> key:int -> half_open:bool -> 'a -> unit
(** Bind [key] to a live value, in the half-open or open state.  An
    existing entry under [key] (including a time-wait residue) is
    replaced. *)

val promote : 'a t -> int -> unit
(** Move [key] from half-open to open.  No-op if absent or already
    open. *)

val retire : 'a t -> key:int -> expiry:Time.t -> unit
(** Move a live entry to time-wait until [expiry], dropping its value.
    No-op if [key] is absent; a live entry's value reference is cleared
    so the session object can be collected. *)

val remove : 'a t -> int -> bool
(** Delete [key] entirely (tombstone).  Returns whether it was present. *)

val sweep : 'a t -> now:Time.t -> int
(** Expire every time-wait entry with [expiry <= now]; returns how many
    were reclaimed.  Cost is O(entries expired), not O(capacity): retired
    keys queue in expiry order (retirement uses a fixed quarantine on a
    monotone clock) and the sweeper pops the expired front.  If expiries
    are ever enqueued out of order, a late entry is reclaimed no earlier
    than those queued ahead of it — never dropped. *)

(** {1 Lookup — the demux hot path} *)

val find : 'a t -> int -> int
(** [find t key] is the slot holding [key], or [-1].  Allocation-free;
    probe count is recorded for [last_probes]. *)

val slot_state : 'a t -> int -> entry_state
val slot_value : 'a t -> int -> 'a
(** [slot_value t slot] is the live value at [slot].
    @raise Invalid_argument on a time-wait slot. *)

val find_live : 'a t -> int -> 'a option
(** Convenience wrapper: the live (half-open or open) value under a key,
    if any.  Allocates; not for the hot path. *)

(** {1 Iteration} *)

val iter_live : (int -> 'a -> unit) -> 'a t -> unit
(** Visit live entries in slot order (deterministic for a given insertion
    history). *)

val fold_live : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** {1 Occupancy and probe telemetry} *)

val capacity : 'a t -> int
val live_count : 'a t -> int
(** Half-open + open entries. *)

val half_open_count : 'a t -> int
val time_wait_count : 'a t -> int

val occupancy : 'a t -> float
(** (live + time-wait) / capacity, in [0, 1]. *)

val last_probes : 'a t -> int
(** Probe count of the most recent [find] — 1 for a first-slot hit. *)

val total_probes : 'a t -> int
val lookups : 'a t -> int
val max_probes : 'a t -> int
