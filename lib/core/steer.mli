(** STEER — closed-loop runtime adaptation over live sessions.

    The paper's data-transfer-phase reconfiguration story (§3, §4.1.2)
    closed into an actual feedback loop: a policy engine samples each
    watched session's whitebox signals (loss-rate estimate, path cross
    traffic, send-queue idleness) on the MANTTS monitor cadence and
    renegotiates the session through {!Session.reconfigure} when a signal
    crosses a policy threshold:

    - loss above [loss_hi] swaps go-back-n → selective-repeat; calm below
      [loss_lo] restores the session's base recovery;
    - burst loss above [fec_loss_hi] swaps ARQ → forward error correction
      (loss-tolerant sessions only — FEC alone cannot guarantee
      delivery);
    - sustained cross traffic above [cong_hi] backs the sender off (rate
      halving under rate-based transmission, window halving under sliding
      window); calm below [cong_lo] restores toward the base;
    - a send queue idle for [idle_after] sheds retransmit machinery
      (loss-tolerant sessions drop recovery and reporting outright;
      reliable ones fall back from selective-repeat bookkeeping to
      go-back-n), restored as soon as the application sends again.

    Every rule is debounced over consecutive ticks and gated by the
    per-session {!Mantts.reconfigure_cooldown}, whose clock STEER {e
    shares} with the built-in MANTTS monitor ({!Mantts.note_switch}), so
    the chaos flap-cooldown oracle audits the combined switch stream.
    Swap costs are accounted under {!Unites.steer_session}: swap count,
    cooldown-blocked decisions and the dwell time each swapped-out
    configuration had accumulated. *)

open Adaptive_sim

type policy = {
  loss_hi : float;  (** Loss-rate estimate above which go-back-n swaps to
                        selective repeat. *)
  loss_lo : float;  (** Loss-rate estimate below which the base recovery
                        (and reporting) is restored. *)
  fec_loss_hi : float;  (** Loss-rate estimate above which loss-tolerant
                            ARQ sessions swap to FEC (burst loss). *)
  fec_group : int;  (** Parity group size for the FEC swap. *)
  cong_hi : float;  (** Worst-hop cross-traffic share above which the
                        sender backs off. *)
  cong_lo : float;  (** Cross-traffic share below which the sender's
                        transmission control is restored toward base. *)
  idle_after : Time.t;  (** Continuous send-queue idleness after which
                            retransmit machinery is shed. *)
  debounce : int;  (** Consecutive ticks a signal must hold before its
                       rule may fire. *)
}

val default_policy : policy
(** loss 5% / 1% bands, FEC above 15% for group-8 parity, congestion
    85% / 40% bands, 1 s idle shedding, 2-tick debounce. *)

val infinite : policy
(** Every threshold infinite (and [idle_after] beyond any horizon): no
    rule can ever fire.  A run steered by this policy is observationally
    identical — same trace digest — to an unsteered run, which the
    property suite checks. *)

type t
(** One steering engine over one MANTTS instance. *)

val create : ?policy:policy -> Mantts.t -> t
(** Attach a steering engine: registers the {!Unites.steer_session}
    pseudo-session and starts (lazily, on the first {!watch}) a shared
    tick at {!Mantts.monitor_interval} that walks every live watch in
    session-id order — O(watched) per tick, one engine timer total. *)

val policy : t -> policy

val watch : t -> ?loss_tolerant:bool -> Session.t -> unit
(** Put a session under closed-loop steering.  [loss_tolerant] (default
    [false]) widens the action space to semantics-trading swaps (ARQ →
    FEC, idle shedding of recovery); without it STEER only applies
    semantics-preserving swaps, mirroring {!Mantts.degrade_scs}.
    Statically bound sessions ({!Tko.Static_template}) cannot segue and
    are ignored. *)

val watched : t -> int
(** Live watches (closed sessions are compacted away lazily). *)

val swaps : t -> (Time.t * int * string) list
(** Every swap STEER applied: time, session id, description — oldest
    first.  Descriptions of component switches start with ["switch "];
    rate/window adjustments with ["scale "]. *)

val swap_count : t -> int
(** Swaps applied (= {!Unites.Steer_swaps} total). *)

val blocked_count : t -> int
(** Due swap decisions suppressed by the shared reconfigure cooldown
    (= {!Unites.Steer_blocked} total). *)
