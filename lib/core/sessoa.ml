(* Struct-of-arrays session hot state.

   The per-event-touched counters of every endpoint at a dispatcher live
   here as flat int columns indexed by a dense slot, instead of as
   mutable fields scattered across boxed session records.  The event hot
   loop (data/ack handling, the pump) then reads and writes immediate
   ints in a handful of contiguous arrays — no pointer chasing into
   per-session records, no write barriers, and the working set for ten
   thousand sessions is eleven arrays rather than ten thousand heap
   blocks.  Cold and setup state (timers, queues, closures, the TKO
   context) stays on the boxed record, which remains the right shape for
   it.

   Slots are allocated monotonically and never recycled: a closed
   session's delivery counters stay readable (reports and tests consult
   them after teardown), slot indices stay stable across connection-table
   rehashes, and memory is bounded by the total number of endpoints the
   dispatcher ever created — 11 words each. *)

type t = {
  mutable cap : int;
  mutable used : int;
  mutable next_seq : int array;
  mutable peer_window : int array;
  mutable dup_acks : int array;
  mutable last_cum : int array;
  mutable recover : int array;
  mutable first_tx : int array;
  mutable rtx_count : int array;
  mutable sendq_bytes : int array;
  mutable delivered_segments : int array;
  mutable delivered_bytes : int array;
  mutable echo_stamp : int array; (* Time.t is an int of nanoseconds *)
}

let create ?(initial_capacity = 64) () =
  let cap = max 16 initial_capacity in
  {
    cap;
    used = 0;
    next_seq = Array.make cap 0;
    peer_window = Array.make cap 0;
    dup_acks = Array.make cap 0;
    last_cum = Array.make cap 0;
    recover = Array.make cap 0;
    first_tx = Array.make cap 0;
    rtx_count = Array.make cap 0;
    sendq_bytes = Array.make cap 0;
    delivered_segments = Array.make cap 0;
    delivered_bytes = Array.make cap 0;
    echo_stamp = Array.make cap 0;
  }

let slots t = t.used

let grow t =
  let cap = t.cap * 2 in
  let widen col =
    let next = Array.make cap 0 in
    Array.blit col 0 next 0 t.used;
    next
  in
  t.next_seq <- widen t.next_seq;
  t.peer_window <- widen t.peer_window;
  t.dup_acks <- widen t.dup_acks;
  t.last_cum <- widen t.last_cum;
  t.recover <- widen t.recover;
  t.first_tx <- widen t.first_tx;
  t.rtx_count <- widen t.rtx_count;
  t.sendq_bytes <- widen t.sendq_bytes;
  t.delivered_segments <- widen t.delivered_segments;
  t.delivered_bytes <- widen t.delivered_bytes;
  t.echo_stamp <- widen t.echo_stamp;
  t.cap <- cap

let alloc t =
  if t.used = t.cap then grow t;
  let slot = t.used in
  t.used <- slot + 1;
  slot

(* Slot validity is by construction — every slot handed out by [alloc]
   stays valid for the dispatcher's lifetime — so accessors elide the
   bounds check: this is the innermost event loop. *)

let get_next_seq t s = Array.unsafe_get t.next_seq s
let set_next_seq t s v = Array.unsafe_set t.next_seq s v
let get_peer_window t s = Array.unsafe_get t.peer_window s
let set_peer_window t s v = Array.unsafe_set t.peer_window s v
let get_dup_acks t s = Array.unsafe_get t.dup_acks s
let set_dup_acks t s v = Array.unsafe_set t.dup_acks s v
let get_last_cum t s = Array.unsafe_get t.last_cum s
let set_last_cum t s v = Array.unsafe_set t.last_cum s v
let get_recover t s = Array.unsafe_get t.recover s
let set_recover t s v = Array.unsafe_set t.recover s v
let get_first_tx t s = Array.unsafe_get t.first_tx s
let set_first_tx t s v = Array.unsafe_set t.first_tx s v
let get_rtx_count t s = Array.unsafe_get t.rtx_count s
let set_rtx_count t s v = Array.unsafe_set t.rtx_count s v
let get_sendq_bytes t s = Array.unsafe_get t.sendq_bytes s
let set_sendq_bytes t s v = Array.unsafe_set t.sendq_bytes s v
let get_delivered_segments t s = Array.unsafe_get t.delivered_segments s
let set_delivered_segments t s v = Array.unsafe_set t.delivered_segments s v
let get_delivered_bytes t s = Array.unsafe_get t.delivered_bytes s
let set_delivered_bytes t s v = Array.unsafe_set t.delivered_bytes s v
let get_echo_stamp t s = Array.unsafe_get t.echo_stamp s
let set_echo_stamp t s v = Array.unsafe_set t.echo_stamp s v
