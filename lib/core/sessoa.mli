(** Struct-of-arrays session hot state.

    Flat int columns, indexed by a dense per-dispatcher slot, holding the
    per-event-touched counters of every endpoint: sequence/window state on
    the send side, duplicate-ack and recovery marks, send-queue and
    delivery byte counters, and the receiver's echo timestamp.  The event
    hot loop touches these as immediate ints in contiguous arrays —
    allocation-free and cache-linear — while boxed session records keep
    the cold and setup state (timers, queues, closures, the TKO context).

    Slots are allocated monotonically and never recycled: counters stay
    readable after a session closes, indices survive connection-table
    rehashes, and memory is bounded at 11 words per endpoint ever
    created. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Fresh column set.  Columns double as slots are allocated. *)

val alloc : t -> int
(** Allocate the next slot, zero-initialised.  Slots are never freed. *)

val slots : t -> int
(** Number of slots allocated so far. *)

val get_next_seq : t -> int -> int
val set_next_seq : t -> int -> int -> unit

val get_peer_window : t -> int -> int
val set_peer_window : t -> int -> int -> unit

val get_dup_acks : t -> int -> int
val set_dup_acks : t -> int -> int -> unit

val get_last_cum : t -> int -> int
val set_last_cum : t -> int -> int -> unit

val get_recover : t -> int -> int
val set_recover : t -> int -> int -> unit

val get_first_tx : t -> int -> int
val set_first_tx : t -> int -> int -> unit

val get_rtx_count : t -> int -> int
val set_rtx_count : t -> int -> int -> unit

val get_sendq_bytes : t -> int -> int
val set_sendq_bytes : t -> int -> int -> unit

val get_delivered_segments : t -> int -> int
val set_delivered_segments : t -> int -> int -> unit

val get_delivered_bytes : t -> int -> int
val set_delivered_bytes : t -> int -> int -> unit

val get_echo_stamp : t -> int -> int
val set_echo_stamp : t -> int -> int -> unit
