(** MEGASWARM — a partitioned, domain-sharded many-session workload.

    The swarm workload stressed one dispatcher; megaswarm runs [P]
    logical partitions — each a complete ADAPTIVE stack with its own
    engine, hosts, MANTTS entities and UNITES repository — connected by
    a constant-latency WAN, and executes them across OCaml 5 domains
    with {!Adaptive_fleet.Shard}'s conservative barrier-window
    synchronization.

    The partition count is part of the {e logical} configuration: it
    fixes the workload, the connection-id stripes, and the traffic.  The
    shard count is purely an {e execution} choice — [shards = 1] and
    [shards = N] produce the same combined digest and byte-identical
    UNITES reports, which the parity tests pin.

    Every [cross_share]-th local slot also opens a session to the next
    partition's server over the WAN (ring order), so the conservative
    exchange path carries real protocol traffic: connection setup, data,
    acks and release all cross the partition boundary.

    Per-partition UNITES repositories run the {!Adaptive_sim.Stats.P2}
    streaming quantile estimator, so metric memory stays flat however
    many sessions churn through a partition. *)

open Adaptive_sim
open Adaptive_core

type config = {
  sessions : int;  (** Total session slots across all partitions. *)
  partitions : int;  (** Logical partitions (fixed per workload). *)
  shards : int;  (** Execution domains; result-invariant. *)
  churn_rounds : int;  (** Reopen rounds per slot after first close. *)
  seed : int;
  payload_bytes : int;  (** Mean application message size. *)
  open_window : Time.t;  (** Window over which opens are staggered. *)
  monitored_share : int;  (** Every Nth local session keeps a monitor. *)
  cross_share : int;  (** Every Nth local slot opens a WAN session
                          (0 disables cross traffic). *)
  wan_latency : Time.t;  (** Base one-way cross-partition latency; also
                             the conservative lookahead floor. *)
  wan_spread : Time.t;
      (** Maximum extra per-pair latency.  Each ordered (src, dst)
          partition pair gets a deterministic latency in
          [wan_latency, wan_latency + wan_spread], and SHARD's per-pair
          lookahead matrix is built from the same function — so
          heterogeneous WANs synchronize on per-destination windows
          rather than the global minimum.  [Time.zero] (the default)
          collapses to the uniform-latency WAN. *)
  session_cap : int option;
      (** When set, each partition's UNITES repository tracks at most
          this many distinct sessions individually; the rest fold into
          one overflow bucket (totals preserved).  Bounds metric — and
          report-rendering — memory at GIGASWARM scale.  UNITES routing
          never reaches the trace, so the digest is unaffected. *)
  steer : Steer.policy option;
      (** When set, each partition runs its own STEER engine over its
          locally opened sessions.  Steering state is partition-local, so
          the shards=1 vs shards=N digest parity is preserved. *)
}

val default_config : sessions:int -> seed:int -> config
(** 4 partitions, 1 shard, 5 ms WAN, cross traffic every 16th slot. *)

type outcome = {
  offered : int;
  admitted : int;
  refused : int;
  cross_opened : int;  (** WAN sessions opened. *)
  delivered_msgs : int;
  delivered_bytes : int;
  wan_exchanged : int;  (** Cross-partition PDUs through the barriers. *)
  steer_swaps : int;  (** STEER swaps applied, summed over partitions. *)
  peak_live : int;  (** Max live sessions at any one dispatcher. *)
  events_fired : int;  (** Summed over partition engines. *)
  sim_time : Time.t;
  digest : int64;  (** Combined partition trace digests, in order. *)
  partition_digests : int64 list;
  demux_probes_mean_max : float;  (** Worst partition's mean demux probes. *)
  monitor_ticks : int;  (** Shared monitor-tick firings, all partitions. *)
  monitor_walked : int;  (** Live monitors walked across those ticks —
                             [walked / ticks] is the per-tick working
                             set, O(monitored) not O(sessions). *)
  tw_sweeps : int;  (** Coalesced time-wait sweeper firings. *)
  tw_expired : int;  (** Time-wait entries those sweeps expired. *)
  sync_windows : int;  (** SHARD barrier windows executed. *)
  sync_skipped : int;  (** Empty spans jumped by the skip fast path. *)
  shard_wall_s : float list;
      (** Wall seconds each shard spent inside partition windows, in
          shard order; all zeros unless {!run} was given a clock. *)
  stage_minor_words : (string * float) list;
      (** Minor words allocated on the coordinating domain per run
          stage, in order: ["build"], ["schedule"], ["sim"], ["reduce"].
          The ["sim"] entry over the event count is the hot-path
          allocation figure; authoritative at [shards = 1] (GC counters
          are per-domain). *)
  unites_reports : string list;  (** Rendered per-partition UNITES
                                     reports, in partition order. *)
}

val run : ?clock:(unit -> float) -> config -> outcome
(** Build the partitions, run them to quiescence under conservative
    barrier-window synchronization, and reduce.  Deterministic in
    [config]; independent of [shards] by construction.  [clock]
    (e.g. [Unix.gettimeofday]) enables the per-shard wall-time
    breakdown in the outcome without making this library depend on
    unix.  Raises [Invalid_argument] on a non-positive
    session/partition/shard count (a zero [wan_latency] is rejected by
    {!Adaptive_fleet.Shard}). *)

val pp_outcome : Format.formatter -> outcome -> unit
